/// \file dd_audit.hpp
/// \brief Deep structural auditors for the decision-diagram package.
///
/// The DD kernel's correctness rests on four invariants: canonicity (one
/// table-resident node per distinct child tuple, hashed into its home
/// bucket), normalization (largest child weight has unit magnitude, zero
/// weights point at the terminal, weights are interned), reference-count
/// accounting (stored counts equal a recount from the externally held
/// roots), and cache hygiene (live compute-table entries reference only
/// live nodes). A violation of any of them can silently flip an
/// equivalence verdict, so these auditors re-derive each invariant from
/// scratch instead of trusting the package's own bookkeeping.
///
/// Finding codes:
///   dd.unique.misplaced   node hashes to a different bucket than it is in
///   dd.unique.duplicate   two table-resident nodes with identical children
///   dd.unique.level       node's level differs from its table's level
///   dd.node.normalization max child-weight magnitude differs from 1
///   dd.node.zero          zero-weight child does not point at the terminal
///   dd.node.weight        child weight is not the interned representative
///   dd.node.child         child pointer is null or not a live node
///   dd.ref.mismatch       stored refcount differs from the recount
///   dd.reals.collision    two interned reals within tolerance
///   dd.reals.binning      slot key inconsistent with its value's bin
///   dd.cache.stale        live compute-table entry references a dead node
///
/// All auditors are read-only and must run at quiescent points (no DD
/// operation in flight). The refcount recount needs *all* externally held
/// roots: the package contributes its internal ones (identity chain,
/// gate-DD cache); the caller passes every edge it has incRef'ed itself.
#pragma once

#include "audit/finding.hpp"
#include "dd/package.hpp"

#include <span>

namespace veriqc::audit {

/// Audits the unique tables, normalization, interning table, refcounts and
/// compute-table liveness of a package in one pass.
[[nodiscard]] AuditReport
auditPackage(const dd::Package& package,
             std::span<const dd::mEdge> matrixRoots = {},
             std::span<const dd::vEdge> vectorRoots = {});

/// Audits only the real-number interning table (pairwise tolerance
/// separation and bin-key consistency).
[[nodiscard]] AuditReport auditRealTable(const dd::RealTable& reals);

} // namespace veriqc::audit
