#include "check/manager.hpp"

#include "check/task_pool.hpp"
#include "dd/package.hpp"

#include <atomic>
#include <chrono>
#include <functional>
#include <new>

namespace veriqc::check {

namespace {

using Clock = std::chrono::steady_clock;

/// Exception firewall around one engine: whatever an engine throws is
/// converted into a per-slot Result instead of unwinding into the manager
/// (where a raw std::thread would std::terminate the process). Resource
/// budgets (and allocation failure, their unplanned cousin) degrade to
/// ResourceExhausted; everything else becomes EngineError. The captured
/// diagnostic is preserved so Result::toString can surface it.
Result runGuarded(const std::function<Result()>& engine,
                  const std::string& name) {
  const auto start = Clock::now();
  const auto failed = [&](const EquivalenceCriterion criterion,
                          std::string message) {
    Result result;
    result.method = name;
    result.criterion = criterion;
    result.errorMessage = std::move(message);
    result.runtimeSeconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    return result;
  };
  try {
    return engine();
  } catch (const ResourceLimitError& e) {
    return failed(EquivalenceCriterion::ResourceExhausted, e.what());
  } catch (const std::bad_alloc& e) {
    return failed(EquivalenceCriterion::ResourceExhausted, e.what());
  } catch (const std::exception& e) {
    return failed(EquivalenceCriterion::EngineError, e.what());
  } catch (...) {
    return failed(EquivalenceCriterion::EngineError, "unknown exception");
  }
}

/// True for slots whose outcome is an abnormal termination rather than an
/// analysis result.
bool isFailureSlot(const EquivalenceCriterion criterion) {
  return criterion == EquivalenceCriterion::ResourceExhausted ||
         criterion == EquivalenceCriterion::EngineError;
}

/// Combine per-engine outcomes into one verdict: a definitive answer wins
/// (ties broken by runtime), then ProbablyEquivalent, then Timeout, then the
/// first engine that at least ran and terminated normally. Only when every
/// surviving slot failed does a failure outcome become the verdict —
/// ResourceExhausted (a budget did its job) before EngineError (a genuine
/// fault). The combined record also lists which engines ran out of budget,
/// so graceful degradation stays visible even when a sibling's verdict wins.
Result combine(const std::vector<Result>& results, const double elapsed) {
  const Result* best = nullptr;
  for (const auto& r : results) {
    if (isDefinitive(r.criterion) &&
        (best == nullptr || r.runtimeSeconds < best->runtimeSeconds)) {
      best = &r;
    }
  }
  const auto firstWith = [&results](const auto& pred) -> const Result* {
    for (const auto& r : results) {
      if (pred(r)) {
        return &r;
      }
    }
    return nullptr;
  };
  if (best == nullptr) {
    best = firstWith([](const Result& r) {
      return r.criterion == EquivalenceCriterion::ProbablyEquivalent;
    });
  }
  if (best == nullptr) {
    best = firstWith([](const Result& r) {
      return r.criterion == EquivalenceCriterion::Timeout;
    });
  }
  if (best == nullptr) {
    best = firstWith([](const Result& r) {
      return r.criterion != EquivalenceCriterion::NotRun &&
             r.criterion != EquivalenceCriterion::Cancelled &&
             !isFailureSlot(r.criterion);
    });
  }
  if (best == nullptr) {
    best = firstWith([](const Result& r) {
      return r.criterion == EquivalenceCriterion::ResourceExhausted;
    });
  }
  if (best == nullptr) {
    best = firstWith([](const Result& r) {
      return r.criterion == EquivalenceCriterion::EngineError;
    });
  }
  if (best == nullptr && !results.empty()) {
    best = &results.front();
  }
  Result combined = best != nullptr ? *best : Result{};
  for (const auto& r : results) {
    if (r.criterion == EquivalenceCriterion::ResourceExhausted) {
      combined.resourceLimitedEngines.push_back(r.method);
    }
  }
  combined.runtimeSeconds = elapsed;
  return combined;
}

} // namespace

EquivalenceCheckingManager::EquivalenceCheckingManager(QuantumCircuit c1,
                                                       QuantumCircuit c2,
                                                       Configuration config)
    : c1_(std::move(c1)), c2_(std::move(c2)), config_(std::move(config)) {}

Result EquivalenceCheckingManager::run() {
  engineResults_.clear();
  auto& phases = activePhases();
  auto prepareSpan = phases.scope("prepare");
  const auto start = Clock::now();
  const auto deadline =
      config_.timeout.count() > 0
          ? start + config_.timeout
          : Clock::time_point::max();
  std::atomic<bool> cancel{false};
  // Acquire pairs with the release store a winning engine performs, so a
  // sibling that observes the flag also observes everything the winner wrote
  // before raising it (its result slot in particular).
  const auto stop = [&cancel, deadline] {
    return cancel.load(std::memory_order_acquire) || Clock::now() >= deadline;
  };

  using Engine = std::function<Result()>;
  std::vector<Engine> engines;
  std::vector<std::string> engineNames;
  if (config_.runAlternating) {
    engines.emplace_back(
        [this, &stop] { return ddAlternatingCheck(c1_, c2_, config_, stop); });
    engineNames.emplace_back("dd-alternating(" + toString(config_.oracle) +
                             ")");
  }
  if (config_.runSimulation && config_.simulationRuns > 0) {
    engines.emplace_back(
        [this, &stop] { return ddSimulationCheck(c1_, c2_, config_, stop); });
    engineNames.emplace_back("dd-simulation(" +
                             toString(config_.stimuliKind) + ")");
  }
  if (config_.runZX) {
    engines.emplace_back(
        [this, &stop] { return zxCheck(c1_, c2_, config_, stop); });
    engineNames.emplace_back("zx-calculus");
  }
  if (config_.runDense) {
    // Brute-force cross-check; throws CircuitError past denseMaxQubits, which
    // the firewall turns into an EngineError slot rather than a crash.
    engines.emplace_back([this] {
      return denseCheck(c1_, c2_, config_, config_.denseMaxQubits);
    });
    engineNames.emplace_back("dense");
  }
  if (engines.empty()) {
    prepareSpan.finish();
    Result none;
    none.method = "none";
    return none;
  }

  // Pre-fill every slot as "never started" so that a sequential run which
  // stops early leaves an honest record for the skipped engines.
  engineResults_.resize(engines.size());
  for (std::size_t i = 0; i < engines.size(); ++i) {
    engineResults_[i] = Result{};
    engineResults_[i].criterion = EquivalenceCriterion::NotRun;
    engineResults_[i].method = engineNames[i];
  }
  prepareSpan.finish();
  if (config_.parallel && engines.size() > 1) {
    // One slot per engine: the calling thread runs one engine itself inside
    // wait() while the spawned workers run the rest.
    TaskPool pool(engines.size());
    // No group-level stop token here: every engine must *start* even when a
    // sibling finishes first, so its slot records Cancelled (an honest "was
    // started, then yielded") instead of being skipped outright.
    TaskGroup group(pool);
    for (std::size_t i = 0; i < engines.size(); ++i) {
      group.submit("engine:" + engineNames[i],
                   [this, &engines, &engineNames, &cancel, &phases,
                    i](std::size_t /*slot*/) {
                     // PhaseTimer is internally synchronized, so concurrent
                     // engine spans may be opened from worker threads
                     // directly.
                     auto span = phases.scope("engine:" + engineNames[i]);
                     auto result = runGuarded(engines[i], engineNames[i]);
                     // Close the span before publishing the result so its
                     // duration never includes sibling bookkeeping — the
                     // sequential path finishes its span at the same point.
                     span.finish();
                     engineResults_[i] = std::move(result);
                     // A definitive verdict terminates the other engines
                     // early; release-publish so siblings that observe the
                     // flag also observe the stored result.
                     if (isDefinitive(engineResults_[i].criterion)) {
                       cancel.store(true, std::memory_order_release);
                     }
                   });
    }
    group.wait();
  } else {
    for (std::size_t i = 0; i < engines.size(); ++i) {
      auto span = phases.scope("engine:" + engineNames[i]);
      engineResults_[i] = runGuarded(engines[i], engineNames[i]);
      span.finish();
      if (isDefinitive(engineResults_[i].criterion)) {
        // The question is settled — skip the remaining engines instead of
        // running them against a tripped stop token (their aborted partial
        // results would be meaningless and cost time).
        cancel.store(true, std::memory_order_release);
        break;
      }
    }
  }
  auto combineSpan = phases.scope("combine");
  auto combined =
      combine(engineResults_,
              std::chrono::duration<double>(Clock::now() - start).count());
  // The process-wide resident-set high watermark belongs to the whole run,
  // not any single engine; record it on the combined result only.
  combined.peakResidentSetKB = dd::Package::peakResidentSetKB();
  return combined;
}

Result checkEquivalence(const QuantumCircuit& c1, const QuantumCircuit& c2,
                        const Configuration& config) {
  EquivalenceCheckingManager manager(c1, c2, config);
  return manager.run();
}

} // namespace veriqc::check
