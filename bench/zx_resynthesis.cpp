/// \file zx_resynthesis.cpp
/// \brief The paper's closing point ("decision diagrams and the ZX-calculus
///        can serve as complementary approaches") as an experiment: the ZX
///        engine optimizes circuits (full_reduce + circuit extraction), and
///        the DD engine independently verifies every result.
#include "table_common.hpp"

#include "check/dd_checkers.hpp"
#include "circuits/benchmarks.hpp"
#include "zx/resynthesis.hpp"

#include <cstdio>

int main() {
  using namespace veriqc;

  std::printf("\nZX resynthesis (full_reduce + extraction) verified by the "
              "DD alternating checker\n");
  std::printf("%-24s %8s %8s %8s | %-12s\n", "circuit", "|G|", "|G_zx|",
              "saved", "dd verdict");

  std::vector<QuantumCircuit> cases;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    cases.push_back(circuits::randomClifford(6, 20, seed));
  }
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    cases.push_back(circuits::randomClifford(8, 40, seed + 10));
  }
  cases.push_back(circuits::ghz(12));
  cases.push_back(circuits::randomGraphState(10, 6, 3));
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    cases.push_back(circuits::randomCliffordT(5, 6, 0.1, seed));
  }

  std::size_t declined = 0;
  for (const auto& original : cases) {
    const auto resynthesized = zx::resynthesize(original);
    if (!resynthesized.has_value()) {
      ++declined;
      std::printf("%-24s %8zu %8s %8s | %-12s\n", original.name().c_str(),
                  original.gateCount(), "-", "-", "gadgets: declined");
      continue;
    }
    const auto verdict = check::ddAlternatingCheck(original, *resynthesized);
    const auto saved =
        static_cast<double>(original.gateCount()) -
        static_cast<double>(resynthesized->gateCount());
    std::printf("%-24s %8zu %8zu %7.1f%% | %-12s\n", original.name().c_str(),
                original.gateCount(), resynthesized->gateCount(),
                100.0 * saved / static_cast<double>(original.gateCount()),
                check::toString(verdict.criterion).c_str());
    std::fflush(stdout);
  }
  std::printf("(%zu instances declined: extraction does not handle phase "
              "gadgets)\n",
              declined);
  return 0;
}
