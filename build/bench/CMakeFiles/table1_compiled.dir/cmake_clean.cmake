file(REMOVE_RECURSE
  "CMakeFiles/table1_compiled.dir/table1_compiled.cpp.o"
  "CMakeFiles/table1_compiled.dir/table1_compiled.cpp.o.d"
  "table1_compiled"
  "table1_compiled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_compiled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
