file(REMOVE_RECURSE
  "CMakeFiles/test_dd_internals.dir/test_dd_internals.cpp.o"
  "CMakeFiles/test_dd_internals.dir/test_dd_internals.cpp.o.d"
  "test_dd_internals"
  "test_dd_internals.pdb"
  "test_dd_internals[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dd_internals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
