file(REMOVE_RECURSE
  "CMakeFiles/veriqc_compile.dir/architecture.cpp.o"
  "CMakeFiles/veriqc_compile.dir/architecture.cpp.o.d"
  "CMakeFiles/veriqc_compile.dir/decompose.cpp.o"
  "CMakeFiles/veriqc_compile.dir/decompose.cpp.o.d"
  "CMakeFiles/veriqc_compile.dir/mapper.cpp.o"
  "CMakeFiles/veriqc_compile.dir/mapper.cpp.o.d"
  "libveriqc_compile.a"
  "libveriqc_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veriqc_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
