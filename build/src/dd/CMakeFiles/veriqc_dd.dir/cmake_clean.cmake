file(REMOVE_RECURSE
  "CMakeFiles/veriqc_dd.dir/export.cpp.o"
  "CMakeFiles/veriqc_dd.dir/export.cpp.o.d"
  "CMakeFiles/veriqc_dd.dir/package.cpp.o"
  "CMakeFiles/veriqc_dd.dir/package.cpp.o.d"
  "CMakeFiles/veriqc_dd.dir/real_table.cpp.o"
  "CMakeFiles/veriqc_dd.dir/real_table.cpp.o.d"
  "libveriqc_dd.a"
  "libveriqc_dd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veriqc_dd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
