#include "dd/export.hpp"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

namespace veriqc::dd {

namespace {

/// HSV-like hue from the complex phase, as "h,s,v" for graphviz.
std::string phaseColor(const std::complex<double>& w) {
  const double angle = std::arg(w); // (-pi, pi]
  const double hue = (angle + PI) / (2.0 * PI);
  std::ostringstream os;
  os.precision(3);
  os << hue << " 0.7 0.8";
  return os.str();
}

double magnitudeWidth(const std::complex<double>& w) {
  return 0.5 + 2.5 * std::min(1.0, std::abs(w));
}

/// Child edge i of `n`, resolved through the owning package.
template <typename EdgeT>
EdgeT childOf(const Package& package, NodeIndex n, std::size_t i);

template <>
mEdge childOf<mEdge>(const Package& package, const NodeIndex n,
                     const std::size_t i) {
  return package.matrixChild(n, i);
}

template <>
vEdge childOf<vEdge>(const Package& package, const NodeIndex n,
                     const std::size_t i) {
  return package.vectorChild(n, i);
}

template <typename EdgeT>
void collect(const Package& package, const NodeIndex node,
             std::map<NodeIndex, std::size_t>& ids) {
  if (node == kTerminalIndex || ids.contains(node)) {
    return;
  }
  ids.emplace(node, ids.size());
  for (std::size_t i = 0; i < EdgeT::arity; ++i) {
    const auto child = childOf<EdgeT>(package, node, i);
    if (!child.isZero()) {
      collect<EdgeT>(package, child.n, ids);
    }
  }
}

template <typename EdgeT>
std::string render(const Package& package, const EdgeT& root,
                   const char* rootLabel) {
  std::ostringstream os;
  os << "digraph dd {\n  rankdir=TB;\n  node [shape=circle];\n";
  std::map<NodeIndex, std::size_t> ids;
  collect<EdgeT>(package, root.n, ids);
  os << "  root [shape=point];\n";
  os << "  terminal [shape=box, label=\"1\"];\n";
  for (const auto& [node, id] : ids) {
    os << "  n" << id << " [label=\"q" << levelOfIndex(node) << "\"];\n";
  }
  const auto target = [&ids](const EdgeT& edge) -> std::string {
    if (edge.isTerminal()) {
      return "terminal";
    }
    std::string name = "n";
    name += std::to_string(ids.at(edge.n));
    return name;
  };
  if (!root.isZero()) {
    os << "  root -> " << target(root) << " [penwidth="
       << magnitudeWidth(root.w) << ", color=\"" << phaseColor(root.w)
       << "\", label=\"" << rootLabel << "\"];\n";
  }
  for (const auto& [node, id] : ids) {
    for (std::size_t i = 0; i < EdgeT::arity; ++i) {
      const auto child = childOf<EdgeT>(package, node, i);
      if (child.isZero()) {
        continue;
      }
      os << "  n" << id << " -> " << target(child) << " [penwidth="
         << magnitudeWidth(child.w) << ", color=\"" << phaseColor(child.w)
         << "\", label=\"" << i << "\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

} // namespace

std::string toDot(const Package& package, const mEdge& edge) {
  return render(package, edge, "M");
}

std::string toDot(const Package& package, const vEdge& edge) {
  return render(package, edge, "v");
}

void writeDot(const Package& package, const mEdge& edge,
              const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot write DOT file: " + path);
  }
  out << toDot(package, edge);
}

} // namespace veriqc::dd
