#!/usr/bin/env bash
# Run clang-tidy over the library sources using the compile database the
# default build exports (CMAKE_EXPORT_COMPILE_COMMANDS is ON). Skips with a
# notice when clang-tidy is not installed, so the script is safe to call from
# check_all.sh in minimal containers.
#
# Usage: scripts/check_tidy.sh [path-filter-regex]
#   path-filter-regex: only lint matching sources (default: all of src/)
set -euo pipefail

cd "$(dirname "$0")/.."

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "check_tidy: clang-tidy not found, skipping" >&2
  exit 0
fi

if [[ ! -f build/compile_commands.json ]]; then
  cmake -B build -S . >/dev/null
fi

mapfile -t files < <(git ls-files 'src/**/*.cpp' | grep -E "${1:-.}")
if [[ ${#files[@]} -eq 0 ]]; then
  echo "check_tidy: no files match filter '${1:-}'" >&2
  exit 2
fi

clang-tidy -p build --quiet "${files[@]}"
echo "check_tidy: ${#files[@]} files checked"
