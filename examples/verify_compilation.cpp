/// \file verify_compilation.cpp
/// \brief Use case 1 of the paper: verifying compilation-flow results.
///        Compiles a Grover circuit to the 65-qubit Manhattan-like device,
///        verifies it, then injects the two error models of Sec. 6.1 and
///        shows that both are caught.
#include "check/manager.hpp"
#include "circuits/benchmarks.hpp"
#include "circuits/error_injection.hpp"
#include "compile/architecture.hpp"
#include "compile/mapper.hpp"

#include <cstdio>
#include <random>

int main() {
  using namespace veriqc;

  const auto original = circuits::grover(4, 11);
  const auto arch = compile::Architecture::ibmManhattanLike();
  const auto compiled = compile::compileForArchitecture(original, arch);
  std::printf("Grover(4): |G| = %zu gates on %zu qubits\n",
              original.gateCount(), original.numQubits());
  std::printf("Compiled to %s: |G'| = %zu gates, initial layout %s\n\n",
              arch.name().c_str(), compiled.gateCount(),
              compiled.initialLayout().isIdentity() ? "trivial" : "nontrivial");

  check::Configuration config;
  config.simulationRuns = 16;
  config.timeout = std::chrono::seconds(60);

  const auto ok = check::checkEquivalence(original, compiled, config);
  std::printf("Verification of the correct compilation: %s\n",
              ok.toString().c_str());

  std::mt19937_64 rng(7);
  if (const auto missing = circuits::removeRandomGate(compiled, rng)) {
    const auto verdict = check::checkEquivalence(original, *missing, config);
    std::printf("With one gate removed:                   %s\n",
                verdict.toString().c_str());
  }
  if (const auto flipped = circuits::flipRandomCnot(compiled, rng)) {
    const auto verdict = check::checkEquivalence(original, *flipped, config);
    std::printf("With one CNOT flipped:                   %s\n",
                verdict.toString().c_str());
  }
  return 0;
}
