#include "circuits/benchmarks.hpp"
#include "circuits/error_injection.hpp"
#include "sim/dense.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace veriqc {
namespace {

TEST(CircuitsTest, GhzState) {
  const auto c = circuits::ghz(3);
  EXPECT_EQ(c.gateCount(), 3U);
  auto state = sim::zeroState(3);
  sim::applyLogical(c, state);
  EXPECT_NEAR(std::abs(state[0]), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(std::abs(state[7]), 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(CircuitsTest, GhzRejectsZeroQubits) {
  EXPECT_THROW(circuits::ghz(0), std::invalid_argument);
}

TEST(CircuitsTest, QftMatrixIsFourierMatrix) {
  const std::size_t n = 3;
  const auto u = sim::circuitUnitary(circuits::qft(n, true));
  const std::size_t dim = 8;
  const double norm = 1.0 / std::sqrt(static_cast<double>(dim));
  for (std::size_t r = 0; r < dim; ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      const double angle = 2.0 * PI * static_cast<double>(r * c) /
                           static_cast<double>(dim);
      const std::complex<double> expected =
          norm * std::exp(std::complex<double>{0.0, angle});
      EXPECT_NEAR(std::abs(u.at(r, c) - expected), 0.0, 1e-9)
          << r << "," << c;
    }
  }
}

TEST(CircuitsTest, QftWithPermutationMatchesQftWithSwaps) {
  const auto withSwaps = sim::circuitUnitary(circuits::qft(4, true));
  const auto withPerm = sim::circuitUnitary(circuits::qft(4, false));
  EXPECT_TRUE(withSwaps.equals(withPerm, 1e-9));
}

TEST(CircuitsTest, IqftInvertsQft) {
  const auto u = sim::circuitUnitary(circuits::qft(3));
  const auto v = sim::circuitUnitary(circuits::iqft(3));
  EXPECT_TRUE(
      u.multiply(v).equalsUpToGlobalPhase(sim::Matrix::identity(8)));
}

TEST(CircuitsTest, GraphStateHasCorrectStabilizerSigns) {
  // For a 2-qubit graph with one edge, the state is (|00>+|01>+|10>-|11>)/2.
  const auto c = circuits::graphState(2, {{0, 1}});
  auto state = sim::zeroState(2);
  sim::applyLogical(c, state);
  EXPECT_NEAR(state[0].real(), 0.5, 1e-12);
  EXPECT_NEAR(state[1].real(), 0.5, 1e-12);
  EXPECT_NEAR(state[2].real(), 0.5, 1e-12);
  EXPECT_NEAR(state[3].real(), -0.5, 1e-12);
}

TEST(CircuitsTest, RandomGraphStateIsDeterministicPerSeed) {
  const auto a = circuits::randomGraphState(6, 3, 42);
  const auto b = circuits::randomGraphState(6, 3, 42);
  EXPECT_EQ(a.ops(), b.ops());
  const auto c = circuits::randomGraphState(6, 3, 43);
  EXPECT_NE(a.ops(), c.ops());
}

TEST(CircuitsTest, WStateAmplitudes) {
  for (const std::size_t n : {2U, 3U, 5U}) {
    auto state = sim::zeroState(n);
    sim::applyLogical(circuits::wState(n), state);
    const double expected = 1.0 / std::sqrt(static_cast<double>(n));
    for (std::size_t q = 0; q < n; ++q) {
      EXPECT_NEAR(std::abs(state[std::size_t{1} << q]), expected, 1e-9)
          << "n=" << n << " q=" << q;
    }
    EXPECT_NEAR(std::abs(state[0]), 0.0, 1e-9);
  }
}

TEST(CircuitsTest, CuccaroAdderAddsCorrectly) {
  const std::size_t bits = 3;
  const auto adder = circuits::cuccaroAdder(bits);
  const std::size_t n = adder.numQubits();
  for (std::uint64_t a = 0; a < 8; ++a) {
    for (std::uint64_t b = 0; b < 8; ++b) {
      auto state = sim::zeroState(n);
      // Encode inputs: layout [cin, a0, b0, a1, b1, a2, b2, cout].
      std::size_t index = 0;
      for (std::size_t i = 0; i < bits; ++i) {
        if ((a >> i) & 1U) {
          index |= std::size_t{1} << (1 + 2 * i);
        }
        if ((b >> i) & 1U) {
          index |= std::size_t{1} << (2 + 2 * i);
        }
      }
      state[0] = 0.0;
      state[index] = 1.0;
      sim::applyLogical(adder, state);
      // Find the output basis state.
      std::size_t out = 0;
      for (std::size_t i = 0; i < state.size(); ++i) {
        if (std::abs(state[i]) > 0.5) {
          out = i;
          break;
        }
      }
      // Decode: b register now holds a+b (mod 8), cout the carry.
      std::uint64_t sum = 0;
      for (std::size_t i = 0; i < bits; ++i) {
        sum |= ((out >> (2 + 2 * i)) & 1U) << i;
      }
      const std::uint64_t carry = (out >> (n - 1)) & 1U;
      EXPECT_EQ(sum + (carry << bits), a + b) << "a=" << a << " b=" << b;
      // The a register must be restored.
      std::uint64_t aOut = 0;
      for (std::size_t i = 0; i < bits; ++i) {
        aOut |= ((out >> (1 + 2 * i)) & 1U) << i;
      }
      EXPECT_EQ(aOut, a);
    }
  }
}

TEST(CircuitsTest, ConstantAdderAddsConstant) {
  const std::size_t bits = 4;
  for (const std::uint64_t constant : {1U, 5U, 7U, 15U}) {
    const auto adder = circuits::constantAdder(bits, constant);
    for (std::uint64_t x = 0; x < 16; ++x) {
      auto state = sim::zeroState(bits);
      state[0] = 0.0;
      state[x] = 1.0;
      sim::applyLogical(adder, state);
      const std::uint64_t expected = (x + constant) % 16;
      EXPECT_NEAR(std::abs(state[expected]), 1.0, 1e-9)
          << "x=" << x << " c=" << constant;
    }
  }
}

TEST(CircuitsTest, UrfLikeIsReversibleAndClassical) {
  // The circuit must map every basis state to a single basis state.
  const auto c = circuits::urfLike(4, 20, 99);
  const auto u = sim::circuitUnitary(c);
  for (std::size_t col = 0; col < 16; ++col) {
    std::size_t ones = 0;
    for (std::size_t row = 0; row < 16; ++row) {
      const double mag = std::abs(u.at(row, col));
      if (mag > 1e-9) {
        EXPECT_NEAR(mag, 1.0, 1e-9);
        ++ones;
      }
    }
    EXPECT_EQ(ones, 1U);
  }
}

TEST(CircuitsTest, GroverOracleGateCountGrowsWithIterations) {
  const auto g1 = circuits::grover(4, 3, 1);
  const auto g2 = circuits::grover(4, 3, 2);
  EXPECT_GT(g2.gateCount(), g1.gateCount());
}

TEST(CircuitsTest, RandomCliffordContainsOnlyClifford) {
  const auto c = circuits::randomClifford(4, 10, 5);
  for (const auto& op : c.ops()) {
    EXPECT_TRUE(op.type == OpType::H || op.type == OpType::S ||
                op.type == OpType::Sdg ||
                (op.type == OpType::X && op.controls.size() == 1))
        << op.toString();
  }
}

TEST(CircuitsTest, RandomCliffordTFractionProducesTs) {
  const auto c = circuits::randomCliffordT(4, 20, 0.5, 5);
  std::size_t tCount = 0;
  for (const auto& op : c.ops()) {
    if (op.type == OpType::T || op.type == OpType::Tdg) {
      ++tCount;
    }
  }
  EXPECT_GT(tCount, 10U);
}

TEST(CircuitsTest, BernsteinVaziraniRecoversSecret) {
  for (const std::uint64_t secret : {0ULL, 5ULL, 13ULL, 15ULL}) {
    auto state = sim::zeroState(4);
    sim::applyLogical(circuits::bernsteinVazirani(4, secret), state);
    EXPECT_NEAR(std::abs(state[secret]), 1.0, 1e-9) << secret;
  }
}

TEST(CircuitsTest, DeutschJozsaDistinguishesConstantFromBalanced) {
  // Constant oracle: measurement yields |0...0>.
  auto constant = sim::zeroState(4);
  sim::applyLogical(circuits::deutschJozsa(4, 0), constant);
  EXPECT_NEAR(std::abs(constant[0]), 1.0, 1e-9);
  // Balanced oracle: |0...0> amplitude vanishes.
  auto balanced = sim::zeroState(4);
  sim::applyLogical(circuits::deutschJozsa(4, 9), balanced);
  EXPECT_NEAR(std::abs(balanced[0]), 0.0, 1e-9);
}

TEST(CircuitsTest, HiddenShiftRecoversShift) {
  for (const std::uint64_t shift : {0ULL, 3ULL, 10ULL, 15ULL}) {
    auto state = sim::zeroState(4);
    sim::applyLogical(circuits::hiddenShift(4, shift), state);
    EXPECT_NEAR(std::abs(state[shift]), 1.0, 1e-9) << shift;
  }
}

TEST(CircuitsTest, HiddenShiftRequiresEvenWidth) {
  EXPECT_THROW(circuits::hiddenShift(3, 1), std::invalid_argument);
}

TEST(ErrorInjectionTest, RemoveGateShrinksCircuit) {
  std::mt19937_64 rng(1);
  const auto c = circuits::ghz(4);
  const auto damaged = circuits::removeRandomGate(c, rng);
  ASSERT_TRUE(damaged.has_value());
  EXPECT_EQ(damaged->gateCount(), c.gateCount() - 1);
  const auto u = sim::circuitUnitary(c);
  const auto v = sim::circuitUnitary(*damaged);
  EXPECT_FALSE(u.equalsUpToGlobalPhase(v));
}

TEST(ErrorInjectionTest, RemoveGateOnEmptyCircuitFails) {
  std::mt19937_64 rng(1);
  const QuantumCircuit empty(2);
  EXPECT_FALSE(circuits::removeRandomGate(empty, rng).has_value());
}

TEST(ErrorInjectionTest, FlipCnotChangesFunctionality) {
  std::mt19937_64 rng(2);
  const auto c = circuits::ghz(3);
  const auto damaged = circuits::flipRandomCnot(c, rng);
  ASSERT_TRUE(damaged.has_value());
  EXPECT_EQ(damaged->gateCount(), c.gateCount());
  const auto u = sim::circuitUnitary(c);
  const auto v = sim::circuitUnitary(*damaged);
  EXPECT_FALSE(u.equalsUpToGlobalPhase(v));
}

TEST(ErrorInjectionTest, FlipCnotRequiresCnot) {
  std::mt19937_64 rng(3);
  QuantumCircuit c(2);
  c.h(0);
  EXPECT_FALSE(circuits::flipRandomCnot(c, rng).has_value());
}

TEST(ErrorInjectionTest, InjectionIsDeterministicPerSeed) {
  const auto c = circuits::randomCircuit(4, 30, 8);
  std::mt19937_64 rngA(77);
  std::mt19937_64 rngB(77);
  const auto a = circuits::removeRandomGate(c, rngA);
  const auto b = circuits::removeRandomGate(c, rngB);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->ops(), b->ops());
}

} // namespace
} // namespace veriqc
