#include "audit/finding.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace veriqc::audit {

const char* toString(const AuditSeverity severity) noexcept {
  switch (severity) {
  case AuditSeverity::Info:
    return "info";
  case AuditSeverity::Warning:
    return "warning";
  case AuditSeverity::Error:
    return "error";
  }
  return "unknown";
}

std::string AuditFinding::toString() const {
  std::ostringstream os;
  os << audit::toString(severity) << " [" << code << "] " << message;
  if (!location.empty()) {
    os << " (" << location << ")";
  }
  return os.str();
}

void AuditReport::add(const AuditSeverity severity, std::string code,
                      std::string message, std::string location) {
  findings.push_back(
      {severity, std::move(code), std::move(message), std::move(location)});
}

void AuditReport::merge(AuditReport other) {
  findings.insert(findings.end(),
                  std::make_move_iterator(other.findings.begin()),
                  std::make_move_iterator(other.findings.end()));
}

std::size_t AuditReport::errorCount() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(), [](const auto& f) {
        return f.severity == AuditSeverity::Error;
      }));
}

std::string AuditReport::toString() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& finding : findings) {
    if (!first) {
      os << '\n';
    }
    first = false;
    os << finding.toString();
  }
  return os.str();
}

namespace {

std::string describe(const std::string& context, const AuditReport& report) {
  std::ostringstream os;
  os << context << ": " << report.errorCount() << " invariant violation(s)";
  // Quote the first few findings so the error message alone is actionable.
  std::size_t shown = 0;
  for (const auto& finding : report.findings) {
    if (finding.severity != AuditSeverity::Error) {
      continue;
    }
    os << "; " << finding.toString();
    if (++shown == 3) {
      break;
    }
  }
  return os.str();
}

} // namespace

AuditError::AuditError(const std::string& context, AuditReport report)
    : VeriqcError(describe(context, report)), report_(std::move(report)) {}

int auditLevelFromEnv() noexcept {
  static const int cached = [] {
    const char* raw = std::getenv("VERIQC_AUDIT");
    if (raw == nullptr || *raw == '\0') {
      return kAuditOff;
    }
    char* end = nullptr;
    const long value = std::strtol(raw, &end, 10);
    if (end == raw || value < 0) {
      return kAuditOff;
    }
    return value > kAuditEveryCheckpoint ? kAuditEveryCheckpoint
                                         : static_cast<int>(value);
  }();
  return cached;
}

int effectiveAuditLevel(const int configured) noexcept {
  const int env = auditLevelFromEnv();
  return configured > env ? configured : env;
}

void requireClean(const AuditReport& report, const std::string& context) {
  if (report.hasErrors()) {
    throw AuditError(context, report);
  }
}

} // namespace veriqc::audit
