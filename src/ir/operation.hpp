/// \file operation.hpp
/// \brief A single gate application inside a quantum circuit.
#pragma once

#include "ir/op_type.hpp"
#include "ir/types.hpp"

#include <string>
#include <vector>

namespace veriqc {

/// One gate application: a base type, its (positive) control qubits, its
/// target qubit(s) and real-valued parameters.
///
/// Invariants (checked by validate()):
///  * controls and targets are pairwise disjoint and duplicate-free,
///  * single-target types have exactly one target, SWAP has exactly two,
///  * params.size() == numParameters(type).
struct Operation {
  OpType type = OpType::None;
  std::vector<Qubit> controls;
  std::vector<Qubit> targets;
  std::vector<double> params;

  Operation() = default;
  Operation(OpType t, std::vector<Qubit> ctrls, std::vector<Qubit> tgts,
            std::vector<double> ps = {});

  /// \throws CircuitError if any invariant is violated.
  void validate(std::size_t nqubits) const;

  /// The inverse operation (same qubits, inverted functionality).
  [[nodiscard]] Operation inverse() const;

  /// All qubits this operation acts on (controls then targets).
  [[nodiscard]] std::vector<Qubit> usedQubits() const;

  /// True if the operation touches qubit q (as control or target).
  [[nodiscard]] bool actsOn(Qubit q) const noexcept;

  /// Uncontrolled SWAP (candidate for permutation absorption).
  [[nodiscard]] bool isBareSwap() const noexcept {
    return type == OpType::SWAP && controls.empty();
  }

  /// True for Barrier/Measure (skipped by functional analyses).
  [[nodiscard]] bool isNonUnitary() const noexcept {
    return type == OpType::Barrier || type == OpType::Measure;
  }

  /// True if the whole (controlled) operation is diagonal.
  [[nodiscard]] bool isDiagonal() const noexcept {
    return isDiagonalType(type);
  }

  /// True if this operation is the exact inverse of `other` (same qubits and
  /// parameters match to `tol`). Used by the optimizer's cancellation pass.
  [[nodiscard]] bool isInverseOf(const Operation& other,
                                 double tol = 1e-12) const;

  [[nodiscard]] std::string toString() const;

  friend bool operator==(const Operation&, const Operation&) = default;
};

} // namespace veriqc
