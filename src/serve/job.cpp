#include "serve/job.hpp"

#include "obs/json.hpp"

#include <chrono>
#include <functional>
#include <unordered_map>

namespace veriqc::serve {

namespace {

/// Thrown internally by the config appliers; converted to a
/// MalformedRequest rejection before parseJobLine returns.
struct ProtocolError {
  std::string detail;
};

std::size_t asSize(const obs::Json& value, const std::string& key) {
  if (!value.isInteger() || value.asInt() < 0) {
    throw ProtocolError{"config." + key + ": expected a non-negative integer"};
  }
  return static_cast<std::size_t>(value.asInt());
}

bool asBool(const obs::Json& value, const std::string& key) {
  if (!value.isBool()) {
    throw ProtocolError{"config." + key + ": expected a boolean"};
  }
  return value.asBool();
}

const std::string& asString(const obs::Json& value, const std::string& key) {
  if (!value.isString()) {
    throw ProtocolError{"config." + key + ": expected a string"};
  }
  return value.asString();
}

/// Apply one whitelisted config key to the job's configuration. Every knob a
/// client may set is listed here; anything else is a protocol error.
void applyConfigKey(check::Configuration& config, const std::string& key,
                    const obs::Json& value) {
  using check::OracleStrategy;
  if (key == "timeoutMilliseconds") {
    config.timeout = std::chrono::milliseconds(
        static_cast<std::int64_t>(asSize(value, key)));
  } else if (key == "simulationRuns") {
    config.simulationRuns = asSize(value, key);
  } else if (key == "simulationThreads") {
    config.simulationThreads = asSize(value, key);
  } else if (key == "checkThreads") {
    config.checkThreads = asSize(value, key);
  } else if (key == "zxParallelRegions") {
    config.zxParallelRegions = asSize(value, key);
  } else if (key == "seed") {
    config.seed = static_cast<std::uint64_t>(asSize(value, key));
  } else if (key == "runAlternating") {
    config.runAlternating = asBool(value, key);
  } else if (key == "runSimulation") {
    config.runSimulation = asBool(value, key);
  } else if (key == "runZX") {
    config.runZX = asBool(value, key);
  } else if (key == "runDense") {
    config.runDense = asBool(value, key);
  } else if (key == "parallel") {
    config.parallel = asBool(value, key);
  } else if (key == "maxDDNodes") {
    config.maxDDNodes = asSize(value, key);
  } else if (key == "maxZXVertices") {
    config.maxZXVertices = asSize(value, key);
  } else if (key == "maxMemoryMB") {
    config.maxMemoryMB = asSize(value, key);
  } else if (key == "engineRetryLimit") {
    config.engineRetryLimit = asSize(value, key);
  } else if (key == "watchdogMillis") {
    config.watchdogMillis = asSize(value, key);
  } else if (key == "recordTrace") {
    config.recordTrace = asBool(value, key);
  } else if (key == "auditLevel") {
    config.auditLevel = static_cast<int>(asSize(value, key));
  } else if (key == "faultPlan") {
    config.faultPlan = asString(value, key);
  } else if (key == "oracle") {
    const auto& name = asString(value, key);
    if (name == "naive") {
      config.oracle = OracleStrategy::Naive;
    } else if (name == "proportional") {
      config.oracle = OracleStrategy::Proportional;
    } else if (name == "lookahead") {
      config.oracle = OracleStrategy::Lookahead;
    } else {
      throw ProtocolError{"config.oracle: unknown strategy \"" + name + "\""};
    }
  } else {
    // Strict whitelist: silently ignoring a typo'd budget key would run an
    // unbudgeted check — fail the job instead.
    throw ProtocolError{"config." + key + ": unknown configuration key"};
  }
}

const std::string& requireString(const obs::Json& object, const char* key) {
  const auto* member = object.find(key);
  if (member == nullptr) {
    throw ProtocolError{std::string("missing required key \"") + key + "\""};
  }
  if (!member->isString() || member->asString().empty()) {
    throw ProtocolError{std::string("\"") + key +
                        "\": expected a non-empty string"};
  }
  return member->asString();
}

} // namespace

std::string toString(const RejectReason reason) {
  switch (reason) {
  case RejectReason::None:
    return "";
  case RejectReason::MalformedRequest:
    return "malformed_request";
  case RejectReason::OversizedRequest:
    return "oversized_request";
  case RejectReason::QueueFull:
    return "queue_full";
  case RejectReason::MemoryBudget:
    return "memory_budget";
  case RejectReason::BudgetExceedsLimit:
    return "budget_exceeds_limit";
  case RejectReason::FaultPlanForbidden:
    return "fault_plan_forbidden";
  case RejectReason::ShuttingDown:
    return "shutting_down";
  }
  return "unknown";
}

ParsedJob parseJobLine(const std::string_view line,
                       const check::Configuration& defaults) {
  ParsedJob parsed;
  parsed.request.config = defaults;
  const auto reject = [&parsed](std::string detail) {
    parsed.reason = RejectReason::MalformedRequest;
    parsed.detail = std::move(detail);
    return parsed;
  };
  obs::Json job;
  try {
    job = obs::Json::parse(line);
  } catch (const obs::JsonError& e) {
    return reject(std::string("invalid JSON: ") + e.what());
  }
  if (!job.isObject()) {
    return reject("expected a JSON object per line");
  }
  try {
    parsed.request.id = requireString(job, "id");
    parsed.request.file1 = requireString(job, "file1");
    parsed.request.file2 = requireString(job, "file2");
    for (const auto& [key, value] : job.asObject()) {
      if (key == "id" || key == "file1" || key == "file2") {
        continue;
      }
      if (key != "config") {
        throw ProtocolError{"\"" + key + "\": unknown request key"};
      }
      if (!value.isObject()) {
        throw ProtocolError{"\"config\": expected an object"};
      }
      for (const auto& [configKey, configValue] : value.asObject()) {
        applyConfigKey(parsed.request.config, configKey, configValue);
      }
    }
  } catch (const ProtocolError& e) {
    // Keep whatever id survived parsing so the rejection line still names
    // the job when possible.
    return reject(e.detail);
  }
  return parsed;
}

} // namespace veriqc::serve
