
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dd/export.cpp" "src/dd/CMakeFiles/veriqc_dd.dir/export.cpp.o" "gcc" "src/dd/CMakeFiles/veriqc_dd.dir/export.cpp.o.d"
  "/root/repo/src/dd/package.cpp" "src/dd/CMakeFiles/veriqc_dd.dir/package.cpp.o" "gcc" "src/dd/CMakeFiles/veriqc_dd.dir/package.cpp.o.d"
  "/root/repo/src/dd/real_table.cpp" "src/dd/CMakeFiles/veriqc_dd.dir/real_table.cpp.o" "gcc" "src/dd/CMakeFiles/veriqc_dd.dir/real_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/veriqc_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
