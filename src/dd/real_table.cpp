#include "dd/real_table.hpp"

namespace veriqc::dd {

double RealTable::lookup(const double value) {
  // Fast path for the ubiquitous exact values.
  if (value == 0.0 || value == 1.0 || value == -1.0) {
    return value;
  }
  if (std::abs(value) < tolerance_) {
    return 0.0;
  }
  const auto key = keyOf(value);
  for (const auto k : {key - 1, key, key + 1}) {
    const auto it = buckets_.find(k);
    if (it == buckets_.end()) {
      continue;
    }
    for (const auto candidate : it->second) {
      if (std::abs(candidate - value) < tolerance_) {
        return candidate;
      }
    }
  }
  buckets_[key].push_back(value);
  ++count_;
  return value;
}

} // namespace veriqc::dd
