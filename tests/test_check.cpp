#include "check/manager.hpp"
#include "circuits/benchmarks.hpp"
#include "circuits/error_injection.hpp"
#include "compile/decompose.hpp"
#include "compile/mapper.hpp"
#include "opt/optimizer.hpp"

#include <gtest/gtest.h>

namespace veriqc::check {
namespace {

using circuits::ghz;
using compile::Architecture;

Configuration quickConfig() {
  Configuration config;
  config.simulationRuns = 8;
  config.seed = 7;
  return config;
}

// --- construction checker ----------------------------------------------------

TEST(ConstructionCheckerTest, IdenticalCircuitsAreEquivalent) {
  const auto result = ddConstructionCheck(ghz(3), ghz(3));
  EXPECT_EQ(result.criterion, EquivalenceCriterion::Equivalent);
}

TEST(ConstructionCheckerTest, GlobalPhaseIsDetected) {
  auto phased = ghz(3);
  phased.setGlobalPhase(0.4);
  const auto result = ddConstructionCheck(ghz(3), phased);
  EXPECT_EQ(result.criterion,
            EquivalenceCriterion::EquivalentUpToGlobalPhase);
}

TEST(ConstructionCheckerTest, DetectsMissingGate) {
  auto damaged = ghz(3);
  damaged.ops().pop_back();
  const auto result = ddConstructionCheck(ghz(3), damaged);
  EXPECT_EQ(result.criterion, EquivalenceCriterion::NotEquivalent);
  EXPECT_LT(result.hilbertSchmidtFidelity, 0.999);
}

// --- dense baseline -----------------------------------------------------------

TEST(DenseCheckTest, AgreesWithDDCheckers) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto a = circuits::randomCircuit(3, 20, seed);
    const auto b = circuits::randomCircuit(3, 20, seed + 100);
    const auto dense = denseCheck(a, b);
    const auto construction = ddConstructionCheck(a, b);
    EXPECT_EQ(provedEquivalent(dense.criterion),
              provedEquivalent(construction.criterion))
        << "seed " << seed;
  }
  const auto self = denseCheck(ghz(3), ghz(3));
  EXPECT_EQ(self.criterion, EquivalenceCriterion::Equivalent);
}

TEST(DenseCheckTest, RejectsLargeCircuits) {
  EXPECT_THROW((void)denseCheck(ghz(20), ghz(20)), CircuitError);
}

// --- alternating checker -----------------------------------------------------

class OracleTest : public ::testing::TestWithParam<OracleStrategy> {};

TEST_P(OracleTest, PaperExample5CompiledGhz) {
  // Fig. 2 / Example 5: GHZ mapped to the 5-qubit linear architecture; the
  // checker must absorb the reconstructed SWAP and equalize the output
  // permutation.
  Configuration config = quickConfig();
  config.oracle = GetParam();
  const auto compiled =
      compile::compileForArchitecture(ghz(3), Architecture::linear(5));
  const auto result = ddAlternatingCheck(ghz(3), compiled, config);
  EXPECT_TRUE(provedEquivalent(result.criterion))
      << toString(config.oracle) << ": " << result.toString();
}

TEST_P(OracleTest, RandomCircuitTimesInverse) {
  Configuration config = quickConfig();
  config.oracle = GetParam();
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto c = circuits::randomCircuit(4, 25, seed);
    const auto result = ddAlternatingCheck(c, c, config);
    EXPECT_TRUE(provedEquivalent(result.criterion)) << "seed " << seed;
  }
}

TEST_P(OracleTest, DetectsFlippedCnot) {
  Configuration config = quickConfig();
  config.oracle = GetParam();
  std::mt19937_64 rng(3);
  const auto damaged = circuits::flipRandomCnot(ghz(4), rng);
  ASSERT_TRUE(damaged.has_value());
  const auto result = ddAlternatingCheck(ghz(4), *damaged, config);
  EXPECT_EQ(result.criterion, EquivalenceCriterion::NotEquivalent);
}

INSTANTIATE_TEST_SUITE_P(AllOracles, OracleTest,
                         ::testing::Values(OracleStrategy::Naive,
                                           OracleStrategy::Proportional,
                                           OracleStrategy::Lookahead));

TEST(AlternatingTest, HandlesRandomPermutations) {
  // Random layouts/output permutations on both sides; equivalence decided
  // against the dense ground truth.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    std::mt19937_64 rng(seed);
    auto c = circuits::randomCircuit(4, 20, seed);
    std::vector<Qubit> v(4);
    std::iota(v.begin(), v.end(), 0U);
    auto permuted = c;
    std::shuffle(v.begin(), v.end(), rng);
    permuted.initialLayout() = Permutation(v);
    std::shuffle(v.begin(), v.end(), rng);
    permuted.outputPermutation() = Permutation(v);
    const auto viaConstruction = ddConstructionCheck(c, permuted);
    const auto viaAlternating = ddAlternatingCheck(c, permuted, quickConfig());
    EXPECT_EQ(provedEquivalent(viaConstruction.criterion),
              provedEquivalent(viaAlternating.criterion))
        << "seed " << seed;
  }
}

TEST(AlternatingTest, EquivalentAgainstCompiledManhattan) {
  const auto arch = Architecture::ibmManhattanLike();
  const auto original = ghz(6);
  const auto compiled = compile::compileForArchitecture(original, arch);
  const auto result = ddAlternatingCheck(original, compiled, quickConfig());
  EXPECT_TRUE(provedEquivalent(result.criterion)) << result.toString();
}

TEST(AlternatingTest, SwapAbsorptionKeepsDiagramSmall) {
  // A pure SWAP network must be verified without building any large DD.
  QuantumCircuit swaps(6);
  for (Qubit q = 0; q + 1 < 6; ++q) {
    swaps.swap(q, q + 1);
  }
  QuantumCircuit asPermutation(6);
  std::vector<Qubit> outPerm{5, 0, 1, 2, 3, 4};
  asPermutation.outputPermutation() = Permutation(outPerm);
  const auto result = ddAlternatingCheck(swaps, asPermutation, quickConfig());
  EXPECT_TRUE(provedEquivalent(result.criterion)) << result.toString();
  EXPECT_LE(result.peakNodes, 16U);
}

TEST(AlternatingTest, TraceShowsDiagramStaysNearIdentity) {
  // The Fig. 4 intuition: verifying a compiled circuit with the alternating
  // scheme keeps the diagram identity-sized throughout, far below the size
  // of the full system-matrix DD.
  Configuration config = quickConfig();
  config.recordTrace = true;
  const auto compiled =
      compile::compileForArchitecture(ghz(6), Architecture::linear(8));
  const auto result = ddAlternatingCheck(ghz(6), compiled, config);
  ASSERT_TRUE(provedEquivalent(result.criterion));
  ASSERT_FALSE(result.sizeTrace.empty());
  for (const auto nodes : result.sizeTrace) {
    EXPECT_LE(nodes, 24U); // identity on <= 8 wires is 8 nodes
  }
}

TEST(AlternatingTest, ExternalStopWithoutDeadlineIsCancelled) {
  // No deadline is configured, so a tripped stop token can only mean a
  // sibling engine's definitive verdict — the slot must read Cancelled,
  // not Timeout (the misattribution this checker used to commit).
  Configuration config = quickConfig();
  const auto c = circuits::randomCircuit(6, 200, 1);
  const auto result =
      ddAlternatingCheck(c, c, config, [] { return true; });
  EXPECT_EQ(result.criterion, EquivalenceCriterion::Cancelled);
}

TEST(CompilationFlowTest, VerifiesCompiledCircuitsInLockstep) {
  for (const auto* name : {"ghz", "qft", "grover"}) {
    QuantumCircuit original = std::string(name) == "ghz" ? ghz(5)
                              : std::string(name) == "qft"
                                  ? circuits::qft(5)
                                  : circuits::grover(4, 6);
    compile::ExpansionCounts counts;
    const auto compiled = compile::compileForArchitecture(
        original, Architecture::linear(8), {}, &counts);
    ASSERT_EQ(counts.size(), original.size()) << name;
    std::size_t total = 0;
    for (const auto c : counts) {
      total += c;
    }
    ASSERT_EQ(total, compiled.size()) << name;
    const auto result =
        ddCompilationFlowCheck(original, compiled, counts, quickConfig());
    EXPECT_TRUE(provedEquivalent(result.criterion))
        << name << ": " << result.toString();
  }
}

TEST(CompilationFlowTest, DetectsErrors) {
  compile::ExpansionCounts counts;
  const auto original = ghz(5);
  auto compiled = compile::compileForArchitecture(
      original, Architecture::linear(8), {}, &counts);
  // Flip one CNOT in place (keeps the op count, so counts stay valid).
  for (auto& op : compiled.ops()) {
    if (op.type == OpType::X && op.controls.size() == 1) {
      std::swap(op.controls[0], op.targets[0]);
      break;
    }
  }
  const auto result =
      ddCompilationFlowCheck(original, compiled, counts, quickConfig());
  EXPECT_EQ(result.criterion, EquivalenceCriterion::NotEquivalent);
}

TEST(CompilationFlowTest, RejectsInconsistentCounts) {
  const auto original = ghz(3);
  const auto compiled =
      compile::compileForArchitecture(original, Architecture::linear(5));
  EXPECT_THROW((void)ddCompilationFlowCheck(original, compiled, {1, 1},
                                            quickConfig()),
               CircuitError);
  const std::vector<std::size_t> wrongTotal(original.size(), 0);
  EXPECT_THROW((void)ddCompilationFlowCheck(original, compiled, wrongTotal,
                                            quickConfig()),
               CircuitError);
}

TEST(CompilationFlowTest, LockstepKeepsDiagramSmall) {
  compile::ExpansionCounts counts;
  const auto original = circuits::qft(6);
  const auto compiled = compile::compileForArchitecture(
      original, Architecture::ibmManhattanLike(), {}, &counts);
  auto config = quickConfig();
  config.recordTrace = true;
  const auto flow =
      ddCompilationFlowCheck(original, compiled, counts, config);
  ASSERT_TRUE(provedEquivalent(flow.criterion));
  const auto plain = ddAlternatingCheck(original, compiled, config);
  ASSERT_TRUE(provedEquivalent(plain.criterion));
  // Lockstep keeps the diagram within the same order of magnitude as the
  // proportional oracle (it cannot absorb SWAPs, so it is not strictly
  // smaller).
  EXPECT_LE(flow.peakNodes, 10 * plain.peakNodes + 256);
}

// --- simulation checker --------------------------------------------------------

class StimuliKindTest : public ::testing::TestWithParam<sim::StimuliKind> {};

TEST_P(StimuliKindTest, EquivalentYieldsProbablyEquivalent) {
  Configuration config = quickConfig();
  config.stimuliKind = GetParam();
  const auto result = ddSimulationCheck(ghz(4), ghz(4), config);
  EXPECT_EQ(result.criterion, EquivalenceCriterion::ProbablyEquivalent);
  EXPECT_EQ(result.performedSimulations, config.simulationRuns);
}

TEST_P(StimuliKindTest, DetectsInjectedErrors) {
  Configuration config = quickConfig();
  config.stimuliKind = GetParam();
  std::mt19937_64 rng(5);
  const auto base = circuits::grover(3, 4);
  const auto missing = circuits::removeRandomGate(base, rng);
  ASSERT_TRUE(missing.has_value());
  const auto result = ddSimulationCheck(base, *missing, config);
  EXPECT_EQ(result.criterion, EquivalenceCriterion::NotEquivalent)
      << sim::toString(GetParam());
  EXPECT_LE(result.performedSimulations, config.simulationRuns);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, StimuliKindTest,
                         ::testing::Values(sim::StimuliKind::Classical,
                                           sim::StimuliKind::LocalQuantum,
                                           sim::StimuliKind::GlobalQuantum));

TEST(SimulationThreadsTest, VerdictDeterministicAcrossThreadCounts) {
  // Stimuli are seeded per run index, not per worker, so the counterexample
  // found must be identical no matter how runs are scheduled onto threads.
  std::mt19937_64 rng(5);
  const auto base = circuits::grover(3, 4);
  const auto missing = circuits::removeRandomGate(base, rng);
  ASSERT_TRUE(missing.has_value());
  Configuration config = quickConfig();
  config.simulationRuns = 16;
  std::vector<std::int64_t> counterexamples;
  for (const auto threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    config.simulationThreads = threads;
    const auto result = ddSimulationCheck(base, *missing, config);
    EXPECT_EQ(result.criterion, EquivalenceCriterion::NotEquivalent)
        << threads << " threads";
    ASSERT_GE(result.counterexampleStimulus, 0) << threads << " threads";
    counterexamples.push_back(result.counterexampleStimulus);
  }
  EXPECT_EQ(counterexamples[1], counterexamples[0]);
  EXPECT_EQ(counterexamples[2], counterexamples[0]);
}

TEST(SimulationThreadsTest, EquivalentPairAgreesAcrossThreadCounts) {
  Configuration config = quickConfig();
  config.simulationRuns = 16;
  // 0 = one worker per hardware thread.
  for (const auto threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                             std::size_t{0}}) {
    config.simulationThreads = threads;
    const auto result = ddSimulationCheck(ghz(4), ghz(4), config);
    EXPECT_EQ(result.criterion, EquivalenceCriterion::ProbablyEquivalent)
        << threads << " threads";
    EXPECT_EQ(result.performedSimulations, config.simulationRuns)
        << threads << " threads";
    EXPECT_GT(result.computeCacheStats.lookups, 0U) << threads << " threads";
  }
}

// --- ZX checker -----------------------------------------------------------------

TEST(ZXCheckerTest, PaperExample7CompiledGhz) {
  const auto compiled =
      compile::compileForArchitecture(ghz(3), Architecture::linear(5));
  const auto result = zxCheck(ghz(3), compiled);
  EXPECT_EQ(result.criterion,
            EquivalenceCriterion::EquivalentUpToGlobalPhase)
      << result.toString();
}

TEST(ZXCheckerTest, NonEquivalenceGivesNoInformation) {
  auto damaged = ghz(3);
  damaged.ops().pop_back();
  const auto result = zxCheck(ghz(3), damaged);
  EXPECT_EQ(result.criterion, EquivalenceCriterion::NoInformation);
}

TEST(ZXCheckerTest, HandlesMultiControlledViaDecomposition) {
  const auto c = circuits::grover(3, 2);
  const auto result = zxCheck(c, c);
  EXPECT_EQ(result.criterion,
            EquivalenceCriterion::EquivalentUpToGlobalPhase)
      << result.toString();
}

TEST(ZXCheckerTest, VerifiesOptimizedCircuits) {
  const auto original = compile::decomposeToCnot(circuits::quantumWalk(3, 1));
  const auto optimized = opt::optimize(original);
  const auto result = zxCheck(original, optimized);
  EXPECT_EQ(result.criterion,
            EquivalenceCriterion::EquivalentUpToGlobalPhase)
      << result.toString();
}

// --- manager ---------------------------------------------------------------------

TEST(ManagerTest, CombinedFlowEquivalent) {
  const auto compiled =
      compile::compileForArchitecture(ghz(4), Architecture::linear(6));
  const auto result = checkEquivalence(ghz(4), compiled, quickConfig());
  EXPECT_TRUE(provedEquivalent(result.criterion)) << result.toString();
}

TEST(ManagerTest, CombinedFlowNotEquivalent) {
  std::mt19937_64 rng(11);
  const auto compiled =
      compile::compileForArchitecture(ghz(4), Architecture::linear(6));
  const auto damaged = circuits::flipRandomCnot(compiled, rng);
  ASSERT_TRUE(damaged.has_value());
  const auto result = checkEquivalence(ghz(4), *damaged, quickConfig());
  EXPECT_EQ(result.criterion, EquivalenceCriterion::NotEquivalent);
}

TEST(ManagerTest, SequentialModeMatchesParallel) {
  Configuration config = quickConfig();
  config.parallel = false;
  const auto result = checkEquivalence(ghz(3), ghz(3), config);
  EXPECT_TRUE(provedEquivalent(result.criterion));
}

TEST(ManagerTest, ZXEngineCanBeEnabled) {
  Configuration config = quickConfig();
  config.runZX = true;
  EquivalenceCheckingManager manager(ghz(3), ghz(3), config);
  const auto result = manager.run();
  EXPECT_TRUE(provedEquivalent(result.criterion));
  EXPECT_EQ(manager.engineResults().size(), 3U);
}

TEST(ManagerTest, TimeoutProducesTimeout) {
  Configuration config = quickConfig();
  config.timeout = std::chrono::milliseconds(1);
  config.simulationRuns = 1000000;
  // A large circuit that cannot finish within 1 ms.
  const auto c = compile::decomposeToCnot(circuits::grover(7, 13));
  const auto result = checkEquivalence(c, c, config);
  EXPECT_FALSE(isDefinitive(result.criterion));
}

TEST(ManagerTest, NoEnginesYieldsNoInformation) {
  Configuration config;
  config.runAlternating = false;
  config.runSimulation = false;
  const auto result = checkEquivalence(ghz(3), ghz(3), config);
  EXPECT_EQ(result.criterion, EquivalenceCriterion::NoInformation);
}

// --- fault containment and resource governance -------------------------------

TEST(FirewallTest, ThrowingEngineBecomesEngineErrorSlot) {
  // Regression: an engine throwing inside a manager thread used to unwind
  // into std::thread and std::terminate the process. Mismatched qubit counts
  // align to 20 qubits, so the dense engine throws CircuitError past its
  // size cap while the DD engines settle the (non-)equivalence.
  Configuration config = quickConfig();
  config.parallel = true;
  config.runDense = true;
  EquivalenceCheckingManager manager(ghz(2), ghz(20), config);
  const auto combined = manager.run();
  EXPECT_EQ(combined.criterion, EquivalenceCriterion::NotEquivalent)
      << combined.toString();
  const auto& slots = manager.engineResults();
  ASSERT_EQ(slots.size(), 3U);
  EXPECT_EQ(slots[2].method, "dense");
  EXPECT_EQ(slots[2].criterion, EquivalenceCriterion::EngineError);
  EXPECT_FALSE(slots[2].errorMessage.empty());
  EXPECT_NE(slots[2].toString().find("engine error"), std::string::npos);
}

TEST(FirewallTest, SequentialModeContainsEngineErrorsToo) {
  // Only ZX (which cannot decide this pair: NoInformation, not definitive)
  // and dense (which throws): the sequential loop reaches the throwing
  // engine and must contain it, and a ran-but-undecided slot outranks the
  // EngineError slot in the combined verdict.
  Configuration config = quickConfig();
  config.parallel = false;
  config.runAlternating = false;
  config.runSimulation = false;
  config.runZX = true;
  config.runDense = true;
  EquivalenceCheckingManager manager(ghz(2), ghz(20), config);
  const auto combined = manager.run();
  EXPECT_EQ(combined.criterion, EquivalenceCriterion::NoInformation)
      << combined.toString();
  const auto& slots = manager.engineResults();
  ASSERT_EQ(slots.size(), 2U);
  EXPECT_EQ(slots[1].criterion, EquivalenceCriterion::EngineError);
  EXPECT_FALSE(slots[1].errorMessage.empty());
}

TEST(FirewallTest, DenseEngineWithinCapContributesNormally) {
  Configuration config = quickConfig();
  config.runDense = true;
  config.runAlternating = false;
  config.runSimulation = false;
  const auto result = checkEquivalence(ghz(3), ghz(3), config);
  EXPECT_EQ(result.criterion, EquivalenceCriterion::Equivalent);
}

TEST(FirewallTest, AllEnginesFailingStillReturnsAResult) {
  // Only the dense engine, over its cap: the combined verdict must be the
  // EngineError slot itself — never an exception out of run().
  Configuration config = quickConfig();
  config.runAlternating = false;
  config.runSimulation = false;
  config.runDense = true;
  const auto result = checkEquivalence(ghz(2), ghz(20), config);
  EXPECT_EQ(result.criterion, EquivalenceCriterion::EngineError);
  EXPECT_FALSE(result.errorMessage.empty());
}

TEST(ResourceGovernorTest, NodeBudgetDegradesAlternatingCheck) {
  // Two unrelated 12-qubit circuits: the alternating product DD blows
  // through a 20k-node budget long before completing.
  Configuration config = quickConfig();
  config.maxDDNodes = 20000;
  const auto a = circuits::randomCircuit(12, 150, 1);
  const auto b = circuits::randomCircuit(12, 150, 2);
  const auto result = ddAlternatingCheck(a, b, config);
  EXPECT_EQ(result.criterion, EquivalenceCriterion::ResourceExhausted);
  EXPECT_NE(result.errorMessage.find("DD nodes"), std::string::npos)
      << result.errorMessage;
  EXPECT_NE(result.toString().find("resource exhausted"), std::string::npos);
}

TEST(ResourceGovernorTest, StressBudgetCappedManagerDegradesGracefully) {
  // The acceptance scenario: with a node budget the alternating engine runs
  // out (ResourceExhausted slot), the simulation engine's vector DDs stay
  // within budget and prove non-equivalence, and the combined verdict comes
  // from the survivor while recording who was resource-limited.
  Configuration config = quickConfig();
  config.parallel = false; // deterministic engine order
  config.maxDDNodes = 20000;
  const auto a = circuits::randomCircuit(12, 150, 1);
  const auto b = circuits::randomCircuit(12, 150, 2);
  EquivalenceCheckingManager manager(a, b, config);
  const auto combined = manager.run();
  EXPECT_EQ(combined.criterion, EquivalenceCriterion::NotEquivalent)
      << combined.toString();
  const auto& slots = manager.engineResults();
  ASSERT_EQ(slots.size(), 2U);
  EXPECT_EQ(slots[0].criterion, EquivalenceCriterion::ResourceExhausted);
  EXPECT_EQ(slots[1].criterion, EquivalenceCriterion::NotEquivalent);
  ASSERT_EQ(combined.resourceLimitedEngines.size(), 1U);
  EXPECT_EQ(combined.resourceLimitedEngines[0], slots[0].method);
  EXPECT_NE(combined.toString().find("resource-limited"), std::string::npos);
}

TEST(ResourceGovernorTest, ParallelBudgetCappedManagerStillDecides) {
  Configuration config = quickConfig();
  config.parallel = true;
  config.maxDDNodes = 20000;
  const auto a = circuits::randomCircuit(12, 150, 1);
  const auto b = circuits::randomCircuit(12, 150, 2);
  const auto combined = checkEquivalence(a, b, config);
  EXPECT_EQ(combined.criterion, EquivalenceCriterion::NotEquivalent)
      << combined.toString();
}

TEST(ResourceGovernorTest, SimulationReportsResourceExhaustion) {
  // A budget so small even the vector DDs of a 12-qubit simulation trip it.
  Configuration config = quickConfig();
  config.maxDDNodes = 8;
  const auto a = circuits::randomCircuit(12, 60, 3);
  const auto result = ddSimulationCheck(a, a, config);
  EXPECT_EQ(result.criterion, EquivalenceCriterion::ResourceExhausted);
  EXPECT_FALSE(result.errorMessage.empty());
}

TEST(ResourceGovernorTest, MemoryBudgetTripsQuickly) {
  // Any process has more than 1 MB resident, so the throttled RSS check must
  // fire within the first handful of garbage-collection boundaries.
  Configuration config = quickConfig();
  config.maxMemoryMB = 1;
  const auto c = circuits::randomCircuit(6, 100, 4);
  const auto result = ddAlternatingCheck(c, c, config);
  EXPECT_EQ(result.criterion, EquivalenceCriterion::ResourceExhausted);
  EXPECT_NE(result.errorMessage.find("resident memory"), std::string::npos)
      << result.errorMessage;
}

TEST(ResourceGovernorTest, ZXVertexBudgetReportsResourceExhaustion) {
  Configuration config = quickConfig();
  config.maxZXVertices = 8;
  const auto c = circuits::qft(4);
  const auto result = zxCheck(c, c, config);
  EXPECT_EQ(result.criterion, EquivalenceCriterion::ResourceExhausted);
  EXPECT_NE(result.errorMessage.find("ZX vertices"), std::string::npos)
      << result.errorMessage;
}

TEST(ResourceGovernorTest, ZXBudgetSlotNeverBeatsSurvivingEngines) {
  // Sequential simulation-then-ZX: ProbablyEquivalent is not definitive, so
  // the loop continues into the budget-capped ZX engine — whose
  // ResourceExhausted must not displace the survivor's verdict.
  Configuration config = quickConfig();
  config.parallel = false;
  config.runAlternating = false;
  config.runZX = true;
  config.maxZXVertices = 8;
  EquivalenceCheckingManager manager(ghz(3), ghz(3), config);
  const auto combined = manager.run();
  EXPECT_EQ(combined.criterion, EquivalenceCriterion::ProbablyEquivalent)
      << combined.toString();
  const auto& slots = manager.engineResults();
  ASSERT_EQ(slots.size(), 2U);
  EXPECT_EQ(slots[1].criterion, EquivalenceCriterion::ResourceExhausted);
  ASSERT_EQ(combined.resourceLimitedEngines.size(), 1U);
  EXPECT_EQ(combined.resourceLimitedEngines[0], "zx-calculus");
}

TEST(ResourceGovernorTest, UnlimitedBudgetsChangeNothing) {
  Configuration config = quickConfig();
  config.maxDDNodes = 0;
  config.maxZXVertices = 0;
  config.maxMemoryMB = 0;
  config.runZX = true;
  const auto result = checkEquivalence(ghz(4), ghz(4), config);
  EXPECT_TRUE(provedEquivalent(result.criterion));
  EXPECT_TRUE(result.resourceLimitedEngines.empty());
}

TEST(ErrorTaxonomyTest, HierarchyAndDiagnostics) {
  // Every library error derives from VeriqcError; ResourceLimitError keeps
  // its structured fields for programmatic retry logic.
  const ResourceLimitError e("DD nodes", 100, 250);
  EXPECT_EQ(e.resource(), "DD nodes");
  EXPECT_EQ(e.limit(), 100U);
  EXPECT_EQ(e.observed(), 250U);
  EXPECT_NE(std::string(e.what()).find("DD nodes"), std::string::npos);
  const CircuitError c("bad");
  EXPECT_NE(dynamic_cast<const VeriqcError*>(&c), nullptr);
  EXPECT_NE(dynamic_cast<const VeriqcError*>(&e), nullptr);
}

// --- cross-method consistency ------------------------------------------------------

TEST(CrossMethodTest, AllMethodsAgreeOnOptimizedPairs) {
  // Arbitrary-angle circuits: after ZYZ fusion the non-Clifford phases are
  // no longer pairwise inverses, so the (incomplete) ZX rewriting may only
  // answer NoInformation — it must never contradict the DD verdict
  // (Sec. 6.2: rewriting succeeds when phases cancel; here they need not).
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto original =
        compile::decomposeToCnot(circuits::randomCircuit(4, 30, seed));
    const auto optimized = opt::optimize(original);
    const auto construction = ddConstructionCheck(original, optimized);
    const auto alternating =
        ddAlternatingCheck(original, optimized, quickConfig());
    const auto zx = zxCheck(original, optimized);
    EXPECT_TRUE(provedEquivalent(construction.criterion)) << "seed " << seed;
    EXPECT_TRUE(provedEquivalent(alternating.criterion)) << "seed " << seed;
    EXPECT_NE(zx.criterion, EquivalenceCriterion::NotEquivalent)
        << "seed " << seed;
  }
}

TEST(CrossMethodTest, ZXProvesCliffordTOptimizedPairs) {
  // On Clifford+T circuits the cancellation argument of Sec. 6.2 applies
  // and the ZX engine must prove equivalence.
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto original = circuits::randomCliffordT(4, 8, 0.25, seed);
    auto shuffled = original;
    opt::cancelInversePairs(shuffled);
    opt::removeIdentities(shuffled);
    const auto zx = zxCheck(original, shuffled);
    EXPECT_TRUE(provedEquivalent(zx.criterion)) << "seed " << seed;
    const auto alternating =
        ddAlternatingCheck(original, shuffled, quickConfig());
    EXPECT_TRUE(provedEquivalent(alternating.criterion)) << "seed " << seed;
  }
}

TEST(CrossMethodTest, NoFalseNegativesOnDamagedCircuits) {
  std::mt19937_64 rng(23);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto original = circuits::urfLike(4, 12, seed);
    const auto damaged = circuits::removeRandomGate(original, rng);
    ASSERT_TRUE(damaged.has_value());
    const auto construction = ddConstructionCheck(original, *damaged);
    const auto alternating =
        ddAlternatingCheck(original, *damaged, quickConfig());
    const auto zx = zxCheck(original, *damaged);
    // Removing an MCX always changes a reversible function.
    EXPECT_EQ(construction.criterion, EquivalenceCriterion::NotEquivalent);
    EXPECT_EQ(alternating.criterion, EquivalenceCriterion::NotEquivalent);
    EXPECT_FALSE(provedEquivalent(zx.criterion)) << "seed " << seed;
  }
}

} // namespace
} // namespace veriqc::check
