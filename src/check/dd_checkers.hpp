/// \file dd_checkers.hpp
/// \brief The decision-diagram based equivalence checkers (Sec. 4 of the
///        paper): reference construction, the alternating scheme and
///        random-stimuli simulation.
#pragma once

#include "check/result.hpp"
#include "ir/circuit.hpp"

#include <functional>

namespace veriqc::check {

/// Callback polled between gate applications; return true to abort.
using StopToken = std::function<bool()>;

/// Brute-force baseline: build both dense 2^n x 2^n unitaries and compare
/// them entry-wise / via the Hilbert-Schmidt criterion. Only for small
/// circuits (n <= 12); used as a ground-truth oracle in tests and ablations.
/// \throws CircuitError when the aligned circuits exceed `maxQubits`.
[[nodiscard]] Result denseCheck(const QuantumCircuit& c1,
                                const QuantumCircuit& c2,
                                const Configuration& config = {},
                                std::size_t maxQubits = 12);

/// Reference method: build both system-matrix DDs completely and compare
/// them (canonicity makes this a pointer comparison). Exponential in the
/// worst case; mainly a baseline and test oracle.
[[nodiscard]] Result ddConstructionCheck(const QuantumCircuit& c1,
                                         const QuantumCircuit& c2,
                                         const Configuration& config = {},
                                         const StopToken& stop = {});

/// The alternating scheme: builds G' . G^dagger from the middle outwards so
/// the diagram stays close to the identity, absorbing SWAPs into permutation
/// trackers and equalizing against the circuits' output permutations at the
/// end (Sec. 4.1, Example 5).
[[nodiscard]] Result ddAlternatingCheck(const QuantumCircuit& c1,
                                        const QuantumCircuit& c2,
                                        const Configuration& config = {},
                                        const StopToken& stop = {});

/// Compilation-flow aware alternating check (Burgholzer, Raymond, Wille,
/// QCE 2020 — the "more sophisticated oracle" of Sec. 4.1): uses the
/// per-gate expansion record produced by compile::compileForArchitecture to
/// keep the two sides in exact lockstep — the i-th original gate is undone
/// right after the expansionCounts[i] compiled gates realizing it.
/// \pre neither circuit contains barriers/measurements, and
///      sum(expansionCounts) equals the compiled circuit's operation count.
[[nodiscard]] Result
ddCompilationFlowCheck(const QuantumCircuit& original,
                       const QuantumCircuit& compiled,
                       const std::vector<std::size_t>& expansionCounts,
                       const Configuration& config = {},
                       const StopToken& stop = {});

/// Random-stimuli simulation: runs both circuits on shared random input
/// states; any fidelity below 1 proves non-equivalence, agreement on all
/// runs yields ProbablyEquivalent (Burgholzer et al., ASP-DAC 2021).
[[nodiscard]] Result ddSimulationCheck(const QuantumCircuit& c1,
                                       const QuantumCircuit& c2,
                                       const Configuration& config = {},
                                       const StopToken& stop = {});

} // namespace veriqc::check
