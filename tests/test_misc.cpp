/// Cross-cutting behaviours not covered by the per-module suites.
#include "check/manager.hpp"
#include "circuits/benchmarks.hpp"
#include "compile/architecture.hpp"
#include "qasm/parser.hpp"
#include "qasm/writer.hpp"
#include "sim/dense.hpp"

#include <gtest/gtest.h>

namespace veriqc {
namespace {

TEST(ResultTest, ToStringMentionsMethodAndVerdict) {
  check::Result result;
  result.criterion = check::EquivalenceCriterion::NotEquivalent;
  result.method = "dd-alternating(proportional)";
  result.runtimeSeconds = 1.5;
  result.performedSimulations = 3;
  result.hilbertSchmidtFidelity = 0.25;
  const auto text = result.toString();
  EXPECT_NE(text.find("not equivalent"), std::string::npos);
  EXPECT_NE(text.find("dd-alternating"), std::string::npos);
  EXPECT_NE(text.find("3 simulations"), std::string::npos);
  EXPECT_NE(text.find("0.25"), std::string::npos);
}

TEST(ResultTest, CriterionNames) {
  using check::EquivalenceCriterion;
  EXPECT_EQ(check::toString(EquivalenceCriterion::Equivalent), "equivalent");
  EXPECT_EQ(check::toString(EquivalenceCriterion::Timeout), "timeout");
  EXPECT_EQ(check::toString(EquivalenceCriterion::ProbablyEquivalent),
            "probably equivalent");
  EXPECT_TRUE(check::isDefinitive(EquivalenceCriterion::NotEquivalent));
  EXPECT_FALSE(check::isDefinitive(EquivalenceCriterion::ProbablyEquivalent));
  EXPECT_FALSE(
      check::provedEquivalent(EquivalenceCriterion::ProbablyEquivalent));
}

TEST(ManagerTest, ZXOnlyConfiguration) {
  check::Configuration config;
  config.runAlternating = false;
  config.runSimulation = false;
  config.runZX = true;
  const auto result =
      check::checkEquivalence(circuits::ghz(3), circuits::ghz(3), config);
  EXPECT_EQ(result.criterion,
            check::EquivalenceCriterion::EquivalentUpToGlobalPhase);
  EXPECT_EQ(result.method, "zx-calculus");
}

TEST(ManagerTest, SimulationOnlyGivesProbablyEquivalent) {
  check::Configuration config;
  config.runAlternating = false;
  config.runZX = false;
  config.simulationRuns = 4;
  const auto result =
      check::checkEquivalence(circuits::ghz(3), circuits::ghz(3), config);
  EXPECT_EQ(result.criterion,
            check::EquivalenceCriterion::ProbablyEquivalent);
}

TEST(QasmWriterTest, AllControlledSpellings) {
  QuantumCircuit c(5);
  c.cy(0, 1);
  c.ch(0, 1);
  c.append(Operation(OpType::RX, {0}, {1}, {0.5}));
  c.append(Operation(OpType::RY, {0}, {1}, {0.5}));
  c.crz(0, 1, 0.5);
  c.mcx({0, 1, 2}, 3);
  c.mcx({0, 1, 2, 3}, 4);
  c.mcz({0, 1}, 2);
  const auto text = qasm::write(c);
  for (const char* mnemonic :
       {"cy ", "ch ", "crx(", "cry(", "crz(", "c3x ", "c4x ", "ccz "}) {
    EXPECT_NE(text.find(mnemonic), std::string::npos) << mnemonic;
  }
  // And it round-trips.
  const auto reparsed = qasm::parse(text);
  const auto u = sim::circuitUnitary(c);
  const auto v = sim::circuitUnitary(reparsed);
  EXPECT_TRUE(u.equals(v, 1e-9));
}

TEST(OperationTest, MetaOperationsSkipQubitValidation) {
  // Barrier may reference any wires (including none).
  EXPECT_NO_THROW(Operation(OpType::Barrier, {}, {}).validate(1));
  EXPECT_NO_THROW(Operation(OpType::Measure, {}, {7}).validate(2));
}

TEST(PermutationTest, ComposeIsAssociative) {
  std::mt19937_64 rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Qubit> v(6);
    std::iota(v.begin(), v.end(), 0U);
    std::shuffle(v.begin(), v.end(), rng);
    const Permutation a(v);
    std::shuffle(v.begin(), v.end(), rng);
    const Permutation b(v);
    std::shuffle(v.begin(), v.end(), rng);
    const Permutation c(v);
    EXPECT_EQ(a.compose(b).compose(c), a.compose(b.compose(c)));
  }
}

TEST(ArchitectureTest, FullyConnectedHasAllEdges) {
  const auto arch = compile::Architecture::fullyConnected(5);
  for (Qubit a = 0; a < 5; ++a) {
    for (Qubit b = 0; b < 5; ++b) {
      if (a != b) {
        EXPECT_TRUE(arch.adjacent(a, b));
        EXPECT_EQ(arch.distance(a, b), 1U);
      }
    }
  }
}

TEST(AlignTest, WireWithPermutationMismatchIsNotStripped) {
  // Wires 1 and 2 of `b` are gate-idle, but the permutations claim their
  // logical qubits moved — the conservative idle test must not strip them.
  QuantumCircuit a(3);
  a.h(0);
  QuantumCircuit b(3);
  b.h(0);
  b.outputPermutation() = Permutation({0, 2, 1});
  const auto [a2, b2] = alignCircuits(a, b);
  EXPECT_EQ(a2.numQubits(), 3U);
  EXPECT_EQ(b2.numQubits(), 3U);
}

TEST(AlignTest, ConsistentlyIdleLogicalQubitIsStripped) {
  QuantumCircuit a(3);
  a.h(0);
  a.swap(0, 2);
  QuantumCircuit b(3);
  b.h(2);
  b.initialLayout() = Permutation({2, 1, 0});
  b.outputPermutation() = Permutation({2, 1, 0});
  // Logical qubit 1 is idle in both; it is removed consistently.
  const auto [a2, b2] = alignCircuits(a, b);
  EXPECT_EQ(a2.numQubits(), 2U);
  EXPECT_EQ(b2.numQubits(), 2U);
  // Stripping must preserve the (non-)equivalence verdict: a applies an
  // extra logical 0<->2 swap that b does not.
  const bool alignedVerdict = sim::circuitUnitary(a2).equalsUpToGlobalPhase(
      sim::circuitUnitary(b2));
  const bool originalVerdict = sim::circuitUnitary(a).equalsUpToGlobalPhase(
      sim::circuitUnitary(b));
  EXPECT_EQ(alignedVerdict, originalVerdict);
  EXPECT_FALSE(alignedVerdict);
}

TEST(CircuitTest, GlobalPhaseAccumulates) {
  QuantumCircuit c(1);
  c.setGlobalPhase(0.5);
  c.addGlobalPhase(0.25);
  EXPECT_DOUBLE_EQ(c.globalPhase(), 0.75);
  EXPECT_DOUBLE_EQ(c.inverted().globalPhase(), -0.75);
}

} // namespace
} // namespace veriqc
