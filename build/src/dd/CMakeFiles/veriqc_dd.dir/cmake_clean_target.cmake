file(REMOVE_RECURSE
  "libveriqc_dd.a"
)
