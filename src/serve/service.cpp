#include "serve/service.hpp"

#include "check/manager.hpp"
#include "check/report.hpp"
#include "fault/fault.hpp"
#include "ir/circuit.hpp"
#include "qasm/parser.hpp"
#include "qasm/revlib.hpp"

#include <algorithm>
#include <tuple>
#include <utility>

namespace veriqc::serve {

namespace {

/// Circuit loader shared by every ingress: RevLib .real by extension,
/// OpenQASM otherwise. Throws on unreadable/invalid files; the worker turns
/// that into an engine_error report for the job.
QuantumCircuit loadCircuit(const std::string& path) {
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".real") == 0) {
    return qasm::parseRealFile(path);
  }
  return qasm::parseFile(path);
}

} // namespace

JobService::JobService(ServiceLimits limits, check::Configuration defaults,
                       ReportSink sink)
    : limits_(limits), defaults_(std::move(defaults)), sink_(std::move(sink)),
      pool_(check::TaskPool::resolveSlots(limits.poolSlots)) {
  // A daemon outlives whatever VERIQC_FAULT armed at registry birth — that
  // plan belongs to the process that happened to start first, not to any
  // job. Disarm it: under veriqcd the only arming path is the job-scoped
  // ScopedPlan inside Manager::run() (gated by allowFaultPlans below).
  fault::Registry::instance().disarmAll();
  const std::size_t workerCount = std::max<std::size_t>(1, limits_.maxActiveJobs);
  running_.assign(workerCount, nullptr);
  workers_.reserve(workerCount);
  for (std::size_t slot = 0; slot < workerCount; ++slot) {
    workers_.emplace_back([this, slot] { workerLoop(slot); });
  }
}

JobService::~JobService() { shutdown(/*cancelInFlight=*/true); }

bool JobService::submitLine(const std::string_view line) {
  {
    const support::LockGuard lock(metricsMutex_);
    metrics_.add("serve/jobs_submitted", 1.0);
  }
  {
    const support::LockGuard lock(mutex_);
    ++stats_.submitted;
  }
  if (line.size() > limits_.maxLineBytes) {
    JobRequest oversized;
    oversized.id = "";
    oversized.config = defaults_;
    emitRejection(oversized, RejectReason::OversizedRequest,
                  "request line of " + std::to_string(line.size()) +
                      " bytes exceeds the limit of " +
                      std::to_string(limits_.maxLineBytes));
    return false;
  }
  auto parsed = parseJobLine(line, defaults_);
  if (parsed.reason != RejectReason::None) {
    emitRejection(parsed.request, parsed.reason, parsed.detail);
    return false;
  }
  return admitAndQueue(std::move(parsed.request));
}

bool JobService::submit(JobRequest request) {
  {
    const support::LockGuard lock(metricsMutex_);
    metrics_.add("serve/jobs_submitted", 1.0);
  }
  {
    const support::LockGuard lock(mutex_);
    ++stats_.submitted;
  }
  return admitAndQueue(std::move(request));
}

bool JobService::admitAndQueue(JobRequest&& request) {
  auto& config = request.config;
  // Admission control: every rejection is a structured report, never an
  // exception and never an OOM later.
  if (!config.faultPlan.empty() && !limits_.allowFaultPlans) {
    emitRejection(request, RejectReason::FaultPlanForbidden,
                  "job-scoped fault plans are disabled on this daemon");
    return false;
  }
  if (limits_.maxDDNodes != 0) {
    if (config.maxDDNodes == 0) {
      config.maxDDNodes = limits_.maxDDNodes; // inherit the daemon cap
    } else if (config.maxDDNodes > limits_.maxDDNodes) {
      emitRejection(request, RejectReason::BudgetExceedsLimit,
                    "maxDDNodes " + std::to_string(config.maxDDNodes) +
                        " exceeds the daemon cap of " +
                        std::to_string(limits_.maxDDNodes));
      return false;
    }
  }
  if (limits_.maxMemoryMB != 0) {
    if (config.maxMemoryMB == 0) {
      config.maxMemoryMB = limits_.maxMemoryMB;
    } else if (config.maxMemoryMB > limits_.maxMemoryMB) {
      emitRejection(request, RejectReason::BudgetExceedsLimit,
                    "maxMemoryMB " + std::to_string(config.maxMemoryMB) +
                        " exceeds the daemon cap of " +
                        std::to_string(limits_.maxMemoryMB));
      return false;
    }
    // Current (not peak) RSS: a daemon that already sits at its memory cap
    // sheds load instead of letting the next job push it over.
    const auto rssKB = dd::Package::currentResidentSetKB();
    if (rssKB > limits_.maxMemoryMB * 1024) {
      emitRejection(request, RejectReason::MemoryBudget,
                    "process resident set " + std::to_string(rssKB) +
                        " KB exceeds the daemon budget of " +
                        std::to_string(limits_.maxMemoryMB * 1024) + " KB");
      return false;
    }
  }
  {
    support::LockGuard lock(mutex_);
    if (stopping_) {
      lock.unlock();
      emitRejection(request, RejectReason::ShuttingDown,
                    "daemon is shutting down");
      return false;
    }
    if (queue_.size() >= limits_.maxQueuedJobs) {
      lock.unlock();
      emitRejection(request, RejectReason::QueueFull,
                    "admission queue holds " +
                        std::to_string(limits_.maxQueuedJobs) + " jobs");
      return false;
    }
    queue_.push_back(std::move(request));
    ++stats_.admitted;
    ++stats_.queued;
    const auto depth = static_cast<double>(queue_.size());
    const support::LockGuard metricsLock(metricsMutex_);
    metrics_.add("serve/jobs_admitted", 1.0);
    metrics_.max("serve/queue_peak", depth);
  }
  workAvailable_.notify_one();
  return true;
}

void JobService::workerLoop(const std::size_t slot) {
  while (true) {
    JobRequest request;
    {
      support::LockGuard lock(mutex_);
      // Explicit wait loop: a predicate lambda is a separate function to the
      // thread safety analysis and cannot see that mutex_ is held, so the
      // guarded reads live in this (annotated) frame instead.
      while (!stopping_ && queue_.empty()) {
        workAvailable_.wait(lock);
      }
      if (queue_.empty()) {
        return; // stopping_ and drained
      }
      request = std::move(queue_.front());
      queue_.pop_front();
      --stats_.queued;
      ++stats_.active;
      ++activeCount_;
    }
    runJob(slot, std::move(request));
    {
      const support::LockGuard lock(mutex_);
      --stats_.active;
      --activeCount_;
      ++stats_.completed;
    }
    idle_.notify_all();
  }
}

std::shared_ptr<const dd::Package>
JobService::warmSourceFor(const QuantumCircuit& c1, const QuantumCircuit& c2,
                          const check::Configuration& config) {
  const std::size_t nqubits = std::max(c1.numQubits(), c2.numQubits());
  if (nqubits == 0) {
    return nullptr;
  }
  const double tolerance = config.numericalTolerance;
  auto snapshot = sharedCache_.acquire(nqubits, tolerance);
  // Best-effort top-up: replay this job's gate set into a donor package
  // (construction only — no multiplications, so this is cheap relative to
  // the check) and publish whatever the shape's snapshot was missing. Any
  // failure leaves the job running cold; the check itself is unaffected.
  try {
    dd::Package donor(nqubits, tolerance);
    if (snapshot != nullptr) {
      donor.adoptWarmGateSource(snapshot);
    }
    const auto feed = [&donor](const QuantumCircuit& circuit) {
      for (const auto& op : circuit.ops()) {
        try {
          std::ignore = donor.makeOperationDD(op);
        } catch (const std::exception&) {
          // Unsupported op for direct construction — the engines have their
          // own handling; it simply stays uncached.
        }
      }
    };
    feed(c1);
    feed(c2);
    // inserts counts every local cache fill, warm hits the subset imported
    // from the snapshot — publish only when something genuinely new exists.
    const auto donorStats = donor.stats();
    if (donorStats.gateCache.inserts > donorStats.gateCacheWarmHits &&
        sharedCache_.publish(donor) != 0) {
      snapshot = sharedCache_.acquire(nqubits, tolerance);
      const support::LockGuard lock(metricsMutex_);
      metrics_.add("serve/shared_cache.publishes", 1.0);
    }
  } catch (const std::exception&) {
    // Donor construction failed (e.g. allocation pressure): run cold.
  }
  return snapshot;
}

void JobService::runJob(const std::size_t slot, JobRequest request) {
  auto& config = request.config;
  obs::Json report;
  try {
    const auto c1 = loadCircuit(request.file1);
    const auto c2 = loadCircuit(request.file2);
    if (limits_.useSharedGateCache) {
      config.warmGateSource = warmSourceFor(c1, c2, config);
    }
    check::EquivalenceCheckingManager manager(c1, c2, config);
    manager.useTaskPool(&pool_);
    {
      const support::LockGuard lock(mutex_);
      running_[slot] = &manager;
      if (cancelRequested_) {
        // Shutdown raced this job's start: cancel before the first engine
        // poll so the report honestly records Cancelled.
        manager.requestCancel();
      }
    }
    auto combined = manager.run();
    {
      const support::LockGuard lock(mutex_);
      running_[slot] = nullptr;
    }
    report = check::buildRunReport(manager, combined, config);
    {
      const support::LockGuard lock(metricsMutex_);
      metrics_.add("serve/jobs_completed", 1.0);
      metrics_.add("serve/verdict." + check::criterionKey(combined.criterion),
                   1.0);
      // Per-job kernel counters sum into the daemon totals (Sum counters
      // add, Max counters take the daemon-wide maximum).
      metrics_.merge(combined.counters);
      for (const auto& engine : manager.engineResults()) {
        metrics_.merge(engine.counters);
      }
    }
  } catch (const std::exception& e) {
    {
      const support::LockGuard lock(mutex_);
      running_[slot] = nullptr;
    }
    // The job was admitted but could not run (unreadable circuit file,
    // parse error, report-layer fault): still one report line, with the
    // frontend failure recorded as an engine_error verdict.
    check::Result failure;
    failure.method = "veriqcd-frontend";
    failure.criterion = check::EquivalenceCriterion::EngineError;
    failure.errorMessage = e.what();
    report = check::buildRunReport(failure, {}, config, {});
    const support::LockGuard lock(metricsMutex_);
    metrics_.add("serve/jobs_completed", 1.0);
    metrics_.add("serve/verdict." +
                     check::criterionKey(failure.criterion),
                 1.0);
  }
  // Drop the lease before the report goes out: when this was the last
  // holder of a retired epoch, the snapshot dies here, on the worker.
  config.warmGateSource.reset();
  emitReport(request, std::move(report));
}

void JobService::emitReport(const JobRequest& request, obs::Json report) {
  auto job = obs::Json::object();
  job["id"] = request.id;
  job["admitted"] = true;
  job["reason"] = "";
  job["detail"] = "";
  report["job"] = std::move(job);
  if (sink_) {
    sink_(request.id, report);
  }
}

void JobService::emitRejection(const JobRequest& request,
                               const RejectReason reason,
                               const std::string& detail) {
  // A rejected job still yields a schema-valid veriqc-report/v1 line: the
  // combined verdict is not_run, the engines array is empty, and the job
  // object carries the structured reason.
  check::Result notRun;
  notRun.method = "veriqcd-admission";
  notRun.criterion = check::EquivalenceCriterion::NotRun;
  notRun.errorMessage = detail;
  auto report = check::buildRunReport(notRun, {}, request.config, {});
  auto job = obs::Json::object();
  job["id"] = request.id;
  job["admitted"] = false;
  job["reason"] = toString(reason);
  job["detail"] = detail;
  report["job"] = std::move(job);
  {
    const support::LockGuard lock(mutex_);
    ++stats_.rejected;
  }
  {
    const support::LockGuard lock(metricsMutex_);
    metrics_.add("serve/jobs_rejected", 1.0);
    metrics_.add("serve/rejected." + toString(reason), 1.0);
  }
  if (sink_) {
    sink_(request.id, report);
  }
}

void JobService::drain() {
  support::LockGuard lock(mutex_);
  while (!queue_.empty() || activeCount_ != 0) {
    idle_.wait(lock);
  }
}

void JobService::shutdown(const bool cancelInFlight) {
  // Serialize shutdown end to end. Without this lock, two concurrent
  // shutdown() calls could both get past the already-shut-down check and
  // race each other joining and clearing workers_ — and joining the same
  // std::thread twice is undefined behaviour. The loser blocks here until
  // the winner has finished the joins, then observes the drained state and
  // returns early.
  const support::LockGuard shutdownLock(shutdownMutex_);
  std::deque<JobRequest> abandoned;
  {
    const support::LockGuard lock(mutex_);
    if (stopping_ && workers_.empty()) {
      return; // already shut down
    }
    stopping_ = true;
    if (cancelInFlight) {
      cancelRequested_ = true;
      for (auto* manager : running_) {
        if (manager != nullptr) {
          manager->requestCancel();
        }
      }
    }
    abandoned.swap(queue_);
    stats_.queued = 0;
  }
  workAvailable_.notify_all();
  // Queued-but-never-started jobs are rejected, not silently dropped: the
  // client still gets one report line per submission.
  for (const auto& request : abandoned) {
    emitRejection(request, RejectReason::ShuttingDown,
                  "daemon shut down before the job could start");
  }
  for (auto& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  workers_.clear();
  idle_.notify_all();
}

obs::Json JobService::metricsJson() const {
  obs::CounterRegistry snapshot;
  {
    const support::LockGuard lock(metricsMutex_);
    snapshot.merge(metrics_);
  }
  snapshot.max("serve/shared_cache.entries",
               static_cast<double>(sharedCache_.totalEntries()));
  auto j = obs::Json::object();
  j["schema"] = "veriqc-metrics/v1";
  j["counters"] = check::serializeCounters(snapshot);
  return j;
}

ServiceStats JobService::stats() const {
  const support::LockGuard lock(mutex_);
  return stats_;
}

} // namespace veriqc::serve
