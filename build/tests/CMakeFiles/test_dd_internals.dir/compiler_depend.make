# Empty compiler generated dependencies file for test_dd_internals.
# This may be replaced when dependencies are built.
