/// \file result.hpp
/// \brief Verdicts, configuration and result records for equivalence checking.
#pragma once

#include "dd/compute_table.hpp"
#include "dd/real_table.hpp"
#include "obs/counters.hpp"
#include "sim/stimuli.hpp"

#include <chrono>
#include <vector>
#include <cstdint>
#include <memory>
#include <string>

namespace veriqc::dd {
class Package;
} // namespace veriqc::dd

namespace veriqc::check {

/// The possible outcomes of an equivalence check.
enum class EquivalenceCriterion : std::uint8_t {
  Equivalent,                 ///< U = U' exactly (within tolerance)
  EquivalentUpToGlobalPhase,  ///< U = e^{i theta} U'
  NotEquivalent,              ///< a discrepancy was proven
  ProbablyEquivalent,         ///< all random stimuli agreed (no proof)
  NoInformation,              ///< the method terminated without a verdict
  Timeout,                    ///< the deadline was hit
  Cancelled,                  ///< stopped because a sibling engine finished
  ResourceExhausted,          ///< a configured resource budget was exceeded
  EngineError,                ///< the engine failed with an error
  NotRun,                     ///< the engine was never started
};

[[nodiscard]] std::string toString(EquivalenceCriterion criterion);

/// True for verdicts that settle the question.
[[nodiscard]] constexpr bool isDefinitive(const EquivalenceCriterion c) {
  return c == EquivalenceCriterion::Equivalent ||
         c == EquivalenceCriterion::EquivalentUpToGlobalPhase ||
         c == EquivalenceCriterion::NotEquivalent;
}

/// True for the two positive verdicts.
[[nodiscard]] constexpr bool provedEquivalent(const EquivalenceCriterion c) {
  return c == EquivalenceCriterion::Equivalent ||
         c == EquivalenceCriterion::EquivalentUpToGlobalPhase;
}

/// Gate-application strategy of the alternating checker (Sec. 4.1's oracle).
enum class OracleStrategy : std::uint8_t {
  Naive,        ///< one side completely, then the other
  Proportional, ///< keep applied-gate counts proportional to circuit sizes
  Lookahead,    ///< greedily pick the side yielding the smaller diagram
};

[[nodiscard]] std::string toString(OracleStrategy strategy);

struct Configuration {
  /// Tolerance of the DD package's value interning.
  double numericalTolerance = dd::RealTable::kDefaultTolerance;
  /// Threshold on | |tr(E)|/2^n - 1 | for the Hilbert-Schmidt criterion and
  /// on 1 - fidelity for simulation runs.
  double checkTolerance = 1e-9;
  /// Oracle for the alternating scheme.
  OracleStrategy oracle = OracleStrategy::Proportional;
  /// Reconstruct CX-triples into SWAPs so they can be absorbed into the
  /// permutation tracker.
  bool reconstructSwaps = true;
  /// Number of random-stimuli simulation runs (the paper uses 16).
  std::size_t simulationRuns = 16;
  /// Classical (basis-state) stimuli by default: they keep the simulated
  /// decision diagrams small on entangling circuits, while random product
  /// or entangled inputs can blow the vector DD up exponentially.
  sim::StimuliKind stimuliKind = sim::StimuliKind::Classical;
  /// Worker threads for the random-stimuli checker (0 = hardware
  /// concurrency). Each worker owns its own DD package; stimuli are seeded
  /// per run index, so the verdict — and the counterexample, if any — is
  /// identical for every thread count.
  std::size_t simulationThreads = 1;
  /// Worker slots for sharding a *single* alternating / compilation-flow
  /// check (0 = hardware concurrency, 1 = the classic sequential scheme).
  /// With N > 1 slots both gate sequences are split into N chunks whose
  /// partial products are built in worker-private DD packages and then
  /// interleave-combined — the final diagram (and verdict) is identical to
  /// the sequential scheme for every slot count.
  std::size_t checkThreads = 1;
  /// Region count for the parallel pre-pass of the ZX engine's fullReduce
  /// (0 = hardware concurrency, 1 = fully sequential). Regions partition the
  /// vertex-id space; each drains its own worklist under a closed-2-hop
  /// ownership guard, then the sequential fixpoint pass finishes the job, so
  /// the reduced diagram is independent of the region count.
  std::size_t zxParallelRegions = 1;
  std::uint64_t seed = 42;
  /// Wall-clock budget; zero means unlimited.
  std::chrono::milliseconds timeout{0};
  /// Which engines the manager launches.
  bool runAlternating = true;
  bool runSimulation = true;
  bool runZX = false;
  /// Enable the non-Clifford phase-gadget rule families in the ZX engine
  /// (gadget pivoting and phase-gadget fusion). Disabling them stops the
  /// reduction at the Clifford fixed point — still sound, possibly weaker.
  bool zxGadgetRules = true;
  /// Tolerance for snapping rotation angles to small-denominator multiples
  /// of pi when converting circuits to ZX-diagrams.
  double zxPhaseSnapTolerance = 1e-12;
  /// Run the engines on parallel threads (first definitive verdict wins).
  bool parallel = true;
  /// Also run the dense brute-force baseline as a manager engine. Only
  /// sensible for small circuits; past `denseMaxQubits` the engine fails
  /// with EngineError (contained by the manager's exception firewall).
  bool runDense = false;
  /// Qubit cap of the dense baseline engine.
  std::size_t denseMaxQubits = 12;
  /// Resource governor: live DD nodes a single package may hold
  /// (0 = unlimited). Checked at the garbage-collection boundary, i.e.
  /// after every gate application; exceeding it aborts the engine with
  /// ResourceExhausted instead of exhausting memory.
  std::size_t maxDDNodes = 0;
  /// Resource governor: live ZX-diagram vertices (0 = unlimited). Checked
  /// after diagram construction and inside the simplifier's worklist drain.
  std::size_t maxZXVertices = 0;
  /// Resource governor: peak resident set size in MB (0 = unlimited).
  /// Process-wide high-watermark via getrusage, polled at a throttle from
  /// the DD garbage-collection boundary.
  std::size_t maxMemoryMB = 0;
  /// Record the diagram size after every gate application (alternating
  /// checker) — the instrumentation behind the paper's Fig. 4 intuition.
  bool recordTrace = false;
  /// Invariant-audit level of the veriqc_audit layer: 0 = off (checkpoints
  /// reduce to one integer compare), 1 = audit DD/ZX structures at throttled
  /// post-gate checkpoints and at pass boundaries, 2 = audit every
  /// checkpoint. The VERIQC_AUDIT environment variable raises the effective
  /// level (max of both). Violations abort the engine with EngineError via
  /// the exception firewall — a corrupted structure must never produce a
  /// verdict.
  int auditLevel = 0;
  /// Fault-injection plan armed for the duration of run() (same syntax as
  /// the VERIQC_FAULT environment variable, e.g. "dd.slab_grow:after=3");
  /// empty leaves whatever plan the environment armed untouched.
  std::string faultPlan;
  /// Retries the manager grants each engine slot beyond its first attempt
  /// (0 = fail fast). Every retry runs under a configuration degraded one
  /// rung further down the ladder (single-thread, gc-tight, sim-fallback,
  /// plain retry) and is recorded in the result's attempt lineage.
  std::size_t engineRetryLimit = 0;
  /// Soft-watchdog poll budget in milliseconds (0 = disabled): when an
  /// engine stops polling its stop token for this long, the manager trips
  /// the shared cancel flag so the remaining engines wind down (attributed
  /// Cancelled, not Timeout) instead of the run hanging until the deadline.
  std::size_t watchdogMillis = 0;
  /// Degraded-mode knob (set by the ladder's "gc-tight" rung, settable
  /// directly too): start DD garbage collection at a small initial
  /// threshold so packages trade throughput for a tighter live-node band.
  bool aggressiveGC = false;
  /// Immutable gate-DD snapshot adopted by every package the engines
  /// create whose shape (qubit count + tolerance) matches: cache misses
  /// consult the snapshot before rebuilding. veriqcd sets this from its
  /// SharedGateCache so concurrent jobs reuse each other's constructions;
  /// null (the default) leaves every package cold.
  std::shared_ptr<const dd::Package> warmGateSource;
};

/// Scheduler statistics of one ZX rule family, as recorded by the
/// simplifier's worklist passes. Replaces the former stringly rule digest;
/// Result::toString still renders the compact text form from these.
struct ZXRuleStat {
  std::string rule;           ///< rule family name ("spider", "pivot", ...)
  std::size_t candidates = 0; ///< worklist entries examined
  std::size_t matches = 0;    ///< candidates where the pattern matched
  std::size_t rewrites = 0;   ///< rewrites applied (cascades count each)
  double seconds = 0.0;       ///< wall time spent inside the rule's passes
};

/// One execution of an engine slot under the manager's degradation ladder:
/// the first run or a degraded retry. Chained per slot into the attempt
/// lineage the run report serializes.
struct AttemptRecord {
  std::string engine;       ///< engine name as attempted (may change: sim-fallback)
  std::size_t attempt = 0;  ///< 0 = first run, 1.. = retries
  /// Ladder rung applied before this attempt ("" for the first run):
  /// "single-thread", "gc-tight", "sim-fallback" or "retry".
  std::string degradation;
  std::string criterion;    ///< outcome of this attempt (toString form)
  double runtimeSeconds = 0.0;
  std::string errorMessage; ///< failure diagnostic, empty otherwise
};

/// Outcome record of one checker (or of the whole manager).
struct Result {
  EquivalenceCriterion criterion = EquivalenceCriterion::NoInformation;
  double runtimeSeconds = 0.0;
  std::string method;                 ///< engine that produced the verdict
  std::size_t performedSimulations = 0;
  double hilbertSchmidtFidelity = -1.0; ///< |tr(E)|/2^n when computed
  std::size_t peakNodes = 0;            ///< DD engines: max live node count
  std::size_t rewrites = 0;             ///< ZX engine: rewrite count
  std::size_t remainingSpiders = 0;     ///< ZX engine: spiders at the end
  /// ZX engine: per-rule scheduler statistics (one entry per rule family
  /// that examined at least one candidate), empty when the ZX engine did
  /// not run.
  std::vector<ZXRuleStat> zxRuleStats;
  /// Index of the stimulus that proved non-equivalence (-1 = none).
  std::int64_t counterexampleStimulus = -1;
  /// Diagnostic captured when the engine failed (EngineError) or tripped a
  /// resource budget (ResourceExhausted); empty otherwise.
  std::string errorMessage;
  /// Manager verdicts only: engines that aborted on a resource budget this
  /// run. Retrying with larger Configuration::max* budgets may let them
  /// produce a (stronger) verdict.
  std::vector<std::string> resourceLimitedEngines;
  /// Aggregated DD compute-table counters (summed over all packages used).
  dd::CacheStats computeCacheStats;
  /// Aggregated gate-DD construction cache counters.
  dd::CacheStats gateCacheStats;
  /// Diagram node count after each gate application (when recordTrace).
  /// Early-stopped runs keep the truncated prefix — exactly the Fig. 4
  /// evidence one wants from an aborted check.
  std::vector<std::size_t> sizeTrace;
  /// Named kernel counters fed by the engine (DD cache traffic, ZX rewrite
  /// totals, node peaks); serialized into the run report's counters object.
  obs::CounterRegistry counters;
  /// Manager verdicts only: growth of the process peak resident set over
  /// this run (end watermark minus start watermark, KB; 0 when unavailable).
  /// Under a multi-job daemon this attributes memory to the job instead of
  /// every report inheriting the largest job's process-wide high-water mark.
  std::size_t peakResidentSetKB = 0;
  /// Manager verdicts only: the absolute process-wide peak resident set at
  /// the end of the run (the old meaning of peakResidentSetKB, now under an
  /// explicit name; 0 when unavailable).
  std::size_t processPeakResidentSetKB = 0;
  /// Attempt lineage across the degradation ladder. Per-engine records list
  /// every attempt of that slot; the combined record concatenates all slots'
  /// lineages. Empty when every engine settled on its first attempt — the
  /// common case, which keeps reports byte-identical to pre-ladder ones.
  std::vector<AttemptRecord> attempts;
  /// Ladder rung that produced this record's outcome ("" when the first,
  /// undegraded attempt did).
  std::string degradation;

  /// Compact text form of zxRuleStats ("spider r12/m8/c40 0.10ms; ...");
  /// empty when the ZX engine did not run.
  [[nodiscard]] std::string zxRuleDigest() const;

  [[nodiscard]] std::string toString() const;
};

} // namespace veriqc::check
