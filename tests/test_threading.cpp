/// Thread-stress tests for the parallel manager and the multi-threaded
/// simulation checker. These are the workload scripts/check_tsan.sh runs
/// under ThreadSanitizer: they deliberately drive every concurrency path —
/// parallel engines racing on the stop token, worker pools claiming stimuli
/// from the shared counter, cancellation mid-simulation — with enough
/// repetitions for a data race to get a chance to interleave.
#include "check/manager.hpp"
#include "circuits/benchmarks.hpp"
#include "ir/circuit.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <thread>
#include <vector>

namespace veriqc {
namespace {

check::Configuration stressConfig() {
  check::Configuration config;
  config.parallel = true;
  config.runAlternating = true;
  config.runSimulation = true;
  config.simulationThreads = 4;
  config.simulationRuns = 12;
  return config;
}

TEST(ThreadingStressTest, ParallelManagerOnEquivalentCircuits) {
  const auto a = circuits::qft(5);
  const auto b = circuits::qft(5);
  for (int repeat = 0; repeat < 3; ++repeat) {
    const auto result = check::checkEquivalence(a, b, stressConfig());
    EXPECT_TRUE(provedEquivalent(result.criterion)) << result.toString();
  }
}

TEST(ThreadingStressTest, ParallelManagerRacesToNonEquivalence) {
  // The simulation workers find the counterexample and cancel the
  // alternating engine mid-flight — the interesting cross-thread path.
  auto a = circuits::qft(5);
  auto b = circuits::qft(5);
  b.z(2);
  for (int repeat = 0; repeat < 3; ++repeat) {
    const auto result = check::checkEquivalence(a, b, stressConfig());
    EXPECT_EQ(result.criterion, check::EquivalenceCriterion::NotEquivalent);
  }
}

TEST(ThreadingStressTest, SimulationWorkerPoolIsDeterministic) {
  // The first counterexample index must be a function of (seed, stimuli)
  // alone: every thread count has to report the same stimulus.
  auto a = circuits::ghz(6);
  auto b = circuits::ghz(6);
  b.x(3);
  std::vector<std::int64_t> witnesses;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
    check::Configuration config;
    config.runAlternating = false;
    config.runZX = false;
    config.simulationThreads = threads;
    config.simulationRuns = 16;
    const auto result = check::checkEquivalence(a, b, config);
    ASSERT_EQ(result.criterion, check::EquivalenceCriterion::NotEquivalent);
    witnesses.push_back(result.counterexampleStimulus);
  }
  for (const auto w : witnesses) {
    EXPECT_EQ(w, witnesses.front());
  }
}

TEST(ThreadingStressTest, OversubscribedWorkerPool) {
  // More workers than stimuli: surplus workers must terminate cleanly after
  // losing the claim race, and the verdict must be unaffected.
  const auto a = circuits::grover(4, 3);
  const auto b = circuits::grover(4, 3);
  check::Configuration config;
  config.runAlternating = false;
  config.simulationThreads = 8;
  config.simulationRuns = 4;
  const auto result = check::checkEquivalence(a, b, config);
  EXPECT_EQ(result.criterion,
            check::EquivalenceCriterion::ProbablyEquivalent);
  EXPECT_EQ(result.performedSimulations, 4U);
}

TEST(ThreadingStressTest, ConcurrentManagersAreIndependent) {
  // Several managers running on their own threads at once: every DD package
  // is engine-local, so nothing may be shared between the managers.
  const auto a = circuits::qft(4);
  auto b = circuits::qft(4);
  std::vector<std::thread> threads;
  std::vector<check::EquivalenceCriterion> verdicts(4);
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    threads.emplace_back([&, i]() {
      auto config = stressConfig();
      config.simulationThreads = 2;
      verdicts[i] = check::checkEquivalence(a, b, config).criterion;
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (const auto v : verdicts) {
    EXPECT_TRUE(provedEquivalent(v));
  }
}

} // namespace
} // namespace veriqc
