/// \file node.hpp
/// \brief Node and edge structures of the decision-diagram package.
#pragma once

#include <array>
#include <complex>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>

namespace veriqc::dd {

/// Level index of a node; the terminal sits at level -1, qubit q at level q.
using Level = std::int32_t;
inline constexpr Level kTerminalLevel = -1;

/// A weighted edge into a (shared) decision-diagram node.
template <typename Node> struct Edge {
  Node* p = nullptr;
  std::complex<double> w{0.0, 0.0};

  [[nodiscard]] bool isTerminal() const noexcept {
    return p->v == kTerminalLevel;
  }
  [[nodiscard]] bool isZero() const noexcept {
    return w == std::complex<double>{0.0, 0.0};
  }

  friend bool operator==(const Edge& lhs, const Edge& rhs) noexcept {
    return lhs.p == rhs.p && lhs.w == rhs.w;
  }
};

/// A matrix-DD node: four children for the quadrants
/// [[e0, e1], [e2, e3]] of the (sub-)matrix, i.e. e[2*i + j] = U_ij.
struct mNode {
  std::array<Edge<mNode>, 4> e{};
  mNode* next = nullptr; ///< unique-table chaining
  std::uint32_t ref = 0; ///< reference count
  Level v = kTerminalLevel;
};

/// A vector-DD node: two children for the halves [e0; e1] of the (sub-)vector.
struct vNode {
  std::array<Edge<vNode>, 2> e{};
  vNode* next = nullptr;
  std::uint32_t ref = 0;
  Level v = kTerminalLevel;
};

using mEdge = Edge<mNode>;
using vEdge = Edge<vNode>;

/// Bitwise-stable hash of a canonical complex weight.
inline std::size_t hashWeight(const std::complex<double>& w) noexcept {
  std::uint64_t re = 0;
  std::uint64_t im = 0;
  const double rv = w.real();
  const double iv = w.imag();
  std::memcpy(&re, &rv, sizeof(re));
  std::memcpy(&im, &iv, sizeof(im));
  return std::hash<std::uint64_t>{}(re * 0x9E3779B97F4A7C15ULL ^ im);
}

inline std::size_t combineHash(std::size_t seed, std::size_t value) noexcept {
  return seed ^ (value + 0x9E3779B97F4A7C15ULL + (seed << 6) + (seed >> 2));
}

template <typename Node>
std::size_t hashNodeChildren(const Node& node) noexcept {
  std::size_t h = 0;
  for (const auto& edge : node.e) {
    h = combineHash(h, std::hash<const void*>{}(edge.p));
    h = combineHash(h, hashWeight(edge.w));
  }
  return h;
}

template <typename Node>
bool sameChildren(const Node& a, const Node& b) noexcept {
  return a.e == b.e;
}

} // namespace veriqc::dd
