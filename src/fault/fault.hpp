/// \file fault.hpp
/// \brief Deterministic, seedable fault-injection points.
///
/// The firewall, the resource governors and the manager's degradation ladder
/// are only worth anything if every failure path has actually been walked.
/// This library plants named injection points in the hot layers (slab
/// growth, table rebuilds, worklist drains, task start, report
/// serialization); each point is a single branch on a relaxed atomic while
/// disarmed, and throws a configured exception kind when an armed plan says
/// it is this hit's turn to fail.
///
/// Plans are strings of `;`/`,`-separated clauses:
///
///     point[:key=value]...
///
///     dd.slab_grow:after=3            fire on the 4th hit after arming
///     zx.drain:p=0.01:seed=42         fire each hit with probability 1%,
///                                     deterministically derived from
///                                     (seed, hit index)
///     pool.task_start:times=2         fire at most twice (default 1;
///                                     times=0 removes the bound)
///     dd.gc:after=5:throw=runtime     override the site's exception kind
///
/// Plans come from `Configuration::faultPlan` (installed by the manager for
/// the duration of one run) or the `VERIQC_FAULT` environment variable
/// (installed once, at first registry use). The registry is process-global;
/// concurrent runs with *different* plans are not supported — which is fine,
/// fault plans are a test-harness feature, not a production knob.
#pragma once

#include "obs/counters.hpp"
#include "support/mutex.hpp"

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace veriqc::fault {

/// What an armed point throws when it fires. Every site declares the default
/// that emulates its realistic failure; a plan clause's `throw=` overrides.
enum class FaultKind : std::uint8_t {
  BadAlloc,      ///< std::bad_alloc — an allocation failure
  ResourceLimit, ///< veriqc::ResourceLimitError — a tripped budget
  Runtime,       ///< FaultInjectedError — a generic engine defect
};

/// The exception thrown for FaultKind::Runtime. Lands in the manager's
/// EngineError slot via the firewall, like any unexpected engine defect.
class FaultInjectedError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// Canonical injection-point names. Sites register lazily (on first hit), so
/// sweeps enumerate this list instead of the registry.
namespace points {
inline constexpr const char* kDDSlabGrow = "dd.slab_grow";
inline constexpr const char* kDDUniqueRebuild = "dd.unique_rebuild";
inline constexpr const char* kDDRealGrow = "dd.real_grow";
inline constexpr const char* kDDComputeAlloc = "dd.compute_alloc";
inline constexpr const char* kDDGc = "dd.gc";
inline constexpr const char* kDDImport = "dd.import";
inline constexpr const char* kZXDrain = "zx.drain";
inline constexpr const char* kZXRegionPrepass = "zx.region_prepass";
inline constexpr const char* kPoolTaskStart = "pool.task_start";
inline constexpr const char* kCheckReport = "check.report";
} // namespace points

inline constexpr std::array<const char*, 10> kKnownPoints = {
    points::kDDSlabGrow,   points::kDDUniqueRebuild,
    points::kDDRealGrow,   points::kDDComputeAlloc,
    points::kDDGc,         points::kDDImport,
    points::kZXDrain,      points::kZXRegionPrepass,
    points::kPoolTaskStart, points::kCheckReport,
};

class Registry;

/// One injection site. hit() is the only hot-path entry: a single acquire
/// load while disarmed. The armed configuration lives in per-field atomics
/// so arming/disarming from the registry races benignly with worker-thread
/// hits (a hit during re-arming may see a mix of old and new knobs for one
/// decision, never torn values).
class Point {
public:
  Point(const Point&) = delete;
  Point& operator=(const Point&) = delete;

  /// The injection site's call: no-op unless armed.
  void hit() {
    if (armed_.load(std::memory_order_acquire)) {
      onHit();
    }
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] bool armed() const noexcept {
    return armed_.load(std::memory_order_acquire);
  }
  /// Faults thrown since this point was last armed.
  [[nodiscard]] std::uint64_t fired() const noexcept {
    return fired_.load(std::memory_order_relaxed);
  }
  /// Armed hits that deliberately did not fire (before `after`, past
  /// `times`, or losing the probability draw).
  [[nodiscard]] std::uint64_t suppressed() const noexcept {
    return suppressed_.load(std::memory_order_relaxed);
  }

private:
  friend class Registry;

  Point(std::string name, FaultKind kind)
      : name_(std::move(name)), kind_(static_cast<std::uint8_t>(kind)) {}

  void onHit();
  [[noreturn]] void throwFault();

  std::string name_;
  std::atomic<bool> armed_{false};
  std::atomic<std::uint8_t> kind_;
  std::atomic<std::uint64_t> after_{0};
  std::atomic<std::uint64_t> times_{1};
  /// Firing probability in parts-per-million; negative selects the
  /// deterministic `after`-counting mode.
  std::atomic<std::int64_t> probabilityPpm_{-1};
  std::atomic<std::uint64_t> seed_{0};
  std::atomic<std::uint64_t> armedHits_{0};
  std::atomic<std::uint64_t> fired_{0};
  std::atomic<std::uint64_t> suppressed_{0};
};

/// Process-global point registry. Points register lazily at first hit;
/// plan clauses naming not-yet-registered points are kept pending and
/// applied at registration, so an environment plan can arm a point before
/// any DD or ZX structure exists.
class Registry {
public:
  static Registry& instance();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create a point. `kind` is the site's default exception kind,
  /// fixed by the first registration.
  Point& point(std::string_view name, FaultKind kind);

  /// Parse `plan` and install it, replacing any previously armed plan.
  /// Arming resets the armed-hit/fired/suppressed counters of the named
  /// points. Throws std::invalid_argument on malformed plans (before any
  /// state changes).
  void armPlan(const std::string& plan);

  /// Disarm every point and drop pending clauses. Counters are kept so a
  /// harness can still read them after the run under test finished.
  void disarmAll();

  /// True while any registered point is armed or a pending clause awaits a
  /// point's registration. veriqcd asserts this is false between jobs: under
  /// a daemon the only legitimate arming path is a job-scoped ScopedPlan,
  /// so an armed point outside one is a leak.
  [[nodiscard]] bool anyArmed() const;

  /// Export `fault/<point>.fired` / `.suppressed` counters for every point
  /// with nonzero totals — silent (and golden-stable) when nothing fired.
  void exportCounters(obs::CounterRegistry& counters) const;

  /// Since-last-arm counts by name; 0 when the point never registered.
  [[nodiscard]] std::uint64_t firedCount(std::string_view name) const;
  [[nodiscard]] std::uint64_t suppressedCount(std::string_view name) const;

private:
  struct Clause {
    std::string point;
    bool kindOverride = false;
    FaultKind kind = FaultKind::Runtime;
    std::uint64_t after = 0;
    std::uint64_t times = 1;
    std::int64_t probabilityPpm = -1;
    std::uint64_t seed = 0;
  };

  Registry();

  static std::vector<Clause> parsePlan(const std::string& plan);
  /// Reset-and-arm one point from a clause. Runs under mutex_ so a plan's
  /// clauses install atomically with respect to point registration (the
  /// Point knobs themselves are atomics; the lock orders *which* plan wins).
  void armLocked(Point& point, const Clause& clause) VERIQC_REQUIRES(mutex_);

  mutable support::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Point>, std::less<>> points_
      VERIQC_GUARDED_BY(mutex_);
  std::vector<Clause> pending_ VERIQC_GUARDED_BY(mutex_);
};

/// RAII plan installation for tests and the manager: arms on construction,
/// disarms everything on destruction.
class ScopedPlan {
public:
  explicit ScopedPlan(const std::string& plan) {
    Registry::instance().armPlan(plan);
  }
  ScopedPlan(const ScopedPlan&) = delete;
  ScopedPlan& operator=(const ScopedPlan&) = delete;
  ~ScopedPlan() { Registry::instance().disarmAll(); }
};

} // namespace veriqc::fault

/// Injection-site helper: resolves the registry entry once per call site,
/// then costs one branch on an atomic load while disarmed. Compiling with
/// -DVERIQC_DISABLE_FAULT_POINTS removes every site outright (plans are
/// then rejected as unknown points), for builds that must not carry even
/// the disarmed check.
#ifdef VERIQC_DISABLE_FAULT_POINTS
#define VERIQC_FAULT_POINT(pointName, faultKind)                               \
  do {                                                                         \
  } while (false)
#else
#define VERIQC_FAULT_POINT(pointName, faultKind)                               \
  do {                                                                         \
    static ::veriqc::fault::Point& veriqcFaultPointRef =                       \
        ::veriqc::fault::Registry::instance().point((pointName), (faultKind)); \
    veriqcFaultPointRef.hit();                                                 \
  } while (false)
#endif
