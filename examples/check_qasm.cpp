/// \file check_qasm.cpp
/// \brief Command-line equivalence checker for OpenQASM 2.0 files —
///        the "few lines of code" out-of-the-box usage of Sec. 6.
///
/// Usage: check_qasm <a.qasm> <b.qasm> [--method dd|zx|both]
///                   [--timeout <seconds>] [--sims <n>]
///                   [--json <path>] [--trace]
///                   [--retries <n>] [--watchdog-ms <n>]
///                   [--fault-plan <plan>] [--zx-regions <n>] [--threads <n>]
///        check_qasm --validate-report <path>
///
/// Exit code: 0 = equivalent, 1 = not equivalent, 2 = undecided, 3 = error.
#include "check/manager.hpp"
#include "check/report.hpp"
#include "obs/json.hpp"
#include "obs/phase_timer.hpp"
#include "qasm/parser.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

namespace {

void usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s <a.qasm> <b.qasm> [--method dd|zx|both] "
               "[--timeout <seconds>] [--sims <n>] [--json <path>] "
               "[--trace] [--retries <n>] [--watchdog-ms <n>] "
               "[--fault-plan <plan>] [--zx-regions <n>] [--threads <n>]\n"
               "       %s --validate-report <path>\n",
               prog, prog);
}

/// Parse and schema-check an existing veriqc-report/v1 file. Exit code 0 on
/// a valid report, 3 otherwise — this is what lets the bench harness (and
/// any CI consumer) assert report integrity without a JSON toolchain.
int validateReportFile(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path);
    return 3;
  }
  std::ostringstream text;
  text << in.rdbuf();
  try {
    const auto report = veriqc::obs::Json::parse(text.str());
    const auto problems = veriqc::check::validateRunReport(report);
    if (!problems.empty()) {
      for (const auto& problem : problems) {
        std::fprintf(stderr, "invalid report: %s\n", problem.c_str());
      }
      return 3;
    }
  } catch (const veriqc::obs::JsonError& e) {
    std::fprintf(stderr, "invalid report: %s\n", e.what());
    return 3;
  }
  std::printf("%s: valid %s\n", path,
              std::string(veriqc::check::kReportSchemaId).c_str());
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  using namespace veriqc;
  if (argc == 3 && std::strcmp(argv[1], "--validate-report") == 0) {
    return validateReportFile(argv[2]);
  }
  if (argc < 3) {
    usage(argv[0]);
    return 3;
  }
  std::string method = "both";
  std::string jsonPath;
  check::Configuration config;
  config.simulationRuns = 16;
  config.timeout = std::chrono::seconds(60);
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--method") == 0 && i + 1 < argc) {
      method = argv[++i];
    } else if (std::strcmp(argv[i], "--timeout") == 0 && i + 1 < argc) {
      config.timeout = std::chrono::seconds(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--sims") == 0 && i + 1 < argc) {
      config.simulationRuns = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      jsonPath = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      config.recordTrace = true;
    } else if (std::strcmp(argv[i], "--retries") == 0 && i + 1 < argc) {
      config.engineRetryLimit = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--watchdog-ms") == 0 && i + 1 < argc) {
      config.watchdogMillis = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--fault-plan") == 0 && i + 1 < argc) {
      config.faultPlan = argv[++i];
    } else if (std::strcmp(argv[i], "--zx-regions") == 0 && i + 1 < argc) {
      config.zxParallelRegions = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      config.checkThreads = static_cast<std::size_t>(std::atol(argv[++i]));
    } else {
      usage(argv[0]);
      return 3;
    }
  }

  try {
    // One timer collects the frontend's parse phase together with the
    // manager's prepare/engine/combine spans, so the report's phase list
    // covers the whole invocation.
    obs::PhaseTimer phases;
    auto parseSpan = phases.scope("parse");
    const auto a = qasm::parseFile(argv[1]);
    const auto b = qasm::parseFile(argv[2]);
    parseSpan.finish();
    std::printf("%s: %zu qubits, %zu gates\n", argv[1], a.numQubits(),
                a.gateCount());
    std::printf("%s: %zu qubits, %zu gates\n", argv[2], b.numQubits(),
                b.gateCount());

    config.runAlternating = config.runSimulation = (method != "zx");
    config.runZX = (method == "zx" || method == "both");
    check::EquivalenceCheckingManager manager(a, b, config);
    manager.usePhaseTimer(&phases);
    const auto result = manager.run();
    std::printf("verdict: %s\n", result.toString().c_str());

    if (!jsonPath.empty()) {
      const auto report = check::buildRunReport(manager, result, config);
      check::writeRunReport(report, jsonPath);
      std::printf("report: %s\n", jsonPath.c_str());
    }

    if (check::provedEquivalent(result.criterion)) {
      return 0;
    }
    if (result.criterion == check::EquivalenceCriterion::NotEquivalent) {
      return 1;
    }
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  }
}
