#include "dd/package.hpp"

#include <algorithm>
#include <tuple>
#include <cassert>
#include <cmath>
#include <cstring>
#include <set>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace veriqc::dd {

Package::Package(const std::size_t nqubits, const double tolerance,
                 const PackageConfig& config)
    : nqubits_(nqubits), reals_(tolerance), mTables_(nqubits),
      vTables_(nqubits), multiplyTable_(config.computeTableEntries),
      multiplyVectorTable_(config.computeTableEntries),
      addTable_(config.computeTableEntries),
      addVectorTable_(config.computeTableEntries),
      conjTransTable_(config.unaryTableEntries),
      traceTable_(config.unaryTableEntries),
      innerProductTable_(config.computeTableEntries),
      gateCacheMaxEntries_(std::max<std::size_t>(1, config.gateCacheMaxEntries)),
      gcInitialThreshold_(config.gcInitialThreshold),
      gcThreshold_(config.gcInitialThreshold), maxNodes_(config.maxNodes),
      maxMemoryKB_(config.maxMemoryMB * 1024) {
  mTerminal_.v = kTerminalLevel;
  vTerminal_.v = kTerminalLevel;
  idTable_.reserve(nqubits);
}

Package::~Package() = default;

mEdge Package::makeIdent() {
  if (nqubits_ == 0) {
    return oneMatrixScalar();
  }
  for (std::size_t k = idTable_.size(); k < nqubits_; ++k) {
    const mEdge below = (k == 0) ? oneMatrixScalar() : idTable_[k - 1];
    const auto node = makeMatrixNode(
        static_cast<Level>(k), {below, zeroMatrix(), zeroMatrix(), below});
    incRef(node); // identity chain is permanently alive
    idTable_.push_back(node);
  }
  return idTable_[nqubits_ - 1];
}

mEdge Package::makeMatrixNode(const Level v,
                              const std::array<mEdge, 4>& children) {
  std::array<mEdge, 4> e = children;
  // Canonicalize child weights: intern, route zeros to the terminal.
  for (auto& child : e) {
    child.w = reals_.lookup(child.w);
    if (child.w == std::complex<double>{0.0, 0.0}) {
      child = zeroMatrix();
    }
  }
  // Normalize by the child weight of largest magnitude (lowest index wins
  // ties) so that equal-up-to-scalar submatrices share one node.
  std::size_t maxIdx = 0;
  double maxMag = std::norm(e[0].w);
  for (std::size_t i = 1; i < 4; ++i) {
    const double mag = std::norm(e[i].w);
    if (mag > maxMag) {
      maxMag = mag;
      maxIdx = i;
    }
  }
  if (maxMag == 0.0) {
    return zeroMatrix();
  }
  const auto topWeight = e[maxIdx].w;
  for (auto& child : e) {
    if (!child.isZero()) {
      child.w = reals_.lookup(child.w / topWeight);
    }
  }
  auto& table = mTables_[static_cast<std::size_t>(v)];
  mNode* candidate = table.getFreeNode();
  candidate->e = e;
  candidate->v = v;
  mNode* node = table.lookup(candidate);
  return {node, topWeight};
}

vEdge Package::makeVectorNode(const Level v,
                              const std::array<vEdge, 2>& children) {
  std::array<vEdge, 2> e = children;
  for (auto& child : e) {
    child.w = reals_.lookup(child.w);
    if (child.w == std::complex<double>{0.0, 0.0}) {
      child = zeroVectorEdge();
    }
  }
  std::size_t maxIdx = 0;
  double maxMag = std::norm(e[0].w);
  if (std::norm(e[1].w) > maxMag) {
    maxMag = std::norm(e[1].w);
    maxIdx = 1;
  }
  if (maxMag == 0.0) {
    return zeroVectorEdge();
  }
  const auto topWeight = e[maxIdx].w;
  for (auto& child : e) {
    if (!child.isZero()) {
      child.w = reals_.lookup(child.w / topWeight);
    }
  }
  auto& table = vTables_[static_cast<std::size_t>(v)];
  vNode* candidate = table.getFreeNode();
  candidate->e = e;
  candidate->v = v;
  vNode* node = table.lookup(candidate);
  return {node, topWeight};
}

std::int64_t Package::quantize(const double value) const noexcept {
  const double scaled = value / reals_.tolerance();
  if (std::abs(scaled) < 9.0e18) {
    return static_cast<std::int64_t>(std::llround(scaled));
  }
  // Out of quantization range (absurdly large entry): key on the bit pattern.
  std::int64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

Package::GateKey Package::makeGateKey(const GateMatrix& matrix,
                                      const std::span<const Qubit> controls,
                                      const Qubit target) const {
  GateKey key;
  key.kind = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    key.matrix[2 * i] = quantize(matrix[i].real());
    key.matrix[2 * i + 1] = quantize(matrix[i].imag());
  }
  key.controls.assign(controls.begin(), controls.end());
  std::sort(key.controls.begin(), key.controls.end());
  key.target = target;
  return key;
}

template <typename Builder>
mEdge Package::cachedGateDD(GateKey&& key, Builder&& build) {
  ++gateCacheStats_.lookups;
  if (const auto it = gateCache_.find(key); it != gateCache_.end()) {
    ++gateCacheStats_.hits;
    return it->second;
  }
  const mEdge result = build(key);
  if (gateCache_.size() >= gateCacheMaxEntries_) {
    clearGateCache();
  }
  // Referenced so the cached diagram survives garbage collection; released
  // again when the cache is flushed.
  incRef(result);
  gateCache_.emplace(std::move(key), result);
  ++gateCacheStats_.inserts;
  return result;
}

void Package::clearGateCache() {
  for (auto& [key, edge] : gateCache_) {
    decRef(edge);
  }
  gateCache_.clear();
  ++gateCacheStats_.invalidations;
}

mEdge Package::makeGateDD(const GateMatrix& matrix,
                          const std::span<const Qubit> controls,
                          const Qubit target) {
  if (target >= nqubits_) {
    throw std::out_of_range("makeGateDD: target out of range");
  }
  return cachedGateDD(makeGateKey(matrix, controls, target),
                      [this, &matrix](const GateKey& key) {
                        return buildGateDD(matrix, key.controls, key.target);
                      });
}

mEdge Package::buildGateDD(const GateMatrix& matrix,
                           const std::vector<Qubit>& sortedControls,
                           const Qubit target) {
  const auto& ctrls = sortedControls;
  const auto isControl = [&ctrls](const Level z) {
    return std::binary_search(ctrls.begin(), ctrls.end(),
                              static_cast<Qubit>(z));
  };
  std::ignore = makeIdent(); // ensure the identity chain for control levels
  const auto idBelow = [this](const Level z) -> mEdge {
    return (z <= 0) ? oneMatrixScalar() : idTable_[static_cast<std::size_t>(z) - 1];
  };

  // Blocks T_ij of the target level, built bottom-up (em[2i+j] = T_ij).
  std::array<mEdge, 4> em;
  for (std::size_t i = 0; i < 4; ++i) {
    em[i] = {&mTerminal_, matrix[i]};
  }
  for (Level z = 0; z < static_cast<Level>(target); ++z) {
    for (std::size_t i = 0; i < 4; ++i) {
      if (isControl(z)) {
        const bool diagonal = (i == 0 || i == 3);
        em[i] = makeMatrixNode(
            z, {diagonal ? idBelow(z) : zeroMatrix(), zeroMatrix(),
                zeroMatrix(), em[i]});
      } else {
        em[i] = makeMatrixNode(z, {em[i], zeroMatrix(), zeroMatrix(), em[i]});
      }
    }
  }
  mEdge e = makeMatrixNode(static_cast<Level>(target), em);
  for (Level z = static_cast<Level>(target) + 1;
       z < static_cast<Level>(nqubits_); ++z) {
    if (isControl(z)) {
      e = makeMatrixNode(z, {idBelow(z), zeroMatrix(), zeroMatrix(), e});
    } else {
      e = makeMatrixNode(z, {e, zeroMatrix(), zeroMatrix(), e});
    }
  }
  return e;
}

mEdge Package::makeSwapDD(const Qubit a, const Qubit b,
                          const std::span<const Qubit> controls) {
  GateKey key;
  key.kind = 1;
  key.controls.assign(controls.begin(), controls.end());
  std::sort(key.controls.begin(), key.controls.end());
  key.target = a;
  key.target2 = b;
  return cachedGateDD(std::move(key), [this, a, b](const GateKey& k) {
    return buildSwapDD(a, b, k.controls);
  });
}

mEdge Package::buildSwapDD(const Qubit a, const Qubit b,
                           const std::vector<Qubit>& controls) {
  const GateMatrix x = gateMatrix(OpType::X, {});
  // swap(a,b) = cx(b,a) . c{a, controls}x(b) . cx(b,a)
  const std::array<Qubit, 1> outerCtrl{b};
  const mEdge outer = makeGateDD(x, outerCtrl, a);
  std::vector<Qubit> middleCtrls(controls.begin(), controls.end());
  middleCtrls.push_back(a);
  const mEdge middle = makeGateDD(x, middleCtrls, b);
  return multiply(outer, multiply(middle, outer));
}

mEdge Package::makeOperationDD(const Operation& op, const Permutation& perm) {
  if (op.isNonUnitary() || op.type == OpType::I) {
    return makeIdent();
  }
  std::vector<Qubit> controls;
  controls.reserve(op.controls.size());
  for (const auto c : op.controls) {
    controls.push_back(perm[c]);
  }
  if (op.type == OpType::SWAP) {
    return makeSwapDD(perm[op.targets[0]], perm[op.targets[1]], controls);
  }
  if (!isSingleTargetType(op.type)) {
    throw CircuitError("makeOperationDD: unsupported operation " +
                       op.toString());
  }
  return makeGateDD(gateMatrix(op.type, op.params), controls,
                    perm[op.targets[0]]);
}

mEdge Package::makeOperationDD(const Operation& op) {
  return makeOperationDD(op, Permutation::identity(nqubits_));
}

vEdge Package::makeZeroState() {
  return makeBasisState(std::vector<bool>(nqubits_, false));
}

vEdge Package::makeBasisState(const std::vector<bool>& bits) {
  if (bits.size() != nqubits_) {
    throw std::invalid_argument("makeBasisState: wrong number of bits");
  }
  vEdge e{&vTerminal_, {1.0, 0.0}};
  for (std::size_t q = 0; q < nqubits_; ++q) {
    if (bits[q]) {
      e = makeVectorNode(static_cast<Level>(q), {zeroVectorEdge(), e});
    } else {
      e = makeVectorNode(static_cast<Level>(q), {e, zeroVectorEdge()});
    }
  }
  return e;
}

mEdge Package::multiply(const mEdge& x, const mEdge& y) {
  if (x.isZero() || y.isZero()) {
    return zeroMatrix();
  }
  const auto w = x.w * y.w;
  auto e = multiplyNodes(x.p, y.p, static_cast<Level>(nqubits_) - 1);
  if (e.isZero()) {
    return zeroMatrix();
  }
  e.w = reals_.lookup(e.w * w);
  if (e.w == std::complex<double>{0.0, 0.0}) {
    return zeroMatrix();
  }
  return e;
}

mEdge Package::multiplyNodes(mNode* x, mNode* y, const Level var) {
  if (var == kTerminalLevel) {
    return oneMatrixScalar();
  }
  assert(x->v == var && y->v == var);
  const mEdge xKey{x, {1.0, 0.0}};
  const mEdge yKey{y, {1.0, 0.0}};
  if (const auto* cached = multiplyTable_.lookup(xKey, yKey)) {
    return *cached;
  }
  std::array<mEdge, 4> r;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      mEdge sum = zeroMatrix();
      for (std::size_t k = 0; k < 2; ++k) {
        const mEdge& xc = x->e[2 * i + k];
        const mEdge& yc = y->e[2 * k + j];
        if (xc.isZero() || yc.isZero()) {
          continue;
        }
        auto term = multiplyNodes(xc.p, yc.p, var - 1);
        if (term.isZero()) {
          continue;
        }
        term.w = reals_.lookup(term.w * xc.w * yc.w);
        sum = sum.isZero() ? term : add(sum, term);
      }
      r[2 * i + j] = sum;
    }
  }
  const auto result = makeMatrixNode(var, r);
  multiplyTable_.insert(xKey, yKey, result);
  return result;
}

vEdge Package::multiply(const mEdge& m, const vEdge& v) {
  if (m.isZero() || v.isZero()) {
    return zeroVectorEdge();
  }
  const auto w = m.w * v.w;
  auto e = multiplyNodes(m.p, v.p, static_cast<Level>(nqubits_) - 1);
  if (e.isZero()) {
    return zeroVectorEdge();
  }
  e.w = reals_.lookup(e.w * w);
  if (e.w == std::complex<double>{0.0, 0.0}) {
    return zeroVectorEdge();
  }
  return e;
}

vEdge Package::multiplyNodes(mNode* m, vNode* v, const Level var) {
  if (var == kTerminalLevel) {
    return {&vTerminal_, {1.0, 0.0}};
  }
  assert(m->v == var && v->v == var);
  const mEdge mKey{m, {1.0, 0.0}};
  const vEdge vKey{v, {1.0, 0.0}};
  if (const auto* cached = multiplyVectorTable_.lookup(mKey, vKey)) {
    return *cached;
  }
  std::array<vEdge, 2> r;
  for (std::size_t i = 0; i < 2; ++i) {
    vEdge sum = zeroVectorEdge();
    for (std::size_t k = 0; k < 2; ++k) {
      const mEdge& mc = m->e[2 * i + k];
      const vEdge& vc = v->e[k];
      if (mc.isZero() || vc.isZero()) {
        continue;
      }
      auto term = multiplyNodes(mc.p, vc.p, var - 1);
      if (term.isZero()) {
        continue;
      }
      term.w = reals_.lookup(term.w * mc.w * vc.w);
      sum = sum.isZero() ? term : add(sum, term);
    }
    r[i] = sum;
  }
  const auto result = makeVectorNode(var, r);
  multiplyVectorTable_.insert(mKey, vKey, result);
  return result;
}

mEdge Package::add(const mEdge& x, const mEdge& y) {
  if (x.isZero()) {
    return y;
  }
  if (y.isZero()) {
    return x;
  }
  if (x.p->v == kTerminalLevel && y.p->v == kTerminalLevel) {
    const auto w = reals_.lookup(x.w + y.w);
    if (w == std::complex<double>{0.0, 0.0}) {
      return zeroMatrix();
    }
    return {&mTerminal_, w};
  }
  if (const auto* cached = addTable_.lookup(x, y)) {
    return *cached;
  }
  assert(x.p->v == y.p->v);
  std::array<mEdge, 4> r;
  for (std::size_t i = 0; i < 4; ++i) {
    const mEdge xc{x.p->e[i].p, x.w * x.p->e[i].w};
    const mEdge yc{y.p->e[i].p, y.w * y.p->e[i].w};
    r[i] = add(xc.isZero() ? zeroMatrix() : xc,
               yc.isZero() ? zeroMatrix() : yc);
  }
  const auto result = makeMatrixNode(x.p->v, r);
  addTable_.insert(x, y, result);
  return result;
}

vEdge Package::add(const vEdge& x, const vEdge& y) {
  if (x.isZero()) {
    return y;
  }
  if (y.isZero()) {
    return x;
  }
  if (x.p->v == kTerminalLevel && y.p->v == kTerminalLevel) {
    const auto w = reals_.lookup(x.w + y.w);
    if (w == std::complex<double>{0.0, 0.0}) {
      return zeroVectorEdge();
    }
    return {&vTerminal_, w};
  }
  if (const auto* cached = addVectorTable_.lookup(x, y)) {
    return *cached;
  }
  assert(x.p->v == y.p->v);
  std::array<vEdge, 2> r;
  for (std::size_t i = 0; i < 2; ++i) {
    const vEdge xc{x.p->e[i].p, x.w * x.p->e[i].w};
    const vEdge yc{y.p->e[i].p, y.w * y.p->e[i].w};
    r[i] = add(xc.isZero() ? zeroVectorEdge() : xc,
               yc.isZero() ? zeroVectorEdge() : yc);
  }
  const auto result = makeVectorNode(x.p->v, r);
  addVectorTable_.insert(x, y, result);
  return result;
}

mEdge Package::conjugateTranspose(const mEdge& x) {
  if (x.p->v == kTerminalLevel) {
    return {x.p, reals_.lookup(std::conj(x.w))};
  }
  mEdge base;
  if (const auto* cached = conjTransTable_.lookup(x.p)) {
    base = *cached;
  } else {
    std::array<mEdge, 4> r;
    for (std::size_t i = 0; i < 2; ++i) {
      for (std::size_t j = 0; j < 2; ++j) {
        r[2 * i + j] = conjugateTranspose(x.p->e[2 * j + i]);
      }
    }
    base = makeMatrixNode(x.p->v, r);
    conjTransTable_.insert(x.p, base);
  }
  mEdge result{base.p, reals_.lookup(std::conj(x.w) * base.w)};
  if (result.w == std::complex<double>{0.0, 0.0}) {
    return zeroMatrix();
  }
  return result;
}

std::complex<double> Package::trace(const mEdge& x) {
  if (x.isZero()) {
    return {0.0, 0.0};
  }
  return x.w * traceNode(x.p);
}

std::complex<double> Package::traceNode(mNode* node) {
  if (node->v == kTerminalLevel) {
    return {1.0, 0.0};
  }
  if (const auto* cached = traceTable_.lookup(node)) {
    return *cached;
  }
  std::complex<double> t{0.0, 0.0};
  for (const std::size_t i : {std::size_t{0}, std::size_t{3}}) {
    const auto& child = node->e[i];
    if (!child.isZero()) {
      t += child.w * traceNode(child.p);
    }
  }
  traceTable_.insert(node, t);
  return t;
}

std::complex<double> Package::innerProduct(const vEdge& x, const vEdge& y) {
  if (x.isZero() || y.isZero()) {
    return {0.0, 0.0};
  }
  return std::conj(x.w) * y.w * innerProductNodes(x.p, y.p);
}

std::complex<double> Package::innerProductNodes(vNode* x, vNode* y) {
  if (x->v == kTerminalLevel) {
    return {1.0, 0.0};
  }
  const vEdge xKey{x, {1.0, 0.0}};
  const vEdge yKey{y, {1.0, 0.0}};
  if (const auto* cached = innerProductTable_.lookup(xKey, yKey)) {
    return *cached;
  }
  std::complex<double> sum{0.0, 0.0};
  for (std::size_t i = 0; i < 2; ++i) {
    const auto& xc = x->e[i];
    const auto& yc = y->e[i];
    if (xc.isZero() || yc.isZero()) {
      continue;
    }
    sum += std::conj(xc.w) * yc.w * innerProductNodes(xc.p, yc.p);
  }
  innerProductTable_.insert(xKey, yKey, sum);
  return sum;
}

double Package::fidelity(const vEdge& x, const vEdge& y) {
  return std::norm(innerProduct(x, y));
}

std::complex<double> Package::getEntry(const mEdge& x, const std::size_t row,
                                       const std::size_t col) const {
  if (x.isZero()) {
    return {0.0, 0.0};
  }
  std::complex<double> w = x.w;
  const mNode* node = x.p;
  while (node->v != kTerminalLevel) {
    const auto bitR = (row >> static_cast<std::size_t>(node->v)) & 1U;
    const auto bitC = (col >> static_cast<std::size_t>(node->v)) & 1U;
    const auto& child = node->e[2 * bitR + bitC];
    if (child.isZero()) {
      return {0.0, 0.0};
    }
    w *= child.w;
    node = child.p;
  }
  return w;
}

std::complex<double> Package::getAmplitude(const vEdge& x,
                                           const std::size_t index) const {
  if (x.isZero()) {
    return {0.0, 0.0};
  }
  std::complex<double> w = x.w;
  const vNode* node = x.p;
  while (node->v != kTerminalLevel) {
    const auto bit = (index >> static_cast<std::size_t>(node->v)) & 1U;
    const auto& child = node->e[bit];
    if (child.isZero()) {
      return {0.0, 0.0};
    }
    w *= child.w;
    node = child.p;
  }
  return w;
}

double Package::traceFidelity(const mEdge& e) {
  const auto t = trace(e);
  return std::abs(t) / static_cast<double>(std::size_t{1} << nqubits_);
}

bool Package::isIdentity(const mEdge& e, const bool upToGlobalPhase,
                         const double checkTol) {
  if (e.isZero()) {
    return false;
  }
  const auto ident = makeIdent();
  if (e.p == ident.p) {
    if (upToGlobalPhase) {
      return std::abs(std::abs(e.w) - 1.0) < checkTol;
    }
    return std::abs(e.w - std::complex<double>{1.0, 0.0}) < checkTol;
  }
  // Fall back to the Hilbert-Schmidt criterion |tr(E)| ~ 2^n.
  const auto t = trace(e);
  const auto dim = static_cast<double>(std::size_t{1} << nqubits_);
  if (upToGlobalPhase) {
    return std::abs(std::abs(t) - dim) < checkTol * dim;
  }
  return std::abs(t - dim) < checkTol * dim;
}

void Package::incRef(const mEdge& e) noexcept {
  if (e.p == nullptr || e.p->v == kTerminalLevel) {
    return;
  }
  if (e.p->ref++ == 0) {
    for (const auto& child : e.p->e) {
      incRef(child);
    }
  }
}

void Package::decRef(const mEdge& e) noexcept {
  if (e.p == nullptr || e.p->v == kTerminalLevel) {
    return;
  }
  assert(e.p->ref > 0);
  if (--e.p->ref == 0) {
    for (const auto& child : e.p->e) {
      decRef(child);
    }
  }
}

void Package::incRef(const vEdge& e) noexcept {
  if (e.p == nullptr || e.p->v == kTerminalLevel) {
    return;
  }
  if (e.p->ref++ == 0) {
    for (const auto& child : e.p->e) {
      incRef(child);
    }
  }
}

void Package::decRef(const vEdge& e) noexcept {
  if (e.p == nullptr || e.p->v == kTerminalLevel) {
    return;
  }
  assert(e.p->ref > 0);
  if (--e.p->ref == 0) {
    for (const auto& child : e.p->e) {
      decRef(child);
    }
  }
}

std::size_t Package::garbageCollect(const bool force) {
  std::size_t live = 0;
  for (const auto& table : mTables_) {
    live += table.size();
  }
  for (const auto& table : vTables_) {
    live += table.size();
  }
  peakMatrixNodes_ = std::max(peakMatrixNodes_, live);
  // Over the node budget: always attempt a collection first — only what
  // survives it counts against the budget.
  const bool overNodeBudget = maxNodes_ != 0 && live > maxNodes_;
  if (!force && !overNodeBudget && live < gcThreshold_) {
    // Memory is checked at a throttle even when no collection runs, so a
    // governed engine whose live-node count stays under the GC threshold
    // still cannot silently outgrow the memory budget.
    if (maxMemoryKB_ != 0 && memoryCheckCountdown_-- == 0) {
      memoryCheckCountdown_ = 15;
      const auto rssKB = peakResidentSetKB();
      if (rssKB > maxMemoryKB_) {
        throw ResourceLimitError("resident memory (KB)", maxMemoryKB_, rssKB);
      }
    }
    return 0;
  }
  std::size_t collected = 0;
  for (auto& table : mTables_) {
    collected += table.garbageCollect();
  }
  for (auto& table : vTables_) {
    collected += table.garbageCollect();
  }
  // O(1) generation bumps — cached results may reference collected nodes.
  multiplyTable_.clear();
  multiplyVectorTable_.clear();
  addTable_.clear();
  addVectorTable_.clear();
  conjTransTable_.clear();
  traceTable_.clear();
  innerProductTable_.clear();
  // The gate-DD cache holds references to its diagrams, so its entries are
  // never collected and stay valid here.
  gcThreshold_ = std::max(gcInitialThreshold_, 2 * (live - collected));
  ++gcRuns_;
  enforceResourceLimits(live - collected);
  return collected;
}

std::size_t Package::release(const mEdge& e) {
  const std::size_t removed = releaseNode(e.p);
  if (removed > 0) {
    releasedNodes_ += removed;
    // Cached results may reference the reclaimed nodes; the gate-DD cache
    // holds references to its entries, so those were never reclaimable.
    multiplyTable_.clear();
    multiplyVectorTable_.clear();
    addTable_.clear();
    addVectorTable_.clear();
    conjTransTable_.clear();
    traceTable_.clear();
    innerProductTable_.clear();
  }
  return removed;
}

std::size_t Package::releaseNode(mNode* node) {
  if (node == nullptr || node->v == kTerminalLevel || node->ref != 0) {
    return 0;
  }
  // A failed remove means the node is not in the table (anymore): either a
  // shared subdiagram this walk already reclaimed through another parent, or
  // one an earlier garbageCollect() swept. Either way its children were (or
  // will be) handled by whoever removed it.
  if (!mTables_[static_cast<std::size_t>(node->v)].remove(node)) {
    return 0;
  }
  std::size_t removed = 1;
  for (const auto& child : node->e) {
    removed += releaseNode(child.p);
  }
  return removed;
}

void Package::enforceResourceLimits(const std::size_t liveNodes) {
  if (maxNodes_ != 0 && liveNodes > maxNodes_) {
    throw ResourceLimitError("DD nodes", maxNodes_, liveNodes);
  }
  if (maxMemoryKB_ != 0) {
    const auto rssKB = peakResidentSetKB();
    if (rssKB > maxMemoryKB_) {
      throw ResourceLimitError("resident memory (KB)", maxMemoryKB_, rssKB);
    }
  }
}

std::size_t Package::peakResidentSetKB() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0;
  }
#if defined(__APPLE__)
  return static_cast<std::size_t>(usage.ru_maxrss) / 1024;
#else
  return static_cast<std::size_t>(usage.ru_maxrss);
#endif
#else
  return 0;
#endif
}

template <typename Node>
void Package::countNodes(const Node* node, std::set<const Node*>& seen) {
  if (node == nullptr || node->v == kTerminalLevel ||
      !seen.insert(node).second) {
    return;
  }
  for (const auto& child : node->e) {
    if (!child.isZero()) {
      countNodes(child.p, seen);
    }
  }
}

std::size_t Package::nodeCount(const mEdge& e) const {
  std::set<const mNode*> seen;
  countNodes(e.p, seen);
  return seen.size();
}

std::size_t Package::nodeCount(const vEdge& e) const {
  std::set<const vNode*> seen;
  countNodes(e.p, seen);
  return seen.size();
}

PackageStats Package::stats() const {
  PackageStats s;
  for (const auto& table : mTables_) {
    s.matrixNodes += table.size();
    s.allocations += table.allocated();
  }
  for (const auto& table : vTables_) {
    s.vectorNodes += table.size();
    s.allocations += table.allocated();
  }
  s.gcRuns = gcRuns_;
  s.releasedNodes = releasedNodes_;
  s.realNumbers = reals_.size();
  s.peakMatrixNodes = std::max(peakMatrixNodes_, s.matrixNodes);
  s.gcThreshold = gcThreshold_;
  s.multiply = multiplyTable_.stats();
  s.multiplyVector = multiplyVectorTable_.stats();
  s.add = addTable_.stats();
  s.addVector = addVectorTable_.stats();
  s.conjugateTranspose = conjTransTable_.stats();
  s.trace = traceTable_.stats();
  s.innerProduct = innerProductTable_.stats();
  s.gateCache = gateCacheStats_;
  s.gateCacheEntries = gateCache_.size();
  return s;
}

void Package::exportCounters(obs::CounterRegistry& registry,
                             const std::string& prefix) const {
  const auto s = stats();
  const auto cache = [&](const char* name, const CacheStats& stats) {
    const std::string base = prefix + name;
    registry.add(base + ".lookups", static_cast<double>(stats.lookups));
    registry.add(base + ".hits", static_cast<double>(stats.hits));
    registry.add(base + ".collisions", static_cast<double>(stats.collisions));
    registry.add(base + ".inserts", static_cast<double>(stats.inserts));
    registry.add(base + ".invalidations",
                 static_cast<double>(stats.invalidations));
  };
  cache("multiply", s.multiply);
  cache("multiply_vector", s.multiplyVector);
  cache("add", s.add);
  cache("add_vector", s.addVector);
  cache("conjugate_transpose", s.conjugateTranspose);
  cache("trace", s.trace);
  cache("inner_product", s.innerProduct);
  cache("gate_cache", s.gateCache);
  registry.add(prefix + "nodes.allocations",
               static_cast<double>(s.allocations));
  registry.add(prefix + "nodes.released",
               static_cast<double>(s.releasedNodes));
  registry.add(prefix + "gc.runs", static_cast<double>(s.gcRuns));
  registry.max(prefix + "nodes.peak",
               static_cast<double>(s.peakMatrixNodes));
  registry.max(prefix + "reals.interned", static_cast<double>(s.realNumbers));
}

std::vector<mEdge> Package::internalMatrixRoots() const {
  std::vector<mEdge> roots;
  roots.reserve(idTable_.size() + gateCache_.size());
  roots.insert(roots.end(), idTable_.begin(), idTable_.end());
  for (const auto& [key, edge] : gateCache_) {
    roots.push_back(edge);
  }
  return roots;
}

void Package::visitLiveCacheNodes(
    const std::function<void(const mNode*)>& visitMatrix,
    const std::function<void(const vNode*)>& visitVector) const {
  const auto vm = [&](const mEdge& e) {
    if (e.p != nullptr) {
      visitMatrix(e.p);
    }
  };
  const auto vv = [&](const vEdge& e) {
    if (e.p != nullptr) {
      visitVector(e.p);
    }
  };
  multiplyTable_.forEachLive(
      [&](const mEdge& l, const mEdge& r, const mEdge& res) {
        vm(l);
        vm(r);
        vm(res);
      });
  multiplyVectorTable_.forEachLive(
      [&](const mEdge& l, const vEdge& r, const vEdge& res) {
        vm(l);
        vv(r);
        vv(res);
      });
  addTable_.forEachLive([&](const mEdge& l, const mEdge& r, const mEdge& res) {
    vm(l);
    vm(r);
    vm(res);
  });
  addVectorTable_.forEachLive(
      [&](const vEdge& l, const vEdge& r, const vEdge& res) {
        vv(l);
        vv(r);
        vv(res);
      });
  conjTransTable_.forEachLive([&](const mNode* arg, const mEdge& res) {
    if (arg != nullptr) {
      visitMatrix(arg);
    }
    vm(res);
  });
  traceTable_.forEachLive(
      [&](const mNode* arg, const std::complex<double>& /*res*/) {
        if (arg != nullptr) {
          visitMatrix(arg);
        }
      });
  innerProductTable_.forEachLive(
      [&](const vEdge& l, const vEdge& r, const std::complex<double>& /*res*/) {
        vv(l);
        vv(r);
      });
}

bool Package::containsMatrixNode(const mNode* node) const noexcept {
  if (node == nullptr) {
    return false;
  }
  if (node == &mTerminal_) {
    return true;
  }
  if (node->v < 0 ||
      static_cast<std::size_t>(node->v) >= mTables_.size()) {
    return false;
  }
  return mTables_[static_cast<std::size_t>(node->v)].contains(node);
}

bool Package::containsVectorNode(const vNode* node) const noexcept {
  if (node == nullptr) {
    return false;
  }
  if (node == &vTerminal_) {
    return true;
  }
  if (node->v < 0 ||
      static_cast<std::size_t>(node->v) >= vTables_.size()) {
    return false;
  }
  return vTables_[static_cast<std::size_t>(node->v)].contains(node);
}

} // namespace veriqc::dd
