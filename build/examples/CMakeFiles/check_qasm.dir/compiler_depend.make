# Empty compiler generated dependencies file for check_qasm.
# This may be replaced when dependencies are built.
