#!/usr/bin/env bash
# Build Release, run the DD-kernel and ZX-engine microbenchmarks and write
# their JSON (timings + counters) to BENCH_dd_kernel.json / BENCH_zx.json at
# the repo root, so successive PRs accumulate a perf trajectory to compare
# against. Every JSON is stamped with a top-level "library_build_type" key
# (queried from the dd_micro binary, which compiles in NDEBUG and
# CMAKE_BUILD_TYPE); the run aborts when the library is not an optimized
# Release build, so debug-mode numbers can never be recorded as a baseline.
# When GNU time is available each JSON also records the
# benchmark process's peak resident set size (peak_rss_kb), giving the
# resource-governor work a memory baseline to compare budgets against.
#
# The smoke run also exercises the observability layer end-to-end: a
# check_qasm invocation emits a veriqc-report/v1 run record to
# BENCH_check_report.json, which is then schema-validated via
# check_qasm --validate-report (a failing schema fails the bench).
#
# Usage: scripts/bench_smoke.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
OUT="BENCH_dd_kernel.json"
OUT_ZX="BENCH_zx.json"
OUT_PARALLEL="BENCH_parallel.json"
OUT_REPORT="BENCH_check_report.json"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" \
  --target dd_micro zx_micro check_qasm >/dev/null

# Refuse to record numbers from a non-optimized library. The binary reports
# the build type it was actually compiled as (NDEBUG + CMAKE_BUILD_TYPE), so
# a stale or misconfigured build tree is caught here, not in the baseline.
BUILD_TYPE="$("./$BUILD_DIR/bench/dd_micro" --veriqc_build_type)"
if [[ "$BUILD_TYPE" != "Release" ]]; then
  echo "error: dd_micro library build type is '$BUILD_TYPE', expected" \
    "'Release' — refusing to record benchmark numbers" >&2
  exit 1
fi

# Run one benchmark binary, writing its JSON to $2, and inject the process's
# peak RSS (in kB) as a top-level "peak_rss_kb" key. Exact via GNU time when
# installed; otherwise approximated by sampling the kernel's VmHWM high-water
# mark while the benchmark runs (monotone, so the last sample is the peak up
# to the sampling interval). If neither source works the JSON is unchanged.
run_bench() {
  local bin="$1" out="$2"
  shift 2
  local rss=""
  if [[ -x /usr/bin/time ]] &&
    /usr/bin/time -v true >/dev/null 2>&1; then
    local timelog
    timelog="$(mktemp)"
    /usr/bin/time -v "$bin" "$@" >"$out" 2>"$timelog"
    rss="$(awk '/Maximum resident set size/ {print $NF}' "$timelog")"
    rm -f "$timelog"
  elif [[ -d /proc/self ]]; then
    "$bin" "$@" >"$out" &
    local pid=$!
    local sample
    while kill -0 "$pid" 2>/dev/null; do
      sample="$(awk '/^VmHWM:/ {print $2}' "/proc/$pid/status" 2>/dev/null)" \
        || true
      [[ -n "$sample" ]] && rss="$sample"
      sleep 0.2
    done
    wait "$pid"
  else
    "$bin" "$@" >"$out"
  fi
  if [[ -n "$rss" ]]; then
    sed -i "0,/{/s//{\n  \"peak_rss_kb\": $rss,/" "$out"
  fi
  sed -i "0,/{/s//{\n  \"library_build_type\": \"$BUILD_TYPE\",/" "$out"
}

# Three repetitions so the regression gate compares medians, not a single
# possibly-noisy sample.
run_bench "./$BUILD_DIR/bench/dd_micro" "$OUT" \
  --benchmark_format=json \
  --benchmark_min_time=0.1 \
  --benchmark_repetitions=3 \
  --benchmark_filter='BM_MakeGateDD|BM_MakeControlledGateDD|BM_BuildUnitary|BM_AlternatingGroverCheck'

run_bench "./$BUILD_DIR/bench/zx_micro" "$OUT_ZX" \
  --benchmark_format=json \
  --benchmark_min_time=0.1 \
  --benchmark_filter='BM_GroverReduction|BM_CliffordReductionLarge|BM_EquivalenceReduction|BM_QftReduction'

# Thread-scaling record: the sharded alternating / compilation-flow checkers
# and the simulation worker pool at 1..8 slots. The per-entry
# hardware_concurrency counter says how many cores the host actually had, so
# a flat scaling curve on a single-core runner is read as expected, not as a
# regression of the sharding itself.
run_bench "./$BUILD_DIR/bench/dd_micro" "$OUT_PARALLEL" \
  --benchmark_format=json \
  --benchmark_min_time=0.1 \
  --benchmark_repetitions=3 \
  --benchmark_filter='BM_ShardedAlternatingGroverCheck|BM_ShardedCompiledFlowCheck|BM_SimulationCheckThreads'

# --- end-to-end run report ---------------------------------------------------
# Check a GHZ preparation against an equivalent variant padded with
# self-cancelling gates (exactly equivalent, so the run exercises the DD
# engines to a definitive verdict) and record the structured report.
QASM_DIR="$(mktemp -d)"
trap 'rm -rf "$QASM_DIR"' EXIT
cat >"$QASM_DIR/a.qasm" <<'EOF'
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
EOF
cat >"$QASM_DIR/b.qasm" <<'EOF'
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
x q[2];
x q[2];
cx q[0],q[1];
h q[1];
h q[1];
cx q[1],q[2];
EOF
"./$BUILD_DIR/examples/check_qasm" "$QASM_DIR/a.qasm" "$QASM_DIR/b.qasm" \
  --trace --json "$OUT_REPORT" >/dev/null
sed -i "0,/{/s//{\n  \"library_build_type\": \"$BUILD_TYPE\",/" "$OUT_REPORT"
"./$BUILD_DIR/examples/check_qasm" --validate-report "$OUT_REPORT"

echo "Wrote $OUT, $OUT_ZX, $OUT_PARALLEL and $OUT_REPORT"
echo
echo "=== cache-stats digest ==="
# Per-benchmark wall time plus the cache counters embedded in the JSON.
grep -E '"(name|real_time|gate_cache_hit_rate|compute_hit_rate|performed|peak_rss_kb|library_build_type|store_occupancy|store_probe_length)"' \
  "$OUT" | sed -e 's/^[[:space:]]*//' -e 's/,$//'
echo
echo "=== zx digest ==="
grep -E '"(name|real_time|rewrites|spider_candidates|peak_rss_kb)"' \
  "$OUT_ZX" | sed -e 's/^[[:space:]]*//' -e 's/,$//'
echo
echo "=== thread-scaling digest ==="
grep -E '"(name|real_time|hardware_concurrency|performed)"' \
  "$OUT_PARALLEL" | sed -e 's/^[[:space:]]*//' -e 's/,$//'
