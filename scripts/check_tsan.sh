#!/usr/bin/env bash
# Run the thread-stress suites under ThreadSanitizer (the tsan CMake preset).
# tests/test_threading.cpp is the main workload: the parallel manager's
# racing engines, the multi-threaded simulation worker pool (including
# oversubscription and mid-flight cancellation), the sharded alternating
# checker, the region-parallel ZX pre-pass and several concurrent managers
# at once. tests/test_task_pool.cpp drives the work-stealing pool's
# queue/steal/sleep handshakes, cancellation and exception containment
# directly. The region-parallel simplifier parity tests of
# tests/test_zx_simplify.cpp run threaded region workers on one shared
# diagram — the ownership-guard discipline TSan is best placed to audit.
# tests/test_fault_injection.cpp adds the degradation-ladder retry rounds,
# the soft watchdog's heartbeat/trip handshake and fault-poisoned task
# groups, all of which cross thread boundaries. tests/test_serve.cpp runs
# the veriqcd JobService: concurrent submitting clients, the shared warm
# gate-cache's epoch publish/lease handshake, shutdown cancelling in-flight
# jobs, and racing shutdown() callers (the double-join regression). The
# SharedGateCacheEpochChurn stress (publishers/readers/retirer hammering one
# cache while leases stay live) and the EnqueueWakesASleepingWorker missed-
# wakeup regression run here too. Any TSan report fails the run.
#
# Usage: scripts/check_tsan.sh [ctest-regex]
#   ctest-regex: optional -R filter (default: all thread-stress suites)
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset tsan >/dev/null
cmake --build --preset tsan -j"$(nproc)" \
  --target test_threading test_task_pool test_zx_simplify \
  test_fault_injection test_serve >/dev/null

export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"

ctest --test-dir build-tsan --output-on-failure \
  -R "${1:-ThreadingStressTest|TaskPoolTest|ZXRegionParallelTest|FaultSweepTest|DegradationLadderTest|TaskPoolFaultTest|WatchdogTest|ImportFaultTest|JobServiceTest}"
