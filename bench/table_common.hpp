/// \file table_common.hpp
/// \brief Shared harness code for the Table-1 style benchmark binaries:
///        instance generation (equivalent / 1 gate missing / flipped CNOT),
///        timing wrappers and row formatting.
#pragma once

#include "check/manager.hpp"
#include "circuits/error_injection.hpp"
#include "ir/circuit.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <random>
#include <string>

namespace veriqc::bench {

/// One benchmark instance: the original circuit G and its counterpart G'.
struct Instance {
  std::string name;
  QuantumCircuit g;
  QuantumCircuit gPrime;
};

/// The three configurations of Sec. 6.1.
enum class ErrorKind { None, GateMissing, FlippedCnot };

inline const char* toString(const ErrorKind kind) {
  switch (kind) {
  case ErrorKind::None:
    return "equivalent";
  case ErrorKind::GateMissing:
    return "1 gate missing";
  case ErrorKind::FlippedCnot:
    return "flipped cnot";
  }
  return "?";
}

/// Inject the configured error into G' (None returns it unchanged).
inline std::optional<QuantumCircuit>
injectError(const QuantumCircuit& gPrime, const ErrorKind kind,
            const std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  switch (kind) {
  case ErrorKind::None:
    return gPrime;
  case ErrorKind::GateMissing:
    return circuits::removeRandomGate(gPrime, rng);
  case ErrorKind::FlippedCnot:
    return circuits::flipRandomCnot(gPrime, rng);
  }
  return std::nullopt;
}

/// Timeout per instance and method; override with VERIQC_BENCH_TIMEOUT_MS.
inline std::chrono::milliseconds benchTimeout() {
  if (const char* env = std::getenv("VERIQC_BENCH_TIMEOUT_MS")) {
    return std::chrono::milliseconds(std::atol(env));
  }
  return std::chrono::milliseconds(60000);
}

struct TimedVerdict {
  check::EquivalenceCriterion criterion =
      check::EquivalenceCriterion::NoInformation;
  double seconds = 0.0;
};

/// The paper's t_qcec configuration: alternating checker in parallel with 16
/// simulation runs.
inline TimedVerdict runQcecStyle(const QuantumCircuit& g,
                                 const QuantumCircuit& gPrime) {
  check::Configuration config;
  config.timeout = benchTimeout();
  config.runAlternating = true;
  config.runSimulation = true;
  config.simulationRuns = 16;
  const auto result = check::checkEquivalence(g, gPrime, config);
  return {result.criterion, result.runtimeSeconds};
}

/// The paper's t_pyzx configuration: the ZX rewriting engine alone.
inline TimedVerdict runZxStyle(const QuantumCircuit& g,
                               const QuantumCircuit& gPrime) {
  check::Configuration config;
  config.timeout = benchTimeout();
  const auto deadline = std::chrono::steady_clock::now() + config.timeout;
  const auto result = check::zxCheck(g, gPrime, config, [deadline] {
    return std::chrono::steady_clock::now() >= deadline;
  });
  return {result.criterion, result.runtimeSeconds};
}

/// Shorthand verdict symbol for table cells.
inline const char* verdictMark(const check::EquivalenceCriterion c) {
  switch (c) {
  case check::EquivalenceCriterion::Equivalent:
  case check::EquivalenceCriterion::EquivalentUpToGlobalPhase:
    return "EQ ";
  case check::EquivalenceCriterion::NotEquivalent:
    return "NEQ";
  case check::EquivalenceCriterion::ProbablyEquivalent:
    return "PEQ";
  case check::EquivalenceCriterion::NoInformation:
    return "NI ";
  case check::EquivalenceCriterion::Timeout:
    return "TO ";
  case check::EquivalenceCriterion::Cancelled:
    return "CAN";
  case check::EquivalenceCriterion::ResourceExhausted:
    return "RES";
  case check::EquivalenceCriterion::EngineError:
    return "ERR";
  case check::EquivalenceCriterion::NotRun:
    return "-- ";
  }
  return "?  ";
}

inline void printTableHeader(const char* title) {
  std::printf("\n%s\n", title);
  std::printf("%-78s\n",
              "--------------------------------------------------------------"
              "----------------");
  std::printf("%-22s %4s %7s %7s | %13s | %13s | %13s\n", "benchmark", "n",
              "|G|", "|G'|", "equivalent", "1 gate miss", "flip cnot");
  std::printf("%-22s %4s %7s %7s | %6s %6s | %6s %6s | %6s %6s\n", "", "", "",
              "", "t_dd", "t_zx", "t_dd", "t_zx", "t_dd", "t_zx");
  std::printf("%-78s\n",
              "--------------------------------------------------------------"
              "----------------");
}

/// Run one instance through all three configurations and both methods, and
/// print one table row.
inline void runRow(const Instance& instance, const std::uint64_t errorSeed) {
  std::printf("%-22s %4zu %7zu %7zu |", instance.name.c_str(),
              instance.g.numQubits(), instance.g.gateCount(),
              instance.gPrime.gateCount());
  std::fflush(stdout);
  for (const auto kind :
       {ErrorKind::None, ErrorKind::GateMissing, ErrorKind::FlippedCnot}) {
    const auto damaged = injectError(instance.gPrime, kind, errorSeed);
    if (!damaged.has_value()) {
      std::printf("    n/a    n/a |");
      continue;
    }
    const auto dd = runQcecStyle(instance.g, *damaged);
    const auto zx = runZxStyle(instance.g, *damaged);
    std::printf(" %s%6.2f %s%6.2f |", verdictMark(dd.criterion), dd.seconds,
                verdictMark(zx.criterion), zx.seconds);
    std::fflush(stdout);
  }
  std::printf("\n");
}

} // namespace veriqc::bench
