/// \file table1_optimized.cpp
/// \brief Regenerates the "Optimized Circuits" half of Table 1: elementary
///        (decomposed) circuits vs. their optimized versions, in the three
///        configurations and with both methods. The reversible RevLib
///        benchmarks (urf2, plus63mod4096, example2) are represented by
///        structurally equivalent synthetic reversible circuits (see
///        DESIGN.md).
#include "table_common.hpp"

#include "circuits/benchmarks.hpp"
#include "compile/decompose.hpp"
#include "opt/optimizer.hpp"

#include <cstdlib>
#include <vector>

namespace {

using namespace veriqc;
using bench::Instance;

Instance optimizedInstance(const QuantumCircuit& original) {
  auto decomposed = compile::decomposeToCnot(original);
  decomposed.setName(original.name());
  auto optimized = opt::optimize(decomposed);
  return {original.name(), std::move(decomposed), std::move(optimized)};
}

} // namespace

int main() {
  const bool large = std::getenv("VERIQC_BENCH_LARGE") != nullptr;

  std::vector<QuantumCircuit> originals;
  // RevLib-style reversible benchmarks (synthetic stand-ins).
  originals.push_back(circuits::urfLike(8, large ? 120 : 60, 154));
  originals.push_back(circuits::constantAdder(12, 63)); // plus63mod4096
  originals.push_back(circuits::mixedReversible(8, large ? 160 : 80, 231));
  // Quantum algorithms.
  originals.push_back(circuits::grover(4, 11));
  originals.push_back(circuits::grover(5, 19));
  originals.push_back(circuits::grover(6, 37));
  if (large) {
    originals.push_back(circuits::grover(7, 73));
  }
  originals.push_back(circuits::qft(8));
  originals.push_back(circuits::qft(12));
  originals.push_back(circuits::qft(16));
  if (large) {
    originals.push_back(circuits::qft(20));
  }
  originals.push_back(circuits::quantumWalk(4, 3));
  originals.push_back(circuits::quantumWalk(5, 3));
  originals.push_back(circuits::quantumWalk(6, 3));
  if (large) {
    originals.push_back(circuits::quantumWalk(7, 3));
  }

  veriqc::bench::printTableHeader(
      "Table 1 (b): Optimized Circuits — decomposed vs. optimized version");
  std::uint64_t errorSeed = 2000;
  for (const auto& original : originals) {
    const auto instance = optimizedInstance(original);
    veriqc::bench::runRow(instance, errorSeed++);
  }
  return 0;
}
