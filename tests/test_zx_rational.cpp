#include "ir/types.hpp"
#include "zx/rational.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace veriqc::zx {
namespace {

TEST(PiRationalTest, DefaultIsZero) {
  const PiRational r;
  EXPECT_TRUE(r.isZero());
  EXPECT_TRUE(r.isPauli());
  EXPECT_TRUE(r.isClifford());
  EXPECT_FALSE(r.isProperClifford());
}

TEST(PiRationalTest, NormalizationToHalfOpenInterval) {
  EXPECT_EQ(PiRational(3, 1), PiRational(1, 1));   // 3pi = pi
  EXPECT_EQ(PiRational(-1, 1), PiRational(1, 1));  // -pi = pi
  EXPECT_EQ(PiRational(5, 2), PiRational(1, 2));   // 5pi/2 = pi/2
  EXPECT_EQ(PiRational(-3, 2), PiRational(1, 2));  // -3pi/2 = pi/2
  EXPECT_EQ(PiRational(4, 2), PiRational(0, 1));   // 2pi = 0
  EXPECT_EQ(PiRational(2, 4), PiRational(1, 2));   // reduction
}

TEST(PiRationalTest, Predicates) {
  EXPECT_TRUE(PiRational(1, 1).isPi());
  EXPECT_TRUE(PiRational(1, 1).isPauli());
  EXPECT_TRUE(PiRational(1, 2).isProperClifford());
  EXPECT_TRUE(PiRational(-1, 2).isProperClifford());
  EXPECT_TRUE(PiRational(1, 2).isClifford());
  EXPECT_FALSE(PiRational(1, 4).isClifford());
  EXPECT_FALSE(PiRational(1, 4).isPauli());
}

TEST(PiRationalTest, Arithmetic) {
  EXPECT_EQ(PiRational(1, 4) + PiRational(1, 4), PiRational(1, 2));
  EXPECT_EQ(PiRational(1, 2) + PiRational(1, 2), PiRational(1, 1));
  EXPECT_EQ(PiRational(1, 1) + PiRational(1, 1), PiRational(0, 1));
  EXPECT_EQ(PiRational(1, 4) - PiRational(1, 2), PiRational(-1, 4));
  EXPECT_EQ(-PiRational(1, 2), PiRational(-1, 2));
  EXPECT_EQ(-PiRational(1, 1), PiRational(1, 1)); // -pi = pi
}

TEST(PiRationalTest, FromRadiansExactDyadics) {
  EXPECT_EQ(PiRational::fromRadians(PI), PiRational(1, 1));
  EXPECT_EQ(PiRational::fromRadians(PI / 2.0), PiRational(1, 2));
  EXPECT_EQ(PiRational::fromRadians(-PI / 4.0), PiRational(-1, 4));
  EXPECT_EQ(PiRational::fromRadians(PI / 1024.0), PiRational(1, 1024));
  EXPECT_EQ(PiRational::fromRadians(3.0 * PI / 8.0), PiRational(3, 8));
  EXPECT_EQ(PiRational::fromRadians(2.0 * PI), PiRational(0, 1));
  EXPECT_EQ(PiRational::fromRadians(5.0 * PI / 2.0), PiRational(1, 2));
}

TEST(PiRationalTest, FromRadiansRoundTrip) {
  for (const double angle : {0.1, 1.3, -2.7, 3.0, 0.0001}) {
    const auto r = PiRational::fromRadians(angle);
    const double back = r.toRadians();
    // Equal modulo 2*pi.
    const double diff = std::remainder(angle - back, 2.0 * PI);
    EXPECT_NEAR(diff, 0.0, 1e-4) << angle;
  }
}

TEST(PiRationalTest, RejectsZeroDenominator) {
  EXPECT_THROW(PiRational(1, 0), std::invalid_argument);
}

TEST(PiRationalTest, ToString) {
  EXPECT_EQ(PiRational(0, 1).toString(), "0");
  EXPECT_EQ(PiRational(1, 1).toString(), "pi");
  EXPECT_EQ(PiRational(1, 2).toString(), "pi/2");
  EXPECT_EQ(PiRational(-1, 4).toString(), "-pi/4");
  EXPECT_EQ(PiRational(3, 4).toString(), "3*pi/4");
}

} // namespace
} // namespace veriqc::zx
