/// \file report.hpp
/// \brief The `veriqc-report/v1` structured run record.
///
/// One equivalence-checking run — combined verdict, every engine slot,
/// phase spans, kernel counters and resource high-watermarks — serialized
/// into a single stable JSON document. The schema is versioned via the
/// top-level "schema" string; consumers should reject documents whose
/// schema id they do not know. Within v1, fields are only ever added,
/// never renamed or removed, and every record carries the same key set
/// regardless of which engines ran (absent data shows up as empty arrays,
/// empty strings, or sentinel values, exactly as in check::Result).
///
/// Top-level shape:
///   {
///     "schema": "veriqc-report/v1",
///     "generator": "veriqc",
///     "configuration": { ... },          // the knobs the run used
///     "verdict": { engine record },      // the combined result
///     "engines": [ engine record, ... ], // one per manager slot, in order
///     "phases": [ {"name", "startSeconds", "durationSeconds"}, ... ],
///     "counters": { "<name>": number, ... },
///     "resources": { "peakResidentSetKB",        // growth during this run
///                    "processPeakResidentSetKB", // absolute process peak
///                    "resourceLimitedEngines" },
///     "job": { "id", "admitted", "reason", "detail" }  // veriqcd only
///   }
///
/// The optional "job" object is attached by the veriqcd front-end: it names
/// the submitted job and, for admission rejections, carries the structured
/// reason ("queue_full", "memory_budget", ...) plus a human-readable detail.
#pragma once

#include "check/manager.hpp"
#include "check/result.hpp"
#include "obs/json.hpp"
#include "obs/phase_timer.hpp"

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace veriqc::check {

/// Schema identifier carried in every report's "schema" field.
inline constexpr std::string_view kReportSchemaId = "veriqc-report/v1";

/// Stable machine-readable key for a verdict ("equivalent", "timeout",
/// "cancelled", ...). Unlike toString(), these keys are part of the report
/// schema and never change within v1.
[[nodiscard]] std::string criterionKey(EquivalenceCriterion criterion);

/// Inverse of criterionKey; std::nullopt for unknown keys.
[[nodiscard]] std::optional<EquivalenceCriterion>
criterionFromKey(std::string_view key);

/// Serialize one Result (an engine slot or the combined verdict) into the
/// report's engine-record form. Every key is always present.
[[nodiscard]] obs::Json serializeResult(const Result& result);

/// Flatten a counter registry into a JSON object (sorted, stable member
/// order) — the report's "counters" form, reused by veriqcd's /metrics-style
/// dump.
[[nodiscard]] obs::Json serializeCounters(const obs::CounterRegistry&
                                              counters);

/// Build the full veriqc-report/v1 document for one run.
[[nodiscard]] obs::Json buildRunReport(const Result& combined,
                                       const std::vector<Result>& engines,
                                       const Configuration& config,
                                       const std::vector<obs::PhaseSpan>&
                                           phases);

/// Convenience overload pulling engine results and phase spans from the
/// manager that produced `combined`.
[[nodiscard]] obs::Json buildRunReport(const EquivalenceCheckingManager&
                                           manager,
                                       const Result& combined,
                                       const Configuration& config);

/// Structural validation of a report document against the v1 schema:
/// required keys, value types, known verdict keys, span/engine record
/// shapes. Returns a list of human-readable problems; empty means valid.
[[nodiscard]] std::vector<std::string>
validateRunReport(const obs::Json& report);

/// Pretty-print `report` to `path` (with a trailing newline).
/// \throws std::runtime_error when the file cannot be written.
void writeRunReport(const obs::Json& report, const std::string& path);

} // namespace veriqc::check
