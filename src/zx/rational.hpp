/// \file rational.hpp
/// \brief Exact spider phases as rational multiples of pi.
///
/// ZX rewriting needs to decide exactly whether a phase is Pauli (0, pi) or
/// proper Clifford (+-pi/2) — floating-point phases would make those
/// predicates unsound. Phases are stored as num/den * pi, normalized to the
/// half-open interval (-1, 1] and fully reduced. Doubles coming from parsed
/// circuits are snapped to small rationals by continued fractions (all angles
/// in the benchmark set are multiples of pi/2^k and therefore exact).
#pragma once

#include <cstdint>
#include <string>

namespace veriqc::zx {

class PiRational {
public:
  /// Zero phase.
  constexpr PiRational() = default;

  /// num/den * pi. \throws std::invalid_argument if den == 0.
  PiRational(std::int64_t num, std::int64_t den);

  /// Snap an angle in radians to a rational multiple of pi. Angles that have
  /// no small-denominator representation within `tol` get a best-effort
  /// approximation with denominator up to kMaxDenominator.
  static PiRational fromRadians(double radians, double tol = 1e-12);

  [[nodiscard]] std::int64_t num() const noexcept { return num_; }
  [[nodiscard]] std::int64_t den() const noexcept { return den_; }
  [[nodiscard]] double toRadians() const noexcept;

  [[nodiscard]] bool isZero() const noexcept { return num_ == 0; }
  /// 0 or pi.
  [[nodiscard]] bool isPauli() const noexcept { return den_ == 1; }
  /// Exactly pi.
  [[nodiscard]] bool isPi() const noexcept { return num_ == 1 && den_ == 1; }
  /// Multiple of pi/2 (i.e. a Clifford phase).
  [[nodiscard]] bool isClifford() const noexcept { return den_ <= 2; }
  /// Exactly +-pi/2.
  [[nodiscard]] bool isProperClifford() const noexcept { return den_ == 2; }

  PiRational& operator+=(const PiRational& rhs);
  PiRational& operator-=(const PiRational& rhs);
  [[nodiscard]] PiRational operator-() const;

  friend PiRational operator+(PiRational lhs, const PiRational& rhs) {
    lhs += rhs;
    return lhs;
  }
  friend PiRational operator-(PiRational lhs, const PiRational& rhs) {
    lhs -= rhs;
    return lhs;
  }
  friend bool operator==(const PiRational&, const PiRational&) = default;

  [[nodiscard]] std::string toString() const;

  /// pi and pi/2 constants.
  static PiRational pi() { return {1, 1}; }
  static PiRational halfPi() { return {1, 2}; }

  static constexpr std::int64_t kMaxDenominator = 1LL << 31U;
  /// Denominators beyond this mark a phase as inexact; normalization
  /// re-snaps such phases to the closest small rational within
  /// kPhaseTolerance (in units of pi).
  static constexpr std::int64_t kResnapDenominator = 1LL << 24U;
  static constexpr double kPhaseTolerance = 1e-9;

private:
  void normalize();

  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

} // namespace veriqc::zx
