#!/usr/bin/env bash
# The one-stop local gate: everything CI runs, in dependency order.
#   1. formatting        (skips when clang-format is absent)
#   2. clang-tidy        (skips when clang-tidy is absent)
#   3. static analysis   (thread-safety build skips without clang;
#                         the slab-reference lint always runs)
#   4. tier-1 build + ctest (Release)
#   5. tier-1 again at VERIQC_AUDIT=2 (every structural auditor on)
#   6. ThreadSanitizer stress suite
#   7. fault-injection sweep (ASan/UBSan, leak detection on)
#
# Usage: scripts/check_all.sh [--fast]
#   --fast: only steps 1-4 (skip the audit re-run, TSan and fault sweep)
set -euo pipefail

cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "== format check =="
scripts/format_check.sh

echo "== clang-tidy =="
scripts/check_tidy.sh

echo "== static analysis (thread safety + slab-reference lint) =="
scripts/check_thread_safety.sh

echo "== tier-1 (Release) =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)" >/dev/null
ctest --test-dir build --output-on-failure -j"$(nproc)"

if [[ $fast -eq 0 ]]; then
  echo "== tier-1 with VERIQC_AUDIT=2 =="
  VERIQC_AUDIT=2 ctest --test-dir build --output-on-failure -j"$(nproc)"

  echo "== ThreadSanitizer stress =="
  scripts/check_tsan.sh

  echo "== fault-injection sweep (ASan, leaks on) =="
  scripts/fault_sweep.sh --quick
fi

echo "check_all: OK"
