# Empty compiler generated dependencies file for test_zx_rational.
# This may be replaced when dependencies are built.
