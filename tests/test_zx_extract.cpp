#include "check/dd_checkers.hpp"
#include "circuits/benchmarks.hpp"
#include "sim/dense.hpp"
#include "zx/circuit_to_zx.hpp"
#include "zx/extract.hpp"
#include "zx/resynthesis.hpp"
#include "zx/simplify.hpp"
#include "zx/tensor.hpp"

#include <gtest/gtest.h>

namespace veriqc::zx {
namespace {

/// Extract after full reduction and compare against the dense semantics.
void expectRoundTrip(const QuantumCircuit& c) {
  auto d = circuitToZX(c);
  fullReduce(d);
  const auto extracted = extractCircuit(std::move(d));
  ASSERT_TRUE(extracted.has_value()) << c.name();
  EXPECT_TRUE(proportional(sim::circuitUnitary(*extracted),
                           sim::circuitUnitary(c), 1e-6))
      << c.name();
}

TEST(ExtractTest, SingleGates) {
  for (const auto type : {OpType::H, OpType::S, OpType::T, OpType::Z}) {
    QuantumCircuit c(1);
    c.append(Operation(type, {}, {0}));
    expectRoundTrip(c);
  }
}

TEST(ExtractTest, TwoQubitGates) {
  QuantumCircuit cx(2);
  cx.cx(0, 1);
  expectRoundTrip(cx);
  QuantumCircuit cz(2);
  cz.cz(0, 1);
  expectRoundTrip(cz);
  QuantumCircuit swap(2);
  swap.swap(0, 1);
  expectRoundTrip(swap);
}

class ExtractCliffordTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExtractCliffordTest, RandomCliffordRoundTrips) {
  expectRoundTrip(circuits::randomClifford(4, 8, GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtractCliffordTest,
                         ::testing::Range(std::uint64_t{0},
                                          std::uint64_t{10}));

TEST(ExtractTest, CliffordTRoundTripsOrGracefullyDeclines) {
  std::size_t succeeded = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto c = circuits::randomCliffordT(3, 4, 0.15, seed);
    auto d = circuitToZX(c);
    fullReduce(d);
    const auto extracted = extractCircuit(std::move(d));
    if (!extracted.has_value()) {
      continue; // phase gadgets: documented limitation
    }
    ++succeeded;
    EXPECT_TRUE(proportional(sim::circuitUnitary(*extracted),
                             sim::circuitUnitary(c), 1e-6))
        << "seed " << seed;
  }
  EXPECT_GE(succeeded, 5U); // most instances extract fine
}

TEST(ExtractTest, BenchmarkCircuits) {
  expectRoundTrip(circuits::ghz(5));
  expectRoundTrip(circuits::randomGraphState(5, 3, 2));
}

TEST(ExtractTest, QftExtractsViaGadgetRescue) {
  // The reduced QFT diagram contains phase gadgets; the boundary-pivot
  // rescue pulls them to the frontier and extraction succeeds.
  for (const std::size_t n : {3U, 4U}) {
    auto d = circuitToZX(circuits::qft(n));
    fullReduce(d);
    const auto extracted = extractCircuit(std::move(d));
    ASSERT_TRUE(extracted.has_value()) << n;
    EXPECT_TRUE(proportional(sim::circuitUnitary(*extracted),
                             sim::circuitUnitary(circuits::qft(n)), 1e-6))
        << n;
  }
}

TEST(ExtractTest, UnrescuableGadgetsStillDeclineGracefully) {
  // Some reduced diagrams (e.g. a decomposed Toffoli) keep gadget
  // configurations the rescue cannot reach; extraction must return nullopt
  // rather than a wrong circuit.
  QuantumCircuit c(3);
  c.h(2);
  c.cx(1, 2);
  c.tdg(2);
  c.cx(0, 2);
  c.t(2);
  c.cx(1, 2);
  c.tdg(2);
  c.cx(0, 2);
  c.t(1);
  c.t(2);
  c.h(2);
  c.cx(0, 1);
  c.t(0);
  c.tdg(1);
  c.cx(0, 1);
  auto d = circuitToZX(c);
  fullReduce(d);
  const auto extracted = extractCircuit(std::move(d));
  if (extracted.has_value()) {
    EXPECT_TRUE(proportional(sim::circuitUnitary(*extracted),
                             sim::circuitUnitary(c), 1e-6));
  }
  SUCCEED(); // either verified extraction or a graceful decline
}

TEST(ExtractTest, CliffordResynthesisShrinksCircuits) {
  // Graph-theoretic simplification is a strong Clifford optimizer: the
  // extracted circuit of a deep random Clifford circuit is much smaller.
  const auto original = circuits::randomClifford(4, 30, 7);
  const auto resynthesized = resynthesize(original);
  ASSERT_TRUE(resynthesized.has_value());
  EXPECT_LT(resynthesized->gateCount(), original.gateCount() / 2);
}

TEST(ExtractTest, ResynthesisVerifiedByDDChecker) {
  // The paper's complementarity, demonstrated: ZX optimizes, DDs verify.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto original = circuits::randomClifford(5, 12, seed);
    const auto resynthesized = resynthesize(original);
    ASSERT_TRUE(resynthesized.has_value()) << "seed " << seed;
    const auto verdict = check::ddAlternatingCheck(original, *resynthesized);
    EXPECT_TRUE(check::provedEquivalent(verdict.criterion))
        << "seed " << seed << ": " << verdict.toString();
  }
}

TEST(ExtractTest, NonGraphLikeInputToleratedViaReduce) {
  // extractCircuit is specified for graph-like diagrams; resynthesize()
  // handles arbitrary circuits by reducing first.
  QuantumCircuit c(3);
  c.h(0);
  c.ccx(0, 1, 2); // needs decomposition inside resynthesize
  const auto result = resynthesize(c);
  if (result.has_value()) {
    EXPECT_TRUE(proportional(sim::circuitUnitary(*result),
                             sim::circuitUnitary(c), 1e-6));
  }
}

} // namespace
} // namespace veriqc::zx
