/// \file unique_table.hpp
/// \brief Per-level unique tables guaranteeing canonical node sharing.
#pragma once

#include "dd/node.hpp"

#include <cstddef>
#include <memory>
#include <vector>

namespace veriqc::dd {

/// Hash table of nodes for one level, with chunk allocation, a free list and
/// mark-free garbage collection of nodes whose reference count is zero.
template <typename Node> class UniqueTable {
public:
  static constexpr std::size_t kInitialBuckets = 256;
  static constexpr std::size_t kChunkSize = 2048;

  UniqueTable() : buckets_(kInitialBuckets, nullptr) {}

  UniqueTable(const UniqueTable&) = delete;
  UniqueTable& operator=(const UniqueTable&) = delete;

  /// Returns a fresh node to be filled by the caller (not yet in the table).
  Node* getFreeNode() {
    if (free_ != nullptr) {
      Node* node = free_;
      free_ = node->next;
      *node = Node{};
      return node;
    }
    if (chunks_.empty() || chunkUsed_ == kChunkSize) {
      chunks_.push_back(std::make_unique<Node[]>(kChunkSize));
      chunkUsed_ = 0;
      allocated_ += kChunkSize;
    }
    return &chunks_.back()[chunkUsed_++];
  }

  /// Returns the canonical node equal to `candidate` (inserting it if new).
  /// If an equal node already existed, `candidate` is returned to the free
  /// list.
  Node* lookup(Node* candidate) {
    const auto h = hashNodeChildren(*candidate) & (buckets_.size() - 1);
    for (Node* cur = buckets_[h]; cur != nullptr; cur = cur->next) {
      if (sameChildren(*cur, *candidate)) {
        returnNode(candidate);
        return cur;
      }
    }
    candidate->next = buckets_[h];
    buckets_[h] = candidate;
    ++count_;
    if (count_ > 4 * buckets_.size()) {
      grow();
    }
    return candidate;
  }

  /// Puts a node that never entered the table back onto the free list.
  void returnNode(Node* node) {
    node->next = free_;
    free_ = node;
  }

  /// Unlinks one specific node from its bucket and returns it to the free
  /// list. Returns false when the node is not (or no longer) in the table —
  /// callers use that to walk shared DAGs without a visited set, and to
  /// tolerate nodes an earlier garbageCollect() already reclaimed. Compute
  /// tables referencing the node must be invalidated by the caller.
  bool remove(Node* node) {
    const auto h = hashNodeChildren(*node) & (buckets_.size() - 1);
    for (Node** link = &buckets_[h]; *link != nullptr;
         link = &(*link)->next) {
      if (*link == node) {
        *link = node->next;
        returnNode(node);
        --count_;
        return true;
      }
    }
    return false;
  }

  /// Removes all nodes with reference count zero. Returns the number of
  /// collected nodes. Compute tables referencing these nodes must be
  /// invalidated by the caller.
  std::size_t garbageCollect() {
    std::size_t collected = 0;
    for (auto& bucket : buckets_) {
      Node** link = &bucket;
      while (*link != nullptr) {
        Node* cur = *link;
        if (cur->ref == 0) {
          *link = cur->next;
          returnNode(cur);
          --count_;
          ++collected;
        } else {
          link = &cur->next;
        }
      }
    }
    return collected;
  }

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] std::size_t allocated() const noexcept { return allocated_; }
  [[nodiscard]] std::size_t bucketCount() const noexcept {
    return buckets_.size();
  }

  /// Visits every table-resident node as `f(node, bucketIndex)`. Read-only
  /// introspection for the audit layer; the visitor must not mutate the table.
  template <typename F> void forEach(F&& f) const {
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      for (const Node* cur = buckets_[b]; cur != nullptr; cur = cur->next) {
        f(cur, b);
      }
    }
  }

  /// True if `node` is currently resident in this table. Checks the node's
  /// home bucket first and falls back to a full scan so that nodes whose
  /// children were corrupted after insertion are still found (the audit layer
  /// relies on this to separate "stale pointer" from "misplaced node").
  [[nodiscard]] bool contains(const Node* node) const noexcept {
    const auto h = hashNodeChildren(*node) & (buckets_.size() - 1);
    for (const Node* cur = buckets_[h]; cur != nullptr; cur = cur->next) {
      if (cur == node) {
        return true;
      }
    }
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      if (b == h) {
        continue;
      }
      for (const Node* cur = buckets_[b]; cur != nullptr; cur = cur->next) {
        if (cur == node) {
          return true;
        }
      }
    }
    return false;
  }

private:
  void grow() {
    std::vector<Node*> newBuckets(buckets_.size() * 2, nullptr);
    for (Node* bucket : buckets_) {
      Node* cur = bucket;
      while (cur != nullptr) {
        Node* next = cur->next;
        const auto h = hashNodeChildren(*cur) & (newBuckets.size() - 1);
        cur->next = newBuckets[h];
        newBuckets[h] = cur;
        cur = next;
      }
    }
    buckets_ = std::move(newBuckets);
  }

  std::vector<Node*> buckets_;
  std::vector<std::unique_ptr<Node[]>> chunks_;
  std::size_t chunkUsed_ = 0;
  std::size_t allocated_ = 0;
  std::size_t count_ = 0;
  Node* free_ = nullptr;
};

} // namespace veriqc::dd
