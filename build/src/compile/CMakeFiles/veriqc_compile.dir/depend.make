# Empty dependencies file for veriqc_compile.
# This may be replaced when dependencies are built.
