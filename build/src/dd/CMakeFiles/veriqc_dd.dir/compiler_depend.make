# Empty compiler generated dependencies file for veriqc_dd.
# This may be replaced when dependencies are built.
