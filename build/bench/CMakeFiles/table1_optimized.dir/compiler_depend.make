# Empty compiler generated dependencies file for table1_optimized.
# This may be replaced when dependencies are built.
