/// \file scaling_sweep.cpp
/// \brief Scaling series underlying the qualitative claims of Sec. 6.2:
///        DDs win on circuits with large reversible parts (Grover, walks),
///        ZX wins on rotation-heavy circuits (QFT); Clifford circuits (GHZ)
///        are easy for both. Prints (n, t_dd, t_zx) series per family for
///        equivalent compiled instances.
#include "table_common.hpp"

#include "circuits/benchmarks.hpp"
#include "compile/architecture.hpp"
#include "compile/mapper.hpp"

#include <cstdio>
#include <functional>

int main() {
  using namespace veriqc;
  const auto arch = compile::Architecture::ibmManhattanLike();

  struct Family {
    const char* name;
    std::vector<std::size_t> sizes;
    std::function<QuantumCircuit(std::size_t)> make;
  };
  const std::vector<Family> families = {
      {"ghz", {8, 16, 32, 48, 65}, [](std::size_t n) { return circuits::ghz(n); }},
      {"qft",
       {4, 6, 8, 10, 12},
       [](std::size_t n) { return circuits::qft(n); }},
      {"grover",
       {3, 4, 5},
       [](std::size_t n) { return circuits::grover(n, 3); }},
      {"random_walk",
       {2, 3, 4},
       [](std::size_t n) { return circuits::quantumWalk(n, 3); }},
  };

  std::printf("\nScaling sweep: equivalent compiled instances, "
              "t_dd (alternating+sim) vs t_zx (full_reduce)\n");
  for (const auto& family : families) {
    std::printf("\n# %s\n", family.name);
    std::printf("%4s %8s %8s %12s %12s\n", "n", "|G|", "|G'|", "t_dd[s]",
                "t_zx[s]");
    for (const auto n : family.sizes) {
      const auto original = family.make(n);
      const auto compiled = compile::compileForArchitecture(original, arch);
      const auto dd = bench::runQcecStyle(original, compiled);
      const auto zx = bench::runZxStyle(original, compiled);
      std::printf("%4zu %8zu %8zu %9.3f %s %9.3f %s\n", original.numQubits(),
                  original.gateCount(), compiled.gateCount(), dd.seconds,
                  bench::verdictMark(dd.criterion), zx.seconds,
                  bench::verdictMark(zx.criterion));
      std::fflush(stdout);
    }
  }
  return 0;
}
