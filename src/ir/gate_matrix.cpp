#include "ir/gate_matrix.hpp"

#include <cmath>

namespace veriqc {

namespace {
constexpr std::complex<double> C0{0.0, 0.0};
constexpr std::complex<double> C1{1.0, 0.0};
const std::complex<double> CI{0.0, 1.0};
const double SQRT1_2 = 1.0 / std::sqrt(2.0);

GateMatrix u3Matrix(const double theta, const double phi, const double lambda) {
  // OpenQASM u3 convention (determinant e^{i(phi+lambda)}):
  //   [[cos(t/2),              -e^{i lambda} sin(t/2)],
  //    [e^{i phi} sin(t/2),     e^{i(phi+lambda)} cos(t/2)]]
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return {std::complex<double>{c, 0.0}, -std::exp(CI * lambda) * s,
          std::exp(CI * phi) * s, std::exp(CI * (phi + lambda)) * c};
}
} // namespace

GateMatrix gateMatrix(const OpType type, const std::span<const double> params) {
  if (params.size() != numParameters(type)) {
    throw CircuitError("gateMatrix: wrong number of parameters for " +
                       toString(type));
  }
  switch (type) {
  case OpType::I:
    return {C1, C0, C0, C1};
  case OpType::H:
    return {SQRT1_2, SQRT1_2, SQRT1_2, -SQRT1_2};
  case OpType::X:
    return {C0, C1, C1, C0};
  case OpType::Y:
    return {C0, -CI, CI, C0};
  case OpType::Z:
    return {C1, C0, C0, -C1};
  case OpType::S:
    return {C1, C0, C0, CI};
  case OpType::Sdg:
    return {C1, C0, C0, -CI};
  case OpType::T:
    return {C1, C0, C0, std::exp(CI * PI_4)};
  case OpType::Tdg:
    return {C1, C0, C0, std::exp(-CI * PI_4)};
  case OpType::SX:
    // sqrt(X) = 1/2 [[1+i, 1-i], [1-i, 1+i]]
    return {std::complex<double>{0.5, 0.5}, std::complex<double>{0.5, -0.5},
            std::complex<double>{0.5, -0.5}, std::complex<double>{0.5, 0.5}};
  case OpType::SXdg:
    return {std::complex<double>{0.5, -0.5}, std::complex<double>{0.5, 0.5},
            std::complex<double>{0.5, 0.5}, std::complex<double>{0.5, -0.5}};
  case OpType::RX: {
    const double c = std::cos(params[0] / 2.0);
    const double s = std::sin(params[0] / 2.0);
    return {std::complex<double>{c, 0.0}, -CI * s, -CI * s,
            std::complex<double>{c, 0.0}};
  }
  case OpType::RY: {
    const double c = std::cos(params[0] / 2.0);
    const double s = std::sin(params[0] / 2.0);
    return {std::complex<double>{c, 0.0}, std::complex<double>{-s, 0.0},
            std::complex<double>{s, 0.0}, std::complex<double>{c, 0.0}};
  }
  case OpType::RZ: {
    const auto e = std::exp(CI * (params[0] / 2.0));
    return {std::conj(e), C0, C0, e};
  }
  case OpType::P:
    return {C1, C0, C0, std::exp(CI * params[0])};
  case OpType::U2:
    return u3Matrix(PI_2, params[0], params[1]);
  case OpType::U3:
    return u3Matrix(params[0], params[1], params[2]);
  default:
    throw CircuitError("gateMatrix: " + toString(type) +
                       " is not a single-qubit base gate");
  }
}

} // namespace veriqc
