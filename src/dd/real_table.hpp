/// \file real_table.hpp
/// \brief Tolerance-aware interning of real numbers.
///
/// Decision diagrams only stay compact if edge weights that are "the same
/// number up to floating-point error" are represented by the *same* canonical
/// value — otherwise near-identical nodes fail to unify and the diagram blows
/// up (the effect discussed in Sec. 3 and Sec. 6.2 of the paper). This table
/// interns doubles: the first value seen within `tolerance` of a lookup
/// becomes the canonical representative for that neighbourhood.
///
/// Values are binned by floor(value / tolerance); any two values in the same
/// bin are within tolerance of each other, so each bin holds at most one
/// canonical representative. That invariant lets the table be a flat
/// open-addressed hash map from bin key to representative — one contiguous
/// allocation, linear probing, no per-bucket vectors or node allocations on
/// the hot path.
#pragma once

#include <array>
#include <bit>
#include <cmath>
#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace veriqc::dd {

class RealTable {
public:
  /// Default tolerance mirrors the reference DD package
  /// (1024 * machine epsilon ~ 2.3e-13).
  static constexpr double kDefaultTolerance = 1024.0 * 2.220446049250313e-16;

  static constexpr std::size_t kInitialSlots = 1U << 12U;

  explicit RealTable(double tolerance = kDefaultTolerance)
      : tolerance_(tolerance), slots_(kInitialSlots) {}

  [[nodiscard]] double tolerance() const noexcept { return tolerance_; }
  void setTolerance(double tol) noexcept {
    tolerance_ = tol;
    memo_.fill(MemoEntry{});
  }

  /// Canonical representative of `value`.
  ///
  /// Fronted by a direct-mapped memo keyed on the raw bit pattern: interning
  /// is stable (representatives are only ever added, never replaced), so a
  /// raw double maps to the same canonical value for the lifetime of the
  /// table contents and repeated weights skip the bin probes entirely.
  [[nodiscard]] double lookup(const double value) {
    if (value == 0.0 || value == 1.0 || value == -1.0) {
      return value;
    }
    const auto bits = std::bit_cast<std::uint64_t>(value);
    auto& entry = memo_[memoIndex(bits)];
    if (entry.bits == bits) {
      return entry.canonical;
    }
    const double canonical = lookupSlow(value);
    entry = {bits, canonical};
    return canonical;
  }

  /// Canonical representative of a complex value (both parts interned).
  [[nodiscard]] std::complex<double> lookup(std::complex<double> value) {
    return {lookup(value.real()), lookup(value.imag())};
  }

  /// True if value is canonically zero under the tolerance.
  [[nodiscard]] bool isZero(double value) const noexcept {
    return std::abs(value) < tolerance_;
  }
  [[nodiscard]] bool isZero(std::complex<double> value) const noexcept {
    return isZero(value.real()) && isZero(value.imag());
  }
  [[nodiscard]] bool isOne(std::complex<double> value) const noexcept {
    return isZero(value.real() - 1.0) && isZero(value.imag());
  }

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  void clear() {
    slots_.assign(kInitialSlots, Slot{});
    count_ = 0;
    memo_.fill(MemoEntry{});
  }

  /// Visits every interned representative as `f(binKey, value)`. Read-only
  /// introspection for the audit layer.
  template <typename F> void forEachEntry(F&& f) const {
    for (const auto& slot : slots_) {
      if (slot.occupied) {
        f(slot.key, slot.value);
      }
    }
  }

  /// Bin key of `value` under the current tolerance (exposed so the audit
  /// layer can re-derive slot keys).
  [[nodiscard]] std::int64_t binKey(double value) const noexcept {
    return keyOf(value);
  }

private:
  struct Slot {
    std::int64_t key = 0;
    double value = 0.0;
    bool occupied = false;
  };

  /// The all-zero entry is correct by construction: raw bits 0 are +0.0,
  /// whose canonical value is 0.0 (and which the fast path catches anyway).
  struct MemoEntry {
    std::uint64_t bits = 0;
    double canonical = 0.0;
  };

  static constexpr std::size_t kMemoSizeLog2 = 13; // 8192 entries, 128 KiB

  [[nodiscard]] static std::size_t memoIndex(const std::uint64_t bits) noexcept {
    return static_cast<std::size_t>((bits * 0x9E3779B97F4A7C15ULL) >>
                                    (64U - kMemoSizeLog2));
  }

  /// Bin-probing path behind the memo: find a representative within
  /// tolerance or intern `value` as a new one.
  [[nodiscard]] double lookupSlow(double value);

  [[nodiscard]] std::int64_t keyOf(double value) const noexcept {
    return static_cast<std::int64_t>(std::floor(value / tolerance_));
  }

  static std::size_t hashKey(std::int64_t key) noexcept {
    // splitmix64 finalizer: bin keys are sequential, so they need scrambling.
    auto z = static_cast<std::uint64_t>(key) + 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30U)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27U)) * 0x94D049BB133111EBULL;
    return static_cast<std::size_t>(z ^ (z >> 31U));
  }

  /// The slot holding `key`, or nullptr. Probes linearly until an empty slot.
  [[nodiscard]] const Slot* find(std::int64_t key) const noexcept;

  void insert(std::int64_t key, double value);
  void grow();

  double tolerance_;
  std::vector<Slot> slots_; ///< size is always a power of two
  std::size_t count_ = 0;
  std::array<MemoEntry, std::size_t{1} << kMemoSizeLog2> memo_{};
};

} // namespace veriqc::dd
