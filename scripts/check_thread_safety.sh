#!/usr/bin/env bash
# Enforce the compile-time concurrency contracts: build the whole tree with
# Clang so the thread safety analysis (-Wthread-safety, promoted to an error
# by the top-level CMakeLists under Clang) checks every VERIQC_GUARDED_BY /
# VERIQC_REQUIRES annotation. Any lock-discipline violation — a guarded
# field touched without its mutex, a REQUIRES function called unlocked, an
# unbalanced acquire/release — fails this build.
#
# Under GCC the annotation macros expand to nothing, so this gate needs a
# Clang toolchain; it skips with a notice when none is installed (the CI
# static-analysis job provides one). The slab-reference lint
# (scripts/check_slab_refs.py) runs afterwards either way: its pure-python
# engine has no toolchain needs, and its --self-test is a tier-1 ctest.
#
# Usage: scripts/check_thread_safety.sh [build-dir]
#   build-dir: CMake binary dir for the Clang build (default: build-tsa)
set -euo pipefail

cd "$(dirname "$0")/.."

builddir="${1:-build-tsa}"

if command -v clang++ >/dev/null 2>&1; then
  echo "check_thread_safety: building with $(clang++ --version | head -n1)"
  cmake -B "$builddir" -S . \
    -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++ \
    -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$builddir" -j"$(nproc)"
  echo "check_thread_safety: clean (-Werror=thread-safety)"
else
  echo "check_thread_safety: clang++ not found, skipping the analysis build" >&2
fi

python3 scripts/check_slab_refs.py
python3 scripts/check_slab_refs.py --self-test >/dev/null
echo "check_thread_safety: slab-reference lint clean (self-test sharp)"
