/// \file resynthesis.hpp
/// \brief ZX-based circuit resynthesis: convert, fully reduce, extract —
///        the PyZX optimization flow (Duncan et al. 2019; Kissinger &
///        van de Wetering 2020) whose results the paper's DD checker can
///        then verify independently.
#pragma once

#include "ir/circuit.hpp"

#include <optional>

namespace veriqc::zx {

/// Resynthesize `circuit` through the ZX-calculus: decompose to the
/// ZX-supported gate set, convert, full_reduce, and extract a circuit back.
/// Returns std::nullopt when extraction gets stuck on phase gadgets (the
/// result, when present, is equivalent to the input up to global phase —
/// verify it with the checkers for defense in depth).
[[nodiscard]] std::optional<QuantumCircuit>
resynthesize(const QuantumCircuit& circuit);

} // namespace veriqc::zx
