#include "obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace veriqc::obs {

namespace {

[[noreturn]] void kindError(const char* wanted, const Json::Kind got) {
  static constexpr const char* kKindNames[] = {
      "null", "boolean", "integer", "double", "string", "array", "object"};
  throw JsonError(std::string("json: expected ") + wanted + ", got " +
                  kKindNames[static_cast<std::size_t>(got)]);
}

void escapeString(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
    case '"':
      out += "\\\"";
      break;
    case '\\':
      out += "\\\\";
      break;
    case '\b':
      out += "\\b";
      break;
    case '\f':
      out += "\\f";
      break;
    case '\n':
      out += "\\n";
      break;
    case '\r':
      out += "\\r";
      break;
    case '\t':
      out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(c)));
        out += buf;
      } else {
        out.push_back(c);
      }
    }
  }
  out.push_back('"');
}

void appendDouble(std::string& out, const double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  out.append(buf, ptr);
  // Keep the number recognizable as a double on re-parse ("1" -> "1.0") so
  // dump/parse round trips preserve the Integer/Double distinction visually;
  // structural equality treats them as equal either way.
  if (out.find_first_of(".eE", out.size() - static_cast<std::size_t>(
                                                ptr - buf)) ==
      std::string::npos) {
    out += ".0";
  }
}

/// Strict recursive-descent parser over a string_view.
class Parser {
public:
  explicit Parser(const std::string_view text) : text_(text) {}

  Json run() {
    auto value = parseValue();
    skipWhitespace();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
    }
    return value;
  }

private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError("json parse error at offset " + std::to_string(pos_) +
                    ": " + what);
  }

  void skipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(const char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consumeLiteral(const std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Json parseValue() {
    skipWhitespace();
    switch (peek()) {
    case '{':
      return parseObject();
    case '[':
      return parseArray();
    case '"':
      return Json(parseString());
    case 't':
      if (consumeLiteral("true")) {
        return Json(true);
      }
      fail("invalid literal");
    case 'f':
      if (consumeLiteral("false")) {
        return Json(false);
      }
      fail("invalid literal");
    case 'n':
      if (consumeLiteral("null")) {
        return Json(nullptr);
      }
      fail("invalid literal");
    default:
      return parseNumber();
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("unterminated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
      case '"':
        out.push_back('"');
        break;
      case '\\':
        out.push_back('\\');
        break;
      case '/':
        out.push_back('/');
        break;
      case 'b':
        out.push_back('\b');
        break;
      case 'f':
        out.push_back('\f');
        break;
      case 'n':
        out.push_back('\n');
        break;
      case 'r':
        out.push_back('\r');
        break;
      case 't':
        out.push_back('\t');
        break;
      case 'u': {
        if (pos_ + 4 > text_.size()) {
          fail("truncated \\u escape");
        }
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = text_[pos_++];
          code <<= 4U;
          if (h >= '0' && h <= '9') {
            code |= static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            code |= static_cast<unsigned>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            code |= static_cast<unsigned>(h - 'A' + 10);
          } else {
            fail("invalid hex digit in \\u escape");
          }
        }
        // Encode the code point as UTF-8 (surrogate pairs are passed through
        // as two separate 3-byte sequences; reports only emit ASCII).
        if (code < 0x80) {
          out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out.push_back(static_cast<char>(0xC0 | (code >> 6U)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3FU)));
        } else {
          out.push_back(static_cast<char>(0xE0 | (code >> 12U)));
          out.push_back(static_cast<char>(0x80 | ((code >> 6U) & 0x3FU)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3FU)));
        }
        break;
      }
      default:
        fail("invalid escape character");
      }
    }
  }

  Json parseNumber() {
    const std::size_t begin = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const auto token = text_.substr(begin, pos_ - begin);
    if (token.empty() || token == "-") {
      fail("invalid number");
    }
    // JSON forbids leading zeros ("01") — from_chars would accept them.
    const auto digits = token[0] == '-' ? token.substr(1) : token;
    if (digits.size() > 1 && digits[0] == '0' && digits[1] >= '0' &&
        digits[1] <= '9') {
      fail("leading zero in number");
    }
    if (integral) {
      std::int64_t value = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && ptr == token.data() + token.size()) {
        return Json(value);
      }
      // Out of int64 range: fall through to double.
    }
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      fail("invalid number");
    }
    return Json(value);
  }

  Json parseArray() {
    expect('[');
    auto out = Json::array();
    skipWhitespace();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      out.push_back(parseValue());
      skipWhitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return out;
      }
      fail("expected ',' or ']' in array");
    }
  }

  Json parseObject() {
    expect('{');
    auto out = Json::object();
    skipWhitespace();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      skipWhitespace();
      auto key = parseString();
      skipWhitespace();
      expect(':');
      out[key] = parseValue();
      skipWhitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return out;
      }
      fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

} // namespace

bool Json::asBool() const {
  if (kind_ != Kind::Boolean) {
    kindError("boolean", kind_);
  }
  return bool_;
}

std::int64_t Json::asInt() const {
  if (kind_ == Kind::Integer) {
    return int_;
  }
  kindError("integer", kind_);
}

double Json::asDouble() const {
  if (kind_ == Kind::Double) {
    return double_;
  }
  if (kind_ == Kind::Integer) {
    return static_cast<double>(int_);
  }
  kindError("number", kind_);
}

const std::string& Json::asString() const {
  if (kind_ != Kind::String) {
    kindError("string", kind_);
  }
  return string_;
}

const Json::Array& Json::asArray() const {
  if (kind_ != Kind::Array) {
    kindError("array", kind_);
  }
  return array_;
}

const Json::Object& Json::asObject() const {
  if (kind_ != Kind::Object) {
    kindError("object", kind_);
  }
  return object_;
}

std::size_t Json::size() const noexcept {
  if (kind_ == Kind::Array) {
    return array_.size();
  }
  if (kind_ == Kind::Object) {
    return object_.size();
  }
  return 0;
}

Json& Json::push_back(Json value) {
  if (kind_ == Kind::Null) {
    kind_ = Kind::Array;
  }
  if (kind_ != Kind::Array) {
    kindError("array", kind_);
  }
  array_.push_back(std::move(value));
  return array_.back();
}

Json& Json::operator[](const std::string_view key) {
  if (kind_ == Kind::Null) {
    kind_ = Kind::Object;
  }
  if (kind_ != Kind::Object) {
    kindError("object", kind_);
  }
  for (auto& [name, value] : object_) {
    if (name == key) {
      return value;
    }
  }
  object_.emplace_back(std::string(key), Json{});
  return object_.back().second;
}

bool Json::contains(const std::string_view key) const noexcept {
  return find(key) != nullptr;
}

const Json* Json::find(const std::string_view key) const noexcept {
  if (kind_ != Kind::Object) {
    return nullptr;
  }
  for (const auto& [name, value] : object_) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

const Json& Json::at(const std::string_view key) const {
  const Json* value = find(key);
  if (value == nullptr) {
    throw JsonError("json: missing key '" + std::string(key) + "'");
  }
  return *value;
}

bool operator==(const Json& lhs, const Json& rhs) {
  if (lhs.isNumber() && rhs.isNumber()) {
    return lhs.asDouble() == rhs.asDouble();
  }
  if (lhs.kind_ != rhs.kind_) {
    return false;
  }
  switch (lhs.kind_) {
  case Json::Kind::Null:
    return true;
  case Json::Kind::Boolean:
    return lhs.bool_ == rhs.bool_;
  case Json::Kind::String:
    return lhs.string_ == rhs.string_;
  case Json::Kind::Array:
    return lhs.array_ == rhs.array_;
  case Json::Kind::Object:
    return lhs.object_ == rhs.object_;
  default:
    return false; // numbers handled above
  }
}

void Json::dumpTo(std::string& out, const int indent, const int depth) const {
  const auto newline = [&](const int d) {
    if (indent >= 0) {
      out.push_back('\n');
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  switch (kind_) {
  case Kind::Null:
    out += "null";
    break;
  case Kind::Boolean:
    out += bool_ ? "true" : "false";
    break;
  case Kind::Integer: {
    char buf[24];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), int_);
    out.append(buf, ptr);
    break;
  }
  case Kind::Double:
    appendDouble(out, double_);
    break;
  case Kind::String:
    escapeString(out, string_);
    break;
  case Kind::Array:
    if (array_.empty()) {
      out += "[]";
      break;
    }
    out.push_back('[');
    for (std::size_t i = 0; i < array_.size(); ++i) {
      if (i > 0) {
        out.push_back(',');
      }
      newline(depth + 1);
      array_[i].dumpTo(out, indent, depth + 1);
    }
    newline(depth);
    out.push_back(']');
    break;
  case Kind::Object:
    if (object_.empty()) {
      out += "{}";
      break;
    }
    out.push_back('{');
    for (std::size_t i = 0; i < object_.size(); ++i) {
      if (i > 0) {
        out.push_back(',');
      }
      newline(depth + 1);
      escapeString(out, object_[i].first);
      out.push_back(':');
      if (indent >= 0) {
        out.push_back(' ');
      }
      object_[i].second.dumpTo(out, indent, depth + 1);
    }
    newline(depth);
    out.push_back('}');
    break;
  }
}

std::string Json::dump(const int indent) const {
  std::string out;
  dumpTo(out, indent, 0);
  return out;
}

Json Json::parse(const std::string_view text) { return Parser(text).run(); }

} // namespace veriqc::obs
