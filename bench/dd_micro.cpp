/// \file dd_micro.cpp
/// \brief Google-benchmark microbenchmarks of the decision-diagram package.
#include "circuits/benchmarks.hpp"
#include "dd/package.hpp"
#include "sim/dd_simulator.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace veriqc;

void BM_MakeGateDD(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dd::Package package(n);
  const auto matrix = gateMatrix(OpType::H, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        package.makeGateDD(matrix, {}, static_cast<Qubit>(n / 2)));
  }
}
BENCHMARK(BM_MakeGateDD)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_MakeControlledGateDD(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dd::Package package(n);
  const auto matrix = gateMatrix(OpType::X, {});
  const std::vector<Qubit> controls{0, 1, 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        package.makeGateDD(matrix, controls, static_cast<Qubit>(n - 1)));
  }
}
BENCHMARK(BM_MakeControlledGateDD)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_BuildUnitaryGhz(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto circuit = circuits::ghz(n);
  for (auto _ : state) {
    dd::Package package(n);
    auto e = sim::buildUnitaryDD(package, circuit);
    benchmark::DoNotOptimize(e);
    package.decRef(e);
  }
}
BENCHMARK(BM_BuildUnitaryGhz)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_BuildUnitaryQft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto circuit = circuits::qft(n);
  for (auto _ : state) {
    dd::Package package(n);
    auto e = sim::buildUnitaryDD(package, circuit);
    benchmark::DoNotOptimize(e);
    package.decRef(e);
  }
}
// Full QFT matrix DDs grow steeply with n (the construction
// infeasibility the alternating checker avoids) — keep sizes small.
BENCHMARK(BM_BuildUnitaryQft)->Arg(4)->Arg(6)->Arg(8);

void BM_MultiplySelf(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dd::Package package(n);
  auto e = sim::buildUnitaryDD(package, circuits::qft(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(package.multiply(e, e));
    package.garbageCollect();
  }
  package.decRef(e);
}
BENCHMARK(BM_MultiplySelf)->Arg(4)->Arg(6);

void BM_Trace(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dd::Package package(n);
  auto e = sim::buildUnitaryDD(package, circuits::qft(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(package.trace(e));
  }
  package.decRef(e);
}
BENCHMARK(BM_Trace)->Arg(4)->Arg(6)->Arg(8);

void BM_SimulateGrover(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto circuit = circuits::grover(n, 3);
  for (auto _ : state) {
    dd::Package package(n);
    auto result = sim::simulate(package, circuit, package.makeZeroState());
    benchmark::DoNotOptimize(result);
    package.decRef(result);
  }
}
BENCHMARK(BM_SimulateGrover)->Arg(4)->Arg(6);

} // namespace

BENCHMARK_MAIN();
