/// \file dd_audit.hpp
/// \brief Deep structural auditors for the decision-diagram package.
///
/// The DD kernel's correctness rests on four invariants: canonicity (one
/// slab-resident node per distinct child tuple, its cached hash matching a
/// recomputation from the stored children), normalization (largest child
/// weight has unit magnitude, zero weights point at the terminal, weights
/// are interned), reference-count accounting (stored counts equal a recount
/// from the externally held roots), and cache hygiene (live compute-table
/// entries reference only live node handles). A violation of any of them can
/// silently flip an equivalence verdict, so these auditors re-derive each
/// invariant from scratch instead of trusting the package's own bookkeeping.
///
/// With index handles, a node's level is carried by the handle itself, so
/// the old `dd.unique.level` class of corruption (a node stored in the
/// wrong level's table) is structurally impossible and no longer audited.
///
/// Finding codes:
///   dd.unique.misplaced   cached child-tuple hash differs from recomputation
///                         (the node was mutated in place after insertion and
///                         would probe the wrong bucket)
///   dd.unique.duplicate   two slab-resident nodes with identical children
///   dd.node.normalization max child-weight magnitude differs from 1
///   dd.node.zero          zero-weight child does not point at the terminal
///   dd.node.weight        child weight is not the interned representative
///   dd.node.child         child handle is level-inverted, or dangling on a
///                         referenced node (unreferenced orphans may point
///                         at slots an eager release() freed; the next GC
///                         sweep collects them)
///   dd.ref.mismatch       stored refcount differs from the recount
///   dd.reals.collision    two interned reals within tolerance
///   dd.reals.binning      slot key inconsistent with its value's bin
///   dd.cache.stale        live compute-table entry references a dead node
///
/// All auditors are read-only and must run at quiescent points (no DD
/// operation in flight). The refcount recount needs *all* externally held
/// roots: the package contributes its internal ones (identity chain,
/// gate-DD cache); the caller passes every edge it has incRef'ed itself.
#pragma once

#include "audit/finding.hpp"
#include "dd/package.hpp"

#include <span>

namespace veriqc::audit {

/// Audits the slab stores, normalization, interning table, refcounts and
/// compute-table liveness of a package in one pass.
[[nodiscard]] AuditReport
auditPackage(const dd::Package& package,
             std::span<const dd::mEdge> matrixRoots = {},
             std::span<const dd::vEdge> vectorRoots = {});

/// Audits only the real-number interning table (pairwise tolerance
/// separation and bin-key consistency).
[[nodiscard]] AuditReport auditRealTable(const dd::RealTable& reals);

} // namespace veriqc::audit
