/// \file checkpoint.hpp
/// \brief Checkpoint drivers wiring the auditors into the checker engines.
///
/// Engines construct a checkpoint with the effective audit level (the
/// maximum of Configuration::auditLevel and the VERIQC_AUDIT environment
/// variable). At level 0 every hook reduces to one integer compare — no
/// structure is walked and nothing allocates. Violations surface as
/// AuditError, which the manager's exception firewall contains as an
/// EngineError slot: a corrupted structure must disqualify the engine, not
/// feed it a wrong verdict.
#pragma once

#include "audit/dd_audit.hpp"
#include "audit/zx_audit.hpp"

#include <cstddef>
#include <span>
#include <string>

namespace veriqc::audit {

/// Throttled post-gate checkpoint driver for the DD engines.
class DDCheckpoint {
public:
  DDCheckpoint(int configuredLevel, std::string context);

  [[nodiscard]] bool enabled() const noexcept { return level_ > kAuditOff; }
  [[nodiscard]] int level() const noexcept { return level_; }

  /// Post-gate hook. Level 1 audits every kCheckpointStride-th call, level 2
  /// every call. `matrixRoots`/`vectorRoots` are the edges the engine
  /// currently keeps incRef'ed. \throws AuditError on violations.
  void postGate(const dd::Package& package,
                std::span<const dd::mEdge> matrixRoots = {},
                std::span<const dd::vEdge> vectorRoots = {});

  /// Unthrottled checkpoint for engine-finish / pass boundaries; audits at
  /// any enabled level. \throws AuditError on violations.
  void boundary(const dd::Package& package,
                std::span<const dd::mEdge> matrixRoots = {},
                std::span<const dd::vEdge> vectorRoots = {});

private:
  void run(const dd::Package& package, std::span<const dd::mEdge> matrixRoots,
           std::span<const dd::vEdge> vectorRoots);

  int level_;
  std::string context_;
  std::size_t sinceAudit_ = 0;
};

/// Post-pass checkpoint for the ZX engine: audits the diagram and the
/// simplifier worklist. No-op below level 1. \throws AuditError on
/// violations.
void zxCheckpoint(int configuredLevel, const zx::ZXDiagram& diagram,
                  const zx::Simplifier& simplifier,
                  const std::string& context);

} // namespace veriqc::audit
