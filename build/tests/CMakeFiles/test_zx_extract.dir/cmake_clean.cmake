file(REMOVE_RECURSE
  "CMakeFiles/test_zx_extract.dir/test_zx_extract.cpp.o"
  "CMakeFiles/test_zx_extract.dir/test_zx_extract.cpp.o.d"
  "test_zx_extract"
  "test_zx_extract.pdb"
  "test_zx_extract[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zx_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
