# Empty compiler generated dependencies file for test_zx_extract.
# This may be replaced when dependencies are built.
