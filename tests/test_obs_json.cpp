#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "obs/phase_timer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

using veriqc::obs::CounterRegistry;
using veriqc::obs::Json;
using veriqc::obs::JsonError;
using veriqc::obs::PhaseTimer;

// --- writer ------------------------------------------------------------------

TEST(JsonWriterTest, ScalarsSerializeCompactly) {
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(std::int64_t{-7}).dump(), "-7");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(JsonWriterTest, DoublesKeepTheirKindThroughSerialization) {
  // Integral doubles gain a ".0" so re-parsing yields a Double, not an
  // Integer — the report schema distinguishes counts from measurements.
  EXPECT_EQ(Json(1.0).dump(), "1.0");
  EXPECT_EQ(Json(0.5).dump(), "0.5");
  const auto reparsed = Json::parse(Json(3.0).dump());
  EXPECT_EQ(reparsed.kind(), Json::Kind::Double);
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(std::nan("")).dump(), "null");
}

TEST(JsonWriterTest, StringsAreEscaped) {
  EXPECT_EQ(Json("a\"b\\c").dump(), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(Json("line\nbreak\ttab").dump(), "\"line\\nbreak\\ttab\"");
  EXPECT_EQ(Json(std::string_view("\x01", 1)).dump(), "\"\\u0001\"");
}

TEST(JsonWriterTest, ObjectsPreserveInsertionOrder) {
  auto j = Json::object();
  j["zebra"] = 1;
  j["apple"] = 2;
  j["mango"] = 3;
  EXPECT_EQ(j.dump(), "{\"zebra\":1,\"apple\":2,\"mango\":3}");
}

TEST(JsonWriterTest, IndentedOutputIsStable) {
  auto j = Json::object();
  j["a"] = Json::array();
  j["a"].push_back(1);
  j["a"].push_back(2);
  j["b"] = Json::object();
  j["b"]["c"] = true;
  EXPECT_EQ(j.dump(2), "{\n  \"a\": [\n    1,\n    2\n  ],\n"
                       "  \"b\": {\n    \"c\": true\n  }\n}");
}

TEST(JsonWriterTest, EmptyContainersSerializeWithoutNewlines) {
  EXPECT_EQ(Json::array().dump(2), "[]");
  EXPECT_EQ(Json::object().dump(2), "{}");
}

// --- parser ------------------------------------------------------------------

TEST(JsonParserTest, RoundTripsNestedDocuments) {
  auto j = Json::object();
  j["name"] = "veriqc";
  j["count"] = 12;
  j["ratio"] = 0.375;
  j["flags"] = Json::array();
  j["flags"].push_back(true);
  j["flags"].push_back(nullptr);
  j["nested"] = Json::object();
  j["nested"]["deep"] = Json::array();
  j["nested"]["deep"].push_back("x");
  for (const int indent : {-1, 0, 2, 4}) {
    EXPECT_EQ(Json::parse(j.dump(indent)), j) << "indent " << indent;
  }
}

TEST(JsonParserTest, ParsesNumbersIntoIntegerOrDouble) {
  EXPECT_EQ(Json::parse("17").kind(), Json::Kind::Integer);
  EXPECT_EQ(Json::parse("-3").asInt(), -3);
  EXPECT_EQ(Json::parse("2.5").kind(), Json::Kind::Double);
  EXPECT_DOUBLE_EQ(Json::parse("1e3").asDouble(), 1000.0);
  // Past int64 range the parser falls back to double instead of failing.
  EXPECT_EQ(Json::parse("99999999999999999999").kind(), Json::Kind::Double);
}

TEST(JsonParserTest, DecodesEscapes) {
  EXPECT_EQ(Json::parse("\"a\\u0041b\"").asString(), "aAb");
  EXPECT_EQ(Json::parse("\"\\n\\t\\\\\"").asString(), "\n\t\\");
  // Non-ASCII \u escapes decode to UTF-8.
  EXPECT_EQ(Json::parse("\"\\u00e9\"").asString(), "\xc3\xa9");
}

TEST(JsonParserTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru", "01", "1.2.3",
        "\"unterminated", "{\"a\":1} trailing", "[1 2]", "nan"}) {
    EXPECT_THROW((void)Json::parse(bad), JsonError) << bad;
  }
}

TEST(JsonParserTest, AccessorsThrowOnKindMismatch) {
  const auto j = Json::parse("{\"a\":1}");
  EXPECT_THROW((void)j.asArray(), JsonError);
  EXPECT_THROW((void)j.at("missing"), JsonError);
  EXPECT_THROW((void)j.at("a").asString(), JsonError);
  EXPECT_EQ(j.at("a").asInt(), 1);
  EXPECT_EQ(j.find("missing"), nullptr);
  EXPECT_FALSE(j.contains("missing"));
}

TEST(JsonEqualityTest, IntegerAndDoubleCompareByValue) {
  EXPECT_EQ(Json(1), Json(1.0));
  EXPECT_NE(Json(1), Json(1.5));
  EXPECT_NE(Json(1), Json("1"));
}

// --- phase timer -------------------------------------------------------------

TEST(PhaseTimerTest, ScopesRecordNamedSpans) {
  PhaseTimer timer;
  {
    auto scope = timer.scope("work");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto spans = timer.spans();
  ASSERT_EQ(spans.size(), 1U);
  EXPECT_EQ(spans[0].name, "work");
  EXPECT_GE(spans[0].startSeconds, 0.0);
  EXPECT_GT(spans[0].durationSeconds, 0.0);
}

TEST(PhaseTimerTest, FinishIsIdempotent) {
  PhaseTimer timer;
  auto scope = timer.scope("once");
  scope.finish();
  scope.finish(); // destruction must not double-record either
  EXPECT_EQ(timer.spans().size(), 1U);
}

TEST(PhaseTimerTest, ConcurrentScopesAreAllRecorded) {
  PhaseTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&timer, i] {
      auto scope = timer.scope("t" + std::to_string(i));
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(timer.spans().size(), 8U);
}

TEST(PhaseTimerTest, RestartDropsSpans) {
  PhaseTimer timer;
  timer.record("old", 0.0, 1.0);
  timer.restart();
  EXPECT_TRUE(timer.spans().empty());
}

// --- counters ----------------------------------------------------------------

TEST(CounterRegistryTest, SumAndMaxSemantics) {
  CounterRegistry registry;
  registry.add("lookups", 10);
  registry.add("lookups", 5);
  registry.max("peak", 100);
  registry.max("peak", 40); // lower value must not win
  EXPECT_DOUBLE_EQ(registry.value("lookups"), 15.0);
  EXPECT_DOUBLE_EQ(registry.value("peak"), 100.0);
  EXPECT_DOUBLE_EQ(registry.value("absent"), 0.0);
  EXPECT_TRUE(registry.contains("peak"));
  EXPECT_FALSE(registry.contains("absent"));
}

TEST(CounterRegistryTest, MergeRespectsCounterKind) {
  CounterRegistry a;
  a.add("hits", 3);
  a.max("peak", 50);
  CounterRegistry b;
  b.add("hits", 4);
  b.max("peak", 20);
  b.add("only_b", 1);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.value("hits"), 7.0);  // sums add
  EXPECT_DOUBLE_EQ(a.value("peak"), 50.0); // gauges take the max
  EXPECT_DOUBLE_EQ(a.value("only_b"), 1.0);
  EXPECT_EQ(a.size(), 3U);
}

TEST(CounterRegistryTest, EntriesAreSortedByName) {
  CounterRegistry registry;
  registry.add("zeta", 1);
  registry.add("alpha", 2);
  std::vector<std::string> names;
  for (const auto& [name, counter] : registry.entries()) {
    names.push_back(name);
  }
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "zeta"}));
}
