# Empty dependencies file for test_dd_simulation.
# This may be replaced when dependencies are built.
