/// \file zx_audit.hpp
/// \brief Structural auditors for ZX-diagrams and the simplifier worklist.
///
/// The rewrite engine assumes an undirected multigraph stored as sorted
/// adjacency rows, boundary vertices of degree exactly 1 carrying no phase,
/// phases in PiRational normal form, and a worklist whose membership stamps
/// agree with its two sweep heaps. These auditors re-derive each property.
///
/// Finding codes:
///   zx.adj.symmetry     edge multiplicities differ between the directions
///   zx.adj.order        adjacency row not sorted strictly ascending
///   zx.adj.present      adjacency references an absent vertex
///   zx.adj.empty        adjacency entry with zero total multiplicity
///   zx.boundary.degree  boundary vertex with degree != 1
///   zx.boundary.phase   boundary vertex carrying a nonzero phase
///   zx.boundary.io      inputs/outputs list inconsistent with the diagram
///   zx.phase.form       phase not in PiRational normal form
///   zx.worklist.stamp   worklist membership-stamp inconsistency
#pragma once

#include "audit/finding.hpp"
#include "zx/diagram.hpp"
#include "zx/simplify.hpp"

namespace veriqc::audit {

/// Audits adjacency symmetry and ordering, boundary-vertex invariants and
/// phase normal form of a diagram. `boundariesFinal` should be false while a
/// diagram is under construction or mid-rewrite (boundary degree may then
/// legitimately differ from 1; the check is skipped).
[[nodiscard]] AuditReport auditDiagram(const zx::ZXDiagram& diagram,
                                       bool boundariesFinal = true);

/// Audits the membership-stamp consistency of a simplifier's worklist.
[[nodiscard]] AuditReport auditWorklist(const zx::Simplifier& simplifier);

} // namespace veriqc::audit
