file(REMOVE_RECURSE
  "libveriqc_compile.a"
)
