/// \file permutation.hpp
/// \brief Qubit permutations used for initial layouts and output permutations.
#pragma once

#include "ir/types.hpp"

#include <cstddef>
#include <string>
#include <vector>

namespace veriqc {

/// A bijection on {0, ..., n-1}.
///
/// In circuit context a permutation maps a *wire* index (the index operations
/// in the gate list act on; the "physical" qubit after compilation) to a
/// *logical* qubit index. A circuit's `initialLayout` states which logical
/// qubit each wire holds at the beginning of the circuit; its
/// `outputPermutation` states which logical qubit each wire holds at the end
/// (they differ when SWAP gates were saved during compilation).
class Permutation {
public:
  Permutation() = default;

  /// Identity permutation on n elements.
  static Permutation identity(std::size_t n);

  /// Construct from an explicit image vector: `map[i]` is the image of i.
  /// \throws CircuitError if `map` is not a bijection.
  explicit Permutation(std::vector<Qubit> map);

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] bool empty() const noexcept { return map_.empty(); }

  /// Image of element i.
  [[nodiscard]] Qubit operator[](Qubit i) const { return map_.at(i); }

  /// Image of element i (alias for operator[]).
  [[nodiscard]] Qubit apply(Qubit i) const { return map_.at(i); }

  /// Set the image of element i. The caller is responsible for keeping the
  /// map a bijection; validity can be re-checked with isValid().
  void set(Qubit i, Qubit image) { map_.at(i) = image; }

  /// Swap the images of elements a and b (used to absorb SWAP gates).
  void swapImages(Qubit a, Qubit b);

  /// True if the stored map is a bijection on {0..n-1}.
  [[nodiscard]] bool isValid() const noexcept;

  /// True if this is the identity permutation.
  [[nodiscard]] bool isIdentity() const noexcept;

  /// Functional composition: (this ∘ other)(i) = this(other(i)).
  /// \throws CircuitError on size mismatch.
  [[nodiscard]] Permutation compose(const Permutation& other) const;

  /// The inverse bijection.
  [[nodiscard]] Permutation inverse() const;

  /// Extend the permutation with fixed points up to size n.
  void extend(std::size_t n);

  /// Decompose into a sequence of transpositions (a,b) such that applying the
  /// swaps in order to the identity (identity.swapImages(a, b) for each pair,
  /// in order) yields this permutation. Used to materialize a permutation as
  /// a SWAP-gate network.
  [[nodiscard]] std::vector<std::pair<Qubit, Qubit>> transpositions() const;

  [[nodiscard]] const std::vector<Qubit>& raw() const noexcept { return map_; }

  [[nodiscard]] std::string toString() const;

  friend bool operator==(const Permutation&, const Permutation&) = default;

private:
  std::vector<Qubit> map_;
};

} // namespace veriqc
