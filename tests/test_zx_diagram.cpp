#include "circuits/benchmarks.hpp"
#include "sim/dense.hpp"
#include "zx/circuit_to_zx.hpp"
#include "zx/diagram.hpp"
#include "zx/tensor.hpp"

#include <gtest/gtest.h>

namespace veriqc::zx {
namespace {

TEST(ZXDiagramTest, AddRemoveVertices) {
  ZXDiagram d;
  const auto a = d.addVertex(VertexType::Z, PiRational(1, 2));
  const auto b = d.addVertex(VertexType::X);
  EXPECT_EQ(d.vertexCount(), 2U);
  EXPECT_EQ(d.phase(a), PiRational(1, 2));
  d.addEdge(a, b, EdgeType::Hadamard);
  EXPECT_TRUE(d.connected(a, b));
  EXPECT_EQ(d.degree(a), 1U);
  d.removeVertex(b);
  EXPECT_EQ(d.vertexCount(), 1U);
  EXPECT_FALSE(d.isPresent(b));
  EXPECT_EQ(d.degree(a), 0U);
}

TEST(ZXDiagramTest, ParallelEdgesAndLoops) {
  ZXDiagram d;
  const auto a = d.addVertex(VertexType::Z);
  const auto b = d.addVertex(VertexType::Z);
  d.addEdge(a, b, EdgeType::Simple);
  d.addEdge(a, b, EdgeType::Hadamard);
  EXPECT_EQ(d.edge(a, b).simple, 1);
  EXPECT_EQ(d.edge(a, b).hadamard, 1);
  EXPECT_EQ(d.degree(a), 2U);
  d.addEdge(a, a, EdgeType::Simple);
  EXPECT_EQ(d.degree(a), 4U); // self-loop counts twice
  d.removeEdge(a, b, EdgeType::Simple);
  EXPECT_EQ(d.edge(a, b).simple, 0);
  EXPECT_THROW(d.removeEdge(a, b, EdgeType::Simple), CircuitError);
}

TEST(ZXDiagramTest, EdgeAndSpiderCounts) {
  const auto d = circuitToZX(circuits::ghz(3));
  // h: 0 spiders (edge toggle); each cx: 2 spiders.
  EXPECT_EQ(d.spiderCount(), 4U);
  EXPECT_EQ(d.inputs().size(), 3U);
  EXPECT_EQ(d.outputs().size(), 3U);
}

TEST(ZXDiagramTest, AdjointNegatesPhases) {
  QuantumCircuit c(1);
  c.t(0);
  const auto d = circuitToZX(c).adjoint();
  bool found = false;
  for (const auto v : d.vertices()) {
    if (!d.isBoundary(v)) {
      EXPECT_EQ(d.phase(v), PiRational(-1, 4));
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(d.inputs().size(), 1U);
}

TEST(ZXDiagramTest, AdjointSemantics) {
  // Small: dense tensor validation is exponential in the spider count, and
  // randomCircuit may emit CCX which the converter rejects — Clifford+T+
  // rotations stay in the supported set.
  auto c = circuits::randomCliffordT(3, 2, 0.3, 17);
  c.rz(0, 0.4);
  c.cp(1, 2, -0.9);
  const auto m = toMatrix(circuitToZX(c).adjoint());
  const auto expected = sim::circuitUnitary(c).adjoint();
  EXPECT_TRUE(proportional(m, expected, 1e-6));
}

TEST(ZXDiagramTest, ComposeSemantics) {
  const auto c1 = circuits::randomCliffordT(2, 3, 0.3, 1);
  const auto c2 = circuits::randomCliffordT(2, 3, 0.3, 2);
  const auto composed = circuitToZX(c1).compose(circuitToZX(c2));
  // compose = run c1 then c2 => matrix U2 * U1
  const auto expected =
      sim::circuitUnitary(c2).multiply(sim::circuitUnitary(c1));
  EXPECT_TRUE(proportional(toMatrix(composed), expected, 1e-6));
}

TEST(ZXDiagramTest, ComposeInterfaceMismatchThrows) {
  const auto d1 = circuitToZX(circuits::ghz(2));
  const auto d2 = circuitToZX(circuits::ghz(3));
  EXPECT_THROW((void)d1.compose(d2), CircuitError);
}

TEST(ZXDiagramTest, ToStringShowsStructure) {
  const auto d = circuitToZX(circuits::ghz(2));
  const auto str = d.toString();
  EXPECT_NE(str.find("ZXDiagram"), std::string::npos);
  EXPECT_NE(str.find("Z("), std::string::npos);
  EXPECT_NE(str.find("X("), std::string::npos);
}

} // namespace
} // namespace veriqc::zx
