#include "zx/rational.hpp"

#include "ir/types.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace veriqc::zx {

namespace {
/// Continued-fraction approximation of x (in units of pi, reduced to
/// (-1, 1]) with |x - p/q| < tol and q <= maxDen. Returns {0, 0} on failure.
std::pair<std::int64_t, std::int64_t>
continuedFraction(const double x, const double tol,
                  const std::int64_t maxDen) {
  double value = x;
  std::int64_t prevNum = 1;
  std::int64_t prevDen = 0;
  std::int64_t curNum = static_cast<std::int64_t>(std::floor(value));
  std::int64_t curDen = 1;
  double frac = value - std::floor(value);
  for (int iter = 0; iter < 64; ++iter) {
    if (std::abs(x - static_cast<double>(curNum) /
                         static_cast<double>(curDen)) < tol) {
      return {curNum, curDen};
    }
    if (frac < 1e-18) {
      break;
    }
    value = 1.0 / frac;
    const double whole = std::floor(value);
    frac = value - whole;
    const auto a = static_cast<std::int64_t>(whole);
    const std::int64_t nextNum = a * curNum + prevNum;
    const std::int64_t nextDen = a * curDen + prevDen;
    if (nextDen > maxDen || nextDen < 0) {
      break;
    }
    prevNum = curNum;
    prevDen = curDen;
    curNum = nextNum;
    curDen = nextDen;
  }
  return {0, 0};
}
} // namespace

PiRational::PiRational(const std::int64_t num, const std::int64_t den)
    : num_(num), den_(den) {
  if (den == 0) {
    throw std::invalid_argument("PiRational: zero denominator");
  }
  normalize();
}

void PiRational::normalize() {
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  // Reduce modulo 2 (phases live on the circle): num/den in (-1, 1].
  const std::int64_t twoDen = 2 * den_;
  num_ %= twoDen;
  if (num_ > den_) {
    num_ -= twoDen;
  } else if (num_ <= -den_) {
    num_ += twoDen;
  }
  const std::int64_t g = std::gcd(num_ < 0 ? -num_ : num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
  if (num_ == 0) {
    den_ = 1;
  }
  if (den_ > kResnapDenominator) {
    // Only inexact (snapped) phases ever grow such denominators. Sums of
    // approximants accumulate ~1e-10 residuals that would block rewriting
    // (e.g. keep a spider from being recognized as Pauli), so re-snap to the
    // closest small rational within the phase tolerance — the ZX analogue of
    // the DD package's tolerance-aware value interning.
    const double x = static_cast<double>(num_) / static_cast<double>(den_);
    const double target = x < 0.0 ? -x : x;
    const auto [num, den] =
        continuedFraction(target, kPhaseTolerance, kResnapDenominator);
    if (den != 0) {
      num_ = x < 0.0 ? -num : num;
      den_ = den;
      // A fresh small fraction may need range reduction but cannot recurse
      // (its denominator is already below the threshold).
      const std::int64_t twoDen = 2 * den_;
      num_ %= twoDen;
      if (num_ > den_) {
        num_ -= twoDen;
      } else if (num_ <= -den_) {
        num_ += twoDen;
      }
      const std::int64_t g2 = std::gcd(num_ < 0 ? -num_ : num_, den_);
      if (g2 > 1) {
        num_ /= g2;
        den_ /= g2;
      }
      if (num_ == 0) {
        den_ = 1;
      }
    }
  }
}

PiRational PiRational::fromRadians(const double radians, const double tol) {
  // Reduce to (-1, 1] in units of pi.
  double x = radians / PI;
  x = std::fmod(x, 2.0);
  if (x > 1.0) {
    x -= 2.0;
  } else if (x <= -1.0) {
    x += 2.0;
  }
  if (x < 0.0 && x > -1.0) {
    // Snap symmetrically so that fromRadians(-a) == -fromRadians(a) and
    // adjoint phases cancel exactly.
    return -fromRadians(-x * PI, tol);
  }
  if (const auto [num, den] = continuedFraction(x, tol / PI, kMaxDenominator);
      den != 0) {
    return {num, den};
  }
  // Best-effort fallback with a fixed large denominator.
  const std::int64_t den = kMaxDenominator;
  const auto num = static_cast<std::int64_t>(
      std::llround(x * static_cast<double>(den)));
  return {num, den};
}

double PiRational::toRadians() const noexcept {
  return PI * static_cast<double>(num_) / static_cast<double>(den_);
}

PiRational& PiRational::operator+=(const PiRational& rhs) {
  // 128-bit intermediates: denominators are bounded by kMaxDenominator, so
  // the products below stay below 2^63 after gcd pre-reduction.
  const std::int64_t g = std::gcd(den_, rhs.den_);
  const std::int64_t rd = rhs.den_ / g;
  num_ = num_ * rd + rhs.num_ * (den_ / g);
  den_ *= rd;
  normalize();
  return *this;
}

PiRational& PiRational::operator-=(const PiRational& rhs) {
  *this += -rhs;
  return *this;
}

PiRational PiRational::operator-() const {
  PiRational result = *this;
  result.num_ = -result.num_;
  result.normalize();
  return result;
}

std::string PiRational::toString() const {
  if (num_ == 0) {
    return "0";
  }
  std::string s = (num_ == 1)    ? ""
                  : (num_ == -1) ? "-"
                                 : std::to_string(num_) + "*";
  s += "pi";
  if (den_ != 1) {
    s += "/";
    s += std::to_string(den_);
  }
  return s;
}

} // namespace veriqc::zx
