/// \file zx_optimize.cpp
/// \brief Optimize an OpenQASM circuit through the ZX-calculus and verify
///        the result with the decision-diagram checker before writing it out
///        — the two paradigms of the paper working as complements.
///
/// Usage: zx_optimize <in.qasm> [out.qasm]
/// Exit code: 0 = optimized + verified, 1 = extraction declined,
///            2 = verification failed (never expected), 3 = usage/IO error.
#include "check/dd_checkers.hpp"
#include "qasm/parser.hpp"
#include "qasm/writer.hpp"
#include "zx/resynthesis.hpp"

#include <cstdio>

int main(int argc, char** argv) {
  using namespace veriqc;
  if (argc < 2 || argc > 3) {
    std::fprintf(stderr, "usage: %s <in.qasm> [out.qasm]\n", argv[0]);
    return 3;
  }
  try {
    const auto original = qasm::parseFile(argv[1]);
    std::printf("input:  %zu qubits, %zu gates\n", original.numQubits(),
                original.gateCount());

    const auto optimized = zx::resynthesize(original);
    if (!optimized.has_value()) {
      std::printf("extraction declined (phase gadgets in the reduced "
                  "diagram); circuit left unchanged\n");
      return 1;
    }
    std::printf("output: %zu gates (%.1f%% saved)\n", optimized->gateCount(),
                100.0 *
                    (static_cast<double>(original.gateCount()) -
                     static_cast<double>(optimized->gateCount())) /
                    static_cast<double>(original.gateCount()));

    const auto verdict = check::ddAlternatingCheck(original, *optimized);
    std::printf("independent DD verification: %s\n",
                verdict.toString().c_str());
    if (!check::provedEquivalent(verdict.criterion)) {
      return 2;
    }
    if (argc == 3) {
      qasm::writeFile(optimized->withExplicitPermutations(), argv[2]);
      std::printf("written to %s\n", argv[2]);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  }
}
