#include "audit/dd_audit.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace veriqc::audit {

namespace {

std::string handleString(const dd::NodeIndex n) {
  return "node #" + std::to_string(n) + " (level " +
         std::to_string(dd::levelOfIndex(n)) + ", slot " +
         std::to_string(dd::slotOfIndex(n)) + ")";
}

/// True when `x` is a value reals_.lookup can return: one of the fast-path
/// constants or an interned representative (`interned` sorted ascending).
bool isCanonicalReal(const double x, const std::vector<double>& interned) {
  return x == 0.0 || x == 1.0 || x == -1.0 ||
         std::binary_search(interned.begin(), interned.end(), x);
}

/// Audits one family of slab stores (matrix or vector): canonicity,
/// per-node normalization and the refcount recount against `roots`.
template <typename EdgeT>
void auditSlabs(const char* kind,
                const std::vector<dd::NodeSlab<EdgeT>>& slabs,
                const std::vector<double>& interned, const double tolerance,
                const std::vector<EdgeT>& roots, AuditReport& report) {
  // Normalization leaves the maximal child weight at 1 up to the rounding of
  // one complex division; anything beyond a generous multiple of the
  // interning tolerance is a real violation, not noise.
  const double magTolerance = 64.0 * tolerance;

  // Refcount recount. A node's stored count must equal the number of root
  // edges pinning it plus one per edge from each slab-resident parent whose
  // own count is positive (incRef/decRef recurse into children exactly on
  // the parent's 0<->1 transitions).
  std::unordered_map<dd::NodeIndex, std::uint64_t> expected;
  for (const auto& root : roots) {
    if (!root.isTerminal()) {
      ++expected[root.n];
    }
  }

  const auto childIsLive = [&slabs](const dd::NodeIndex child) {
    if (child == dd::kTerminalIndex) {
      return true;
    }
    const auto v = dd::levelOfIndex(child);
    return v >= 0 && static_cast<std::size_t>(v) < slabs.size() &&
           slabs[static_cast<std::size_t>(v)].contains(child);
  };

  for (std::size_t level = 0; level < slabs.size(); ++level) {
    const auto& slab = slabs[level];
    const std::string where = std::string(kind) + " level " +
                              std::to_string(level);
    // Group by the full (unfolded) child hash so duplicates are found even
    // when one copy carries a corrupted cached hash.
    std::unordered_map<std::size_t, std::vector<std::uint32_t>> byHash;
    byHash.reserve(slab.size());

    slab.forEach([&](const dd::NodeIndex node, const std::uint32_t slot) {
      const auto& children = slab.children(slot);
      const auto& weights = slab.weights(slot);
      const bool referenced = slab.ref(slot) > 0;
      const auto hash = dd::hashNodeChildren(children, weights);
      if (dd::NodeSlab<EdgeT>::foldHash(hash) != slab.storedHash(slot)) {
        report.add(AuditSeverity::Error, "dd.unique.misplaced",
                   handleString(node) +
                       " caches a child-tuple hash that no longer matches "
                       "its children — it would probe the wrong bucket",
                   where);
      }
      byHash[hash].push_back(slot);

      double maxNorm = 0.0;
      for (std::size_t i = 0; i < dd::NodeSlab<EdgeT>::Arity; ++i) {
        const auto child = children[i];
        const auto& weight = weights[i];
        const bool zeroWeight = weight == std::complex<double>{0.0, 0.0};
        if (zeroWeight && child != dd::kTerminalIndex) {
          report.add(AuditSeverity::Error, "dd.node.zero",
                     "zero-weight child of " + handleString(node) +
                         " does not point at the terminal",
                     where);
        }
        if (!zeroWeight && child != dd::kTerminalIndex &&
            dd::levelOfIndex(child) >= static_cast<dd::Level>(level)) {
          report.add(AuditSeverity::Error, "dd.node.child",
                     "child of " + handleString(node) + " sits at level " +
                         std::to_string(dd::levelOfIndex(child)) +
                         " >= its parent",
                     where);
        }
        // Dangling handles are only corruption on *referenced* nodes: their
        // children carry a positive refcount and can never be reclaimed.
        // Unreferenced orphans may legitimately point at slots an eager
        // release() freed — the next GC sweep collects them.
        if (referenced && !childIsLive(child)) {
          report.add(AuditSeverity::Error, "dd.node.child",
                     "child handle of " + handleString(node) +
                         " is dangling (slot not live)",
                     where);
        }
        if (!isCanonicalReal(weight.real(), interned) ||
            !isCanonicalReal(weight.imag(), interned)) {
          report.add(AuditSeverity::Error, "dd.node.weight",
                     "child weight of " + handleString(node) +
                         " is not an interned representative",
                     where);
        }
        maxNorm = std::max(maxNorm, std::abs(weight));
      }
      if (std::abs(maxNorm - 1.0) > magTolerance) {
        report.add(AuditSeverity::Error, "dd.node.normalization",
                   "maximal child-weight magnitude of " + handleString(node) +
                       " is " + std::to_string(maxNorm) + ", expected 1",
                   where);
      }

      if (slab.ref(slot) > 0) {
        for (const auto child : children) {
          if (child != dd::kTerminalIndex) {
            ++expected[child];
          }
        }
      }
    });

    for (const auto& [hash, slots] : byHash) {
      for (std::size_t i = 0; i < slots.size(); ++i) {
        for (std::size_t j = i + 1; j < slots.size(); ++j) {
          if (slab.children(slots[i]) == slab.children(slots[j]) &&
              slab.weights(slots[i]) == slab.weights(slots[j])) {
            report.add(
                AuditSeverity::Error, "dd.unique.duplicate",
                handleString(dd::makeNodeIndex(
                    static_cast<dd::Level>(level), slots[i])) +
                    " and " +
                    handleString(dd::makeNodeIndex(
                        static_cast<dd::Level>(level), slots[j])) +
                    " have identical children",
                where);
          }
        }
      }
    }
  }

  for (std::size_t level = 0; level < slabs.size(); ++level) {
    const auto& slab = slabs[level];
    const std::string where = std::string(kind) + " level " +
                              std::to_string(level);
    slab.forEach([&](const dd::NodeIndex node, const std::uint32_t slot) {
      const auto it = expected.find(node);
      const std::uint64_t want = it == expected.end() ? 0 : it->second;
      if (want != slab.ref(slot)) {
        report.add(AuditSeverity::Error, "dd.ref.mismatch",
                   handleString(node) + " stores refcount " +
                       std::to_string(slab.ref(slot)) + ", recount gives " +
                       std::to_string(want),
                   where);
      }
    });
  }
}

} // namespace

AuditReport auditRealTable(const dd::RealTable& reals) {
  AuditReport report;
  std::vector<std::pair<double, std::int64_t>> entries;
  reals.forEachEntry([&](const std::int64_t key, const double value) {
    entries.emplace_back(value, key);
  });
  for (const auto& [value, key] : entries) {
    if (key != reals.binKey(value)) {
      report.add(AuditSeverity::Error, "dd.reals.binning",
                 "representative " + std::to_string(value) +
                     " filed under bin " + std::to_string(key) +
                     ", its value bins to " +
                     std::to_string(reals.binKey(value)),
                 "real table");
    }
  }
  std::sort(entries.begin(), entries.end());
  for (std::size_t i = 1; i < entries.size(); ++i) {
    const double prev = entries[i - 1].first;
    const double cur = entries[i].first;
    if (cur - prev < reals.tolerance()) {
      report.add(AuditSeverity::Error, "dd.reals.collision",
                 "representatives " + std::to_string(prev) + " and " +
                     std::to_string(cur) + " are within tolerance",
                 "real table");
    }
  }
  return report;
}

AuditReport auditPackage(const dd::Package& package,
                         const std::span<const dd::mEdge> matrixRoots,
                         const std::span<const dd::vEdge> vectorRoots) {
  AuditReport report = auditRealTable(package.realTable());

  std::vector<double> interned;
  interned.reserve(package.realTable().size());
  package.realTable().forEachEntry(
      [&](std::int64_t /*key*/, const double value) {
        interned.push_back(value);
      });
  std::sort(interned.begin(), interned.end());

  auto mRoots = package.internalMatrixRoots();
  mRoots.insert(mRoots.end(), matrixRoots.begin(), matrixRoots.end());
  auditSlabs("matrix", package.matrixSlabs(), interned,
             package.tolerance(), mRoots, report);

  const std::vector<dd::vEdge> vRoots(vectorRoots.begin(), vectorRoots.end());
  auditSlabs("vector", package.vectorSlabs(), interned,
             package.tolerance(), vRoots, report);

  // Cache hygiene: every node handle referenced by a live compute-table entry
  // must still be slab-resident (or the terminal). Each stale handle is
  // reported once per diagram kind.
  std::unordered_set<std::uint64_t> staleSeen;
  package.visitLiveCacheNodes(
      [&](const dd::NodeIndex node) {
        if (!package.containsMatrixNode(node) &&
            staleSeen.insert(node).second) {
          report.add(AuditSeverity::Error, "dd.cache.stale",
                     "live compute-table entry references dead matrix " +
                         handleString(node),
                     "compute tables");
        }
      },
      [&](const dd::NodeIndex node) {
        if (!package.containsVectorNode(node) &&
            staleSeen.insert(
                      (std::uint64_t{1} << 32U) | node)
                .second) {
          report.add(AuditSeverity::Error, "dd.cache.stale",
                     "live compute-table entry references dead vector " +
                         handleString(node),
                     "compute tables");
        }
      });

  return report;
}

} // namespace veriqc::audit
