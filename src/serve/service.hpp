/// \file service.hpp
/// \brief The veriqcd job service: admission control, a shared worker pool,
///        and one veriqc-report/v1 object per submitted job.
///
/// JobService is the daemon's core, front-end-agnostic: stdin and Unix-socket
/// ingress both feed submitLine(). The lifecycle of one job:
///
///   submitLine -> parse (strict protocol) -> admission control -> queue
///     -> worker: parse circuits, adopt warm gate cache, run a per-job
///        EquivalenceCheckingManager on the shared TaskPool
///     -> report sink (one schema-valid report line, job object attached)
///
/// Admission control rejects — with a structured reason, never by OOMing —
/// when the queue is full, the process RSS is too close to the daemon's
/// memory cap, the job requests budgets above the daemon-wide caps, or the
/// job carries a fault plan the daemon forbids. Every rejection still emits
/// a schema-valid report (verdict "not_run", job.admitted == false), so the
/// one-line-in / one-report-out invariant holds for every submission.
///
/// Shared state across jobs:
///  - one TaskPool: every manager's parallel rounds run on it
///    (Manager::useTaskPool), so the daemon's thread count is fixed instead
///    of per-job pools churning threads;
///  - one SharedGateCache: immutable per-shape gate-DD snapshots, published
///    copy-on-write and leased via shared_ptr (the epoch scheme) — a job's
///    package teardown can never invalidate a concurrent job's lease;
///  - one CounterRegistry: per-job counters merge into the daemon metrics
///    (metricsJson), alongside serve/-prefixed service counters.
///
/// Fault-plan scoping: the constructor disarms whatever VERIQC_FAULT armed
/// at registry birth — under a daemon the environment plan is stale by
/// definition, and the only legitimate arming path is the job-scoped
/// ScopedPlan inside Manager::run() (gated by limits.allowFaultPlans).
#pragma once

#include "check/result.hpp"
#include "check/task_pool.hpp"
#include "dd/shared_cache.hpp"
#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "serve/job.hpp"
#include "support/mutex.hpp"

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

namespace veriqc {
class QuantumCircuit;
} // namespace veriqc

namespace veriqc::check {
class EquivalenceCheckingManager;
} // namespace veriqc::check

namespace veriqc::serve {

/// Daemon-wide resource policy. Zero means "unlimited" for the budget
/// knobs, mirroring check::Configuration.
struct ServiceLimits {
  /// Jobs checked concurrently (worker threads). Keep at 1 when jobs may
  /// carry fault plans: the fault registry is process-global.
  std::size_t maxActiveJobs = 1;
  /// Admitted jobs waiting for a worker before queue_full rejections start.
  std::size_t maxQueuedJobs = 64;
  /// Slots of the shared TaskPool all jobs' parallel rounds run on.
  std::size_t poolSlots = 0; ///< 0 = hardware concurrency
  /// Daemon memory cap in MB: jobs are rejected (memory_budget) while the
  /// current process RSS exceeds it, and it caps/defaults every job's own
  /// maxMemoryMB budget.
  std::size_t maxMemoryMB = 0;
  /// Daemon-wide cap on a job's maxDDNodes budget (and the default for jobs
  /// that do not set one).
  std::size_t maxDDNodes = 0;
  /// Protocol guard: longest accepted request line, in bytes.
  std::size_t maxLineBytes = 1U << 20U;
  /// Permit job-scoped fault plans (tests); rejected otherwise.
  bool allowFaultPlans = false;
  /// Share gate-DD constructions across same-shape jobs.
  bool useSharedGateCache = true;
};

/// Point-in-time service statistics (under one lock, mutually consistent).
struct ServiceStats {
  std::size_t submitted = 0;
  std::size_t admitted = 0;
  std::size_t rejected = 0;
  std::size_t completed = 0;
  std::size_t queued = 0;   ///< currently waiting
  std::size_t active = 0;   ///< currently running
};

class JobService {
public:
  /// Receives every finished job's report (admitted runs and rejections
  /// alike), already carrying the "job" object. Called from worker threads
  /// (or the submitting thread, for rejections) — the sink must be
  /// thread-safe; the front-end serializes lines under its own lock.
  using ReportSink =
      std::function<void(const std::string& jobId, const obs::Json& report)>;

  JobService(ServiceLimits limits, check::Configuration defaults,
             ReportSink sink);
  /// Implies shutdown(/*cancelInFlight=*/true).
  ~JobService();

  JobService(const JobService&) = delete;
  JobService& operator=(const JobService&) = delete;

  /// Submit one protocol line. Returns true when the job was admitted; on
  /// rejection the structured rejection report has already been emitted.
  bool submitLine(std::string_view line);

  /// Submit a pre-parsed request (same admission control).
  bool submit(JobRequest request);

  /// Block until every admitted job has finished and its report is emitted.
  void drain();

  /// Stop accepting jobs, reject everything still queued (shutting_down),
  /// optionally cancel in-flight jobs (their reports record verdict
  /// Cancelled — the run is accounted, not lost), and join the workers.
  /// Idempotent.
  void shutdown(bool cancelInFlight);

  /// Daemon metrics: serve/ service counters plus the merged per-job kernel
  /// counters, as {"schema": "veriqc-metrics/v1", "counters": {...}}.
  [[nodiscard]] obs::Json metricsJson() const;

  [[nodiscard]] ServiceStats stats() const;

  /// The shared snapshot cache (tests inspect epochs/entries).
  [[nodiscard]] dd::SharedGateCache& sharedGateCache() noexcept {
    return sharedCache_;
  }

private:
  bool admitAndQueue(JobRequest&& request);
  void workerLoop(std::size_t slot);
  void runJob(std::size_t slot, JobRequest request);
  void emitRejection(const JobRequest& request, RejectReason reason,
                     const std::string& detail);
  void emitReport(const JobRequest& request, obs::Json report);
  /// Build (or extend) the shape's warm snapshot from this job's gates and
  /// return the lease the job's packages adopt.
  std::shared_ptr<const dd::Package>
  warmSourceFor(const QuantumCircuit& c1, const QuantumCircuit& c2,
                const check::Configuration& config);

  ServiceLimits limits_;
  check::Configuration defaults_;
  ReportSink sink_;

  check::TaskPool pool_;
  dd::SharedGateCache sharedCache_;

  // Lock order (outermost first): shutdownMutex_ -> mutex_ -> metricsMutex_.
  // Never acquire a mutex earlier in this list while holding a later one.
  mutable support::Mutex mutex_;
  support::CondVar workAvailable_;
  support::CondVar idle_;
  std::deque<JobRequest> queue_ VERIQC_GUARDED_BY(mutex_);
  /// Managers of in-flight jobs, for shutdown-time cancellation. Keyed by
  /// worker thread index.
  std::vector<check::EquivalenceCheckingManager*> running_
      VERIQC_GUARDED_BY(mutex_);
  std::size_t activeCount_ VERIQC_GUARDED_BY(mutex_) = 0;
  bool stopping_ VERIQC_GUARDED_BY(mutex_) = false;
  bool cancelRequested_ VERIQC_GUARDED_BY(mutex_) = false;
  ServiceStats stats_ VERIQC_GUARDED_BY(mutex_);

  mutable support::Mutex metricsMutex_;
  obs::CounterRegistry metrics_ VERIQC_GUARDED_BY(metricsMutex_);

  /// Serializes shutdown() end to end and guards the worker handles it
  /// joins: two concurrent shutdown() calls must not race join()/clear()
  /// (joining a std::thread twice is undefined behaviour). The constructor
  /// populates workers_ before any other thread can observe the service, so
  /// it needs no lock (constructors are exempt from the analysis anyway).
  support::Mutex shutdownMutex_;
  std::vector<std::thread> workers_ VERIQC_GUARDED_BY(shutdownMutex_);
};

} // namespace veriqc::serve
