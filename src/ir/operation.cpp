#include "ir/operation.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

namespace veriqc {

Operation::Operation(const OpType t, std::vector<Qubit> ctrls,
                     std::vector<Qubit> tgts, std::vector<double> ps)
    : type(t), controls(std::move(ctrls)), targets(std::move(tgts)),
      params(std::move(ps)) {}

void Operation::validate(const std::size_t nqubits) const {
  if (type == OpType::None) {
    throw CircuitError("Operation: type is None");
  }
  if (type == OpType::Barrier || type == OpType::Measure) {
    return; // meta operations may list any qubits
  }
  std::set<Qubit> seen;
  for (const auto q : usedQubits()) {
    if (q >= nqubits) {
      throw CircuitError("Operation " + toString() + ": qubit " +
                         std::to_string(q) + " out of range (n=" +
                         std::to_string(nqubits) + ")");
    }
    if (!seen.insert(q).second) {
      throw CircuitError("Operation " + toString() + ": duplicate qubit " +
                         std::to_string(q));
    }
  }
  if (isSingleTargetType(type) && targets.size() != 1) {
    throw CircuitError("Operation " + toString() +
                       ": single-target type needs exactly one target");
  }
  if (type == OpType::SWAP && targets.size() != 2) {
    throw CircuitError("Operation " + toString() +
                       ": SWAP needs exactly two targets");
  }
  if (params.size() != numParameters(type)) {
    throw CircuitError("Operation " + toString() +
                       ": wrong number of parameters");
  }
}

Operation Operation::inverse() const {
  Operation inv = *this;
  switch (type) {
  case OpType::I:
  case OpType::H:
  case OpType::X:
  case OpType::Y:
  case OpType::Z:
  case OpType::SWAP:
  case OpType::Barrier:
    break; // self-inverse
  case OpType::S:
    inv.type = OpType::Sdg;
    break;
  case OpType::Sdg:
    inv.type = OpType::S;
    break;
  case OpType::T:
    inv.type = OpType::Tdg;
    break;
  case OpType::Tdg:
    inv.type = OpType::T;
    break;
  case OpType::SX:
    inv.type = OpType::SXdg;
    break;
  case OpType::SXdg:
    inv.type = OpType::SX;
    break;
  case OpType::RX:
  case OpType::RY:
  case OpType::RZ:
  case OpType::P:
    inv.params[0] = -params[0];
    break;
  case OpType::U2:
    // u2(phi, lambda)^dagger = u3(-pi/2, -lambda, -phi)
    inv.type = OpType::U3;
    inv.params = {-PI_2, -params[1], -params[0]};
    break;
  case OpType::U3:
    inv.params = {-params[0], -params[2], -params[1]};
    break;
  default:
    throw CircuitError("Operation::inverse: cannot invert " + toString());
  }
  return inv;
}

std::vector<Qubit> Operation::usedQubits() const {
  std::vector<Qubit> qubits = controls;
  qubits.insert(qubits.end(), targets.begin(), targets.end());
  return qubits;
}

bool Operation::actsOn(const Qubit q) const noexcept {
  return std::find(controls.begin(), controls.end(), q) != controls.end() ||
         std::find(targets.begin(), targets.end(), q) != targets.end();
}

bool Operation::isInverseOf(const Operation& other, const double tol) const {
  const Operation inv = other.inverse();
  if (inv.type != type || inv.targets != targets) {
    return false;
  }
  // Controls are an unordered set.
  auto c1 = controls;
  auto c2 = inv.controls;
  std::sort(c1.begin(), c1.end());
  std::sort(c2.begin(), c2.end());
  if (c1 != c2) {
    return false;
  }
  if (inv.params.size() != params.size()) {
    return false;
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (std::abs(inv.params[i] - params[i]) > tol) {
      return false;
    }
  }
  return true;
}

std::string Operation::toString() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < controls.size(); ++i) {
    os << 'c';
  }
  os << veriqc::toString(type);
  if (!params.empty()) {
    os << '(';
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (i > 0) {
        os << ", ";
      }
      os << params[i];
    }
    os << ')';
  }
  os << ' ';
  bool first = true;
  for (const auto q : controls) {
    os << (first ? "" : ", ") << 'q' << q;
    first = false;
  }
  for (const auto q : targets) {
    os << (first ? "" : ", ") << 'q' << q;
    first = false;
  }
  return os.str();
}

} // namespace veriqc
