#include "zx/tensor.hpp"

#include <cmath>
#include <complex>
#include <map>

namespace veriqc::zx {

namespace {
using cd = std::complex<double>;

struct FlatEdge {
  std::size_t u;
  std::size_t v;
  bool hadamard;
};
} // namespace

sim::Matrix toMatrix(const ZXDiagram& diagram, const std::size_t maxSpiders) {
  if (diagram.inputs().size() != diagram.outputs().size()) {
    throw CircuitError("zx::toMatrix: rectangular diagrams not supported");
  }
  // Index live vertices: boundaries get their fixed bits, spiders get
  // summation slots.
  std::map<Vertex, std::size_t> spiderSlot; // spider -> bit position
  std::vector<Vertex> spiders;
  for (const auto v : diagram.vertices()) {
    if (!diagram.isBoundary(v)) {
      spiderSlot[v] = spiders.size();
      spiders.push_back(v);
    }
  }
  if (spiders.size() > maxSpiders) {
    throw CircuitError("zx::toMatrix: too many spiders for dense evaluation");
  }
  std::map<Vertex, std::size_t> inputBit;
  std::map<Vertex, std::size_t> outputBit;
  for (std::size_t i = 0; i < diagram.inputs().size(); ++i) {
    inputBit[diagram.inputs()[i]] = i;
  }
  for (std::size_t i = 0; i < diagram.outputs().size(); ++i) {
    outputBit[diagram.outputs()[i]] = i;
  }

  // Flatten edges once; the effective Hadamard parity folds in the X-to-Z
  // conversion (each edge endpoint at an X spider conjugates by H).
  std::vector<FlatEdge> edges;
  const double invSqrt2 = 1.0 / std::sqrt(2.0);
  for (const auto v : diagram.vertices()) {
    for (const auto& [w, mult] : diagram.neighbors(v)) {
      if (w < v) {
        continue;
      }
      const bool vIsX =
          !diagram.isBoundary(v) && diagram.type(v) == VertexType::X;
      const bool wIsX =
          !diagram.isBoundary(w) && diagram.type(w) == VertexType::X;
      if (w == v) {
        // Self-loop: plain loops contribute delta(s,s) = 1; Hadamard loops
        // contribute H[s][s] = (-1)^s / sqrt(2). X conversion toggles both
        // endpoints, leaving the loop type unchanged.
        for (int i = 0; i < mult.hadamard; ++i) {
          edges.push_back({spiderSlot.at(v), spiderSlot.at(v), true});
        }
        continue;
      }
      const int baseH = mult.hadamard;
      const int baseS = mult.simple;
      for (int i = 0; i < baseS + baseH; ++i) {
        bool h = i < baseH;
        if (vIsX) {
          h = !h;
        }
        if (wIsX) {
          h = !h;
        }
        // Encode endpoints: boundary bits resolved per (row, col) below.
        edges.push_back({static_cast<std::size_t>(v),
                         static_cast<std::size_t>(w), h});
      }
    }
  }
  const std::size_t dim = std::size_t{1} << diagram.inputs().size();
  sim::Matrix result(dim);
  const auto bitOf = [&](const Vertex vertex, const std::size_t assignment,
                         const std::size_t row, const std::size_t col) {
    if (diagram.isBoundary(vertex)) {
      if (const auto it = inputBit.find(vertex); it != inputBit.end()) {
        return (col >> it->second) & 1U;
      }
      return (row >> outputBit.at(vertex)) & 1U;
    }
    return (assignment >> spiderSlot.at(vertex)) & 1U;
  };

  const std::size_t assignments = std::size_t{1} << spiders.size();
  for (std::size_t row = 0; row < dim; ++row) {
    for (std::size_t col = 0; col < dim; ++col) {
      cd sum{0.0, 0.0};
      for (std::size_t a = 0; a < assignments; ++a) {
        cd term{1.0, 0.0};
        // Spider phase factors.
        for (std::size_t s = 0; s < spiders.size(); ++s) {
          if (((a >> s) & 1U) != 0) {
            const auto phase = diagram.phase(spiders[s]).toRadians();
            term *= std::exp(cd{0.0, phase});
          }
        }
        // Edge factors. Self-loop entries reference spider slots directly.
        for (const auto& edge : edges) {
          std::size_t bu = 0;
          std::size_t bv = 0;
          if (edge.u == edge.v) {
            bu = bv = (a >> edge.u) & 1U;
          } else {
            bu = bitOf(static_cast<Vertex>(edge.u), a, row, col);
            bv = bitOf(static_cast<Vertex>(edge.v), a, row, col);
          }
          if (edge.hadamard) {
            term *= invSqrt2 * ((bu & bv) != 0 ? -1.0 : 1.0);
          } else if (bu != bv) {
            term = cd{0.0, 0.0};
            break;
          }
          if (term == cd{0.0, 0.0}) {
            break;
          }
        }
        sum += term;
      }
      result.at(row, col) = sum;
    }
  }
  return result;
}

bool proportional(const sim::Matrix& a, const sim::Matrix& b,
                  const double tol) {
  if (a.dim() != b.dim()) {
    return false;
  }
  // Find the entry of b with the largest magnitude as the reference.
  std::size_t refRow = 0;
  std::size_t refCol = 0;
  double best = 0.0;
  for (std::size_t r = 0; r < b.dim(); ++r) {
    for (std::size_t c = 0; c < b.dim(); ++c) {
      if (std::abs(b.at(r, c)) > best) {
        best = std::abs(b.at(r, c));
        refRow = r;
        refCol = c;
      }
    }
  }
  if (best < tol) {
    // b ~ 0: proportional iff a ~ 0.
    return a.distance(sim::Matrix(a.dim())) < tol;
  }
  if (std::abs(a.at(refRow, refCol)) < tol * best) {
    return false;
  }
  const cd lambda = a.at(refRow, refCol) / b.at(refRow, refCol);
  double err = 0.0;
  for (std::size_t r = 0; r < a.dim(); ++r) {
    for (std::size_t c = 0; c < a.dim(); ++c) {
      err += std::norm(a.at(r, c) - lambda * b.at(r, c));
    }
  }
  return std::sqrt(err) < tol * std::abs(lambda) * static_cast<double>(a.dim());
}

} // namespace veriqc::zx
