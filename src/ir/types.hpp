/// \file types.hpp
/// \brief Fundamental types shared across the veriqc library.
#pragma once

#include <cstdint>
#include <numbers>
#include <stdexcept>
#include <string>

namespace veriqc {

/// Index of a qubit (a circuit wire). Wires are numbered 0..n-1 where wire 0
/// is the least-significant bit of basis-state indices |x_{n-1} ... x_0>.
using Qubit = std::uint32_t;

/// Number of π in common angles.
inline constexpr double PI = std::numbers::pi_v<double>;
inline constexpr double PI_2 = PI / 2.0;
inline constexpr double PI_4 = PI / 4.0;

/// Error raised for malformed circuits, operations or permutations.
class CircuitError : public std::runtime_error {
public:
  explicit CircuitError(const std::string& msg) : std::runtime_error(msg) {}
};

} // namespace veriqc
