#!/usr/bin/env bash
# End-to-end smoke for the veriqcd job service: pipe a mixed NDJSON batch
# (clean checks, a guaranteed non-equivalent pair, malformed JSON, an
# unknown config key, a budget violation, an oversized line) through the
# daemon over stdin, then a second batch over a Unix socket, and assert the
# daemon's contract:
#
#   - exactly one veriqc-report/v1 line per submitted job, each of which
#     passes check_qasm --validate-report (the same validateRunReport gate
#     CI applies to bench reports);
#   - every rejection carries a structured job.reason from the wire enum,
#     never a crash or a dropped line;
#   - the --metrics-fd dump is valid JSON whose serve/ counters add up
#     (submitted = admitted + rejected), and SIGUSR1 produces a mid-run
#     metrics dump without disturbing the job stream.
#
# Usage: scripts/serve_smoke.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

# Reuse an already-configured tree as-is (ctest invokes this script inside
# whatever build flavor registered it — never override that flavor's flags);
# only a fresh tree is configured as Release.
if [[ ! -f "$BUILD_DIR/CMakeCache.txt" ]]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
fi
cmake --build "$BUILD_DIR" -j"$(nproc)" --target veriqcd check_qasm >/dev/null

VERIQCD="$BUILD_DIR/examples/veriqcd"
CHECK_QASM="$BUILD_DIR/examples/check_qasm"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

cat >"$WORK/bell_a.qasm" <<'EOF'
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h q[0];
cx q[0],q[1];
EOF
cp "$WORK/bell_a.qasm" "$WORK/bell_b.qasm"
cat >"$WORK/bell_c.qasm" <<'EOF'
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h q[0];
EOF

# --- batch over stdin --------------------------------------------------------

BATCH="$WORK/batch.ndjson"
: >"$BATCH"
for i in $(seq 0 29); do
  case $((i % 6)) in
  0 | 1)
    echo "{\"id\":\"job-$i\",\"file1\":\"$WORK/bell_a.qasm\",\"file2\":\"$WORK/bell_b.qasm\"}" >>"$BATCH"
    ;;
  2)
    echo "{\"id\":\"job-$i\",\"file1\":\"$WORK/bell_a.qasm\",\"file2\":\"$WORK/bell_c.qasm\"}" >>"$BATCH"
    ;;
  3)
    echo "{\"id\":\"job-$i\", not even json" >>"$BATCH"
    ;;
  4)
    echo "{\"id\":\"job-$i\",\"file1\":\"$WORK/bell_a.qasm\",\"file2\":\"$WORK/bell_b.qasm\",\"config\":{\"maxDDNoodles\":7}}" >>"$BATCH"
    ;;
  *)
    echo "{\"id\":\"job-$i\",\"file1\":\"$WORK/bell_a.qasm\",\"file2\":\"$WORK/bell_b.qasm\",\"config\":{\"maxDDNodes\":99999999}}" >>"$BATCH"
    ;;
  esac
done
# One oversized line (the daemon's line limit is set to 4096 below).
printf '{"id":"job-huge","file1":"%s","file2":"%s","pad":"%s"}\n' \
  "$WORK/bell_a.qasm" "$WORK/bell_b.qasm" "$(head -c 5000 /dev/zero | tr '\0' x)" >>"$BATCH"
SUBMITTED=31

echo "== stdin batch ($SUBMITTED jobs) =="
"$VERIQCD" --max-dd-nodes 100000 --max-line-bytes 4096 --timeout-ms 30000 \
  --metrics-fd 3 <"$BATCH" >"$WORK/reports.ndjson" 3>"$WORK/metrics.json"

python3 - "$WORK/reports.ndjson" "$WORK/metrics.json" "$SUBMITTED" <<'EOF'
import json
import sys

reports_path, metrics_path, submitted = sys.argv[1], sys.argv[2], int(sys.argv[3])
reasons = {"", "malformed_request", "oversized_request", "queue_full",
           "memory_budget", "budget_exceeds_limit", "fault_plan_forbidden",
           "shutting_down"}
lines = [l for l in open(reports_path, encoding="utf-8").read().splitlines() if l]
assert len(lines) == submitted, f"expected {submitted} report lines, got {len(lines)}"
admitted = rejected = 0
for line in lines:
    report = json.loads(line)
    assert report["schema"] == "veriqc-report/v1", report["schema"]
    job = report["job"]
    assert job["reason"] in reasons, job["reason"]
    if job["admitted"]:
        admitted += 1
        assert job["reason"] == ""
    else:
        rejected += 1
        assert job["reason"] != "", "rejection without a structured reason"
        assert report["verdict"]["verdict"] == "not_run"
assert admitted == 15 and rejected == 16, (admitted, rejected)

metrics = json.loads(open(metrics_path, encoding="utf-8").read().splitlines()[-1])
assert metrics["schema"] == "veriqc-metrics/v1", metrics["schema"]
counters = metrics["counters"]
assert counters["serve/jobs_submitted"] == submitted
assert counters["serve/jobs_admitted"] == admitted
assert counters["serve/jobs_rejected"] == rejected
assert counters["serve/jobs_completed"] == admitted
print(f"stdin batch OK: {admitted} ran, {rejected} rejected, metrics consistent")
EOF

# Every report line passes the same schema gate CI applies to bench reports.
i=0
while IFS= read -r line; do
  echo "$line" >"$WORK/one_report.json"
  "$CHECK_QASM" --validate-report "$WORK/one_report.json" >/dev/null ||
    { echo "error: report line $i failed validateRunReport" >&2; exit 1; }
  i=$((i + 1))
done <"$WORK/reports.ndjson"
echo "all $i report lines pass validateRunReport"

# --- batch over the Unix socket, with a SIGUSR1 metrics dump -----------------

echo "== socket batch =="
SOCK="$WORK/veriqcd.sock"
"$VERIQCD" --socket "$SOCK" --timeout-ms 30000 --metrics-fd 3 \
  >"$WORK/sock_reports.ndjson" 3>"$WORK/sock_metrics.json" &
DAEMON=$!
for _ in $(seq 1 100); do
  [[ -S "$SOCK" ]] && break
  sleep 0.1
done
[[ -S "$SOCK" ]] || { echo "error: daemon never bound $SOCK" >&2; exit 1; }

python3 - "$SOCK" "$WORK" <<'EOF'
import json
import socket
import sys

sock_path, work = sys.argv[1], sys.argv[2]
client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
client.connect(sock_path)
jobs = [
    {"id": "sock-0", "file1": f"{work}/bell_a.qasm", "file2": f"{work}/bell_b.qasm"},
    {"id": "sock-1", "file1": f"{work}/bell_a.qasm", "file2": f"{work}/bell_c.qasm"},
]
stream = client.makefile("rw", encoding="utf-8", newline="\n")
replies = []
for job in jobs:
    stream.write(json.dumps(job) + "\n")
    stream.flush()
    replies.append(stream.readline().strip())
stream.write("definitely not json\n")
stream.flush()
replies.append(stream.readline().strip())
client.close()
assert replies == ["admitted", "admitted", "rejected"], replies
print("socket client replies OK:", replies)
EOF

# Wait for all three reports before signaling: SIGTERM cancels in-flight
# jobs, and under VERIQC_AUDIT=2 the checks are slow enough to still be
# running when the client disconnects.
for _ in $(seq 1 300); do
  [[ $(grep -c . "$WORK/sock_reports.ndjson" 2>/dev/null || echo 0) -ge 3 ]] && break
  sleep 0.1
done

# A mid-run SIGUSR1 must dump metrics without disturbing the daemon.
kill -USR1 "$DAEMON"
for _ in $(seq 1 100); do
  [[ -s "$WORK/sock_metrics.json" ]] && break
  sleep 0.1
done
[[ -s "$WORK/sock_metrics.json" ]] ||
  { echo "error: SIGUSR1 produced no metrics dump" >&2; exit 1; }

kill -TERM "$DAEMON"
wait "$DAEMON" || true

python3 - "$WORK/sock_reports.ndjson" "$WORK/sock_metrics.json" <<'EOF'
import json
import sys

lines = [l for l in open(sys.argv[1], encoding="utf-8").read().splitlines() if l]
assert len(lines) == 3, f"expected 3 socket reports, got {len(lines)}"
by_id = {json.loads(l)["job"]["id"]: json.loads(l) for l in lines}
assert by_id["sock-0"]["verdict"]["verdict"] == "equivalent"
assert by_id["sock-1"]["verdict"]["verdict"] == "not_equivalent"
assert by_id[""]["job"]["reason"] == "malformed_request"
dumps = [json.loads(l) for l in
         open(sys.argv[2], encoding="utf-8").read().splitlines() if l]
assert len(dumps) >= 2, "expected the SIGUSR1 dump plus the exit dump"
assert all(d["schema"] == "veriqc-metrics/v1" for d in dumps)
print("socket batch OK: verdicts, structured rejection, and both metrics dumps")
EOF

# One-line coverage summary: jobs pushed through each transport and how many
# report lines survived the validateRunReport schema gate.
echo "serve-smoke: OK (stdin: $SUBMITTED jobs, socket: 3 jobs; $i reports schema-validated, 2 metrics dumps checked)"
