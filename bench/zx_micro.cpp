/// \file zx_micro.cpp
/// \brief Google-benchmark microbenchmarks of the ZX-calculus engine.
#include "circuits/benchmarks.hpp"
#include "compile/decompose.hpp"
#include "zx/circuit_to_zx.hpp"
#include "zx/simplify.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace veriqc;

void BM_CircuitToZX(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto circuit = circuits::randomClifford(n, 20, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zx::circuitToZX(circuit));
  }
}
BENCHMARK(BM_CircuitToZX)->Arg(4)->Arg(8)->Arg(16);

void BM_FullReduceClifford(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto circuit = circuits::randomClifford(n, 20, 2);
  for (auto _ : state) {
    auto diagram = zx::circuitToZX(circuit);
    benchmark::DoNotOptimize(zx::fullReduce(diagram));
  }
}
BENCHMARK(BM_FullReduceClifford)->Arg(4)->Arg(8)->Arg(16);

void BM_FullReduceCliffordT(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto circuit = circuits::randomCliffordT(n, 20, 0.2, 3);
  for (auto _ : state) {
    auto diagram = zx::circuitToZX(circuit);
    benchmark::DoNotOptimize(zx::fullReduce(diagram));
  }
}
BENCHMARK(BM_FullReduceCliffordT)->Arg(4)->Arg(8)->Arg(16);

void BM_EquivalenceReduction(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto circuit = circuits::randomCliffordT(n, 10, 0.2, 4);
  const auto base = zx::circuitToZX(circuit);
  const auto adjointDiagram = base.adjoint();
  for (auto _ : state) {
    auto composed = base.compose(adjointDiagram);
    benchmark::DoNotOptimize(zx::fullReduce(composed));
  }
}
BENCHMARK(BM_EquivalenceReduction)->Arg(4)->Arg(8)->Arg(12);

void BM_QftReduction(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto base = zx::circuitToZX(circuits::qft(n));
  const auto adjointDiagram = base.adjoint();
  for (auto _ : state) {
    auto composed = base.compose(adjointDiagram);
    benchmark::DoNotOptimize(zx::fullReduce(composed));
  }
}
BENCHMARK(BM_QftReduction)->Arg(4)->Arg(8)->Arg(12);

void BM_GroverReduction(benchmark::State& state) {
  // The heaviest fullReduce workload of the repo's circuit families: Grover
  // composed with its own adjoint. Dominated by the pivot/gadget passes, so
  // it is the headline number for the worklist scheduler.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto base = zx::circuitToZX(
      compile::decomposeForZX(circuits::grover(n, 2 * n - 2)));
  const auto adjointDiagram = base.adjoint();
  std::size_t rewrites = 0;
  std::size_t sweeps = 0;
  for (auto _ : state) {
    auto composed = base.compose(adjointDiagram);
    zx::Simplifier simplifier(composed);
    benchmark::DoNotOptimize(simplifier.fullReduce());
    rewrites = simplifier.stats().total();
    sweeps = simplifier.stats()
                 .rules[static_cast<std::size_t>(zx::SimplifyRule::Spider)]
                 .candidates;
  }
  state.counters["rewrites"] = static_cast<double>(rewrites);
  state.counters["spider_candidates"] = static_cast<double>(sweeps);
}
BENCHMARK(BM_GroverReduction)->Arg(5)->Arg(6);

void BM_CliffordReductionLarge(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto circuit = circuits::randomClifford(n, 200, 2);
  std::size_t rewrites = 0;
  for (auto _ : state) {
    auto diagram = zx::circuitToZX(circuit);
    zx::Simplifier simplifier(diagram);
    benchmark::DoNotOptimize(simplifier.fullReduce());
    rewrites = simplifier.stats().total();
  }
  state.counters["rewrites"] = static_cast<double>(rewrites);
}
BENCHMARK(BM_CliffordReductionLarge)->Arg(16);

} // namespace

BENCHMARK_MAIN();
