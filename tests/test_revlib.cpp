#include "qasm/revlib.hpp"
#include "sim/dense.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

namespace veriqc {
namespace {

TEST(RevLibTest, MinimalToffoliFile) {
  const auto c = qasm::parseReal(R"(
.version 2.0
.numvars 3
.variables a b c
.begin
t3 a b c
t2 a b
t1 a
.end
)");
  EXPECT_EQ(c.numQubits(), 3U);
  ASSERT_EQ(c.size(), 3U);
  EXPECT_EQ(c.ops()[0].controls.size(), 2U);
  EXPECT_EQ(c.ops()[1].controls.size(), 1U);
  EXPECT_EQ(c.ops()[2].controls.size(), 0U);
}

TEST(RevLibTest, CommentsAndHeaderDirectivesIgnored) {
  const auto c = qasm::parseReal(R"(
# a RevLib file
.version 2.0
.numvars 2
.variables a b
.inputs a b
.outputs a b
.constants --
.garbage --
.begin
t2 a b  # cnot
.end
)");
  EXPECT_EQ(c.size(), 1U);
}

TEST(RevLibTest, NegativeControlsBecomeXConjugation) {
  const auto c = qasm::parseReal(R"(
.numvars 2
.variables a b
t2 -a b
)");
  // x a; cx a,b; x a
  ASSERT_EQ(c.size(), 3U);
  EXPECT_EQ(c.ops()[0].type, OpType::X);
  EXPECT_EQ(c.ops()[2].type, OpType::X);
  // Semantics: b flips when a == 0.
  auto state = sim::zeroState(2);
  sim::applyLogical(c, state);
  EXPECT_NEAR(std::abs(state[2]), 1.0, 1e-12); // |10>: b=1, a=0
}

TEST(RevLibTest, FredkinAndPeres) {
  const auto c = qasm::parseReal(R"(
.numvars 3
.variables a b c
f3 a b c
p3 a b c
)");
  ASSERT_EQ(c.size(), 3U);
  EXPECT_EQ(c.ops()[0].type, OpType::SWAP);
  EXPECT_EQ(c.ops()[0].controls.size(), 1U);
  // Peres = ccx; cx.
  EXPECT_EQ(c.ops()[1].controls.size(), 2U);
  EXPECT_EQ(c.ops()[2].controls.size(), 1U);
}

TEST(RevLibTest, PeresSemantics) {
  // Peres(a,b,c): c ^= a&b, then b ^= a.
  const auto c = qasm::parseReal(R"(
.numvars 3
.variables a b c
p3 a b c
)");
  auto state = sim::zeroState(3);
  state[0] = 0.0;
  state[3] = 1.0; // a=1, b=1, c=0
  sim::applyLogical(c, state);
  // c ^= 1; b ^= 1 -> a=1, b=0, c=1 -> index 5
  EXPECT_NEAR(std::abs(state[5]), 1.0, 1e-12);
}

TEST(RevLibTest, ControlledV) {
  const auto c = qasm::parseReal(R"(
.numvars 2
.variables a b
v2 a b
v+2 a b
)");
  ASSERT_EQ(c.size(), 2U);
  EXPECT_EQ(c.ops()[0].type, OpType::SX);
  EXPECT_EQ(c.ops()[1].type, OpType::SXdg);
  // V followed by V-dagger is the identity.
  const auto u = sim::circuitUnitary(c);
  EXPECT_TRUE(u.equalsUpToGlobalPhase(sim::Matrix::identity(4)));
}

TEST(RevLibTest, ImplicitVariableNames) {
  const auto c = qasm::parseReal(R"(
.numvars 3
t2 x0 x2
)");
  ASSERT_EQ(c.size(), 1U);
  EXPECT_EQ(c.ops()[0].targets[0], 2U);
}

TEST(RevLibTest, Errors) {
  EXPECT_THROW((void)qasm::parseReal(".numvars 2\nq2 a b\n"),
               qasm::ParseError);
  EXPECT_THROW((void)qasm::parseReal(".numvars 2\n.variables a b\nt2 a z\n"),
               qasm::ParseError);
  EXPECT_THROW((void)qasm::parseReal("t1 a\n"), qasm::ParseError);
  EXPECT_THROW((void)qasm::parseReal(".numvars 2\n.variables a b\nt2 a -b\n"),
               qasm::ParseError);
}

TEST(RevLibFuzzTest, MalformedHeadersAreParseErrors) {
  // Out-of-range numvars (stoul would throw) and absurd-but-parseable sizes.
  EXPECT_THROW((void)qasm::parseReal(".numvars 99999999999999999999\nt1 x0\n"),
               qasm::ParseError);
  EXPECT_THROW((void)qasm::parseReal(".numvars 99999999\nt1 x0\n"),
               qasm::ParseError);
  EXPECT_THROW((void)qasm::parseReal(".numvars abc\nt1 x0\n"),
               qasm::ParseError);
  // More declared variables than numvars.
  EXPECT_THROW((void)qasm::parseReal(".numvars 2\n.variables a b c\nt2 a b\n"),
               qasm::ParseError);
}

TEST(RevLibTest, RejectsAliasedOperandsAtParseTime) {
  // Aliased operand lists fail during parsing with a message naming the
  // repeated variable, before any operation is emitted.
  try {
    (void)qasm::parseReal(".numvars 2\n.variables a b\nt2 a a\n");
    FAIL() << "expected ParseError";
  } catch (const qasm::ParseError& e) {
    EXPECT_EQ(e.line(), 3U);
    EXPECT_NE(std::string(e.what()).find("aliased"), std::string::npos);
  }
  // Non-adjacent duplicates (control repeated as target) are also caught.
  EXPECT_THROW(
      (void)qasm::parseReal(".numvars 3\n.variables a b c\nt3 a b a\n"),
      qasm::ParseError);
  // A negated control aliasing the target is rejected, not X-conjugated.
  EXPECT_THROW(
      (void)qasm::parseReal(".numvars 2\n.variables a b\nt2 -a a\n"),
      qasm::ParseError);
}

TEST(RevLibFuzzTest, InvalidGateLinesAreParseErrors) {
  // Duplicate operands make the emitted operation invalid; the reader must
  // reject them at parse time with the line number instead of leaking a
  // CircuitError.
  try {
    (void)qasm::parseReal(".numvars 2\n.variables a b\nt2 a a\n");
    FAIL() << "expected ParseError";
  } catch (const qasm::ParseError& e) {
    EXPECT_EQ(e.line(), 3U);
  }
  // Operand lists too short for the gate kind.
  EXPECT_THROW((void)qasm::parseReal(".numvars 3\n.variables a b c\nf3 a\n"),
               qasm::ParseError);
  EXPECT_THROW((void)qasm::parseReal(".numvars 3\n.variables a b c\np3 a b\n"),
               qasm::ParseError);
}

TEST(RevLibFuzzTest, EveryPrefixParsesOrThrowsParseError) {
  const std::string program = ".version 2.0\n"
                              ".numvars 3\n"
                              ".variables a b c\n"
                              ".begin\n"
                              "t3 a b c\n"
                              "f3 a b c\n"
                              "v2 a b\n"
                              ".end\n";
  for (std::size_t len = 0; len <= program.size(); ++len) {
    try {
      (void)qasm::parseReal(program.substr(0, len));
    } catch (const qasm::ParseError&) {
      // expected for most truncation points
    }
  }
}

TEST(RevLibTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/veriqc_test.real";
  {
    std::ofstream out(path);
    out << ".numvars 2\n.variables a b\nt2 a b\n";
  }
  const auto c = qasm::parseRealFile(path);
  EXPECT_EQ(c.size(), 1U);
  EXPECT_THROW((void)qasm::parseRealFile("/nonexistent.real"),
               std::runtime_error);
}

} // namespace
} // namespace veriqc
