/// \file manager.hpp
/// \brief The combined equivalence-checking flow of the case study.
///
/// Mirrors the configuration evaluated in the paper (Sec. 6.1): the DD
/// alternating checker runs in parallel with a sequence of random-stimuli
/// simulation runs; if the simulations prove non-equivalence the alternating
/// check is terminated early. The ZX engine can be enabled as a third
/// concurrent engine or invoked standalone via zxCheck().
#pragma once

#include "check/dd_checkers.hpp"
#include "check/result.hpp"
#include "check/zx_checker.hpp"
#include "ir/circuit.hpp"
#include "obs/phase_timer.hpp"

#include <atomic>
#include <vector>

namespace veriqc::check {

class TaskPool;

class EquivalenceCheckingManager {
public:
  EquivalenceCheckingManager(QuantumCircuit c1, QuantumCircuit c2,
                             Configuration config = {});

  /// Run the configured engines and return the combined verdict.
  [[nodiscard]] Result run();

  /// Run parallel engine rounds on an external task pool instead of a
  /// private per-round one. The pool must outlive run(); several managers
  /// may share one pool (veriqcd runs every job's rounds on the daemon
  /// pool), since TaskGroups are isolated and waiting threads help with
  /// whatever task is available. Pass nullptr to restore the private pool.
  void useTaskPool(TaskPool* pool) noexcept { externalPool_ = pool; }

  /// Cooperatively cancel an in-flight run() from another thread: every
  /// engine's next stop-token poll observes the request and winds down with
  /// verdict Cancelled (not Timeout — the request precedes the deadline).
  /// Sticky: a run() started after the request stops at its first poll.
  void requestCancel() noexcept {
    externalCancel_.store(true, std::memory_order_release);
  }

  /// Per-engine results of the last run (in engine launch order).
  [[nodiscard]] const std::vector<Result>& engineResults() const noexcept {
    return engineResults_;
  }

  /// Record run phases (prepare, per-engine, combine) into an external
  /// timer instead of the internal one — lets a frontend that also times
  /// its own phases (e.g. check_qasm's parse) collect every span in one
  /// place. The timer must outlive run(); it is never restarted here.
  void usePhaseTimer(obs::PhaseTimer* timer) noexcept {
    externalPhases_ = timer;
  }

  /// Phase spans of the last run (the external timer's view when one was
  /// injected via usePhaseTimer).
  [[nodiscard]] const obs::PhaseTimer& phases() const noexcept {
    return externalPhases_ != nullptr ? *externalPhases_ : phases_;
  }

private:
  [[nodiscard]] obs::PhaseTimer& activePhases() noexcept {
    return externalPhases_ != nullptr ? *externalPhases_ : phases_;
  }

  QuantumCircuit c1_;
  QuantumCircuit c2_;
  Configuration config_;
  std::vector<Result> engineResults_;
  obs::PhaseTimer phases_;
  obs::PhaseTimer* externalPhases_ = nullptr;
  TaskPool* externalPool_ = nullptr;
  std::atomic<bool> externalCancel_{false};
};

/// Convenience wrapper: construct a manager and run it.
[[nodiscard]] Result checkEquivalence(const QuantumCircuit& c1,
                                      const QuantumCircuit& c2,
                                      const Configuration& config = {});

} // namespace veriqc::check
