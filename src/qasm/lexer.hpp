/// \file lexer.hpp
/// \brief Tokenizer for OpenQASM 2.0.
#pragma once

#include "ir/types.hpp"

#include <cstddef>
#include <string>
#include <vector>

namespace veriqc::qasm {

/// Error with source position raised by the lexer/parser.
class ParseError : public VeriqcError {
public:
  ParseError(const std::string& msg, std::size_t line, std::size_t column)
      : VeriqcError("QASM parse error at " + std::to_string(line) + ":" +
                    std::to_string(column) + ": " + msg),
        line_(line), column_(column) {}

  [[nodiscard]] std::size_t line() const noexcept { return line_; }
  [[nodiscard]] std::size_t column() const noexcept { return column_; }

private:
  std::size_t line_;
  std::size_t column_;
};

enum class TokenKind {
  Identifier,
  Real,       ///< floating literal
  Integer,    ///< integer literal
  String,     ///< quoted string (include filenames)
  LBrace,     ///< {
  RBrace,     ///< }
  LParen,     ///< (
  RParen,     ///< )
  LBracket,   ///< [
  RBracket,   ///< ]
  Semicolon,  ///< ;
  Comma,      ///< ,
  Arrow,      ///< ->
  Equals,     ///< ==
  Plus,
  Minus,
  Star,
  Slash,
  Caret,
  EndOfFile,
};

struct Token {
  TokenKind kind = TokenKind::EndOfFile;
  std::string text;
  double realValue = 0.0;
  long long intValue = 0;
  std::size_t line = 0;
  std::size_t column = 0;
};

/// Tokenize a complete OpenQASM 2.0 source. Comments (`// ...`) are skipped.
/// \throws ParseError on unexpected characters.
[[nodiscard]] std::vector<Token> tokenize(const std::string& source);

} // namespace veriqc::qasm
