/// \file package.hpp
/// \brief The decision-diagram package: canonical QMDD construction and
///        manipulation for quantum functionality (Sec. 4 of the paper).
///
/// Nodes live in per-level slab stores (`NodeSlab`) and are referenced by
/// 32-bit `NodeIndex` handles; see node.hpp for the handle invariants. Edges
/// returned by package operations stay valid until the nodes they reference
/// are reclaimed (GC of unreferenced nodes, or eager `release`).
#pragma once

#include "dd/compute_table.hpp"
#include "dd/node.hpp"
#include "dd/real_table.hpp"
#include "dd/unique_table.hpp"
#include "ir/gate_matrix.hpp"
#include "ir/operation.hpp"
#include "ir/permutation.hpp"
#include "obs/counters.hpp"

#include <complex>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <span>
#include <unordered_map>
#include <vector>

namespace veriqc::dd {

/// Initial (and minimum) live-node threshold that triggers garbage
/// collection; the threshold then adapts to twice the surviving node count.
inline constexpr std::size_t kGcInitialThreshold = 65536;

/// Sizing knobs of a package's caches. The defaults match the tuned hot-path
/// configuration; tests shrink them to exercise collision and eviction paths.
struct PackageConfig {
  /// Entries per binary compute table (multiply, add, inner product);
  /// rounded up to a power of two.
  std::size_t computeTableEntries = 1U << 16U;
  /// Entries per unary compute table (conjugate-transpose, trace).
  std::size_t unaryTableEntries = 1U << 14U;
  /// Gate-DD cache entries before the cache is flushed wholesale.
  std::size_t gateCacheMaxEntries = 4096;
  /// Initial live-node threshold for garbage collection.
  std::size_t gcInitialThreshold = kGcInitialThreshold;
  /// Resource budget: live nodes this package may hold (0 = unlimited).
  /// Checked at every garbageCollect() call; when a forced collection
  /// cannot get back under the budget, a ResourceLimitError is thrown so
  /// the owning engine aborts cooperatively instead of exhausting memory.
  std::size_t maxNodes = 0;
  /// Resource budget: process peak resident set size in MB (0 = unlimited).
  /// Polled via getrusage at a throttle from garbageCollect(); note the
  /// watermark is process-wide and never decreases.
  std::size_t maxMemoryMB = 0;
};

/// Aggregate statistics of a package instance.
struct PackageStats {
  std::size_t matrixNodes = 0;   ///< live unique matrix nodes
  std::size_t vectorNodes = 0;   ///< live unique vector nodes
  std::size_t allocations = 0;   ///< total node slots ever materialised
  std::size_t gcRuns = 0;        ///< garbage collections performed
  std::size_t realNumbers = 0;   ///< interned canonical reals
  std::size_t peakMatrixNodes = 0;
  std::size_t gcThreshold = 0;   ///< current adaptive GC trigger
  std::size_t releasedNodes = 0; ///< nodes reclaimed eagerly via release()

  /// Slab-store metrics summed over all levels (probe lengths, occupancy,
  /// growth events); split by diagram kind.
  NodeStoreStats matrixStore;
  NodeStoreStats vectorStore;

  // Per-cache hit/miss/collision counters.
  CacheStats multiply;
  CacheStats multiplyVector;
  CacheStats add;
  CacheStats addVector;
  CacheStats conjugateTranspose;
  CacheStats trace;
  CacheStats innerProduct;
  CacheStats gateCache;          ///< the gate-DD construction cache
  std::size_t gateCacheEntries = 0; ///< currently cached gate DDs
  /// Gate-cache misses satisfied by importing from a warm source package
  /// (adoptWarmGateSource) instead of rebuilding from scratch.
  std::size_t gateCacheWarmHits = 0;

  /// Sum over all seven compute tables (excludes the gate-DD cache).
  [[nodiscard]] CacheStats computeTotal() const noexcept {
    CacheStats total;
    total += multiply;
    total += multiplyVector;
    total += add;
    total += addVector;
    total += conjugateTranspose;
    total += trace;
    total += innerProduct;
    return total;
  }

  /// Slab-store metrics summed over both diagram kinds.
  [[nodiscard]] NodeStoreStats storeTotal() const noexcept {
    NodeStoreStats total;
    total += matrixStore;
    total += vectorStore;
    return total;
  }
};

/// One package instance owns all nodes, slab stores and caches for a fixed
/// number of qubits. It is deliberately single-threaded; concurrent checkers
/// each use their own instance.
class Package {
public:
  explicit Package(std::size_t nqubits,
                   double tolerance = RealTable::kDefaultTolerance,
                   const PackageConfig& config = {});

  ~Package();
  Package(const Package&) = delete;
  Package& operator=(const Package&) = delete;

  [[nodiscard]] std::size_t numQubits() const noexcept { return nqubits_; }
  [[nodiscard]] double tolerance() const noexcept { return reals_.tolerance(); }

  // --- canonical building blocks -------------------------------------------
  [[nodiscard]] mEdge zeroMatrix() const noexcept {
    return {kTerminalIndex, {0.0, 0.0}};
  }
  [[nodiscard]] vEdge zeroVectorEdge() const noexcept {
    return {kTerminalIndex, {0.0, 0.0}};
  }
  [[nodiscard]] mEdge oneMatrixScalar() const noexcept {
    return {kTerminalIndex, {1.0, 0.0}};
  }

  /// The identity on all `numQubits()` qubits (a linear-size chain, Fig. 3b).
  [[nodiscard]] mEdge makeIdent();

  /// Canonical (normalized, interned, unique) matrix node.
  mEdge makeMatrixNode(Level v, const std::array<mEdge, 4>& children);
  /// Canonical vector node.
  vEdge makeVectorNode(Level v, const std::array<vEdge, 2>& children);

  /// DD of a (multi-)controlled single-qubit gate. Results are memoized in
  /// the gate-DD cache keyed on the tolerance-quantized matrix, the control
  /// set and the target level, so repeated gates are built once.
  mEdge makeGateDD(const GateMatrix& matrix, std::span<const Qubit> controls,
                   Qubit target);

  /// DD of a (controlled) SWAP via the three-CNOT construction (memoized).
  mEdge makeSwapDD(Qubit a, Qubit b, std::span<const Qubit> controls = {});

  /// DD of an arbitrary circuit operation; qubits are relabeled through
  /// `perm` (wire -> DD level), enabling permutation-tracked application.
  /// Barrier/Measure yield the identity. Throws on unsupported types.
  mEdge makeOperationDD(const Operation& op, const Permutation& perm);
  mEdge makeOperationDD(const Operation& op);

  /// |0...0> over all qubits.
  vEdge makeZeroState();
  /// Computational basis state |bits> (bits[q] for qubit q).
  vEdge makeBasisState(const std::vector<bool>& bits);

  // --- operations -----------------------------------------------------------
  [[nodiscard]] mEdge multiply(const mEdge& x, const mEdge& y);
  [[nodiscard]] vEdge multiply(const mEdge& m, const vEdge& v);
  [[nodiscard]] mEdge add(const mEdge& x, const mEdge& y);
  [[nodiscard]] vEdge add(const vEdge& x, const vEdge& y);
  [[nodiscard]] mEdge conjugateTranspose(const mEdge& x);
  [[nodiscard]] std::complex<double> trace(const mEdge& x);
  [[nodiscard]] std::complex<double> innerProduct(const vEdge& x,
                                                  const vEdge& y);
  /// |<x|y>|^2
  [[nodiscard]] double fidelity(const vEdge& x, const vEdge& y);

  /// Entry U[row][col] of the represented matrix (for tests/export).
  [[nodiscard]] std::complex<double> getEntry(const mEdge& x, std::size_t row,
                                              std::size_t col) const;
  /// Amplitude <index|x>.
  [[nodiscard]] std::complex<double> getAmplitude(const vEdge& x,
                                                  std::size_t index) const;

  // --- equivalence-oriented queries ------------------------------------------
  /// |tr(E)| / 2^n: equals 1 iff E is the identity up to global phase.
  [[nodiscard]] double traceFidelity(const mEdge& e);
  /// Structural check against the cached identity (exact node identity),
  /// falling back to the Hilbert-Schmidt criterion with `checkTol`.
  [[nodiscard]] bool isIdentity(const mEdge& e, bool upToGlobalPhase = true,
                                double checkTol = 1e-9);

  // --- memory management -----------------------------------------------------
  void incRef(const mEdge& e) noexcept;
  void decRef(const mEdge& e) noexcept;
  void incRef(const vEdge& e) noexcept;
  void decRef(const vEdge& e) noexcept;

  /// Collect dead nodes if the live-node count exceeds the adaptive
  /// threshold (always when `force`). Each slab sweeps its dense arrays and
  /// rebuilds its bucket table; all compute tables are invalidated (an O(1)
  /// generation bump each) so no cached entry can name a reclaimed — and now
  /// reusable — slot. Cached gate DDs stay referenced and therefore remain
  /// valid across collections.
  /// \throws ResourceLimitError when a configured node or memory budget
  ///         (PackageConfig::maxNodes / maxMemoryMB) remains exceeded even
  ///         after a forced collection. With the default unlimited budgets
  ///         this never throws.
  std::size_t garbageCollect(bool force = false);

  /// Eagerly reclaim an unreferenced diagram: every node in e's DAG whose
  /// reference count is zero is removed from its slab's bucket table and its
  /// slot recycled, stopping at nodes kept alive by references (shared
  /// subdiagrams of live edges survive). When anything was reclaimed, the
  /// compute tables are invalidated (O(1) generation bumps) since cached
  /// results may name the released slots. Used by the lookahead oracle
  /// to drop the losing candidate product immediately instead of letting it
  /// pin live-node accounting (stats, GC threshold adaptation and the node
  /// budget) until the next GC sweep. Returns the number of reclaimed nodes.
  std::size_t release(const mEdge& e);

  /// Deep-copy a matrix diagram owned by another package into this one,
  /// re-canonicalizing every node through this package's unique tables
  /// (shared subdiagrams stay shared via a source-handle memo). This is the
  /// hand-over point of the sharded checkers: worker threads build partial
  /// products in private packages, then the combining thread imports them.
  /// `src` is only read; the caller must guarantee no operation runs on it
  /// concurrently.
  mEdge importMatrix(const Package& src, const mEdge& e);

  /// Adopt a warm gate-DD source: on a gate-cache miss, look the key up in
  /// `src`'s cache first and import the prebuilt diagram instead of
  /// reconstructing it. `src` must be immutable for as long as any adopter
  /// holds it (the shared_ptr keeps it alive past the donor's teardown);
  /// veriqcd publishes per-shape snapshot packages this way so concurrent
  /// jobs reuse each other's gate constructions. Returns false (and adopts
  /// nothing) when the source is null or its qubit count or interning
  /// tolerance differs — keys quantized under another tolerance would not
  /// be comparable.
  bool adoptWarmGateSource(std::shared_ptr<const Package> src) noexcept;

  /// Deep-copy every gate-DD cache entry of this package into `dst`'s cache
  /// (skipping keys `dst` already holds). The publishing half of the warm
  /// cache: a job's private package donates its constructions into a shared
  /// snapshot before teardown. \throws std::invalid_argument on a qubit
  /// count or tolerance mismatch.
  void exportGateCacheInto(Package& dst) const;

  /// Process-wide peak resident set size in kilobytes (0 if unavailable).
  [[nodiscard]] static std::size_t peakResidentSetKB() noexcept;

  /// Current (not peak) resident set size in kilobytes via /proc/self/statm;
  /// 0 where unavailable. Unlike the getrusage watermark this can decrease,
  /// so a long-running daemon can use it for admission decisions.
  [[nodiscard]] static std::size_t currentResidentSetKB() noexcept;

  /// Drops all cached gate DDs (releasing their references). Called
  /// automatically when the cache outgrows its configured bound.
  void clearGateCache();

  /// Number of distinct nodes reachable from e (terminal excluded).
  [[nodiscard]] std::size_t nodeCount(const mEdge& e) const;
  [[nodiscard]] std::size_t nodeCount(const vEdge& e) const;

  [[nodiscard]] PackageStats stats() const;

  /// Feed every package statistic into a counters registry under `prefix`
  /// (e.g. "dd.multiply.hits"). Monotone counters (cache traffic, GC runs,
  /// allocations) accumulate by addition, high-water marks (peak nodes)
  /// by maximum, so registries from several packages — e.g. the per-worker
  /// packages of the simulation checker — merge correctly.
  void exportCounters(obs::CounterRegistry& registry,
                      const std::string& prefix = "dd.") const;

  // --- introspection (audit layer and tests) ---------------------------------
  // Read-only views into the package's internal structures. Only meaningful
  // at quiescent points (no DD operation in flight); the audit layer calls
  // them at post-gate checkpoints and after garbage collection.

  /// Per-level slab stores (index = DD level).
  [[nodiscard]] const std::vector<NodeSlab<mEdge>>&
  matrixSlabs() const noexcept {
    return mSlabs_;
  }
  [[nodiscard]] const std::vector<NodeSlab<vEdge>>&
  vectorSlabs() const noexcept {
    return vSlabs_;
  }

  /// Child edge i of a (non-terminal) matrix/vector node.
  [[nodiscard]] mEdge matrixChild(NodeIndex n, std::size_t i) const;
  [[nodiscard]] vEdge vectorChild(NodeIndex n, std::size_t i) const;

  /// The real-number interning table.
  [[nodiscard]] const RealTable& realTable() const noexcept { return reals_; }

  /// Root edges the package itself keeps referenced: the identity chain and
  /// the gate-DD cache (each entry holds exactly one reference). A full
  /// refcount recount counts these alongside caller-held roots.
  [[nodiscard]] std::vector<mEdge> internalMatrixRoots() const;

  /// Invokes the visitors for every node handle referenced by a compute-table
  /// entry of the current generation (operand keys and cached results).
  void
  visitLiveCacheNodes(const std::function<void(NodeIndex)>& visitMatrix,
                      const std::function<void(NodeIndex)>& visitVector)
      const;

  /// True if `n` is the terminal or currently live in a slab store.
  [[nodiscard]] bool containsMatrixNode(NodeIndex n) const noexcept;
  [[nodiscard]] bool containsVectorNode(NodeIndex n) const noexcept;

private:
  friend class PackageTestAccess;

  std::size_t releaseNode(NodeIndex n);
  void incRefNode(NodeIndex n) noexcept;
  void decRefNode(NodeIndex n) noexcept;
  void incRefVNode(NodeIndex n) noexcept;
  void decRefVNode(NodeIndex n) noexcept;

  /// Cache key of a constructed gate DD. Matrix entries are quantized by the
  /// interning tolerance, so parameter values that would intern to the same
  /// canonical reals share an entry. Controls/target are DD levels (i.e. the
  /// permutation applied by makeOperationDD is part of the key).
  struct GateKey {
    std::array<std::int64_t, 8> matrix{}; ///< quantized re/im of the 4 entries
    std::uint64_t kind = 0;               ///< 0 = matrix gate, 1 = SWAP
    std::vector<Qubit> controls;          ///< sorted control levels
    Qubit target = 0;
    Qubit target2 = 0; ///< second SWAP target (unused for matrix gates)

    bool operator==(const GateKey&) const = default;
  };

  struct GateKeyHash {
    std::size_t operator()(const GateKey& key) const noexcept {
      std::size_t h = std::hash<std::uint64_t>{}(key.kind);
      for (const auto q : key.matrix) {
        h = combineHash(h, std::hash<std::int64_t>{}(q));
      }
      for (const auto c : key.controls) {
        h = combineHash(h, std::hash<Qubit>{}(c));
      }
      h = combineHash(h, std::hash<Qubit>{}(key.target));
      h = combineHash(h, std::hash<Qubit>{}(key.target2));
      return h;
    }
  };

  [[nodiscard]] std::int64_t quantize(double value) const noexcept;
  GateKey& makeGateKey(const GateMatrix& matrix, std::span<const Qubit> controls,
                       Qubit target);

  /// Cache lookup/insert around a gate-DD builder. The builder is only
  /// invoked on a miss; its result is referenced so it survives GC. `key`
  /// aliases the current depth slot of the scratch pool; nested gate
  /// construction inside the builder (buildSwapDD -> makeGateDD) runs one
  /// depth deeper and therefore cannot clobber it.
  template <typename Builder>
  mEdge cachedGateDD(GateKey& key, Builder&& build);

  /// The reusable key slot for the current nesting depth, growing the pool
  /// on first use of a new depth.
  GateKey& gateKeySlot();

  /// Uncached construction bodies behind the gate-DD cache.
  mEdge buildGateDD(const GateMatrix& matrix,
                    const std::vector<Qubit>& sortedControls, Qubit target);
  mEdge buildSwapDD(Qubit a, Qubit b, const std::vector<Qubit>& controls);

  void countMatrixNodes(NodeIndex n, std::set<NodeIndex>& seen) const;
  void countVectorNodes(NodeIndex n, std::set<NodeIndex>& seen) const;

  mEdge multiplyMatrixNodes(NodeIndex x, NodeIndex y, Level var);
  vEdge multiplyVectorNodes(NodeIndex m, NodeIndex v, Level var);
  std::complex<double> traceNode(NodeIndex node);
  std::complex<double> innerProductNodes(NodeIndex x, NodeIndex y);

  std::size_t nqubits_;
  RealTable reals_;

  std::vector<NodeSlab<mEdge>> mSlabs_; ///< one per level
  std::vector<NodeSlab<vEdge>> vSlabs_;

  NodePairComputeTable<mEdge> multiplyTable_;
  NodePairComputeTable<vEdge> multiplyVectorTable_;
  ComputeTable<mEdge, mEdge, mEdge> addTable_;
  ComputeTable<vEdge, vEdge, vEdge> addVectorTable_;
  UnaryComputeTable<mEdge> conjTransTable_;
  UnaryComputeTable<std::complex<double>> traceTable_;
  NodePairComputeTable<std::complex<double>> innerProductTable_;

  std::unordered_map<GateKey, mEdge, GateKeyHash> gateCache_;
  std::size_t gateCacheMaxEntries_;
  CacheStats gateCacheStats_;
  std::size_t gateCacheWarmHits_ = 0;
  /// Depth-indexed pool of reused lookup keys: cache hits (the
  /// per-applied-gate fast path) perform no heap allocation because
  /// controls.assign reuses the slot's prior capacity. Each nesting level of
  /// gate construction owns its own slot, so an inner build cannot clobber
  /// the key an outer cachedGateDD is about to insert. A deque keeps the
  /// outer GateKey& stable when a deeper first use grows the pool.
  std::deque<GateKey> gateKeyScratch_;
  std::size_t gateKeyDepth_ = 0;

  /// Immutable package whose gate cache seeds misses in this one (may be
  /// null). The shared_ptr pins the source beyond its donor job's lifetime.
  std::shared_ptr<const Package> warmGateSource_;

  std::vector<mEdge> idTable_; ///< idTable_[k] = identity on levels 0..k

  /// Invalidate every operation cache (O(1) generation bumps). Required
  /// whenever node slots become reusable, since a recycled slot would
  /// otherwise let a stale entry alias a brand-new node (ABA on handles).
  void clearComputeTables() noexcept;

  /// Enforce the node/memory budgets against the post-collection live node
  /// count. \throws ResourceLimitError when a budget is exceeded.
  void enforceResourceLimits(std::size_t liveNodes);

  std::size_t gcInitialThreshold_;
  std::size_t gcThreshold_;
  std::size_t gcRuns_ = 0;
  std::size_t peakMatrixNodes_ = 0;
  std::size_t releasedNodes_ = 0;
  std::size_t maxNodes_ = 0;
  std::size_t maxMemoryKB_ = 0;
  std::size_t memoryCheckCountdown_ = 0;
};

/// White-box access to a package's slab stores for audit mutation tests and
/// node-store unit tests. Production code must never use this: it can break
/// every canonicity invariant — which is exactly what the audit-layer tests
/// need it for.
class PackageTestAccess {
public:
  static NodeSlab<mEdge>& matrixSlab(Package& p, const Level v) {
    return p.mSlabs_[static_cast<std::size_t>(v)];
  }
  static NodeSlab<vEdge>& vectorSlab(Package& p, const Level v) {
    return p.vSlabs_[static_cast<std::size_t>(v)];
  }
  /// Detach a node from its slab *without* invalidating the compute tables —
  /// the stale-cache corruption the audit layer must detect.
  static void detachMatrixNode(Package& p, const NodeIndex n) {
    p.mSlabs_[static_cast<std::size_t>(levelOfIndex(n))].remove(n);
  }
};

} // namespace veriqc::dd
