#include "zx/simplify.hpp"

#include <algorithm>
#include <map>

namespace veriqc::zx {

Simplifier::Simplifier(ZXDiagram& diagram, std::function<bool()> shouldStop)
    : g_(diagram), shouldStop_(std::move(shouldStop)) {}

bool Simplifier::isInterior(const Vertex v) const {
  return g_.isPresent(v) && !g_.isBoundary(v);
}

bool Simplifier::isInteriorZ(const Vertex v) const {
  return g_.isPresent(v) && g_.type(v) == VertexType::Z;
}

bool Simplifier::allNeighborsInteriorViaHadamard(const Vertex v) const {
  for (const auto& [w, mult] : g_.neighbors(v)) {
    if (w == v || mult.simple != 0 || mult.hadamard != 1 || !isInteriorZ(w)) {
      return false;
    }
  }
  return true;
}

bool Simplifier::allEdgesHadamardToSpiders(const Vertex v) const {
  for (const auto& [w, mult] : g_.neighbors(v)) {
    if (w == v) {
      return false;
    }
    if (g_.isBoundary(w)) {
      if (mult.total() != 1) {
        return false;
      }
      continue;
    }
    if (mult.simple != 0 || mult.hadamard != 1 || !isInteriorZ(w)) {
      return false;
    }
  }
  return true;
}

void Simplifier::normalizeVertex(const Vertex v) {
  const auto loops = g_.edge(v, v);
  if (loops.total() == 0) {
    return;
  }
  g_.removeAllEdges(v, v);
  if (loops.hadamard % 2 == 1) {
    g_.addPhase(v, PiRational::pi());
  }
}

void Simplifier::normalizePair(const Vertex u, const Vertex v) {
  if (u == v || !isInteriorZ(u) || !isInteriorZ(v)) {
    return;
  }
  const auto mult = g_.edge(u, v);
  // Parallel Hadamard edges between Z spiders cancel pairwise (Hopf law).
  for (int i = 0; i + 1 < mult.hadamard; i += 2) {
    g_.removeEdge(u, v, EdgeType::Hadamard);
    g_.removeEdge(u, v, EdgeType::Hadamard);
  }
}

void Simplifier::fuse(const Vertex u, const Vertex v) {
  g_.addPhase(u, g_.phase(v));
  const auto vAdj = g_.neighbors(v); // copy
  for (const auto& [w, mult] : vAdj) {
    if (w == v) {
      for (int i = 0; i < mult.simple; ++i) {
        g_.addEdge(u, u, EdgeType::Simple);
      }
      for (int i = 0; i < mult.hadamard; ++i) {
        g_.addEdge(u, u, EdgeType::Hadamard);
      }
    } else if (w == u) {
      // One plain edge is consumed by the fusion; the rest become loops.
      for (int i = 0; i + 1 < mult.simple; ++i) {
        g_.addEdge(u, u, EdgeType::Simple);
      }
      for (int i = 0; i < mult.hadamard; ++i) {
        g_.addEdge(u, u, EdgeType::Hadamard);
      }
    } else {
      for (int i = 0; i < mult.simple; ++i) {
        g_.addEdge(u, w, EdgeType::Simple);
      }
      for (int i = 0; i < mult.hadamard; ++i) {
        g_.addEdge(u, w, EdgeType::Hadamard);
      }
    }
  }
  g_.removeVertex(v);
  normalizeVertex(u);
  const auto uAdj = g_.neighbors(u); // copy for safe normalization
  for (const auto& [w, mult] : uAdj) {
    normalizePair(u, w);
  }
  ++stats_.spiderFusions;
}

std::size_t Simplifier::spiderSimp() {
  std::size_t count = 0;
  bool changed = true;
  while (changed && !stopping()) {
    changed = false;
    for (const auto v : g_.vertices()) {
      if (!isInteriorZ(v)) {
        continue;
      }
      bool fusedSomething = true;
      while (fusedSomething && g_.isPresent(v)) {
        fusedSomething = false;
        for (const auto& [w, mult] : g_.neighbors(v)) {
          if (w != v && mult.simple > 0 && isInteriorZ(w)) {
            fuse(v, w);
            ++count;
            fusedSomething = true;
            changed = true;
            break; // adjacency changed; restart neighbor scan
          }
        }
      }
    }
  }
  return count;
}

void Simplifier::toGraphLike() {
  for (const auto v : g_.vertices()) {
    if (!g_.isPresent(v) || g_.type(v) != VertexType::X) {
      continue;
    }
    const auto adj = g_.neighbors(v); // copy
    for (const auto& [w, mult] : adj) {
      if (w == v) {
        continue; // both loop endpoints toggle: type is unchanged
      }
      g_.removeAllEdges(v, w);
      for (int i = 0; i < mult.hadamard; ++i) {
        g_.addEdge(v, w, EdgeType::Simple);
      }
      for (int i = 0; i < mult.simple; ++i) {
        g_.addEdge(v, w, EdgeType::Hadamard);
      }
    }
    g_.setType(v, VertexType::Z);
  }
  for (const auto v : g_.vertices()) {
    if (isInteriorZ(v)) {
      normalizeVertex(v);
    }
  }
  spiderSimp();
  for (const auto v : g_.vertices()) {
    if (!isInteriorZ(v)) {
      continue;
    }
    const auto adj = g_.neighbors(v);
    for (const auto& [w, mult] : adj) {
      normalizePair(v, w);
    }
  }
}

std::size_t Simplifier::idSimp() {
  std::size_t count = 0;
  bool changed = true;
  while (changed && !stopping()) {
    changed = false;
    for (const auto v : g_.vertices()) {
      if (!isInteriorZ(v) || !g_.phase(v).isZero() ||
          g_.edge(v, v).total() != 0 || g_.degree(v) != 2) {
        continue;
      }
      const auto& adj = g_.neighbors(v);
      if (adj.size() == 1) {
        // Both edges go to the same neighbor: removal leaves a self-loop.
        const Vertex w = adj.begin()->first;
        const auto mult = adj.begin()->second;
        if (g_.isBoundary(w)) {
          continue; // malformed boundary; leave untouched
        }
        const bool loopIsHadamard = (mult.hadamard % 2) == 1;
        g_.removeVertex(v);
        if (loopIsHadamard) {
          g_.addPhase(w, PiRational::pi());
        }
        ++count;
        ++stats_.idRemovals;
        changed = true;
        continue;
      }
      const Vertex w1 = adj.begin()->first;
      const Vertex w2 = std::next(adj.begin())->first;
      const bool h1 = adj.begin()->second.hadamard == 1;
      const bool h2 = std::next(adj.begin())->second.hadamard == 1;
      g_.removeVertex(v);
      const EdgeType combined =
          (h1 != h2) ? EdgeType::Hadamard : EdgeType::Simple;
      g_.addEdge(w1, w2, combined);
      ++count;
      ++stats_.idRemovals;
      changed = true;
      if (isInteriorZ(w1) && isInteriorZ(w2)) {
        if (g_.edge(w1, w2).simple > 0) {
          fuse(w1, w2);
        } else {
          normalizePair(w1, w2);
        }
      }
    }
  }
  return count;
}

void Simplifier::toggleHadamard(const Vertex a, const Vertex b) {
  if (g_.edge(a, b).hadamard > 0) {
    g_.removeEdge(a, b, EdgeType::Hadamard);
  } else {
    g_.addEdge(a, b, EdgeType::Hadamard);
  }
}

std::size_t Simplifier::lcompSimp() {
  std::size_t count = 0;
  bool changed = true;
  while (changed && !stopping()) {
    changed = false;
    for (const auto v : g_.vertices()) {
      if (!isInteriorZ(v) || !g_.phase(v).isProperClifford() ||
          g_.edge(v, v).total() != 0 ||
          !allNeighborsInteriorViaHadamard(v)) {
        continue;
      }
      std::vector<Vertex> neighborhood;
      neighborhood.reserve(g_.neighbors(v).size());
      for (const auto& [w, mult] : g_.neighbors(v)) {
        neighborhood.push_back(w);
      }
      const PiRational delta = -g_.phase(v);
      g_.removeVertex(v);
      for (std::size_t i = 0; i < neighborhood.size(); ++i) {
        for (std::size_t j = i + 1; j < neighborhood.size(); ++j) {
          toggleHadamard(neighborhood[i], neighborhood[j]);
        }
      }
      for (const auto w : neighborhood) {
        g_.addPhase(w, delta);
      }
      ++count;
      ++stats_.localComplementations;
      changed = true;
    }
  }
  return count;
}

void Simplifier::pivot(const Vertex u, const Vertex v) {
  std::vector<Vertex> exclusiveU;
  std::vector<Vertex> exclusiveV;
  std::vector<Vertex> common;
  for (const auto& [w, mult] : g_.neighbors(u)) {
    if (w == v) {
      continue;
    }
    if (g_.connected(v, w)) {
      common.push_back(w);
    } else {
      exclusiveU.push_back(w);
    }
  }
  for (const auto& [w, mult] : g_.neighbors(v)) {
    if (w != u && !g_.connected(u, w)) {
      exclusiveV.push_back(w);
    }
  }
  const PiRational pu = g_.phase(u);
  const PiRational pv = g_.phase(v);
  g_.removeVertex(u);
  g_.removeVertex(v);
  for (const auto a : exclusiveU) {
    for (const auto b : exclusiveV) {
      toggleHadamard(a, b);
    }
  }
  for (const auto a : exclusiveU) {
    for (const auto c : common) {
      toggleHadamard(a, c);
    }
  }
  for (const auto b : exclusiveV) {
    for (const auto c : common) {
      toggleHadamard(b, c);
    }
  }
  for (const auto a : exclusiveU) {
    g_.addPhase(a, pv);
  }
  for (const auto b : exclusiveV) {
    g_.addPhase(b, pu);
  }
  for (const auto c : common) {
    g_.addPhase(c, pu + pv + PiRational::pi());
  }
}

std::size_t Simplifier::pivotSimp() {
  std::size_t count = 0;
  bool changed = true;
  while (changed && !stopping()) {
    changed = false;
    for (const auto u : g_.vertices()) {
      if (!isInteriorZ(u) || !g_.phase(u).isPauli() ||
          !allNeighborsInteriorViaHadamard(u)) {
        continue;
      }
      for (const auto& [v, mult] : g_.neighbors(u)) {
        if (mult.hadamard != 1 || !g_.phase(v).isPauli() ||
            !allNeighborsInteriorViaHadamard(v)) {
          continue;
        }
        pivot(u, v);
        ++count;
        ++stats_.pivots;
        changed = true;
        break; // u is gone; adjacency iterators are invalid
      }
    }
  }
  return count;
}

void Simplifier::gadgetize(const Vertex v) {
  const Vertex hub = g_.addVertex(VertexType::Z);
  const Vertex leaf = g_.addVertex(VertexType::Z, g_.phase(v));
  g_.addEdge(v, hub, EdgeType::Hadamard);
  g_.addEdge(hub, leaf, EdgeType::Hadamard);
  g_.setPhase(v, PiRational{});
}

std::size_t Simplifier::pivotGadgetSimp() {
  // Termination: each rewrite keeps the spider count constant but strictly
  // decreases the number of non-Pauli spiders of degree >= 2 — provided the
  // pivot cannot grow an existing gadget leaf's degree, hence the
  // no-leaf-neighbor guard on both pivot vertices.
  const auto hasLeafNeighbor = [this](const Vertex v) {
    for (const auto& [w, mult] : g_.neighbors(v)) {
      if (!g_.isBoundary(w) && g_.degree(w) == 1) {
        return true;
      }
    }
    return false;
  };
  std::size_t count = 0;
  bool changed = true;
  while (changed && !stopping()) {
    changed = false;
    for (const auto u : g_.vertices()) {
      if (!isInteriorZ(u) || !g_.phase(u).isPauli() ||
          !allNeighborsInteriorViaHadamard(u) || hasLeafNeighbor(u)) {
        continue;
      }
      for (const auto& [v, mult] : g_.neighbors(u)) {
        if (mult.hadamard != 1 || g_.phase(v).isPauli() ||
            g_.degree(v) < 2 || !allNeighborsInteriorViaHadamard(v) ||
            hasLeafNeighbor(v)) {
          continue;
        }
        gadgetize(v);
        pivot(u, v);
        ++count;
        ++stats_.gadgetPivots;
        changed = true;
        break; // u is gone; adjacency iterators are invalid
      }
    }
  }
  return count;
}

void Simplifier::unfuseBoundary(const Vertex b, const Vertex v) {
  const auto mult = g_.edge(b, v);
  const EdgeType original =
      mult.hadamard > 0 ? EdgeType::Hadamard : EdgeType::Simple;
  g_.removeEdge(b, v, original);
  const Vertex w = g_.addVertex(VertexType::Z);
  g_.addEdge(b, w,
             original == EdgeType::Simple ? EdgeType::Hadamard
                                          : EdgeType::Simple);
  g_.addEdge(w, v, EdgeType::Hadamard);
}

std::size_t Simplifier::pivotBoundarySimp() {
  // Termination measure: each rewrite removes one interior Pauli spider (u)
  // with no boundary contact, and only adds boundary-adjacent phase-0
  // spiders — so u must be strictly interior, v carries the boundary edges.
  std::size_t count = 0;
  bool changed = true;
  while (changed && !stopping()) {
    changed = false;
    for (const auto u : g_.vertices()) {
      if (!isInteriorZ(u) || !g_.phase(u).isPauli() ||
          !allNeighborsInteriorViaHadamard(u)) {
        continue;
      }
      for (const auto& [v, mult] : g_.neighbors(u)) {
        if (mult.hadamard != 1 || !g_.phase(v).isPauli() ||
            !allEdgesHadamardToSpiders(v)) {
          continue;
        }
        std::vector<Vertex> boundaries;
        for (const auto& [w, m2] : g_.neighbors(v)) {
          if (g_.isBoundary(w)) {
            boundaries.push_back(w);
          }
        }
        if (boundaries.empty()) {
          continue; // plain pivotSimp covers the fully interior case
        }
        for (const auto b : boundaries) {
          unfuseBoundary(b, v);
        }
        pivot(u, v);
        ++count;
        ++stats_.boundaryPivots;
        changed = true;
        break; // u is gone; adjacency iterators are invalid
      }
    }
  }
  return count;
}

std::size_t Simplifier::gadgetSimp() {
  std::size_t count = 0;
  bool changed = true;
  while (changed && !stopping()) {
    changed = false;
    // Gadgets keyed by the hub's neighborhood (excluding the leaf).
    std::map<std::vector<Vertex>, std::pair<Vertex, Vertex>> seen;
    for (const auto leaf : g_.vertices()) {
      if (!isInteriorZ(leaf) || g_.degree(leaf) != 1) {
        continue;
      }
      const auto& adj = g_.neighbors(leaf);
      const Vertex hub = adj.begin()->first;
      if (adj.begin()->second.hadamard != 1 || !isInteriorZ(hub) ||
          !g_.phase(hub).isZero()) {
        continue;
      }
      std::vector<Vertex> key;
      bool eligible = true;
      for (const auto& [w, mult] : g_.neighbors(hub)) {
        if (w == leaf) {
          continue;
        }
        if (mult.hadamard != 1 || mult.simple != 0) {
          eligible = false;
          break;
        }
        key.push_back(w);
      }
      if (!eligible || key.empty()) {
        continue;
      }
      std::sort(key.begin(), key.end());
      const auto it = seen.find(key);
      if (it == seen.end()) {
        seen.emplace(std::move(key), std::pair{hub, leaf});
        continue;
      }
      const auto [hub0, leaf0] = it->second;
      if (hub0 == hub) {
        continue; // two leaves on one hub; leave to other rules
      }
      g_.addPhase(leaf0, g_.phase(leaf));
      g_.removeVertex(leaf);
      g_.removeVertex(hub);
      ++count;
      ++stats_.gadgetFusions;
      changed = true;
      break; // adjacency changed; rebuild the index
    }
  }
  return count;
}

std::size_t Simplifier::interiorCliffordSimp() {
  spiderSimp();
  std::size_t total = 0;
  while (!stopping()) {
    std::size_t round = 0;
    round += idSimp();
    round += spiderSimp();
    round += pivotSimp();
    round += lcompSimp();
    if (round == 0) {
      break;
    }
    total += round;
  }
  return total;
}

std::size_t Simplifier::cliffordSimp() {
  std::size_t total = 0;
  while (!stopping()) {
    total += interiorCliffordSimp();
    const auto boundary = pivotBoundarySimp();
    total += boundary;
    if (boundary == 0) {
      break;
    }
  }
  return total;
}

bool Simplifier::fullReduce() {
  toGraphLike();
  interiorCliffordSimp();
  pivotGadgetSimp();
  while (!stopping()) {
    cliffordSimp();
    const auto i = gadgetSimp();
    interiorCliffordSimp();
    const auto j = pivotGadgetSimp();
    if (i + j == 0) {
      break;
    }
  }
  return !stopping();
}

bool fullReduce(ZXDiagram& diagram, std::function<bool()> shouldStop) {
  Simplifier simplifier(diagram, std::move(shouldStop));
  return simplifier.fullReduce();
}

std::optional<Permutation> extractWirePermutation(const ZXDiagram& diagram) {
  if (diagram.spiderCount() != 0 ||
      diagram.inputs().size() != diagram.outputs().size()) {
    return std::nullopt;
  }
  std::map<Vertex, Qubit> outputIndex;
  for (Qubit i = 0; i < diagram.outputs().size(); ++i) {
    outputIndex[diagram.outputs()[i]] = i;
  }
  std::vector<Qubit> perm(diagram.inputs().size());
  for (Qubit i = 0; i < diagram.inputs().size(); ++i) {
    const Vertex in = diagram.inputs()[i];
    const auto& adj = diagram.neighbors(in);
    if (adj.size() != 1 || adj.begin()->second.simple != 1 ||
        adj.begin()->second.hadamard != 0) {
      return std::nullopt;
    }
    const auto it = outputIndex.find(adj.begin()->first);
    if (it == outputIndex.end()) {
      return std::nullopt;
    }
    perm[i] = it->second;
  }
  Permutation result{perm};
  if (!result.isValid()) {
    return std::nullopt;
  }
  return result;
}

} // namespace veriqc::zx
