#include "zx/diagram.hpp"

#include <algorithm>
#include <sstream>

namespace veriqc::zx {

namespace {

NeighborList::iterator lowerBound(NeighborList& list, const Vertex key) {
  return std::lower_bound(
      list.begin(), list.end(), key,
      [](const NeighborEntry& e, const Vertex k) { return e.vertex < k; });
}

NeighborList::const_iterator lowerBound(const NeighborList& list,
                                        const Vertex key) {
  return std::lower_bound(
      list.begin(), list.end(), key,
      [](const NeighborEntry& e, const Vertex k) { return e.vertex < k; });
}

} // namespace

Vertex ZXDiagram::addVertex(const VertexType type, const PiRational phase) {
  const auto v = static_cast<Vertex>(types_.size());
  types_.push_back(type);
  phases_.push_back(phase);
  present_.push_back(true);
  adj_.emplace_back();
  ++liveCount_;
  return v;
}

void ZXDiagram::addEdge(const Vertex u, const Vertex v, const EdgeType type) {
  const auto bump = [type](NeighborList& list, const Vertex key) {
    auto it = lowerBound(list, key);
    if (it == list.end() || it->vertex != key) {
      it = list.insert(it, NeighborEntry{key, {}});
    }
    if (type == EdgeType::Simple) {
      ++it->edges.simple;
    } else {
      ++it->edges.hadamard;
    }
  };
  bump(adj_.at(u), v);
  if (u != v) {
    bump(adj_.at(v), u);
  }
}

void ZXDiagram::removeEdge(const Vertex u, const Vertex v,
                           const EdgeType type) {
  const auto update = [type](NeighborList& list, const Vertex key) {
    const auto it = lowerBound(list, key);
    if (it == list.end() || it->vertex != key ||
        (type == EdgeType::Simple ? it->edges.simple
                                  : it->edges.hadamard) <= 0) {
      throw CircuitError("ZXDiagram::removeEdge: edge not present");
    }
    if (type == EdgeType::Simple) {
      --it->edges.simple;
    } else {
      --it->edges.hadamard;
    }
    if (it->edges.total() == 0) {
      list.erase(it);
    }
  };
  update(adj_.at(u), v);
  if (u != v) {
    update(adj_.at(v), u);
  }
}

void ZXDiagram::removeAllEdges(const Vertex u, const Vertex v) {
  const auto drop = [](NeighborList& list, const Vertex key) {
    const auto it = lowerBound(list, key);
    if (it != list.end() && it->vertex == key) {
      list.erase(it);
    }
  };
  drop(adj_.at(u), v);
  if (u != v) {
    drop(adj_.at(v), u);
  }
}

void ZXDiagram::removeVertex(const Vertex v) {
  if (!isPresent(v)) {
    throw CircuitError("ZXDiagram::removeVertex: vertex not present");
  }
  for (const auto& [neighbor, mult] : adj_.at(v)) {
    if (neighbor != v) {
      auto& list = adj_.at(neighbor);
      const auto it = lowerBound(list, v);
      if (it != list.end() && it->vertex == v) {
        list.erase(it);
      }
    }
  }
  adj_.at(v).clear();
  present_[v] = false;
  --liveCount_;
}

EdgeMultiplicity ZXDiagram::edge(const Vertex u, const Vertex v) const {
  const auto& list = adj_.at(u);
  const auto it = lowerBound(list, v);
  return (it == list.end() || it->vertex != v) ? EdgeMultiplicity{}
                                               : it->edges;
}

std::size_t ZXDiagram::degree(const Vertex v) const {
  std::size_t d = 0;
  for (const auto& [neighbor, mult] : adj_.at(v)) {
    d += static_cast<std::size_t>(mult.total()) * (neighbor == v ? 2 : 1);
  }
  return d;
}

std::size_t ZXDiagram::spiderCount() const {
  std::size_t count = 0;
  for (Vertex v = 0; v < vertexBound(); ++v) {
    if (isPresent(v) && !isBoundary(v)) {
      ++count;
    }
  }
  return count;
}

std::size_t ZXDiagram::edgeCount() const {
  std::size_t count = 0;
  for (Vertex v = 0; v < vertexBound(); ++v) {
    if (!isPresent(v)) {
      continue;
    }
    for (const auto& [neighbor, mult] : adj_[v]) {
      if (neighbor >= v) {
        count += static_cast<std::size_t>(mult.total());
      }
    }
  }
  return count;
}

std::vector<Vertex> ZXDiagram::vertices() const {
  std::vector<Vertex> live;
  live.reserve(liveCount_);
  for (Vertex v = 0; v < vertexBound(); ++v) {
    if (isPresent(v)) {
      live.push_back(v);
    }
  }
  return live;
}

ZXDiagram ZXDiagram::adjoint() const {
  ZXDiagram result = *this;
  for (Vertex v = 0; v < result.vertexBound(); ++v) {
    if (result.isPresent(v)) {
      result.phases_[v] = -result.phases_[v];
    }
  }
  std::swap(result.inputs_, result.outputs_);
  return result;
}

ZXDiagram ZXDiagram::compose(const ZXDiagram& next) const {
  if (outputs_.size() != next.inputs_.size()) {
    throw CircuitError("ZXDiagram::compose: interface mismatch");
  }
  ZXDiagram result = *this;
  // Import `next` with an index offset.
  const auto offset = result.vertexBound();
  for (Vertex v = 0; v < next.vertexBound(); ++v) {
    result.types_.push_back(next.types_[v]);
    result.phases_.push_back(next.phases_[v]);
    result.present_.push_back(next.present_[v]);
    result.adj_.emplace_back();
    if (next.present_[v]) {
      ++result.liveCount_;
    }
  }
  for (Vertex v = 0; v < next.vertexBound(); ++v) {
    for (const auto& [neighbor, mult] : next.adj_[v]) {
      if (neighbor < v) {
        continue; // add each edge once
      }
      for (int i = 0; i < mult.simple; ++i) {
        result.addEdge(offset + v, offset + neighbor, EdgeType::Simple);
      }
      for (int i = 0; i < mult.hadamard; ++i) {
        result.addEdge(offset + v, offset + neighbor, EdgeType::Hadamard);
      }
    }
  }
  // Fuse interface pairs: this.output[i] -- next.input[i].
  for (std::size_t i = 0; i < outputs_.size(); ++i) {
    const Vertex out = outputs_[i];
    const Vertex in = offset + next.inputs_[i];
    // A boundary vertex has exactly one incident edge.
    const auto takeNeighbor = [&result](const Vertex b) {
      const auto& adj = result.adj_.at(b);
      if (adj.size() != 1 || adj.front().edges.total() != 1) {
        throw CircuitError("ZXDiagram::compose: malformed boundary");
      }
      const Vertex neighbor = adj.front().vertex;
      const EdgeType type = adj.front().edges.hadamard > 0
                                ? EdgeType::Hadamard
                                : EdgeType::Simple;
      return std::pair{neighbor, type};
    };
    const auto [n1, t1] = takeNeighbor(out);
    result.removeVertex(out);
    // n1 might itself be `in` (bare wire meeting bare wire is impossible
    // since out != in, but out's neighbor can be in's partner).
    const auto [n2, t2] = takeNeighbor(in);
    result.removeVertex(in);
    const EdgeType combined = (t1 == t2) ? EdgeType::Simple
                                         : EdgeType::Hadamard;
    if (n1 == in) {
      // out and in were directly connected (cannot happen: different
      // diagrams), guarded for robustness.
      throw CircuitError("ZXDiagram::compose: interface self-connection");
    }
    result.addEdge(n1, n2, combined);
  }
  result.outputs_.clear();
  result.outputs_.reserve(next.outputs_.size());
  for (const auto out : next.outputs_) {
    result.outputs_.push_back(offset + out);
  }
  return result;
}

std::string ZXDiagram::toString() const {
  std::ostringstream os;
  os << "ZXDiagram (" << vertexCount() << " vertices, " << edgeCount()
     << " edges, " << inputs_.size() << " in / " << outputs_.size()
     << " out)\n";
  for (Vertex v = 0; v < vertexBound(); ++v) {
    if (!isPresent(v)) {
      continue;
    }
    os << "  " << v << ": ";
    switch (type(v)) {
    case VertexType::Boundary:
      os << "B";
      break;
    case VertexType::Z:
      os << "Z(" << phase(v).toString() << ")";
      break;
    case VertexType::X:
      os << "X(" << phase(v).toString() << ")";
      break;
    }
    os << " --";
    for (const auto& [neighbor, mult] : adj_[v]) {
      for (int i = 0; i < mult.simple; ++i) {
        os << " " << neighbor;
      }
      for (int i = 0; i < mult.hadamard; ++i) {
        os << " h" << neighbor;
      }
    }
    os << "\n";
  }
  return os.str();
}

} // namespace veriqc::zx
