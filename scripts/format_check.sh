#!/usr/bin/env bash
# Check (or fix) formatting of all C++ sources with clang-format, using the
# repo's .clang-format. Skips with a notice when clang-format is not
# installed, so the script is safe to call from check_all.sh in minimal
# containers.
#
# Usage: scripts/format_check.sh [--fix]
set -euo pipefail

cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "format_check: clang-format not found, skipping" >&2
  exit 0
fi

mode=(--dry-run --Werror)
if [[ "${1:-}" == "--fix" ]]; then
  mode=(-i)
fi

mapfile -t files < <(git ls-files 'src/**/*.cpp' 'src/**/*.hpp' \
  'tests/*.cpp' 'examples/*.cpp' 'bench/*.cpp')
clang-format --style=file "${mode[@]}" "${files[@]}"
echo "format_check: ${#files[@]} files checked"
