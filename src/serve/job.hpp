/// \file job.hpp
/// \brief The veriqcd wire protocol: one check job per NDJSON line.
///
/// A client submits newline-delimited JSON objects, one job each:
///
///   {"id": "j1", "file1": "a.qasm", "file2": "b.qasm",
///    "config": {"timeoutMilliseconds": 5000, "maxDDNodes": 100000}}
///
/// `id` names the job in its report line; `file1`/`file2` are circuit files
/// (OpenQASM 2.0 or RevLib .real, by extension). The optional `config`
/// object overrides checker knobs against the daemon's defaults; its key
/// set is a strict whitelist — an unknown key rejects the job (structured
/// reason "malformed_request") rather than being silently ignored, so a
/// typo in a budget knob can never run an unbudgeted check.
#pragma once

#include "check/result.hpp"

#include <string>
#include <string_view>

namespace veriqc::serve {

/// Why a submitted job did not run. Serialized under the report's
/// `job.reason` key; the names are part of the protocol.
enum class RejectReason : std::uint8_t {
  None,               ///< admitted
  MalformedRequest,   ///< not valid JSON / wrong shape / unknown config key
  OversizedRequest,   ///< line exceeded the daemon's maxLineBytes
  QueueFull,          ///< admission queue at capacity
  MemoryBudget,       ///< daemon RSS too close to its memory cap
  BudgetExceedsLimit, ///< job asked for more than the daemon-wide cap
  FaultPlanForbidden, ///< job carried a fault plan, daemon forbids them
  ShuttingDown,       ///< daemon is draining
};

/// Stable wire key ("queue_full", "memory_budget", ...); "" for None.
[[nodiscard]] std::string toString(RejectReason reason);

/// One parsed check job.
struct JobRequest {
  std::string id;
  std::string file1;
  std::string file2;
  check::Configuration config;
};

/// Outcome of parsing one protocol line: either an admitted-shape request
/// (reason == None) or a structured rejection with a human-readable detail.
struct ParsedJob {
  JobRequest request;
  RejectReason reason = RejectReason::None;
  std::string detail;
};

/// Parse one NDJSON protocol line against the daemon's default
/// configuration. Never throws: every malformation is reported as a
/// ParsedJob with reason MalformedRequest and a detail naming the problem
/// (the daemon turns it into a rejection report, keeping the one-line-in /
/// one-report-out invariant even for garbage input).
[[nodiscard]] ParsedJob parseJobLine(std::string_view line,
                                     const check::Configuration& defaults);

} // namespace veriqc::serve
