/// \file diagram.hpp
/// \brief ZX-diagrams: spiders, boundaries, simple and Hadamard wires.
#pragma once

#include "ir/types.hpp"
#include "zx/rational.hpp"

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

namespace veriqc::zx {

using Vertex = std::uint32_t;

enum class VertexType : std::uint8_t {
  Boundary, ///< input or output wire end (no phase)
  Z,        ///< green spider
  X,        ///< red spider
};

enum class EdgeType : std::uint8_t {
  Simple,   ///< plain wire
  Hadamard, ///< wire with a Hadamard box
};

/// Parallel edges between one pair of vertices, by type.
struct EdgeMultiplicity {
  int simple = 0;
  int hadamard = 0;

  [[nodiscard]] int total() const noexcept { return simple + hadamard; }
};

/// One adjacency slot: the neighbor id plus the parallel-edge multiplicities
/// towards it. Structured bindings decompose it like the map entries it
/// replaced: `for (const auto& [w, mult] : diagram.neighbors(v))`.
struct NeighborEntry {
  Vertex vertex;
  EdgeMultiplicity edges;
};

/// Flat adjacency row, sorted by neighbor id. Lookups are a binary search on
/// a contiguous array (one cache line for typical spider degrees) instead of
/// a pointer-chasing tree walk; iteration order matches the previous
/// std::map-based representation exactly (ascending neighbor id).
using NeighborList = std::vector<NeighborEntry>;

/// A ZX-diagram as an undirected multigraph. Vertices are never reindexed;
/// removed vertices leave holes (test with isPresent). Self-loops are allowed
/// transiently and resolved by the simplifier.
///
/// Scalar factors are intentionally not tracked: every consumer in this
/// library decides questions that are invariant under nonzero global scalars
/// (equivalence up to global phase).
class ZXDiagram {
public:
  ZXDiagram() = default;
  // The live-vertex counter is atomic (region-parallel simplification
  // removes vertices from several threads), which deletes the implicit
  // copy/move operations; diagrams are still plain values everywhere else
  // (adjoint/compose copy them), so restore them explicitly.
  ZXDiagram(const ZXDiagram& other)
      : types_(other.types_), phases_(other.phases_),
        present_(other.present_), adj_(other.adj_), inputs_(other.inputs_),
        outputs_(other.outputs_),
        liveCount_(other.liveCount_.load(std::memory_order_relaxed)) {}
  ZXDiagram(ZXDiagram&& other) noexcept
      : types_(std::move(other.types_)), phases_(std::move(other.phases_)),
        present_(std::move(other.present_)), adj_(std::move(other.adj_)),
        inputs_(std::move(other.inputs_)),
        outputs_(std::move(other.outputs_)),
        liveCount_(other.liveCount_.load(std::memory_order_relaxed)) {}
  ZXDiagram& operator=(const ZXDiagram& other) {
    if (this != &other) {
      types_ = other.types_;
      phases_ = other.phases_;
      present_ = other.present_;
      adj_ = other.adj_;
      inputs_ = other.inputs_;
      outputs_ = other.outputs_;
      liveCount_.store(other.liveCount_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    }
    return *this;
  }
  ZXDiagram& operator=(ZXDiagram&& other) noexcept {
    types_ = std::move(other.types_);
    phases_ = std::move(other.phases_);
    present_ = std::move(other.present_);
    adj_ = std::move(other.adj_);
    inputs_ = std::move(other.inputs_);
    outputs_ = std::move(other.outputs_);
    liveCount_.store(other.liveCount_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    return *this;
  }

  // --- construction -----------------------------------------------------------
  Vertex addVertex(VertexType type, PiRational phase = {});

  /// Add one edge of the given type (u == v records a self-loop).
  void addEdge(Vertex u, Vertex v, EdgeType type);

  /// Remove one edge of the given type. \throws CircuitError if absent.
  void removeEdge(Vertex u, Vertex v, EdgeType type);

  /// Remove all edges between u and v.
  void removeAllEdges(Vertex u, Vertex v);

  /// Remove a vertex and all incident edges.
  void removeVertex(Vertex v);

  /// Declare boundary vertices as the diagram interface, in qubit order.
  void setInputs(std::vector<Vertex> inputs) { inputs_ = std::move(inputs); }
  void setOutputs(std::vector<Vertex> outputs) {
    outputs_ = std::move(outputs);
  }

  // --- queries ---------------------------------------------------------------
  [[nodiscard]] bool isPresent(Vertex v) const {
    return v < present_.size() && present_[v] != 0;
  }
  [[nodiscard]] VertexType type(Vertex v) const { return types_.at(v); }
  void setType(Vertex v, VertexType type) { types_.at(v) = type; }
  [[nodiscard]] const PiRational& phase(Vertex v) const {
    return phases_.at(v);
  }
  void setPhase(Vertex v, PiRational phase) { phases_.at(v) = phase; }
  void addPhase(Vertex v, const PiRational& delta) { phases_.at(v) += delta; }

  /// Adjacency of v, sorted by neighbor id. Self-loops appear under v
  /// itself.
  [[nodiscard]] const NeighborList& neighbors(Vertex v) const {
    return adj_.at(v);
  }

  [[nodiscard]] EdgeMultiplicity edge(Vertex u, Vertex v) const;
  [[nodiscard]] bool connected(Vertex u, Vertex v) const {
    return edge(u, v).total() > 0;
  }

  /// Total incident edge count (self-loops count twice).
  [[nodiscard]] std::size_t degree(Vertex v) const;

  [[nodiscard]] const std::vector<Vertex>& inputs() const noexcept {
    return inputs_;
  }
  [[nodiscard]] const std::vector<Vertex>& outputs() const noexcept {
    return outputs_;
  }
  [[nodiscard]] bool isBoundary(Vertex v) const {
    return type(v) == VertexType::Boundary;
  }

  /// Number of live vertices.
  [[nodiscard]] std::size_t vertexCount() const noexcept {
    return liveCount_.load(std::memory_order_relaxed);
  }
  /// Number of live non-boundary vertices.
  [[nodiscard]] std::size_t spiderCount() const;
  /// Total number of edges (by multiplicity).
  [[nodiscard]] std::size_t edgeCount() const;
  /// Largest vertex id ever allocated (for iteration).
  [[nodiscard]] Vertex vertexBound() const {
    return static_cast<Vertex>(types_.size());
  }

  /// All live vertices.
  [[nodiscard]] std::vector<Vertex> vertices() const;

  // --- whole-diagram operations ---------------------------------------------
  /// The adjoint diagram: inputs and outputs exchanged, all phases negated.
  [[nodiscard]] ZXDiagram adjoint() const;

  /// Sequential composition: `this` followed by `next` (this' outputs fused
  /// with next's inputs). \throws CircuitError on interface mismatch.
  [[nodiscard]] ZXDiagram compose(const ZXDiagram& next) const;

  [[nodiscard]] std::string toString() const;

private:
  friend struct ZXDiagramTestAccess; ///< mutation tests corrupt state here

  std::vector<VertexType> types_;
  std::vector<PiRational> phases_;
  /// One byte per vertex, NOT std::vector<bool>: the bit-packed
  /// specialization makes writes to distinct vertices race on shared words,
  /// which would break the region-parallel simplifier's disjoint-write
  /// guarantee.
  std::vector<std::uint8_t> present_;
  std::vector<NeighborList> adj_;
  std::vector<Vertex> inputs_;
  std::vector<Vertex> outputs_;
  /// Atomic: region-parallel rewrites remove vertices concurrently; all
  /// other mutation stays region-disjoint by the simplifier's ownership
  /// guard.
  std::atomic<std::size_t> liveCount_{0};
};

} // namespace veriqc::zx
