/// \file unique_table.hpp
/// \brief Per-level slab node store with an open-addressed unique table.
///
/// One `NodeSlab` owns every node of a single level as structure-of-arrays
/// storage: flat vectors of child handles, edge weights, reference counts and
/// cached child-tuple hashes, addressed by the 24-bit slot of a `NodeIndex`.
/// Canonicity probes walk a dense open-addressed bucket array of
/// `{hash, slot}` pairs (8 bytes per bucket) with linear probing, so a lookup
/// touches packed integers instead of chasing heap pointers.
///
/// Lifecycle:
///  - `lookup` is find-or-insert: it either returns the canonical handle of
///    an existing node with the same child tuple or materialises the tuple in
///    a fresh slot (free-list first, then appended — growth never changes a
///    slot's identity, only the backing vectors' addresses).
///  - `remove` tombstones the node's bucket and returns its slot to the free
///    list (eager release path).
///  - `garbageCollect` sweeps the dense arrays, frees every live slot with a
///    zero reference count and rebuilds the bucket table tombstone-free.
///
/// Because the backing storage is flat vectors, any reference obtained from
/// `children()`/`weights()` is invalidated by the next allocating call
/// (`lookup`); callers that recurse while holding children must copy them to
/// the stack first. Non-allocating walks (ref counting, sweeps, audits) may
/// hold references safely.
#pragma once

#include "dd/node.hpp"
#include "fault/fault.hpp"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

namespace veriqc::dd {

/// Aggregated slab metrics, summed across levels by the package and surfaced
/// in benchmark JSON (`BENCH_dd_kernel.json`) and run reports.
struct NodeStoreStats {
  std::size_t liveNodes = 0;      ///< currently live slots
  std::size_t allocatedSlots = 0; ///< slots ever materialised (monotone)
  std::size_t freeSlots = 0;      ///< slots parked on free lists
  std::size_t slabGrowths = 0;    ///< backing-vector reallocation events
  std::size_t buckets = 0;        ///< open-addressing bucket capacity
  std::uint64_t lookups = 0;      ///< find-or-insert probes
  std::uint64_t probeSteps = 0;   ///< buckets inspected across all lookups
  std::uint64_t hits = 0;         ///< lookups answered by an existing node
  std::uint64_t collisions = 0;   ///< equal folded hash, different node

  [[nodiscard]] double occupancy() const {
    return allocatedSlots == 0
               ? 0.0
               : static_cast<double>(liveNodes) /
                     static_cast<double>(allocatedSlots);
  }
  [[nodiscard]] double meanProbeLength() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(probeSteps) /
                              static_cast<double>(lookups);
  }
  [[nodiscard]] double hitRate() const {
    return lookups == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(lookups);
  }

  NodeStoreStats& operator+=(const NodeStoreStats& other) {
    liveNodes += other.liveNodes;
    allocatedSlots += other.allocatedSlots;
    freeSlots += other.freeSlots;
    slabGrowths += other.slabGrowths;
    buckets += other.buckets;
    lookups += other.lookups;
    probeSteps += other.probeSteps;
    hits += other.hits;
    collisions += other.collisions;
    return *this;
  }
};

template <typename EdgeT> class NodeSlab {
public:
  static constexpr std::size_t Arity = EdgeT::arity;
  using Children = std::array<NodeIndex, Arity>;
  using Weights = std::array<std::complex<double>, Arity>;

  explicit NodeSlab(const Level level) : level_(level) {
    assert(level >= 0);
    buckets_.resize(kInitialBuckets);
    mask_ = kInitialBuckets - 1;
  }

  NodeSlab(const NodeSlab&) = delete;
  NodeSlab& operator=(const NodeSlab&) = delete;
  NodeSlab(NodeSlab&&) noexcept = default;
  NodeSlab& operator=(NodeSlab&&) noexcept = default;

  [[nodiscard]] Level level() const noexcept { return level_; }

  /// Find-or-insert the canonical node for a child tuple; returns its handle.
  NodeIndex lookup(const Children& children, const Weights& weights) {
    ++lookups_;
    const auto hash = foldHash(hashNodeChildren<Arity>(children, weights));
    if ((occupied_ + 1) * 2 > buckets_.size()) {
      rebuildBuckets(buckets_.size() * 2);
    }
    auto idx = hash & mask_;
    auto firstTomb = kNoBucket;
    while (true) {
      ++probeSteps_;
      const auto& bucket = buckets_[idx];
      if (bucket.slot == kEmptySlot) {
        break;
      }
      if (bucket.slot == kTombSlot) {
        if (firstTomb == kNoBucket) {
          firstTomb = idx;
        }
      } else if (bucket.hash == hash) {
        if (children_[bucket.slot] == children &&
            weights_[bucket.slot] == weights) {
          ++hits_;
          return makeNodeIndex(level_, bucket.slot);
        }
        ++collisions_;
      }
      idx = (idx + 1) & mask_;
    }
    const auto slot = allocateSlot(children, weights, hash);
    auto target = idx;
    if (firstTomb != kNoBucket) {
      target = firstTomb;
    } else {
      ++occupied_; // filling a genuinely empty bucket
    }
    buckets_[target] = Bucket{hash, slot};
    return makeNodeIndex(level_, slot);
  }

  /// Eagerly drop a node: tombstone its bucket, recycle its slot.
  void remove(const NodeIndex n) {
    const auto slot = slotOfIndex(n);
    assert(levelOfIndex(n) == level_);
    assert(slot < live_.size() && live_[slot] != 0);
    auto idx = static_cast<std::size_t>(hashes_[slot]) & mask_;
    while (true) {
      auto& bucket = buckets_[idx];
      assert(bucket.slot != kEmptySlot && "node missing from bucket table");
      if (bucket.slot == slot) {
        bucket.slot = kTombSlot;
        break;
      }
      idx = (idx + 1) & mask_;
    }
    freeSlot(slot);
  }

  /// Is this handle's slot currently live? O(1); used by audits to detect
  /// compute-table entries pointing at reclaimed nodes.
  [[nodiscard]] bool contains(const NodeIndex n) const noexcept {
    const auto slot = slotOfIndex(n);
    return levelOfIndex(n) == level_ && slot < live_.size() &&
           live_[slot] != 0;
  }

  /// Sweep the dense arrays: free every live slot with refcount zero, then
  /// rebuild the bucket table tombstone-free. Returns #collected.
  std::size_t garbageCollect() {
    std::size_t collected = 0;
    const auto slots = static_cast<std::uint32_t>(live_.size());
    for (std::uint32_t slot = 0; slot < slots; ++slot) {
      if (live_[slot] != 0 && refs_[slot] == 0) {
        freeSlot(slot);
        ++collected;
      }
    }
    if (collected != 0) {
      rebuildBuckets(buckets_.size());
    }
    return collected;
  }

  /// Visit every live node as (handle, slot).
  template <typename Fn> void forEach(Fn&& fn) const {
    const auto slots = static_cast<std::uint32_t>(live_.size());
    for (std::uint32_t slot = 0; slot < slots; ++slot) {
      if (live_[slot] != 0) {
        fn(makeNodeIndex(level_, slot), slot);
      }
    }
  }

  // Slot accessors. The mutable overloads exist for the package's refcount
  // maintenance and for white-box audit/mutation tests; ordinary DD
  // operations treat stored nodes as immutable.
  [[nodiscard]] const Children& children(const std::uint32_t slot) const {
    assert(slot < children_.size());
    return children_[slot];
  }
  [[nodiscard]] Children& children(const std::uint32_t slot) {
    assert(slot < children_.size());
    return children_[slot];
  }
  [[nodiscard]] const Weights& weights(const std::uint32_t slot) const {
    assert(slot < weights_.size());
    return weights_[slot];
  }
  [[nodiscard]] Weights& weights(const std::uint32_t slot) {
    assert(slot < weights_.size());
    return weights_[slot];
  }
  [[nodiscard]] std::uint32_t ref(const std::uint32_t slot) const {
    assert(slot < refs_.size());
    return refs_[slot];
  }
  [[nodiscard]] std::uint32_t& ref(const std::uint32_t slot) {
    assert(slot < refs_.size());
    return refs_[slot];
  }
  /// Folded child-tuple hash cached at insert time; audits recompute and
  /// compare to expose in-place child mutations ("misplaced" nodes).
  [[nodiscard]] std::uint32_t storedHash(const std::uint32_t slot) const {
    assert(slot < hashes_.size());
    return hashes_[slot];
  }

  [[nodiscard]] static std::uint32_t foldHash(const std::size_t hash) noexcept {
    return static_cast<std::uint32_t>(hash ^ (hash >> 32U));
  }

  [[nodiscard]] std::size_t size() const noexcept { return liveCount_; }

  [[nodiscard]] NodeStoreStats stats() const {
    NodeStoreStats s;
    s.liveNodes = liveCount_;
    s.allocatedSlots = children_.size();
    s.freeSlots = freeList_.size();
    s.slabGrowths = growths_;
    s.buckets = buckets_.size();
    s.lookups = lookups_;
    s.probeSteps = probeSteps_;
    s.hits = hits_;
    s.collisions = collisions_;
    return s;
  }

private:
  struct Bucket {
    std::uint32_t hash = 0;
    std::uint32_t slot = kEmptySlot;
  };

  static constexpr std::uint32_t kEmptySlot = 0xFFFFFFFFU;
  static constexpr std::uint32_t kTombSlot = 0xFFFFFFFEU;
  static constexpr std::size_t kNoBucket = ~std::size_t{0};
  static constexpr std::size_t kInitialBuckets = 64;

  std::uint32_t allocateSlot(const Children& children, const Weights& weights,
                             const std::uint32_t hash) {
    std::uint32_t slot = 0;
    if (!freeList_.empty()) {
      slot = freeList_.back();
      freeList_.pop_back();
    } else {
      if (children_.size() >= kMaxSlotsPerLevel) {
        throw std::length_error(
            "dd: node slab exceeded 2^24 slots on one level");
      }
      if (children_.size() == children_.capacity()) {
        ++growths_;
        // Injection point for the growth reallocation about to happen: fires
        // before any vector mutates, so a simulated allocation failure leaves
        // the slab exactly as it was.
        VERIQC_FAULT_POINT(fault::points::kDDSlabGrow,
                           fault::FaultKind::BadAlloc);
      }
      slot = static_cast<std::uint32_t>(children_.size());
      children_.emplace_back();
      weights_.emplace_back();
      refs_.push_back(0);
      hashes_.push_back(0);
      live_.push_back(0);
    }
    children_[slot] = children;
    weights_[slot] = weights;
    refs_[slot] = 0;
    hashes_[slot] = hash;
    live_[slot] = 1;
    ++liveCount_;
    return slot;
  }

  void freeSlot(const std::uint32_t slot) {
    live_[slot] = 0;
    refs_[slot] = 0;
    freeList_.push_back(slot);
    --liveCount_;
  }

  /// Strong exception safety: the new bucket array is fully built on the
  /// side and committed with noexcept moves, so a growth rebuild that fails
  /// to allocate (for real or via the injection point) leaves the old,
  /// still-consistent table in place. (After garbageCollect's frees a failed
  /// rebuild still poisons the slab — its buckets reference freed slots —
  /// but that path only unwinds into an engine abort, never a reuse.)
  void rebuildBuckets(std::size_t targetBuckets) {
    VERIQC_FAULT_POINT(fault::points::kDDUniqueRebuild,
                       fault::FaultKind::BadAlloc);
    while (targetBuckets < (liveCount_ + 1) * 2) {
      targetBuckets *= 2;
    }
    std::vector<Bucket> fresh(targetBuckets);
    const std::size_t mask = targetBuckets - 1;
    std::size_t occupied = 0;
    const auto slots = static_cast<std::uint32_t>(live_.size());
    for (std::uint32_t slot = 0; slot < slots; ++slot) {
      if (live_[slot] == 0) {
        continue;
      }
      auto idx = static_cast<std::size_t>(hashes_[slot]) & mask;
      while (fresh[idx].slot != kEmptySlot) {
        idx = (idx + 1) & mask;
      }
      fresh[idx] = Bucket{hashes_[slot], slot};
      ++occupied;
    }
    buckets_ = std::move(fresh);
    mask_ = mask;
    occupied_ = occupied;
  }

  Level level_;
  std::vector<Children> children_;
  std::vector<Weights> weights_;
  std::vector<std::uint32_t> refs_;
  std::vector<std::uint32_t> hashes_;
  std::vector<std::uint8_t> live_;
  std::vector<std::uint32_t> freeList_;
  std::vector<Bucket> buckets_;
  std::size_t mask_ = 0;
  std::size_t occupied_ = 0; ///< non-empty buckets (live + tombstones)
  std::size_t liveCount_ = 0;
  std::size_t growths_ = 0;
  std::uint64_t lookups_ = 0;
  std::uint64_t probeSteps_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t collisions_ = 0;
};

} // namespace veriqc::dd
