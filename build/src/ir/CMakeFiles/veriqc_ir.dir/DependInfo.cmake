
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/circuit.cpp" "src/ir/CMakeFiles/veriqc_ir.dir/circuit.cpp.o" "gcc" "src/ir/CMakeFiles/veriqc_ir.dir/circuit.cpp.o.d"
  "/root/repo/src/ir/gate_matrix.cpp" "src/ir/CMakeFiles/veriqc_ir.dir/gate_matrix.cpp.o" "gcc" "src/ir/CMakeFiles/veriqc_ir.dir/gate_matrix.cpp.o.d"
  "/root/repo/src/ir/op_type.cpp" "src/ir/CMakeFiles/veriqc_ir.dir/op_type.cpp.o" "gcc" "src/ir/CMakeFiles/veriqc_ir.dir/op_type.cpp.o.d"
  "/root/repo/src/ir/operation.cpp" "src/ir/CMakeFiles/veriqc_ir.dir/operation.cpp.o" "gcc" "src/ir/CMakeFiles/veriqc_ir.dir/operation.cpp.o.d"
  "/root/repo/src/ir/permutation.cpp" "src/ir/CMakeFiles/veriqc_ir.dir/permutation.cpp.o" "gcc" "src/ir/CMakeFiles/veriqc_ir.dir/permutation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
