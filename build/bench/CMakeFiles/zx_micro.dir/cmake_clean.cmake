file(REMOVE_RECURSE
  "CMakeFiles/zx_micro.dir/zx_micro.cpp.o"
  "CMakeFiles/zx_micro.dir/zx_micro.cpp.o.d"
  "zx_micro"
  "zx_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zx_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
