#include "compile/mapper.hpp"

#include "compile/decompose.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

namespace veriqc::compile {

namespace {

/// Interaction-weighted BFS placement: the busiest logical qubits go to the
/// best-connected region of the device.
std::vector<Qubit> placeLogicalQubits(const QuantumCircuit& circuit,
                                      const Architecture& arch,
                                      const MapperOptions& options) {
  const auto n = circuit.numQubits();
  std::vector<Qubit> log2phys(n);
  if (options.placement == MapperOptions::Placement::Trivial) {
    std::iota(log2phys.begin(), log2phys.end(), 0U);
    return log2phys;
  }
  // Logical interaction degree.
  std::vector<std::size_t> weight(n, 0);
  for (const auto& op : circuit.ops()) {
    if (op.isNonUnitary()) {
      continue;
    }
    const auto used = op.usedQubits();
    if (used.size() == 2) {
      ++weight[used[0]];
      ++weight[used[1]];
    }
  }
  std::vector<Qubit> logicalOrder(n);
  std::iota(logicalOrder.begin(), logicalOrder.end(), 0U);
  std::stable_sort(logicalOrder.begin(), logicalOrder.end(),
                   [&weight](const Qubit a, const Qubit b) {
                     return weight[a] > weight[b];
                   });
  // BFS over the device from its best-connected qubit.
  Qubit start = 0;
  std::size_t bestDegree = 0;
  for (Qubit q = 0; q < arch.numQubits(); ++q) {
    if (arch.neighbors(q).size() > bestDegree) {
      bestDegree = arch.neighbors(q).size();
      start = q;
    }
  }
  std::vector<Qubit> bfsOrder;
  std::vector<bool> seen(arch.numQubits(), false);
  std::deque<Qubit> queue{start};
  seen[start] = true;
  while (!queue.empty()) {
    const Qubit cur = queue.front();
    queue.pop_front();
    bfsOrder.push_back(cur);
    for (const Qubit next : arch.neighbors(cur)) {
      if (!seen[next]) {
        seen[next] = true;
        queue.push_back(next);
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    log2phys[logicalOrder[i]] = bfsOrder[i];
  }
  return log2phys;
}

} // namespace

QuantumCircuit mapCircuit(const QuantumCircuit& circuit,
                          const Architecture& arch,
                          const MapperOptions& options,
                          ExpansionCounts* counts) {
  if (!circuit.initialLayout().isIdentity() ||
      !circuit.outputPermutation().isIdentity()) {
    throw CircuitError("mapCircuit: fold permutations before mapping");
  }
  const auto n = circuit.numQubits();
  const auto N = arch.numQubits();
  if (n > N) {
    throw CircuitError("mapCircuit: circuit does not fit the architecture");
  }
  if (!arch.isConnected()) {
    throw CircuitError("mapCircuit: architecture is not connected");
  }

  // log2phys over ALL N logical ids: ids n..N-1 are fresh idle qubits filling
  // the remaining physical slots.
  const auto placed = placeLogicalQubits(circuit, arch, options);
  std::vector<Qubit> log2phys(N);
  std::vector<Qubit> phys2log(N, N);
  for (Qubit l = 0; l < n; ++l) {
    log2phys[l] = placed[l];
    phys2log[placed[l]] = l;
  }
  Qubit nextIdle = static_cast<Qubit>(n);
  for (Qubit p = 0; p < N; ++p) {
    if (phys2log[p] == N) {
      phys2log[p] = nextIdle;
      log2phys[nextIdle] = p;
      ++nextIdle;
    }
  }

  QuantumCircuit result(N, circuit.name() + "_" + arch.name());
  result.setGlobalPhase(circuit.globalPhase());
  result.initialLayout() = Permutation{phys2log};

  const auto applySwap = [&](const Qubit pa, const Qubit pb) {
    result.swap(pa, pb);
    const Qubit la = phys2log[pa];
    const Qubit lb = phys2log[pb];
    std::swap(phys2log[pa], phys2log[pb]);
    std::swap(log2phys[la], log2phys[lb]);
  };

  for (const auto& op : circuit.ops()) {
    const auto before = result.size();
    const auto record = [&] {
      if (counts != nullptr) {
        counts->push_back(result.size() - before);
      }
    };
    if (op.type == OpType::Barrier) {
      result.barrier();
      record();
      continue;
    }
    if (op.type == OpType::Measure) {
      record();
      continue; // terminal measurement is re-derived from the permutation
    }
    const auto used = op.usedQubits();
    if (used.size() == 1) {
      Operation mapped = op;
      for (auto& q : mapped.controls) {
        q = log2phys[q];
      }
      for (auto& q : mapped.targets) {
        q = log2phys[q];
      }
      result.append(std::move(mapped));
      record();
      continue;
    }
    if (used.size() != 2 || op.type != OpType::X || op.controls.size() != 1) {
      throw CircuitError("mapCircuit: expected {1q, CX} input, got " +
                         op.toString());
    }
    Qubit pc = log2phys[op.controls[0]];
    const Qubit pt = log2phys[op.targets[0]];
    if (!arch.adjacent(pc, pt)) {
      const auto path = arch.shortestPath(pc, pt);
      // Move the control along the path until adjacent to the target.
      for (std::size_t i = 0; i + 2 < path.size(); ++i) {
        applySwap(path[i], path[i + 1]);
      }
      pc = path[path.size() - 2];
    }
    result.cx(pc, pt);
    record();
  }
  result.outputPermutation() = Permutation{phys2log};
  return result;
}

namespace {
/// Fold stage-2 per-op counts over the stage-1 expansion: the i-th input op
/// expanded into counts1[i] intermediate ops, each of which expanded into
/// some counts2 entries.
ExpansionCounts foldCounts(const ExpansionCounts& counts1,
                           const ExpansionCounts& counts2) {
  ExpansionCounts result;
  result.reserve(counts1.size());
  std::size_t cursor = 0;
  for (const auto produced : counts1) {
    std::size_t total = 0;
    for (std::size_t i = 0; i < produced; ++i) {
      total += counts2.at(cursor++);
    }
    result.push_back(total);
  }
  return result;
}
} // namespace

QuantumCircuit compileForArchitecture(const QuantumCircuit& circuit,
                                      const Architecture& arch,
                                      const MapperOptions& options,
                                      ExpansionCounts* counts) {
  const auto folded = circuit.withExplicitPermutations();
  ExpansionCounts stage1;
  const auto decomposed =
      decomposeToCnot(folded, /*decomposeSwaps=*/true,
                      counts != nullptr ? &stage1 : nullptr);
  ExpansionCounts stage2;
  const auto mapped = mapCircuit(decomposed, arch, options,
                                 counts != nullptr ? &stage2 : nullptr);
  ExpansionCounts stage3;
  auto compiled = decomposeToCnot(mapped, /*decomposeSwaps=*/true,
                                  counts != nullptr ? &stage3 : nullptr);
  compiled.setName(circuit.name() + "_compiled");
  if (counts != nullptr) {
    const auto viaMapping = foldCounts(stage1, foldCounts(stage2, stage3));
    // Drop the leading entries for the explicit-permutation prefix SWAPs so
    // counts align with the caller's original gate list; fold the prefix and
    // suffix into the first/last original gate instead.
    const std::size_t prefix = folded.size() - circuit.size();
    *counts = viaMapping;
    if (prefix > 0 && !viaMapping.empty()) {
      // initial-layout SWAPs come first, output-permutation SWAPs last.
      const std::size_t pre = circuit.initialLayout().transpositions().size();
      ExpansionCounts adjusted;
      std::size_t bulk = 0;
      for (std::size_t i = 0; i < pre; ++i) {
        bulk += viaMapping.at(i);
      }
      for (std::size_t i = pre; i < pre + circuit.size(); ++i) {
        adjusted.push_back(viaMapping.at(i));
      }
      for (std::size_t i = pre + circuit.size(); i < viaMapping.size(); ++i) {
        if (!adjusted.empty()) {
          adjusted.back() += viaMapping.at(i);
        }
      }
      if (!adjusted.empty()) {
        adjusted.front() += bulk;
      }
      *counts = std::move(adjusted);
    }
  }
  return compiled;
}

} // namespace veriqc::compile
