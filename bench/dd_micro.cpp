/// \file dd_micro.cpp
/// \brief Google-benchmark microbenchmarks of the decision-diagram package.
#include "check/dd_checkers.hpp"
#include "circuits/benchmarks.hpp"
#include "compile/architecture.hpp"
#include "compile/mapper.hpp"
#include "dd/package.hpp"
#include "sim/dd_simulator.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string_view>
#include <thread>

namespace {

using namespace veriqc;

/// Attach the slab node-store metrics as benchmark counters: slab growth
/// events, slot occupancy and the mean unique-table probe length are the
/// quantities the index-based store is supposed to improve.
void reportNodeStoreCounters(benchmark::State& state,
                             const dd::PackageStats& stats) {
  const auto store = stats.storeTotal();
  state.counters["store_slab_growths"] =
      static_cast<double>(store.slabGrowths);
  state.counters["store_allocated_slots"] =
      static_cast<double>(store.allocatedSlots);
  state.counters["store_occupancy"] = store.occupancy();
  state.counters["store_probe_length"] = store.meanProbeLength();
  state.counters["store_hit_rate"] = store.hitRate();
}

/// Attach the package's cache hit rates as benchmark counters.
void reportCacheCounters(benchmark::State& state, const dd::Package& package) {
  const auto stats = package.stats();
  state.counters["gate_cache_hit_rate"] = stats.gateCache.hitRate();
  const auto compute = stats.computeTotal();
  state.counters["compute_hit_rate"] = compute.hitRate();
  state.counters["compute_collisions"] =
      static_cast<double>(compute.collisions);
  reportNodeStoreCounters(state, stats);
}

void BM_MakeGateDD(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dd::Package package(n);
  const auto matrix = gateMatrix(OpType::H, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        package.makeGateDD(matrix, {}, static_cast<Qubit>(n / 2)));
  }
  reportCacheCounters(state, package);
}
BENCHMARK(BM_MakeGateDD)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_MakeControlledGateDD(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dd::Package package(n);
  const auto matrix = gateMatrix(OpType::X, {});
  const std::vector<Qubit> controls{0, 1, 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        package.makeGateDD(matrix, controls, static_cast<Qubit>(n - 1)));
  }
  reportCacheCounters(state, package);
}
BENCHMARK(BM_MakeControlledGateDD)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_BuildUnitaryGhz(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto circuit = circuits::ghz(n);
  dd::PackageStats stats;
  for (auto _ : state) {
    dd::Package package(n);
    auto e = sim::buildUnitaryDD(package, circuit);
    benchmark::DoNotOptimize(e);
    stats = package.stats();
    package.decRef(e);
  }
  state.counters["gate_cache_hit_rate"] = stats.gateCache.hitRate();
  reportNodeStoreCounters(state, stats);
}
BENCHMARK(BM_BuildUnitaryGhz)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_BuildUnitaryQft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto circuit = circuits::qft(n);
  dd::PackageStats stats;
  for (auto _ : state) {
    dd::Package package(n);
    auto e = sim::buildUnitaryDD(package, circuit);
    benchmark::DoNotOptimize(e);
    stats = package.stats();
    package.decRef(e);
  }
  state.counters["gate_cache_hit_rate"] = stats.gateCache.hitRate();
  reportNodeStoreCounters(state, stats);
}
// Full QFT matrix DDs grow steeply with n (the construction
// infeasibility the alternating checker avoids) — keep sizes small.
BENCHMARK(BM_BuildUnitaryQft)->Arg(4)->Arg(6)->Arg(8);

void BM_MultiplySelf(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dd::Package package(n);
  auto e = sim::buildUnitaryDD(package, circuits::qft(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(package.multiply(e, e));
    package.garbageCollect();
  }
  package.decRef(e);
}
BENCHMARK(BM_MultiplySelf)->Arg(4)->Arg(6);

void BM_Trace(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dd::Package package(n);
  auto e = sim::buildUnitaryDD(package, circuits::qft(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(package.trace(e));
  }
  package.decRef(e);
}
BENCHMARK(BM_Trace)->Arg(4)->Arg(6)->Arg(8);

void BM_SimulateGrover(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto circuit = circuits::grover(n, 3);
  for (auto _ : state) {
    dd::Package package(n);
    auto result = sim::simulate(package, circuit, package.makeZeroState());
    benchmark::DoNotOptimize(result);
    package.decRef(result);
  }
}
BENCHMARK(BM_SimulateGrover)->Arg(4)->Arg(6);

/// Table-1-style repeated-gate workload: Grover iterations repeat the same
/// oracle/diffusion gates over and over, so the gate-DD cache carries the
/// construction.
void BM_BuildUnitaryGroverRepeated(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto circuit = circuits::grover(n, 3);
  double hitRate = 0.0;
  for (auto _ : state) {
    dd::Package package(n);
    auto e = sim::buildUnitaryDD(package, circuit);
    benchmark::DoNotOptimize(e);
    hitRate = package.stats().gateCache.hitRate();
    package.decRef(e);
  }
  state.counters["gate_cache_hit_rate"] = hitRate;
}
BENCHMARK(BM_BuildUnitaryGroverRepeated)->Arg(4)->Arg(6);

/// Random-stimuli equivalence check: sequential (1 worker) vs. a small
/// thread pool. Each worker owns its own package; identical verdicts by
/// construction (per-stimulus-index seeding).
/// End-to-end alternating equivalence check of grover(6, 10) against itself
/// with the proportional oracle — the DD-kernel-bound workload the release
/// perf-regression gate tracks (unique-table probes, compute-table traffic
/// and GC sweeps all on the hot path).
void BM_AlternatingGroverCheck(benchmark::State& state) {
  const auto circuit = circuits::grover(6, 10);
  check::Configuration config;
  config.oracle = check::OracleStrategy::Proportional;
  for (auto _ : state) {
    const auto result = check::ddAlternatingCheck(circuit, circuit, config);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_AlternatingGroverCheck)->Unit(benchmark::kMillisecond);

/// Thread scaling of the sharded alternating checker on grover(6, 10):
/// checkThreads > 1 splits both gate sequences into per-slot chunks whose
/// partial products are built in private DD packages and then
/// interleave-combined. The 8-vs-1 real-time ratio is the headline number
/// BENCH_parallel.json records (flat on single-core substrates — the JSON is
/// stamped with the host's hardware concurrency so ratios are interpreted
/// against what the machine can actually deliver). Verdicts are identical
/// at every slot count by construction.
void BM_ShardedAlternatingGroverCheck(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const auto circuit = circuits::grover(6, 10);
  check::Configuration config;
  config.oracle = check::OracleStrategy::Proportional;
  config.checkThreads = threads;
  for (auto _ : state) {
    const auto result = check::ddAlternatingCheck(circuit, circuit, config);
    benchmark::DoNotOptimize(result);
  }
  state.counters["hardware_concurrency"] =
      static_cast<double>(std::thread::hardware_concurrency());
}
BENCHMARK(BM_ShardedAlternatingGroverCheck)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/// Thread scaling of the sharded compilation-flow check on a 64-qubit GHZ
/// preparation compiled to the heavy-hex architecture — the wide-circuit
/// counterpart of the Grover workload above (few gates per qubit, large
/// permutation state per shard snapshot).
void BM_ShardedCompiledFlowCheck(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const auto original = circuits::ghz(64);
  compile::ExpansionCounts counts;
  const auto compiled = compile::compileForArchitecture(
      original, compile::Architecture::ibmManhattanLike(), {}, &counts);
  check::Configuration config;
  config.checkThreads = threads;
  for (auto _ : state) {
    const auto result =
        check::ddCompilationFlowCheck(original, compiled, counts, config);
    benchmark::DoNotOptimize(result);
  }
  state.counters["hardware_concurrency"] =
      static_cast<double>(std::thread::hardware_concurrency());
}
BENCHMARK(BM_ShardedCompiledFlowCheck)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_SimulationCheckThreads(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const auto circuit = circuits::grover(5, 3);
  check::Configuration config;
  config.simulationRuns = 16;
  config.simulationThreads = threads;
  config.stimuliKind = sim::StimuliKind::LocalQuantum;
  std::size_t performed = 0;
  for (auto _ : state) {
    const auto result = check::ddSimulationCheck(circuit, circuit, config);
    benchmark::DoNotOptimize(result);
    performed = result.performedSimulations;
  }
  state.counters["performed"] = static_cast<double>(performed);
}
BENCHMARK(BM_SimulationCheckThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/// Build type the DD library was compiled as. VERIQC_BUILD_TYPE carries the
/// configured CMAKE_BUILD_TYPE; NDEBUG distinguishes a real optimized build
/// from a debug one when the cache variable lies (e.g. a stale build tree).
const char* libraryBuildType() {
#ifdef NDEBUG
#ifdef VERIQC_BUILD_TYPE
  return VERIQC_BUILD_TYPE;
#else
  return "Release";
#endif
#else
  return "Debug";
#endif
}

} // namespace

int main(int argc, char** argv) {
  // `--veriqc_build_type` prints the library build type and exits, so the
  // bench driver can stamp it into the JSON and refuse non-Release numbers.
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--veriqc_build_type") {
      std::printf("%s\n", libraryBuildType());
      return 0;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
