#include "check/result.hpp"

#include <iomanip>
#include <sstream>

namespace veriqc::check {

std::string toString(const EquivalenceCriterion criterion) {
  switch (criterion) {
  case EquivalenceCriterion::Equivalent:
    return "equivalent";
  case EquivalenceCriterion::EquivalentUpToGlobalPhase:
    return "equivalent up to global phase";
  case EquivalenceCriterion::NotEquivalent:
    return "not equivalent";
  case EquivalenceCriterion::ProbablyEquivalent:
    return "probably equivalent";
  case EquivalenceCriterion::NoInformation:
    return "no information";
  case EquivalenceCriterion::Timeout:
    return "timeout";
  case EquivalenceCriterion::Cancelled:
    return "cancelled";
  case EquivalenceCriterion::ResourceExhausted:
    return "resource exhausted";
  case EquivalenceCriterion::EngineError:
    return "engine error";
  case EquivalenceCriterion::NotRun:
    return "not run";
  }
  return "unknown";
}

std::string toString(const OracleStrategy strategy) {
  switch (strategy) {
  case OracleStrategy::Naive:
    return "naive";
  case OracleStrategy::Proportional:
    return "proportional";
  case OracleStrategy::Lookahead:
    return "lookahead";
  }
  return "unknown";
}

std::string Result::zxRuleDigest() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& rule : zxRuleStats) {
    if (!first) {
      os << "; ";
    }
    first = false;
    os << rule.rule << " r" << rule.rewrites << "/m" << rule.matches << "/c"
       << rule.candidates << " " << std::fixed << std::setprecision(2)
       << rule.seconds * 1e3 << "ms";
  }
  return os.str();
}

std::string Result::toString() const {
  std::ostringstream os;
  os << veriqc::check::toString(criterion) << " [" << method << ", "
     << runtimeSeconds << " s";
  if (performedSimulations > 0) {
    os << ", " << performedSimulations << " simulations";
  }
  if (hilbertSchmidtFidelity >= 0.0) {
    os << ", HS fidelity " << hilbertSchmidtFidelity;
  }
  if (counterexampleStimulus >= 0) {
    os << ", counterexample stimulus #" << counterexampleStimulus;
  }
  if (rewrites > 0) {
    os << ", " << rewrites << " rewrites";
  }
  if (!zxRuleStats.empty()) {
    os << ", zx rules {" << zxRuleDigest() << "}";
  }
  if (computeCacheStats.lookups > 0) {
    os << ", compute-cache hit rate " << computeCacheStats.hitRate();
  }
  if (gateCacheStats.lookups > 0) {
    os << ", gate-cache hit rate " << gateCacheStats.hitRate();
  }
  if (!errorMessage.empty()) {
    os << ", error: " << errorMessage;
  }
  if (!resourceLimitedEngines.empty()) {
    os << ", resource-limited engines:";
    for (const auto& engine : resourceLimitedEngines) {
      os << " " << engine;
    }
  }
  os << "]";
  return os.str();
}

} // namespace veriqc::check
