/// Tests of the slab node store underneath the DD package: handle stability
/// across growth, deterministic reclamation, the signed-zero weight-hash
/// regression, and a refcount-sweep-vs-reachability cross check on random
/// Clifford+T workloads.
#include "circuits/benchmarks.hpp"
#include "dd/package.hpp"
#include "dd/unique_table.hpp"
#include "sim/dd_simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace veriqc::dd {
namespace {

NodeSlab<mEdge>::Children terminalChildren() {
  return {kTerminalIndex, kTerminalIndex, kTerminalIndex, kTerminalIndex};
}

NodeSlab<mEdge>::Weights diagonalWeights(const double a, const double d) {
  return {{{a, 0.0}, {0.0, 0.0}, {0.0, 0.0}, {d, 0.0}}};
}

// --- hashWeight signed-zero regression --------------------------------------

TEST(HashWeightTest, NegativeZeroHashesLikePositiveZero) {
  // -0.0 == +0.0, so tuples differing only in the zero's sign compare equal;
  // before normalization their hashes differed and the unique table could
  // materialise duplicate "canonical" nodes.
  EXPECT_EQ(hashWeight({-0.0, 0.0}), hashWeight({0.0, 0.0}));
  EXPECT_EQ(hashWeight({0.0, -0.0}), hashWeight({0.0, 0.0}));
  EXPECT_EQ(hashWeight({-0.0, -0.0}), hashWeight({0.0, 0.0}));
  // Nonzero components are untouched.
  EXPECT_NE(hashWeight({1.0, 0.0}), hashWeight({-1.0, 0.0}));
}

TEST(HashWeightTest, SlabDeduplicatesAcrossSignedZero) {
  NodeSlab<mEdge> slab(0);
  const auto a = slab.lookup(terminalChildren(), diagonalWeights(1.0, 0.0));
  const auto b =
      slab.lookup(terminalChildren(),
                  {{{1.0, 0.0}, {-0.0, 0.0}, {0.0, -0.0}, {-0.0, -0.0}}});
  EXPECT_EQ(a, b) << "signed zero must not split a canonical node";
  EXPECT_EQ(slab.size(), 1U);
}

// --- handle stability across slab growth ------------------------------------

TEST(NodeStoreTest, HandlesAndPayloadsSurviveSlabGrowth) {
  NodeSlab<mEdge> slab(3);
  const auto early = slab.lookup(terminalChildren(), diagonalWeights(1.0, 0.5));
  const auto earlySlot = slotOfIndex(early);
  // Force many reallocations of the backing vectors.
  std::vector<NodeIndex> all;
  for (int i = 1; i <= 20000; ++i) {
    all.push_back(slab.lookup(
        terminalChildren(), diagonalWeights(1.0, 1.0 / (i + 1))));
  }
  EXPECT_GT(slab.stats().slabGrowths, 3U);
  // The early handle still names the same slot with the same payload.
  ASSERT_TRUE(slab.contains(early));
  EXPECT_EQ(slab.weights(earlySlot)[3], (std::complex<double>{0.5, 0.0}));
  // And a fresh lookup of the same tuple still deduplicates onto it.
  EXPECT_EQ(slab.lookup(terminalChildren(), diagonalWeights(1.0, 0.5)), early);
  // All handles are distinct.
  std::set<NodeIndex> unique(all.begin(), all.end());
  EXPECT_EQ(unique.size(), all.size());
}

// --- deterministic GC sweep + free-list reuse --------------------------------

TEST(NodeStoreTest, GcSweepAndFreeListReuseAreDeterministic) {
  NodeSlab<mEdge> slab(0);
  constexpr int kNodes = 64;
  std::vector<NodeIndex> nodes;
  for (int i = 0; i < kNodes; ++i) {
    nodes.push_back(
        slab.lookup(terminalChildren(), diagonalWeights(1.0, 0.01 * (i + 1))));
  }
  // Pin every even slot; odd slots are garbage.
  for (int i = 0; i < kNodes; i += 2) {
    slab.ref(slotOfIndex(nodes[static_cast<std::size_t>(i)])) = 1;
  }
  EXPECT_EQ(slab.garbageCollect(), static_cast<std::size_t>(kNodes / 2));
  for (int i = 0; i < kNodes; ++i) {
    EXPECT_EQ(slab.contains(nodes[static_cast<std::size_t>(i)]), i % 2 == 0)
        << i;
  }
  // The sweep frees slots in ascending order and allocation pops the free
  // list LIFO, so new nodes fill the highest freed slot first — exactly
  // reproducible run to run.
  const auto reused1 =
      slab.lookup(terminalChildren(), diagonalWeights(1.0, 0.75));
  const auto reused2 =
      slab.lookup(terminalChildren(), diagonalWeights(1.0, 0.85));
  EXPECT_EQ(slotOfIndex(reused1), 63U);
  EXPECT_EQ(slotOfIndex(reused2), 61U);
  EXPECT_EQ(slab.stats().allocatedSlots, static_cast<std::size_t>(kNodes));
}

TEST(NodeStoreTest, RemovedNodesAreUnfindableUntilReinserted) {
  NodeSlab<mEdge> slab(0);
  const auto weights = diagonalWeights(1.0, 0.25);
  const auto a = slab.lookup(terminalChildren(), weights);
  slab.remove(a);
  // The tombstoned bucket must not satisfy a lookup; the tuple is rebuilt in
  // the recycled slot as a *new* live node.
  const auto b = slab.lookup(terminalChildren(), weights);
  EXPECT_EQ(slotOfIndex(b), slotOfIndex(a));
  EXPECT_TRUE(slab.contains(b));
  EXPECT_EQ(slab.stats().hits, 0U);
}

// --- refcount sweep vs. independent reachability ----------------------------

/// Every matrix node reachable from `roots` through nonzero edges.
std::set<NodeIndex> reachableMatrixNodes(const Package& p,
                                         const std::vector<mEdge>& roots) {
  std::set<NodeIndex> seen;
  std::vector<NodeIndex> stack;
  for (const auto& root : roots) {
    if (!root.isTerminal() && !root.isZero()) {
      stack.push_back(root.n);
    }
  }
  while (!stack.empty()) {
    const auto n = stack.back();
    stack.pop_back();
    if (!seen.insert(n).second) {
      continue;
    }
    for (std::size_t i = 0; i < mEdge::arity; ++i) {
      const auto child = p.matrixChild(n, i);
      if (!child.isTerminal() && !child.isZero()) {
        stack.push_back(child.n);
      }
    }
  }
  return seen;
}

TEST(NodeStoreTest, GcSurvivorsMatchReachabilityOnCliffordT) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Package p(5);
    auto e = sim::buildUnitaryDD(
        p, circuits::randomCliffordT(5, 40, 0.3, seed));
    // Independent ground truth: reachability from every externally and
    // internally pinned root (buildUnitaryDD incRef'ed e; the package pins
    // its identity chain and cached gate DDs).
    auto roots = p.internalMatrixRoots();
    roots.push_back(e);
    const auto expected = reachableMatrixNodes(p, roots);

    (void)p.garbageCollect(true);

    std::set<NodeIndex> survivors;
    for (const auto& slab : p.matrixSlabs()) {
      slab.forEach([&](const NodeIndex node, std::uint32_t /*slot*/) {
        survivors.insert(node);
      });
    }
    EXPECT_EQ(survivors, expected) << "seed " << seed;
    p.decRef(e);
  }
}

TEST(NodeStoreTest, PackageSurvivesInterleavedReleaseGrowthAndGc) {
  // Stress the slot-recycling paths end to end: grow, release losers
  // eagerly, collect, and keep verifying a structural equivalence query.
  Package p(4);
  auto acc = p.makeIdent();
  p.incRef(acc);
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto u = sim::buildUnitaryDD(p, circuits::randomCliffordT(4, 25, 0.2,
                                                              seed));
    auto loser = p.multiply(u, acc);
    (void)p.release(loser);
    const auto ct = p.conjugateTranspose(u);
    const auto next = p.multiply(ct, p.multiply(u, acc));
    p.incRef(next);
    p.decRef(acc);
    acc = next;
    p.decRef(u);
    (void)p.garbageCollect(true);
  }
  // acc accumulated U^dagger U six times — it must still be the identity.
  EXPECT_TRUE(p.isIdentity(acc, true));
  p.decRef(acc);
}

} // namespace
} // namespace veriqc::dd
