/// \file counters.hpp
/// \brief Named counter registry for engine observability.
///
/// Engines feed their kernel statistics (cache hit counts, rewrite totals,
/// node peaks) into a CounterRegistry instead of inventing ad-hoc result
/// fields; the report layer serializes every registry into the `counters`
/// object of `veriqc-report/v1`. Counters are either monotone sums
/// (merged by addition: lookups, rewrites, allocations) or high-water gauges
/// (merged by maximum: peak node counts), fixed by the first feed of a name.
///
/// Threading: CounterRegistry is deliberately unsynchronized. Engines own a
/// private registry each (merged after the join), so locking here would tax
/// the hottest counters for nothing. Registries that *are* shared across
/// threads carry the lock at the sharing site — e.g. JobService::metrics_ is
/// declared `VERIQC_GUARDED_BY(metricsMutex_)`, which lets the thread safety
/// analysis enforce the external-lock contract this class itself cannot.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>

namespace veriqc::obs {

class CounterRegistry {
public:
  enum class Kind : std::uint8_t {
    Sum, ///< merged by addition (monotone counters)
    Max, ///< merged by maximum (high-water gauges)
  };

  struct Counter {
    double value = 0.0;
    Kind kind = Kind::Sum;
  };

  /// Add `delta` to a sum counter (created at 0 on first use).
  void add(const std::string& name, const double delta) {
    auto& counter = counters_[name];
    counter.kind = Kind::Sum;
    counter.value += delta;
  }

  /// Raise a gauge to at least `value` (created on first use).
  void max(const std::string& name, const double value) {
    auto [it, inserted] = counters_.try_emplace(name, Counter{value, Kind::Max});
    if (!inserted) {
      it->second.kind = Kind::Max;
      it->second.value = std::max(it->second.value, value);
    }
  }

  /// Current value; 0 when the counter was never fed.
  [[nodiscard]] double value(const std::string& name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0.0 : it->second.value;
  }

  [[nodiscard]] bool contains(const std::string& name) const {
    return counters_.count(name) > 0;
  }

  /// Fold another registry in, respecting each counter's kind.
  void merge(const CounterRegistry& other) {
    for (const auto& [name, counter] : other.counters_) {
      if (counter.kind == Kind::Max) {
        max(name, counter.value);
      } else {
        add(name, counter.value);
      }
    }
  }

  /// As merge, but with every incoming name prefixed. Used by the report
  /// layer to keep counters of concurrently running engines apart
  /// ("engine:<name>/dd.walks" instead of a flat, indistinguishable sum).
  void merge(const CounterRegistry& other, const std::string& prefix) {
    for (const auto& [name, counter] : other.counters_) {
      if (counter.kind == Kind::Max) {
        max(prefix + name, counter.value);
      } else {
        add(prefix + name, counter.value);
      }
    }
  }

  [[nodiscard]] bool empty() const noexcept { return counters_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return counters_.size(); }

  /// Sorted name -> counter view (std::map keeps serialization stable).
  [[nodiscard]] const std::map<std::string, Counter>& entries() const noexcept {
    return counters_;
  }

private:
  std::map<std::string, Counter> counters_;
};

} // namespace veriqc::obs
