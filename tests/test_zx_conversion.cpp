#include "circuits/benchmarks.hpp"
#include "sim/dense.hpp"
#include "zx/circuit_to_zx.hpp"
#include "zx/tensor.hpp"

#include <gtest/gtest.h>

namespace veriqc::zx {
namespace {

/// Check that the ZX-diagram of a one-gate circuit realizes that gate's
/// matrix up to a scalar.
void expectGateSemantics(const Operation& op, const std::size_t nqubits) {
  QuantumCircuit c(nqubits);
  c.append(op);
  const auto zxMatrix = toMatrix(circuitToZX(c));
  const auto expected = sim::circuitUnitary(c);
  // Non-dyadic angles are snapped to rationals within ~1e-9 per gate.
  EXPECT_TRUE(proportional(zxMatrix, expected, 1e-6)) << op.toString();
}

TEST(ZXConversionTest, SingleQubitGates) {
  for (const auto type :
       {OpType::I, OpType::H, OpType::X, OpType::Y, OpType::Z, OpType::S,
        OpType::Sdg, OpType::T, OpType::Tdg, OpType::SX, OpType::SXdg}) {
    expectGateSemantics(Operation(type, {}, {0}), 1);
  }
}

TEST(ZXConversionTest, RotationGates) {
  for (const double theta : {0.25, -1.1, PI / 8.0, 2.0}) {
    expectGateSemantics(Operation(OpType::RX, {}, {0}, {theta}), 1);
    expectGateSemantics(Operation(OpType::RY, {}, {0}, {theta}), 1);
    expectGateSemantics(Operation(OpType::RZ, {}, {0}, {theta}), 1);
    expectGateSemantics(Operation(OpType::P, {}, {0}, {theta}), 1);
  }
  expectGateSemantics(Operation(OpType::U2, {}, {0}, {0.3, 0.8}), 1);
  expectGateSemantics(Operation(OpType::U3, {}, {0}, {1.1, 0.4, -0.6}), 1);
}

TEST(ZXConversionTest, TwoQubitGates) {
  expectGateSemantics(Operation(OpType::X, {0}, {1}), 2);
  expectGateSemantics(Operation(OpType::X, {1}, {0}), 2);
  expectGateSemantics(Operation(OpType::Z, {0}, {1}), 2);
  expectGateSemantics(Operation(OpType::Y, {0}, {1}), 2);
  expectGateSemantics(Operation(OpType::H, {0}, {1}), 2);
  expectGateSemantics(Operation(OpType::SWAP, {}, {0, 1}), 2);
  for (const double theta : {0.7, -0.4, PI / 4.0}) {
    expectGateSemantics(Operation(OpType::P, {0}, {1}, {theta}), 2);
    expectGateSemantics(Operation(OpType::RZ, {0}, {1}, {theta}), 2);
    expectGateSemantics(Operation(OpType::RX, {0}, {1}, {theta}), 2);
    expectGateSemantics(Operation(OpType::RY, {0}, {1}, {theta}), 2);
  }
  expectGateSemantics(Operation(OpType::S, {0}, {1}), 2);
  expectGateSemantics(Operation(OpType::T, {1}, {0}), 2);
}

TEST(ZXConversionTest, RejectsMultiControlled) {
  QuantumCircuit c(3);
  c.ccx(0, 1, 2);
  EXPECT_THROW((void)circuitToZX(c), CircuitError);
  QuantumCircuit c2(3);
  c2.cswap(0, 1, 2);
  EXPECT_THROW((void)circuitToZX(c2), CircuitError);
}

TEST(ZXConversionTest, RandomCircuitsMatchDense) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    // Restrict to the ZX-supported set: build from the random Clifford+T
    // family plus rotations.
    // Kept small: dense evaluation is exponential in the spider count.
    auto c = circuits::randomCliffordT(3, 2, 0.3, seed);
    c.rz(0, 0.37);
    c.rx(1, -0.92);
    c.swap(0, 2);
    c.cp(1, 2, 0.55);
    const auto m = toMatrix(circuitToZX(c));
    const auto expected = sim::circuitUnitary(c);
    EXPECT_TRUE(proportional(m, expected, 1e-6)) << "seed " << seed;
  }
}

TEST(ZXConversionTest, PermutationsBecomeWireCrossings) {
  // Fig. 6b-style: a circuit with layout and output permutation adds no
  // spiders relative to the plain circuit.
  QuantumCircuit c(3);
  c.initialLayout() = Permutation({1, 2, 0});
  c.outputPermutation() = Permutation({2, 0, 1});
  c.h(0);
  c.swap(0, 2);
  const auto d = circuitToZX(c);
  EXPECT_EQ(d.spiderCount(), 0U); // H is an edge, SWAP a crossing
  const auto m = toMatrix(d);
  const auto expected = sim::circuitUnitary(c);
  EXPECT_TRUE(proportional(m, expected));
}

TEST(ZXConversionTest, GhzDiagramSemantics) {
  // Fig. 6a of the paper.
  const auto d = circuitToZX(circuits::ghz(3));
  EXPECT_TRUE(proportional(toMatrix(d), sim::circuitUnitary(circuits::ghz(3))));
}

} // namespace
} // namespace veriqc::zx
