/// \file ablation_sim.cpp
/// \brief Ablation of simulation-based non-equivalence detection: how many
///        random stimuli of which kind are needed to catch the two error
///        models. Motivates the paper's "16 simulation runs" configuration
///        (Sec. 6.1) and the expectation that "non-equivalence shows within
///        a few simulations" (Sec. 6.2).
#include "table_common.hpp"

#include "check/dd_checkers.hpp"
#include "circuits/benchmarks.hpp"
#include "compile/decompose.hpp"

#include <cstdio>

int main() {
  using namespace veriqc;
  const std::size_t trials = 20;

  std::printf("\nAblation: stimuli kind vs. error detection "
              "(%zu injected-error trials each)\n",
              trials);
  std::printf("%-18s %-14s | %-9s | %12s | %12s\n", "benchmark", "error",
              "stimuli", "detected", "avg #sims");

  std::vector<QuantumCircuit> bases;
  bases.push_back(compile::decomposeToCnot(circuits::grover(4, 11)));
  bases.push_back(compile::decomposeToCnot(circuits::qft(6)));
  bases.push_back(circuits::urfLike(6, 30, 5));

  for (const auto& base : bases) {
    for (const auto kind :
         {bench::ErrorKind::GateMissing, bench::ErrorKind::FlippedCnot}) {
      for (const auto stimuli :
           {sim::StimuliKind::Classical, sim::StimuliKind::LocalQuantum,
            sim::StimuliKind::GlobalQuantum}) {
        std::size_t detected = 0;
        std::size_t totalSims = 0;
        for (std::size_t trial = 0; trial < trials; ++trial) {
          const auto damaged = bench::injectError(base, kind, 31 * trial + 7);
          if (!damaged.has_value()) {
            continue;
          }
          check::Configuration config;
          config.simulationRuns = 16;
          config.stimuliKind = stimuli;
          config.seed = trial;
          const auto result = check::ddSimulationCheck(base, *damaged, config);
          if (result.criterion == check::EquivalenceCriterion::NotEquivalent) {
            ++detected;
            totalSims += result.performedSimulations;
          }
        }
        std::printf("%-18s %-14s | %-9s | %9zu/%zu | %12.2f\n",
                    base.name().c_str(), bench::toString(kind),
                    sim::toString(stimuli).c_str(), detected, trials,
                    detected > 0 ? static_cast<double>(totalSims) /
                                       static_cast<double>(detected)
                                 : 0.0);
        std::fflush(stdout);
      }
    }
  }
  return 0;
}
