/// \file gate_matrix.hpp
/// \brief Dense 2x2 matrices of the single-qubit base gates.
#pragma once

#include "ir/op_type.hpp"
#include "ir/types.hpp"

#include <array>
#include <complex>
#include <span>

namespace veriqc {

/// A 2x2 complex matrix in row-major order: {m00, m01, m10, m11}.
using GateMatrix = std::array<std::complex<double>, 4>;

/// Matrix of a single-qubit base gate type with the given parameters.
/// \throws CircuitError if `type` is not a single-target type or the number
///         of parameters does not match `numParameters(type)`.
[[nodiscard]] GateMatrix gateMatrix(OpType type, std::span<const double> params);

} // namespace veriqc
