/// Deterministic fault-injection coverage: every injection point fires at
/// least once against the cross-paradigm corpus, and firing never crashes,
/// corrupts a structure past its exception-safety contract, or flips a
/// definitive verdict. The degradation-ladder tests then check that the
/// manager converts contained failures back into verdicts.
#include "audit/dd_audit.hpp"
#include "check/manager.hpp"
#include "check/report.hpp"
#include "check/task_pool.hpp"
#include "check/watchdog.hpp"
#include "circuits/benchmarks.hpp"
#include "dd/package.hpp"
#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <new>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

using namespace veriqc;
using namespace veriqc::check;

namespace {

fault::Registry& registry() { return fault::Registry::instance(); }

/// A 1-qubit circuit with `count` distinct RZ angles: each angle interns two
/// fresh reals, so a large ladder overflows the package's real table and
/// walks its growth path (kInitialSlots = 4096, grown at 3/4 load).
QuantumCircuit rzLadder(const std::size_t count) {
  QuantumCircuit c(1);
  for (std::size_t i = 0; i < count; ++i) {
    c.rz(0, 0.1 + 1e-3 * static_cast<double>(i));
  }
  return c;
}

/// Configurations that steer a run through a specific injection point.
Configuration alternatingOnly() {
  Configuration config;
  config.runSimulation = false;
  config.parallel = false;
  return config;
}

} // namespace

// --- fault library -----------------------------------------------------------

TEST(FaultPlanTest, DisarmedPointIsANoOp) {
  auto& point = registry().point("test.noop", fault::FaultKind::Runtime);
  for (int i = 0; i < 100; ++i) {
    point.hit();
  }
  EXPECT_FALSE(point.armed());
  EXPECT_EQ(point.fired(), 0U);
}

TEST(FaultPlanTest, AfterDelaysTheFirstFiring) {
  fault::ScopedPlan plan("test.after:after=3");
  auto& point = registry().point("test.after", fault::FaultKind::Runtime);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NO_THROW(point.hit()) << "hit " << i;
  }
  EXPECT_THROW(point.hit(), fault::FaultInjectedError);
  EXPECT_EQ(point.fired(), 1U);
  EXPECT_EQ(point.suppressed(), 3U);
}

TEST(FaultPlanTest, TimesBoundsTotalFirings) {
  fault::ScopedPlan plan("test.times:times=2");
  auto& point = registry().point("test.times", fault::FaultKind::Runtime);
  std::size_t thrown = 0;
  for (int i = 0; i < 10; ++i) {
    try {
      point.hit();
    } catch (const fault::FaultInjectedError&) {
      ++thrown;
    }
  }
  EXPECT_EQ(thrown, 2U);
  EXPECT_EQ(point.fired(), 2U);
  EXPECT_EQ(point.suppressed(), 8U);
}

TEST(FaultPlanTest, ProbabilityModeIsDeterministicInTheSeed) {
  const auto pattern = [](const std::string& planText) {
    fault::ScopedPlan plan(planText);
    auto& point = registry().point("test.prob", fault::FaultKind::Runtime);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      try {
        point.hit();
        fired.push_back(false);
      } catch (const fault::FaultInjectedError&) {
        fired.push_back(true);
      }
    }
    return fired;
  };
  const auto a = pattern("test.prob:p=0.25:seed=7:times=0");
  const auto b = pattern("test.prob:p=0.25:seed=7:times=0");
  EXPECT_EQ(a, b);
  const auto c = pattern("test.prob:p=0.25:seed=8:times=0");
  EXPECT_NE(a, c);
  const auto firedCount =
      static_cast<std::size_t>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(firedCount, 20U);
  EXPECT_LT(firedCount, 80U);
}

TEST(FaultPlanTest, KindOverrideSelectsTheException) {
  {
    fault::ScopedPlan plan("test.kind:throw=resource_limit");
    EXPECT_THROW(
        registry().point("test.kind", fault::FaultKind::Runtime).hit(),
        ResourceLimitError);
  }
  {
    fault::ScopedPlan plan("test.kind:throw=bad_alloc");
    EXPECT_THROW(registry().point("test.kind", fault::FaultKind::Runtime).hit(),
                 std::bad_alloc);
  }
}

TEST(FaultPlanTest, MalformedPlansAreRejectedUpFront) {
  for (const char* bad :
       {"test.bad:after=x", "test.bad:p=2.0", "test.bad:p=nope",
        ":after=1", "test.bad:unknown=1", "test.bad:throw=segfault"}) {
    EXPECT_THROW(registry().armPlan(bad), std::invalid_argument) << bad;
  }
  // A rejected plan must not leave anything armed.
  EXPECT_FALSE(registry().point("test.bad", fault::FaultKind::Runtime).armed());
}

TEST(FaultPlanTest, ScopedPlanDisarmsOnDestruction) {
  auto& point = registry().point("test.scoped", fault::FaultKind::Runtime);
  {
    fault::ScopedPlan plan("test.scoped");
    EXPECT_TRUE(point.armed());
  }
  EXPECT_FALSE(point.armed());
  EXPECT_NO_THROW(point.hit());
}

TEST(FaultPlanTest, AnyArmedTracksArmAndDisarm) {
  ASSERT_FALSE(registry().anyArmed());
  {
    fault::ScopedPlan plan("test.any_armed");
    EXPECT_TRUE(registry().anyArmed());
  }
  EXPECT_FALSE(registry().anyArmed());
  // disarmAll (the daemon's stale-VERIQC_FAULT guard) clears armed plans too.
  registry().armPlan("test.any_armed:after=5");
  ASSERT_TRUE(registry().anyArmed());
  registry().disarmAll();
  EXPECT_FALSE(registry().anyArmed());
}

// --- injection sweep ---------------------------------------------------------

namespace {

/// One sweep case: a plan arming `point` and a configuration whose run is
/// guaranteed to hit it. The pairs under check are equivalent, so the only
/// *wrong* definitive verdict is NotEquivalent.
struct SweepCase {
  const char* point;
  std::string plan;
  Configuration config;
  QuantumCircuit c1;
  QuantumCircuit c2;
};

std::vector<SweepCase> sweepCases() {
  std::vector<SweepCase> cases;
  const auto rnd = circuits::randomCircuit(6, 160, 11);
  {
    SweepCase c{fault::points::kDDSlabGrow, "dd.slab_grow:times=1",
                alternatingOnly(), rnd, rnd};
    cases.push_back(std::move(c));
  }
  {
    SweepCase c{fault::points::kDDUniqueRebuild, "dd.unique_rebuild:times=1",
                alternatingOnly(), rnd, rnd};
    cases.push_back(std::move(c));
  }
  {
    SweepCase c{fault::points::kDDRealGrow, "dd.real_grow:times=1",
                alternatingOnly(), rzLadder(2500), rzLadder(2500)};
    cases.push_back(std::move(c));
  }
  {
    SweepCase c{fault::points::kDDComputeAlloc, "dd.compute_alloc:times=1",
                alternatingOnly(), circuits::ghz(4), circuits::ghz(4)};
    cases.push_back(std::move(c));
  }
  {
    SweepCase c{fault::points::kDDGc, "dd.gc:after=2:times=1",
                alternatingOnly(), circuits::ghz(4), circuits::ghz(4)};
    cases.push_back(std::move(c));
  }
  {
    // The import point only runs in the sharded combine step.
    auto config = alternatingOnly();
    config.checkThreads = 2;
    SweepCase c{fault::points::kDDImport, "dd.import:times=1",
                std::move(config), circuits::qft(5), circuits::qft(5)};
    cases.push_back(std::move(c));
  }
  {
    Configuration config;
    config.runAlternating = false;
    config.runSimulation = false;
    config.runZX = true;
    config.parallel = false;
    SweepCase c{fault::points::kZXDrain, "zx.drain:times=1", config,
                circuits::qft(4), circuits::qft(4)};
    cases.push_back(std::move(c));
  }
  {
    Configuration config;
    config.runAlternating = false;
    config.runSimulation = false;
    config.runZX = true;
    config.zxParallelRegions = 2;
    config.parallel = false;
    SweepCase c{fault::points::kZXRegionPrepass, "zx.region_prepass:times=1",
                config, circuits::randomCircuit(6, 300, 3),
                circuits::randomCircuit(6, 300, 3)};
    cases.push_back(std::move(c));
  }
  {
    // The manager's parallel engine group starts its tasks through the pool.
    Configuration config;
    config.simulationRuns = 4;
    config.parallel = true;
    SweepCase c{fault::points::kPoolTaskStart, "pool.task_start:times=1",
                config, circuits::ghz(3), circuits::ghz(3)};
    cases.push_back(std::move(c));
  }
  return cases;
}

} // namespace

TEST(FaultSweepTest, EveryEnginePointFiresAndNeverFlipsAVerdict) {
  for (auto& sweep : sweepCases()) {
    SCOPED_TRACE(sweep.point);
    auto config = sweep.config;
    config.faultPlan = sweep.plan;
    const auto result = checkEquivalence(sweep.c1, sweep.c2, config);
    // The point must actually have been walked...
    EXPECT_GE(registry().firedCount(sweep.point), 1U) << sweep.point;
    // ... and at worst cost the verdict, never inverted it: the pairs are
    // equivalent, so NotEquivalent would be a corruption escaping the
    // failure containment.
    EXPECT_NE(result.criterion, EquivalenceCriterion::NotEquivalent)
        << sweep.point;
  }
}

TEST(FaultSweepTest, FiredFaultsAreCountedInTheRunReport) {
  auto config = alternatingOnly();
  config.faultPlan = "dd.gc:after=1:times=1:throw=resource_limit";
  EquivalenceCheckingManager manager(circuits::ghz(3), circuits::ghz(3),
                                     config);
  const auto combined = manager.run();
  EXPECT_EQ(combined.criterion, EquivalenceCriterion::ResourceExhausted);
  EXPECT_TRUE(combined.counters.contains("fault/dd.gc.fired"));
  EXPECT_DOUBLE_EQ(combined.counters.value("fault/dd.gc.fired"), 1.0);
  const auto report = buildRunReport(manager, combined, config);
  EXPECT_TRUE(validateRunReport(report).empty());
  EXPECT_NE(report.at("counters").find("fault/dd.gc.fired"), nullptr);
}

TEST(FaultSweepTest, ReportSerializationFaultLosesOnlyTheReport) {
  Configuration config;
  config.simulationRuns = 2;
  config.runAlternating = false;
  config.parallel = false;
  EquivalenceCheckingManager manager(circuits::ghz(3), circuits::ghz(3),
                                     config);
  const auto combined = manager.run();
  {
    fault::ScopedPlan plan("check.report");
    EXPECT_THROW(buildRunReport(manager, combined, config),
                 fault::FaultInjectedError);
  }
  // The verdict the caller already holds is unaffected, and a disarmed
  // retry produces the report.
  EXPECT_EQ(combined.criterion, EquivalenceCriterion::ProbablyEquivalent);
  const auto report = buildRunReport(manager, combined, config);
  EXPECT_TRUE(validateRunReport(report).empty());
}

// --- degradation ladder ------------------------------------------------------

TEST(DegradationLadderTest, RetryConvertsResourceExhaustedIntoDefinitive) {
  auto config = alternatingOnly();
  config.faultPlan = "dd.gc:after=2:times=1:throw=resource_limit";
  config.engineRetryLimit = 2;
  EquivalenceCheckingManager manager(circuits::ghz(4), circuits::ghz(4),
                                     config);
  const auto combined = manager.run();
  EXPECT_EQ(combined.criterion, EquivalenceCriterion::Equivalent);
  // The lineage shows the failed first attempt and the degraded recovery.
  ASSERT_EQ(manager.engineResults().size(), 1U);
  const auto& slot = manager.engineResults()[0];
  ASSERT_EQ(slot.attempts.size(), 2U);
  EXPECT_EQ(slot.attempts[0].attempt, 0U);
  EXPECT_EQ(slot.attempts[0].degradation, "");
  EXPECT_EQ(slot.attempts[0].criterion, "resource_exhausted");
  EXPECT_EQ(slot.attempts[1].attempt, 1U);
  EXPECT_EQ(slot.attempts[1].degradation, "gc-tight");
  EXPECT_EQ(slot.attempts[1].criterion, "equivalent");
  EXPECT_EQ(slot.degradation, "gc-tight");
  EXPECT_EQ(combined.attempts.size(), 2U);
  // The recovered run is not resource-limited any more.
  EXPECT_TRUE(combined.resourceLimitedEngines.empty());
  // The report carries the lineage and still validates.
  const auto report = buildRunReport(manager, combined, config);
  EXPECT_TRUE(validateRunReport(report).empty());
  EXPECT_NE(report.at("verdict").find("attempts"), nullptr);
}

TEST(DegradationLadderTest, ShardedTaskFaultFallsBackToSingleThread) {
  auto config = alternatingOnly();
  config.checkThreads = 4;
  config.faultPlan = "pool.task_start:times=1";
  config.engineRetryLimit = 1;
  EquivalenceCheckingManager manager(circuits::qft(5), circuits::qft(5),
                                     config);
  const auto combined = manager.run();
  EXPECT_EQ(combined.criterion, EquivalenceCriterion::Equivalent);
  const auto& slot = manager.engineResults()[0];
  ASSERT_EQ(slot.attempts.size(), 2U);
  EXPECT_EQ(slot.attempts[0].criterion, "engine_error");
  EXPECT_EQ(slot.attempts[1].degradation, "single-thread");
  EXPECT_EQ(slot.attempts[1].criterion, "equivalent");
}

TEST(DegradationLadderTest, AlternatingFallsBackToSimulation) {
  auto config = alternatingOnly();
  // gc-tight is already in effect, so the ladder's next rung for a failed
  // alternating slot is the simulation fallback.
  config.aggressiveGC = true;
  config.faultPlan = "dd.slab_grow:times=1";
  config.engineRetryLimit = 2;
  config.simulationRuns = 4;
  config.runSimulation = false; // the fallback must come from the ladder
  EquivalenceCheckingManager manager(circuits::ghz(3), circuits::ghz(3),
                                     config);
  const auto combined = manager.run();
  const auto& slot = manager.engineResults()[0];
  ASSERT_EQ(slot.attempts.size(), 2U);
  EXPECT_EQ(slot.attempts[0].criterion, "resource_exhausted");
  EXPECT_EQ(slot.attempts[1].degradation, "sim-fallback");
  EXPECT_EQ(slot.attempts[1].engine.rfind("dd-simulation", 0), 0U);
  EXPECT_EQ(combined.criterion, EquivalenceCriterion::ProbablyEquivalent);
}

TEST(DegradationLadderTest, RetryBudgetBoundsTheLadder) {
  auto config = alternatingOnly();
  config.faultPlan = "dd.gc:times=0:throw=resource_limit";
  config.engineRetryLimit = 1;
  EquivalenceCheckingManager manager(circuits::ghz(3), circuits::ghz(3),
                                     config);
  const auto combined = manager.run();
  EXPECT_EQ(combined.criterion, EquivalenceCriterion::ResourceExhausted);
  const auto& slot = manager.engineResults()[0];
  ASSERT_EQ(slot.attempts.size(), 2U);
  EXPECT_EQ(slot.attempts[1].criterion, "resource_exhausted");
  ASSERT_EQ(combined.resourceLimitedEngines.size(), 1U);
}

TEST(DegradationLadderTest, ParallelGroupPoisoningIsRetried) {
  // Engine tasks die at task start (before the per-engine firewall can
  // engage): the group is poisoned, wait() rethrows, and the manager must
  // convert the never-started slots into retryable EngineError records.
  // Which sibling fires first is a scheduling race, so the assertions cover
  // the invariants that hold under every interleaving: the run terminates
  // within the retry budget, at least one start failure was recorded, no
  // slot is left NotRun, and the verdict is still sound.
  Configuration config;
  config.simulationRuns = 4;
  config.parallel = true;
  config.faultPlan = "pool.task_start:times=2";
  config.engineRetryLimit = 3;
  EquivalenceCheckingManager manager(circuits::ghz(3), circuits::ghz(3),
                                     config);
  const auto combined = manager.run();
  EXPECT_TRUE(combined.criterion == EquivalenceCriterion::Equivalent ||
              combined.criterion == EquivalenceCriterion::ProbablyEquivalent)
      << toString(combined.criterion);
  EXPECT_GE(combined.counters.value("fault/pool.task_start.fired"), 1.0);
  bool sawStartFailure = false;
  for (const auto& slot : manager.engineResults()) {
    EXPECT_NE(slot.criterion, EquivalenceCriterion::NotRun) << slot.method;
    if (slot.errorMessage.find("failed to start") != std::string::npos) {
      sawStartFailure = true;
    }
    for (const auto& attempt : slot.attempts) {
      if (attempt.errorMessage.find("failed to start") != std::string::npos) {
        sawStartFailure = true;
      }
      // A poisoned round must consume retry budget: attempt indices stay
      // within the configured ladder depth.
      EXPECT_LE(attempt.attempt, config.engineRetryLimit);
    }
  }
  EXPECT_TRUE(sawStartFailure);
}

TEST(DegradationLadderTest, NoRetryAfterDefinitiveVerdict) {
  auto config = alternatingOnly();
  config.engineRetryLimit = 3;
  EquivalenceCheckingManager manager(circuits::ghz(3), circuits::ghz(3),
                                     config);
  const auto combined = manager.run();
  EXPECT_EQ(combined.criterion, EquivalenceCriterion::Equivalent);
  EXPECT_TRUE(manager.engineResults()[0].attempts.empty());
  EXPECT_TRUE(combined.attempts.empty());
}

// --- importMatrix exception safety -------------------------------------------

TEST(ImportFaultTest, AbortedImportLeavesBothPackagesAuditClean) {
  dd::Package src(4);
  dd::mEdge e = src.makeIdent();
  src.incRef(e);
  const auto circuit = circuits::qft(4);
  for (const auto& op : circuit.ops()) {
    const auto next = src.multiply(src.makeOperationDD(op), e);
    src.incRef(next);
    src.decRef(e);
    e = next;
    src.garbageCollect();
  }
  const std::size_t srcNodes = src.nodeCount(e);
  ASSERT_GT(srcNodes, 4U);

  dd::Package dst(4);
  {
    fault::ScopedPlan plan("dd.import:after=2:times=1");
    EXPECT_THROW(dst.importMatrix(src, e), std::bad_alloc);
  }
  // The source was read-only throughout: diagram and invariants intact.
  const std::array srcRoots{e};
  const auto srcReport = audit::auditPackage(src, srcRoots);
  EXPECT_TRUE(srcReport.empty()) << srcReport.toString();
  EXPECT_EQ(src.nodeCount(e), srcNodes);
  // The destination holds orphaned (ref-0) partial nodes but no broken
  // structure; a forced collection reclaims them.
  const auto dstReport = audit::auditPackage(dst);
  EXPECT_TRUE(dstReport.empty()) << dstReport.toString();
  dst.garbageCollect(true);
  // Recovery: the disarmed retry imports the full diagram.
  const auto imported = dst.importMatrix(src, e);
  dst.incRef(imported);
  EXPECT_EQ(dst.nodeCount(imported), srcNodes);
  const std::array dstRoots{imported};
  const auto recovered = audit::auditPackage(dst, dstRoots);
  EXPECT_TRUE(recovered.empty()) << recovered.toString();
  for (std::size_t r = 0; r < 16; ++r) {
    EXPECT_NEAR(std::abs(dst.getEntry(imported, r, 0) - src.getEntry(e, r, 0)),
                0.0, 1e-12);
  }
}

TEST(ImportFaultTest, ShardedMidChunkThrowDegradesAndRecovers) {
  auto config = alternatingOnly();
  config.checkThreads = 4;
  // Fires inside a worker's chunk build, mid-multiply: the sharded checker
  // must tear the group down without leaking worker packages (ASan-checked)
  // and degrade to ResourceExhausted, which the ladder then retries.
  config.faultPlan = "dd.gc:after=6:times=1:throw=resource_limit";
  config.engineRetryLimit = 1;
  EquivalenceCheckingManager manager(circuits::qft(5), circuits::qft(5),
                                     config);
  const auto combined = manager.run();
  EXPECT_EQ(combined.criterion, EquivalenceCriterion::Equivalent);
  const auto& slot = manager.engineResults()[0];
  ASSERT_EQ(slot.attempts.size(), 2U);
  EXPECT_EQ(slot.attempts[0].criterion, "resource_exhausted");
  EXPECT_EQ(slot.attempts[1].criterion, "equivalent");
}

// --- task-pool exception accounting ------------------------------------------

TEST(TaskPoolFaultTest, SecondaryExceptionsAreCountedNotDropped) {
  TaskPool pool(6);
  TaskGroup group(pool);
  // Barrier: every task starts before any throws, so none is skipped by the
  // group cancellation the first exception triggers.
  std::atomic<int> started{0};
  for (int i = 0; i < 4; ++i) {
    group.submit("thrower", [&started](std::size_t) {
      started.fetch_add(1);
      while (started.load() < 4) {
        std::this_thread::yield();
      }
      throw std::runtime_error("task failed");
    });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
  EXPECT_EQ(group.suppressedExceptions(), 3U);
  EXPECT_EQ(group.skippedTasks(), 0U);
}

TEST(TaskPoolFaultTest, SubmitFailureRollsBackPendingCount) {
  // A task_start fault cannot reach enqueue(), so exercise the rollback via
  // wait(): if pending_ leaked on a submission path, wait() would hang. The
  // observable contract is that wait() returns after the successful tasks.
  TaskPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    group.submit("ok", [&ran](std::size_t) { ran.fetch_add(1); });
  }
  group.wait();
  EXPECT_EQ(ran.load(), 8);
}

// --- watchdog ----------------------------------------------------------------

TEST(WatchdogTest, TripsOnceWhenASlotGoesSilent) {
  std::atomic<int> trips{0};
  std::atomic<std::size_t> trippedSlot{99};
  SoftWatchdog watchdog(2, std::chrono::milliseconds(50),
                        [&](const std::size_t slot) {
                          trips.fetch_add(1);
                          trippedSlot.store(slot);
                        });
  watchdog.beginSlot(1);
  // Slot 1 never beats: the monitor must trip it within ~1.25x the budget.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (trips.load() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(trips.load(), 1);
  EXPECT_EQ(trippedSlot.load(), 1U);
  EXPECT_TRUE(watchdog.tripped(1));
  EXPECT_FALSE(watchdog.tripped(0));
  // A trip is once-per-slot: more silence does not re-fire.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_EQ(trips.load(), 1);
  EXPECT_EQ(watchdog.trips(), 1U);
}

TEST(WatchdogTest, HeartbeatsKeepASlotAlive) {
  std::atomic<int> trips{0};
  SoftWatchdog watchdog(1, std::chrono::milliseconds(50),
                        [&](std::size_t) { trips.fetch_add(1); });
  watchdog.beginSlot(0);
  for (int i = 0; i < 30; ++i) {
    watchdog.beat(0);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  watchdog.endSlot(0);
  EXPECT_EQ(trips.load(), 0);
}

TEST(WatchdogTest, FinishedSlotsAreNotMonitored) {
  std::atomic<int> trips{0};
  SoftWatchdog watchdog(1, std::chrono::milliseconds(50),
                        [&](std::size_t) { trips.fetch_add(1); });
  watchdog.beginSlot(0);
  watchdog.endSlot(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(trips.load(), 0);
}

TEST(WatchdogTest, ManagerExportsTripCounterWhenEnabled) {
  Configuration config;
  config.simulationRuns = 2;
  config.watchdogMillis = 5000; // generous: engines poll far more often
  config.parallel = true;
  const auto combined =
      checkEquivalence(circuits::ghz(3), circuits::ghz(3), config);
  EXPECT_EQ(combined.criterion, EquivalenceCriterion::Equivalent);
  EXPECT_TRUE(combined.counters.contains("watchdog/trips"));
  EXPECT_DOUBLE_EQ(combined.counters.value("watchdog/trips"), 0.0);
}
