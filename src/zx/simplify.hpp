/// \file simplify.hpp
/// \brief Graph-like ZX-diagram simplification (Duncan et al., "Graph-
///        theoretic simplification of quantum circuits with the ZX-calculus",
///        plus the phase-gadget rules of Kissinger & van de Wetering).
///
/// All rewrites preserve the linear map up to a nonzero global scalar, which
/// is exactly the invariance needed for equivalence checking up to global
/// phase.
///
/// Scheduling is worklist-driven: each rule pass seeds a candidate queue
/// once from the live vertices and every rewrite re-enqueues only the
/// touched vertex neighborhoods, so a pass costs O(diagram + work done)
/// instead of restarting full-diagram scans after each rewrite. Candidates
/// are processed in ascending-id rounds, which reproduces the rewrite order
/// (and therefore the SimplifyStats counts) of the previous scan-based
/// engine.
#pragma once

#include "ir/permutation.hpp"
#include "zx/diagram.hpp"

#include <array>
#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace veriqc::zx {

/// Rule families of the simplifier, used to index per-rule statistics.
enum class SimplifyRule : std::uint8_t {
  Spider,        ///< spider fusion
  Id,            ///< identity (phase-free arity-2 spider) removal
  Lcomp,         ///< local complementation
  Pivot,         ///< interior Pauli-Pauli pivot
  PivotGadget,   ///< pivot after gadgetizing the non-Pauli partner
  PivotBoundary, ///< pivot next to the boundary
  Gadget,        ///< phase-gadget fusion
};
inline constexpr std::size_t kSimplifyRuleCount = 7;
inline constexpr std::array<const char*, kSimplifyRuleCount>
    kSimplifyRuleNames = {"spider",      "id",          "lcomp", "pivot",
                          "pivotGadget", "pivotBound",  "gadget"};

/// Observability counters for one rule family.
struct RuleStats {
  std::size_t candidates = 0; ///< worklist entries examined
  std::size_t matches = 0;    ///< candidates where the rule pattern matched
  std::size_t rewrites = 0;   ///< rewrites applied (cascades count each)
  double seconds = 0.0;       ///< wall time spent inside the pass
};

/// Rewrite counts per rule family.
struct SimplifyStats {
  std::size_t spiderFusions = 0;
  std::size_t idRemovals = 0;
  std::size_t localComplementations = 0;
  std::size_t pivots = 0;
  std::size_t gadgetPivots = 0;
  std::size_t boundaryPivots = 0;
  std::size_t gadgetFusions = 0;

  /// Per-rule scheduler counters, indexed by SimplifyRule.
  std::array<RuleStats, kSimplifyRuleCount> rules{};

  [[nodiscard]] std::size_t total() const noexcept {
    return spiderFusions + idRemovals + localComplementations + pivots +
           gadgetPivots + boundaryPivots + gadgetFusions;
  }

  /// Wall time summed over all passes.
  [[nodiscard]] double totalSeconds() const noexcept;

  /// One rule family's counters together with its name, for structured
  /// export into run records.
  struct NamedRuleStats {
    const char* rule;
    RuleStats stats;
  };

  /// The rule families that examined at least one candidate, in SimplifyRule
  /// order; empty if nothing ran. This is the machine-readable form the
  /// checker layer records — digest() renders the same data as text.
  [[nodiscard]] std::vector<NamedRuleStats> activeRules() const;

  /// Compact per-rule digest ("spider r12/m8/c40 0.1ms; ...") listing only
  /// rules that examined at least one candidate; empty if nothing ran.
  [[nodiscard]] std::string digest() const;

  /// Accumulate another pass's counters into this record (all counters are
  /// sums; `seconds` becomes CPU time, not wall time, when passes ran
  /// concurrently). Used to fold region-parallel sub-simplifier stats into
  /// the owning simplifier so totals are preserved exactly.
  void merge(const SimplifyStats& other) noexcept;
};

/// Tuning knobs for the simplifier, threaded from check::Configuration.
struct SimplifierOptions {
  /// Apply the non-Clifford phase-gadget rule families (gadget pivoting and
  /// phase-gadget fusion) in fullReduce. When false, fullReduce stops at the
  /// Clifford fixed point (cliffordSimp) — still sound, possibly weaker.
  bool gadgetRules = true;
  /// Resource budget: live diagram vertices (0 = unlimited). Checked at the
  /// start of every worklist pass and at a throttle while draining it
  /// (vertexCount() is O(1)); rewrites that grow the diagram — gadgetizing
  /// pivots, boundary unfusions — trip it instead of exhausting memory.
  /// \throws ResourceLimitError from the simplification entry points.
  std::size_t maxVertices = 0;
  /// Regions for the parallel pre-pass of fullReduce (1 = fully
  /// sequential). The vertex-id space is split into this many contiguous
  /// ranges; each drains its own spider/id worklist under a closed-2-hop
  /// ownership guard, then the regular sequential passes run to the
  /// authoritative fixpoint. Requires `regionExecutor`.
  std::size_t parallelRegions = 1;
  /// Executor for the region tasks: must run every thunk (concurrently or
  /// not) and return only when all have finished, propagating the first
  /// exception a thunk throws. Injected by the checker layer so veriqc_zx
  /// stays free of a dependency on its task pool.
  std::function<void(const std::vector<std::function<void()>>&)>
      regionExecutor;
};

/// Stateful simplifier bound to one diagram. The optional `shouldStop`
/// callback is polled between rewrites; when it returns true the current
/// pass returns early (used for timeouts and sibling-engine cancellation).
class Simplifier {
public:
  explicit Simplifier(ZXDiagram& diagram,
                      std::function<bool()> shouldStop = {},
                      SimplifierOptions options = {});

  /// Turn the diagram graph-like: X spiders become Z spiders (toggling their
  /// edges), adjacent Z spiders connected by plain wires fuse, parallel
  /// Hadamard edges cancel modulo 2 and self-loops are resolved.
  void toGraphLike();

  /// Fuse all plain-wire-connected Z spider pairs. Returns #fusions.
  std::size_t spiderSimp();
  /// Remove phase-free arity-2 spiders. Returns #removals.
  std::size_t idSimp();
  /// Local complementation on +-pi/2 interior spiders. Returns #rewrites.
  std::size_t lcompSimp();
  /// Pivoting about interior Pauli-Pauli edges. Returns #rewrites.
  std::size_t pivotSimp();
  /// Pivoting where the non-Pauli partner is first turned into a phase
  /// gadget. Returns #rewrites.
  std::size_t pivotGadgetSimp();
  /// Pivoting next to the boundary (boundary wires are unfused first).
  std::size_t pivotBoundarySimp();
  /// Fuse phase gadgets with identical connectivity. Returns #fusions.
  std::size_t gadgetSimp();

  /// spider/id/lcomp/pivot to fixpoint (after toGraphLike).
  std::size_t interiorCliffordSimp();
  /// interiorCliffordSimp + boundary pivots to fixpoint.
  std::size_t cliffordSimp();
  /// The full_reduce strategy used for equivalence checking.
  /// \returns false when aborted by shouldStop.
  bool fullReduce();

  [[nodiscard]] const SimplifyStats& stats() const noexcept { return stats_; }

  /// Candidate queue with O(1) stamped membership that replays the rewrite
  /// order of a full ascending-id rescan loop exactly: candidates drain in
  /// ascending id within a sweep, a re-enqueued candidate above the current
  /// scan position joins the current sweep (a rescan would still reach it),
  /// and one at or below the position waits for the next sweep (a rescan
  /// would only see it on the next iteration). Stale entries (vertices
  /// removed after being queued) are filtered by the rule matchers via
  /// isPresent. Public so the audit layer can validate the membership-stamp
  /// invariant; only Simplifier mutates it during simplification.
  class Worklist {
  public:
    /// Invalidate all queued entries and start a fresh pass seeded with
    /// every live vertex.
    void reset(const ZXDiagram& g);
    /// As reset(g), but seed only live vertices with lo <= id < hi (the
    /// region-restricted passes of the parallel pre-pass).
    void reset(const ZXDiagram& g, Vertex lo, Vertex hi);
    void push(Vertex v);
    [[nodiscard]] bool empty() const noexcept {
      return sweep_.empty() && nextSweep_.empty();
    }
    Vertex pop();

    /// Validates the membership-stamp invariant: both heaps are min-heaps,
    /// every current-sweep entry is stamped `generation_`, every next-sweep
    /// entry `generation_ + 1`, no vertex is queued twice, and every
    /// pending stamp (>= generation_) has a matching queue entry. Returns
    /// human-readable descriptions of all violations (empty when clean).
    [[nodiscard]] std::vector<std::string> checkInvariant() const;

  private:
    friend struct WorklistTestAccess; ///< mutation tests corrupt state here

    /// Min-heaps: candidates for the current and the following sweep. A
    /// sorted seed vector is already a valid min-heap, so reset() adopts it
    /// without re-heapifying element by element.
    std::vector<Vertex> sweep_;
    std::vector<Vertex> nextSweep_;
    /// Id of the last vertex popped this sweep (-1 at sweep start).
    std::int64_t position_ = -1;
    /// stamp_[v] >= generation_ means v is pending (current or next sweep).
    std::vector<std::uint64_t> stamp_;
    std::uint64_t generation_ = 0;
  };

  /// The simplifier's worklist (read-only; for the audit layer).
  [[nodiscard]] const Worklist& worklist() const noexcept { return worklist_; }

private:
  [[nodiscard]] bool stopping() const { return shouldStop_ && shouldStop_(); }
  /// Region-parallel spider/id pre-pass of fullReduce: partitions the
  /// vertex-id space, runs one region-restricted sub-simplifier per range
  /// through options_.regionExecutor and merges the sub-stats. A no-op
  /// unless parallelRegions > 1, an executor is set and the diagram is big
  /// enough to be worth distributing.
  void parallelPrepass();
  /// Drain region-restricted spider+id passes to this region's fixpoint.
  void regionFixpoint();
  /// Ownership guard of region mode: true when v, N(v) and N(N(v)) all lie
  /// inside this simplifier's region, so any rewrite at v reads and writes
  /// only in-region adjacency rows. Evaluated strictly inside-out — v's row
  /// is read first, neighbor rows only once every neighbor is known to be
  /// in-region — so the guard itself never reads a row another region may
  /// be writing. Always true outside region mode.
  [[nodiscard]] bool ownsRegion(Vertex v) const;
  /// First half of toGraphLike: X spiders become Z spiders (toggling their
  /// edges) and self-loops are resolved. Runs before the parallel pre-pass
  /// so region workers see settled vertex types.
  void toZForm();
  /// Second half of toGraphLike: spider fusion to fixpoint plus parallel
  /// Hadamard-pair cancellation.
  void finishGraphLike();
  /// \throws ResourceLimitError when the configured vertex budget is
  /// exceeded (no-op for the default unlimited budget).
  void enforceVertexBudget() const;
  [[nodiscard]] bool isInterior(Vertex v) const;
  [[nodiscard]] bool isInteriorZ(Vertex v) const;
  /// All incident edges are single Hadamard edges to interior Z spiders.
  [[nodiscard]] bool allNeighborsInteriorViaHadamard(Vertex v) const;
  /// All incident edges are Hadamard (neighbors may include boundaries).
  [[nodiscard]] bool allEdgesHadamardToSpiders(Vertex v) const;

  /// Run one worklist pass: seed every live vertex, drain, let `tryRule`
  /// apply rewrites at each candidate (returning how many it applied) and
  /// re-enqueue what it touched. Returns the total rewrites applied.
  template <typename TryRule>
  std::size_t runPass(SimplifyRule rule, TryRule&& tryRule);

  /// Re-enqueue v (if still present) and all its current neighbors.
  void touchNeighborhood(Vertex v);
  /// Re-enqueue v's 2-hop neighborhood. Needed by the pivot variants whose
  /// candidacy inspects neighbor degrees (hasLeafNeighbor): a changed edge
  /// endpoint sits up to two hops from candidates it re-enables.
  void touchNeighborhood2(Vertex v);

  // Per-candidate rule bodies; each returns the number of rewrites applied
  // at the candidate and re-enqueues the touched neighborhoods.
  std::size_t trySpider(Vertex v);
  std::size_t tryId(Vertex v);
  std::size_t tryLcomp(Vertex v);
  std::size_t tryPivot(Vertex u);
  std::size_t tryPivotGadget(Vertex u);
  std::size_t tryPivotBoundary(Vertex u);

  /// Resolve self-loops on v (plain loops vanish; each Hadamard loop adds pi).
  void normalizeVertex(Vertex v);
  /// Cancel parallel Hadamard edges mod 2 between two Z spiders.
  void normalizePair(Vertex u, Vertex v);
  /// Fuse v into u (requires a plain edge between two Z spiders).
  void fuse(Vertex u, Vertex v);
  /// Toggle the single Hadamard edge between two interior spiders.
  void toggleHadamard(Vertex a, Vertex b);
  /// Core pivot about the Hadamard edge (u, v); preconditions checked by the
  /// callers. Touched neighborhoods are re-enqueued to the given depth
  /// (1 hop for the plain pivot, 2 hops for the leaf-guarded variants).
  void pivot(Vertex u, Vertex v, int touchDepth = 1);
  /// Split v's phase into a fresh phase gadget hanging off v.
  void gadgetize(Vertex v);
  /// Insert an identity-pair spider on the boundary edge (b, v) so that v
  /// becomes interior-compatible.
  void unfuseBoundary(Vertex b, Vertex v);

  ZXDiagram& g_;
  std::function<bool()> shouldStop_;
  SimplifierOptions options_;
  SimplifyStats stats_;
  Worklist worklist_;

  /// Region restriction of the parallel pre-pass. In region mode only the
  /// confluent, vertex-count-preserving-or-decreasing spider/id families
  /// run, each rewrite guarded by ownsRegion(); rules that add vertices
  /// (gadgetize, boundary unfusion) are never distributed, since addVertex
  /// grows shared vectors.
  bool regionMode_ = false;
  Vertex regionLo_ = 0;
  Vertex regionHi_ = 0; ///< exclusive; 0 with regionMode_ false = unused
};

/// Convenience: full_reduce a diagram in place. Returns false on timeout.
bool fullReduce(ZXDiagram& diagram, std::function<bool()> shouldStop = {},
                SimplifierOptions options = {});

/// If the diagram is nothing but boundary vertices pairwise connected by
/// single plain wires, return the permutation p with output p(i) connected
/// to input i; otherwise std::nullopt (spiders remain, or Hadamard wires).
[[nodiscard]] std::optional<Permutation>
extractWirePermutation(const ZXDiagram& diagram);

} // namespace veriqc::zx
