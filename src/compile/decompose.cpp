#include "compile/decompose.hpp"

#include <algorithm>
#include <set>

namespace veriqc::compile {

namespace {

class Decomposer {
public:
  Decomposer(const QuantumCircuit& input, const bool cnotOnly,
             const bool decomposeSwaps)
      : in_(input), out_(input.numQubits(), input.name()),
        cnotOnly_(cnotOnly), decomposeSwaps_(decomposeSwaps) {}

  QuantumCircuit run(ExpansionCounts* counts = nullptr) {
    out_.initialLayout() = in_.initialLayout();
    out_.outputPermutation() = in_.outputPermutation();
    out_.setGlobalPhase(in_.globalPhase());
    for (const auto& op : in_.ops()) {
      const auto before = out_.size();
      handle(op);
      if (counts != nullptr) {
        counts->push_back(out_.size() - before);
      }
    }
    return std::move(out_);
  }

private:
  // --- primitive emitters ---------------------------------------------------
  void emit(Operation op) { out_.append(std::move(op)); }
  void h(const Qubit q) { out_.h(q); }
  void x(const Qubit q) { out_.x(q); }
  void p(const Qubit q, const double theta) { out_.p(q, theta); }
  void cx(const Qubit c, const Qubit t) { out_.cx(c, t); }

  /// Controlled phase; native for the ZX target, a {p, cx} network for the
  /// CNOT target (the qelib1 cu1 decomposition).
  void cp(const Qubit c, const Qubit t, const double theta) {
    if (!cnotOnly_) {
      out_.cp(c, t, theta);
      return;
    }
    p(c, theta / 2.0);
    cx(c, t);
    p(t, -theta / 2.0);
    cx(c, t);
    p(t, theta / 2.0);
  }

  /// C-X^alpha = H_t . CP(alpha pi) . H_t (exact, X^alpha = H P(alpha pi) H).
  void cxPow(const Qubit c, const Qubit t, const double alpha) {
    h(t);
    cp(c, t, alpha * PI);
    h(t);
  }

  /// The standard 15-gate Toffoli network (qelib1 ccx), exact incl. phase.
  void toffoli(const Qubit a, const Qubit b, const Qubit c) {
    h(c);
    cx(b, c);
    out_.tdg(c);
    cx(a, c);
    out_.t(c);
    cx(b, c);
    out_.tdg(c);
    cx(a, c);
    out_.t(b);
    out_.t(c);
    h(c);
    cx(a, b);
    out_.t(a);
    out_.tdg(b);
    cx(a, b);
  }

  [[nodiscard]] std::vector<Qubit>
  freeWires(const std::vector<Qubit>& controls, const Qubit target) const {
    std::set<Qubit> used(controls.begin(), controls.end());
    used.insert(target);
    std::vector<Qubit> free;
    for (Qubit w = 0; w < out_.numQubits(); ++w) {
      if (!used.contains(w)) {
        free.push_back(w);
      }
    }
    return free;
  }

  /// Multi-controlled X. Uses the borrowed-qubit split whenever any wire is
  /// outside the gate's support; falls back to the square-root recursion for
  /// gates touching every wire.
  void mcx(const std::vector<Qubit>& controls, const Qubit t) {
    const auto k = controls.size();
    if (k == 0) {
      x(t);
      return;
    }
    if (k == 1) {
      cx(controls[0], t);
      return;
    }
    if (k == 2) {
      toffoli(controls[0], controls[1], t);
      return;
    }
    const auto borrows = freeWires(controls, t);
    if (!borrows.empty()) {
      // T2 T1 T2 T1 with T1 = C^{|C1|}X(C1 -> b), T2 = C^{|C2|+1}X(C2+b -> t)
      // computes t ^= AND(C1) & AND(C2) regardless of b's (dirty) state.
      const Qubit b = borrows.front();
      const std::size_t half = (k + 1) / 2;
      const std::vector<Qubit> c1(controls.begin(),
                                  controls.begin() +
                                      static_cast<std::ptrdiff_t>(half));
      std::vector<Qubit> c2(controls.begin() +
                                static_cast<std::ptrdiff_t>(half),
                            controls.end());
      c2.push_back(b);
      mcx(c2, t);
      mcx(c1, b);
      mcx(c2, t);
      mcx(c1, b);
      return;
    }
    // No free wire: one level of the square-root recursion frees one.
    const Qubit cn = controls.back();
    const std::vector<Qubit> rest(controls.begin(), controls.end() - 1);
    cxPow(cn, t, 0.5);
    mcx(rest, cn);
    cxPow(cn, t, -0.5);
    mcx(rest, cn);
    mcxPow(rest, t, 0.5);
  }

  /// Multi-controlled X^alpha via the square-root recursion (the inner MCXs
  /// always have a borrowable wire: the phase target itself is outside them).
  void mcxPow(const std::vector<Qubit>& controls, const Qubit t,
              const double alpha) {
    const auto k = controls.size();
    if (k == 0) {
      h(t);
      p(t, alpha * PI);
      h(t);
      return;
    }
    if (k == 1) {
      cxPow(controls[0], t, alpha);
      return;
    }
    const Qubit cn = controls.back();
    const std::vector<Qubit> rest(controls.begin(), controls.end() - 1);
    cxPow(cn, t, alpha / 2.0);
    mcx(rest, cn);
    cxPow(cn, t, -alpha / 2.0);
    mcx(rest, cn);
    mcxPow(rest, t, alpha / 2.0);
  }

  /// Multi-controlled phase gate (symmetric in all its qubits).
  void mcp(const std::vector<Qubit>& controls, const Qubit t,
           const double theta) {
    const auto k = controls.size();
    if (k == 0) {
      p(t, theta);
      return;
    }
    if (k == 1) {
      cp(controls[0], t, theta);
      return;
    }
    const Qubit cn = controls.back();
    const std::vector<Qubit> rest(controls.begin(), controls.end() - 1);
    cp(cn, t, theta / 2.0);
    mcx(rest, cn);
    cp(cn, t, -theta / 2.0);
    mcx(rest, cn);
    mcp(rest, t, theta / 2.0);
  }

  /// Multi-controlled RZ: MCP plus the phase correction on the controls.
  void mcrz(const std::vector<Qubit>& controls, const Qubit t,
            const double theta) {
    mcp(controls, t, theta);
    const Qubit last = controls.back();
    const std::vector<Qubit> rest(controls.begin(), controls.end() - 1);
    mcp(rest, last, -theta / 2.0);
  }

  void mcz(const std::vector<Qubit>& controls, const Qubit t) {
    h(t);
    mcx(controls, t);
    h(t);
  }

  /// qiskit-style controlled-U3 decomposition.
  void cu3(const Qubit c, const Qubit t, const double theta, const double phi,
           const double lambda) {
    p(c, (lambda + phi) / 2.0);
    p(t, (lambda - phi) / 2.0);
    cx(c, t);
    out_.u3(t, -theta / 2.0, 0.0, -(phi + lambda) / 2.0);
    cx(c, t);
    out_.u3(t, theta / 2.0, phi, 0.0);
  }

  // --- dispatch ----------------------------------------------------------------
  void handle(const Operation& op) {
    if (op.isNonUnitary()) {
      emit(op);
      return;
    }
    const auto nc = op.controls.size();
    if (op.type == OpType::SWAP) {
      handleSwap(op);
      return;
    }
    if (nc == 0) {
      emit(op);
      return;
    }
    if (nc == 1) {
      handleSinglyControlled(op);
      return;
    }
    handleMultiControlled(op);
  }

  void handleSwap(const Operation& op) {
    const Qubit a = op.targets[0];
    const Qubit b = op.targets[1];
    if (op.controls.empty()) {
      if (!decomposeSwaps_) {
        emit(op);
        return;
      }
      cx(a, b);
      cx(b, a);
      cx(a, b);
      return;
    }
    // Fredkin: cswap(C; a, b) = cx(b,a) . C+{a}-X(b) . cx(b,a)
    cx(b, a);
    auto controls = op.controls;
    controls.push_back(a);
    mcx(controls, b);
    cx(b, a);
  }

  void handleSinglyControlled(const Operation& op) {
    const Qubit c = op.controls[0];
    const Qubit t = op.targets[0];
    if (op.type == OpType::X) {
      cx(c, t);
      return;
    }
    if (!cnotOnly_) {
      // ZX-friendly: the converter handles these natively.
      switch (op.type) {
      case OpType::Y:
      case OpType::Z:
      case OpType::H:
      case OpType::P:
      case OpType::RZ:
      case OpType::RX:
      case OpType::RY:
      case OpType::S:
      case OpType::Sdg:
      case OpType::T:
      case OpType::Tdg:
        emit(op);
        return;
      case OpType::SX:
        cxPow(c, t, 0.5);
        return;
      case OpType::SXdg:
        cxPow(c, t, -0.5);
        return;
      case OpType::U2:
        cu3(c, t, PI_2, op.params[0], op.params[1]);
        return;
      case OpType::U3:
        cu3(c, t, op.params[0], op.params[1], op.params[2]);
        return;
      case OpType::I:
        return;
      default:
        break;
      }
      throw CircuitError("decompose: unsupported controlled op " +
                         op.toString());
    }
    switch (op.type) {
    case OpType::I:
      return;
    case OpType::Z:
      h(t);
      cx(c, t);
      h(t);
      return;
    case OpType::Y:
      out_.sdg(t);
      cx(c, t);
      out_.s(t);
      return;
    case OpType::H:
      // qelib1 ch.
      h(t);
      out_.sdg(t);
      cx(c, t);
      h(t);
      out_.t(t);
      cx(c, t);
      out_.t(t);
      h(t);
      out_.s(t);
      x(t);
      out_.s(c);
      return;
    case OpType::P:
      cp(c, t, op.params[0]);
      return;
    case OpType::S:
      cp(c, t, PI_2);
      return;
    case OpType::Sdg:
      cp(c, t, -PI_2);
      return;
    case OpType::T:
      cp(c, t, PI_4);
      return;
    case OpType::Tdg:
      cp(c, t, -PI_4);
      return;
    case OpType::RZ:
      out_.rz(t, op.params[0] / 2.0);
      cx(c, t);
      out_.rz(t, -op.params[0] / 2.0);
      cx(c, t);
      return;
    case OpType::RX:
      h(t);
      handleSinglyControlled(Operation(OpType::RZ, {c}, {t}, op.params));
      h(t);
      return;
    case OpType::RY:
      out_.sdg(t);
      handleSinglyControlled(Operation(OpType::RX, {c}, {t}, op.params));
      out_.s(t);
      return;
    case OpType::SX:
      cxPow(c, t, 0.5);
      return;
    case OpType::SXdg:
      cxPow(c, t, -0.5);
      return;
    case OpType::U2:
      cu3(c, t, PI_2, op.params[0], op.params[1]);
      return;
    case OpType::U3:
      cu3(c, t, op.params[0], op.params[1], op.params[2]);
      return;
    default:
      throw CircuitError("decompose: unsupported controlled op " +
                         op.toString());
    }
  }

  void handleMultiControlled(const Operation& op) {
    const auto& controls = op.controls;
    const Qubit t = op.targets[0];
    switch (op.type) {
    case OpType::I:
      return;
    case OpType::X:
      mcx(controls, t);
      return;
    case OpType::Y:
      out_.sdg(t);
      mcx(controls, t);
      out_.s(t);
      return;
    case OpType::Z:
      mcz(controls, t);
      return;
    case OpType::H:
      // H = RY(pi/4) Z RY(-pi/4)
      out_.ry(t, -PI_4);
      mcz(controls, t);
      out_.ry(t, PI_4);
      return;
    case OpType::P:
      mcp(controls, t, op.params[0]);
      return;
    case OpType::S:
      mcp(controls, t, PI_2);
      return;
    case OpType::Sdg:
      mcp(controls, t, -PI_2);
      return;
    case OpType::T:
      mcp(controls, t, PI_4);
      return;
    case OpType::Tdg:
      mcp(controls, t, -PI_4);
      return;
    case OpType::RZ:
      mcrz(controls, t, op.params[0]);
      return;
    case OpType::RX:
      h(t);
      mcrz(controls, t, op.params[0]);
      h(t);
      return;
    case OpType::RY:
      out_.sdg(t);
      h(t);
      mcrz(controls, t, op.params[0]);
      h(t);
      out_.s(t);
      return;
    case OpType::SX:
      mcxPow(controls, t, 0.5);
      return;
    case OpType::SXdg:
      mcxPow(controls, t, -0.5);
      return;
    case OpType::U2:
      handleMultiControlled(
          Operation(OpType::U3, controls, {t}, {PI_2, op.params[0],
                                                op.params[1]}));
      return;
    case OpType::U3: {
      // u3 = e^{i(phi+lambda)/2} rz(phi) ry(theta) rz(lambda); the global
      // phase becomes a controlled phase on the controls.
      const double theta = op.params[0];
      const double phi = op.params[1];
      const double lambda = op.params[2];
      mcrz(controls, t, lambda);
      out_.sdg(t);
      h(t);
      mcrz(controls, t, theta);
      h(t);
      out_.s(t);
      mcrz(controls, t, phi);
      const Qubit last = controls.back();
      const std::vector<Qubit> rest(controls.begin(), controls.end() - 1);
      mcp(rest, last, (phi + lambda) / 2.0);
      return;
    }
    default:
      throw CircuitError("decompose: unsupported multi-controlled op " +
                         op.toString());
    }
  }

  const QuantumCircuit& in_;
  QuantumCircuit out_;
  bool cnotOnly_;
  bool decomposeSwaps_;
};

} // namespace

QuantumCircuit decomposeToCnot(const QuantumCircuit& circuit,
                               const bool decomposeSwaps,
                               ExpansionCounts* counts) {
  return Decomposer(circuit, /*cnotOnly=*/true, decomposeSwaps).run(counts);
}

QuantumCircuit decomposeForZX(const QuantumCircuit& circuit) {
  return Decomposer(circuit, /*cnotOnly=*/false, /*decomposeSwaps=*/false)
      .run();
}

} // namespace veriqc::compile
