#include "qasm/writer.hpp"

#include <fstream>
#include <sstream>

namespace veriqc::qasm {

namespace {

void writeQubits(std::ostringstream& os, const Operation& op) {
  bool first = true;
  for (const auto q : op.controls) {
    os << (first ? " " : ", ") << "q[" << q << "]";
    first = false;
  }
  for (const auto q : op.targets) {
    os << (first ? " " : ", ") << "q[" << q << "]";
    first = false;
  }
  os << ";\n";
}

void writeParams(std::ostringstream& os, const Operation& op) {
  if (op.params.empty()) {
    return;
  }
  os << "(";
  for (std::size_t i = 0; i < op.params.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os.precision(17);
    os << op.params[i];
  }
  os << ")";
}

std::string mnemonic(const Operation& op) {
  const auto plain = toString(op.type);
  const auto nc = op.controls.size();
  if (op.type == OpType::SWAP) {
    if (nc == 0) {
      return "swap";
    }
    if (nc == 1) {
      return "cswap";
    }
    throw CircuitError("QASM writer: SWAP with more than one control: " +
                       op.toString());
  }
  if (nc == 0) {
    return plain == "p" ? "p" : plain;
  }
  switch (op.type) {
  case OpType::X:
    if (nc == 1) {
      return "cx";
    }
    if (nc == 2) {
      return "ccx";
    }
    if (nc == 3) {
      return "c3x";
    }
    if (nc == 4) {
      return "c4x";
    }
    break;
  case OpType::Y:
    if (nc == 1) {
      return "cy";
    }
    break;
  case OpType::Z:
    if (nc == 1) {
      return "cz";
    }
    if (nc == 2) {
      return "ccz";
    }
    break;
  case OpType::H:
    if (nc == 1) {
      return "ch";
    }
    break;
  case OpType::RX:
    if (nc == 1) {
      return "crx";
    }
    break;
  case OpType::RY:
    if (nc == 1) {
      return "cry";
    }
    break;
  case OpType::RZ:
    if (nc == 1) {
      return "crz";
    }
    break;
  case OpType::P:
    if (nc == 1) {
      return "cp";
    }
    break;
  default:
    break;
  }
  throw CircuitError("QASM writer: no qelib1 spelling for " + op.toString() +
                     "; decompose the circuit first");
}

} // namespace

std::string write(const QuantumCircuit& circuit) {
  std::ostringstream os;
  os << "OPENQASM 2.0;\n";
  os << "include \"qelib1.inc\";\n";
  if (!circuit.initialLayout().isIdentity()) {
    os << "// i";
    for (Qubit w = 0; w < circuit.numQubits(); ++w) {
      os << " " << circuit.initialLayout()[w];
    }
    os << "\n";
  }
  if (!circuit.outputPermutation().isIdentity()) {
    os << "// o";
    for (Qubit w = 0; w < circuit.numQubits(); ++w) {
      os << " " << circuit.outputPermutation()[w];
    }
    os << "\n";
  }
  os << "qreg q[" << circuit.numQubits() << "];\n";
  os << "creg c[" << circuit.numQubits() << "];\n";
  for (const auto& op : circuit.ops()) {
    if (op.type == OpType::Barrier) {
      os << "barrier q;\n";
      continue;
    }
    if (op.type == OpType::Measure) {
      for (const auto q : op.targets) {
        os << "measure q[" << q << "] -> c[" << q << "];\n";
      }
      continue;
    }
    os << mnemonic(op);
    writeParams(os, op);
    writeQubits(os, op);
  }
  return os.str();
}

void writeFile(const QuantumCircuit& circuit, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot write QASM file: " + path);
  }
  out << write(circuit);
}

} // namespace veriqc::qasm
