#include "circuits/benchmarks.hpp"
#include "compile/decompose.hpp"
#include "opt/optimizer.hpp"
#include "sim/dense.hpp"

#include <gtest/gtest.h>

namespace veriqc {
namespace {

void expectEquivalent(const QuantumCircuit& a, const QuantumCircuit& b,
                      const std::string& label) {
  const auto ua = sim::circuitUnitary(a);
  const auto ub = sim::circuitUnitary(b);
  EXPECT_TRUE(ua.equalsUpToGlobalPhase(ub, 1e-8)) << label;
}

TEST(OptimizerTest, RemoveIdentities) {
  QuantumCircuit c(2);
  c.i(0);
  c.rz(1, 0.0);
  c.h(0);
  c.rx(1, 4.0 * PI);
  EXPECT_EQ(opt::removeIdentities(c), 3U);
  EXPECT_EQ(c.size(), 1U);
}

TEST(OptimizerTest, CancelInversePairs) {
  QuantumCircuit c(2);
  c.h(0);
  c.h(0);
  c.cx(0, 1);
  c.cx(0, 1);
  c.t(0);
  c.tdg(0);
  c.s(1);
  c.x(0); // separates s from sdg on a different wire? no - wire 1
  c.sdg(1);
  EXPECT_GE(opt::cancelInversePairs(c), 8U);
  // Only the lone x survives.
  EXPECT_EQ(c.gateCount(), 1U);
  EXPECT_EQ(c.ops()[0].type, OpType::X);
}

TEST(OptimizerTest, CancellationBlockedByInterveningGate) {
  QuantumCircuit c(2);
  c.h(0);
  c.cx(0, 1); // touches qubit 0: blocks
  c.h(0);
  EXPECT_EQ(opt::cancelInversePairs(c), 0U);
  EXPECT_EQ(c.size(), 3U);
}

TEST(OptimizerTest, MergeRotations) {
  QuantumCircuit c(2);
  c.rz(0, 0.3);
  c.rz(0, 0.4);
  c.crz(0, 1, 0.2);
  c.crz(0, 1, -0.2);
  const auto merged = opt::mergeRotations(c);
  EXPECT_EQ(merged, 2U);
  ASSERT_EQ(c.size(), 1U);
  EXPECT_NEAR(c.ops()[0].params[0], 0.7, 1e-12);
}

TEST(OptimizerTest, FuseSingleQubitGates) {
  QuantumCircuit c(2);
  c.h(0);
  c.t(0);
  c.rx(0, 0.3);
  c.cx(0, 1);
  const auto before = c;
  EXPECT_EQ(opt::fuseSingleQubitGates(c), 2U);
  EXPECT_EQ(c.size(), 2U);
  EXPECT_EQ(c.ops()[0].type, OpType::U3);
  expectEquivalent(before, c, "fusion");
  // Strict equality including global phase.
  const auto ua = sim::circuitUnitary(before);
  const auto ub = sim::circuitUnitary(c);
  EXPECT_TRUE(ua.equals(ub, 1e-9));
}

TEST(OptimizerTest, FusionHandlesDiagonalAndAntidiagonalRuns) {
  QuantumCircuit diag(1);
  diag.t(0);
  diag.s(0);
  auto diagOpt = diag;
  opt::fuseSingleQubitGates(diagOpt);
  EXPECT_TRUE(sim::circuitUnitary(diag).equals(sim::circuitUnitary(diagOpt),
                                               1e-9));
  QuantumCircuit anti(1);
  anti.x(0);
  anti.z(0);
  auto antiOpt = anti;
  opt::fuseSingleQubitGates(antiOpt);
  EXPECT_TRUE(sim::circuitUnitary(anti).equals(sim::circuitUnitary(antiOpt),
                                               1e-9));
}

TEST(OptimizerTest, ReconstructSwaps) {
  QuantumCircuit c(3);
  c.cx(0, 1);
  c.cx(1, 0);
  c.cx(0, 1);
  c.h(2);
  const auto before = c;
  EXPECT_EQ(opt::reconstructSwaps(c), 1U);
  EXPECT_EQ(c.gateCount(), 2U);
  EXPECT_TRUE(c.ops()[0].isBareSwap());
  expectEquivalent(before, c, "swap reconstruction");
}

TEST(OptimizerTest, ReconstructSwapsIgnoresWrongPattern) {
  QuantumCircuit c(2);
  c.cx(0, 1);
  c.cx(0, 1);
  c.cx(1, 0);
  EXPECT_EQ(opt::reconstructSwaps(c), 0U);
}

TEST(OptimizerTest, OptimizePreservesSemantics) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto c = circuits::randomCircuit(4, 40, seed);
    const auto optimized = opt::optimize(c);
    expectEquivalent(c, optimized, "seed " + std::to_string(seed));
  }
}

TEST(OptimizerTest, OptimizeShrinksDecomposedBenchmarks) {
  // Sec. 6.1's second use case: optimized versions are smaller (|G'| < |G|).
  const std::vector<QuantumCircuit> cases = {
      compile::decomposeToCnot(circuits::grover(3, 5)),
      compile::decomposeToCnot(circuits::quantumWalk(3, 2)),
      compile::decomposeToCnot(circuits::urfLike(4, 12, 7))};
  for (const auto& c : cases) {
    const auto optimized = opt::optimize(c);
    EXPECT_LT(optimized.gateCount(), c.gateCount()) << c.name();
    expectEquivalent(c, optimized, c.name());
  }
}

TEST(OptimizerTest, OptimizeKeepsPermutations) {
  auto c = circuits::qft(3, false);
  const auto optimized = opt::optimize(c);
  EXPECT_EQ(optimized.outputPermutation(), c.outputPermutation());
}

} // namespace
} // namespace veriqc
