# Empty compiler generated dependencies file for verify_compilation.
# This may be replaced when dependencies are built.
