file(REMOVE_RECURSE
  "CMakeFiles/zx_resynthesis.dir/zx_resynthesis.cpp.o"
  "CMakeFiles/zx_resynthesis.dir/zx_resynthesis.cpp.o.d"
  "zx_resynthesis"
  "zx_resynthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zx_resynthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
