file(REMOVE_RECURSE
  "libveriqc_opt.a"
)
