#include "dd/real_table.hpp"

namespace veriqc::dd {

double RealTable::lookupSlow(const double value) {
  // The fast-path constants are implicit representatives: values within
  // tolerance of them must snap to the exact constant, or near-1 weights
  // would intern to a non-1 representative and e.g. U^dagger*U would miss
  // the canonical identity node.
  if (std::abs(value) < tolerance_) {
    return 0.0;
  }
  if (std::abs(value - 1.0) < tolerance_) {
    return 1.0;
  }
  if (std::abs(value + 1.0) < tolerance_) {
    return -1.0;
  }
  const auto key = keyOf(value);
  // A representative within tolerance can sit in the value's own bin or in
  // one of its neighbours (bin width == tolerance). The own bin is probed
  // first: it hits for every already-interned value.
  for (const auto k : {key, key - 1, key + 1}) {
    const Slot* slot = find(k);
    if (slot != nullptr && std::abs(slot->value - value) < tolerance_) {
      return slot->value;
    }
  }
  insert(key, value);
  return value;
}

const RealTable::Slot* RealTable::find(const std::int64_t key) const noexcept {
  const std::size_t mask = slots_.size() - 1;
  std::size_t idx = hashKey(key) & mask;
  while (slots_[idx].occupied) {
    if (slots_[idx].key == key) {
      return &slots_[idx];
    }
    idx = (idx + 1) & mask;
  }
  return nullptr;
}

void RealTable::insert(const std::int64_t key, const double value) {
  if (4 * (count_ + 1) > 3 * slots_.size()) {
    grow();
  }
  const std::size_t mask = slots_.size() - 1;
  std::size_t idx = hashKey(key) & mask;
  while (slots_[idx].occupied) {
    idx = (idx + 1) & mask;
  }
  slots_[idx] = {key, value, true};
  ++count_;
}

void RealTable::grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  const std::size_t mask = slots_.size() - 1;
  for (const auto& slot : old) {
    if (!slot.occupied) {
      continue;
    }
    std::size_t idx = hashKey(slot.key) & mask;
    while (slots_[idx].occupied) {
      idx = (idx + 1) & mask;
    }
    slots_[idx] = slot;
  }
}

} // namespace veriqc::dd
