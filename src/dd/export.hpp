/// \file export.hpp
/// \brief Graphviz (DOT) export of decision diagrams, in the spirit of the
///        visualization method the paper adopts (Wille et al., DATE 2021):
///        edge thickness encodes the weight's magnitude, edge color its
///        phase.
#pragma once

#include "dd/package.hpp"

#include <string>

namespace veriqc::dd {

/// Render a matrix DD as a DOT graph.
[[nodiscard]] std::string toDot(const Package& package, const mEdge& edge);

/// Render a vector DD as a DOT graph.
[[nodiscard]] std::string toDot(const Package& package, const vEdge& edge);

/// Write DOT output to a file.
void writeDot(const Package& package, const mEdge& edge,
              const std::string& path);

} // namespace veriqc::dd
