/// \file extract.hpp
/// \brief Circuit extraction from graph-like ZX-diagrams (Backens, Miller-
///        Bakewell, de Felice, Lobski, van de Wetering, "There and back
///        again: a circuit extraction tale", Quantum 5, 2021) — the missing
///        half of the ZX-as-compiler-IR story the paper references.
///
/// The extractor processes the diagram from the outputs backwards: frontier
/// phases become phase gates, frontier-frontier Hadamard edges become CZs,
/// and Gauss-Jordan elimination over GF(2) of the frontier biadjacency
/// matrix (each row operation emitting a CNOT) exposes vertices that can be
/// moved into the frontier through a Hadamard.
///
/// Phase gadgets left by full_reduce are handled by a boundary-pivot rescue
/// (pulling the gadget to the frontier); the rare configurations the rescue
/// cannot reach yield std::nullopt rather than a wrong circuit.
#pragma once

#include "ir/circuit.hpp"
#include "zx/diagram.hpp"

#include <optional>

namespace veriqc::zx {

/// Extract a circuit realizing `diagram` (up to global phase). The diagram
/// must be graph-like (run Simplifier::toGraphLike / fullReduce first).
/// Returns std::nullopt when extraction gets stuck (phase gadgets).
[[nodiscard]] std::optional<QuantumCircuit>
extractCircuit(ZXDiagram diagram);

} // namespace veriqc::zx
