#include "audit/ir_audit.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace veriqc::audit {

namespace {

std::string opLocation(const std::size_t index, const Operation& op) {
  return "op " + std::to_string(index) + " (" + op.toString() + ")";
}

/// True for operation types the circuit inverter can handle.
bool isInvertible(const OpType type) noexcept {
  return type != OpType::None && type != OpType::Measure;
}

} // namespace

AuditReport auditOperation(const Operation& op, const std::size_t nqubits,
                           const std::string& location) {
  AuditReport report;
  if (op.type == OpType::None) {
    report.add(AuditSeverity::Error, "ir.op.type", "operation has type None",
               location);
    return report;
  }
  for (const auto p : op.params) {
    if (!std::isfinite(p)) {
      report.add(AuditSeverity::Error, "ir.op.param",
                 "non-finite parameter " + std::to_string(p), location);
    }
  }
  if (op.type == OpType::Barrier || op.type == OpType::Measure) {
    return report; // meta operations may list any qubits
  }
  std::set<Qubit> seen;
  for (const auto q : op.usedQubits()) {
    if (q >= nqubits) {
      report.add(AuditSeverity::Error, "ir.op.range",
                 "qubit " + std::to_string(q) + " out of range (n=" +
                     std::to_string(nqubits) + ")",
                 location);
    }
    if (!seen.insert(q).second) {
      report.add(AuditSeverity::Error, "ir.op.alias",
                 "qubit " + std::to_string(q) +
                     " aliased (listed more than once)",
                 location);
    }
  }
  if (isSingleTargetType(op.type) && op.targets.size() != 1) {
    report.add(AuditSeverity::Error, "ir.op.arity",
               "single-target type has " + std::to_string(op.targets.size()) +
                   " targets",
               location);
  }
  if (op.type == OpType::SWAP && op.targets.size() != 2) {
    report.add(AuditSeverity::Error, "ir.op.arity",
               "SWAP has " + std::to_string(op.targets.size()) + " targets",
               location);
  }
  if (op.params.size() != numParameters(op.type)) {
    report.add(AuditSeverity::Error, "ir.op.arity",
               "expected " + std::to_string(numParameters(op.type)) +
                   " parameters, got " + std::to_string(op.params.size()),
               location);
  }
  return report;
}

AuditReport auditPermutation(const Permutation& perm,
                             const std::size_t nqubits,
                             const std::string& location) {
  AuditReport report;
  if (nqubits != 0 && perm.size() != nqubits) {
    report.add(AuditSeverity::Error, "ir.perm.size",
               "permutation size " + std::to_string(perm.size()) +
                   " differs from circuit width " + std::to_string(nqubits),
               location);
  }
  // Re-derive bijectivity instead of trusting isValid(): report *which*
  // images collide or overflow so mutation tests and lint output are precise.
  const auto& map = perm.raw();
  std::vector<bool> hit(map.size(), false);
  for (std::size_t i = 0; i < map.size(); ++i) {
    const auto image = map[i];
    if (image >= map.size()) {
      report.add(AuditSeverity::Error, "ir.perm.bijection",
                 "image " + std::to_string(image) + " of " + std::to_string(i) +
                     " out of range",
                 location);
      continue;
    }
    if (hit[image]) {
      report.add(AuditSeverity::Error, "ir.perm.bijection",
                 "image " + std::to_string(image) + " hit more than once",
                 location);
    }
    hit[image] = true;
  }
  return report;
}

AuditReport auditCircuit(const QuantumCircuit& circuit) {
  AuditReport report;
  const auto& ops = circuit.ops();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    report.merge(
        auditOperation(ops[i], circuit.numQubits(), opLocation(i, ops[i])));
  }
  report.merge(auditPermutation(circuit.initialLayout(), circuit.numQubits(),
                                "initialLayout"));
  report.merge(auditPermutation(circuit.outputPermutation(),
                                circuit.numQubits(), "outputPermutation"));
  if (!std::isfinite(circuit.globalPhase())) {
    report.add(AuditSeverity::Error, "ir.phase.nonfinite",
               "non-finite global phase", "globalPhase");
  }
  return report;
}

AuditReport auditInvertRoundTrip(const QuantumCircuit& circuit,
                                 const double tolerance) {
  AuditReport report;
  const auto& ops = circuit.ops();
  if (const auto it = std::find_if(
          ops.begin(), ops.end(),
          [](const Operation& op) { return !isInvertible(op.type); });
      it != ops.end()) {
    report.add(AuditSeverity::Info, "ir.invert.roundtrip",
               "skipped: circuit contains non-invertible operation " +
                   it->toString());
    return report;
  }

  const auto inv = circuit.inverted();
  if (inv.size() != circuit.size()) {
    report.add(AuditSeverity::Error, "ir.invert.roundtrip",
               "inverted() changed the gate count from " +
                   std::to_string(circuit.size()) + " to " +
                   std::to_string(inv.size()));
    return report;
  }
  const std::size_t n = circuit.size();
  for (std::size_t i = 0; i < n; ++i) {
    // inverted() reverses the gate list; slot n-1-i must invert gate i.
    if (!inv.ops()[n - 1 - i].isInverseOf(ops[i], tolerance)) {
      report.add(AuditSeverity::Error, "ir.invert.roundtrip",
                 "inverted gate is not the inverse of its source: " +
                     inv.ops()[n - 1 - i].toString() + " vs " +
                     ops[i].toString(),
                 opLocation(i, ops[i]));
    }
  }
  if (inv.initialLayout().raw() != circuit.outputPermutation().raw() ||
      inv.outputPermutation().raw() != circuit.initialLayout().raw()) {
    report.add(AuditSeverity::Error, "ir.invert.roundtrip",
               "inverted() did not exchange the layout permutations");
  }
  if (std::abs(inv.globalPhase() + circuit.globalPhase()) > tolerance) {
    report.add(AuditSeverity::Error, "ir.invert.roundtrip",
               "inverted() did not negate the global phase");
  }

  // A double inversion must reproduce the original gate list; parameters may
  // only differ within tolerance (double negation is exact for the gate set,
  // but U2 legitimately round-trips through U3).
  const auto twice = inv.inverted();
  if (twice.size() != n) {
    report.add(AuditSeverity::Error, "ir.invert.roundtrip",
               "double inversion changed the gate count");
    return report;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto& a = ops[i];
    const auto& b = twice.ops()[i];
    // U2 inverts into U3, whose inverse stays U3 — compare those modulo the
    // defining identity u2(phi, lambda) = u3(pi/2, phi, lambda).
    Operation expected = a;
    if (a.type == OpType::U2) {
      expected.type = OpType::U3;
      expected.params = {PI_2, a.params[0], a.params[1]};
    }
    bool same = b.type == expected.type && b.controls == expected.controls &&
                b.targets == expected.targets &&
                b.params.size() == expected.params.size();
    for (std::size_t k = 0; same && k < b.params.size(); ++k) {
      same = std::abs(b.params[k] - expected.params[k]) <= tolerance;
    }
    if (!same) {
      report.add(AuditSeverity::Error, "ir.invert.roundtrip",
                 "double inversion changed gate " + a.toString() + " into " +
                     b.toString(),
                 opLocation(i, a));
    }
  }
  return report;
}

} // namespace veriqc::audit
