/// \file veriqc_lint.cpp
/// \brief Static checker for OpenQASM 2.0 / RevLib files.
///
/// Parses each input file *without executing any checker engine*, runs the
/// veriqc_audit IR auditors over the parsed circuit (operand aliasing,
/// qubit ranges, arity, non-finite parameters, layout bijectivity, invert()
/// round-trip) and emits every finding as a veriqc-lint/v1 JSON report on
/// stdout — the static-analysis companion of check_qasm's veriqc-report/v1.
///
/// Usage: veriqc_lint [--text] [--no-invert] <file.qasm|file.real>...
///        veriqc_lint --self-test
///
/// Files ending in ".real" are read as RevLib, everything else as OpenQASM.
/// Exit code: 0 = no errors, 1 = at least one error finding, 2 = usage or
/// I/O error.
#include "audit/ir_audit.hpp"
#include "obs/json.hpp"
#include "qasm/parser.hpp"
#include "qasm/revlib.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

using veriqc::audit::AuditReport;
using veriqc::audit::AuditSeverity;
using veriqc::obs::Json;

constexpr const char* kLintSchemaId = "veriqc-lint/v1";

struct Options {
  bool text = false;     ///< human-readable lines instead of JSON
  bool runInvert = true; ///< include the invert() round-trip audit
};

bool endsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

/// Lint one source text. `name` is used for finding locations.
AuditReport lintSource(const std::string& name, const std::string& source,
                       const bool isRevLib, const Options& options) {
  AuditReport report;
  veriqc::QuantumCircuit circuit(0);
  try {
    circuit = isRevLib ? veriqc::qasm::parseReal(source, name)
                       : veriqc::qasm::parse(source, name);
  } catch (const veriqc::qasm::ParseError& e) {
    report.add(AuditSeverity::Error, "parse.error", e.what(),
               name + ":" + std::to_string(e.line()) + ":" +
                   std::to_string(e.column()));
    return report; // no circuit to audit
  }
  report.merge(veriqc::audit::auditCircuit(circuit));
  if (options.runInvert) {
    report.merge(veriqc::audit::auditInvertRoundTrip(circuit));
  }
  return report;
}

Json findingToJson(const veriqc::audit::AuditFinding& finding) {
  Json j = Json::object();
  j["severity"] = veriqc::audit::toString(finding.severity);
  j["code"] = finding.code;
  j["message"] = finding.message;
  j["location"] = finding.location;
  return j;
}

int lintFiles(const std::vector<std::string>& paths, const Options& options) {
  Json output = Json::object();
  output["schema"] = kLintSchemaId;
  Json files = Json::array();
  std::size_t errors = 0;
  std::size_t warnings = 0;
  for (const auto& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const auto report =
        lintSource(path, buffer.str(), endsWith(path, ".real"), options);
    Json entry = Json::object();
    entry["file"] = path;
    Json findings = Json::array();
    for (const auto& finding : report.findings) {
      findings.push_back(findingToJson(finding));
      if (finding.severity == AuditSeverity::Error) {
        ++errors;
      } else if (finding.severity == AuditSeverity::Warning) {
        ++warnings;
      }
      if (options.text) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     finding.toString().c_str());
      }
    }
    entry["findings"] = std::move(findings);
    files.push_back(std::move(entry));
  }
  output["files"] = std::move(files);
  Json summary = Json::object();
  summary["files"] = paths.size();
  summary["errors"] = errors;
  summary["warnings"] = warnings;
  output["summary"] = std::move(summary);
  if (!options.text) {
    std::printf("%s\n", output.dump(2).c_str());
  }
  return errors > 0 ? 1 : 0;
}

bool reportHasCode(const AuditReport& report, const std::string& code) {
  for (const auto& finding : report.findings) {
    if (finding.code == code) {
      return true;
    }
  }
  return false;
}

/// Built-in smoke test so CI can exercise the tool without fixture files:
/// a clean program must produce no findings, and each seeded defect must be
/// caught with the expected finding code.
int selfTest() {
  const Options options;
  const auto clean = lintSource(
      "<clean>", "qreg q[2]; h q[0]; cx q[0], q[1];", false, options);
  if (clean.hasErrors()) {
    std::fprintf(stderr, "self-test: clean program produced errors:\n%s\n",
                 clean.toString().c_str());
    return 2;
  }
  const auto aliased = lintSource(
      "<aliased>", "qreg q[2]; cx q[0], q[0];", false, options);
  if (!reportHasCode(aliased, "parse.error")) {
    std::fprintf(stderr, "self-test: aliased operands not flagged\n");
    return 2;
  }
  const auto truncated = lintSource("<truncated>", "qreg q[", false, options);
  if (!reportHasCode(truncated, "parse.error")) {
    std::fprintf(stderr, "self-test: truncated program not flagged\n");
    return 2;
  }
  const auto revlib = lintSource(
      "<revlib>", ".numvars 2\n.variables a b\nt2 a a\n", true, options);
  if (!reportHasCode(revlib, "parse.error")) {
    std::fprintf(stderr, "self-test: RevLib aliasing not flagged\n");
    return 2;
  }
  const auto cleanReal = lintSource(
      "<clean.real>", ".numvars 2\n.variables a b\nt2 a b\n", true, options);
  if (cleanReal.hasErrors()) {
    std::fprintf(stderr, "self-test: clean RevLib produced errors:\n%s\n",
                 cleanReal.toString().c_str());
    return 2;
  }
  std::printf("veriqc_lint self-test passed\n");
  return 0;
}

} // namespace

int main(const int argc, const char** argv) {
  Options options;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--self-test") == 0) {
      return selfTest();
    }
    if (std::strcmp(argv[i], "--text") == 0) {
      options.text = true;
    } else if (std::strcmp(argv[i], "--no-invert") == 0) {
      options.runInvert = false;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      return 2;
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr,
                 "usage: veriqc_lint [--text] [--no-invert] "
                 "<file.qasm|file.real>...\n"
                 "       veriqc_lint --self-test\n");
    return 2;
  }
  return lintFiles(paths, options);
}
