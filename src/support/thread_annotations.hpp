/// \file thread_annotations.hpp
/// \brief Clang Thread Safety Analysis macros for compile-time locking
///        contracts.
///
/// Every mutex-protected structure of the concurrent layers (TaskPool,
/// SoftWatchdog, SharedGateCache, JobService, PhaseTimer, fault::Registry)
/// declares which capability guards which field (`VERIQC_GUARDED_BY`) and
/// which functions demand or acquire capabilities (`VERIQC_REQUIRES`,
/// `VERIQC_ACQUIRE`/`VERIQC_RELEASE`, `VERIQC_EXCLUDES`). Under Clang the
/// contracts are machine-checked at compile time:
///
///     clang++ ... -Wthread-safety -Werror=thread-safety
///
/// (wired into the build for every preset whenever the compiler is Clang,
/// and run as the `static-analysis` CI job / `scripts/check_thread_safety.sh`).
/// Off Clang every macro expands to nothing, so GCC builds are unaffected.
///
/// The annotated primitives live in support/mutex.hpp: a
/// `veriqc::support::Mutex` capability wrapper and the relockable scoped
/// `veriqc::support::LockGuard`. Raw `std::mutex` is invisible to the
/// analysis (libstdc++ ships no annotations), which is exactly why the
/// concurrent layers use the wrapper.
///
/// `VERIQC_NO_THREAD_SAFETY_ANALYSIS` is the only blanket escape hatch and
/// is reserved for documented lock-free fast paths; every use must carry a
/// comment justifying why the analysis cannot see the invariant.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define VERIQC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define VERIQC_THREAD_ANNOTATION(x) // no-op off Clang
#endif

/// Marks a type as a capability (a lock). `name` appears in diagnostics
/// ("mutex", "shared_mutex", ...).
#define VERIQC_CAPABILITY(name) VERIQC_THREAD_ANNOTATION(capability(name))

/// Marks an RAII type whose lifetime acquires/releases a capability.
#define VERIQC_SCOPED_CAPABILITY VERIQC_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read or written while holding `x`.
#define VERIQC_GUARDED_BY(x) VERIQC_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field: the *pointee* may only be touched while holding `x`.
#define VERIQC_PT_GUARDED_BY(x) VERIQC_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the listed capabilities held on entry (and still held
/// on exit).
#define VERIQC_REQUIRES(...)                                                   \
  VERIQC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define VERIQC_REQUIRES_SHARED(...)                                            \
  VERIQC_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and does not release it before return.
#define VERIQC_ACQUIRE(...)                                                    \
  VERIQC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define VERIQC_ACQUIRE_SHARED(...)                                             \
  VERIQC_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases a capability held on entry.
#define VERIQC_RELEASE(...)                                                    \
  VERIQC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define VERIQC_RELEASE_SHARED(...)                                             \
  VERIQC_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function attempts the acquisition; `result` is the success return value.
#define VERIQC_TRY_ACQUIRE(...)                                                \
  VERIQC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (the function acquires them
/// itself, or hands work to something that does). Checked under
/// -Wthread-safety-analysis for direct self-deadlock.
#define VERIQC_EXCLUDES(...) VERIQC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to a capability-guarded object.
#define VERIQC_RETURN_CAPABILITY(x)                                            \
  VERIQC_THREAD_ANNOTATION(lock_returned(x))

/// Assert (at runtime, from the analysis' point of view) that the capability
/// is held; used when acquisition is invisible to the analysis.
#define VERIQC_ASSERT_CAPABILITY(x)                                            \
  VERIQC_THREAD_ANNOTATION(assert_capability(x))

/// Opt a function out of the analysis entirely. Reserved for documented
/// lock-free fast paths; every use must explain the invariant in a comment.
#define VERIQC_NO_THREAD_SAFETY_ANALYSIS                                       \
  VERIQC_THREAD_ANNOTATION(no_thread_safety_analysis)
