/// \file dd_micro.cpp
/// \brief Google-benchmark microbenchmarks of the decision-diagram package.
#include "check/dd_checkers.hpp"
#include "circuits/benchmarks.hpp"
#include "dd/package.hpp"
#include "sim/dd_simulator.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace veriqc;

/// Attach the package's cache hit rates as benchmark counters.
void reportCacheCounters(benchmark::State& state, const dd::Package& package) {
  const auto stats = package.stats();
  state.counters["gate_cache_hit_rate"] = stats.gateCache.hitRate();
  const auto compute = stats.computeTotal();
  state.counters["compute_hit_rate"] = compute.hitRate();
  state.counters["compute_collisions"] =
      static_cast<double>(compute.collisions);
}

void BM_MakeGateDD(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dd::Package package(n);
  const auto matrix = gateMatrix(OpType::H, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        package.makeGateDD(matrix, {}, static_cast<Qubit>(n / 2)));
  }
  reportCacheCounters(state, package);
}
BENCHMARK(BM_MakeGateDD)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_MakeControlledGateDD(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dd::Package package(n);
  const auto matrix = gateMatrix(OpType::X, {});
  const std::vector<Qubit> controls{0, 1, 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        package.makeGateDD(matrix, controls, static_cast<Qubit>(n - 1)));
  }
  reportCacheCounters(state, package);
}
BENCHMARK(BM_MakeControlledGateDD)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_BuildUnitaryGhz(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto circuit = circuits::ghz(n);
  double hitRate = 0.0;
  for (auto _ : state) {
    dd::Package package(n);
    auto e = sim::buildUnitaryDD(package, circuit);
    benchmark::DoNotOptimize(e);
    hitRate = package.stats().gateCache.hitRate();
    package.decRef(e);
  }
  state.counters["gate_cache_hit_rate"] = hitRate;
}
BENCHMARK(BM_BuildUnitaryGhz)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_BuildUnitaryQft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto circuit = circuits::qft(n);
  double hitRate = 0.0;
  for (auto _ : state) {
    dd::Package package(n);
    auto e = sim::buildUnitaryDD(package, circuit);
    benchmark::DoNotOptimize(e);
    hitRate = package.stats().gateCache.hitRate();
    package.decRef(e);
  }
  state.counters["gate_cache_hit_rate"] = hitRate;
}
// Full QFT matrix DDs grow steeply with n (the construction
// infeasibility the alternating checker avoids) — keep sizes small.
BENCHMARK(BM_BuildUnitaryQft)->Arg(4)->Arg(6)->Arg(8);

void BM_MultiplySelf(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dd::Package package(n);
  auto e = sim::buildUnitaryDD(package, circuits::qft(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(package.multiply(e, e));
    package.garbageCollect();
  }
  package.decRef(e);
}
BENCHMARK(BM_MultiplySelf)->Arg(4)->Arg(6);

void BM_Trace(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dd::Package package(n);
  auto e = sim::buildUnitaryDD(package, circuits::qft(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(package.trace(e));
  }
  package.decRef(e);
}
BENCHMARK(BM_Trace)->Arg(4)->Arg(6)->Arg(8);

void BM_SimulateGrover(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto circuit = circuits::grover(n, 3);
  for (auto _ : state) {
    dd::Package package(n);
    auto result = sim::simulate(package, circuit, package.makeZeroState());
    benchmark::DoNotOptimize(result);
    package.decRef(result);
  }
}
BENCHMARK(BM_SimulateGrover)->Arg(4)->Arg(6);

/// Table-1-style repeated-gate workload: Grover iterations repeat the same
/// oracle/diffusion gates over and over, so the gate-DD cache carries the
/// construction.
void BM_BuildUnitaryGroverRepeated(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto circuit = circuits::grover(n, 3);
  double hitRate = 0.0;
  for (auto _ : state) {
    dd::Package package(n);
    auto e = sim::buildUnitaryDD(package, circuit);
    benchmark::DoNotOptimize(e);
    hitRate = package.stats().gateCache.hitRate();
    package.decRef(e);
  }
  state.counters["gate_cache_hit_rate"] = hitRate;
}
BENCHMARK(BM_BuildUnitaryGroverRepeated)->Arg(4)->Arg(6);

/// Random-stimuli equivalence check: sequential (1 worker) vs. a small
/// thread pool. Each worker owns its own package; identical verdicts by
/// construction (per-stimulus-index seeding).
void BM_SimulationCheckThreads(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const auto circuit = circuits::grover(5, 3);
  check::Configuration config;
  config.simulationRuns = 16;
  config.simulationThreads = threads;
  config.stimuliKind = sim::StimuliKind::LocalQuantum;
  std::size_t performed = 0;
  for (auto _ : state) {
    const auto result = check::ddSimulationCheck(circuit, circuit, config);
    benchmark::DoNotOptimize(result);
    performed = result.performedSimulations;
  }
  state.counters["performed"] = static_cast<double>(performed);
}
BENCHMARK(BM_SimulationCheckThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

} // namespace

BENCHMARK_MAIN();
