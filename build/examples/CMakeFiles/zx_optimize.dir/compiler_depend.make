# Empty compiler generated dependencies file for zx_optimize.
# This may be replaced when dependencies are built.
