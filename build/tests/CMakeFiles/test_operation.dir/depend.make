# Empty dependencies file for test_operation.
# This may be replaced when dependencies are built.
