#include "circuits/benchmarks.hpp"
#include "dd/compute_table.hpp"
#include "dd/package.hpp"
#include "dd/unique_table.hpp"
#include "sim/dd_simulator.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

namespace veriqc::dd {
namespace {

NodeSlab<mEdge>::Children terminalChildren() {
  return {kTerminalIndex, kTerminalIndex, kTerminalIndex, kTerminalIndex};
}

TEST(NodeSlabTest, DeduplicatesEqualNodes) {
  NodeSlab<mEdge> slab(0);
  const auto children = terminalChildren();
  const NodeSlab<mEdge>::Weights weights{{{1.0, 0.0},
                                          {0.0, 0.0},
                                          {0.0, 0.0},
                                          {1.0, 0.0}}};
  const auto a = slab.lookup(children, weights);
  EXPECT_EQ(levelOfIndex(a), 0);
  const auto b = slab.lookup(children, weights);
  EXPECT_EQ(a, b);
  EXPECT_EQ(slab.size(), 1U);
  EXPECT_EQ(slab.stats().hits, 1U);
}

TEST(NodeSlabTest, RemoveRecyclesTheSlot) {
  NodeSlab<mEdge> slab(0);
  const NodeSlab<mEdge>::Weights w1{{{1.0, 0.0},
                                     {0.0, 0.0},
                                     {0.0, 0.0},
                                     {1.0, 0.0}}};
  const NodeSlab<mEdge>::Weights w2{{{1.0, 0.0},
                                     {0.5, 0.0},
                                     {0.0, 0.0},
                                     {1.0, 0.0}}};
  const auto a = slab.lookup(terminalChildren(), w1);
  slab.remove(a);
  EXPECT_FALSE(slab.contains(a));
  EXPECT_EQ(slab.size(), 0U);
  // The freed slot is reused for the next insertion (free-list first).
  const auto b = slab.lookup(terminalChildren(), w2);
  EXPECT_EQ(slotOfIndex(b), slotOfIndex(a));
  EXPECT_EQ(slab.stats().allocatedSlots, 1U);
}

TEST(NodeSlabTest, GrowsBeyondInitialBuckets) {
  NodeSlab<mEdge> slab(0);
  // Insert far more distinct nodes than the initial bucket count.
  for (int i = 1; i <= 3000; ++i) {
    const NodeSlab<mEdge>::Weights weights{{{static_cast<double>(i), 0.0},
                                            {0.0, 0.0},
                                            {0.0, 0.0},
                                            {1.0, 0.0}}};
    const auto n = slab.lookup(terminalChildren(), weights);
    ASSERT_TRUE(slab.contains(n)) << i;
  }
  EXPECT_EQ(slab.size(), 3000U);
  const auto stats = slab.stats();
  EXPECT_GT(stats.buckets, 64U);
  EXPECT_GT(stats.slabGrowths, 0U);
  EXPECT_GE(stats.meanProbeLength(), 1.0);
}

TEST(NodeSlabTest, GarbageCollectRemovesOnlyDeadNodes) {
  NodeSlab<mEdge> slab(0);
  const NodeSlab<mEdge>::Weights w1{{{1.0, 0.0},
                                     {0.0, 0.0},
                                     {0.0, 0.0},
                                     {1.0, 0.0}}};
  const NodeSlab<mEdge>::Weights w2{{{1.0, 0.0},
                                     {0.0, 0.0},
                                     {0.0, 0.0},
                                     {0.5, 0.0}}};
  const auto alive = slab.lookup(terminalChildren(), w1);
  slab.ref(slotOfIndex(alive)) = 1;
  const auto dead = slab.lookup(terminalChildren(), w2);
  EXPECT_EQ(slab.garbageCollect(), 1U);
  EXPECT_EQ(slab.size(), 1U);
  EXPECT_TRUE(slab.contains(alive));
  EXPECT_FALSE(slab.contains(dead));
}

TEST(ComputeTableTest, InsertLookupAndClear) {
  ComputeTable<mEdge, mEdge, mEdge> table;
  const auto n = makeNodeIndex(0, 1);
  const mEdge key1{n, {1.0, 0.0}};
  const mEdge key2{n, {0.5, 0.0}};
  const mEdge value{n, {0.25, 0.0}};
  EXPECT_EQ(table.lookup(key1, key2), nullptr);
  table.insert(key1, key2, value);
  const auto* hit = table.lookup(key1, key2);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, value);
  // Different weight misses.
  EXPECT_EQ(table.lookup(key2, key1), nullptr);
  table.clear();
  EXPECT_EQ(table.lookup(key1, key2), nullptr);
  EXPECT_GE(table.lookups(), 3U);
  EXPECT_EQ(table.hits(), 1U);
}

TEST(ComputeTableTest, GenerationBumpInvalidatesInConstantTime) {
  ComputeTable<mEdge, mEdge, mEdge> table(8);
  const auto n = makeNodeIndex(0, 1);
  const mEdge key{n, {1.0, 0.0}};
  const mEdge value{n, {0.5, 0.0}};
  table.insert(key, key, value);
  ASSERT_NE(table.lookup(key, key), nullptr);
  table.clear();
  EXPECT_EQ(table.lookup(key, key), nullptr);
  EXPECT_EQ(table.stats().invalidations, 1U);
  // A stale entry must not resurface in the new generation, but fresh
  // inserts behave as in an empty table.
  table.insert(key, key, value);
  const auto* hit = table.lookup(key, key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, value);
}

TEST(ComputeTableTest, CollisionStressNeverReturnsWrongValue) {
  // Two slots: nearly every insert evicts and mismatched lookups collide.
  ComputeTable<mEdge, mEdge, mEdge> table(2);
  EXPECT_EQ(table.capacity(), 2U);
  const auto n = makeNodeIndex(0, 1);
  constexpr int kKeys = 256;
  for (int i = 0; i < kKeys; ++i) {
    const mEdge lhs{n, {static_cast<double>(i), 0.0}};
    const mEdge rhs{n, {0.0, static_cast<double>(i)}};
    table.insert(lhs, rhs, mEdge{n, {static_cast<double>(i), -1.0}});
  }
  for (int i = 0; i < kKeys; ++i) {
    const mEdge lhs{n, {static_cast<double>(i), 0.0}};
    const mEdge rhs{n, {0.0, static_cast<double>(i)}};
    const auto* hit = table.lookup(lhs, rhs);
    if (hit != nullptr) {
      // A hit must carry exactly the value inserted under this key.
      EXPECT_EQ(hit->w, (std::complex<double>{static_cast<double>(i), -1.0}))
          << i;
    }
  }
  EXPECT_GT(table.stats().collisions, 0U);
  EXPECT_LT(table.stats().hits, static_cast<std::size_t>(kKeys));
}

TEST(NodePairComputeTableTest, PackedKeysDistinguishOperandOrder) {
  NodePairComputeTable<mEdge> table(8);
  const auto a = makeNodeIndex(1, 3);
  const auto b = makeNodeIndex(1, 7);
  const mEdge resAB{a, {0.5, 0.0}};
  table.insert(a, b, resAB);
  const auto* hit = table.lookup(a, b);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, resAB);
  // The reversed pair is a different key (xy != yx in general).
  const auto* reversed = table.lookup(b, a);
  if (reversed != nullptr) {
    // If the hash buckets collide, the key compare must still reject it.
    EXPECT_EQ(*reversed, resAB) << "stale value surfaced for a reversed key";
    FAIL() << "reversed operand pair must not hit";
  }
  table.clear();
  EXPECT_EQ(table.lookup(a, b), nullptr);
  EXPECT_EQ(table.stats().invalidations, 1U);
}

TEST(UnaryComputeTableTest, CountsLookupsHitsAndInvalidations) {
  UnaryComputeTable<mEdge> table(4);
  const auto a = makeNodeIndex(0, 0);
  const auto b = makeNodeIndex(1, 0);
  EXPECT_EQ(table.lookup(a), nullptr); // miss on an empty table is counted
  table.insert(a, mEdge{a, {1.0, 0.0}});
  ASSERT_NE(table.lookup(a), nullptr);
  EXPECT_EQ(table.lookup(b), nullptr);
  EXPECT_EQ(table.stats().lookups, 3U);
  EXPECT_EQ(table.stats().hits, 1U);
  table.clear();
  EXPECT_EQ(table.lookup(a), nullptr);
  EXPECT_EQ(table.stats().invalidations, 1U);
}

TEST(RealTableTest, NeighborBucketLookupAcrossBoundary) {
  RealTable table(1e-6);
  // Two values within tolerance but in adjacent buckets must unify.
  const double v1 = 1.0 - 1e-7;
  const double v2 = 1.0 + 1e-7;
  const double a = table.lookup(v1);
  const double b = table.lookup(v2);
  EXPECT_EQ(a, b);
}

TEST(RealTableTest, CountsDistinctValues) {
  RealTable table(1e-10);
  (void)table.lookup(0.123);
  (void)table.lookup(0.456);
  (void)table.lookup(0.123 + 1e-12); // unifies
  EXPECT_EQ(table.size(), 2U);
  table.clear();
  EXPECT_EQ(table.size(), 0U);
}

TEST(PackageTest, ZeroMatrixAbsorbsMultiplication) {
  Package p(3);
  const auto h = p.makeOperationDD(Operation(OpType::H, {}, {0}));
  const auto zero = p.zeroMatrix();
  EXPECT_TRUE(p.multiply(h, zero).isZero());
  EXPECT_TRUE(p.multiply(zero, h).isZero());
  // Adding zero is the identity of addition.
  const auto sum = p.add(h, zero);
  EXPECT_EQ(sum.n, h.n);
  EXPECT_EQ(sum.w, h.w);
}

TEST(PackageTest, ConjugateTransposeIsInvolution) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    Package p(3);
    auto e = sim::buildUnitaryDD(p, circuits::randomCircuit(3, 15, seed));
    const auto twice = p.conjugateTranspose(p.conjugateTranspose(e));
    EXPECT_EQ(twice.n, e.n) << "seed " << seed;
    EXPECT_NEAR(std::abs(twice.w - e.w), 0.0, 1e-12) << "seed " << seed;
    p.decRef(e);
  }
}

TEST(PackageTest, MultiplicationIsAssociative) {
  Package p(2);
  const auto a = p.makeOperationDD(Operation(OpType::H, {}, {0}));
  const auto b = p.makeOperationDD(Operation(OpType::X, {0}, {1}));
  const auto c = p.makeOperationDD(Operation(OpType::S, {}, {1}));
  const auto left = p.multiply(p.multiply(a, b), c);
  const auto right = p.multiply(a, p.multiply(b, c));
  EXPECT_EQ(left.n, right.n);
  EXPECT_NEAR(std::abs(left.w - right.w), 0.0, 1e-12);
}

TEST(PackageTest, BasisStateSizeMismatchThrows) {
  Package p(3);
  EXPECT_THROW((void)p.makeBasisState({true, false}), std::invalid_argument);
}

TEST(PackageTest, GetEntryOnZeroEdge) {
  Package p(2);
  EXPECT_EQ(p.getEntry(p.zeroMatrix(), 0, 0), std::complex<double>{});
  EXPECT_EQ(p.getAmplitude(p.zeroVectorEdge(), 1), std::complex<double>{});
}

TEST(PackageTest, StatsReflectLiveNodes) {
  Package p(4);
  auto e = sim::buildUnitaryDD(p, circuits::qft(4));
  const auto stats = p.stats();
  EXPECT_GT(stats.matrixNodes, 4U);
  EXPECT_GT(stats.allocations, 0U);
  EXPECT_GT(stats.realNumbers, 0U);
  // Slab metrics are populated and consistent with the node counts.
  EXPECT_EQ(stats.matrixStore.liveNodes, stats.matrixNodes);
  EXPECT_GE(stats.matrixStore.allocatedSlots, stats.matrixNodes);
  EXPECT_GT(stats.matrixStore.lookups, 0U);
  EXPECT_GE(stats.matrixStore.meanProbeLength(), 1.0);
  EXPECT_GT(stats.storeTotal().occupancy(), 0.0);
  p.decRef(e);
}

TEST(PackageTest, IsIdentityStrictVsGlobalPhase) {
  Package p(2);
  const auto ident = p.makeIdent();
  EXPECT_TRUE(p.isIdentity(ident, false));
  const mEdge phased{ident.n, std::complex<double>{0.0, 1.0}};
  EXPECT_TRUE(p.isIdentity(phased, true));
  EXPECT_FALSE(p.isIdentity(phased, false));
  EXPECT_FALSE(p.isIdentity(p.zeroMatrix(), true));
}

TEST(PackageTest, TraceFidelityDistinguishes) {
  Package p(2);
  const auto x = p.makeOperationDD(Operation(OpType::X, {}, {0}));
  EXPECT_LT(p.traceFidelity(x), 0.1);
  EXPECT_NEAR(p.traceFidelity(p.makeIdent()), 1.0, 1e-12);
}

TEST(PackageTest, SwapDDEqualsThreeCnotProduct) {
  Package p(3);
  const auto swap = p.makeSwapDD(0, 2);
  QuantumCircuit c(3);
  c.cx(0, 2);
  c.cx(2, 0);
  c.cx(0, 2);
  auto viaCx = sim::buildUnitaryDD(p, c);
  EXPECT_EQ(swap.n, viaCx.n);
  p.decRef(viaCx);
}

TEST(PackageTest, GarbageCollectionInvalidatesComputeCaches) {
  Package p(3);
  auto e = sim::buildUnitaryDD(p, circuits::randomCircuit(3, 20, 1));
  (void)p.multiply(e, e);
  const auto before = p.stats();
  EXPECT_GT(before.multiply.lookups, 0U);
  p.garbageCollect(true);
  const auto after = p.stats();
  EXPECT_GT(after.multiply.invalidations, before.multiply.invalidations);
  // Recomputation after the generation bump still yields canonical results.
  const auto prod1 = p.multiply(e, e);
  const auto prod2 = p.multiply(e, e);
  EXPECT_EQ(prod1.n, prod2.n);
  EXPECT_EQ(prod1.w, prod2.w);
  p.decRef(e);
}

TEST(PackageTest, GateCacheHitsAcrossGarbageCollection) {
  Package p(3);
  const auto matrix = gateMatrix(OpType::H, {});
  const auto first = p.makeGateDD(matrix, {}, 1);
  // Create garbage and force a collection; the cached gate DD holds its own
  // reference, so the identical canonical node must come back afterwards.
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    auto tmp = sim::buildUnitaryDD(p, circuits::randomCircuit(3, 15, seed));
    p.decRef(tmp);
  }
  EXPECT_GT(p.garbageCollect(true), 0U);
  const auto second = p.makeGateDD(matrix, {}, 1);
  EXPECT_EQ(second.n, first.n);
  EXPECT_EQ(second.w, first.w);
  EXPECT_GE(p.stats().gateCache.hits, 1U);
}

TEST(PackageTest, GateCacheFlushPreservesCorrectness) {
  PackageConfig config;
  config.gateCacheMaxEntries = 2; // force frequent wholesale flushes
  Package p(2, RealTable::kDefaultTolerance, config);
  const auto reference =
      p.makeOperationDD(Operation(OpType::P, {}, {0}, {0.1}));
  for (int i = 1; i <= 8; ++i) {
    (void)p.makeOperationDD(
        Operation(OpType::P, {}, {0}, {0.1 * i + 0.05}));
  }
  const auto stats = p.stats();
  EXPECT_GT(stats.gateCache.invalidations, 0U);
  EXPECT_LE(stats.gateCacheEntries, 2U);
  // Rebuilding an evicted gate still yields the canonical node.
  const auto again = p.makeOperationDD(Operation(OpType::P, {}, {0}, {0.1}));
  EXPECT_EQ(again.n, reference.n);
  EXPECT_EQ(again.w, reference.w);
}

TEST(PackageTest, NestedGateBuildsDoNotPoisonTheGateCache) {
  // makeSwapDD builds nested CX gate DDs (buildSwapDD -> makeGateDD) while
  // the swap's own cache key is still live. With a single scratch key the
  // nested build clobbered the outer key, so the swap could be inserted
  // under the CX's key — poisoning later CX lookups. Build the swap first so
  // the nested CX enters the cache cold, then exercise both entries.
  Package p(2);
  const auto swap = p.makeSwapDD(0, 1);
  const auto cx = p.makeOperationDD(Operation(OpType::X, {0}, {1}));
  // The CX cache hit must return a CX, not the swap...
  EXPECT_FALSE(cx.n == swap.n && cx.w == swap.w);
  // ... and both entries must still be involutions.
  EXPECT_TRUE(p.isIdentity(p.multiply(cx, cx), false));
  EXPECT_TRUE(p.isIdentity(p.multiply(swap, swap), false));
  // Cached round trips stay canonical.
  const auto swapAgain = p.makeSwapDD(0, 1);
  EXPECT_EQ(swapAgain.n, swap.n);
  EXPECT_EQ(swapAgain.w, swap.w);
  const auto cxAgain = p.makeOperationDD(Operation(OpType::X, {0}, {1}));
  EXPECT_EQ(cxAgain.n, cx.n);
  EXPECT_EQ(cxAgain.w, cx.w);
}

TEST(PackageTest, WarmGateSourceImportsInsteadOfRebuilding) {
  auto donor = std::make_shared<Package>(2);
  const auto donorH = donor->makeOperationDD(Operation(OpType::H, {}, {0}));
  (void)donor->makeOperationDD(Operation(OpType::X, {0}, {1}));

  Package p(2);
  ASSERT_TRUE(p.adoptWarmGateSource(donor));
  const auto h = p.makeOperationDD(Operation(OpType::H, {}, {0}));
  EXPECT_EQ(p.stats().gateCacheWarmHits, 1U);
  // The imported edge is canonical in the adopter and matches a rebuild.
  Package fresh(2);
  const auto rebuilt = fresh.makeOperationDD(Operation(OpType::H, {}, {0}));
  EXPECT_EQ(h.w, rebuilt.w);
  EXPECT_EQ(donorH.w, h.w);
  // A second request is a plain (local) cache hit, not another import.
  (void)p.makeOperationDD(Operation(OpType::H, {}, {0}));
  EXPECT_EQ(p.stats().gateCacheWarmHits, 1U);

  // Shape mismatches are refused: different qubit count...
  Package wide(3);
  EXPECT_FALSE(wide.adoptWarmGateSource(donor));
  // ... different tolerance, and null.
  Package loose(2, RealTable::kDefaultTolerance * 2);
  EXPECT_FALSE(loose.adoptWarmGateSource(donor));
  EXPECT_FALSE(p.adoptWarmGateSource(nullptr));
}

TEST(PackageTest, ExportGateCacheSeedsAnotherPackage) {
  Package src(2);
  (void)src.makeOperationDD(Operation(OpType::H, {}, {0}));
  (void)src.makeOperationDD(Operation(OpType::S, {}, {1}));
  Package dst(2);
  src.exportGateCacheInto(dst);
  const auto before = dst.stats().gateCache;
  (void)dst.makeOperationDD(Operation(OpType::H, {}, {0}));
  const auto after = dst.stats().gateCache;
  EXPECT_EQ(after.hits, before.hits + 1);
  Package mismatched(3);
  EXPECT_THROW(src.exportGateCacheInto(mismatched), std::invalid_argument);
}

TEST(PackageTest, TinyComputeTablesRemainCorrect) {
  // Shrunken tables make collisions the common case; results must not change.
  PackageConfig config;
  config.computeTableEntries = 4;
  config.unaryTableEntries = 2;
  Package p(4, RealTable::kDefaultTolerance, config);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    auto e = sim::buildUnitaryDD(p, circuits::randomCircuit(4, 30, seed));
    const auto ct = p.conjugateTranspose(e);
    EXPECT_TRUE(p.isIdentity(p.multiply(ct, e), false)) << "seed " << seed;
    p.decRef(e);
  }
  const auto stats = p.stats();
  EXPECT_GT(stats.computeTotal().collisions, 0U);
  EXPECT_GT(stats.conjugateTranspose.lookups, 0U);
}

TEST(PackageTest, GcThresholdIsConfigurableAndExposed) {
  PackageConfig config;
  config.gcInitialThreshold = 128;
  Package p(2, RealTable::kDefaultTolerance, config);
  EXPECT_EQ(p.stats().gcThreshold, 128U);
  Package q(2);
  EXPECT_EQ(q.stats().gcThreshold, kGcInitialThreshold);
}

TEST(PackageTest, NodeBudgetThrowsWhenLiveNodesCannotBeCollected) {
  PackageConfig config;
  config.maxNodes = 2;
  Package p(8, RealTable::kDefaultTolerance, config);
  // An empty package is under any budget.
  EXPECT_NO_THROW((void)p.garbageCollect(true));
  // The 8-qubit identity holds 8 live nodes (referenced and additionally
  // pinned by the package's identity cache), so a forced collection cannot
  // shrink below the budget and must throw.
  const auto ident = p.makeIdent();
  p.incRef(ident);
  try {
    (void)p.garbageCollect(true);
    FAIL() << "expected ResourceLimitError";
  } catch (const ResourceLimitError& e) {
    EXPECT_EQ(e.resource(), "DD nodes");
    EXPECT_EQ(e.limit(), 2U);
    EXPECT_GE(e.observed(), 8U);
  }
}

TEST(PackageTest, UnlimitedBudgetNeverThrows) {
  Package p(8);
  const auto ident = p.makeIdent();
  p.incRef(ident);
  EXPECT_NO_THROW((void)p.garbageCollect(true));
}

TEST(PackageTest, PeakResidentSetIsReported) {
  // getrusage-backed watermark: any live process has a nonzero peak RSS.
  EXPECT_GT(Package::peakResidentSetKB(), 0U);
}

// --- eager release (lookahead loser reclamation) -----------------------------

TEST(PackageReleaseTest, ReleaseReclaimsUnreferencedDiagramImmediately) {
  Package p(4);
  auto kept = sim::buildUnitaryDD(p, circuits::qft(4));
  const auto baseline = p.stats().matrixNodes;
  // An unreferenced product — exactly a lookahead oracle's losing candidate.
  auto loser = p.multiply(kept, kept);
  const auto afterMultiply = p.stats().matrixNodes;
  ASSERT_GT(afterMultiply, baseline);
  const auto loserNodes = p.nodeCount(loser);
  const auto removed = p.release(loser);
  // The loser's exclusive nodes are reclaimed immediately — no GC sweep —
  // which is what keeps node budgets and the adaptive GC threshold honest
  // between lookahead steps. (Orphaned multiply intermediates outside the
  // product DAG stay until the next sweep, so the count need not return all
  // the way to the baseline.)
  EXPECT_GT(removed, 0U);
  EXPECT_LE(removed, loserNodes);
  EXPECT_EQ(p.stats().matrixNodes, afterMultiply - removed);
  EXPECT_EQ(p.stats().releasedNodes, removed);
  p.decRef(kept);
}

TEST(PackageReleaseTest, ReleaseStopsAtSharedReferencedNodes) {
  Package p(3);
  auto winner = sim::buildUnitaryDD(p, circuits::randomCircuit(3, 20, 5));
  // Loser shares winner's entire DAG as a subcomputation: releasing it must
  // not reclaim anything the winner still references.
  auto loser = p.multiply(p.makeOperationDD(Operation(OpType::H, {}, {0})),
                          winner);
  const auto winnerNodes = p.nodeCount(winner);
  (void)p.release(loser);
  EXPECT_EQ(p.nodeCount(winner), winnerNodes);
  // The winner's diagram is still canonical and usable after the release.
  const auto prod1 = p.multiply(winner, winner);
  const auto prod2 = p.multiply(winner, winner);
  EXPECT_EQ(prod1.n, prod2.n);
  EXPECT_EQ(prod1.w, prod2.w);
  p.decRef(winner);
}

TEST(PackageReleaseTest, ReleaseOnReferencedRootIsANoOp) {
  Package p(3);
  auto e = sim::buildUnitaryDD(p, circuits::qft(3));
  const auto before = p.stats().matrixNodes;
  EXPECT_EQ(p.release(e), 0U); // root is incRef'd — nothing may be touched
  EXPECT_EQ(p.stats().matrixNodes, before);
  p.decRef(e);
}

TEST(PackageReleaseTest, SubsequentGarbageCollectionSurvivesEagerRelease) {
  // The hazard pair: eager removal followed by a threshold sweep must not
  // double-free or trip over already-reclaimed slots.
  Package p(4);
  auto kept = sim::buildUnitaryDD(p, circuits::qft(4));
  for (int i = 0; i < 4; ++i) {
    auto loser = p.multiply(kept, kept);
    (void)p.release(loser);
  }
  EXPECT_NO_THROW((void)p.garbageCollect(true));
  const auto prod = p.multiply(kept, kept);
  EXPECT_FALSE(prod.isZero());
  p.decRef(kept);
}

} // namespace
} // namespace veriqc::dd
