/// \file architecture.hpp
/// \brief Quantum device coupling maps and shortest-path distances.
#pragma once

#include "ir/types.hpp"

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace veriqc::compile {

/// An undirected coupling map: two-qubit gates may only act on connected
/// pairs of physical qubits.
class Architecture {
public:
  Architecture(std::string name, std::size_t nqubits,
               std::vector<std::pair<Qubit, Qubit>> edges);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t numQubits() const noexcept { return nqubits_; }
  [[nodiscard]] const std::vector<std::pair<Qubit, Qubit>>&
  edges() const noexcept {
    return edges_;
  }
  [[nodiscard]] const std::vector<Qubit>& neighbors(Qubit q) const {
    return adjacency_.at(q);
  }

  [[nodiscard]] bool adjacent(Qubit a, Qubit b) const;

  /// Hop distance between physical qubits (BFS, precomputed).
  [[nodiscard]] std::size_t distance(Qubit a, Qubit b) const {
    return distances_.at(a).at(b);
  }

  /// One shortest path from a to b, inclusive of both endpoints.
  [[nodiscard]] std::vector<Qubit> shortestPath(Qubit a, Qubit b) const;

  /// True if the coupling graph is connected.
  [[nodiscard]] bool isConnected() const;

  // --- factory methods --------------------------------------------------------
  static Architecture linear(std::size_t nqubits);
  static Architecture ring(std::size_t nqubits);
  static Architecture grid(std::size_t rows, std::size_t cols);
  /// 65-qubit heavy-hex lattice in the style of IBM's Manhattan device
  /// (the architecture used for the paper's "Compiled Circuits" use case).
  static Architecture ibmManhattanLike();
  /// Fully connected (no routing needed) — a baseline for ablations.
  static Architecture fullyConnected(std::size_t nqubits);

private:
  void computeDistances();

  std::string name_;
  std::size_t nqubits_;
  std::vector<std::pair<Qubit, Qubit>> edges_;
  std::vector<std::vector<Qubit>> adjacency_;
  std::vector<std::vector<std::size_t>> distances_;
};

} // namespace veriqc::compile
