#include "zx/export.hpp"

#include <fstream>
#include <sstream>

namespace veriqc::zx {

std::string toDot(const ZXDiagram& diagram) {
  std::ostringstream os;
  os << "graph zx {\n  layout=neato;\n  node [style=filled];\n";
  for (const auto v : diagram.vertices()) {
    os << "  v" << v;
    switch (diagram.type(v)) {
    case VertexType::Boundary:
      os << " [shape=none, fillcolor=white, label=\"" << v << "\"]";
      break;
    case VertexType::Z:
      os << " [shape=circle, fillcolor=\"#99dd99\", label=\""
         << (diagram.phase(v).isZero() ? "" : diagram.phase(v).toString())
         << "\"]";
      break;
    case VertexType::X:
      os << " [shape=circle, fillcolor=\"#dd9999\", label=\""
         << (diagram.phase(v).isZero() ? "" : diagram.phase(v).toString())
         << "\"]";
      break;
    }
    os << ";\n";
  }
  for (const auto v : diagram.vertices()) {
    for (const auto& [w, mult] : diagram.neighbors(v)) {
      if (w < v) {
        continue;
      }
      for (int i = 0; i < mult.simple; ++i) {
        os << "  v" << v << " -- v" << w << ";\n";
      }
      for (int i = 0; i < mult.hadamard; ++i) {
        os << "  v" << v << " -- v" << w
           << " [style=dashed, color=blue];\n";
      }
    }
  }
  os << "}\n";
  return os.str();
}

void writeDot(const ZXDiagram& diagram, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot write DOT file: " + path);
  }
  out << toDot(diagram);
}

} // namespace veriqc::zx
