/// \file dense.hpp
/// \brief Exact dense statevector/unitary reference implementation.
///
/// This module is the semantic ground truth of the library: every other
/// representation (decision diagrams, ZX-diagrams) is validated against it in
/// the test suite. It is exponential in the number of qubits and intended for
/// small instances only.
#pragma once

#include "ir/circuit.hpp"
#include "ir/permutation.hpp"

#include <complex>
#include <cstddef>
#include <vector>

namespace veriqc::sim {

using Amplitude = std::complex<double>;
using StateVector = std::vector<Amplitude>;

/// A dense square complex matrix (row-major).
class Matrix {
public:
  Matrix() = default;
  explicit Matrix(std::size_t dim) : dim_(dim), data_(dim * dim) {}

  static Matrix identity(std::size_t dim);

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

  [[nodiscard]] Amplitude& at(std::size_t row, std::size_t col) {
    return data_[row * dim_ + col];
  }
  [[nodiscard]] const Amplitude& at(std::size_t row, std::size_t col) const {
    return data_[row * dim_ + col];
  }

  [[nodiscard]] Matrix multiply(const Matrix& rhs) const;
  [[nodiscard]] Matrix adjoint() const;
  [[nodiscard]] Amplitude trace() const;

  /// Frobenius distance ||A - B||.
  [[nodiscard]] double distance(const Matrix& other) const;

  /// True if A == e^{i theta} B for some theta (within tol), decided via the
  /// Hilbert-Schmidt criterion |tr(A^dagger B)| ~ dim.
  [[nodiscard]] bool equalsUpToGlobalPhase(const Matrix& other,
                                           double tol = 1e-9) const;

  /// True if A == B entry-wise within tol.
  [[nodiscard]] bool equals(const Matrix& other, double tol = 1e-9) const;

private:
  std::size_t dim_ = 0;
  std::vector<Amplitude> data_;
};

/// |0...0> on n qubits.
[[nodiscard]] StateVector zeroState(std::size_t nqubits);

/// Apply a single operation (in wire space) to a state vector, in place.
void applyOperation(const Operation& op, std::size_t nqubits,
                    StateVector& state);

/// Run the gate list of `circuit` on `state` (wire space; the circuit's
/// permutations are NOT applied). Includes the global phase.
void applyGates(const QuantumCircuit& circuit, StateVector& state);

/// Full circuit semantics on logical qubits:
/// applies R(initialLayout), the gates, then R(outputPermutation)^dagger.
void applyLogical(const QuantumCircuit& circuit, StateVector& state);

/// The permutation operator R(sigma): places logical qubit sigma(w) on wire w,
/// i.e. <x|R|z> = prod_w delta(x_w, z_sigma(w)).
[[nodiscard]] Matrix permutationMatrix(const Permutation& sigma);

/// The full 2^n x 2^n unitary realized by the circuit on logical qubits
/// (permutations and global phase included).
[[nodiscard]] Matrix circuitUnitary(const QuantumCircuit& circuit);

/// Inner product <a|b>.
[[nodiscard]] Amplitude innerProduct(const StateVector& a,
                                     const StateVector& b);

} // namespace veriqc::sim
