/// \file check_qasm.cpp
/// \brief Command-line equivalence checker for OpenQASM 2.0 files —
///        the "few lines of code" out-of-the-box usage of Sec. 6.
///
/// Usage: check_qasm <a.qasm> <b.qasm> [--method dd|zx|both]
///                   [--timeout <seconds>] [--sims <n>]
///
/// Exit code: 0 = equivalent, 1 = not equivalent, 2 = undecided, 3 = error.
#include "check/manager.hpp"
#include "qasm/parser.hpp"

#include <cstdio>
#include <cstring>
#include <string>

namespace {

void usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s <a.qasm> <b.qasm> [--method dd|zx|both] "
               "[--timeout <seconds>] [--sims <n>]\n",
               prog);
}

} // namespace

int main(int argc, char** argv) {
  using namespace veriqc;
  if (argc < 3) {
    usage(argv[0]);
    return 3;
  }
  std::string method = "both";
  check::Configuration config;
  config.simulationRuns = 16;
  config.timeout = std::chrono::seconds(60);
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--method") == 0 && i + 1 < argc) {
      method = argv[++i];
    } else if (std::strcmp(argv[i], "--timeout") == 0 && i + 1 < argc) {
      config.timeout = std::chrono::seconds(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--sims") == 0 && i + 1 < argc) {
      config.simulationRuns = static_cast<std::size_t>(std::atol(argv[++i]));
    } else {
      usage(argv[0]);
      return 3;
    }
  }

  try {
    const auto a = qasm::parseFile(argv[1]);
    const auto b = qasm::parseFile(argv[2]);
    std::printf("%s: %zu qubits, %zu gates\n", argv[1], a.numQubits(),
                a.gateCount());
    std::printf("%s: %zu qubits, %zu gates\n", argv[2], b.numQubits(),
                b.gateCount());

    config.runAlternating = config.runSimulation = (method != "zx");
    config.runZX = (method == "zx" || method == "both");
    const auto result = check::checkEquivalence(a, b, config);
    std::printf("verdict: %s\n", result.toString().c_str());

    if (check::provedEquivalent(result.criterion)) {
      return 0;
    }
    if (result.criterion == check::EquivalenceCriterion::NotEquivalent) {
      return 1;
    }
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  }
}
