#include "audit/zx_audit.hpp"

#include <algorithm>
#include <numeric>
#include <string>
#include <unordered_set>

namespace veriqc::audit {

namespace {

std::string vertexLocation(const zx::Vertex v) {
  return "vertex " + std::to_string(v);
}

void auditPhase(const zx::PiRational& phase, const std::string& where,
                AuditReport& report) {
  const auto num = phase.num();
  const auto den = phase.den();
  if (den < 1) {
    report.add(AuditSeverity::Error, "zx.phase.form",
               "denominator " + std::to_string(den) + " < 1", where);
    return;
  }
  if (num == 0 && den != 1) {
    report.add(AuditSeverity::Error, "zx.phase.form",
               "zero phase stored with denominator " + std::to_string(den),
               where);
  }
  if (num != 0 && std::gcd(num < 0 ? -num : num, den) != 1) {
    report.add(AuditSeverity::Error, "zx.phase.form",
               "phase " + std::to_string(num) + "/" + std::to_string(den) +
                   " pi is not fully reduced",
               where);
  }
  if (num <= -den || num > den) {
    report.add(AuditSeverity::Error, "zx.phase.form",
               "phase " + std::to_string(num) + "/" + std::to_string(den) +
                   " pi is outside (-1, 1] pi",
               where);
  }
}

} // namespace

AuditReport auditDiagram(const zx::ZXDiagram& diagram,
                         const bool boundariesFinal) {
  AuditReport report;

  std::unordered_set<zx::Vertex> interface;
  const auto checkInterface = [&](const std::vector<zx::Vertex>& list,
                                  const char* name) {
    for (const auto v : list) {
      if (!diagram.isPresent(v)) {
        report.add(AuditSeverity::Error, "zx.boundary.io",
                   std::string(name) + " references absent vertex",
                   vertexLocation(v));
        continue;
      }
      if (!diagram.isBoundary(v)) {
        report.add(AuditSeverity::Error, "zx.boundary.io",
                   std::string(name) + " references a non-boundary vertex",
                   vertexLocation(v));
      }
      if (!interface.insert(v).second) {
        report.add(AuditSeverity::Error, "zx.boundary.io",
                   "vertex listed twice across inputs/outputs",
                   vertexLocation(v));
      }
    }
  };
  checkInterface(diagram.inputs(), "inputs");
  checkInterface(diagram.outputs(), "outputs");

  for (const auto v : diagram.vertices()) {
    const auto& row = diagram.neighbors(v);
    for (std::size_t i = 0; i < row.size(); ++i) {
      const auto& entry = row[i];
      if (i > 0 && row[i - 1].vertex >= entry.vertex) {
        report.add(AuditSeverity::Error, "zx.adj.order",
                   "adjacency row not sorted strictly ascending at neighbor " +
                       std::to_string(entry.vertex),
                   vertexLocation(v));
      }
      if (entry.edges.simple < 0 || entry.edges.hadamard < 0 ||
          entry.edges.total() == 0) {
        report.add(AuditSeverity::Error, "zx.adj.empty",
                   "adjacency entry towards " + std::to_string(entry.vertex) +
                       " has multiplicities " +
                       std::to_string(entry.edges.simple) + "/" +
                       std::to_string(entry.edges.hadamard),
                   vertexLocation(v));
      }
      if (!diagram.isPresent(entry.vertex)) {
        report.add(AuditSeverity::Error, "zx.adj.present",
                   "adjacency references absent vertex " +
                       std::to_string(entry.vertex),
                   vertexLocation(v));
        continue;
      }
      if (entry.vertex != v) {
        const auto back = diagram.edge(entry.vertex, v);
        if (back.simple != entry.edges.simple ||
            back.hadamard != entry.edges.hadamard) {
          report.add(AuditSeverity::Error, "zx.adj.symmetry",
                     "edge to " + std::to_string(entry.vertex) + " is " +
                         std::to_string(entry.edges.simple) + "/" +
                         std::to_string(entry.edges.hadamard) +
                         " but the reverse direction is " +
                         std::to_string(back.simple) + "/" +
                         std::to_string(back.hadamard),
                     vertexLocation(v));
        }
      }
    }

    auditPhase(diagram.phase(v), vertexLocation(v), report);

    if (diagram.isBoundary(v)) {
      if (!diagram.phase(v).isZero()) {
        report.add(AuditSeverity::Error, "zx.boundary.phase",
                   "boundary vertex carries a nonzero phase",
                   vertexLocation(v));
      }
      if (boundariesFinal && diagram.degree(v) != 1) {
        report.add(AuditSeverity::Error, "zx.boundary.degree",
                   "boundary vertex has degree " +
                       std::to_string(diagram.degree(v)),
                   vertexLocation(v));
      }
      if (interface.find(v) == interface.end()) {
        report.add(AuditSeverity::Error, "zx.boundary.io",
                   "boundary vertex missing from inputs/outputs",
                   vertexLocation(v));
      }
    }
  }

  return report;
}

AuditReport auditWorklist(const zx::Simplifier& simplifier) {
  AuditReport report;
  for (auto& issue : simplifier.worklist().checkInvariant()) {
    report.add(AuditSeverity::Error, "zx.worklist.stamp", std::move(issue),
               "worklist");
  }
  return report;
}

} // namespace veriqc::audit
