file(REMOVE_RECURSE
  "CMakeFiles/veriqc_opt.dir/optimizer.cpp.o"
  "CMakeFiles/veriqc_opt.dir/optimizer.cpp.o.d"
  "libveriqc_opt.a"
  "libveriqc_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veriqc_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
