#include "qasm/lexer.hpp"

#include <cctype>
#include <stdexcept>

namespace veriqc::qasm {

std::vector<Token> tokenize(const std::string& source) {
  std::vector<Token> tokens;
  std::size_t pos = 0;
  std::size_t line = 1;
  std::size_t lineStart = 0;

  const auto column = [&]() { return pos - lineStart + 1; };
  const auto push = [&](TokenKind kind, std::string text) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line;
    t.column = column();
    tokens.push_back(std::move(t));
  };

  while (pos < source.size()) {
    const char c = source[pos];
    if (c == '\n') {
      ++line;
      ++pos;
      lineStart = pos;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++pos;
      continue;
    }
    if (c == '/' && pos + 1 < source.size() && source[pos + 1] == '/') {
      while (pos < source.size() && source[pos] != '\n') {
        ++pos;
      }
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      const std::size_t start = pos;
      while (pos < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[pos])) != 0 ||
              source[pos] == '_')) {
        ++pos;
      }
      Token t;
      t.kind = TokenKind::Identifier;
      t.text = source.substr(start, pos - start);
      t.line = line;
      t.column = start - lineStart + 1;
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && pos + 1 < source.size() &&
         std::isdigit(static_cast<unsigned char>(source[pos + 1])) != 0)) {
      const std::size_t start = pos;
      bool isReal = false;
      while (pos < source.size() &&
             std::isdigit(static_cast<unsigned char>(source[pos])) != 0) {
        ++pos;
      }
      if (pos < source.size() && source[pos] == '.') {
        isReal = true;
        ++pos;
        while (pos < source.size() &&
               std::isdigit(static_cast<unsigned char>(source[pos])) != 0) {
          ++pos;
        }
      }
      if (pos < source.size() && (source[pos] == 'e' || source[pos] == 'E')) {
        isReal = true;
        ++pos;
        if (pos < source.size() && (source[pos] == '+' || source[pos] == '-')) {
          ++pos;
        }
        while (pos < source.size() &&
               std::isdigit(static_cast<unsigned char>(source[pos])) != 0) {
          ++pos;
        }
      }
      Token t;
      t.text = source.substr(start, pos - start);
      t.line = line;
      t.column = start - lineStart + 1;
      try {
        if (isReal) {
          t.kind = TokenKind::Real;
          t.realValue = std::stod(t.text);
        } else {
          t.kind = TokenKind::Integer;
          t.intValue = std::stoll(t.text);
          t.realValue = static_cast<double>(t.intValue);
        }
      } catch (const std::out_of_range&) {
        throw ParseError("numeric literal '" + t.text + "' out of range",
                         t.line, t.column);
      } catch (const std::invalid_argument&) {
        throw ParseError("malformed numeric literal '" + t.text + "'", t.line,
                         t.column);
      }
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '"') {
      const std::size_t start = ++pos;
      while (pos < source.size() && source[pos] != '"') {
        ++pos;
      }
      if (pos >= source.size()) {
        throw ParseError("unterminated string", line, column());
      }
      Token t;
      t.kind = TokenKind::String;
      t.text = source.substr(start, pos - start);
      t.line = line;
      t.column = start - lineStart;
      tokens.push_back(std::move(t));
      ++pos;
      continue;
    }
    if (c == '-' && pos + 1 < source.size() && source[pos + 1] == '>') {
      push(TokenKind::Arrow, "->");
      pos += 2;
      continue;
    }
    if (c == '=' && pos + 1 < source.size() && source[pos + 1] == '=') {
      push(TokenKind::Equals, "==");
      pos += 2;
      continue;
    }
    switch (c) {
    case '{':
      push(TokenKind::LBrace, "{");
      break;
    case '}':
      push(TokenKind::RBrace, "}");
      break;
    case '(':
      push(TokenKind::LParen, "(");
      break;
    case ')':
      push(TokenKind::RParen, ")");
      break;
    case '[':
      push(TokenKind::LBracket, "[");
      break;
    case ']':
      push(TokenKind::RBracket, "]");
      break;
    case ';':
      push(TokenKind::Semicolon, ";");
      break;
    case ',':
      push(TokenKind::Comma, ",");
      break;
    case '+':
      push(TokenKind::Plus, "+");
      break;
    case '-':
      push(TokenKind::Minus, "-");
      break;
    case '*':
      push(TokenKind::Star, "*");
      break;
    case '/':
      push(TokenKind::Slash, "/");
      break;
    case '^':
      push(TokenKind::Caret, "^");
      break;
    default:
      throw ParseError(std::string("unexpected character '") + c + "'", line,
                       column());
    }
    ++pos;
  }
  Token eof;
  eof.kind = TokenKind::EndOfFile;
  eof.line = line;
  eof.column = column();
  tokens.push_back(std::move(eof));
  return tokens;
}

} // namespace veriqc::qasm
