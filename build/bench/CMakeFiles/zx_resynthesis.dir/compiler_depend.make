# Empty compiler generated dependencies file for zx_resynthesis.
# This may be replaced when dependencies are built.
