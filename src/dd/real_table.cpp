#include "dd/real_table.hpp"

#include "fault/fault.hpp"

namespace veriqc::dd {

double RealTable::lookupSlow(const double value) {
  // The fast-path constants are implicit representatives: values within
  // tolerance of them must snap to the exact constant, or near-1 weights
  // would intern to a non-1 representative and e.g. U^dagger*U would miss
  // the canonical identity node.
  if (std::abs(value) < tolerance_) {
    return 0.0;
  }
  if (std::abs(value - 1.0) < tolerance_) {
    return 1.0;
  }
  if (std::abs(value + 1.0) < tolerance_) {
    return -1.0;
  }
  const auto key = keyOf(value);
  // A representative within tolerance can sit in the value's own bin or in
  // one of its neighbours (bin width == tolerance). The own bin is probed
  // first: it hits for every already-interned value.
  for (const auto k : {key, key - 1, key + 1}) {
    const Slot* slot = find(k);
    if (slot != nullptr && std::abs(slot->value - value) < tolerance_) {
      return slot->value;
    }
  }
  insert(key, value);
  return value;
}

const RealTable::Slot* RealTable::find(const std::int64_t key) const noexcept {
  const std::size_t mask = slots_.size() - 1;
  std::size_t idx = hashKey(key) & mask;
  while (slots_[idx].occupied) {
    if (slots_[idx].key == key) {
      return &slots_[idx];
    }
    idx = (idx + 1) & mask;
  }
  return nullptr;
}

void RealTable::insert(const std::int64_t key, const double value) {
  if (4 * (count_ + 1) > 3 * slots_.size()) {
    grow();
  }
  const std::size_t mask = slots_.size() - 1;
  std::size_t idx = hashKey(key) & mask;
  while (slots_[idx].occupied) {
    idx = (idx + 1) & mask;
  }
  slots_[idx] = {key, value, true};
  ++count_;
}

/// Strong exception safety: rehash into a side table and commit with a
/// noexcept move, so a failed growth allocation (real or injected) leaves
/// the interning table consistent — crucial for a table every weight
/// computation funnels through.
void RealTable::grow() {
  VERIQC_FAULT_POINT(fault::points::kDDRealGrow, fault::FaultKind::BadAlloc);
  std::vector<Slot> fresh(slots_.size() * 2);
  const std::size_t mask = fresh.size() - 1;
  for (const auto& slot : slots_) {
    if (!slot.occupied) {
      continue;
    }
    std::size_t idx = hashKey(slot.key) & mask;
    while (fresh[idx].occupied) {
      idx = (idx + 1) & mask;
    }
    fresh[idx] = slot;
  }
  slots_ = std::move(fresh);
}

} // namespace veriqc::dd
