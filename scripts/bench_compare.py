#!/usr/bin/env python3
"""Compare a benchmark run against a checked-in release baseline.

Usage: bench_compare.py BASELINE.json CURRENT.json [--threshold 0.25]

Both files are google-benchmark JSON as written by bench_smoke.sh. For every
benchmark present in the baseline the median real_time across repetitions is
compared against the current run; a median more than --threshold (default
25%) slower fails the gate. Benchmarks added since the baseline are reported
but do not fail; benchmarks that disappeared do fail, so the baseline cannot
silently rot.

Both JSONs must carry the top-level "library_build_type": "Release" stamp
bench_smoke.sh injects — numbers from a debug library are rejected outright.

Thread-scaling benchmarks record the host's hardware_concurrency as a
counter. When the baseline's recorded value differs from the machine running
the comparison, those entries are skipped (reported, never failed): scaling
curves measured on a different core count are not comparable, in either
direction.
"""

import argparse
import json
import os
import statistics
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"error: cannot read {path}: {exc}")


def require_release(doc, path):
    build_type = doc.get("library_build_type")
    if build_type != "Release":
        sys.exit(
            f"error: {path} has library_build_type={build_type!r}, "
            "expected 'Release' — run scripts/bench_smoke.sh to produce it"
        )


def medians(doc, path):
    """Median real_time per benchmark name over its repetition entries."""
    samples = {}
    hardware = {}
    for entry in doc.get("benchmarks", []):
        # Skip gbenchmark's aggregate rows (mean/median/stddev); the raw
        # iteration entries carry one sample per repetition.
        if entry.get("run_type", "iteration") != "iteration":
            continue
        name = entry.get("run_name", entry.get("name"))
        samples.setdefault(name, []).append(
            (entry["real_time"], entry.get("time_unit", "ns"))
        )
        # Thread-scaling benchmarks publish the host's core count as a
        # counter; gbenchmark flattens counters into the entry itself.
        if "hardware_concurrency" in entry:
            hardware[name] = int(entry["hardware_concurrency"])
    result = {}
    for name, values in samples.items():
        units = {unit for _, unit in values}
        if len(units) != 1:
            sys.exit(f"error: {path}: {name} mixes time units {sorted(units)}")
        result[name] = (
            statistics.median(t for t, _ in values),
            units.pop(),
            hardware.get(name),
        )
    if not result:
        sys.exit(f"error: {path} contains no benchmark entries")
    return result


def machine_concurrency(doc):
    """Core count of the machine that produced this run."""
    num_cpus = doc.get("context", {}).get("num_cpus")
    if num_cpus:
        return int(num_cpus)
    return os.cpu_count()


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional slowdown per benchmark (default 0.25)",
    )
    args = parser.parse_args()

    base_doc = load(args.baseline)
    cur_doc = load(args.current)
    require_release(base_doc, args.baseline)
    require_release(cur_doc, args.current)
    base = medians(base_doc, args.baseline)
    cur = medians(cur_doc, args.current)

    failures = []
    skipped = []
    current_cores = machine_concurrency(cur_doc)
    width = max(len(name) for name in base | cur)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  ratio")
    for name in sorted(base):
        base_time, base_unit, base_cores = base[name]
        if base_cores is not None and base_cores != current_cores:
            # A thread-scaling curve recorded on a different core count is
            # incomparable here — neither a pass nor a regression.
            skipped.append(
                f"{name}: baseline recorded hardware_concurrency="
                f"{base_cores}, this machine has {current_cores}"
            )
            print(f"{name:<{width}}  {base_time:>12.1f}  {'SKIPPED':>12}")
            continue
        if name not in cur:
            failures.append(f"{name}: present in baseline but not in current run")
            print(f"{name:<{width}}  {base_time:>12.1f}  {'MISSING':>12}")
            continue
        cur_time, cur_unit, _ = cur[name]
        if base_unit != cur_unit:
            failures.append(
                f"{name}: time unit changed {base_unit} -> {cur_unit}"
            )
            continue
        ratio = cur_time / base_time
        flag = ""
        if ratio > 1.0 + args.threshold:
            failures.append(
                f"{name}: median {cur_time:.1f}{cur_unit} is "
                f"{(ratio - 1.0) * 100.0:.1f}% slower than baseline "
                f"{base_time:.1f}{base_unit}"
            )
            flag = "  REGRESSION"
        print(
            f"{name:<{width}}  {base_time:>12.1f}  {cur_time:>12.1f}  "
            f"{ratio:5.2f}{flag}"
        )
    for name in sorted(set(cur) - set(base)):
        print(f"{name:<{width}}  {'(new)':>12}  {cur[name][0]:>12.1f}")

    if skipped:
        print(f"\n{len(skipped)} thread-scaling entr"
              f"{'y' if len(skipped) == 1 else 'ies'} skipped "
              "(core-count mismatch):")
        for entry in skipped:
            print(f"  {entry}")
    if failures:
        print(f"\n{len(failures)} regression(s) beyond "
              f"{args.threshold * 100:.0f}%:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nOK: no benchmark regressed more than {args.threshold * 100:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
