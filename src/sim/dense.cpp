#include "sim/dense.hpp"

#include "ir/gate_matrix.hpp"

#include <cmath>

namespace veriqc::sim {

Matrix Matrix::identity(const std::size_t dim) {
  Matrix m(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    m.at(i, i) = 1.0;
  }
  return m;
}

Matrix Matrix::multiply(const Matrix& rhs) const {
  Matrix result(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    for (std::size_t k = 0; k < dim_; ++k) {
      const auto a = at(i, k);
      if (a == Amplitude{}) {
        continue;
      }
      for (std::size_t j = 0; j < dim_; ++j) {
        result.at(i, j) += a * rhs.at(k, j);
      }
    }
  }
  return result;
}

Matrix Matrix::adjoint() const {
  Matrix result(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    for (std::size_t j = 0; j < dim_; ++j) {
      result.at(i, j) = std::conj(at(j, i));
    }
  }
  return result;
}

Amplitude Matrix::trace() const {
  Amplitude t{};
  for (std::size_t i = 0; i < dim_; ++i) {
    t += at(i, i);
  }
  return t;
}

double Matrix::distance(const Matrix& other) const {
  double sum = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) {
    for (std::size_t j = 0; j < dim_; ++j) {
      sum += std::norm(at(i, j) - other.at(i, j));
    }
  }
  return std::sqrt(sum);
}

bool Matrix::equalsUpToGlobalPhase(const Matrix& other, const double tol) const {
  if (dim_ != other.dim_) {
    return false;
  }
  const auto overlap = adjoint().multiply(other).trace();
  return std::abs(std::abs(overlap) - static_cast<double>(dim_)) <
         tol * static_cast<double>(dim_);
}

bool Matrix::equals(const Matrix& other, const double tol) const {
  return dim_ == other.dim_ && distance(other) < tol;
}

StateVector zeroState(const std::size_t nqubits) {
  StateVector state(std::size_t{1} << nqubits);
  state[0] = 1.0;
  return state;
}

namespace {
bool controlsActive(const std::size_t index, const std::vector<Qubit>& ctrls) {
  for (const auto c : ctrls) {
    if (((index >> c) & 1U) == 0) {
      return false;
    }
  }
  return true;
}
} // namespace

void applyOperation(const Operation& op, const std::size_t nqubits,
                    StateVector& state) {
  if (op.isNonUnitary()) {
    return;
  }
  const std::size_t dim = std::size_t{1} << nqubits;
  if (op.type == OpType::SWAP) {
    const auto a = op.targets[0];
    const auto b = op.targets[1];
    for (std::size_t i = 0; i < dim; ++i) {
      const bool bitA = ((i >> a) & 1U) != 0;
      const bool bitB = ((i >> b) & 1U) != 0;
      if (!bitA && bitB && controlsActive(i, op.controls)) {
        const std::size_t j = (i | (std::size_t{1} << a)) &
                              ~(std::size_t{1} << b);
        std::swap(state[i], state[j]);
      }
    }
    return;
  }
  const auto m = gateMatrix(op.type, op.params);
  const auto t = op.targets[0];
  for (std::size_t i = 0; i < dim; ++i) {
    if (((i >> t) & 1U) != 0 || !controlsActive(i, op.controls)) {
      continue;
    }
    const std::size_t j = i | (std::size_t{1} << t);
    const auto v0 = state[i];
    const auto v1 = state[j];
    state[i] = m[0] * v0 + m[1] * v1;
    state[j] = m[2] * v0 + m[3] * v1;
  }
}

void applyGates(const QuantumCircuit& circuit, StateVector& state) {
  for (const auto& op : circuit.ops()) {
    applyOperation(op, circuit.numQubits(), state);
  }
  if (circuit.globalPhase() != 0.0) {
    const auto phase = std::exp(Amplitude{0.0, circuit.globalPhase()});
    for (auto& amp : state) {
      amp *= phase;
    }
  }
}

namespace {
/// y = R(sigma) x  with  y_w-bit = x_{sigma(w)}-bit.
StateVector applyPermutationOperator(const Permutation& sigma,
                                     const StateVector& x) {
  StateVector y(x.size());
  const auto n = sigma.size();
  for (std::size_t z = 0; z < x.size(); ++z) {
    std::size_t target = 0;
    for (std::size_t w = 0; w < n; ++w) {
      target |= ((z >> sigma[static_cast<Qubit>(w)]) & 1U) << w;
    }
    y[target] = x[z];
  }
  return y;
}
} // namespace

void applyLogical(const QuantumCircuit& circuit, StateVector& state) {
  state = applyPermutationOperator(circuit.initialLayout(), state);
  applyGates(circuit, state);
  // R(O)^dagger = R(O^{-1})
  state = applyPermutationOperator(circuit.outputPermutation().inverse(), state);
}

Matrix permutationMatrix(const Permutation& sigma) {
  const std::size_t dim = std::size_t{1} << sigma.size();
  Matrix m(dim);
  for (std::size_t z = 0; z < dim; ++z) {
    std::size_t x = 0;
    for (std::size_t w = 0; w < sigma.size(); ++w) {
      x |= ((z >> sigma[static_cast<Qubit>(w)]) & 1U) << w;
    }
    m.at(x, z) = 1.0;
  }
  return m;
}

Matrix circuitUnitary(const QuantumCircuit& circuit) {
  const std::size_t dim = std::size_t{1} << circuit.numQubits();
  Matrix result(dim);
  for (std::size_t col = 0; col < dim; ++col) {
    StateVector basis(dim);
    basis[col] = 1.0;
    applyLogical(circuit, basis);
    for (std::size_t row = 0; row < dim; ++row) {
      result.at(row, col) = basis[row];
    }
  }
  return result;
}

Amplitude innerProduct(const StateVector& a, const StateVector& b) {
  Amplitude sum{};
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += std::conj(a[i]) * b[i];
  }
  return sum;
}

} // namespace veriqc::sim
