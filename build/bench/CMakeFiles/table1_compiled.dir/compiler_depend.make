# Empty compiler generated dependencies file for table1_compiled.
# This may be replaced when dependencies are built.
