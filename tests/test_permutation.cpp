#include "ir/permutation.hpp"

#include <gtest/gtest.h>

#include <random>

namespace veriqc {
namespace {

TEST(PermutationTest, IdentityIsIdentity) {
  const auto id = Permutation::identity(5);
  EXPECT_TRUE(id.isIdentity());
  EXPECT_TRUE(id.isValid());
  EXPECT_EQ(id.size(), 5U);
  for (Qubit i = 0; i < 5; ++i) {
    EXPECT_EQ(id[i], i);
  }
}

TEST(PermutationTest, ConstructorRejectsNonBijection) {
  EXPECT_THROW(Permutation({0, 0, 1}), CircuitError);
  EXPECT_THROW(Permutation({0, 3, 1}), CircuitError);
}

TEST(PermutationTest, ComposeDefinition) {
  const Permutation a({1, 2, 0});
  const Permutation b({2, 0, 1});
  const auto c = a.compose(b);
  for (Qubit i = 0; i < 3; ++i) {
    EXPECT_EQ(c[i], a[b[i]]);
  }
}

TEST(PermutationTest, ComposeSizeMismatchThrows) {
  EXPECT_THROW(Permutation({1, 0}).compose(Permutation({0, 1, 2})),
               CircuitError);
}

TEST(PermutationTest, InverseComposesToIdentity) {
  const Permutation p({3, 1, 0, 2});
  EXPECT_TRUE(p.compose(p.inverse()).isIdentity());
  EXPECT_TRUE(p.inverse().compose(p).isIdentity());
}

TEST(PermutationTest, SwapImages) {
  auto p = Permutation::identity(3);
  p.swapImages(0, 2);
  EXPECT_EQ(p[0], 2U);
  EXPECT_EQ(p[2], 0U);
  EXPECT_EQ(p[1], 1U);
}

TEST(PermutationTest, ExtendAddsFixedPoints) {
  Permutation p({1, 0});
  p.extend(4);
  EXPECT_EQ(p.size(), 4U);
  EXPECT_EQ(p[2], 2U);
  EXPECT_EQ(p[3], 3U);
  EXPECT_TRUE(p.isValid());
}

TEST(PermutationTest, TranspositionsRebuildPermutation) {
  std::mt19937_64 rng(42);
  for (std::size_t n = 1; n <= 8; ++n) {
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<Qubit> map(n);
      std::iota(map.begin(), map.end(), 0U);
      std::shuffle(map.begin(), map.end(), rng);
      const Permutation target{map};
      auto rebuilt = Permutation::identity(n);
      for (const auto& [a, b] : target.transpositions()) {
        rebuilt.swapImages(a, b);
      }
      EXPECT_EQ(rebuilt, target);
    }
  }
}

TEST(PermutationTest, ToStringMentionsMappings) {
  const Permutation p({1, 0});
  EXPECT_NE(p.toString().find("0->1"), std::string::npos);
}

TEST(PermutationTest, EmptyPermutationIsValidIdentity) {
  const Permutation p;
  EXPECT_TRUE(p.empty());
  EXPECT_TRUE(p.isValid());
  EXPECT_TRUE(p.isIdentity());
  EXPECT_TRUE(p.compose(Permutation()).isIdentity());
  EXPECT_TRUE(p.inverse().empty());
}

TEST(PermutationTest, SingleElementPermutation) {
  const auto p = Permutation::identity(1);
  EXPECT_TRUE(p.isIdentity());
  EXPECT_EQ(p.inverse(), p);
  EXPECT_TRUE(p.transpositions().empty());
}

TEST(PermutationTest, SetCanBreakAndRestoreBijectivity) {
  // set() is the documented non-validating mutator: isValid() must track the
  // stored map, not the construction-time invariant.
  auto p = Permutation::identity(3);
  p.set(0, 2);
  EXPECT_FALSE(p.isValid()); // {2, 1, 2} — image 2 duplicated, 0 missing
  p.set(2, 0);
  EXPECT_TRUE(p.isValid()); // {2, 1, 0} — a bijection again
}

TEST(PermutationTest, SetOutOfRangeImageIsInvalid) {
  auto p = Permutation::identity(2);
  p.set(1, 5);
  EXPECT_FALSE(p.isValid());
}

TEST(PermutationTest, ComposeIsAssociativeButNotCommutative) {
  const Permutation a({1, 2, 0});
  const Permutation b({0, 2, 1});
  const Permutation c({2, 1, 0});
  EXPECT_EQ(a.compose(b).compose(c), a.compose(b.compose(c)));
  EXPECT_NE(a.compose(b), b.compose(a));
}

TEST(PermutationTest, InverseOfComposeReversesOrder) {
  const Permutation a({3, 1, 0, 2});
  const Permutation b({1, 3, 2, 0});
  EXPECT_EQ(a.compose(b).inverse(), b.inverse().compose(a.inverse()));
}

TEST(PermutationTest, RandomComposeInverseRoundTrips) {
  std::mt19937_64 rng(2026);
  for (std::size_t n = 2; n <= 10; ++n) {
    for (int trial = 0; trial < 10; ++trial) {
      std::vector<Qubit> mapA(n);
      std::vector<Qubit> mapB(n);
      std::iota(mapA.begin(), mapA.end(), 0U);
      std::iota(mapB.begin(), mapB.end(), 0U);
      std::shuffle(mapA.begin(), mapA.end(), rng);
      std::shuffle(mapB.begin(), mapB.end(), rng);
      const Permutation a{mapA};
      const Permutation b{mapB};
      EXPECT_TRUE(a.compose(a.inverse()).isIdentity());
      EXPECT_EQ(a.inverse().inverse(), a);
      EXPECT_EQ(a.compose(b).inverse().compose(a.compose(b)),
                Permutation::identity(n));
    }
  }
}

TEST(PermutationTest, ExtendToSameOrSmallerSizeIsNoOp) {
  Permutation p({1, 0});
  p.extend(2);
  EXPECT_EQ(p, Permutation({1, 0}));
  p.extend(1);
  EXPECT_EQ(p.size(), 2U);
}

} // namespace
} // namespace veriqc
