# Empty dependencies file for dd_micro.
# This may be replaced when dependencies are built.
