/// \file task_pool.hpp
/// \brief Shared work-stealing task pool for intra-check parallelism.
///
/// One pool serves every parallel path of the checker layer: the manager's
/// concurrent engines, the random-stimuli worker pool, the sharded
/// alternating scheme and the region-parallel ZX reduction. Each execution
/// slot (the calling thread plus `slots - 1` spawned workers) owns a deque;
/// submission round-robins across the deques, an idle slot steals from the
/// back of a victim's deque, and the submitting thread itself executes tasks
/// while it waits — so a pool of N slots yields exactly N-way parallelism
/// with N-1 threads.
///
/// Contracts the checker layer relies on:
///  - Stop-token propagation: a TaskGroup carries an optional StopToken;
///    once it trips (or the group is cancelled) queued-but-unstarted tasks
///    of that group are skipped, not run. Running tasks are expected to
///    poll the token themselves, as every engine already does.
///  - Exception containment: the first exception a task throws is captured
///    and rethrown from TaskGroup::wait() on the submitting thread; later
///    exceptions of the same group are dropped (the group is cancelled by
///    the first). A task exception never unwinds a pool thread.
///  - Observability: when a group is given an obs::PhaseTimer, every task
///    records a span named by its label for the run report's phase list.
#pragma once

#include "obs/phase_timer.hpp"
#include "support/mutex.hpp"

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace veriqc::check {

class TaskPool;

/// A batch of related tasks submitted to a TaskPool. The owner submits
/// tasks, then blocks in wait(), which lends the calling thread to the pool
/// until every task of the group has either run or been skipped.
class TaskGroup {
public:
  /// \param stop optional cooperative token: once it returns true, tasks of
  ///        this group that have not started yet are skipped.
  /// \param phases optional span sink: each executed task records a span
  ///        named by its submit() label.
  explicit TaskGroup(TaskPool& pool, std::function<bool()> stop = {},
                     obs::PhaseTimer* phases = nullptr);
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;
  /// Destruction waits for stragglers (without rethrowing), so a group can
  /// never outlive the state its tasks capture by reference.
  ~TaskGroup();

  /// Queue one task. `fn` receives the executing slot index
  /// (0 .. TaskPool::slotCount()-1), stable per task execution — the anchor
  /// for slot-local state such as per-worker DD packages.
  void submit(std::string label, std::function<void(std::size_t)> fn);

  /// Mark the group cancelled: unstarted tasks are skipped. Running tasks
  /// keep running (they poll their own stop tokens).
  void cancel() noexcept;
  [[nodiscard]] bool cancelled() const noexcept;

  /// Run tasks on the calling thread until the group is drained, then
  /// rethrow the first captured task exception, if any.
  void wait();

  /// Tasks that were skipped (group cancelled or stop token tripped before
  /// they started). Meaningful after wait().
  [[nodiscard]] std::size_t skippedTasks() const noexcept;

  /// Task exceptions beyond the first: they lose the wait() rethrow race and
  /// would otherwise vanish without a trace. Callers surface this count into
  /// the run report (`task_pool/suppressed_exceptions`). Meaningful after
  /// wait().
  [[nodiscard]] std::size_t suppressedExceptions() const noexcept;

private:
  friend class TaskPool;

  TaskPool& pool_;
  // Set once in the constructor and only read afterwards (pool threads call
  // stop_/phases_ concurrently) — immutable state needs no capability.
  std::function<bool()> stop_;
  obs::PhaseTimer* phases_;

  mutable support::Mutex mutex_;
  support::CondVar done_;
  /// Submitted but not yet finished/skipped.
  std::size_t pending_ VERIQC_GUARDED_BY(mutex_) = 0;
  std::size_t skipped_ VERIQC_GUARDED_BY(mutex_) = 0;
  std::size_t suppressedExceptions_ VERIQC_GUARDED_BY(mutex_) = 0;
  bool cancelled_ VERIQC_GUARDED_BY(mutex_) = false;
  std::exception_ptr firstError_ VERIQC_GUARDED_BY(mutex_);
};

/// The work-stealing pool. Deliberately scoped, not a process singleton:
/// every parallel section constructs a pool sized to its configured
/// parallelism and tears it down when done, which keeps thread ownership as
/// explicit as package ownership.
class TaskPool {
public:
  /// \param slots total execution slots, including the calling thread;
  ///        clamped to at least 1. `slots == 1` spawns no threads at all:
  ///        every task runs inline in wait(), in submission order.
  explicit TaskPool(std::size_t slots);
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;
  ~TaskPool();

  [[nodiscard]] std::size_t slotCount() const noexcept {
    return queues_.size();
  }

  /// Execution slots for a configured thread-count knob: 0 means hardware
  /// concurrency, anything else is taken literally (>= 1).
  [[nodiscard]] static std::size_t resolveSlots(std::size_t configured);

private:
  friend class TaskGroup;

  struct Task {
    TaskGroup* group;
    std::function<void(std::size_t)> fn;
    std::string label;
  };

  struct Queue {
    support::Mutex mutex;
    std::deque<Task> tasks VERIQC_GUARDED_BY(mutex);
  };

  void enqueue(Task task);
  /// Pop from the front of `preferred`, else steal from the back of another
  /// queue. Returns false when every queue is empty.
  bool tryTake(std::size_t preferred, Task& out);
  void runTask(Task& task, std::size_t slot);
  void workerLoop(std::size_t slot);
  /// Help drain queues until `group` has no pending tasks.
  void helpUntilDone(TaskGroup& group);

  // queues_/workers_ are sized in the constructor and never resized; the
  // Queue objects they point at carry their own capabilities.
  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;

  support::Mutex sleepMutex_;
  support::CondVar work_;
  std::size_t nextQueue_ VERIQC_GUARDED_BY(sleepMutex_) = 0;
  bool shutdown_ VERIQC_GUARDED_BY(sleepMutex_) = false;
};

} // namespace veriqc::check
