file(REMOVE_RECURSE
  "CMakeFiles/test_dd_package.dir/test_dd_package.cpp.o"
  "CMakeFiles/test_dd_package.dir/test_dd_package.cpp.o.d"
  "test_dd_package"
  "test_dd_package.pdb"
  "test_dd_package[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dd_package.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
