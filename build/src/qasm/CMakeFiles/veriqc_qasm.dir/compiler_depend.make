# Empty compiler generated dependencies file for veriqc_qasm.
# This may be replaced when dependencies are built.
