# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_permutation[1]_include.cmake")
include("/root/repo/build/tests/test_operation[1]_include.cmake")
include("/root/repo/build/tests/test_circuit[1]_include.cmake")
include("/root/repo/build/tests/test_dense[1]_include.cmake")
include("/root/repo/build/tests/test_dd_package[1]_include.cmake")
include("/root/repo/build/tests/test_dd_simulation[1]_include.cmake")
include("/root/repo/build/tests/test_benchmarks[1]_include.cmake")
include("/root/repo/build/tests/test_qasm[1]_include.cmake")
include("/root/repo/build/tests/test_zx_rational[1]_include.cmake")
include("/root/repo/build/tests/test_zx_diagram[1]_include.cmake")
include("/root/repo/build/tests/test_zx_conversion[1]_include.cmake")
include("/root/repo/build/tests/test_zx_simplify[1]_include.cmake")
include("/root/repo/build/tests/test_compile[1]_include.cmake")
include("/root/repo/build/tests/test_opt[1]_include.cmake")
include("/root/repo/build/tests/test_check[1]_include.cmake")
include("/root/repo/build/tests/test_export[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_revlib[1]_include.cmake")
include("/root/repo/build/tests/test_dd_internals[1]_include.cmake")
include("/root/repo/build/tests/test_zx_internals[1]_include.cmake")
include("/root/repo/build/tests/test_zx_extract[1]_include.cmake")
include("/root/repo/build/tests/test_misc[1]_include.cmake")
