file(REMOVE_RECURSE
  "CMakeFiles/test_dd_simulation.dir/test_dd_simulation.cpp.o"
  "CMakeFiles/test_dd_simulation.dir/test_dd_simulation.cpp.o.d"
  "test_dd_simulation"
  "test_dd_simulation.pdb"
  "test_dd_simulation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dd_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
