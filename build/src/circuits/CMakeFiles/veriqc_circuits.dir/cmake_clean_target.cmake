file(REMOVE_RECURSE
  "libveriqc_circuits.a"
)
