#include "qasm/parser.hpp"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <sstream>

namespace veriqc::qasm {

namespace {

/// Upper bound on the total qubit count a QASM file may declare. Generous
/// for any real circuit, but small enough that an adversarial
/// `qreg q[999999999];` is rejected with a ParseError instead of exhausting
/// memory in the QuantumCircuit constructor.
constexpr long long kMaxTotalQubits = 1LL << 20U;

// --- expression trees -------------------------------------------------------

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

struct Expr {
  enum class Kind { Number, Param, Add, Sub, Mul, Div, Pow, Neg, Func };
  Kind kind = Kind::Number;
  double value = 0.0;
  std::string name; // parameter or function name
  ExprPtr lhs;
  ExprPtr rhs;
};

using Env = std::map<std::string, double>;

double evaluate(const Expr& e, const Env& env) {
  switch (e.kind) {
  case Expr::Kind::Number:
    return e.value;
  case Expr::Kind::Param: {
    const auto it = env.find(e.name);
    if (it == env.end()) {
      throw CircuitError("QASM: unbound parameter '" + e.name + "'");
    }
    return it->second;
  }
  case Expr::Kind::Add:
    return evaluate(*e.lhs, env) + evaluate(*e.rhs, env);
  case Expr::Kind::Sub:
    return evaluate(*e.lhs, env) - evaluate(*e.rhs, env);
  case Expr::Kind::Mul:
    return evaluate(*e.lhs, env) * evaluate(*e.rhs, env);
  case Expr::Kind::Div:
    return evaluate(*e.lhs, env) / evaluate(*e.rhs, env);
  case Expr::Kind::Pow:
    return std::pow(evaluate(*e.lhs, env), evaluate(*e.rhs, env));
  case Expr::Kind::Neg:
    return -evaluate(*e.lhs, env);
  case Expr::Kind::Func: {
    const double arg = evaluate(*e.lhs, env);
    if (e.name == "sin") {
      return std::sin(arg);
    }
    if (e.name == "cos") {
      return std::cos(arg);
    }
    if (e.name == "tan") {
      return std::tan(arg);
    }
    if (e.name == "exp") {
      return std::exp(arg);
    }
    if (e.name == "ln") {
      return std::log(arg);
    }
    if (e.name == "sqrt") {
      return std::sqrt(arg);
    }
    throw CircuitError("QASM: unknown function '" + e.name + "'");
  }
  }
  throw CircuitError("QASM: malformed expression");
}

// --- gate database -----------------------------------------------------------

/// A reference to a qubit inside a statement: either a register element or a
/// whole register (for broadcasting), or a gate-body formal argument.
struct QubitRef {
  std::string reg;
  long long index = -1; ///< -1 means "whole register" / formal argument
  std::size_t line = 0;
  std::size_t column = 0;
};

struct GateCall {
  std::string name;
  std::vector<ExprPtr> params;
  std::vector<QubitRef> qubits;
  std::size_t line = 0;
  std::size_t column = 0;
};

struct GateDef {
  std::vector<std::string> paramNames;
  std::vector<std::string> qubitNames;
  std::vector<GateCall> body;
};

struct Builtin {
  std::size_t numParams = 0;
  std::size_t numQubits = 0;
  std::function<void(QuantumCircuit&, const std::vector<double>&,
                     const std::vector<Qubit>&)>
      emit;
};

const std::map<std::string, Builtin>& builtinGates() {
  using P = const std::vector<double>&;
  using Q = const std::vector<Qubit>&;
  static const std::map<std::string, Builtin> table = [] {
    std::map<std::string, Builtin> m;
    const auto simple = [&m](const std::string& name, OpType type) {
      m[name] = {0, 1, [type](QuantumCircuit& c, P, Q q) {
                   c.append(Operation(type, {}, {q[0]}));
                 }};
    };
    simple("id", OpType::I);
    simple("h", OpType::H);
    simple("x", OpType::X);
    simple("y", OpType::Y);
    simple("z", OpType::Z);
    simple("s", OpType::S);
    simple("sdg", OpType::Sdg);
    simple("t", OpType::T);
    simple("tdg", OpType::Tdg);
    simple("sx", OpType::SX);
    simple("sxdg", OpType::SXdg);
    const auto rot = [&m](const std::string& name, OpType type) {
      m[name] = {1, 1, [type](QuantumCircuit& c, P p, Q q) {
                   c.append(Operation(type, {}, {q[0]}, {p[0]}));
                 }};
    };
    rot("rx", OpType::RX);
    rot("ry", OpType::RY);
    rot("rz", OpType::RZ);
    rot("p", OpType::P);
    rot("u1", OpType::P);
    m["u2"] = {2, 1, [](QuantumCircuit& c, P p, Q q) {
                 c.u2(q[0], p[0], p[1]);
               }};
    const auto u3like = [](QuantumCircuit& c, P p, Q q) {
      c.u3(q[0], p[0], p[1], p[2]);
    };
    m["u3"] = {3, 1, u3like};
    m["u"] = {3, 1, u3like};
    m["U"] = {3, 1, u3like};
    const auto controlled = [&m](const std::string& name, OpType type) {
      m[name] = {0, 2, [type](QuantumCircuit& c, P, Q q) {
                   c.append(Operation(type, {q[0]}, {q[1]}));
                 }};
    };
    controlled("cx", OpType::X);
    controlled("CX", OpType::X);
    controlled("cy", OpType::Y);
    controlled("cz", OpType::Z);
    controlled("ch", OpType::H);
    const auto crot = [&m](const std::string& name, OpType type) {
      m[name] = {1, 2, [type](QuantumCircuit& c, P p, Q q) {
                   c.append(Operation(type, {q[0]}, {q[1]}, {p[0]}));
                 }};
    };
    crot("crx", OpType::RX);
    crot("cry", OpType::RY);
    crot("crz", OpType::RZ);
    crot("cp", OpType::P);
    crot("cu1", OpType::P);
    m["swap"] = {0, 2, [](QuantumCircuit& c, P, Q q) { c.swap(q[0], q[1]); }};
    m["ccx"] = {0, 3,
                [](QuantumCircuit& c, P, Q q) { c.ccx(q[0], q[1], q[2]); }};
    m["ccz"] = {0, 3, [](QuantumCircuit& c, P, Q q) {
                  c.mcz({q[0], q[1]}, q[2]);
                }};
    m["cswap"] = {0, 3, [](QuantumCircuit& c, P, Q q) {
                    c.cswap(q[0], q[1], q[2]);
                  }};
    m["c3x"] = {0, 4, [](QuantumCircuit& c, P, Q q) {
                  c.mcx({q[0], q[1], q[2]}, q[3]);
                }};
    m["c4x"] = {0, 5, [](QuantumCircuit& c, P, Q q) {
                  c.mcx({q[0], q[1], q[2], q[3]}, q[4]);
                }};
    return m;
  }();
  return table;
}

// --- the parser ----------------------------------------------------------------

class Parser {
public:
  explicit Parser(const std::string& source) : tokens_(tokenize(source)) {}

  QuantumCircuit run(const std::string& name) {
    parseHeader();
    while (peek().kind != TokenKind::EndOfFile) {
      parseStatement();
    }
    QuantumCircuit circuit(totalQubits_, name);
    for (auto& emit : pending_) {
      emit(circuit);
    }
    return circuit;
  }

private:
  // --- token helpers
  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    return tokens_[std::min(pos_ + ahead, tokens_.size() - 1)];
  }
  const Token& advance() { return tokens_[pos_++]; }
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(msg, peek().line, peek().column);
  }
  const Token& expect(const TokenKind kind, const std::string& what) {
    if (peek().kind != kind) {
      fail("expected " + what + ", got '" + peek().text + "'");
    }
    return advance();
  }
  bool accept(const TokenKind kind) {
    if (peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool acceptIdent(const std::string& text) {
    if (peek().kind == TokenKind::Identifier && peek().text == text) {
      ++pos_;
      return true;
    }
    return false;
  }

  // --- grammar
  void parseHeader() {
    if (acceptIdent("OPENQASM")) {
      // version number (e.g. 2.0)
      if (peek().kind != TokenKind::Real && peek().kind != TokenKind::Integer) {
        fail("expected version number after OPENQASM");
      }
      advance();
      expect(TokenKind::Semicolon, "';'");
    }
  }

  void parseStatement() {
    const Token& tok = peek();
    if (tok.kind != TokenKind::Identifier) {
      fail("expected statement");
    }
    if (acceptIdent("include")) {
      expect(TokenKind::String, "include filename");
      expect(TokenKind::Semicolon, "';'");
      return; // qelib1 is built in; other includes carry no new gates here
    }
    if (acceptIdent("qreg")) {
      parseRegister(/*quantum=*/true);
      return;
    }
    if (acceptIdent("creg")) {
      parseRegister(/*quantum=*/false);
      return;
    }
    if (acceptIdent("gate")) {
      parseGateDefinition();
      return;
    }
    if (acceptIdent("opaque")) {
      while (peek().kind != TokenKind::Semicolon &&
             peek().kind != TokenKind::EndOfFile) {
        advance();
      }
      expect(TokenKind::Semicolon, "';'");
      return;
    }
    if (acceptIdent("barrier")) {
      parseQubitList();
      expect(TokenKind::Semicolon, "';'");
      pending_.emplace_back([](QuantumCircuit& c) { c.barrier(); });
      return;
    }
    if (acceptIdent("measure")) {
      parseMeasure();
      return;
    }
    if (tok.text == "reset" || tok.text == "if") {
      fail("'" + tok.text + "' is not supported (unitary circuits only)");
    }
    parseGateApplication();
  }

  void parseRegister(const bool quantum) {
    const auto name = expect(TokenKind::Identifier, "register name").text;
    expect(TokenKind::LBracket, "'['");
    const auto size = expect(TokenKind::Integer, "register size").intValue;
    expect(TokenKind::RBracket, "']'");
    expect(TokenKind::Semicolon, "';'");
    if (size <= 0) {
      fail("register size must be positive");
    }
    if (size > kMaxTotalQubits ||
        static_cast<long long>(totalQubits_) + size > kMaxTotalQubits) {
      fail("register size " + std::to_string(size) + " exceeds the limit of " +
           std::to_string(kMaxTotalQubits) + " qubits");
    }
    if (quantum) {
      if (qregs_.contains(name)) {
        fail("duplicate qreg '" + name + "'");
      }
      qregs_[name] = {totalQubits_, static_cast<std::size_t>(size)};
      totalQubits_ += static_cast<std::size_t>(size);
    } else {
      cregs_[name] = static_cast<std::size_t>(size);
    }
  }

  void parseGateDefinition() {
    const auto name = expect(TokenKind::Identifier, "gate name").text;
    GateDef def;
    if (accept(TokenKind::LParen)) {
      if (peek().kind != TokenKind::RParen) {
        do {
          def.paramNames.push_back(
              expect(TokenKind::Identifier, "parameter name").text);
        } while (accept(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "')'");
    }
    do {
      def.qubitNames.push_back(
          expect(TokenKind::Identifier, "qubit argument").text);
    } while (accept(TokenKind::Comma));
    expect(TokenKind::LBrace, "'{'");
    while (!accept(TokenKind::RBrace)) {
      if (acceptIdent("barrier")) {
        parseQubitList();
        expect(TokenKind::Semicolon, "';'");
        continue;
      }
      def.body.push_back(parseGateCall());
    }
    userGates_[name] = std::move(def);
  }

  GateCall parseGateCall() {
    GateCall call;
    const Token& nameTok = expect(TokenKind::Identifier, "gate name");
    call.name = nameTok.text;
    call.line = nameTok.line;
    call.column = nameTok.column;
    if (accept(TokenKind::LParen)) {
      if (peek().kind != TokenKind::RParen) {
        do {
          call.params.push_back(parseExpression());
        } while (accept(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "')'");
    }
    call.qubits = parseQubitList();
    expect(TokenKind::Semicolon, "';'");
    return call;
  }

  std::vector<QubitRef> parseQubitList() {
    std::vector<QubitRef> refs;
    do {
      QubitRef ref;
      const Token& tok = expect(TokenKind::Identifier, "qubit");
      ref.reg = tok.text;
      ref.line = tok.line;
      ref.column = tok.column;
      if (accept(TokenKind::LBracket)) {
        ref.index = expect(TokenKind::Integer, "qubit index").intValue;
        expect(TokenKind::RBracket, "']'");
      }
      refs.push_back(std::move(ref));
    } while (accept(TokenKind::Comma));
    return refs;
  }

  void parseMeasure() {
    // measure q[i] -> c[j];  or  measure q -> c;
    const Token& tok = expect(TokenKind::Identifier, "quantum register");
    QubitRef src;
    src.reg = tok.text;
    if (accept(TokenKind::LBracket)) {
      src.index = expect(TokenKind::Integer, "index").intValue;
      expect(TokenKind::RBracket, "']'");
    }
    expect(TokenKind::Arrow, "'->'");
    expect(TokenKind::Identifier, "classical register");
    if (accept(TokenKind::LBracket)) {
      expect(TokenKind::Integer, "index");
      expect(TokenKind::RBracket, "']'");
    }
    expect(TokenKind::Semicolon, "';'");
    const auto qubits = resolve(src);
    pending_.emplace_back([qubits](QuantumCircuit& c) {
      for (const auto q : qubits) {
        c.append(Operation(OpType::Measure, {}, {q}));
      }
    });
  }

  void parseGateApplication() {
    const GateCall call = parseGateCall();
    // Resolve broadcasting: any whole-register argument defines the width.
    std::size_t width = 1;
    for (const auto& ref : call.qubits) {
      if (ref.index < 0) {
        const auto it = qregs_.find(ref.reg);
        if (it == qregs_.end()) {
          throw ParseError("unknown qreg '" + ref.reg + "'", ref.line,
                           ref.column);
        }
        if (width != 1 && it->second.second != width) {
          throw ParseError("broadcast width mismatch", ref.line, ref.column);
        }
        width = it->second.second;
      }
    }
    std::vector<double> params;
    params.reserve(call.params.size());
    for (const auto& expr : call.params) {
      params.push_back(evaluateChecked(*expr, {}, call.line, call.column));
    }
    for (std::size_t rep = 0; rep < width; ++rep) {
      std::vector<Qubit> qubits;
      qubits.reserve(call.qubits.size());
      for (const auto& ref : call.qubits) {
        const auto resolved = resolve(ref);
        qubits.push_back(ref.index < 0 ? resolved[rep] : resolved[0]);
      }
      // Reject aliased operands (`cx q[0], q[0];`) here, at parse time,
      // rather than during the deferred emission pass: the error carries the
      // gate's own position instead of surfacing later from IR validation.
      rejectAliasedOperands(qubits, call.name, call.line, call.column);
      const auto line = call.line;
      const auto column = call.column;
      const auto name = call.name;
      pending_.emplace_back([this, name, params, qubits, line,
                             column](QuantumCircuit& c) {
        applyGate(c, name, params, qubits, line, column, 0);
      });
    }
  }

  std::vector<Qubit> resolve(const QubitRef& ref) const {
    const auto it = qregs_.find(ref.reg);
    if (it == qregs_.end()) {
      throw ParseError("unknown qreg '" + ref.reg + "'", ref.line, ref.column);
    }
    const auto [offset, size] = it->second;
    if (ref.index < 0) {
      std::vector<Qubit> all(size);
      for (std::size_t i = 0; i < size; ++i) {
        all[i] = static_cast<Qubit>(offset + i);
      }
      return all;
    }
    if (static_cast<std::size_t>(ref.index) >= size) {
      throw ParseError("qubit index out of range for '" + ref.reg + "'",
                       ref.line, ref.column);
    }
    return {static_cast<Qubit>(offset + static_cast<std::size_t>(ref.index))};
  }

  /// Gates act on pairwise-distinct qubits; an operand list that mentions
  /// the same wire twice (`cx q[0], q[0];`) is malformed input, rejected
  /// with the position of the offending application.
  static void rejectAliasedOperands(const std::vector<Qubit>& qubits,
                                    const std::string& name,
                                    const std::size_t line,
                                    const std::size_t column) {
    for (std::size_t i = 0; i < qubits.size(); ++i) {
      for (std::size_t j = i + 1; j < qubits.size(); ++j) {
        if (qubits[i] == qubits[j]) {
          throw ParseError("aliased operands: qubit " +
                               std::to_string(qubits[i]) +
                               " appears more than once in '" + name + "'",
                           line, column);
        }
      }
    }
  }

  /// Evaluate a parameter expression, converting evaluation failures
  /// (unbound parameters, unknown functions) and non-finite results into
  /// positioned ParseErrors.
  static double evaluateChecked(const Expr& expr, const Env& env,
                                const std::size_t line,
                                const std::size_t column) {
    double value = 0.0;
    try {
      value = evaluate(expr, env);
    } catch (const CircuitError& e) {
      throw ParseError(e.what(), line, column);
    }
    if (!std::isfinite(value)) {
      throw ParseError("parameter evaluates to a non-finite value", line,
                       column);
    }
    return value;
  }

  void applyGate(QuantumCircuit& circuit, const std::string& name,
                 const std::vector<double>& params,
                 const std::vector<Qubit>& qubits, const std::size_t line,
                 const std::size_t column, const int depth) {
    if (depth > 64) {
      throw ParseError("gate expansion too deep (recursive definition?)",
                       line, column);
    }
    const auto& builtins = builtinGates();
    if (const auto it = builtins.find(name); it != builtins.end()) {
      const auto& builtin = it->second;
      if (params.size() != builtin.numParams ||
          qubits.size() != builtin.numQubits) {
        throw ParseError("wrong arity for gate '" + name + "'", line, column);
      }
      try {
        builtin.emit(circuit, params, qubits);
      } catch (const CircuitError& e) {
        // e.g. duplicate qubit operands: cx q[0], q[0];
        throw ParseError(e.what(), line, column);
      }
      return;
    }
    const auto defIt = userGates_.find(name);
    if (defIt == userGates_.end()) {
      throw ParseError("unknown gate '" + name + "'", line, column);
    }
    const auto& def = defIt->second;
    if (params.size() != def.paramNames.size() ||
        qubits.size() != def.qubitNames.size()) {
      throw ParseError("wrong arity for gate '" + name + "'", line, column);
    }
    Env env;
    for (std::size_t i = 0; i < params.size(); ++i) {
      env[def.paramNames[i]] = params[i];
    }
    std::map<std::string, Qubit> qubitEnv;
    for (std::size_t i = 0; i < qubits.size(); ++i) {
      qubitEnv[def.qubitNames[i]] = qubits[i];
    }
    for (const auto& call : def.body) {
      std::vector<double> subParams;
      subParams.reserve(call.params.size());
      for (const auto& expr : call.params) {
        subParams.push_back(
            evaluateChecked(*expr, env, call.line, call.column));
      }
      std::vector<Qubit> subQubits;
      subQubits.reserve(call.qubits.size());
      for (const auto& ref : call.qubits) {
        const auto it = qubitEnv.find(ref.reg);
        if (it == qubitEnv.end() || ref.index >= 0) {
          throw ParseError("unknown qubit '" + ref.reg + "' in gate body",
                           ref.line, ref.column);
        }
        subQubits.push_back(it->second);
      }
      // A gate body can alias wires on its own (`gate g a { cx a, a; }`),
      // which only becomes visible once the formals are bound.
      rejectAliasedOperands(subQubits, call.name, call.line, call.column);
      applyGate(circuit, call.name, subParams, subQubits, call.line,
                call.column, depth + 1);
    }
  }

  // --- expressions (precedence climbing)
  ExprPtr parseExpression() { return parseAdditive(); }

  ExprPtr parseAdditive() {
    auto lhs = parseMultiplicative();
    while (true) {
      if (accept(TokenKind::Plus)) {
        lhs = binary(Expr::Kind::Add, lhs, parseMultiplicative());
      } else if (accept(TokenKind::Minus)) {
        lhs = binary(Expr::Kind::Sub, lhs, parseMultiplicative());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parseMultiplicative() {
    auto lhs = parseUnary();
    while (true) {
      if (accept(TokenKind::Star)) {
        lhs = binary(Expr::Kind::Mul, lhs, parseUnary());
      } else if (accept(TokenKind::Slash)) {
        lhs = binary(Expr::Kind::Div, lhs, parseUnary());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parseUnary() {
    if (accept(TokenKind::Minus)) {
      auto e = std::make_shared<Expr>();
      e->kind = Expr::Kind::Neg;
      e->lhs = parseUnary();
      return e;
    }
    accept(TokenKind::Plus);
    return parsePower();
  }

  ExprPtr parsePower() {
    auto base = parsePrimary();
    if (accept(TokenKind::Caret)) {
      return binary(Expr::Kind::Pow, base, parseUnary()); // right-assoc
    }
    return base;
  }

  ExprPtr parsePrimary() {
    const Token& tok = peek();
    if (tok.kind == TokenKind::Real || tok.kind == TokenKind::Integer) {
      advance();
      auto e = std::make_shared<Expr>();
      e->kind = Expr::Kind::Number;
      e->value = tok.realValue;
      return e;
    }
    if (tok.kind == TokenKind::LParen) {
      advance();
      auto inner = parseExpression();
      expect(TokenKind::RParen, "')'");
      return inner;
    }
    if (tok.kind == TokenKind::Identifier) {
      advance();
      if (tok.text == "pi") {
        auto e = std::make_shared<Expr>();
        e->kind = Expr::Kind::Number;
        e->value = PI;
        return e;
      }
      if (peek().kind == TokenKind::LParen) {
        advance();
        auto e = std::make_shared<Expr>();
        e->kind = Expr::Kind::Func;
        e->name = tok.text;
        e->lhs = parseExpression();
        expect(TokenKind::RParen, "')'");
        return e;
      }
      auto e = std::make_shared<Expr>();
      e->kind = Expr::Kind::Param;
      e->name = tok.text;
      return e;
    }
    fail("expected expression");
  }

  static ExprPtr binary(const Expr::Kind kind, ExprPtr lhs, ExprPtr rhs) {
    auto e = std::make_shared<Expr>();
    e->kind = kind;
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    return e;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::map<std::string, std::pair<std::size_t, std::size_t>> qregs_;
  std::map<std::string, std::size_t> cregs_;
  std::map<std::string, GateDef> userGates_;
  std::size_t totalQubits_ = 0;
  std::vector<std::function<void(QuantumCircuit&)>> pending_;
};

} // namespace

QuantumCircuit parse(const std::string& source, const std::string& name) {
  Parser parser(source);
  return parser.run(name);
}

QuantumCircuit parseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open QASM file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str(), std::filesystem::path(path).stem().string());
}

} // namespace veriqc::qasm
