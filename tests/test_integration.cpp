/// End-to-end flows across modules: the QASM-file pipeline the paper's
/// setup uses ("all benchmarks are provided in the form of QASM files,
/// which serves as a common language for both tools"), plus whole-pipeline
/// property tests.
#include "check/manager.hpp"
#include "circuits/benchmarks.hpp"
#include "circuits/error_injection.hpp"
#include "compile/architecture.hpp"
#include "compile/decompose.hpp"
#include "compile/mapper.hpp"
#include "opt/optimizer.hpp"
#include "qasm/parser.hpp"
#include "qasm/writer.hpp"

#include <gtest/gtest.h>

namespace veriqc {
namespace {

check::Configuration quickConfig() {
  check::Configuration config;
  config.simulationRuns = 8;
  return config;
}

TEST(IntegrationTest, QasmRoundTripThroughBothCheckers) {
  // original -> QASM -> parse -> compile -> QASM -> parse -> check.
  const auto original = circuits::grover(4, 9);
  const auto asText = qasm::write(compile::decomposeToCnot(original));
  const auto reparsed = qasm::parse(asText);
  const auto compiled = compile::compileForArchitecture(
      reparsed, compile::Architecture::linear(8));
  const auto viaQasmAgain =
      qasm::parse(qasm::write(compiled.withExplicitPermutations()));
  const auto dd = check::checkEquivalence(original, viaQasmAgain, quickConfig());
  EXPECT_TRUE(check::provedEquivalent(dd.criterion)) << dd.toString();
  const auto zx = check::zxCheck(original, viaQasmAgain);
  EXPECT_TRUE(check::provedEquivalent(zx.criterion)) << zx.toString();
}

TEST(IntegrationTest, CompileOptimizeVerifyPipeline) {
  // The two use cases chained: compile, then optimize the compiled circuit,
  // then verify optimized-vs-original across the whole pipeline.
  const auto original = circuits::quantumWalk(3, 2);
  const auto compiled = compile::compileForArchitecture(
      original, compile::Architecture::grid(3, 3));
  const auto optimized = opt::optimize(compiled);
  EXPECT_LE(optimized.gateCount(), compiled.gateCount());
  const auto verdict = check::checkEquivalence(original, optimized, quickConfig());
  EXPECT_TRUE(check::provedEquivalent(verdict.criterion)) << verdict.toString();
}

class PipelinePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelinePropertyTest, CompiledCircuitsVerifyAndErrorsAreCaught) {
  const auto seed = GetParam();
  const auto original = circuits::randomCircuit(4, 20, seed);
  const auto compiled = compile::compileForArchitecture(
      original, compile::Architecture::ring(6));
  auto config = quickConfig();
  config.seed = seed;
  const auto ok = check::checkEquivalence(original, compiled, config);
  EXPECT_TRUE(check::provedEquivalent(ok.criterion))
      << "seed " << seed << ": " << ok.toString();

  std::mt19937_64 rng(seed + 1);
  const auto damaged = circuits::flipRandomCnot(compiled, rng);
  if (damaged.has_value()) {
    const auto bad = check::checkEquivalence(original, *damaged, config);
    EXPECT_EQ(bad.criterion, check::EquivalenceCriterion::NotEquivalent)
        << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelinePropertyTest,
                         ::testing::Range(std::uint64_t{0}, std::uint64_t{8}));

TEST(IntegrationTest, Table1StyleInstanceEndToEnd) {
  // One full Table-1 cell: compiled Grover with an injected missing gate.
  const auto original = circuits::grover(4, 5);
  const auto compiled = compile::compileForArchitecture(
      original, compile::Architecture::ibmManhattanLike());
  std::mt19937_64 rng(4);
  const auto missing = circuits::removeRandomGate(compiled, rng);
  ASSERT_TRUE(missing.has_value());
  auto config = quickConfig();
  config.simulationRuns = 16;
  const auto verdict = check::checkEquivalence(original, *missing, config);
  EXPECT_EQ(verdict.criterion, check::EquivalenceCriterion::NotEquivalent);
  // The ZX engine alone must not claim equivalence.
  const auto zx = check::zxCheck(original, *missing);
  EXPECT_FALSE(check::provedEquivalent(zx.criterion));
}

TEST(IntegrationTest, WStateAcrossEngines) {
  const auto original = circuits::wState(4);
  const auto compiled = compile::compileForArchitecture(
      original, compile::Architecture::linear(6));
  const auto dd = check::checkEquivalence(original, compiled, quickConfig());
  EXPECT_TRUE(check::provedEquivalent(dd.criterion)) << dd.toString();
}

TEST(IntegrationTest, CuccaroAdderCompiledAndChecked) {
  const auto original = circuits::cuccaroAdder(2); // 6 qubits
  const auto compiled = compile::compileForArchitecture(
      original, compile::Architecture::grid(2, 4));
  const auto verdict = check::checkEquivalence(original, compiled, quickConfig());
  EXPECT_TRUE(check::provedEquivalent(verdict.criterion)) << verdict.toString();
  const auto zx = check::zxCheck(original, compiled);
  EXPECT_TRUE(check::provedEquivalent(zx.criterion)) << zx.toString();
}

} // namespace
} // namespace veriqc
