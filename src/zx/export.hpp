/// \file export.hpp
/// \brief Graphviz (DOT) export of ZX-diagrams: green Z spiders, red X
///        spiders, yellow boxes on Hadamard edges (drawn dashed + blue).
#pragma once

#include "zx/diagram.hpp"

#include <string>

namespace veriqc::zx {

[[nodiscard]] std::string toDot(const ZXDiagram& diagram);

void writeDot(const ZXDiagram& diagram, const std::string& path);

} // namespace veriqc::zx
