/// \file simplify.hpp
/// \brief Graph-like ZX-diagram simplification (Duncan et al., "Graph-
///        theoretic simplification of quantum circuits with the ZX-calculus",
///        plus the phase-gadget rules of Kissinger & van de Wetering).
///
/// All rewrites preserve the linear map up to a nonzero global scalar, which
/// is exactly the invariance needed for equivalence checking up to global
/// phase.
#pragma once

#include "ir/permutation.hpp"
#include "zx/diagram.hpp"

#include <cstddef>
#include <functional>
#include <optional>

namespace veriqc::zx {

/// Rewrite counts per rule family.
struct SimplifyStats {
  std::size_t spiderFusions = 0;
  std::size_t idRemovals = 0;
  std::size_t localComplementations = 0;
  std::size_t pivots = 0;
  std::size_t gadgetPivots = 0;
  std::size_t boundaryPivots = 0;
  std::size_t gadgetFusions = 0;

  [[nodiscard]] std::size_t total() const noexcept {
    return spiderFusions + idRemovals + localComplementations + pivots +
           gadgetPivots + boundaryPivots + gadgetFusions;
  }
};

/// Stateful simplifier bound to one diagram. The optional `shouldStop`
/// callback is polled between rewrites; when it returns true the current
/// pass returns early (used for timeouts).
class Simplifier {
public:
  explicit Simplifier(ZXDiagram& diagram,
                      std::function<bool()> shouldStop = {});

  /// Turn the diagram graph-like: X spiders become Z spiders (toggling their
  /// edges), adjacent Z spiders connected by plain wires fuse, parallel
  /// Hadamard edges cancel modulo 2 and self-loops are resolved.
  void toGraphLike();

  /// Fuse all plain-wire-connected Z spider pairs. Returns #fusions.
  std::size_t spiderSimp();
  /// Remove phase-free arity-2 spiders. Returns #removals.
  std::size_t idSimp();
  /// Local complementation on +-pi/2 interior spiders. Returns #rewrites.
  std::size_t lcompSimp();
  /// Pivoting about interior Pauli-Pauli edges. Returns #rewrites.
  std::size_t pivotSimp();
  /// Pivoting where the non-Pauli partner is first turned into a phase
  /// gadget. Returns #rewrites.
  std::size_t pivotGadgetSimp();
  /// Pivoting next to the boundary (boundary wires are unfused first).
  std::size_t pivotBoundarySimp();
  /// Fuse phase gadgets with identical connectivity. Returns #fusions.
  std::size_t gadgetSimp();

  /// spider/id/lcomp/pivot to fixpoint (after toGraphLike).
  std::size_t interiorCliffordSimp();
  /// interiorCliffordSimp + boundary pivots to fixpoint.
  std::size_t cliffordSimp();
  /// The full_reduce strategy used for equivalence checking.
  /// \returns false when aborted by shouldStop.
  bool fullReduce();

  [[nodiscard]] const SimplifyStats& stats() const noexcept { return stats_; }

private:
  [[nodiscard]] bool stopping() const { return shouldStop_ && shouldStop_(); }
  [[nodiscard]] bool isInterior(Vertex v) const;
  [[nodiscard]] bool isInteriorZ(Vertex v) const;
  /// All incident edges are single Hadamard edges to interior Z spiders.
  [[nodiscard]] bool allNeighborsInteriorViaHadamard(Vertex v) const;
  /// All incident edges are Hadamard (neighbors may include boundaries).
  [[nodiscard]] bool allEdgesHadamardToSpiders(Vertex v) const;

  /// Resolve self-loops on v (plain loops vanish; each Hadamard loop adds pi).
  void normalizeVertex(Vertex v);
  /// Cancel parallel Hadamard edges mod 2 between two Z spiders.
  void normalizePair(Vertex u, Vertex v);
  /// Fuse v into u (requires a plain edge between two Z spiders).
  void fuse(Vertex u, Vertex v);
  /// Toggle the single Hadamard edge between two interior spiders.
  void toggleHadamard(Vertex a, Vertex b);
  /// Core pivot about the Hadamard edge (u, v); preconditions checked by the
  /// callers.
  void pivot(Vertex u, Vertex v);
  /// Split v's phase into a fresh phase gadget hanging off v.
  void gadgetize(Vertex v);
  /// Insert an identity-pair spider on the boundary edge (b, v) so that v
  /// becomes interior-compatible.
  void unfuseBoundary(Vertex b, Vertex v);

  ZXDiagram& g_;
  std::function<bool()> shouldStop_;
  SimplifyStats stats_;
};

/// Convenience: full_reduce a diagram in place. Returns false on timeout.
bool fullReduce(ZXDiagram& diagram, std::function<bool()> shouldStop = {});

/// If the diagram is nothing but boundary vertices pairwise connected by
/// single plain wires, return the permutation p with output p(i) connected
/// to input i; otherwise std::nullopt (spiders remain, or Hadamard wires).
[[nodiscard]] std::optional<Permutation>
extractWirePermutation(const ZXDiagram& diagram);

} // namespace veriqc::zx
