file(REMOVE_RECURSE
  "CMakeFiles/test_revlib.dir/test_revlib.cpp.o"
  "CMakeFiles/test_revlib.dir/test_revlib.cpp.o.d"
  "test_revlib"
  "test_revlib.pdb"
  "test_revlib[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_revlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
