#include "check/result.hpp"

#include <sstream>

namespace veriqc::check {

std::string toString(const EquivalenceCriterion criterion) {
  switch (criterion) {
  case EquivalenceCriterion::Equivalent:
    return "equivalent";
  case EquivalenceCriterion::EquivalentUpToGlobalPhase:
    return "equivalent up to global phase";
  case EquivalenceCriterion::NotEquivalent:
    return "not equivalent";
  case EquivalenceCriterion::ProbablyEquivalent:
    return "probably equivalent";
  case EquivalenceCriterion::NoInformation:
    return "no information";
  case EquivalenceCriterion::Timeout:
    return "timeout";
  }
  return "unknown";
}

std::string toString(const OracleStrategy strategy) {
  switch (strategy) {
  case OracleStrategy::Naive:
    return "naive";
  case OracleStrategy::Proportional:
    return "proportional";
  case OracleStrategy::Lookahead:
    return "lookahead";
  }
  return "unknown";
}

std::string Result::toString() const {
  std::ostringstream os;
  os << veriqc::check::toString(criterion) << " [" << method << ", "
     << runtimeSeconds << " s";
  if (performedSimulations > 0) {
    os << ", " << performedSimulations << " simulations";
  }
  if (hilbertSchmidtFidelity >= 0.0) {
    os << ", HS fidelity " << hilbertSchmidtFidelity;
  }
  os << "]";
  return os.str();
}

} // namespace veriqc::check
