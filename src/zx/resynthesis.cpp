#include "zx/resynthesis.hpp"

#include "compile/decompose.hpp"
#include "zx/circuit_to_zx.hpp"
#include "zx/extract.hpp"
#include "opt/optimizer.hpp"
#include "zx/simplify.hpp"

namespace veriqc::zx {

std::optional<QuantumCircuit> resynthesize(const QuantumCircuit& circuit) {
  auto diagram = circuitToZX(compile::decomposeForZX(circuit));
  fullReduce(diagram);
  auto extracted = extractCircuit(std::move(diagram));
  if (extracted.has_value()) {
    // Peephole cleanup: extraction can emit cancelling pairs (H H, CX CX).
    *extracted = opt::optimize(*extracted);
    extracted->setName(circuit.name() + "_zxopt");
  }
  return extracted;
}

} // namespace veriqc::zx
