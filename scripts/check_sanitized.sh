#!/usr/bin/env bash
# Run the tier-1 ctest suite under AddressSanitizer + UBSan (the asan-ubsan
# CMake preset). Any sanitizer report aborts the offending test, so a green
# run means the suite is clean of heap errors and UB on the exercised paths.
#
# Usage: scripts/check_sanitized.sh [ctest-regex]
#   ctest-regex: optional -R filter (default: run everything)
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset asan-ubsan >/dev/null
cmake --build --preset asan-ubsan -j"$(nproc)" >/dev/null

export ASAN_OPTIONS="abort_on_error=1:detect_leaks=0"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"

if [[ $# -ge 1 ]]; then
  ctest --test-dir build-asan --output-on-failure -R "$1"
else
  ctest --preset asan-ubsan
fi
