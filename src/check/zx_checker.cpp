#include "check/zx_checker.hpp"

#include "audit/checkpoint.hpp"
#include "check/task_pool.hpp"
#include "compile/decompose.hpp"
#include "zx/circuit_to_zx.hpp"
#include "zx/simplify.hpp"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace veriqc::check {

Result zxCheck(const QuantumCircuit& c1, const QuantumCircuit& c2,
               const Configuration& config, const StopToken& stop) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  Result result;
  result.method = "zx-calculus";
  const auto elapsed = [&start] {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  // Track the configured deadline locally so an early abort can be
  // attributed correctly: past the deadline it is a Timeout, before it the
  // only other source of `stop` is a sibling engine's definitive verdict
  // (Cancelled).
  const auto deadline = config.timeout.count() > 0
                            ? start + config.timeout
                            : Clock::time_point::max();
  const auto shouldStop = [&stop, deadline] {
    return (stop && stop()) || Clock::now() >= deadline;
  };

  const auto [a, b] = alignCircuits(c1, c2);
  auto diagram =
      zx::circuitToZX(compile::decomposeForZX(a), config.zxPhaseSnapTolerance)
          .compose(zx::circuitToZX(compile::decomposeForZX(b),
                                   config.zxPhaseSnapTolerance)
                       .adjoint());
  zx::SimplifierOptions options;
  options.gadgetRules = config.zxGadgetRules;
  options.maxVertices = config.maxZXVertices;
  // Region-parallel pre-pass: veriqc_zx stays free of a task-pool
  // dependency, so the executor is injected here. Each invocation builds a
  // pool sized to the task count (fullReduce calls it at most once).
  const auto regions = TaskPool::resolveSlots(config.zxParallelRegions);
  options.parallelRegions = regions;
  if (regions > 1) {
    options.regionExecutor =
        [regions](const std::vector<std::function<void()>>& tasks) {
          TaskPool pool(std::min(regions, tasks.size()));
          TaskGroup group(pool);
          for (std::size_t i = 0; i < tasks.size(); ++i) {
            const auto& task = tasks[i];
            group.submit("zx:region" + std::to_string(i),
                         [&task](std::size_t) { task(); });
          }
          group.wait(); // rethrows the first task exception
        };
  }
  zx::Simplifier simplifier(diagram, shouldStop, options);

  // Engine observability: structured per-rule scheduler stats plus the named
  // counters the run report aggregates.
  const auto recordStats = [&] {
    result.rewrites = simplifier.stats().total();
    result.remainingSpiders = diagram.spiderCount();
    for (const auto& [rule, stats] : simplifier.stats().activeRules()) {
      result.zxRuleStats.push_back(
          {rule, stats.candidates, stats.matches, stats.rewrites,
           stats.seconds});
      const std::string base = std::string("zx.rule.") + rule;
      result.counters.add(base + ".candidates",
                          static_cast<double>(stats.candidates));
      result.counters.add(base + ".matches",
                          static_cast<double>(stats.matches));
      result.counters.add(base + ".rewrites",
                          static_cast<double>(stats.rewrites));
    }
    result.counters.add("zx.rewrites", static_cast<double>(result.rewrites));
    result.counters.max("zx.spiders.remaining",
                        static_cast<double>(result.remainingSpiders));
    result.runtimeSeconds = elapsed();
  };

  bool completed = false;
  try {
    // The simplifier checks the vertex budget itself, including against the
    // freshly composed diagram (construction is what blows up on huge gate
    // counts), so an over-budget input aborts before any rewriting starts.
    completed = simplifier.fullReduce();
  } catch (const ResourceLimitError& e) {
    result.criterion = EquivalenceCriterion::ResourceExhausted;
    result.errorMessage = e.what();
    recordStats();
    return result;
  }
  // Post-pass checkpoint: audit the reduced diagram and the drained worklist
  // before trusting them for a verdict. An AuditError propagates to the
  // manager's exception firewall (EngineError).
  audit::zxCheckpoint(config.auditLevel, diagram, simplifier,
                      "zx-calculus post-reduce checkpoint");
  recordStats();
  if (!completed) {
    result.criterion = Clock::now() >= deadline
                           ? EquivalenceCriterion::Timeout
                           : EquivalenceCriterion::Cancelled;
    return result;
  }
  // Both diagrams were built over logical qubits, so equivalence requires
  // the identity permutation on the wires.
  const auto perm = zx::extractWirePermutation(diagram);
  if (perm.has_value() && perm->isIdentity()) {
    result.criterion = EquivalenceCriterion::EquivalentUpToGlobalPhase;
  } else {
    result.criterion = EquivalenceCriterion::NoInformation;
  }
  return result;
}

} // namespace veriqc::check
