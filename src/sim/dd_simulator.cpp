#include "sim/dd_simulator.hpp"

#include <cmath>
#include <stdexcept>

namespace veriqc::sim {

dd::mEdge buildUnitaryDD(dd::Package& package, const QuantumCircuit& circuit,
                         const StopToken& stop) {
  if (package.numQubits() != circuit.numQubits()) {
    throw std::invalid_argument("buildUnitaryDD: qubit count mismatch");
  }
  const auto explicitCircuit = circuit.withExplicitPermutations();
  dd::mEdge e = package.makeIdent();
  package.incRef(e);
  for (const auto& op : explicitCircuit.ops()) {
    if (op.isNonUnitary()) {
      continue;
    }
    if (stop && stop()) {
      return e;
    }
    const auto gate = package.makeOperationDD(op);
    const auto next = package.multiply(gate, e);
    package.incRef(next);
    package.decRef(e);
    e = next;
    package.garbageCollect();
  }
  if (explicitCircuit.globalPhase() != 0.0) {
    const auto phased = dd::mEdge{
        e.n, e.w * std::exp(std::complex<double>{
                  0.0, explicitCircuit.globalPhase()})};
    package.incRef(phased);
    package.decRef(e);
    e = phased;
  }
  return e;
}

dd::vEdge simulate(dd::Package& package, const QuantumCircuit& circuit,
                   const dd::vEdge initialState, const StopToken& stop) {
  if (package.numQubits() != circuit.numQubits()) {
    throw std::invalid_argument("simulate: qubit count mismatch");
  }
  const auto explicitCircuit = circuit.withExplicitPermutations();
  dd::vEdge state = initialState;
  package.incRef(state);
  for (const auto& op : explicitCircuit.ops()) {
    if (op.isNonUnitary()) {
      continue;
    }
    if (stop && stop()) {
      return state;
    }
    const auto gate = package.makeOperationDD(op);
    const auto next = package.multiply(gate, state);
    package.incRef(next);
    package.decRef(state);
    state = next;
    package.garbageCollect();
  }
  if (explicitCircuit.globalPhase() != 0.0) {
    const auto phased = dd::vEdge{
        state.n, state.w * std::exp(std::complex<double>{
                     0.0, explicitCircuit.globalPhase()})};
    package.incRef(phased);
    package.decRef(state);
    state = phased;
  }
  return state;
}

} // namespace veriqc::sim
