#include "zx/circuit_to_zx.hpp"

namespace veriqc::zx {

namespace {

/// Builder tracking, per wire, the last diagram vertex and the type of the
/// pending edge to the next spider (Hadamard gates toggle the pending type
/// instead of creating a spider — the "Hadamard box is an edge" view).
class Builder {
public:
  Builder(const QuantumCircuit& circuit, const double phaseSnapTolerance)
      : circuit_(circuit), snapTolerance_(phaseSnapTolerance),
        last_(circuit.numQubits()),
        pending_(circuit.numQubits(), EdgeType::Simple) {
    std::vector<Vertex> inputs(circuit.numQubits());
    for (Qubit l = 0; l < circuit.numQubits(); ++l) {
      inputs[l] = diagram_.addVertex(VertexType::Boundary);
    }
    diagram_.setInputs(inputs);
    // Wire w holds logical qubit initialLayout[w].
    for (Qubit w = 0; w < circuit.numQubits(); ++w) {
      last_[w] = inputs[circuit.initialLayout()[w]];
    }
  }

  ZXDiagram run() {
    for (const auto& op : circuit_.ops()) {
      apply(op);
    }
    // Terminate wires with output boundaries in logical order.
    std::vector<Vertex> outputs(circuit_.numQubits());
    for (Qubit w = 0; w < circuit_.numQubits(); ++w) {
      const Vertex out = diagram_.addVertex(VertexType::Boundary);
      diagram_.addEdge(last_[w], out, pending_[w]);
      outputs[circuit_.outputPermutation()[w]] = out;
    }
    diagram_.setOutputs(outputs);
    return std::move(diagram_);
  }

private:
  /// Append a spider on wire w, consuming the pending edge type.
  Vertex spider(const Qubit w, const VertexType type, const PiRational phase) {
    const Vertex v = diagram_.addVertex(type, phase);
    diagram_.addEdge(last_[w], v, pending_[w]);
    last_[w] = v;
    pending_[w] = EdgeType::Simple;
    return v;
  }

  void zPhase(const Qubit w, const PiRational phase) {
    spider(w, VertexType::Z, phase);
  }
  void xPhase(const Qubit w, const PiRational phase) {
    spider(w, VertexType::X, phase);
  }

  void cx(const Qubit control, const Qubit target) {
    const Vertex zc = spider(control, VertexType::Z, {});
    const Vertex xt = spider(target, VertexType::X, {});
    diagram_.addEdge(zc, xt, EdgeType::Simple);
  }

  void cz(const Qubit control, const Qubit target) {
    const Vertex a = spider(control, VertexType::Z, {});
    const Vertex b = spider(target, VertexType::Z, {});
    diagram_.addEdge(a, b, EdgeType::Hadamard);
  }

  void hadamard(const Qubit w) {
    pending_[w] = pending_[w] == EdgeType::Simple ? EdgeType::Hadamard
                                                  : EdgeType::Simple;
  }

  void ry(const Qubit w, const PiRational phase) {
    // RY(theta) = S . RX(theta) . Sdg (as a matrix product; the circuit
    // applies Sdg first).
    zPhase(w, -PiRational::halfPi());
    xPhase(w, phase);
    zPhase(w, PiRational::halfPi());
  }

  /// Controlled phase: cp(theta) = p(theta/2) c; cx; p(-theta/2) t; cx;
  /// p(theta/2) t  (the qelib1 cu1 decomposition).
  void cp(const Qubit control, const Qubit target, const double theta) {
    const auto half = PiRational::fromRadians(theta / 2.0, snapTolerance_);
    zPhase(control, half);
    cx(control, target);
    zPhase(target, -half);
    cx(control, target);
    zPhase(target, half);
  }

  void crz(const Qubit control, const Qubit target, const double theta) {
    const auto half = PiRational::fromRadians(theta / 2.0, snapTolerance_);
    zPhase(target, half);
    cx(control, target);
    zPhase(target, -half);
    cx(control, target);
  }

  void apply(const Operation& op) {
    if (op.isNonUnitary()) {
      return;
    }
    if (op.controls.size() >= 2 ||
        (op.controls.size() == 1 && op.type == OpType::SWAP)) {
      // CSWAP and multi-controlled gates: require prior decomposition.
      throw CircuitError("circuitToZX: operation needs decomposition first: " +
                         op.toString());
    }
    if (op.controls.empty()) {
      applyUncontrolled(op);
    } else {
      applyControlled(op, op.controls[0], op.targets[0]);
    }
  }

  void applyUncontrolled(const Operation& op) {
    const auto t = op.targets.empty() ? Qubit{0} : op.targets[0];
    switch (op.type) {
    case OpType::I:
      return;
    case OpType::H:
      hadamard(t);
      return;
    case OpType::X:
      xPhase(t, PiRational::pi());
      return;
    case OpType::Y: // Y = i X Z: phases combine up to global phase
      zPhase(t, PiRational::pi());
      xPhase(t, PiRational::pi());
      return;
    case OpType::Z:
      zPhase(t, PiRational::pi());
      return;
    case OpType::S:
      zPhase(t, PiRational::halfPi());
      return;
    case OpType::Sdg:
      zPhase(t, -PiRational::halfPi());
      return;
    case OpType::T:
      zPhase(t, PiRational(1, 4));
      return;
    case OpType::Tdg:
      zPhase(t, PiRational(-1, 4));
      return;
    case OpType::SX:
      xPhase(t, PiRational::halfPi());
      return;
    case OpType::SXdg:
      xPhase(t, -PiRational::halfPi());
      return;
    case OpType::RX:
      xPhase(t, PiRational::fromRadians(op.params[0], snapTolerance_));
      return;
    case OpType::RY:
      ry(t, PiRational::fromRadians(op.params[0], snapTolerance_));
      return;
    case OpType::RZ:
    case OpType::P:
      zPhase(t, PiRational::fromRadians(op.params[0], snapTolerance_));
      return;
    case OpType::U2:
      // u2(phi, lambda) = rz(phi) ry(pi/2) rz(lambda) up to global phase.
      zPhase(t, PiRational::fromRadians(op.params[1], snapTolerance_));
      ry(t, PiRational::halfPi());
      zPhase(t, PiRational::fromRadians(op.params[0], snapTolerance_));
      return;
    case OpType::U3:
      zPhase(t, PiRational::fromRadians(op.params[2], snapTolerance_));
      ry(t, PiRational::fromRadians(op.params[0], snapTolerance_));
      zPhase(t, PiRational::fromRadians(op.params[1], snapTolerance_));
      return;
    case OpType::SWAP:
      std::swap(last_[op.targets[0]], last_[op.targets[1]]);
      std::swap(pending_[op.targets[0]], pending_[op.targets[1]]);
      return;
    default:
      throw CircuitError("circuitToZX: unsupported operation " +
                         op.toString());
    }
  }

  void applyControlled(const Operation& op, const Qubit c, const Qubit t) {
    switch (op.type) {
    case OpType::I:
      return;
    case OpType::X:
      cx(c, t);
      return;
    case OpType::Z:
      cz(c, t);
      return;
    case OpType::Y:
      // cy = sdg t; cx; s t
      zPhase(t, -PiRational::halfPi());
      cx(c, t);
      zPhase(t, PiRational::halfPi());
      return;
    case OpType::H:
      // qelib1 ch decomposition.
      hadamard(t);
      zPhase(t, -PiRational::halfPi());
      cx(c, t);
      hadamard(t);
      zPhase(t, PiRational(1, 4));
      cx(c, t);
      zPhase(t, PiRational(1, 4));
      hadamard(t);
      zPhase(t, PiRational::halfPi());
      xPhase(t, PiRational::pi());
      zPhase(c, PiRational::halfPi());
      return;
    case OpType::P:
      cp(c, t, op.params[0]);
      return;
    case OpType::RZ:
      crz(c, t, op.params[0]);
      return;
    case OpType::RX:
      // crx(theta) = (I (x) H) crz(theta) (I (x) H)
      hadamard(t);
      crz(c, t, op.params[0]);
      hadamard(t);
      return;
    case OpType::RY:
      // cry(theta) = (I (x) S) crx(theta) (I (x) Sdg)
      zPhase(t, -PiRational::halfPi());
      hadamard(t);
      crz(c, t, op.params[0]);
      hadamard(t);
      zPhase(t, PiRational::halfPi());
      return;
    case OpType::S:
      cp(c, t, PI_2);
      return;
    case OpType::Sdg:
      cp(c, t, -PI_2);
      return;
    case OpType::T:
      cp(c, t, PI_4);
      return;
    case OpType::Tdg:
      cp(c, t, -PI_4);
      return;
    default:
      throw CircuitError("circuitToZX: unsupported controlled operation " +
                         op.toString());
    }
  }

  const QuantumCircuit& circuit_;
  double snapTolerance_;
  ZXDiagram diagram_;
  std::vector<Vertex> last_;
  std::vector<EdgeType> pending_;
};

} // namespace

ZXDiagram circuitToZX(const QuantumCircuit& circuit,
                      const double phaseSnapTolerance) {
  return Builder(circuit, phaseSnapTolerance).run();
}

} // namespace veriqc::zx
