/// \file json.hpp
/// \brief Dependency-free JSON document model with a deterministic writer and
///        a strict parser.
///
/// The observability layer serializes run records to the stable
/// `veriqc-report/v1` schema; golden-file tests compare the emitted text
/// byte-for-byte. Two properties make that possible:
///  - objects preserve insertion order (stored as a vector of pairs, not a
///    hash map), so a report built in a fixed key order always serializes
///    identically, and
///  - doubles are printed in shortest round-trip form via std::to_chars,
///    which is deterministic across runs and platforms.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace veriqc::obs {

/// Raised by Json::parse on malformed input (with a byte offset) and by the
/// typed accessors on kind mismatches. The obs layer is dependency-free, so
/// this derives std::runtime_error directly rather than VeriqcError.
class JsonError : public std::runtime_error {
public:
  explicit JsonError(const std::string& msg) : std::runtime_error(msg) {}
};

/// One JSON value: null, boolean, number (integer or double), string, array
/// or object. Value semantics throughout; cheap enough for report-sized
/// documents (the writer and parser are not meant for bulk data).
class Json {
public:
  enum class Kind : std::uint8_t {
    Null,
    Boolean,
    Integer, ///< stored as int64; serialized without a decimal point
    Double,
    String,
    Array,
    Object,
  };

  using Array = std::vector<Json>;
  using Member = std::pair<std::string, Json>;
  using Object = std::vector<Member>; ///< insertion-ordered

  Json() = default;
  Json(std::nullptr_t) {}
  Json(bool value) : kind_(Kind::Boolean), bool_(value) {}
  Json(double value) : kind_(Kind::Double), double_(value) {}
  Json(std::int64_t value) : kind_(Kind::Integer), int_(value) {}
  Json(int value) : Json(static_cast<std::int64_t>(value)) {}
  Json(std::size_t value) : Json(static_cast<std::int64_t>(value)) {}
  Json(const char* value) : kind_(Kind::String), string_(value) {}
  Json(std::string value) : kind_(Kind::String), string_(std::move(value)) {}
  Json(std::string_view value) : kind_(Kind::String), string_(value) {}

  [[nodiscard]] static Json array() {
    Json j;
    j.kind_ = Kind::Array;
    return j;
  }
  [[nodiscard]] static Json object() {
    Json j;
    j.kind_ = Kind::Object;
    return j;
  }

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool isNull() const noexcept { return kind_ == Kind::Null; }
  [[nodiscard]] bool isBool() const noexcept { return kind_ == Kind::Boolean; }
  [[nodiscard]] bool isNumber() const noexcept {
    return kind_ == Kind::Integer || kind_ == Kind::Double;
  }
  [[nodiscard]] bool isInteger() const noexcept {
    return kind_ == Kind::Integer;
  }
  [[nodiscard]] bool isString() const noexcept { return kind_ == Kind::String; }
  [[nodiscard]] bool isArray() const noexcept { return kind_ == Kind::Array; }
  [[nodiscard]] bool isObject() const noexcept { return kind_ == Kind::Object; }

  /// \throws JsonError when the value is not of the requested kind.
  [[nodiscard]] bool asBool() const;
  [[nodiscard]] std::int64_t asInt() const;
  [[nodiscard]] double asDouble() const; ///< integers widen losslessly
  [[nodiscard]] const std::string& asString() const;
  [[nodiscard]] const Array& asArray() const;
  [[nodiscard]] const Object& asObject() const;

  /// Array/object element count; 0 for scalars.
  [[nodiscard]] std::size_t size() const noexcept;

  /// Append to an array (converts a Null value into an empty array first).
  Json& push_back(Json value);

  /// Object member access, inserting a Null member when the key is absent
  /// (converts a Null value into an empty object first).
  Json& operator[](std::string_view key);

  /// True when an object has the given key (false for non-objects).
  [[nodiscard]] bool contains(std::string_view key) const noexcept;
  /// Pointer to the member value, nullptr when absent (or not an object).
  [[nodiscard]] const Json* find(std::string_view key) const noexcept;
  /// \throws JsonError when the key is absent.
  [[nodiscard]] const Json& at(std::string_view key) const;

  /// Structural equality; Integer and Double compare equal when the numeric
  /// values coincide (so parse(dump(x)) == x holds for integral doubles).
  friend bool operator==(const Json& lhs, const Json& rhs);

  /// Serialize. `indent` < 0 yields compact output; otherwise members and
  /// elements are broken onto lines indented by `indent` spaces per level.
  /// Non-finite doubles serialize as null (JSON has no NaN/Inf).
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Strict JSON parser (no comments, no trailing commas).
  /// \throws JsonError on malformed input or trailing garbage.
  [[nodiscard]] static Json parse(std::string_view text);

private:
  void dumpTo(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

} // namespace veriqc::obs
