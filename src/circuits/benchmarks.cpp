#include "circuits/benchmarks.hpp"

#include <cmath>
#include <numeric>
#include <set>
#include <stdexcept>

namespace veriqc::circuits {

QuantumCircuit ghz(const std::size_t nqubits) {
  if (nqubits == 0) {
    throw std::invalid_argument("ghz: need at least one qubit");
  }
  QuantumCircuit c(nqubits, "ghz_" + std::to_string(nqubits));
  c.h(0);
  for (Qubit q = 1; q < nqubits; ++q) {
    c.cx(0, q);
  }
  return c;
}

QuantumCircuit
graphState(const std::size_t nqubits,
           const std::vector<std::pair<Qubit, Qubit>>& edges) {
  QuantumCircuit c(nqubits, "graph_state_" + std::to_string(nqubits));
  for (Qubit q = 0; q < nqubits; ++q) {
    c.h(q);
  }
  for (const auto& [a, b] : edges) {
    c.cz(a, b);
  }
  return c;
}

QuantumCircuit randomGraphState(const std::size_t nqubits,
                                const std::size_t extraChords,
                                const std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::set<std::pair<Qubit, Qubit>> edgeSet;
  for (Qubit q = 0; q < nqubits; ++q) {
    const Qubit next = static_cast<Qubit>((q + 1) % nqubits);
    edgeSet.insert({std::min(q, next), std::max(q, next)});
  }
  std::uniform_int_distribution<Qubit> pick(0, static_cast<Qubit>(nqubits - 1));
  std::size_t added = 0;
  std::size_t attempts = 0;
  while (added < extraChords && attempts < 100 * (extraChords + 1)) {
    ++attempts;
    const Qubit a = pick(rng);
    const Qubit b = pick(rng);
    if (a == b) {
      continue;
    }
    if (edgeSet.insert({std::min(a, b), std::max(a, b)}).second) {
      ++added;
    }
  }
  return graphState(nqubits, {edgeSet.begin(), edgeSet.end()});
}

QuantumCircuit qft(const std::size_t nqubits, const bool withSwaps) {
  QuantumCircuit c(nqubits, "qft_" + std::to_string(nqubits));
  for (std::size_t j = nqubits; j-- > 0;) {
    const auto qj = static_cast<Qubit>(j);
    c.h(qj);
    for (std::size_t k = j; k-- > 0;) {
      const auto qk = static_cast<Qubit>(k);
      c.cp(qk, qj, PI / static_cast<double>(std::size_t{1} << (j - k)));
    }
  }
  // Bit reversal.
  if (withSwaps) {
    for (Qubit q = 0; q < nqubits / 2; ++q) {
      c.swap(q, static_cast<Qubit>(nqubits - 1 - q));
    }
  } else {
    std::vector<Qubit> reversal(nqubits);
    for (Qubit q = 0; q < nqubits; ++q) {
      reversal[q] = static_cast<Qubit>(nqubits - 1 - q);
    }
    c.outputPermutation() = Permutation{std::move(reversal)};
  }
  return c;
}

QuantumCircuit iqft(const std::size_t nqubits, const bool withSwaps) {
  auto c = qft(nqubits, withSwaps).inverted();
  c.setName("iqft_" + std::to_string(nqubits));
  return c;
}

QuantumCircuit qpeExact(const std::size_t precision, std::uint64_t k) {
  const std::size_t n = precision + 1;
  const std::size_t modulus = std::size_t{1} << precision;
  k %= modulus;
  QuantumCircuit c(n, "qpe_exact_" + std::to_string(precision));
  const auto eigenQubit = static_cast<Qubit>(precision);
  const double theta = 2.0 * PI * static_cast<double>(k) /
                       static_cast<double>(modulus);
  // Eigenstate |1> of P(theta).
  c.x(eigenQubit);
  for (Qubit q = 0; q < precision; ++q) {
    c.h(q);
  }
  // Controlled powers U^{2^q}.
  for (Qubit q = 0; q < precision; ++q) {
    const double angle = theta * static_cast<double>(std::size_t{1} << q);
    c.cp(q, eigenQubit, angle);
  }
  // Inverse QFT on the counting register (without the eigenstate qubit).
  const auto inverse = qft(precision, true).inverted();
  for (const auto& op : inverse.ops()) {
    c.append(op);
  }
  return c;
}

namespace {
/// X-conjugate the zero bits of `pattern` so that an all-ones control
/// condition matches exactly `pattern`.
void conjugateZeros(QuantumCircuit& c, const std::size_t nqubits,
                    const std::uint64_t pattern) {
  for (Qubit q = 0; q < nqubits; ++q) {
    if (((pattern >> q) & 1U) == 0) {
      c.x(q);
    }
  }
}
} // namespace

QuantumCircuit grover(const std::size_t nqubits, std::uint64_t target,
                      std::size_t iterations) {
  if (nqubits < 2) {
    throw std::invalid_argument("grover: need at least two qubits");
  }
  const std::size_t space = std::size_t{1} << nqubits;
  target %= space;
  if (iterations == 0) {
    iterations = static_cast<std::size_t>(
        std::floor(PI / 4.0 * std::sqrt(static_cast<double>(space))));
    iterations = std::max<std::size_t>(iterations, 1);
  }
  QuantumCircuit c(nqubits, "grover_" + std::to_string(nqubits));
  for (Qubit q = 0; q < nqubits; ++q) {
    c.h(q);
  }
  std::vector<Qubit> controls(nqubits - 1);
  std::iota(controls.begin(), controls.end(), 0U);
  const auto top = static_cast<Qubit>(nqubits - 1);
  for (std::size_t it = 0; it < iterations; ++it) {
    // Oracle: phase flip on |target>.
    conjugateZeros(c, nqubits, target);
    c.mcz(controls, top);
    conjugateZeros(c, nqubits, target);
    // Diffusion operator.
    for (Qubit q = 0; q < nqubits; ++q) {
      c.h(q);
    }
    conjugateZeros(c, nqubits, 0);
    c.mcz(controls, top);
    conjugateZeros(c, nqubits, 0);
    for (Qubit q = 0; q < nqubits; ++q) {
      c.h(q);
    }
  }
  return c;
}

QuantumCircuit quantumWalk(const std::size_t positionQubits,
                           const std::size_t steps) {
  const std::size_t n = positionQubits + 1;
  QuantumCircuit c(n, "random_walk_" + std::to_string(n));
  const auto coin = static_cast<Qubit>(positionQubits);
  for (std::size_t step = 0; step < steps; ++step) {
    c.h(coin);
    // Increment position when the coin shows 1.
    for (std::size_t i = positionQubits; i-- > 1;) {
      std::vector<Qubit> controls{coin};
      for (Qubit q = 0; q < static_cast<Qubit>(i); ++q) {
        controls.push_back(q);
      }
      c.mcx(controls, static_cast<Qubit>(i));
    }
    if (positionQubits >= 1) {
      c.cx(coin, 0);
    }
    // Decrement position when the coin shows 0.
    c.x(coin);
    for (Qubit q = 0; q < positionQubits; ++q) {
      c.x(q);
    }
    for (std::size_t i = positionQubits; i-- > 1;) {
      std::vector<Qubit> controls{coin};
      for (Qubit q = 0; q < static_cast<Qubit>(i); ++q) {
        controls.push_back(q);
      }
      c.mcx(controls, static_cast<Qubit>(i));
    }
    if (positionQubits >= 1) {
      c.cx(coin, 0);
    }
    for (Qubit q = 0; q < positionQubits; ++q) {
      c.x(q);
    }
    c.x(coin);
  }
  return c;
}

QuantumCircuit wState(const std::size_t nqubits) {
  if (nqubits == 0) {
    throw std::invalid_argument("wState: need at least one qubit");
  }
  QuantumCircuit c(nqubits, "w_state_" + std::to_string(nqubits));
  // A single excitation starts on qubit 0; each step keeps amplitude
  // 1/sqrt(n) behind and passes the remainder down the chain.
  c.x(0);
  for (Qubit i = 0; i + 1 < nqubits; ++i) {
    const double theta =
        2.0 * std::acos(std::sqrt(1.0 / static_cast<double>(nqubits - i)));
    c.append(Operation(OpType::RY, {i}, {static_cast<Qubit>(i + 1)}, {theta}));
    c.cx(static_cast<Qubit>(i + 1), i);
  }
  return c;
}

QuantumCircuit cuccaroAdder(const std::size_t bits) {
  if (bits == 0) {
    throw std::invalid_argument("cuccaroAdder: need at least one bit");
  }
  // Layout: [cin, a0, b0, a1, b1, ..., a_{n-1}, b_{n-1}, cout]
  const std::size_t n = 2 * bits + 2;
  QuantumCircuit c(n, "adder_" + std::to_string(bits));
  const auto a = [](const std::size_t i) {
    return static_cast<Qubit>(1 + 2 * i);
  };
  const auto b = [](const std::size_t i) {
    return static_cast<Qubit>(2 + 2 * i);
  };
  const Qubit cin = 0;
  const auto cout = static_cast<Qubit>(n - 1);
  const auto maj = [&c](const Qubit x, const Qubit y, const Qubit z) {
    c.cx(z, y);
    c.cx(z, x);
    c.ccx(x, y, z);
  };
  const auto uma = [&c](const Qubit x, const Qubit y, const Qubit z) {
    c.ccx(x, y, z);
    c.cx(z, x);
    c.cx(x, y);
  };
  maj(cin, b(0), a(0));
  for (std::size_t i = 1; i < bits; ++i) {
    maj(a(i - 1), b(i), a(i));
  }
  c.cx(a(bits - 1), cout);
  for (std::size_t i = bits; i-- > 1;) {
    uma(a(i - 1), b(i), a(i));
  }
  uma(cin, b(0), a(0));
  return c;
}

QuantumCircuit constantAdder(const std::size_t bits,
                             const std::uint64_t constant) {
  QuantumCircuit c(bits, "plus" + std::to_string(constant) + "mod" +
                             std::to_string(std::size_t{1} << bits));
  // Controlled increments: adding 2^k is an MCX cascade starting at bit k.
  for (std::size_t k = 0; k < bits; ++k) {
    if (((constant >> k) & 1U) == 0) {
      continue;
    }
    // Increment the register's bits k..n-1 by one (carry cascade, highest
    // bit first so lower bits still hold the pre-increment values).
    for (std::size_t i = bits; i-- > k + 1;) {
      std::vector<Qubit> controls;
      for (std::size_t q = k; q < i; ++q) {
        controls.push_back(static_cast<Qubit>(q));
      }
      c.mcx(controls, static_cast<Qubit>(i));
    }
    c.x(static_cast<Qubit>(k));
  }
  return c;
}

QuantumCircuit urfLike(const std::size_t nqubits, const std::size_t gates,
                       const std::uint64_t seed) {
  if (nqubits < 2) {
    throw std::invalid_argument("urfLike: need at least two qubits");
  }
  std::mt19937_64 rng(seed);
  QuantumCircuit c(nqubits, "urf_" + std::to_string(nqubits));
  std::uniform_int_distribution<Qubit> pickQubit(
      0, static_cast<Qubit>(nqubits - 1));
  std::uniform_int_distribution<std::size_t> pickCount(
      1, std::min<std::size_t>(3, nqubits - 1));
  std::uniform_int_distribution<int> coin(0, 1);
  for (std::size_t g = 0; g < gates; ++g) {
    const Qubit target = pickQubit(rng);
    const std::size_t nctrl = pickCount(rng);
    std::set<Qubit> ctrlSet;
    while (ctrlSet.size() < nctrl) {
      const Qubit q = pickQubit(rng);
      if (q != target) {
        ctrlSet.insert(q);
      }
    }
    // Random control polarity via X conjugation.
    std::vector<Qubit> negated;
    for (const auto q : ctrlSet) {
      if (coin(rng) == 1) {
        negated.push_back(q);
      }
    }
    for (const auto q : negated) {
      c.x(q);
    }
    c.mcx({ctrlSet.begin(), ctrlSet.end()}, target);
    for (const auto q : negated) {
      c.x(q);
    }
  }
  return c;
}

QuantumCircuit mixedReversible(const std::size_t nqubits,
                               const std::size_t gates,
                               const std::uint64_t seed) {
  if (nqubits < 3) {
    throw std::invalid_argument("mixedReversible: need at least three qubits");
  }
  std::mt19937_64 rng(seed);
  QuantumCircuit c(nqubits, "example_" + std::to_string(nqubits));
  std::uniform_int_distribution<Qubit> pickQubit(
      0, static_cast<Qubit>(nqubits - 1));
  std::uniform_int_distribution<int> pickKind(0, 4);
  for (std::size_t g = 0; g < gates; ++g) {
    const Qubit target = pickQubit(rng);
    switch (pickKind(rng)) {
    case 0:
      c.x(target);
      break;
    case 1: {
      Qubit ctrl = pickQubit(rng);
      while (ctrl == target) {
        ctrl = pickQubit(rng);
      }
      c.cx(ctrl, target);
      break;
    }
    case 2: {
      Qubit ctrl = pickQubit(rng);
      while (ctrl == target) {
        ctrl = pickQubit(rng);
      }
      c.cz(ctrl, target);
      break;
    }
    case 3: {
      std::set<Qubit> ctrls;
      while (ctrls.size() < 2) {
        const Qubit q = pickQubit(rng);
        if (q != target) {
          ctrls.insert(q);
        }
      }
      c.mcx({ctrls.begin(), ctrls.end()}, target);
      break;
    }
    default: {
      std::set<Qubit> ctrls;
      while (ctrls.size() < 2) {
        const Qubit q = pickQubit(rng);
        if (q != target) {
          ctrls.insert(q);
        }
      }
      c.mcz({ctrls.begin(), ctrls.end()}, target);
      break;
    }
    }
  }
  return c;
}

QuantumCircuit bernsteinVazirani(const std::size_t nqubits,
                                 std::uint64_t secret) {
  secret &= (std::uint64_t{1} << nqubits) - 1;
  QuantumCircuit c(nqubits, "bv_" + std::to_string(nqubits));
  for (Qubit q = 0; q < nqubits; ++q) {
    c.h(q);
  }
  // Phase oracle for f(x) = s.x: Z on every secret bit.
  for (Qubit q = 0; q < nqubits; ++q) {
    if ((secret >> q) & 1U) {
      c.z(q);
    }
  }
  for (Qubit q = 0; q < nqubits; ++q) {
    c.h(q);
  }
  return c;
}

QuantumCircuit deutschJozsa(const std::size_t nqubits,
                            std::uint64_t mask) {
  mask &= (std::uint64_t{1} << nqubits) - 1;
  QuantumCircuit c(nqubits, "dj_" + std::to_string(nqubits));
  for (Qubit q = 0; q < nqubits; ++q) {
    c.h(q);
  }
  if (mask != 0) {
    // Balanced oracle f(x) = (mask.x) mod 2 as a phase oracle.
    for (Qubit q = 0; q < nqubits; ++q) {
      if ((mask >> q) & 1U) {
        c.z(q);
      }
    }
  }
  for (Qubit q = 0; q < nqubits; ++q) {
    c.h(q);
  }
  return c;
}

QuantumCircuit hiddenShift(const std::size_t nqubits,
                           std::uint64_t shift) {
  if (nqubits % 2 != 0 || nqubits == 0) {
    throw std::invalid_argument("hiddenShift: needs an even qubit count");
  }
  shift &= (std::uint64_t{1} << nqubits) - 1;
  QuantumCircuit c(nqubits, "hidden_shift_" + std::to_string(nqubits));
  const auto oracle = [&c, nqubits] {
    for (Qubit q = 0; q + 1 < nqubits; q += 2) {
      c.cz(q, static_cast<Qubit>(q + 1));
    }
  };
  for (Qubit q = 0; q < nqubits; ++q) {
    c.h(q);
  }
  // Shifted function: conjugate the oracle with X on the shift bits.
  for (Qubit q = 0; q < nqubits; ++q) {
    if ((shift >> q) & 1U) {
      c.x(q);
    }
  }
  oracle();
  for (Qubit q = 0; q < nqubits; ++q) {
    if ((shift >> q) & 1U) {
      c.x(q);
    }
  }
  for (Qubit q = 0; q < nqubits; ++q) {
    c.h(q);
  }
  // Dual bent function's oracle.
  oracle();
  for (Qubit q = 0; q < nqubits; ++q) {
    c.h(q);
  }
  return c;
}

QuantumCircuit randomClifford(const std::size_t nqubits,
                              const std::size_t depth,
                              const std::uint64_t seed) {
  return randomCliffordT(nqubits, depth, 0.0, seed);
}

QuantumCircuit randomCliffordT(const std::size_t nqubits,
                               const std::size_t depth,
                               const double tFraction,
                               const std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  QuantumCircuit c(nqubits, "random_clifford_t");
  std::uniform_int_distribution<Qubit> pickQubit(
      0, static_cast<Qubit>(nqubits - 1));
  std::uniform_int_distribution<int> pickClifford(0, 3);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  std::uniform_int_distribution<int> coin(0, 1);
  for (std::size_t g = 0; g < depth * nqubits; ++g) {
    const Qubit q = pickQubit(rng);
    if (uniform(rng) < tFraction) {
      if (coin(rng) == 1) {
        c.t(q);
      } else {
        c.tdg(q);
      }
      continue;
    }
    switch (pickClifford(rng)) {
    case 0:
      c.h(q);
      break;
    case 1:
      c.s(q);
      break;
    case 2:
      c.sdg(q);
      break;
    default: {
      if (nqubits < 2) {
        c.h(q);
        break;
      }
      Qubit t = pickQubit(rng);
      while (t == q) {
        t = pickQubit(rng);
      }
      c.cx(q, t);
      break;
    }
    }
  }
  return c;
}

QuantumCircuit randomCircuit(const std::size_t nqubits,
                             const std::size_t gates,
                             const std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  QuantumCircuit c(nqubits, "random");
  std::uniform_int_distribution<Qubit> pickQubit(
      0, static_cast<Qubit>(nqubits - 1));
  std::uniform_int_distribution<int> pickKind(0, 11);
  std::uniform_real_distribution<double> angle(-2.0 * PI, 2.0 * PI);
  const auto other = [&](const Qubit q) {
    Qubit r = pickQubit(rng);
    while (r == q) {
      r = pickQubit(rng);
    }
    return r;
  };
  for (std::size_t g = 0; g < gates; ++g) {
    const Qubit q = pickQubit(rng);
    switch (pickKind(rng)) {
    case 0:
      c.h(q);
      break;
    case 1:
      c.x(q);
      break;
    case 2:
      c.s(q);
      break;
    case 3:
      c.t(q);
      break;
    case 4:
      c.rx(q, angle(rng));
      break;
    case 5:
      c.ry(q, angle(rng));
      break;
    case 6:
      c.rz(q, angle(rng));
      break;
    case 7:
      c.u3(q, angle(rng), angle(rng), angle(rng));
      break;
    case 8:
      if (nqubits >= 2) {
        c.cx(q, other(q));
      } else {
        c.x(q);
      }
      break;
    case 9:
      if (nqubits >= 2) {
        c.cp(q, other(q), angle(rng));
      } else {
        c.p(q, angle(rng));
      }
      break;
    case 10:
      if (nqubits >= 2) {
        c.swap(q, other(q));
      } else {
        c.h(q);
      }
      break;
    default:
      if (nqubits >= 3) {
        const Qubit c1 = other(q);
        Qubit c2 = pickQubit(rng);
        while (c2 == q || c2 == c1) {
          c2 = pickQubit(rng);
        }
        c.ccx(c1, c2, q);
      } else {
        c.y(q);
      }
      break;
    }
  }
  return c;
}

} // namespace veriqc::circuits
