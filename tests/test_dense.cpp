#include "circuits/benchmarks.hpp"
#include "sim/dense.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace veriqc {
namespace {

using sim::Matrix;
using sim::StateVector;

TEST(DenseTest, ZeroStateIsBasisZero) {
  const auto state = sim::zeroState(3);
  EXPECT_EQ(state.size(), 8U);
  EXPECT_DOUBLE_EQ(state[0].real(), 1.0);
  for (std::size_t i = 1; i < 8; ++i) {
    EXPECT_EQ(state[i], sim::Amplitude{});
  }
}

TEST(DenseTest, HadamardCreatesSuperposition) {
  auto state = sim::zeroState(1);
  sim::applyOperation(Operation(OpType::H, {}, {0}), 1, state);
  EXPECT_NEAR(state[0].real(), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(state[1].real(), 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(DenseTest, GhzStateAmplitudes) {
  // The paper's Fig. 1: GHZ(3) maps |000> to (|000> + |111>)/sqrt(2).
  auto state = sim::zeroState(3);
  sim::applyGates(circuits::ghz(3), state);
  EXPECT_NEAR(std::abs(state[0]), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(std::abs(state[7]), 1.0 / std::sqrt(2.0), 1e-12);
  for (const std::size_t i : {1, 2, 3, 4, 5, 6}) {
    EXPECT_NEAR(std::abs(state[i]), 0.0, 1e-12);
  }
}

TEST(DenseTest, CnotControlOrientation) {
  // cx(control=0, target=1): |01> (q0=1) -> |11>.
  auto state = sim::zeroState(2);
  sim::applyOperation(Operation(OpType::X, {}, {0}), 2, state);
  sim::applyOperation(Operation(OpType::X, {0}, {1}), 2, state);
  EXPECT_NEAR(std::abs(state[3]), 1.0, 1e-12);
}

TEST(DenseTest, SwapExchangesQubits) {
  auto state = sim::zeroState(2);
  sim::applyOperation(Operation(OpType::X, {}, {0}), 2, state);
  sim::applyOperation(Operation(OpType::SWAP, {}, {0, 1}), 2, state);
  EXPECT_NEAR(std::abs(state[2]), 1.0, 1e-12); // |10>, q1 = 1
}

TEST(DenseTest, ControlledSwapRequiresControl) {
  auto state = sim::zeroState(3);
  sim::applyOperation(Operation(OpType::X, {}, {0}), 3, state);
  // Control q2 = 0: no swap happens.
  sim::applyOperation(Operation(OpType::SWAP, {2}, {0, 1}), 3, state);
  EXPECT_NEAR(std::abs(state[1]), 1.0, 1e-12);
  // Now set the control and swap.
  sim::applyOperation(Operation(OpType::X, {}, {2}), 3, state);
  sim::applyOperation(Operation(OpType::SWAP, {2}, {0, 1}), 3, state);
  EXPECT_NEAR(std::abs(state[4 + 2]), 1.0, 1e-12); // q2=1, q1=1
}

TEST(DenseTest, CircuitUnitaryOfGhzMatchesPaperMatrix) {
  // Fig. 1b: the first column is (1/sqrt 2)(e_0 + e_7).
  const auto u = sim::circuitUnitary(circuits::ghz(3));
  EXPECT_NEAR(std::abs(u.at(0, 0)), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(std::abs(u.at(7, 0)), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(std::abs(u.at(1, 0)), 0.0, 1e-12);
}

TEST(DenseTest, UnitaryIsUnitary) {
  const auto u = sim::circuitUnitary(circuits::randomCircuit(3, 30, 7));
  const auto prod = u.adjoint().multiply(u);
  EXPECT_TRUE(prod.equals(Matrix::identity(8), 1e-9));
}

TEST(DenseTest, PermutationMatrixIsPermutation) {
  const Permutation sigma({2, 0, 1});
  const auto r = sim::permutationMatrix(sigma);
  // Column z has exactly one 1.
  for (std::size_t col = 0; col < 8; ++col) {
    double sum = 0.0;
    for (std::size_t row = 0; row < 8; ++row) {
      sum += std::abs(r.at(row, col));
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
  // R(sigma) places logical sigma(w) on wire w: z = |q2 q1 q0> = |001>
  // (logical 0 set). Wire 1 holds logical 0 => x = |010>.
  EXPECT_NEAR(std::abs(r.at(2, 1)), 1.0, 1e-12);
}

TEST(DenseTest, ApplyLogicalRespectsInitialLayout) {
  // One wire, X on wire 0; with layout wire0 -> logical1 and wire1 -> logical0
  // the X acts on logical qubit 1.
  QuantumCircuit c(2);
  c.x(0);
  c.initialLayout() = Permutation({1, 0});
  c.outputPermutation() = Permutation({1, 0});
  auto state = sim::zeroState(2);
  sim::applyLogical(c, state);
  EXPECT_NEAR(std::abs(state[2]), 1.0, 1e-12); // logical q1 flipped
}

TEST(DenseTest, InnerProductOfOrthogonalStates) {
  auto a = sim::zeroState(2);
  auto b = sim::zeroState(2);
  sim::applyOperation(Operation(OpType::X, {}, {0}), 2, b);
  EXPECT_NEAR(std::abs(sim::innerProduct(a, b)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(sim::innerProduct(a, a)), 1.0, 1e-12);
}

TEST(DenseTest, GlobalPhaseAppliedByApplyGates) {
  QuantumCircuit c(1);
  c.setGlobalPhase(PI / 2.0);
  auto state = sim::zeroState(1);
  sim::applyGates(c, state);
  EXPECT_NEAR(state[0].imag(), 1.0, 1e-12);
}

TEST(DenseTest, EqualsUpToGlobalPhase) {
  const auto u = sim::circuitUnitary(circuits::randomCircuit(3, 20, 3));
  QuantumCircuit phased = circuits::randomCircuit(3, 20, 3);
  phased.setGlobalPhase(0.823);
  const auto v = sim::circuitUnitary(phased);
  EXPECT_TRUE(u.equalsUpToGlobalPhase(v));
  EXPECT_FALSE(u.equals(v, 1e-9));
}

} // namespace
} // namespace veriqc
