/// \file zx_checker.hpp
/// \brief The ZX-calculus based equivalence checker (Sec. 5 of the paper).
#pragma once

#include "check/dd_checkers.hpp"
#include "check/result.hpp"
#include "ir/circuit.hpp"

namespace veriqc::check {

/// Compose one circuit's ZX-diagram with the adjoint of the other's and
/// simplify with the graph-like rewrite system. Reduction to bare wires
/// realizing the expected permutation proves equivalence up to global phase;
/// anything else yields NoInformation — failure to reduce is "a strong
/// indication, not a proof" of non-equivalence (Sec. 6.2).
///
/// Multi-controlled gates are decomposed first, mirroring the paper's
/// preprocessing for pyzx.
[[nodiscard]] Result zxCheck(const QuantumCircuit& c1,
                             const QuantumCircuit& c2,
                             const Configuration& config = {},
                             const StopToken& stop = {});

} // namespace veriqc::check
