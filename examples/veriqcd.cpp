/// \file veriqcd.cpp
/// \brief The veriqc daemon: a long-running equivalence-checking service.
///
/// Reads newline-delimited JSON job requests ({"id","file1","file2",
/// "config":{...}}) from stdin — or from clients of a Unix stream socket
/// with --socket — runs them through serve::JobService on a shared task
/// pool, and streams one compact veriqc-report/v1 object per job to stdout
/// (NDJSON out, in completion order).
///
/// Usage: veriqcd [--socket <path>] [--max-active <n>] [--queue <n>]
///                [--pool-slots <n>] [--max-memory-mb <n>] [--max-dd-nodes <n>]
///                [--max-line-bytes <n>] [--timeout-ms <n>] [--sims <n>]
///                [--allow-fault-plans] [--no-shared-cache] [--metrics-fd <fd>]
///
/// Signals: SIGINT/SIGTERM drain-and-cancel (in-flight jobs report verdict
/// "cancelled", queued jobs are rejected "shutting_down"); SIGUSR1 requests
/// a metrics dump ({"schema":"veriqc-metrics/v1",...}) to the metrics fd
/// (default stderr, or --metrics-fd). A final metrics dump is written at
/// exit.
#include "check/result.hpp"
#include "obs/json.hpp"
#include "serve/service.hpp"
#include "support/mutex.hpp"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define VERIQCD_HAVE_SOCKETS 1
#endif

namespace {

// Signal flags: handlers only set them; the serving loops poll.
volatile std::sig_atomic_t gShutdownRequested = 0;
volatile std::sig_atomic_t gMetricsRequested = 0;

void onShutdownSignal(int /*signum*/) { gShutdownRequested = 1; }
void onMetricsSignal(int /*signum*/) { gMetricsRequested = 1; }

void usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s [--socket <path>] [--max-active <n>] [--queue <n>]\n"
      "          [--pool-slots <n>] [--max-memory-mb <n>] [--max-dd-nodes <n>]\n"
      "          [--max-line-bytes <n>] [--timeout-ms <n>] [--sims <n>]\n"
      "          [--allow-fault-plans] [--no-shared-cache] [--metrics-fd <fd>]\n"
      "reads NDJSON job requests from stdin (or socket clients), writes one\n"
      "veriqc-report/v1 JSON line per job to stdout\n",
      prog);
}

/// stdout report writer: one compact JSON object per line, flushed so a
/// piped consumer sees each report as soon as the job finishes.
class LineSink {
public:
  void write(const veriqc::obs::Json& report) {
    const veriqc::support::LockGuard lock(mutex_);
    std::fputs(report.dump().c_str(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  }

private:
  veriqc::support::Mutex mutex_;
};

void dumpMetrics(const veriqc::serve::JobService& service, const int fd) {
  const std::string text = service.metricsJson().dump() + "\n";
#if defined(__unix__) || defined(__APPLE__)
  std::size_t written = 0;
  while (written < text.size()) {
    const auto n = ::write(fd, text.data() + written, text.size() - written);
    if (n <= 0) {
      return;
    }
    written += static_cast<std::size_t>(n);
  }
#else
  std::fputs(text.c_str(), stderr);
#endif
}

#ifdef VERIQCD_HAVE_SOCKETS

/// One connected client: read lines, feed the service. Reports still go to
/// stdout — the socket is an ingress, not a session; a short reply with the
/// admission outcome is written back per line so clients can flow-control.
void serveClient(const int fd, veriqc::serve::JobService& service) {
  std::string buffer;
  std::vector<char> chunk(4096);
  while (true) {
    const auto n = ::read(fd, chunk.data(), chunk.size());
    if (n <= 0) {
      break;
    }
    buffer.append(chunk.data(), static_cast<std::size_t>(n));
    std::size_t begin = 0;
    for (std::size_t nl = buffer.find('\n', begin); nl != std::string::npos;
         nl = buffer.find('\n', begin)) {
      const std::string_view line(buffer.data() + begin, nl - begin);
      if (!line.empty()) {
        const bool admitted = service.submitLine(line);
        const char* reply = admitted ? "admitted\n" : "rejected\n";
        if (::write(fd, reply, std::strlen(reply)) < 0) {
          ::close(fd);
          return;
        }
      }
      begin = nl + 1;
    }
    buffer.erase(0, begin);
  }
  // A trailing un-terminated line still counts as a submission.
  if (!buffer.empty()) {
    service.submitLine(buffer);
  }
  ::close(fd);
}

int serveSocket(const std::string& path, veriqc::serve::JobService& service,
                const int metricsFd) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("veriqcd: socket");
    return 3;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "veriqcd: socket path too long: %s\n", path.c_str());
    ::close(listener);
    return 3;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener, 16) != 0) {
    std::perror("veriqcd: bind/listen");
    ::close(listener);
    return 3;
  }
  std::vector<std::thread> clients;
  while (gShutdownRequested == 0) {
    if (gMetricsRequested != 0) {
      gMetricsRequested = 0;
      dumpMetrics(service, metricsFd);
    }
    // accept() without SA_RESTART returns EINTR on SIGINT/SIGTERM/SIGUSR1,
    // which is exactly the wakeup the flag polls need.
    const int client = ::accept(listener, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    clients.emplace_back(
        [client, &service] { serveClient(client, service); });
  }
  ::close(listener);
  ::unlink(path.c_str());
  for (auto& client : clients) {
    if (client.joinable()) {
      client.join();
    }
  }
  return 0;
}

#endif // VERIQCD_HAVE_SOCKETS

/// stdin ingress: a reader thread pumps lines into the service while the
/// main thread polls the signal flags, so SIGUSR1 dumps metrics even while
/// the reader blocks on a quiet pipe.
int serveStdin(veriqc::serve::JobService& service, const int metricsFd) {
  std::atomic<bool> eof{false};
  std::thread reader([&service, &eof] {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!line.empty()) {
        service.submitLine(line);
      }
      if (gShutdownRequested != 0) {
        break;
      }
    }
    eof.store(true, std::memory_order_release);
  });
  while (!eof.load(std::memory_order_acquire) && gShutdownRequested == 0) {
    if (gMetricsRequested != 0) {
      gMetricsRequested = 0;
      dumpMetrics(service, metricsFd);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  if (gShutdownRequested != 0) {
    // Cancel in-flight work; their reports record verdict "cancelled". The
    // reader thread stays blocked on stdin until the pipe closes — detach
    // is unsafe (it captures `service`), so close(0) unblocks it.
    service.shutdown(/*cancelInFlight=*/true);
#if defined(__unix__) || defined(__APPLE__)
    ::close(0);
#endif
  } else {
    service.drain();
  }
  if (reader.joinable()) {
    reader.join();
  }
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  using namespace veriqc;

  serve::ServiceLimits limits;
  check::Configuration defaults;
  defaults.simulationRuns = 16;
  defaults.timeout = std::chrono::seconds(60);
  std::string socketPath;
  int metricsFd = 2;

  const auto numeric = [&](int& i) -> std::size_t {
    if (i + 1 >= argc) {
      usage(argv[0]);
      std::exit(3);
    }
    return static_cast<std::size_t>(std::atoll(argv[++i]));
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
      socketPath = argv[++i];
    } else if (std::strcmp(argv[i], "--max-active") == 0) {
      limits.maxActiveJobs = numeric(i);
    } else if (std::strcmp(argv[i], "--queue") == 0) {
      limits.maxQueuedJobs = numeric(i);
    } else if (std::strcmp(argv[i], "--pool-slots") == 0) {
      limits.poolSlots = numeric(i);
    } else if (std::strcmp(argv[i], "--max-memory-mb") == 0) {
      limits.maxMemoryMB = numeric(i);
    } else if (std::strcmp(argv[i], "--max-dd-nodes") == 0) {
      limits.maxDDNodes = numeric(i);
    } else if (std::strcmp(argv[i], "--max-line-bytes") == 0) {
      limits.maxLineBytes = numeric(i);
    } else if (std::strcmp(argv[i], "--timeout-ms") == 0) {
      defaults.timeout = std::chrono::milliseconds(numeric(i));
    } else if (std::strcmp(argv[i], "--sims") == 0) {
      defaults.simulationRuns = numeric(i);
    } else if (std::strcmp(argv[i], "--allow-fault-plans") == 0) {
      limits.allowFaultPlans = true;
    } else if (std::strcmp(argv[i], "--no-shared-cache") == 0) {
      limits.useSharedGateCache = false;
    } else if (std::strcmp(argv[i], "--metrics-fd") == 0) {
      metricsFd = static_cast<int>(numeric(i));
    } else {
      usage(argv[0]);
      return 3;
    }
  }

#if defined(__unix__) || defined(__APPLE__)
  // No SA_RESTART: blocking accept()/read() must return EINTR so the serving
  // loops observe the flags promptly.
  struct sigaction action {};
  action.sa_handler = onShutdownSignal;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  action.sa_handler = onMetricsSignal;
  ::sigaction(SIGUSR1, &action, nullptr);
#endif

  LineSink sink;
  serve::JobService service(
      limits, defaults,
      [&sink](const std::string& /*jobId*/, const obs::Json& report) {
        sink.write(report);
      });

  int exitCode = 0;
  if (!socketPath.empty()) {
#ifdef VERIQCD_HAVE_SOCKETS
    exitCode = serveSocket(socketPath, service, metricsFd);
    service.shutdown(/*cancelInFlight=*/gShutdownRequested != 0);
#else
    std::fprintf(stderr, "veriqcd: sockets unavailable on this platform\n");
    return 3;
#endif
  } else {
    exitCode = serveStdin(service, metricsFd);
  }
  service.shutdown(/*cancelInFlight=*/false); // idempotent; joins workers
  dumpMetrics(service, metricsFd);
  return exitCode;
}
