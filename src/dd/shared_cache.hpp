/// \file shared_cache.hpp
/// \brief Cross-package sharing of immutable gate-DD constructions.
///
/// A long-running service (veriqcd) runs many jobs, each with private
/// single-threaded Packages that are torn down when the job finishes. Gate
/// DDs are pure functions of (matrix, controls, target, tolerance), so jobs
/// of the same shape rebuild identical diagrams over and over. The
/// SharedGateCache keeps one immutable snapshot Package per
/// (qubit count, tolerance) shape: jobs adopt it as a warm gate source
/// (Package::adoptWarmGateSource) and donate their own constructions back
/// (publish) before teardown.
///
/// Lifetime/epoch scheme: snapshots are handed out as
/// `std::shared_ptr<const Package>` leases. Publishing builds a *new*
/// snapshot package (copy-on-publish) and atomically replaces the map entry;
/// packages already leased by in-flight jobs stay alive through their
/// shared_ptr until the last adopter drops it. A per-shape generation
/// counter exposes the epoch for tests and metrics. No job ever observes a
/// snapshot mutate: every published package is frozen the moment it becomes
/// visible.
#pragma once

#include "dd/package.hpp"
#include "support/mutex.hpp"

#include <cstddef>
#include <cstdint>
#include <memory>

namespace veriqc::dd {

/// Registry of immutable per-shape gate-DD snapshot packages. Thread-safe:
/// any number of job threads may acquire/publish concurrently.
class SharedGateCache {
public:
  /// Sizing knob for snapshot packages (entries retained per shape).
  explicit SharedGateCache(std::size_t maxEntriesPerShape = 4096);

  SharedGateCache(const SharedGateCache&) = delete;
  SharedGateCache& operator=(const SharedGateCache&) = delete;

  /// Current snapshot for the shape, or null when nothing has been published
  /// for it yet. The returned package is immutable; hold the shared_ptr for
  /// as long as any adopting Package lives.
  [[nodiscard]] std::shared_ptr<const Package>
  acquire(std::size_t nqubits, double tolerance);

  /// Merge the donor's gate cache into the shape's snapshot: builds a fresh
  /// package seeded from the current snapshot (if any) plus the donor's
  /// entries, then atomically installs it as the new epoch. Readers of the
  /// previous epoch are unaffected. Returns the new epoch number, or 0 when
  /// the donor had nothing new to contribute (the current epoch remains).
  std::uint64_t publish(const Package& donor);

  /// Epoch (publish count) of a shape; 0 before the first publish.
  [[nodiscard]] std::uint64_t epoch(std::size_t nqubits,
                                    double tolerance) const;

  /// Drop all snapshots. In-flight leases stay valid through their
  /// shared_ptrs; subsequent acquire() calls start cold.
  void retireAll();

  /// Total gate DDs cached across all live shapes.
  [[nodiscard]] std::size_t totalEntries() const;

private:
  struct Shape {
    std::size_t nqubits = 0;
    std::int64_t toleranceBits = 0; ///< bit pattern: exact-match semantics

    bool operator==(const Shape&) const = default;
  };
  struct ShapeHash {
    std::size_t operator()(const Shape& s) const noexcept;
  };
  struct Entry {
    std::shared_ptr<const Package> snapshot;
    std::uint64_t epoch = 0;
  };

  static Shape shapeOf(std::size_t nqubits, double tolerance) noexcept;

  mutable support::Mutex mutex_;
  std::unordered_map<Shape, Entry, ShapeHash> shapes_ VERIQC_GUARDED_BY(mutex_);
  std::size_t maxEntriesPerShape_; ///< ctor-set, immutable afterwards
};

} // namespace veriqc::dd
