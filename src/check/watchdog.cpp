#include "check/watchdog.hpp"

#include <algorithm>

namespace veriqc::check {

SoftWatchdog::SoftWatchdog(const std::size_t slots,
                           const std::chrono::milliseconds budget,
                           std::function<void(std::size_t)> onTrip)
    : budget_(budget), onTrip_(std::move(onTrip)) {
  slots_.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
  monitor_ = std::thread([this] { monitorLoop(); });
}

SoftWatchdog::~SoftWatchdog() {
  {
    const support::LockGuard lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  monitor_.join();
}

void SoftWatchdog::beginSlot(const std::size_t slot) noexcept {
  auto& s = *slots_[slot];
  // Seed the heartbeat before flipping active: the monitor must never see
  // an active slot with a stale (previous attempt's) timestamp.
  s.lastBeatNs.store(nowNs(), std::memory_order_relaxed);
  s.active.store(true, std::memory_order_release);
}

void SoftWatchdog::endSlot(const std::size_t slot) noexcept {
  slots_[slot]->active.store(false, std::memory_order_release);
}

void SoftWatchdog::beat(const std::size_t slot) noexcept {
  slots_[slot]->lastBeatNs.store(nowNs(), std::memory_order_relaxed);
}

bool SoftWatchdog::tripped(const std::size_t slot) const noexcept {
  return slots_[slot]->tripped.load(std::memory_order_acquire);
}

void SoftWatchdog::monitorLoop() {
  // Poll at a quarter of the budget: a stall is detected within 1.25x the
  // configured silence, tight enough for a soft guarantee.
  const auto period = std::max<std::chrono::milliseconds>(
      std::chrono::milliseconds(1), budget_ / 4);
  const auto budgetNs =
      std::chrono::duration_cast<std::chrono::nanoseconds>(budget_).count();
  support::LockGuard lock(mutex_);
  while (!shutdown_) {
    wake_.wait_for(lock, period);
    if (shutdown_) {
      return;
    }
    const auto now = nowNs();
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      auto& s = *slots_[i];
      if (!s.active.load(std::memory_order_acquire) ||
          s.tripped.load(std::memory_order_acquire)) {
        continue;
      }
      if (now - s.lastBeatNs.load(std::memory_order_relaxed) > budgetNs) {
        s.tripped.store(true, std::memory_order_release);
        trips_.fetch_add(1, std::memory_order_acq_rel);
        if (onTrip_) {
          onTrip_(i);
        }
      }
    }
  }
}

} // namespace veriqc::check
