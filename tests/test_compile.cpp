#include "circuits/benchmarks.hpp"
#include "compile/architecture.hpp"
#include "compile/decompose.hpp"
#include "compile/mapper.hpp"
#include "sim/dense.hpp"

#include <gtest/gtest.h>

namespace veriqc {
namespace {

using compile::Architecture;

void expectSameUnitary(const QuantumCircuit& a, const QuantumCircuit& b,
                       const std::string& label, const double tol = 1e-9) {
  const auto [a2, b2] = alignCircuits(a, b);
  ASSERT_LE(a2.numQubits(), 12U) << label;
  const auto ua = sim::circuitUnitary(a2);
  const auto ub = sim::circuitUnitary(b2);
  EXPECT_TRUE(ua.equalsUpToGlobalPhase(ub, tol)) << label;
}

// --- decomposition -----------------------------------------------------------

TEST(DecomposeTest, McxAllSizesMatchDense) {
  for (std::size_t n = 3; n <= 6; ++n) {
    // k = n-1 controls: the no-free-wire case (square-root recursion).
    QuantumCircuit c(n);
    std::vector<Qubit> controls(n - 1);
    std::iota(controls.begin(), controls.end(), 0U);
    c.mcx(controls, static_cast<Qubit>(n - 1));
    const auto d = compile::decomposeToCnot(c);
    expectSameUnitary(c, d, "mcx k=" + std::to_string(n - 1));
  }
}

TEST(DecomposeTest, McxWithBorrowedQubitsMatchesDense) {
  // k = n-2: one borrowed wire available (the split construction).
  for (std::size_t n = 4; n <= 7; ++n) {
    QuantumCircuit c(n);
    std::vector<Qubit> controls(n - 2);
    std::iota(controls.begin(), controls.end(), 0U);
    c.mcx(controls, static_cast<Qubit>(n - 1));
    const auto d = compile::decomposeToCnot(c);
    expectSameUnitary(c, d, "borrowed mcx n=" + std::to_string(n));
  }
}

TEST(DecomposeTest, BorrowedQubitStateIsRestoredEvenWhenDirty) {
  // The split construction must work for any (dirty) borrow state: check the
  // full unitary, not just the |0> column — expectSameUnitary covers all
  // basis states including those where the borrowed wire is |1>.
  QuantumCircuit c(5);
  c.mcx({0, 1, 2}, 4); // wire 3 is the borrow
  const auto d = compile::decomposeToCnot(c);
  expectSameUnitary(c, d, "dirty borrow");
}

TEST(DecomposeTest, MczAndMcpMatchDense) {
  QuantumCircuit c(4);
  c.mcz({0, 1, 2}, 3);
  c.mcp({0, 1}, 3, 0.77);
  c.mcp({0, 1, 2}, 3, -PI / 8.0);
  const auto d = compile::decomposeToCnot(c);
  expectSameUnitary(c, d, "mcz/mcp", 1e-8);
}

TEST(DecomposeTest, ControlledSwapMatchesDense) {
  QuantumCircuit c(4);
  c.cswap(0, 1, 2);
  c.append(Operation(OpType::SWAP, {0, 3}, {1, 2})); // doubly controlled swap
  const auto d = compile::decomposeToCnot(c);
  expectSameUnitary(c, d, "cswap");
}

TEST(DecomposeTest, ControlledRotationsMatchDense) {
  QuantumCircuit c(4);
  c.crz(0, 1, 0.9);
  c.append(Operation(OpType::RX, {0}, {1}, {0.4}));
  c.append(Operation(OpType::RY, {2}, {3}, {-1.2}));
  c.append(Operation(OpType::RZ, {0, 1}, {2}, {0.35}));
  c.append(Operation(OpType::RY, {0, 3}, {1}, {0.81}));
  c.append(Operation(OpType::H, {0, 1}, {3}));
  c.append(Operation(OpType::Y, {0, 2}, {1}));
  c.append(Operation(OpType::SX, {1, 2}, {0}));
  const auto d = compile::decomposeToCnot(c);
  expectSameUnitary(c, d, "controlled rotations", 1e-8);
}

TEST(DecomposeTest, ControlledU3MatchesDense) {
  QuantumCircuit c(3);
  c.append(Operation(OpType::U3, {0}, {1}, {1.1, 0.3, -0.7}));
  c.append(Operation(OpType::U2, {2}, {0}, {0.5, 0.25}));
  c.append(Operation(OpType::U3, {0, 2}, {1}, {0.9, -0.2, 0.4}));
  const auto d = compile::decomposeToCnot(c);
  expectSameUnitary(c, d, "cu3", 1e-8);
}

TEST(DecomposeTest, CnotTargetContainsOnlyCnotAndSingleQubit) {
  const auto d = compile::decomposeToCnot(circuits::grover(4, 7));
  for (const auto& op : d.ops()) {
    if (op.isNonUnitary()) {
      continue;
    }
    if (op.controls.empty()) {
      EXPECT_TRUE(isSingleTargetType(op.type)) << op.toString();
    } else {
      EXPECT_EQ(op.controls.size(), 1U) << op.toString();
      EXPECT_EQ(op.type, OpType::X) << op.toString();
    }
  }
}

TEST(DecomposeTest, ZXTargetKeepsAtMostOneControl) {
  const auto d = compile::decomposeForZX(circuits::quantumWalk(3, 1));
  for (const auto& op : d.ops()) {
    EXPECT_LE(op.controls.size(), 1U) << op.toString();
    if (op.type == OpType::SWAP) {
      EXPECT_TRUE(op.controls.empty());
    }
  }
  expectSameUnitary(circuits::quantumWalk(3, 1), d, "zx walk");
}

TEST(DecomposeTest, BenchmarksSurviveDecomposition) {
  const std::vector<QuantumCircuit> cases = {
      circuits::grover(3, 5), circuits::quantumWalk(2, 2),
      circuits::constantAdder(4, 7), circuits::urfLike(4, 10, 3),
      circuits::mixedReversible(4, 12, 9)};
  for (const auto& c : cases) {
    expectSameUnitary(c, compile::decomposeToCnot(c), c.name(), 1e-8);
    expectSameUnitary(c, compile::decomposeForZX(c), c.name() + "_zx", 1e-8);
  }
}

// --- architectures --------------------------------------------------------------

TEST(ArchitectureTest, LinearDistances) {
  const auto arch = Architecture::linear(5);
  EXPECT_TRUE(arch.isConnected());
  EXPECT_TRUE(arch.adjacent(1, 2));
  EXPECT_FALSE(arch.adjacent(0, 2));
  EXPECT_EQ(arch.distance(0, 4), 4U);
  const auto path = arch.shortestPath(0, 3);
  EXPECT_EQ(path.size(), 4U);
  EXPECT_EQ(path.front(), 0U);
  EXPECT_EQ(path.back(), 3U);
}

TEST(ArchitectureTest, RingWrapsAround) {
  const auto arch = Architecture::ring(6);
  EXPECT_EQ(arch.distance(0, 5), 1U);
  EXPECT_EQ(arch.distance(0, 3), 3U);
}

TEST(ArchitectureTest, GridDistances) {
  const auto arch = Architecture::grid(3, 4);
  EXPECT_EQ(arch.numQubits(), 12U);
  EXPECT_EQ(arch.distance(0, 11), 5U); // manhattan distance
}

TEST(ArchitectureTest, ManhattanLikeIs65QubitHeavyHex) {
  const auto arch = Architecture::ibmManhattanLike();
  EXPECT_EQ(arch.numQubits(), 65U);
  EXPECT_TRUE(arch.isConnected());
  EXPECT_EQ(arch.edges().size(), 72U);
  // Heavy-hex: degree at most 3.
  for (Qubit q = 0; q < 65; ++q) {
    EXPECT_LE(arch.neighbors(q).size(), 3U) << "qubit " << q;
    EXPECT_GE(arch.neighbors(q).size(), 1U) << "qubit " << q;
  }
}

TEST(ArchitectureTest, RejectsInvalidEdges) {
  EXPECT_THROW(Architecture("bad", 2, {{0, 5}}), std::invalid_argument);
  EXPECT_THROW(Architecture("bad", 2, {{1, 1}}), std::invalid_argument);
}

// --- mapping ------------------------------------------------------------------

void expectRespectsCoupling(const QuantumCircuit& mapped,
                            const Architecture& arch) {
  for (const auto& op : mapped.ops()) {
    if (op.isNonUnitary()) {
      continue;
    }
    const auto used = op.usedQubits();
    if (used.size() == 2) {
      EXPECT_TRUE(arch.adjacent(used[0], used[1])) << op.toString();
    } else {
      EXPECT_LE(used.size(), 2U) << op.toString();
    }
  }
}

TEST(MapperTest, GhzLinear) {
  // The paper's Fig. 2 scenario: GHZ preparation on a linear architecture.
  const auto arch = Architecture::linear(5);
  const auto compiled = compile::compileForArchitecture(circuits::ghz(3), arch);
  expectRespectsCoupling(compiled, arch);
  compiled.validate();
  expectSameUnitary(circuits::ghz(3), compiled, "ghz linear");
}

TEST(MapperTest, MappedCircuitsPreserveSemantics) {
  const auto arch = Architecture::grid(2, 3);
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto c = circuits::randomCircuit(4, 25, seed);
    const auto compiled = compile::compileForArchitecture(c, arch);
    expectRespectsCoupling(compiled, arch);
    expectSameUnitary(c, compiled, "seed " + std::to_string(seed), 1e-8);
  }
}

TEST(MapperTest, TrivialPlacementKeepsOrder) {
  compile::MapperOptions options;
  options.placement = compile::MapperOptions::Placement::Trivial;
  const auto arch = Architecture::linear(4);
  QuantumCircuit c(3);
  c.h(2);
  const auto mapped =
      compile::mapCircuit(compile::decomposeToCnot(c), arch, options);
  EXPECT_EQ(mapped.ops()[0].targets[0], 2U);
  EXPECT_TRUE(mapped.initialLayout().isIdentity());
}

TEST(MapperTest, RoutingInsertsSwaps) {
  compile::MapperOptions options;
  options.placement = compile::MapperOptions::Placement::Trivial;
  const auto arch = Architecture::linear(4);
  QuantumCircuit c(4);
  c.cx(0, 3);
  const auto mapped = compile::mapCircuit(c, arch, options);
  std::size_t swaps = 0;
  for (const auto& op : mapped.ops()) {
    if (op.type == OpType::SWAP) {
      ++swaps;
    }
  }
  EXPECT_EQ(swaps, 2U);
  EXPECT_FALSE(mapped.outputPermutation().isIdentity());
  expectSameUnitary(c, mapped, "routing");
}

TEST(MapperTest, RejectsOversizedCircuits) {
  const auto arch = Architecture::linear(2);
  EXPECT_THROW((void)compile::mapCircuit(circuits::ghz(3), arch),
               CircuitError);
}

TEST(MapperTest, RejectsUndcomposedInput) {
  const auto arch = Architecture::linear(4);
  QuantumCircuit c(3);
  c.ccx(0, 1, 2);
  EXPECT_THROW((void)compile::mapCircuit(c, arch), CircuitError);
}

class MapperArchitectureTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {
public:
  static Architecture makeArch(const int kind) {
    switch (kind) {
    case 0:
      return Architecture::linear(6);
    case 1:
      return Architecture::ring(6);
    case 2:
      return Architecture::grid(2, 3);
    default:
      return Architecture::fullyConnected(6);
    }
  }
};

TEST_P(MapperArchitectureTest, RandomCircuitsMapCorrectlyEverywhere) {
  const auto [kind, seed] = GetParam();
  const auto arch = makeArch(kind);
  const auto c = circuits::randomCircuit(4, 18, seed);
  const auto compiled = compile::compileForArchitecture(c, arch);
  expectRespectsCoupling(compiled, arch);
  expectSameUnitary(c, compiled,
                    arch.name() + " seed " + std::to_string(seed), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    ArchitecturesTimesSeeds, MapperArchitectureTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                                         std::uint64_t{3})));

TEST(MapperTest, CompilationToManhattanProducesLargerCircuits) {
  // Sec. 6.1: compiled circuits are considerably larger than the originals
  // (|G'| > |G| in Table 1).
  const auto arch = Architecture::ibmManhattanLike();
  const auto original = circuits::ghz(8);
  const auto compiled = compile::compileForArchitecture(original, arch);
  expectRespectsCoupling(compiled, arch);
  EXPECT_GT(compiled.gateCount(), original.gateCount());
  EXPECT_EQ(compiled.numQubits(), 65U);
}

} // namespace
} // namespace veriqc
