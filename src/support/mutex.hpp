/// \file mutex.hpp
/// \brief Annotated locking primitives for compile-time concurrency
///        contracts.
///
/// `Mutex` wraps std::mutex as a Clang Thread Safety Analysis *capability*;
/// `LockGuard` is the matching scoped capability — RAII like
/// std::scoped_lock, but relockable (explicit lock()/unlock()) so
/// unlock-early paths and condition-variable waits stay inside the analysed
/// contract. `CondVar` is std::condition_variable_any, the only standard
/// condition variable that accepts a custom BasicLockable: waits take the
/// LockGuard directly, and from the analysis' point of view the capability is
/// held across the wait — which is exactly the invariant wait() guarantees at
/// return.
///
/// Predicate waits are deliberately not wrapped: a predicate lambda is a
/// separate function to the analysis and cannot carry a REQUIRES annotation,
/// so callers write the explicit `while (!pred) cv.wait(lock);` loop — the
/// guarded reads then sit in the annotated caller where the analysis can see
/// the lock is held.
#pragma once

#include "support/thread_annotations.hpp"

#include <condition_variable>
#include <mutex>

namespace veriqc::support {

/// std::mutex as a named capability. Zero overhead: every member is an
/// inline forward.
class VERIQC_CAPABILITY("mutex") Mutex {
public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() VERIQC_ACQUIRE() { mutex_.lock(); }
  void unlock() VERIQC_RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() VERIQC_TRY_ACQUIRE(true) {
    return mutex_.try_lock();
  }

private:
  std::mutex mutex_;
};

/// Scoped capability over Mutex: acquires at construction, releases at
/// destruction, with explicit relock support for unlock-early paths
/// (admission rejections) and CondVar waits.
class VERIQC_SCOPED_CAPABILITY LockGuard {
public:
  explicit LockGuard(Mutex& mutex) VERIQC_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;
  ~LockGuard() VERIQC_RELEASE() {
    if (held_) {
      mutex_.unlock();
    }
  }

  /// BasicLockable surface — also what CondVar::wait drives internally.
  void lock() VERIQC_ACQUIRE() {
    mutex_.lock();
    held_ = true;
  }
  void unlock() VERIQC_RELEASE() {
    mutex_.unlock();
    held_ = false;
  }

private:
  Mutex& mutex_;
  bool held_ = true;
};

/// Condition variable compatible with the annotated guard. wait()/wait_for
/// release and reacquire through LockGuard's BasicLockable surface (inside
/// an unannotated system header, invisible to the analysis — the capability
/// is treated as held across the wait, matching the post-wait invariant).
using CondVar = std::condition_variable_any;

} // namespace veriqc::support
