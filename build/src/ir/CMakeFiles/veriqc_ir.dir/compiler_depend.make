# Empty compiler generated dependencies file for veriqc_ir.
# This may be replaced when dependencies are built.
