/// \file benchmarks.hpp
/// \brief Generators for the benchmark circuits of the case study (Table 1)
///        and for randomized property testing.
///
/// The RevLib reversible benchmarks used in the paper (urf2, plus63mod4096,
/// example2) are not redistributable here; `urfLike`, `constantAdder` and
/// `mixedReversible` generate synthetic circuits of the same structural class
/// (Clifford+T-exact multi-controlled Toffoli networks). See DESIGN.md.
#pragma once

#include "ir/circuit.hpp"

#include <cstdint>
#include <random>
#include <utility>
#include <vector>

namespace veriqc::circuits {

/// GHZ state preparation (Fig. 1a of the paper): H on qubit 0 followed by a
/// CNOT fan-out.
[[nodiscard]] QuantumCircuit ghz(std::size_t nqubits);

/// Graph state preparation: H on every qubit, CZ per edge.
[[nodiscard]] QuantumCircuit graphState(std::size_t nqubits,
                                        const std::vector<std::pair<Qubit, Qubit>>& edges);

/// Random connected graph state: ring plus `extraChords` random chords.
[[nodiscard]] QuantumCircuit randomGraphState(std::size_t nqubits,
                                              std::size_t extraChords,
                                              std::uint64_t seed);

/// Quantum Fourier transform. When `withSwaps`, the final qubit reversal is
/// emitted as explicit SWAP gates; otherwise it is recorded in the circuit's
/// output permutation.
[[nodiscard]] QuantumCircuit qft(std::size_t nqubits, bool withSwaps = true);

/// Inverse QFT (same `withSwaps` convention).
[[nodiscard]] QuantumCircuit iqft(std::size_t nqubits, bool withSwaps = true);

/// Exact quantum phase estimation on `precision` counting qubits plus one
/// eigenstate qubit: estimates the phase theta = k / 2^precision of
/// U = P(2 pi theta), which is exactly representable, so the outcome is
/// deterministic. `k` is reduced modulo 2^precision.
[[nodiscard]] QuantumCircuit qpeExact(std::size_t precision, std::uint64_t k);

/// Grover search for the marked element `target` (reduced mod 2^n) with the
/// optimal number of iterations (or `iterations` if nonzero).
[[nodiscard]] QuantumCircuit grover(std::size_t nqubits, std::uint64_t target,
                                    std::size_t iterations = 0);

/// Discrete-time quantum random walk on a cycle with 2^positionQubits nodes:
/// one coin qubit, `steps` coined shift steps.
[[nodiscard]] QuantumCircuit quantumWalk(std::size_t positionQubits,
                                         std::size_t steps);

/// W state preparation via controlled-RY cascade.
[[nodiscard]] QuantumCircuit wState(std::size_t nqubits);

/// Cuccaro ripple-carry adder: computes b := a + b on two n-bit registers
/// with one carry-in and one carry-out qubit (2n + 2 qubits total).
[[nodiscard]] QuantumCircuit cuccaroAdder(std::size_t bits);

/// Constant adder: |x> -> |x + constant mod 2^bits> built from repeated
/// MCX increment cascades (plus63mod4096-style reversible benchmark).
[[nodiscard]] QuantumCircuit constantAdder(std::size_t bits,
                                           std::uint64_t constant);

/// Unstructured reversible function: a random cascade of `gates`
/// multi-controlled Toffolis with X-conjugated mixed-polarity controls
/// (urf-style reversible benchmark).
[[nodiscard]] QuantumCircuit urfLike(std::size_t nqubits, std::size_t gates,
                                     std::uint64_t seed);

/// Mixed reversible network of MCX/MCZ/CX/X gates (example2-style).
[[nodiscard]] QuantumCircuit mixedReversible(std::size_t nqubits,
                                             std::size_t gates,
                                             std::uint64_t seed);

/// Bernstein-Vazirani: recovers the hidden bit string `secret` with one
/// oracle query (phase-oracle formulation, no ancilla).
[[nodiscard]] QuantumCircuit bernsteinVazirani(std::size_t nqubits,
                                               std::uint64_t secret);

/// Deutsch-Jozsa with a balanced inner-product oracle given by `mask`
/// (mask == 0 gives the constant oracle).
[[nodiscard]] QuantumCircuit deutschJozsa(std::size_t nqubits,
                                          std::uint64_t mask);

/// Hidden-shift circuit for bent-function duality (Maiorana-McFarland style)
/// with the given shift; pairs of qubits interact via CZ.
[[nodiscard]] QuantumCircuit hiddenShift(std::size_t nqubits,
                                         std::uint64_t shift);

/// Random Clifford circuit over {H, S, CX} of the given depth.
[[nodiscard]] QuantumCircuit randomClifford(std::size_t nqubits,
                                            std::size_t depth,
                                            std::uint64_t seed);

/// Random Clifford+T circuit; `tFraction` in [0,1] controls the share of
/// T/Tdg gates.
[[nodiscard]] QuantumCircuit randomCliffordT(std::size_t nqubits,
                                             std::size_t depth,
                                             double tFraction,
                                             std::uint64_t seed);

/// Fully random circuit over the complete gate set (rotations with arbitrary
/// angles, controlled gates, SWAPs) for property testing.
[[nodiscard]] QuantumCircuit randomCircuit(std::size_t nqubits,
                                           std::size_t gates,
                                           std::uint64_t seed);

} // namespace veriqc::circuits
