#include "ir/circuit.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace veriqc {

QuantumCircuit::QuantumCircuit(const std::size_t nqubits, std::string name)
    : nqubits_(nqubits), name_(std::move(name)),
      initialLayout_(Permutation::identity(nqubits)),
      outputPermutation_(Permutation::identity(nqubits)) {}

void QuantumCircuit::append(Operation op) {
  op.validate(nqubits_);
  ops_.push_back(std::move(op));
}

std::size_t QuantumCircuit::gateCount() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(ops_.begin(), ops_.end(),
                    [](const Operation& op) { return !op.isNonUnitary(); }));
}

std::size_t QuantumCircuit::multiQubitGateCount() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(ops_.begin(), ops_.end(), [](const Operation& op) {
        return !op.isNonUnitary() && op.usedQubits().size() >= 2;
      }));
}

std::size_t QuantumCircuit::depth() const {
  std::vector<std::size_t> level(nqubits_, 0);
  for (const auto& op : ops_) {
    if (op.type == OpType::Barrier) {
      const auto sync = *std::max_element(level.begin(), level.end());
      std::fill(level.begin(), level.end(), sync);
      continue;
    }
    if (op.isNonUnitary()) {
      continue;
    }
    std::size_t d = 0;
    for (const auto q : op.usedQubits()) {
      d = std::max(d, level[q]);
    }
    for (const auto q : op.usedQubits()) {
      level[q] = d + 1;
    }
  }
  return level.empty() ? 0 : *std::max_element(level.begin(), level.end());
}

bool QuantumCircuit::wireIsIdle(const Qubit w) const noexcept {
  return std::none_of(ops_.begin(), ops_.end(), [w](const Operation& op) {
    return !op.isNonUnitary() && op.actsOn(w);
  });
}

QuantumCircuit QuantumCircuit::inverted() const {
  QuantumCircuit inv(nqubits_, name_.empty() ? "" : name_ + "_dg");
  inv.initialLayout_ = outputPermutation_;
  inv.outputPermutation_ = initialLayout_;
  inv.globalPhase_ = -globalPhase_;
  inv.ops_.reserve(ops_.size());
  for (auto it = ops_.rbegin(); it != ops_.rend(); ++it) {
    if (it->type == OpType::Measure) {
      continue; // measurements have no inverse; drop them
    }
    inv.ops_.push_back(it->inverse());
  }
  return inv;
}

QuantumCircuit QuantumCircuit::withExplicitPermutations() const {
  QuantumCircuit result(nqubits_, name_);
  result.globalPhase_ = globalPhase_;
  // Prefix realizing R(initialLayout): apply the transpositions in order.
  for (const auto& [a, b] : initialLayout_.transpositions()) {
    result.swap(a, b);
  }
  result.ops_.insert(result.ops_.end(), ops_.begin(), ops_.end());
  // Suffix realizing R(outputPermutation)^dagger: transpositions reversed.
  auto swaps = outputPermutation_.transpositions();
  std::reverse(swaps.begin(), swaps.end());
  for (const auto& [a, b] : swaps) {
    result.swap(a, b);
  }
  return result;
}

QuantumCircuit QuantumCircuit::padded(const std::size_t n) const {
  if (n < nqubits_) {
    throw CircuitError("QuantumCircuit::padded: cannot shrink");
  }
  QuantumCircuit result = *this;
  result.nqubits_ = n;
  result.initialLayout_.extend(n);
  result.outputPermutation_.extend(n);
  return result;
}

void QuantumCircuit::validate() const {
  if (initialLayout_.size() != nqubits_ ||
      outputPermutation_.size() != nqubits_) {
    throw CircuitError("QuantumCircuit: permutation size mismatch");
  }
  if (!initialLayout_.isValid() || !outputPermutation_.isValid()) {
    throw CircuitError("QuantumCircuit: invalid permutation");
  }
  for (const auto& op : ops_) {
    op.validate(nqubits_);
  }
}

std::string QuantumCircuit::toString() const {
  std::ostringstream os;
  os << "QuantumCircuit '" << name_ << "' (" << nqubits_ << " qubits, "
     << ops_.size() << " ops)\n";
  if (!initialLayout_.isIdentity()) {
    os << "  initial layout:     " << initialLayout_.toString() << "\n";
  }
  if (!outputPermutation_.isIdentity()) {
    os << "  output permutation: " << outputPermutation_.toString() << "\n";
  }
  for (const auto& op : ops_) {
    os << "  " << op.toString() << "\n";
  }
  return os.str();
}

namespace {
/// Logical qubits that are provably idle in `c`: their wire is untouched by
/// any unitary operation and carries the same logical qubit at input and
/// output.
std::set<Qubit> idleLogicalQubits(const QuantumCircuit& c) {
  std::set<Qubit> idle;
  for (Qubit w = 0; w < c.numQubits(); ++w) {
    if (c.wireIsIdle(w) &&
        c.outputPermutation()[w] == c.initialLayout()[w]) {
      idle.insert(c.initialLayout()[w]);
    }
  }
  return idle;
}

QuantumCircuit stripLogical(const QuantumCircuit& c,
                            const std::set<Qubit>& removable,
                            const std::map<Qubit, Qubit>& relabel) {
  // Keep every wire whose initial logical qubit is not removable.
  std::vector<Qubit> wireMap(c.numQubits(), 0);
  std::vector<Qubit> keptWires;
  for (Qubit w = 0; w < c.numQubits(); ++w) {
    if (!removable.contains(c.initialLayout()[w])) {
      wireMap[w] = static_cast<Qubit>(keptWires.size());
      keptWires.push_back(w);
    }
  }
  QuantumCircuit result(keptWires.size(), c.name());
  result.setGlobalPhase(c.globalPhase());
  std::vector<Qubit> layout(keptWires.size());
  std::vector<Qubit> outPerm(keptWires.size());
  for (std::size_t i = 0; i < keptWires.size(); ++i) {
    layout[i] = relabel.at(c.initialLayout()[keptWires[i]]);
    outPerm[i] = relabel.at(c.outputPermutation()[keptWires[i]]);
  }
  result.initialLayout() = Permutation{std::move(layout)};
  result.outputPermutation() = Permutation{std::move(outPerm)};
  for (const auto& op : c.ops()) {
    if (op.isNonUnitary()) {
      continue;
    }
    Operation mapped = op;
    for (auto& q : mapped.controls) {
      q = wireMap[q];
    }
    for (auto& q : mapped.targets) {
      q = wireMap[q];
    }
    result.append(std::move(mapped));
  }
  return result;
}
} // namespace

std::pair<QuantumCircuit, QuantumCircuit>
alignCircuits(const QuantumCircuit& c1, const QuantumCircuit& c2) {
  const auto n = std::max(c1.numQubits(), c2.numQubits());
  auto p1 = c1.padded(n);
  auto p2 = c2.padded(n);
  const auto idle1 = idleLogicalQubits(p1);
  const auto idle2 = idleLogicalQubits(p2);
  std::set<Qubit> removable;
  std::set_intersection(idle1.begin(), idle1.end(), idle2.begin(), idle2.end(),
                        std::inserter(removable, removable.begin()));
  if (removable.empty()) {
    return {std::move(p1), std::move(p2)};
  }
  std::map<Qubit, Qubit> relabel;
  Qubit next = 0;
  for (Qubit l = 0; l < n; ++l) {
    if (!removable.contains(l)) {
      relabel[l] = next++;
    }
  }
  return {stripLogical(p1, removable, relabel),
          stripLogical(p2, removable, relabel)};
}

} // namespace veriqc
