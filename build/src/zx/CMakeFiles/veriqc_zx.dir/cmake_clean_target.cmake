file(REMOVE_RECURSE
  "libveriqc_zx.a"
)
