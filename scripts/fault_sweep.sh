#!/usr/bin/env bash
# Deterministic fault-injection sweep under AddressSanitizer + UBSan with
# LEAK DETECTION ON (unlike check_sanitized.sh, which trades leak checking
# for speed). The sweep drives check_qasm through every injection point —
# count-based and probabilistic plans — and asserts the failure-containment
# contract: no crash, no leak, and never a wrong definitive verdict on a
# known-equivalent pair. It then runs the dedicated fault test suite under
# the same sanitizers.
#
# Exit-code contract per sweep case (inputs are equivalent by construction):
#   0 = equivalent            OK (fault absorbed or retried away)
#   2 = undecided             OK (engine degraded gracefully)
#   3 = clean error report    OK only for report-layer faults (the verdict
#                             was already printed; serialization failed)
#   1 = NOT equivalent        FAIL — an injected fault flipped the verdict
#   anything else (>=128, sanitizer aborts, ...) FAIL — a crash or a leak
#
# Usage: scripts/fault_sweep.sh [--quick]
#   --quick: only the count-based plans (skip the probabilistic seeds)
set -euo pipefail

cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "== build (asan-ubsan preset) =="
# The preset ships with examples off; the sweep drives check_qasm, so flip
# them on for this build tree (harmless for the plain sanitizer suite).
cmake --preset asan-ubsan -DVERIQC_BUILD_EXAMPLES=ON >/dev/null
cmake --build --preset asan-ubsan -j"$(nproc)" \
  --target check_qasm test_fault_injection >/dev/null

export ASAN_OPTIONS="abort_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export LSAN_OPTIONS="exitcode=23"

bin=build-asan/examples/check_qasm
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

# Three known-equivalent pairs, each sized to reach a different hot layer:
#   qft.qasm    4-qubit QFT — slab growth, GC, compute-table, ZX drain
#   ladder.qasm 3000 distinct-angle rz gates — grows the real table past its
#               4096 initial slots and rebuilds unique-table buckets
#   deep.qasm   6-qubit layered circuit — enough live ZX vertices for the
#               region prepass, enough DD nodes for bucket rebuilds
cat > "$workdir/qft.qasm" <<'EOF'
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
h q[0];
cu1(pi/2) q[1],q[0];
cu1(pi/4) q[2],q[0];
cu1(pi/8) q[3],q[0];
h q[1];
cu1(pi/2) q[2],q[1];
cu1(pi/4) q[3],q[1];
h q[2];
cu1(pi/2) q[3],q[2];
h q[3];
EOF

{
  printf 'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[1];\n'
  for i in $(seq 0 2999); do
    printf 'rz(0.1+0.001*%d) q[0];\n' "$i"
  done
} > "$workdir/ladder.qasm"

{
  printf 'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[6];\n'
  for i in $(seq 0 199); do
    printf 'rz(0.05+0.013*%d) q[%d];\n' "$i" "$((i % 6))"
    printf 'h q[%d];\n' "$(((i + 2) % 6))"
    printf 'cx q[%d],q[%d];\n' "$((i % 6))" "$(((i + 1) % 6))"
  done
} > "$workdir/deep.qasm"

# Each case: "<label>|<circuit>|<method>|<plan>|<allowed exits>|<fired point
# or ->".
# Every injection point appears at least once with its firing asserted from
# the run report; retries are enabled so the degradation ladder gets to
# convert engine failures back into verdicts. (check.report kills the report
# itself, so its firing is asserted by the fault test suite instead.)
cases=(
  "slab-grow|qft|dd|dd.slab_grow:after=5:times=2|0 2|dd.slab_grow"
  "unique-rebuild|deep|dd|dd.unique_rebuild:times=1|0 2|dd.unique_rebuild"
  "real-grow|ladder|dd|dd.real_grow:times=1|0 2|dd.real_grow"
  "compute-alloc|qft|dd|dd.compute_alloc:times=2|0 2|dd.compute_alloc"
  "gc|qft|dd|dd.gc:times=1:throw=resource_limit|0 2|dd.gc"
  "import|deep|dd|dd.import:times=2|0 2|dd.import"
  "zx-drain|qft|zx|zx.drain:times=1|0 2|zx.drain"
  "zx-region|deep|zx|zx.region_prepass:times=1|0 2|zx.region_prepass"
  "pool-task|qft|both|pool.task_start:times=2|0 2|pool.task_start"
  "report|qft|both|check.report:times=1|0 2 3|-"
  "multi-point|qft|dd|dd.slab_grow:after=10:times=1,dd.gc:times=1|0 2|dd.slab_grow"
)
if [[ $quick -eq 0 ]]; then
  for seed in 7 41 1337; do
    cases+=(
      "p-slab-s$seed|qft|dd|dd.slab_grow:p=0.01:seed=$seed|0 2|-"
      "p-gc-s$seed|qft|dd|dd.gc:p=0.05:seed=$seed:throw=resource_limit|0 2|-"
      "p-pool-s$seed|qft|both|pool.task_start:p=0.2:seed=$seed|0 2|-"
    )
  done
fi

fail=0
for case in "${cases[@]}"; do
  IFS='|' read -r label circuit method plan allowed firing <<< "$case"
  set +e
  VERIQC_FAULT="$plan" "$bin" "$workdir/$circuit.qasm" "$workdir/$circuit.qasm" \
    --method "$method" --retries 2 --watchdog-ms 30000 --sims 4 --timeout 60 \
    --threads 2 --zx-regions 2 --json "$workdir/$label.json" \
    > "$workdir/$label.log" 2>&1
  rc=$?
  set -e
  ok=0
  for code in $allowed; do
    [[ $rc -eq $code ]] && ok=1
  done
  if [[ $ok -eq 1 ]]; then
    echo "fault-sweep: $label rc=$rc OK"
  else
    echo "fault-sweep: $label rc=$rc FAIL (plan=$plan, allowed: $allowed)"
    sed 's/^/    /' "$workdir/$label.log"
    fail=1
  fi
  if [[ "$firing" != "-" ]]; then
    if ! grep -Eq "\"fault/$firing\.fired\": [1-9]" "$workdir/$label.json"; then
      echo "fault-sweep: $label never fired $firing FAIL"
      fail=1
    fi
  fi
  # A report that was written must still validate against the schema.
  if [[ -s "$workdir/$label.json" ]]; then
    if ! "$bin" --validate-report "$workdir/$label.json" >/dev/null; then
      echo "fault-sweep: $label produced an invalid report FAIL"
      fail=1
    fi
  fi
done

echo "== fault test suite (ASan+UBSan, leaks on) =="
if ! build-asan/tests/test_fault_injection >/dev/null; then
  echo "fault-sweep: test_fault_injection FAIL"
  fail=1
fi

if [[ $fail -ne 0 ]]; then
  echo "fault-sweep: FAILED"
  exit 1
fi

# One-line coverage summary: how many cases ran, how many distinct injection
# points had their firing asserted, and which mode produced the numbers.
points=$(printf '%s\n' "${cases[@]}" | cut -d'|' -f6 | grep -v '^-$' | sort -u | wc -l)
mode=full; [[ $quick -eq 1 ]] && mode=quick
echo "fault-sweep: OK ($mode mode: ${#cases[@]} cases, $points injection points fired)"
