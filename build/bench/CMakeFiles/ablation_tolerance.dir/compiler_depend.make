# Empty compiler generated dependencies file for ablation_tolerance.
# This may be replaced when dependencies are built.
