file(REMOVE_RECURSE
  "CMakeFiles/veriqc_qasm.dir/lexer.cpp.o"
  "CMakeFiles/veriqc_qasm.dir/lexer.cpp.o.d"
  "CMakeFiles/veriqc_qasm.dir/parser.cpp.o"
  "CMakeFiles/veriqc_qasm.dir/parser.cpp.o.d"
  "CMakeFiles/veriqc_qasm.dir/revlib.cpp.o"
  "CMakeFiles/veriqc_qasm.dir/revlib.cpp.o.d"
  "CMakeFiles/veriqc_qasm.dir/writer.cpp.o"
  "CMakeFiles/veriqc_qasm.dir/writer.cpp.o.d"
  "libveriqc_qasm.a"
  "libveriqc_qasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veriqc_qasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
