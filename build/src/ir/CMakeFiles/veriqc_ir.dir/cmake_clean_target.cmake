file(REMOVE_RECURSE
  "libveriqc_ir.a"
)
