# Empty compiler generated dependencies file for test_revlib.
# This may be replaced when dependencies are built.
