/// \file circuit.hpp
/// \brief The quantum-circuit intermediate representation.
#pragma once

#include "ir/operation.hpp"
#include "ir/permutation.hpp"
#include "ir/types.hpp"

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

namespace veriqc {

/// A quantum circuit: a number of wires, a gate list, and the two
/// permutations produced by compilation flows.
///
/// Wire/qubit semantics: operations act on *wires* 0..n-1. `initialLayout`
/// maps each wire to the *logical* qubit it holds at the start of the
/// circuit; `outputPermutation` maps each wire to the logical qubit it holds
/// at the end (i.e. the logical qubit measured when reading that wire). Both
/// default to the identity. The functionality of the circuit as an operator
/// on logical qubits is
///
///     U = R(outputPermutation)^dagger * (product of gates) * R(initialLayout)
///
/// where R(sigma) places logical qubit sigma(w) onto wire w.
class QuantumCircuit {
public:
  QuantumCircuit() = default;
  explicit QuantumCircuit(std::size_t nqubits, std::string name = "");

  [[nodiscard]] std::size_t numQubits() const noexcept { return nqubits_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void setName(std::string name) { name_ = std::move(name); }

  [[nodiscard]] const std::vector<Operation>& ops() const noexcept {
    return ops_;
  }
  [[nodiscard]] std::vector<Operation>& ops() noexcept { return ops_; }
  [[nodiscard]] std::size_t size() const noexcept { return ops_.size(); }
  [[nodiscard]] bool empty() const noexcept { return ops_.empty(); }

  [[nodiscard]] auto begin() const noexcept { return ops_.begin(); }
  [[nodiscard]] auto end() const noexcept { return ops_.end(); }

  Permutation& initialLayout() noexcept { return initialLayout_; }
  [[nodiscard]] const Permutation& initialLayout() const noexcept {
    return initialLayout_;
  }
  Permutation& outputPermutation() noexcept { return outputPermutation_; }
  [[nodiscard]] const Permutation& outputPermutation() const noexcept {
    return outputPermutation_;
  }

  [[nodiscard]] double globalPhase() const noexcept { return globalPhase_; }
  void setGlobalPhase(double phase) noexcept { globalPhase_ = phase; }
  void addGlobalPhase(double phase) noexcept { globalPhase_ += phase; }

  /// Append an operation (validated against the qubit count).
  void append(Operation op);

  // --- gate convenience API ---------------------------------------------
  void i(Qubit q) { append(Operation(OpType::I, {}, {q})); }
  void h(Qubit q) { append(Operation(OpType::H, {}, {q})); }
  void x(Qubit q) { append(Operation(OpType::X, {}, {q})); }
  void y(Qubit q) { append(Operation(OpType::Y, {}, {q})); }
  void z(Qubit q) { append(Operation(OpType::Z, {}, {q})); }
  void s(Qubit q) { append(Operation(OpType::S, {}, {q})); }
  void sdg(Qubit q) { append(Operation(OpType::Sdg, {}, {q})); }
  void t(Qubit q) { append(Operation(OpType::T, {}, {q})); }
  void tdg(Qubit q) { append(Operation(OpType::Tdg, {}, {q})); }
  void sx(Qubit q) { append(Operation(OpType::SX, {}, {q})); }
  void sxdg(Qubit q) { append(Operation(OpType::SXdg, {}, {q})); }
  void rx(Qubit q, double theta) { append(Operation(OpType::RX, {}, {q}, {theta})); }
  void ry(Qubit q, double theta) { append(Operation(OpType::RY, {}, {q}, {theta})); }
  void rz(Qubit q, double theta) { append(Operation(OpType::RZ, {}, {q}, {theta})); }
  void p(Qubit q, double theta) { append(Operation(OpType::P, {}, {q}, {theta})); }
  void u2(Qubit q, double phi, double lambda) {
    append(Operation(OpType::U2, {}, {q}, {phi, lambda}));
  }
  void u3(Qubit q, double theta, double phi, double lambda) {
    append(Operation(OpType::U3, {}, {q}, {theta, phi, lambda}));
  }
  void swap(Qubit a, Qubit b) { append(Operation(OpType::SWAP, {}, {a, b})); }
  void cx(Qubit control, Qubit target) {
    append(Operation(OpType::X, {control}, {target}));
  }
  void cy(Qubit control, Qubit target) {
    append(Operation(OpType::Y, {control}, {target}));
  }
  void cz(Qubit control, Qubit target) {
    append(Operation(OpType::Z, {control}, {target}));
  }
  void ch(Qubit control, Qubit target) {
    append(Operation(OpType::H, {control}, {target}));
  }
  void cp(Qubit control, Qubit target, double theta) {
    append(Operation(OpType::P, {control}, {target}, {theta}));
  }
  void crz(Qubit control, Qubit target, double theta) {
    append(Operation(OpType::RZ, {control}, {target}, {theta}));
  }
  void ccx(Qubit c1, Qubit c2, Qubit target) {
    append(Operation(OpType::X, {c1, c2}, {target}));
  }
  void mcx(std::vector<Qubit> controls, Qubit target) {
    append(Operation(OpType::X, std::move(controls), {target}));
  }
  void mcz(std::vector<Qubit> controls, Qubit target) {
    append(Operation(OpType::Z, std::move(controls), {target}));
  }
  void mcp(std::vector<Qubit> controls, Qubit target, double theta) {
    append(Operation(OpType::P, std::move(controls), {target}, {theta}));
  }
  void cswap(Qubit control, Qubit a, Qubit b) {
    append(Operation(OpType::SWAP, {control}, {a, b}));
  }
  void barrier() { append(Operation(OpType::Barrier, {}, {})); }

  // --- structural queries -------------------------------------------------
  /// Number of unitary gates (Barrier/Measure excluded).
  [[nodiscard]] std::size_t gateCount() const noexcept;
  /// Number of unitary gates acting on >= 2 qubits.
  [[nodiscard]] std::size_t multiQubitGateCount() const noexcept;
  /// Circuit depth over unitary gates (greedy as-soon-as-possible layering).
  [[nodiscard]] std::size_t depth() const;
  /// True if no operation acts on wire w.
  [[nodiscard]] bool wireIsIdle(Qubit w) const noexcept;

  // --- transformations ------------------------------------------------------
  /// The inverse circuit: gates reversed and inverted, layout and output
  /// permutation exchanged, global phase negated.
  [[nodiscard]] QuantumCircuit inverted() const;

  /// An equivalent circuit with identity layout/output permutation: the
  /// permutations are materialized as explicit SWAP networks at the circuit
  /// boundaries.
  [[nodiscard]] QuantumCircuit withExplicitPermutations() const;

  /// An equivalent circuit on `n >= numQubits()` wires; added wires carry
  /// fresh logical qubits (fixed points of both permutations).
  [[nodiscard]] QuantumCircuit padded(std::size_t n) const;

  /// Reverses the order of all operations (without inverting them).
  void reverseOps() { std::reverse(ops_.begin(), ops_.end()); }

  /// Full validation of all invariants.
  void validate() const;

  [[nodiscard]] std::string toString() const;

private:
  std::size_t nqubits_ = 0;
  std::string name_;
  std::vector<Operation> ops_;
  Permutation initialLayout_;
  Permutation outputPermutation_;
  double globalPhase_ = 0.0;
};

/// Align two circuits for equivalence checking over the same logical space:
/// pads both to the same width and removes every wire whose logical qubit is
/// idle in *both* circuits, compacting logical indices consistently.
/// \returns the aligned pair.
[[nodiscard]] std::pair<QuantumCircuit, QuantumCircuit>
alignCircuits(const QuantumCircuit& c1, const QuantumCircuit& c2);

} // namespace veriqc
