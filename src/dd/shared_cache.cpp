#include "dd/shared_cache.hpp"

#include <cstring>

namespace veriqc::dd {

SharedGateCache::SharedGateCache(const std::size_t maxEntriesPerShape)
    : maxEntriesPerShape_(std::max<std::size_t>(1, maxEntriesPerShape)) {}

std::size_t SharedGateCache::ShapeHash::operator()(
    const Shape& s) const noexcept {
  const std::size_t h1 = std::hash<std::size_t>{}(s.nqubits);
  const std::size_t h2 =
      std::hash<std::int64_t>{}(s.toleranceBits);
  return h1 ^ (h2 + 0x9E3779B97F4A7C15ULL + (h1 << 6U) + (h1 >> 2U));
}

SharedGateCache::Shape SharedGateCache::shapeOf(const std::size_t nqubits,
                                                const double tolerance) noexcept {
  Shape s;
  s.nqubits = nqubits;
  // Exact bit-pattern match: two "equal" tolerances that differ in bits
  // would quantize keys differently, so they must not share a snapshot.
  std::memcpy(&s.toleranceBits, &tolerance, sizeof(s.toleranceBits));
  return s;
}

std::shared_ptr<const Package>
SharedGateCache::acquire(const std::size_t nqubits, const double tolerance) {
  const support::LockGuard lock(mutex_);
  const auto it = shapes_.find(shapeOf(nqubits, tolerance));
  if (it == shapes_.end()) {
    return nullptr;
  }
  return it->second.snapshot;
}

std::uint64_t SharedGateCache::publish(const Package& donor) {
  const std::size_t nqubits = donor.numQubits();
  const double tolerance = donor.realTable().tolerance();
  const support::LockGuard lock(mutex_);
  auto& entry = shapes_[shapeOf(nqubits, tolerance)];
  const std::size_t donated = donor.stats().gateCacheEntries;
  if (donated == 0) {
    return 0;
  }
  const std::size_t before =
      entry.snapshot ? entry.snapshot->stats().gateCacheEntries : 0;
  if (before >= maxEntriesPerShape_) {
    return 0; // the shape's snapshot is full; keep the stable epoch
  }
  // Copy-on-publish: the next epoch is a fresh package seeded from the
  // current snapshot plus the donor's entries. The current snapshot is never
  // touched — leases held by in-flight jobs stay frozen.
  PackageConfig config;
  config.gateCacheMaxEntries = maxEntriesPerShape_;
  auto next = std::make_shared<Package>(nqubits, tolerance, config);
  if (entry.snapshot) {
    entry.snapshot->exportGateCacheInto(*next);
  }
  donor.exportGateCacheInto(*next);
  if (next->stats().gateCacheEntries <= before) {
    return 0; // every donated key was already present
  }
  entry.snapshot = std::move(next);
  ++entry.epoch;
  return entry.epoch;
}

std::uint64_t SharedGateCache::epoch(const std::size_t nqubits,
                                     const double tolerance) const {
  const support::LockGuard lock(mutex_);
  const auto it = shapes_.find(shapeOf(nqubits, tolerance));
  return it == shapes_.end() ? 0 : it->second.epoch;
}

void SharedGateCache::retireAll() {
  const support::LockGuard lock(mutex_);
  shapes_.clear();
}

std::size_t SharedGateCache::totalEntries() const {
  const support::LockGuard lock(mutex_);
  std::size_t total = 0;
  for (const auto& [shape, entry] : shapes_) {
    if (entry.snapshot) {
      total += entry.snapshot->stats().gateCacheEntries;
    }
  }
  return total;
}

} // namespace veriqc::dd
