/// \file watchdog.hpp
/// \brief Soft liveness monitor for the manager's engine slots.
///
/// Every engine is expected to poll its stop token at a bounded cadence
/// (worklist throttles, per-gate checks). The manager threads a heartbeat
/// into each slot's token wrapper; this monitor watches the heartbeats and,
/// when an active slot goes silent for the configured budget, "trips" —
/// once per slot — by invoking the caller's callback (which raises the
/// shared cancel flag). A trip is soft: nothing is killed, the remaining
/// engines simply observe the flag at their next poll and wind down as
/// Cancelled (the trip happens before the deadline, so the stop-attribution
/// discipline never mislabels it Timeout). A run with a wedged engine thus
/// ends in bounded time instead of hanging until the wall-clock deadline.
#pragma once

#include "support/mutex.hpp"

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace veriqc::check {

class SoftWatchdog {
public:
  /// \param slots number of engine slots to monitor.
  /// \param budget maximum heartbeat silence tolerated for an active slot.
  /// \param onTrip invoked (from the monitor thread, at most once per slot)
  ///        with the silent slot's index. Must be safe to call concurrently
  ///        with engine execution — typically an atomic-flag store.
  SoftWatchdog(std::size_t slots, std::chrono::milliseconds budget,
               std::function<void(std::size_t)> onTrip);
  SoftWatchdog(const SoftWatchdog&) = delete;
  SoftWatchdog& operator=(const SoftWatchdog&) = delete;
  /// Stops the monitor thread; no trips fire after destruction begins.
  ~SoftWatchdog();

  /// Mark a slot as actively running and seed its heartbeat. Call
  /// immediately before handing control to the engine.
  void beginSlot(std::size_t slot) noexcept;
  /// Mark a slot as finished; its heartbeat is no longer monitored. A slot
  /// may begin again later (degraded retry attempts reuse their slot).
  void endSlot(std::size_t slot) noexcept;
  /// Record a heartbeat. Wired into the slot's stop-token wrapper, so every
  /// poll the engine performs refreshes it. Lock-free.
  void beat(std::size_t slot) noexcept;

  /// Total trips across all slots so far.
  [[nodiscard]] std::size_t trips() const noexcept {
    return trips_.load(std::memory_order_acquire);
  }
  /// Whether this slot has tripped (sticky across begin/end cycles).
  [[nodiscard]] bool tripped(std::size_t slot) const noexcept;

private:
  void monitorLoop();
  [[nodiscard]] static std::int64_t nowNs() noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  struct Slot {
    std::atomic<std::int64_t> lastBeatNs{0};
    std::atomic<bool> active{false};
    std::atomic<bool> tripped{false};
  };

  // unique_ptr keeps the atomics address-stable (Slot is not movable).
  // slots_/budget_/onTrip_ are ctor-set and immutable afterwards; Slot state
  // is all atomics — the only mutex-guarded datum is the shutdown flag the
  // monitor's timed wait rechecks.
  std::vector<std::unique_ptr<Slot>> slots_;
  std::chrono::milliseconds budget_;
  std::function<void(std::size_t)> onTrip_;
  std::atomic<std::size_t> trips_{0};

  support::Mutex mutex_;
  support::CondVar wake_;
  bool shutdown_ VERIQC_GUARDED_BY(mutex_) = false;
  std::thread monitor_;
};

} // namespace veriqc::check
