/// \file optimizer.hpp
/// \brief Circuit optimization passes.
///
/// These produce the "Optimized Circuits" use case of the paper (an original
/// circuit and an equivalent, structurally different optimized version), and
/// `reconstructSwaps` is the pass the DD-based checker uses to turn
/// compiler-emitted CNOT triples back into SWAPs it can absorb into its
/// permutation tracker (Sec. 4.1).
#pragma once

#include "ir/circuit.hpp"

#include <cstddef>

namespace veriqc::opt {

/// Remove identity gates, zero-angle rotations and (optionally) barriers.
std::size_t removeIdentities(QuantumCircuit& circuit,
                             bool dropBarriers = false);

/// Cancel gate pairs G, G^-1 that are adjacent on all their qubits.
std::size_t cancelInversePairs(QuantumCircuit& circuit);

/// Merge adjacent same-axis rotations (RZ/RX/RY/P with identical controls).
std::size_t mergeRotations(QuantumCircuit& circuit);

/// Fuse maximal runs of uncontrolled single-qubit gates into one U3 gate
/// (tracking the global phase exactly).
std::size_t fuseSingleQubitGates(QuantumCircuit& circuit);

/// Replace CX(a,b) CX(b,a) CX(a,b) triples (adjacent on both wires) by a
/// SWAP operation.
std::size_t reconstructSwaps(QuantumCircuit& circuit);

/// The full optimization pipeline, iterated to a fixpoint: identity removal,
/// inverse-pair cancellation, rotation merging and single-qubit fusion.
[[nodiscard]] QuantumCircuit optimize(const QuantumCircuit& circuit);

} // namespace veriqc::opt
