# Empty compiler generated dependencies file for test_zx_internals.
# This may be replaced when dependencies are built.
