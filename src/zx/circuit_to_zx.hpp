/// \file circuit_to_zx.hpp
/// \brief Interpret a quantum circuit as a ZX-diagram (Sec. 5 of the paper).
#pragma once

#include "ir/circuit.hpp"
#include "zx/diagram.hpp"

namespace veriqc::zx {

/// Convert a circuit to a ZX-diagram. Inputs/outputs are created in *logical*
/// qubit order; the circuit's initial layout, output permutation and bare
/// SWAP gates are realized as wire crossings (no extra spiders).
///
/// Supported gates: every single-qubit type, CX/CY/CZ/CH, controlled
/// rotations (CP/CRX/CRY/CRZ), and SWAP/CSWAP. Gates with two or more
/// controls must be decomposed first (mirroring the paper, where circuits are
/// compiled before being handed to the ZX tool).
///
/// Rotation angles are snapped to nearby small-denominator multiples of pi
/// within `phaseSnapTolerance` (see PiRational::fromRadians), so numerically
/// noisy but semantically Clifford+T circuits still simplify symbolically.
/// \throws CircuitError on unsupported operations.
[[nodiscard]] ZXDiagram circuitToZX(const QuantumCircuit& circuit,
                                    double phaseSnapTolerance = 1e-12);

} // namespace veriqc::zx
