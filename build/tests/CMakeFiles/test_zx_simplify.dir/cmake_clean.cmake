file(REMOVE_RECURSE
  "CMakeFiles/test_zx_simplify.dir/test_zx_simplify.cpp.o"
  "CMakeFiles/test_zx_simplify.dir/test_zx_simplify.cpp.o.d"
  "test_zx_simplify"
  "test_zx_simplify.pdb"
  "test_zx_simplify[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zx_simplify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
