#include "audit/dd_audit.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdint>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace veriqc::audit {

namespace {

std::string pointerString(const void* p) {
  std::ostringstream os;
  os << p;
  return os.str();
}

/// True when `x` is a value reals_.lookup can return: one of the fast-path
/// constants or an interned representative (`interned` sorted ascending).
bool isCanonicalReal(const double x, const std::vector<double>& interned) {
  return x == 0.0 || x == 1.0 || x == -1.0 ||
         std::binary_search(interned.begin(), interned.end(), x);
}

/// Audits one family of unique tables (matrix or vector): canonicity,
/// per-node normalization and the refcount recount against `roots`.
template <typename Node>
void auditTables(const char* kind,
                 const std::vector<dd::UniqueTable<Node>>& tables,
                 const std::vector<double>& interned, const double tolerance,
                 const std::vector<dd::Edge<Node>>& roots,
                 AuditReport& report) {
  // Normalization leaves the maximal child weight at 1 up to the rounding of
  // one complex division; anything beyond a generous multiple of the
  // interning tolerance is a real violation, not noise.
  const double magTolerance = 64.0 * tolerance;

  // Refcount recount. A node's stored count must equal the number of root
  // edges pinning it plus one per edge from each table-resident parent whose
  // own count is positive (incRef/decRef recurse into children exactly on
  // the parent's 0<->1 transitions).
  std::unordered_map<const Node*, std::uint64_t> expected;
  for (const auto& root : roots) {
    if (root.p != nullptr && root.p->v != dd::kTerminalLevel) {
      ++expected[root.p];
    }
  }

  for (std::size_t level = 0; level < tables.size(); ++level) {
    const auto& table = tables[level];
    const std::string where = std::string(kind) + " level " +
                              std::to_string(level);
    // Group by the full (unmasked) child hash so duplicates are found even
    // when one copy sits in the wrong bucket.
    std::unordered_map<std::size_t, std::vector<const Node*>> byHash;
    byHash.reserve(table.size());

    table.forEach([&](const Node* node, const std::size_t bucket) {
      const auto hash = dd::hashNodeChildren(*node);
      if ((hash & (table.bucketCount() - 1)) != bucket) {
        report.add(AuditSeverity::Error, "dd.unique.misplaced",
                   "node " + pointerString(node) + " found in bucket " +
                       std::to_string(bucket) + " but hashes to " +
                       std::to_string(hash & (table.bucketCount() - 1)),
                   where);
      }
      byHash[hash].push_back(node);

      if (node->v != static_cast<dd::Level>(level)) {
        report.add(AuditSeverity::Error, "dd.unique.level",
                   "node " + pointerString(node) + " carries level " +
                       std::to_string(node->v),
                   where);
      }

      double maxNorm = 0.0;
      for (const auto& child : node->e) {
        if (child.p == nullptr) {
          report.add(AuditSeverity::Error, "dd.node.child",
                     "node " + pointerString(node) + " has a null child",
                     where);
          continue;
        }
        const bool zeroWeight =
            child.w == std::complex<double>{0.0, 0.0};
        if (zeroWeight && child.p->v != dd::kTerminalLevel) {
          report.add(AuditSeverity::Error, "dd.node.zero",
                     "zero-weight child of " + pointerString(node) +
                         " does not point at the terminal",
                     where);
        }
        if (!zeroWeight && child.p->v != dd::kTerminalLevel &&
            child.p->v >= static_cast<dd::Level>(level)) {
          report.add(AuditSeverity::Error, "dd.node.child",
                     "child of " + pointerString(node) + " sits at level " +
                         std::to_string(child.p->v) + " >= its parent",
                     where);
        }
        if (!isCanonicalReal(child.w.real(), interned) ||
            !isCanonicalReal(child.w.imag(), interned)) {
          report.add(AuditSeverity::Error, "dd.node.weight",
                     "child weight of " + pointerString(node) +
                         " is not an interned representative",
                     where);
        }
        maxNorm = std::max(maxNorm, std::abs(child.w));
      }
      if (std::abs(maxNorm - 1.0) > magTolerance) {
        report.add(AuditSeverity::Error, "dd.node.normalization",
                   "maximal child-weight magnitude of " +
                       pointerString(node) + " is " +
                       std::to_string(maxNorm) + ", expected 1",
                   where);
      }

      if (node->ref > 0) {
        for (const auto& child : node->e) {
          if (child.p != nullptr && child.p->v != dd::kTerminalLevel) {
            ++expected[child.p];
          }
        }
      }
    });

    for (const auto& [hash, nodes] : byHash) {
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        for (std::size_t j = i + 1; j < nodes.size(); ++j) {
          if (dd::sameChildren(*nodes[i], *nodes[j])) {
            report.add(AuditSeverity::Error, "dd.unique.duplicate",
                       "nodes " + pointerString(nodes[i]) + " and " +
                           pointerString(nodes[j]) +
                           " have identical children",
                       where);
          }
        }
      }
    }
  }

  for (std::size_t level = 0; level < tables.size(); ++level) {
    const std::string where = std::string(kind) + " level " +
                              std::to_string(level);
    tables[level].forEach([&](const Node* node, std::size_t /*bucket*/) {
      const auto it = expected.find(node);
      const std::uint64_t want = it == expected.end() ? 0 : it->second;
      if (want != node->ref) {
        report.add(AuditSeverity::Error, "dd.ref.mismatch",
                   "node " + pointerString(node) + " stores refcount " +
                       std::to_string(node->ref) + ", recount gives " +
                       std::to_string(want),
                   where);
      }
    });
  }
}

} // namespace

AuditReport auditRealTable(const dd::RealTable& reals) {
  AuditReport report;
  std::vector<std::pair<double, std::int64_t>> entries;
  reals.forEachEntry([&](const std::int64_t key, const double value) {
    entries.emplace_back(value, key);
  });
  for (const auto& [value, key] : entries) {
    if (key != reals.binKey(value)) {
      report.add(AuditSeverity::Error, "dd.reals.binning",
                 "representative " + std::to_string(value) +
                     " filed under bin " + std::to_string(key) +
                     ", its value bins to " +
                     std::to_string(reals.binKey(value)),
                 "real table");
    }
  }
  std::sort(entries.begin(), entries.end());
  for (std::size_t i = 1; i < entries.size(); ++i) {
    const double prev = entries[i - 1].first;
    const double cur = entries[i].first;
    if (cur - prev < reals.tolerance()) {
      report.add(AuditSeverity::Error, "dd.reals.collision",
                 "representatives " + std::to_string(prev) + " and " +
                     std::to_string(cur) + " are within tolerance",
                 "real table");
    }
  }
  return report;
}

AuditReport auditPackage(const dd::Package& package,
                         const std::span<const dd::mEdge> matrixRoots,
                         const std::span<const dd::vEdge> vectorRoots) {
  AuditReport report = auditRealTable(package.realTable());

  std::vector<double> interned;
  interned.reserve(package.realTable().size());
  package.realTable().forEachEntry(
      [&](std::int64_t /*key*/, const double value) {
        interned.push_back(value);
      });
  std::sort(interned.begin(), interned.end());

  auto mRoots = package.internalMatrixRoots();
  mRoots.insert(mRoots.end(), matrixRoots.begin(), matrixRoots.end());
  auditTables("matrix", package.matrixTables(), interned,
              package.tolerance(), mRoots, report);

  const std::vector<dd::vEdge> vRoots(vectorRoots.begin(), vectorRoots.end());
  auditTables("vector", package.vectorTables(), interned,
              package.tolerance(), vRoots, report);

  // Cache hygiene: every node referenced by a live compute-table entry must
  // still be table-resident (or the terminal). Each stale pointer is
  // reported once.
  std::unordered_set<const void*> staleSeen;
  package.visitLiveCacheNodes(
      [&](const dd::mNode* node) {
        if (!package.containsMatrixNode(node) &&
            staleSeen.insert(node).second) {
          report.add(AuditSeverity::Error, "dd.cache.stale",
                     "live compute-table entry references dead matrix node " +
                         pointerString(node),
                     "compute tables");
        }
      },
      [&](const dd::vNode* node) {
        if (!package.containsVectorNode(node) &&
            staleSeen.insert(node).second) {
          report.add(AuditSeverity::Error, "dd.cache.stale",
                     "live compute-table entry references dead vector node " +
                         pointerString(node),
                     "compute tables");
        }
      });

  return report;
}

} // namespace veriqc::audit
