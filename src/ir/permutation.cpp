#include "ir/permutation.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace veriqc {

Permutation Permutation::identity(const std::size_t n) {
  std::vector<Qubit> map(n);
  std::iota(map.begin(), map.end(), 0U);
  return Permutation{std::move(map)};
}

Permutation::Permutation(std::vector<Qubit> map) : map_(std::move(map)) {
  if (!isValid()) {
    throw CircuitError("Permutation: map is not a bijection on {0..n-1}");
  }
}

void Permutation::swapImages(const Qubit a, const Qubit b) {
  std::swap(map_.at(a), map_.at(b));
}

bool Permutation::isValid() const noexcept {
  std::vector<bool> seen(map_.size(), false);
  for (const auto image : map_) {
    if (image >= map_.size() || seen[image]) {
      return false;
    }
    seen[image] = true;
  }
  return true;
}

bool Permutation::isIdentity() const noexcept {
  for (Qubit i = 0; i < map_.size(); ++i) {
    if (map_[i] != i) {
      return false;
    }
  }
  return true;
}

Permutation Permutation::compose(const Permutation& other) const {
  if (size() != other.size()) {
    throw CircuitError("Permutation::compose: size mismatch");
  }
  std::vector<Qubit> result(size());
  for (Qubit i = 0; i < size(); ++i) {
    result[i] = map_[other.map_[i]];
  }
  return Permutation{std::move(result)};
}

Permutation Permutation::inverse() const {
  std::vector<Qubit> result(size());
  for (Qubit i = 0; i < size(); ++i) {
    result[map_[i]] = i;
  }
  return Permutation{std::move(result)};
}

void Permutation::extend(const std::size_t n) {
  for (std::size_t i = map_.size(); i < n; ++i) {
    map_.push_back(static_cast<Qubit>(i));
  }
}

std::vector<std::pair<Qubit, Qubit>> Permutation::transpositions() const {
  // Selection-sort style: repeatedly place the correct image at position i.
  std::vector<std::pair<Qubit, Qubit>> swaps;
  auto current = Permutation::identity(size());
  for (Qubit i = 0; i < size(); ++i) {
    if (current.map_[i] == map_[i]) {
      continue;
    }
    // Find position j > i currently holding the desired image.
    for (Qubit j = i + 1; j < size(); ++j) {
      if (current.map_[j] == map_[i]) {
        current.swapImages(i, j);
        swaps.emplace_back(i, j);
        break;
      }
    }
  }
  return swaps;
}

std::string Permutation::toString() const {
  std::ostringstream os;
  os << "[";
  for (Qubit i = 0; i < size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << i << "->" << map_[i];
  }
  os << "]";
  return os.str();
}

} // namespace veriqc
