# Empty compiler generated dependencies file for veriqc_check.
# This may be replaced when dependencies are built.
