file(REMOVE_RECURSE
  "CMakeFiles/veriqc_zx.dir/circuit_to_zx.cpp.o"
  "CMakeFiles/veriqc_zx.dir/circuit_to_zx.cpp.o.d"
  "CMakeFiles/veriqc_zx.dir/diagram.cpp.o"
  "CMakeFiles/veriqc_zx.dir/diagram.cpp.o.d"
  "CMakeFiles/veriqc_zx.dir/export.cpp.o"
  "CMakeFiles/veriqc_zx.dir/export.cpp.o.d"
  "CMakeFiles/veriqc_zx.dir/extract.cpp.o"
  "CMakeFiles/veriqc_zx.dir/extract.cpp.o.d"
  "CMakeFiles/veriqc_zx.dir/rational.cpp.o"
  "CMakeFiles/veriqc_zx.dir/rational.cpp.o.d"
  "CMakeFiles/veriqc_zx.dir/resynthesis.cpp.o"
  "CMakeFiles/veriqc_zx.dir/resynthesis.cpp.o.d"
  "CMakeFiles/veriqc_zx.dir/simplify.cpp.o"
  "CMakeFiles/veriqc_zx.dir/simplify.cpp.o.d"
  "CMakeFiles/veriqc_zx.dir/tensor.cpp.o"
  "CMakeFiles/veriqc_zx.dir/tensor.cpp.o.d"
  "libveriqc_zx.a"
  "libveriqc_zx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veriqc_zx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
