# Empty dependencies file for test_zx_conversion.
# This may be replaced when dependencies are built.
