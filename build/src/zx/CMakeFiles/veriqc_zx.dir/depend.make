# Empty dependencies file for veriqc_zx.
# This may be replaced when dependencies are built.
