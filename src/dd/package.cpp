#include "dd/package.hpp"

#include "fault/fault.hpp"

#include <algorithm>
#include <tuple>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <set>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace veriqc::dd {

Package::Package(const std::size_t nqubits, const double tolerance,
                 const PackageConfig& config)
    : nqubits_(nqubits), reals_(tolerance),
      multiplyTable_(config.computeTableEntries),
      multiplyVectorTable_(config.computeTableEntries),
      addTable_(config.computeTableEntries),
      addVectorTable_(config.computeTableEntries),
      conjTransTable_(config.unaryTableEntries),
      traceTable_(config.unaryTableEntries),
      innerProductTable_(config.computeTableEntries),
      gateCacheMaxEntries_(std::max<std::size_t>(1, config.gateCacheMaxEntries)),
      gcInitialThreshold_(config.gcInitialThreshold),
      gcThreshold_(config.gcInitialThreshold), maxNodes_(config.maxNodes),
      maxMemoryKB_(config.maxMemoryMB * 1024) {
  if (nqubits > kMaxLevels) {
    throw std::invalid_argument(
        "dd::Package: at most 255 qubits addressable by 32-bit node handles");
  }
  mSlabs_.reserve(nqubits);
  vSlabs_.reserve(nqubits);
  for (std::size_t q = 0; q < nqubits; ++q) {
    mSlabs_.emplace_back(static_cast<Level>(q));
    vSlabs_.emplace_back(static_cast<Level>(q));
  }
  idTable_.reserve(nqubits);
}

Package::~Package() = default;

mEdge Package::makeIdent() {
  if (nqubits_ == 0) {
    return oneMatrixScalar();
  }
  for (std::size_t k = idTable_.size(); k < nqubits_; ++k) {
    const mEdge below = (k == 0) ? oneMatrixScalar() : idTable_[k - 1];
    const auto node = makeMatrixNode(
        static_cast<Level>(k), {below, zeroMatrix(), zeroMatrix(), below});
    incRef(node); // identity chain is permanently alive
    idTable_.push_back(node);
  }
  return idTable_[nqubits_ - 1];
}

mEdge Package::makeMatrixNode(const Level v,
                              const std::array<mEdge, 4>& children) {
  std::array<mEdge, 4> e = children;
  // Canonicalize child weights: intern, route zeros to the terminal.
  for (auto& child : e) {
    child.w = reals_.lookup(child.w);
    if (child.w == std::complex<double>{0.0, 0.0}) {
      child = zeroMatrix();
    }
  }
  // Normalize by the child weight of largest magnitude (lowest index wins
  // ties) so that equal-up-to-scalar submatrices share one node.
  std::size_t maxIdx = 0;
  double maxMag = std::norm(e[0].w);
  for (std::size_t i = 1; i < 4; ++i) {
    const double mag = std::norm(e[i].w);
    if (mag > maxMag) {
      maxMag = mag;
      maxIdx = i;
    }
  }
  if (maxMag == 0.0) {
    return zeroMatrix();
  }
  const auto topWeight = e[maxIdx].w;
  // One reciprocal instead of a full complex division per child; the rounding
  // difference is absorbed by interning.
  const auto invTop = std::conj(topWeight) / std::norm(topWeight);
  NodeSlab<mEdge>::Children childIdx;
  NodeSlab<mEdge>::Weights childW;
  for (std::size_t i = 0; i < 4; ++i) {
    childIdx[i] = e[i].n;
    // The normalizing child's weight is exactly 1 by definition; dividing it
    // by itself would only reproduce that modulo rounding and interning.
    childW[i] = i == maxIdx ? std::complex<double>{1.0, 0.0}
                : e[i].isZero() ? e[i].w
                                : reals_.lookup(e[i].w * invTop);
  }
  const auto n = mSlabs_[static_cast<std::size_t>(v)].lookup(childIdx, childW);
  return {n, topWeight};
}

vEdge Package::makeVectorNode(const Level v,
                              const std::array<vEdge, 2>& children) {
  std::array<vEdge, 2> e = children;
  for (auto& child : e) {
    child.w = reals_.lookup(child.w);
    if (child.w == std::complex<double>{0.0, 0.0}) {
      child = zeroVectorEdge();
    }
  }
  std::size_t maxIdx = 0;
  double maxMag = std::norm(e[0].w);
  if (std::norm(e[1].w) > maxMag) {
    maxMag = std::norm(e[1].w);
    maxIdx = 1;
  }
  if (maxMag == 0.0) {
    return zeroVectorEdge();
  }
  const auto topWeight = e[maxIdx].w;
  const auto invTop = std::conj(topWeight) / std::norm(topWeight);
  NodeSlab<vEdge>::Children childIdx;
  NodeSlab<vEdge>::Weights childW;
  for (std::size_t i = 0; i < 2; ++i) {
    childIdx[i] = e[i].n;
    childW[i] = i == maxIdx ? std::complex<double>{1.0, 0.0}
                : e[i].isZero() ? e[i].w
                                : reals_.lookup(e[i].w * invTop);
  }
  const auto n = vSlabs_[static_cast<std::size_t>(v)].lookup(childIdx, childW);
  return {n, topWeight};
}

std::int64_t Package::quantize(const double value) const noexcept {
  const double scaled = value / reals_.tolerance();
  if (std::abs(scaled) < 9.0e18) {
    return static_cast<std::int64_t>(std::llround(scaled));
  }
  // Out of quantization range (absurdly large entry): key on the bit pattern.
  std::int64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

Package::GateKey& Package::gateKeySlot() {
  if (gateKeyDepth_ >= gateKeyScratch_.size()) {
    // First use of this nesting depth. The deque grows without relocating
    // shallower slots, so GateKey references held by outer cachedGateDD
    // frames stay valid.
    gateKeyScratch_.resize(gateKeyDepth_ + 1);
  }
  return gateKeyScratch_[gateKeyDepth_];
}

Package::GateKey& Package::makeGateKey(const GateMatrix& matrix,
                                       const std::span<const Qubit> controls,
                                       const Qubit target) {
  GateKey& key = gateKeySlot();
  key.kind = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    key.matrix[2 * i] = quantize(matrix[i].real());
    key.matrix[2 * i + 1] = quantize(matrix[i].imag());
  }
  key.controls.assign(controls.begin(), controls.end());
  std::sort(key.controls.begin(), key.controls.end());
  key.target = target;
  key.target2 = 0;
  return key;
}

template <typename Builder>
mEdge Package::cachedGateDD(GateKey& key, Builder&& build) {
  ++gateCacheStats_.lookups;
  if (const auto it = gateCache_.find(key); it != gateCache_.end()) {
    ++gateCacheStats_.hits;
    return it->second;
  }
  // `key` lives in this depth's scratch slot. The build runs one depth
  // deeper, so nested gate construction (e.g. buildSwapDD -> makeGateDD)
  // fills deeper slots and cannot clobber the key inserted below.
  ++gateKeyDepth_;
  mEdge result;
  try {
    if (warmGateSource_ != nullptr) {
      if (const auto warm = warmGateSource_->gateCache_.find(key);
          warm != warmGateSource_->gateCache_.end()) {
        // Prebuilt in the shared snapshot: import beats rebuilding because
        // the source diagram is already canonical and maximally shared.
        result = importMatrix(*warmGateSource_, warm->second);
        ++gateCacheWarmHits_;
      } else {
        result = build(key);
      }
    } else {
      result = build(key);
    }
    --gateKeyDepth_;
  } catch (...) {
    --gateKeyDepth_;
    throw;
  }
  if (gateCache_.size() >= gateCacheMaxEntries_) {
    clearGateCache();
  }
  // Referenced so the cached diagram survives garbage collection; released
  // again when the cache is flushed.
  incRef(result);
  gateCache_.emplace(key, result);
  ++gateCacheStats_.inserts;
  return result;
}

void Package::clearGateCache() {
  for (auto& [key, edge] : gateCache_) {
    decRef(edge);
  }
  gateCache_.clear();
  ++gateCacheStats_.invalidations;
}

mEdge Package::makeGateDD(const GateMatrix& matrix,
                          const std::span<const Qubit> controls,
                          const Qubit target) {
  if (target >= nqubits_) {
    throw std::out_of_range("makeGateDD: target out of range");
  }
  return cachedGateDD(makeGateKey(matrix, controls, target),
                      [this, &matrix](const GateKey& key) {
                        return buildGateDD(matrix, key.controls, key.target);
                      });
}

mEdge Package::buildGateDD(const GateMatrix& matrix,
                           const std::vector<Qubit>& sortedControls,
                           const Qubit target) {
  const auto& ctrls = sortedControls;
  const auto isControl = [&ctrls](const Level z) {
    return std::binary_search(ctrls.begin(), ctrls.end(),
                              static_cast<Qubit>(z));
  };
  std::ignore = makeIdent(); // ensure the identity chain for control levels
  const auto idBelow = [this](const Level z) -> mEdge {
    return (z <= 0) ? oneMatrixScalar() : idTable_[static_cast<std::size_t>(z) - 1];
  };

  // Blocks T_ij of the target level, built bottom-up (em[2i+j] = T_ij).
  std::array<mEdge, 4> em;
  for (std::size_t i = 0; i < 4; ++i) {
    em[i] = {kTerminalIndex, matrix[i]};
  }
  for (Level z = 0; z < static_cast<Level>(target); ++z) {
    for (std::size_t i = 0; i < 4; ++i) {
      if (isControl(z)) {
        const bool diagonal = (i == 0 || i == 3);
        em[i] = makeMatrixNode(
            z, {diagonal ? idBelow(z) : zeroMatrix(), zeroMatrix(),
                zeroMatrix(), em[i]});
      } else {
        em[i] = makeMatrixNode(z, {em[i], zeroMatrix(), zeroMatrix(), em[i]});
      }
    }
  }
  mEdge e = makeMatrixNode(static_cast<Level>(target), em);
  for (Level z = static_cast<Level>(target) + 1;
       z < static_cast<Level>(nqubits_); ++z) {
    if (isControl(z)) {
      e = makeMatrixNode(z, {idBelow(z), zeroMatrix(), zeroMatrix(), e});
    } else {
      e = makeMatrixNode(z, {e, zeroMatrix(), zeroMatrix(), e});
    }
  }
  return e;
}

mEdge Package::makeSwapDD(const Qubit a, const Qubit b,
                          const std::span<const Qubit> controls) {
  GateKey& key = gateKeySlot();
  key.kind = 1;
  key.matrix.fill(0); // the scratch may hold a previous matrix gate's entries
  key.controls.assign(controls.begin(), controls.end());
  std::sort(key.controls.begin(), key.controls.end());
  key.target = a;
  key.target2 = b;
  return cachedGateDD(key, [this, a, b](const GateKey& k) {
    return buildSwapDD(a, b, k.controls);
  });
}

mEdge Package::buildSwapDD(const Qubit a, const Qubit b,
                           const std::vector<Qubit>& controls) {
  const GateMatrix x = gateMatrix(OpType::X, {});
  // swap(a,b) = cx(b,a) . c{a, controls}x(b) . cx(b,a)
  const std::array<Qubit, 1> outerCtrl{b};
  const mEdge outer = makeGateDD(x, outerCtrl, a);
  std::vector<Qubit> middleCtrls(controls.begin(), controls.end());
  middleCtrls.push_back(a);
  const mEdge middle = makeGateDD(x, middleCtrls, b);
  return multiply(outer, multiply(middle, outer));
}

mEdge Package::makeOperationDD(const Operation& op, const Permutation& perm) {
  if (op.isNonUnitary() || op.type == OpType::I) {
    return makeIdent();
  }
  std::vector<Qubit> controls;
  controls.reserve(op.controls.size());
  for (const auto c : op.controls) {
    controls.push_back(perm[c]);
  }
  if (op.type == OpType::SWAP) {
    return makeSwapDD(perm[op.targets[0]], perm[op.targets[1]], controls);
  }
  if (!isSingleTargetType(op.type)) {
    throw CircuitError("makeOperationDD: unsupported operation " +
                       op.toString());
  }
  return makeGateDD(gateMatrix(op.type, op.params), controls,
                    perm[op.targets[0]]);
}

mEdge Package::makeOperationDD(const Operation& op) {
  return makeOperationDD(op, Permutation::identity(nqubits_));
}

vEdge Package::makeZeroState() {
  return makeBasisState(std::vector<bool>(nqubits_, false));
}

vEdge Package::makeBasisState(const std::vector<bool>& bits) {
  if (bits.size() != nqubits_) {
    throw std::invalid_argument("makeBasisState: wrong number of bits");
  }
  vEdge e{kTerminalIndex, {1.0, 0.0}};
  for (std::size_t q = 0; q < nqubits_; ++q) {
    if (bits[q]) {
      e = makeVectorNode(static_cast<Level>(q), {zeroVectorEdge(), e});
    } else {
      e = makeVectorNode(static_cast<Level>(q), {e, zeroVectorEdge()});
    }
  }
  return e;
}

mEdge Package::multiply(const mEdge& x, const mEdge& y) {
  if (x.isZero() || y.isZero()) {
    return zeroMatrix();
  }
  const auto w = x.w * y.w;
  auto e = multiplyMatrixNodes(x.n, y.n, static_cast<Level>(nqubits_) - 1);
  if (e.isZero()) {
    return zeroMatrix();
  }
  e.w = reals_.lookup(e.w * w);
  if (e.w == std::complex<double>{0.0, 0.0}) {
    return zeroMatrix();
  }
  return e;
}

mEdge Package::multiplyMatrixNodes(const NodeIndex x, const NodeIndex y,
                                   const Level var) {
  if (var == kTerminalLevel) {
    return oneMatrixScalar();
  }
  assert(levelOfIndex(x) == var && levelOfIndex(y) == var);
  // Identity absorption: gate DDs embed the canonical identity chain for
  // untouched qubits, so identity factors are recognised by handle compare
  // and the whole subtree multiplication collapses.
  if (static_cast<std::size_t>(var) < idTable_.size()) {
    const auto idn = idTable_[static_cast<std::size_t>(var)].n;
    if (x == idn) {
      return {y, {1.0, 0.0}};
    }
    if (y == idn) {
      return {x, {1.0, 0.0}};
    }
  }
  if (const auto* cached = multiplyTable_.lookup(x, y)) {
    return *cached;
  }
  // Stack copies of both child tuples: the recursion below allocates slab
  // slots, which may reallocate the backing vectors.
  const auto& slab = mSlabs_[static_cast<std::size_t>(var)];
  const auto xc = slab.children(slotOfIndex(x));
  const auto xw = slab.weights(slotOfIndex(x));
  const auto yc = slab.children(slotOfIndex(y));
  const auto yw = slab.weights(slotOfIndex(y));
  std::array<mEdge, 4> r;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      mEdge sum = zeroMatrix();
      for (std::size_t k = 0; k < 2; ++k) {
        const auto xi = 2 * i + k;
        const auto yi = 2 * k + j;
        if (xw[xi] == std::complex<double>{0.0, 0.0} ||
            yw[yi] == std::complex<double>{0.0, 0.0}) {
          continue;
        }
        auto term = multiplyMatrixNodes(xc[xi], yc[yi], var - 1);
        if (term.isZero()) {
          continue;
        }
        term.w = reals_.lookup(term.w * xw[xi] * yw[yi]);
        sum = sum.isZero() ? term : add(sum, term);
      }
      r[2 * i + j] = sum;
    }
  }
  const auto result = makeMatrixNode(var, r);
  multiplyTable_.insert(x, y, result);
  return result;
}

vEdge Package::multiply(const mEdge& m, const vEdge& v) {
  if (m.isZero() || v.isZero()) {
    return zeroVectorEdge();
  }
  const auto w = m.w * v.w;
  auto e = multiplyVectorNodes(m.n, v.n, static_cast<Level>(nqubits_) - 1);
  if (e.isZero()) {
    return zeroVectorEdge();
  }
  e.w = reals_.lookup(e.w * w);
  if (e.w == std::complex<double>{0.0, 0.0}) {
    return zeroVectorEdge();
  }
  return e;
}

vEdge Package::multiplyVectorNodes(const NodeIndex m, const NodeIndex v,
                                   const Level var) {
  if (var == kTerminalLevel) {
    return {kTerminalIndex, {1.0, 0.0}};
  }
  assert(levelOfIndex(m) == var && levelOfIndex(v) == var);
  // Identity absorption (see multiplyMatrixNodes).
  if (static_cast<std::size_t>(var) < idTable_.size() &&
      m == idTable_[static_cast<std::size_t>(var)].n) {
    return {v, {1.0, 0.0}};
  }
  if (const auto* cached = multiplyVectorTable_.lookup(m, v)) {
    return *cached;
  }
  const auto mc = mSlabs_[static_cast<std::size_t>(var)].children(slotOfIndex(m));
  const auto mw = mSlabs_[static_cast<std::size_t>(var)].weights(slotOfIndex(m));
  const auto vc = vSlabs_[static_cast<std::size_t>(var)].children(slotOfIndex(v));
  const auto vw = vSlabs_[static_cast<std::size_t>(var)].weights(slotOfIndex(v));
  std::array<vEdge, 2> r;
  for (std::size_t i = 0; i < 2; ++i) {
    vEdge sum = zeroVectorEdge();
    for (std::size_t k = 0; k < 2; ++k) {
      const auto mi = 2 * i + k;
      if (mw[mi] == std::complex<double>{0.0, 0.0} ||
          vw[k] == std::complex<double>{0.0, 0.0}) {
        continue;
      }
      auto term = multiplyVectorNodes(mc[mi], vc[k], var - 1);
      if (term.isZero()) {
        continue;
      }
      term.w = reals_.lookup(term.w * mw[mi] * vw[k]);
      sum = sum.isZero() ? term : add(sum, term);
    }
    r[i] = sum;
  }
  const auto result = makeVectorNode(var, r);
  multiplyVectorTable_.insert(m, v, result);
  return result;
}

mEdge Package::add(const mEdge& x, const mEdge& y) {
  if (x.isZero()) {
    return y;
  }
  if (y.isZero()) {
    return x;
  }
  if (x.isTerminal() && y.isTerminal()) {
    const auto w = reals_.lookup(x.w + y.w);
    if (w == std::complex<double>{0.0, 0.0}) {
      return zeroMatrix();
    }
    return {kTerminalIndex, w};
  }
  if (const auto* cached = addTable_.lookup(x, y)) {
    return *cached;
  }
  assert(levelOfIndex(x.n) == levelOfIndex(y.n));
  const auto var = levelOfIndex(x.n);
  const auto& slab = mSlabs_[static_cast<std::size_t>(var)];
  const auto xc = slab.children(slotOfIndex(x.n));
  const auto xw = slab.weights(slotOfIndex(x.n));
  const auto yc = slab.children(slotOfIndex(y.n));
  const auto yw = slab.weights(slotOfIndex(y.n));
  std::array<mEdge, 4> r;
  for (std::size_t i = 0; i < 4; ++i) {
    const mEdge xe{xc[i], x.w * xw[i]};
    const mEdge ye{yc[i], y.w * yw[i]};
    r[i] = add(xe.isZero() ? zeroMatrix() : xe,
               ye.isZero() ? zeroMatrix() : ye);
  }
  const auto result = makeMatrixNode(var, r);
  addTable_.insert(x, y, result);
  return result;
}

vEdge Package::add(const vEdge& x, const vEdge& y) {
  if (x.isZero()) {
    return y;
  }
  if (y.isZero()) {
    return x;
  }
  if (x.isTerminal() && y.isTerminal()) {
    const auto w = reals_.lookup(x.w + y.w);
    if (w == std::complex<double>{0.0, 0.0}) {
      return zeroVectorEdge();
    }
    return {kTerminalIndex, w};
  }
  if (const auto* cached = addVectorTable_.lookup(x, y)) {
    return *cached;
  }
  assert(levelOfIndex(x.n) == levelOfIndex(y.n));
  const auto var = levelOfIndex(x.n);
  const auto& slab = vSlabs_[static_cast<std::size_t>(var)];
  const auto xc = slab.children(slotOfIndex(x.n));
  const auto xw = slab.weights(slotOfIndex(x.n));
  const auto yc = slab.children(slotOfIndex(y.n));
  const auto yw = slab.weights(slotOfIndex(y.n));
  std::array<vEdge, 2> r;
  for (std::size_t i = 0; i < 2; ++i) {
    const vEdge xe{xc[i], x.w * xw[i]};
    const vEdge ye{yc[i], y.w * yw[i]};
    r[i] = add(xe.isZero() ? zeroVectorEdge() : xe,
               ye.isZero() ? zeroVectorEdge() : ye);
  }
  const auto result = makeVectorNode(var, r);
  addVectorTable_.insert(x, y, result);
  return result;
}

mEdge Package::conjugateTranspose(const mEdge& x) {
  if (x.isTerminal()) {
    return {x.n, reals_.lookup(std::conj(x.w))};
  }
  mEdge base;
  if (const auto* cached = conjTransTable_.lookup(x.n)) {
    base = *cached;
  } else {
    const auto var = levelOfIndex(x.n);
    const auto& slab = mSlabs_[static_cast<std::size_t>(var)];
    const auto c = slab.children(slotOfIndex(x.n));
    const auto w = slab.weights(slotOfIndex(x.n));
    std::array<mEdge, 4> r;
    for (std::size_t i = 0; i < 2; ++i) {
      for (std::size_t j = 0; j < 2; ++j) {
        r[2 * i + j] = conjugateTranspose({c[2 * j + i], w[2 * j + i]});
      }
    }
    base = makeMatrixNode(var, r);
    conjTransTable_.insert(x.n, base);
  }
  mEdge result{base.n, reals_.lookup(std::conj(x.w) * base.w)};
  if (result.w == std::complex<double>{0.0, 0.0}) {
    return zeroMatrix();
  }
  return result;
}

std::complex<double> Package::trace(const mEdge& x) {
  if (x.isZero()) {
    return {0.0, 0.0};
  }
  return x.w * traceNode(x.n);
}

std::complex<double> Package::traceNode(const NodeIndex node) {
  if (node == kTerminalIndex) {
    return {1.0, 0.0};
  }
  if (const auto* cached = traceTable_.lookup(node)) {
    return *cached;
  }
  // The trace recursion never allocates, so slab references stay valid.
  const auto& slab = mSlabs_[static_cast<std::size_t>(levelOfIndex(node))];
  const auto& c = slab.children(slotOfIndex(node));
  const auto& w = slab.weights(slotOfIndex(node));
  std::complex<double> t{0.0, 0.0};
  for (const std::size_t i : {std::size_t{0}, std::size_t{3}}) {
    if (w[i] != std::complex<double>{0.0, 0.0}) {
      t += w[i] * traceNode(c[i]);
    }
  }
  traceTable_.insert(node, t);
  return t;
}

std::complex<double> Package::innerProduct(const vEdge& x, const vEdge& y) {
  if (x.isZero() || y.isZero()) {
    return {0.0, 0.0};
  }
  return std::conj(x.w) * y.w * innerProductNodes(x.n, y.n);
}

std::complex<double> Package::innerProductNodes(const NodeIndex x,
                                                const NodeIndex y) {
  if (x == kTerminalIndex) {
    return {1.0, 0.0};
  }
  if (const auto* cached = innerProductTable_.lookup(x, y)) {
    return *cached;
  }
  // The inner-product recursion never allocates, so references stay valid.
  const auto& slab = vSlabs_[static_cast<std::size_t>(levelOfIndex(x))];
  const auto& xc = slab.children(slotOfIndex(x));
  const auto& xw = slab.weights(slotOfIndex(x));
  const auto& yc = slab.children(slotOfIndex(y));
  const auto& yw = slab.weights(slotOfIndex(y));
  std::complex<double> sum{0.0, 0.0};
  for (std::size_t i = 0; i < 2; ++i) {
    if (xw[i] == std::complex<double>{0.0, 0.0} ||
        yw[i] == std::complex<double>{0.0, 0.0}) {
      continue;
    }
    sum += std::conj(xw[i]) * yw[i] * innerProductNodes(xc[i], yc[i]);
  }
  innerProductTable_.insert(x, y, sum);
  return sum;
}

double Package::fidelity(const vEdge& x, const vEdge& y) {
  return std::norm(innerProduct(x, y));
}

std::complex<double> Package::getEntry(const mEdge& x, const std::size_t row,
                                       const std::size_t col) const {
  if (x.isZero()) {
    return {0.0, 0.0};
  }
  std::complex<double> w = x.w;
  NodeIndex node = x.n;
  while (node != kTerminalIndex) {
    const auto v = static_cast<std::size_t>(levelOfIndex(node));
    const auto slot = slotOfIndex(node);
    const auto bitR = (row >> v) & 1U;
    const auto bitC = (col >> v) & 1U;
    const auto i = 2 * bitR + bitC;
    const auto& cw = mSlabs_[v].weights(slot)[i];
    if (cw == std::complex<double>{0.0, 0.0}) {
      return {0.0, 0.0};
    }
    w *= cw;
    node = mSlabs_[v].children(slot)[i];
  }
  return w;
}

std::complex<double> Package::getAmplitude(const vEdge& x,
                                           const std::size_t index) const {
  if (x.isZero()) {
    return {0.0, 0.0};
  }
  std::complex<double> w = x.w;
  NodeIndex node = x.n;
  while (node != kTerminalIndex) {
    const auto v = static_cast<std::size_t>(levelOfIndex(node));
    const auto slot = slotOfIndex(node);
    const auto bit = (index >> v) & 1U;
    const auto& cw = vSlabs_[v].weights(slot)[bit];
    if (cw == std::complex<double>{0.0, 0.0}) {
      return {0.0, 0.0};
    }
    w *= cw;
    node = vSlabs_[v].children(slot)[bit];
  }
  return w;
}

double Package::traceFidelity(const mEdge& e) {
  const auto t = trace(e);
  return std::abs(t) / static_cast<double>(std::size_t{1} << nqubits_);
}

bool Package::isIdentity(const mEdge& e, const bool upToGlobalPhase,
                         const double checkTol) {
  if (e.isZero()) {
    return false;
  }
  const auto ident = makeIdent();
  if (e.n == ident.n) {
    if (upToGlobalPhase) {
      return std::abs(std::abs(e.w) - 1.0) < checkTol;
    }
    return std::abs(e.w - std::complex<double>{1.0, 0.0}) < checkTol;
  }
  // Fall back to the Hilbert-Schmidt criterion |tr(E)| ~ 2^n.
  const auto t = trace(e);
  const auto dim = static_cast<double>(std::size_t{1} << nqubits_);
  if (upToGlobalPhase) {
    return std::abs(std::abs(t) - dim) < checkTol * dim;
  }
  return std::abs(t - dim) < checkTol * dim;
}

void Package::incRefNode(const NodeIndex n) noexcept {
  if (n == kTerminalIndex) {
    return;
  }
  auto& slab = mSlabs_[static_cast<std::size_t>(levelOfIndex(n))];
  const auto slot = slotOfIndex(n);
  if (slab.ref(slot)++ == 0) {
    // Ref walks never allocate; child references are stable here.
    for (const auto child : slab.children(slot)) {
      incRefNode(child);
    }
  }
}

void Package::decRefNode(const NodeIndex n) noexcept {
  if (n == kTerminalIndex) {
    return;
  }
  auto& slab = mSlabs_[static_cast<std::size_t>(levelOfIndex(n))];
  const auto slot = slotOfIndex(n);
  assert(slab.ref(slot) > 0);
  if (--slab.ref(slot) == 0) {
    for (const auto child : slab.children(slot)) {
      decRefNode(child);
    }
  }
}

void Package::incRefVNode(const NodeIndex n) noexcept {
  if (n == kTerminalIndex) {
    return;
  }
  auto& slab = vSlabs_[static_cast<std::size_t>(levelOfIndex(n))];
  const auto slot = slotOfIndex(n);
  if (slab.ref(slot)++ == 0) {
    for (const auto child : slab.children(slot)) {
      incRefVNode(child);
    }
  }
}

void Package::decRefVNode(const NodeIndex n) noexcept {
  if (n == kTerminalIndex) {
    return;
  }
  auto& slab = vSlabs_[static_cast<std::size_t>(levelOfIndex(n))];
  const auto slot = slotOfIndex(n);
  assert(slab.ref(slot) > 0);
  if (--slab.ref(slot) == 0) {
    for (const auto child : slab.children(slot)) {
      decRefVNode(child);
    }
  }
}

void Package::incRef(const mEdge& e) noexcept { incRefNode(e.n); }
void Package::decRef(const mEdge& e) noexcept { decRefNode(e.n); }
void Package::incRef(const vEdge& e) noexcept { incRefVNode(e.n); }
void Package::decRef(const vEdge& e) noexcept { decRefVNode(e.n); }

void Package::clearComputeTables() noexcept {
  multiplyTable_.clear();
  multiplyVectorTable_.clear();
  addTable_.clear();
  addVectorTable_.clear();
  conjTransTable_.clear();
  traceTable_.clear();
  innerProductTable_.clear();
}

std::size_t Package::garbageCollect(const bool force) {
  // The GC boundary is where every engine already expects a
  // ResourceLimitError (the governors throw here), which makes it the
  // canonical point to inject one.
  VERIQC_FAULT_POINT(fault::points::kDDGc, fault::FaultKind::ResourceLimit);
  std::size_t live = 0;
  for (const auto& slab : mSlabs_) {
    live += slab.size();
  }
  for (const auto& slab : vSlabs_) {
    live += slab.size();
  }
  peakMatrixNodes_ = std::max(peakMatrixNodes_, live);
  // Over the node budget: always attempt a collection first — only what
  // survives it counts against the budget.
  const bool overNodeBudget = maxNodes_ != 0 && live > maxNodes_;
  if (!force && !overNodeBudget && live < gcThreshold_) {
    // Memory is checked at a throttle even when no collection runs, so a
    // governed engine whose live-node count stays under the GC threshold
    // still cannot silently outgrow the memory budget.
    if (maxMemoryKB_ != 0 && memoryCheckCountdown_-- == 0) {
      memoryCheckCountdown_ = 15;
      const auto rssKB = peakResidentSetKB();
      if (rssKB > maxMemoryKB_) {
        throw ResourceLimitError("resident memory (KB)", maxMemoryKB_, rssKB);
      }
    }
    return 0;
  }
  std::size_t collected = 0;
  for (auto& slab : mSlabs_) {
    collected += slab.garbageCollect();
  }
  for (auto& slab : vSlabs_) {
    collected += slab.garbageCollect();
  }
  // O(1) generation bumps — cached results may name reclaimed slots.
  clearComputeTables();
  // The gate-DD cache holds references to its diagrams, so its entries are
  // never collected and stay valid here.
  gcThreshold_ = std::max(gcInitialThreshold_, 2 * (live - collected));
  ++gcRuns_;
  enforceResourceLimits(live - collected);
  return collected;
}

mEdge Package::importMatrix(const Package& src, const mEdge& e) {
  // Memo: source handle -> canonical edge in *this* equivalent to the source
  // node with an implicit unit top weight. Normalization may fold a factor
  // into the returned weight, so the memo stores full edges, not handles.
  std::unordered_map<NodeIndex, mEdge> memo;
  const std::function<mEdge(NodeIndex)> copyNode =
      [&](const NodeIndex n) -> mEdge {
    if (n == kTerminalIndex) {
      return oneMatrixScalar();
    }
    if (const auto it = memo.find(n); it != memo.end()) {
      return it->second;
    }
    // Per-copied-node injection point: an `after=N` plan aborts the handover
    // mid-walk. The partially imported nodes carry zero references and are
    // reclaimed by this package's next garbage collection; `src` is read
    // only, so the source package's invariants cannot be disturbed.
    VERIQC_FAULT_POINT(fault::points::kDDImport, fault::FaultKind::BadAlloc);
    std::array<mEdge, 4> children{};
    for (std::size_t i = 0; i < 4; ++i) {
      const auto child = src.matrixChild(n, i);
      const auto imported = copyNode(child.n);
      children[i] = {imported.n, child.w * imported.w};
    }
    const auto made = makeMatrixNode(levelOfIndex(n), children);
    memo.emplace(n, made);
    return made;
  };
  const auto imported = copyNode(e.n);
  return {imported.n, e.w * imported.w};
}

bool Package::adoptWarmGateSource(std::shared_ptr<const Package> src) noexcept {
  if (src == nullptr || src->nqubits_ != nqubits_ ||
      src->reals_.tolerance() != reals_.tolerance()) {
    // A differently-quantized source would make GateKey comparisons
    // meaningless; a differently-sized one holds diagrams of another shape.
    return false;
  }
  warmGateSource_ = std::move(src);
  return true;
}

void Package::exportGateCacheInto(Package& dst) const {
  if (dst.nqubits_ != nqubits_ ||
      dst.reals_.tolerance() != reals_.tolerance()) {
    throw std::invalid_argument(
        "exportGateCacheInto: qubit count or tolerance mismatch");
  }
  for (const auto& [key, edge] : gateCache_) {
    if (dst.gateCache_.contains(key)) {
      continue;
    }
    if (dst.gateCache_.size() >= dst.gateCacheMaxEntries_) {
      break; // never force the destination to flush what it already holds
    }
    const mEdge imported = dst.importMatrix(*this, edge);
    dst.incRef(imported);
    dst.gateCache_.emplace(key, imported);
    ++dst.gateCacheStats_.inserts;
  }
}

std::size_t Package::release(const mEdge& e) {
  const std::size_t removed = releaseNode(e.n);
  if (removed > 0) {
    releasedNodes_ += removed;
    // Cached results may name the reclaimed slots; the gate-DD cache holds
    // references to its entries, so those were never reclaimable.
    clearComputeTables();
  }
  return removed;
}

std::size_t Package::releaseNode(const NodeIndex n) {
  if (n == kTerminalIndex) {
    return 0;
  }
  auto& slab = mSlabs_[static_cast<std::size_t>(levelOfIndex(n))];
  // A dead contains() means the slot is no longer live: either a shared
  // subdiagram this walk already reclaimed through another parent, or one an
  // earlier garbageCollect() swept. Either way its children were (or will
  // be) handled by whoever freed it.
  if (!slab.contains(n) || slab.ref(slotOfIndex(n)) != 0) {
    return 0;
  }
  // Copy the children before remove() recycles the slot.
  const auto children = slab.children(slotOfIndex(n));
  slab.remove(n);
  std::size_t removed = 1;
  for (const auto child : children) {
    removed += releaseNode(child);
  }
  return removed;
}

void Package::enforceResourceLimits(const std::size_t liveNodes) {
  if (maxNodes_ != 0 && liveNodes > maxNodes_) {
    throw ResourceLimitError("DD nodes", maxNodes_, liveNodes);
  }
  if (maxMemoryKB_ != 0) {
    const auto rssKB = peakResidentSetKB();
    if (rssKB > maxMemoryKB_) {
      throw ResourceLimitError("resident memory (KB)", maxMemoryKB_, rssKB);
    }
  }
}

std::size_t Package::peakResidentSetKB() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0;
  }
#if defined(__APPLE__)
  return static_cast<std::size_t>(usage.ru_maxrss) / 1024;
#else
  return static_cast<std::size_t>(usage.ru_maxrss);
#endif
#else
  return 0;
#endif
}

std::size_t Package::currentResidentSetKB() noexcept {
#if defined(__unix__) && !defined(__APPLE__)
  // /proc/self/statm: size resident shared text lib data dt (in pages).
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm == nullptr) {
    return 0;
  }
  long unused = 0;
  long residentPages = 0;
  const int matched = std::fscanf(statm, "%ld %ld", &unused, &residentPages);
  std::fclose(statm);
  if (matched != 2 || residentPages < 0) {
    return 0;
  }
  const long pageSize = sysconf(_SC_PAGESIZE);
  if (pageSize <= 0) {
    return 0;
  }
  return static_cast<std::size_t>(residentPages) *
         static_cast<std::size_t>(pageSize) / 1024U;
#else
  return peakResidentSetKB();
#endif
}

void Package::countMatrixNodes(const NodeIndex n,
                               std::set<NodeIndex>& seen) const {
  if (n == kTerminalIndex || !seen.insert(n).second) {
    return;
  }
  const auto& slab = mSlabs_[static_cast<std::size_t>(levelOfIndex(n))];
  const auto slot = slotOfIndex(n);
  const auto& c = slab.children(slot);
  const auto& w = slab.weights(slot);
  for (std::size_t i = 0; i < 4; ++i) {
    if (w[i] != std::complex<double>{0.0, 0.0}) {
      countMatrixNodes(c[i], seen);
    }
  }
}

void Package::countVectorNodes(const NodeIndex n,
                               std::set<NodeIndex>& seen) const {
  if (n == kTerminalIndex || !seen.insert(n).second) {
    return;
  }
  const auto& slab = vSlabs_[static_cast<std::size_t>(levelOfIndex(n))];
  const auto slot = slotOfIndex(n);
  const auto& c = slab.children(slot);
  const auto& w = slab.weights(slot);
  for (std::size_t i = 0; i < 2; ++i) {
    if (w[i] != std::complex<double>{0.0, 0.0}) {
      countVectorNodes(c[i], seen);
    }
  }
}

std::size_t Package::nodeCount(const mEdge& e) const {
  std::set<NodeIndex> seen;
  countMatrixNodes(e.n, seen);
  return seen.size();
}

std::size_t Package::nodeCount(const vEdge& e) const {
  std::set<NodeIndex> seen;
  countVectorNodes(e.n, seen);
  return seen.size();
}

mEdge Package::matrixChild(const NodeIndex n, const std::size_t i) const {
  assert(n != kTerminalIndex && i < 4);
  const auto& slab = mSlabs_[static_cast<std::size_t>(levelOfIndex(n))];
  const auto slot = slotOfIndex(n);
  return {slab.children(slot)[i], slab.weights(slot)[i]};
}

vEdge Package::vectorChild(const NodeIndex n, const std::size_t i) const {
  assert(n != kTerminalIndex && i < 2);
  const auto& slab = vSlabs_[static_cast<std::size_t>(levelOfIndex(n))];
  const auto slot = slotOfIndex(n);
  return {slab.children(slot)[i], slab.weights(slot)[i]};
}

PackageStats Package::stats() const {
  PackageStats s;
  for (const auto& slab : mSlabs_) {
    s.matrixStore += slab.stats();
  }
  for (const auto& slab : vSlabs_) {
    s.vectorStore += slab.stats();
  }
  s.matrixNodes = s.matrixStore.liveNodes;
  s.vectorNodes = s.vectorStore.liveNodes;
  s.allocations = s.matrixStore.allocatedSlots + s.vectorStore.allocatedSlots;
  s.gcRuns = gcRuns_;
  s.releasedNodes = releasedNodes_;
  s.realNumbers = reals_.size();
  s.peakMatrixNodes =
      std::max(peakMatrixNodes_, s.matrixNodes + s.vectorNodes);
  s.gcThreshold = gcThreshold_;
  s.multiply = multiplyTable_.stats();
  s.multiplyVector = multiplyVectorTable_.stats();
  s.add = addTable_.stats();
  s.addVector = addVectorTable_.stats();
  s.conjugateTranspose = conjTransTable_.stats();
  s.trace = traceTable_.stats();
  s.innerProduct = innerProductTable_.stats();
  s.gateCache = gateCacheStats_;
  s.gateCacheEntries = gateCache_.size();
  s.gateCacheWarmHits = gateCacheWarmHits_;
  return s;
}

void Package::exportCounters(obs::CounterRegistry& registry,
                             const std::string& prefix) const {
  const auto s = stats();
  const auto cache = [&](const char* name, const CacheStats& stats) {
    const std::string base = prefix + name;
    registry.add(base + ".lookups", static_cast<double>(stats.lookups));
    registry.add(base + ".hits", static_cast<double>(stats.hits));
    registry.add(base + ".collisions", static_cast<double>(stats.collisions));
    registry.add(base + ".inserts", static_cast<double>(stats.inserts));
    registry.add(base + ".invalidations",
                 static_cast<double>(stats.invalidations));
  };
  cache("multiply", s.multiply);
  cache("multiply_vector", s.multiplyVector);
  cache("add", s.add);
  cache("add_vector", s.addVector);
  cache("conjugate_transpose", s.conjugateTranspose);
  cache("trace", s.trace);
  cache("inner_product", s.innerProduct);
  cache("gate_cache", s.gateCache);
  registry.add(prefix + "gate_cache.warm_hits",
               static_cast<double>(s.gateCacheWarmHits));
  registry.add(prefix + "nodes.allocations",
               static_cast<double>(s.allocations));
  registry.add(prefix + "nodes.released",
               static_cast<double>(s.releasedNodes));
  registry.add(prefix + "gc.runs", static_cast<double>(s.gcRuns));
  registry.max(prefix + "nodes.peak",
               static_cast<double>(s.peakMatrixNodes));
  registry.max(prefix + "reals.interned", static_cast<double>(s.realNumbers));
  const auto store = s.storeTotal();
  registry.add(prefix + "unique.lookups", static_cast<double>(store.lookups));
  registry.add(prefix + "unique.probe_steps",
               static_cast<double>(store.probeSteps));
  registry.add(prefix + "unique.hits", static_cast<double>(store.hits));
  registry.add(prefix + "unique.collisions",
               static_cast<double>(store.collisions));
  registry.add(prefix + "nodes.slab_growths",
               static_cast<double>(store.slabGrowths));
  registry.max(prefix + "nodes.allocated_slots",
               static_cast<double>(store.allocatedSlots));
}

std::vector<mEdge> Package::internalMatrixRoots() const {
  std::vector<mEdge> roots;
  roots.reserve(idTable_.size() + gateCache_.size());
  roots.insert(roots.end(), idTable_.begin(), idTable_.end());
  for (const auto& [key, edge] : gateCache_) {
    roots.push_back(edge);
  }
  return roots;
}

void Package::visitLiveCacheNodes(
    const std::function<void(NodeIndex)>& visitMatrix,
    const std::function<void(NodeIndex)>& visitVector) const {
  multiplyTable_.forEachLive(
      [&](const NodeIndex l, const NodeIndex r, const mEdge& res) {
        visitMatrix(l);
        visitMatrix(r);
        visitMatrix(res.n);
      });
  multiplyVectorTable_.forEachLive(
      [&](const NodeIndex l, const NodeIndex r, const vEdge& res) {
        visitMatrix(l);
        visitVector(r);
        visitVector(res.n);
      });
  addTable_.forEachLive([&](const mEdge& l, const mEdge& r, const mEdge& res) {
    visitMatrix(l.n);
    visitMatrix(r.n);
    visitMatrix(res.n);
  });
  addVectorTable_.forEachLive(
      [&](const vEdge& l, const vEdge& r, const vEdge& res) {
        visitVector(l.n);
        visitVector(r.n);
        visitVector(res.n);
      });
  conjTransTable_.forEachLive([&](const NodeIndex arg, const mEdge& res) {
    visitMatrix(arg);
    visitMatrix(res.n);
  });
  traceTable_.forEachLive(
      [&](const NodeIndex arg, const std::complex<double>& /*res*/) {
        visitMatrix(arg);
      });
  innerProductTable_.forEachLive([&](const NodeIndex l, const NodeIndex r,
                                     const std::complex<double>& /*res*/) {
    visitVector(l);
    visitVector(r);
  });
}

bool Package::containsMatrixNode(const NodeIndex n) const noexcept {
  if (n == kTerminalIndex) {
    return true;
  }
  const auto v = levelOfIndex(n);
  if (v < 0 || static_cast<std::size_t>(v) >= mSlabs_.size()) {
    return false;
  }
  return mSlabs_[static_cast<std::size_t>(v)].contains(n);
}

bool Package::containsVectorNode(const NodeIndex n) const noexcept {
  if (n == kTerminalIndex) {
    return true;
  }
  const auto v = levelOfIndex(n);
  if (v < 0 || static_cast<std::size_t>(v) >= vSlabs_.size()) {
    return false;
  }
  return vSlabs_[static_cast<std::size_t>(v)].contains(n);
}

} // namespace veriqc::dd
