#include "check/manager.hpp"
#include "check/report.hpp"
#include "circuits/benchmarks.hpp"
#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace veriqc;
using namespace veriqc::check;
using veriqc::obs::Json;

namespace {

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

constexpr std::array<EquivalenceCriterion, 10> kAllCriteria = {
    EquivalenceCriterion::Equivalent,
    EquivalenceCriterion::EquivalentUpToGlobalPhase,
    EquivalenceCriterion::NotEquivalent,
    EquivalenceCriterion::ProbablyEquivalent,
    EquivalenceCriterion::NoInformation,
    EquivalenceCriterion::Timeout,
    EquivalenceCriterion::Cancelled,
    EquivalenceCriterion::ResourceExhausted,
    EquivalenceCriterion::EngineError,
    EquivalenceCriterion::NotRun,
};

/// A fully deterministic run record covering every verdict kind and every
/// optional data channel (ZX rule stats, DD caches, size trace, counters),
/// used by the golden-file test.
Json goldenReport() {
  Configuration config;
  config.timeout = std::chrono::milliseconds(1500);
  config.runZX = true;
  config.recordTrace = true;
  config.maxDDNodes = 100000;

  std::vector<Result> engines;
  for (std::size_t i = 0; i < kAllCriteria.size(); ++i) {
    Result r;
    r.criterion = kAllCriteria[i];
    r.method = "engine-" + std::to_string(i);
    r.runtimeSeconds = 0.125 * static_cast<double>(i);
    engines.push_back(std::move(r));
  }
  // Flesh out a DD-style slot...
  engines[0].performedSimulations = 16;
  engines[0].hilbertSchmidtFidelity = 1.0;
  engines[0].peakNodes = 42;
  engines[0].sizeTrace = {4, 8, 12, 8, 4};
  engines[0].computeCacheStats = {100, 75, 5, 25, 2};
  engines[0].gateCacheStats = {30, 20, 0, 10, 1};
  engines[0].counters.add("dd.multiply.lookups", 100);
  engines[0].counters.max("dd.nodes.peak", 42);
  // ... a ZX-style slot ...
  engines[1].rewrites = 23;
  engines[1].remainingSpiders = 6;
  engines[1].zxRuleStats = {{"spider", 40, 8, 12, 0.001},
                            {"pivot", 17, 3, 11, 0.002}};
  engines[1].counters.add("zx.rewrites", 23);
  // ... a counterexample slot and the failure slots.
  engines[2].counterexampleStimulus = 3;
  engines[7].errorMessage = "node budget of 100000 exceeded";
  engines[8].errorMessage = "unknown exception";
  // A slot that walked the degradation ladder: the ResourceExhausted final
  // state carries its attempt lineage and the rung of the last attempt.
  engines[7].degradation = "gc-tight";
  engines[7].attempts = {
      {"engine-7", 0, "", "resource_exhausted", 0.25,
       "node budget of 100000 exceeded"},
      {"engine-7", 1, "gc-tight", "resource_exhausted", 0.5,
       "node budget of 100000 exceeded"},
  };

  Result combined = engines[0];
  combined.method = "manager";
  combined.runtimeSeconds = 1.25;
  combined.resourceLimitedEngines = {"engine-7"};
  combined.peakResidentSetKB = 51200;
  combined.processPeakResidentSetKB = 73728;
  combined.attempts = engines[7].attempts;

  std::vector<obs::PhaseSpan> phases = {
      {"parse", 0.0, 0.01},
      {"prepare", 0.01, 0.002},
      {"engine:engine-0", 0.012, 1.2},
      {"combine", 1.212, 0.001},
  };
  return buildRunReport(combined, engines, config, phases);
}

} // namespace

// --- criterion keys ----------------------------------------------------------

TEST(CriterionKeyTest, RoundTripsEveryVerdict) {
  for (const auto criterion : kAllCriteria) {
    const auto key = criterionKey(criterion);
    EXPECT_NE(key, "unknown") << toString(criterion);
    const auto back = criterionFromKey(key);
    ASSERT_TRUE(back.has_value()) << key;
    EXPECT_EQ(*back, criterion) << key;
  }
}

TEST(CriterionKeyTest, UnknownKeysAreRejected) {
  EXPECT_FALSE(criterionFromKey("definitely_not_a_verdict").has_value());
  EXPECT_FALSE(criterionFromKey("").has_value());
  // Keys are exact: the display form is not a schema key.
  EXPECT_FALSE(criterionFromKey("Equivalent").has_value());
}

// --- serialization -----------------------------------------------------------

TEST(SerializeResultTest, EveryKeyIsAlwaysPresent) {
  const auto record = serializeResult(Result{});
  for (const char* key :
       {"method", "verdict", "runtimeSeconds", "performedSimulations",
        "hilbertSchmidtFidelity", "counterexampleStimulus", "errorMessage",
        "zx", "dd", "sizeTrace", "counters"}) {
    EXPECT_TRUE(record.contains(key)) << key;
  }
  EXPECT_EQ(record.at("verdict").asString(), "no_information");
  EXPECT_TRUE(record.at("sizeTrace").asArray().empty());
  EXPECT_TRUE(record.at("zx").at("rules").asArray().empty());
}

TEST(GoldenReportTest, MatchesGoldenFileByteForByte) {
  const auto report = goldenReport();
  const auto goldenPath =
      std::string(VERIQC_GOLDEN_DIR) + "/report_all_verdicts.json";
  if (std::getenv("VERIQC_REGEN_GOLDEN") != nullptr) {
    writeRunReport(report, goldenPath);
    GTEST_SKIP() << "regenerated " << goldenPath;
  }
  const auto expected = readFile(goldenPath);
  EXPECT_EQ(report.dump(2) + "\n", expected)
      << "golden mismatch — if the schema changed intentionally, regenerate "
      << goldenPath;
}

TEST(GoldenReportTest, GoldenFileIsValidAndRoundTrips) {
  const auto goldenPath =
      std::string(VERIQC_GOLDEN_DIR) + "/report_all_verdicts.json";
  const auto parsed = Json::parse(readFile(goldenPath));
  EXPECT_TRUE(validateRunReport(parsed).empty());
  EXPECT_EQ(parsed, goldenReport());
  // Every engine slot's verdict key decodes back to its enum value.
  const auto& engines = parsed.at("engines").asArray();
  ASSERT_EQ(engines.size(), kAllCriteria.size());
  for (std::size_t i = 0; i < engines.size(); ++i) {
    const auto key = engines[i].at("verdict").asString();
    ASSERT_TRUE(criterionFromKey(key).has_value()) << key;
    EXPECT_EQ(*criterionFromKey(key), kAllCriteria[i]);
  }
}

TEST(GoldenReportTest, EngineCountersAreNamespacedBySlot) {
  // Regression: with several engines racing, the top-level counters object
  // used to merge every engine's "dd.*" counters into one flat sum, so the
  // per-engine share was unrecoverable. Each engine's counters must now
  // also appear under an "engine:<method>/" prefix, alongside the flat
  // run-wide totals.
  const auto report = goldenReport();
  const auto& counters = report.at("counters");
  ASSERT_NE(counters.find("engine:engine-0/dd.multiply.lookups"), nullptr);
  ASSERT_NE(counters.find("engine:engine-0/dd.nodes.peak"), nullptr);
  ASSERT_NE(counters.find("engine:engine-1/zx.rewrites"), nullptr);
  EXPECT_DOUBLE_EQ(
      counters.at("engine:engine-0/dd.multiply.lookups").asDouble(), 100.0);
  EXPECT_DOUBLE_EQ(counters.at("engine:engine-1/zx.rewrites").asDouble(),
                   23.0);
  // Flat totals are preserved: the combined result contributes the same
  // dd counters once more, so the run-wide sum is engine + combined.
  EXPECT_DOUBLE_EQ(counters.at("dd.multiply.lookups").asDouble(), 200.0);
  EXPECT_DOUBLE_EQ(counters.at("zx.rewrites").asDouble(), 23.0);
}

// --- validator ---------------------------------------------------------------

TEST(ValidateReportTest, AcceptsFreshReports) {
  EXPECT_TRUE(validateRunReport(goldenReport()).empty());
}

TEST(ValidateReportTest, RejectsNonObjects) {
  EXPECT_FALSE(validateRunReport(Json(42)).empty());
  EXPECT_FALSE(validateRunReport(Json::array()).empty());
}

TEST(ValidateReportTest, RejectsWrongSchemaId) {
  auto report = goldenReport();
  report["schema"] = "veriqc-report/v999";
  const auto errors = validateRunReport(report);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("schema"), std::string::npos);
}

TEST(ValidateReportTest, RejectsUnknownVerdictKeys) {
  auto report = goldenReport();
  report["verdict"]["verdict"] = "maybe";
  const auto errors = validateRunReport(report);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("unknown verdict key"), std::string::npos);
}

TEST(ValidateReportTest, RejectsMissingAndMistypedMembers) {
  {
    // Engine record missing a required key.
    auto report = goldenReport();
    auto stripped = Json::object();
    stripped["verdict"] = "equivalent";
    report["engines"].push_back(stripped);
    EXPECT_FALSE(validateRunReport(report).empty());
  }
  {
    // Phases must be span objects, not strings.
    auto report = goldenReport();
    report["phases"].push_back("not a span");
    EXPECT_FALSE(validateRunReport(report).empty());
  }
  {
    // Counter values must be numbers.
    auto report = goldenReport();
    report["counters"]["bad"] = "text";
    EXPECT_FALSE(validateRunReport(report).empty());
  }
  {
    // sizeTrace holds integers only.
    auto report = goldenReport();
    report["verdict"]["sizeTrace"].push_back(1.5);
    EXPECT_FALSE(validateRunReport(report).empty());
  }
}

TEST(ValidateReportTest, AcceptsAndChecksTheOptionalJobObject) {
  // A well-formed job object (as attached by veriqcd) validates...
  auto report = goldenReport();
  auto job = Json::object();
  job["id"] = "batch-17";
  job["admitted"] = false;
  job["reason"] = "queue_full";
  job["detail"] = "64 jobs queued";
  report["job"] = job;
  EXPECT_TRUE(validateRunReport(report).empty());

  // ... but a mistyped member does not.
  report["job"]["admitted"] = "no";
  EXPECT_FALSE(validateRunReport(report).empty());
  report["job"] = Json(7);
  EXPECT_FALSE(validateRunReport(report).empty());
}

TEST(ValidateReportTest, ProcessPeakResidentSetMustBeAnInteger) {
  auto report = goldenReport();
  report["resources"]["processPeakResidentSetKB"] = "lots";
  EXPECT_FALSE(validateRunReport(report).empty());
}

// --- live manager round trip -------------------------------------------------

TEST(LiveReportTest, ManagerRunSerializesParsesAndMatchesEngineResults) {
  Configuration config;
  config.simulationRuns = 4;
  config.runZX = true;
  config.recordTrace = true;
  config.parallel = false;
  EquivalenceCheckingManager manager(circuits::ghz(3), circuits::ghz(3),
                                     config);
  const auto combined = manager.run();
  const auto report = buildRunReport(manager, combined, config);
  EXPECT_TRUE(validateRunReport(report).empty());

  // The document survives a disk round trip bit-for-bit.
  const auto path = std::string(::testing::TempDir()) + "live_report.json";
  writeRunReport(report, path);
  const auto reparsed = Json::parse(readFile(path));
  EXPECT_EQ(reparsed, report);
  std::remove(path.c_str());

  // Engine slots mirror engineResults() in order, verdict and method.
  const auto& engines = reparsed.at("engines").asArray();
  ASSERT_EQ(engines.size(), manager.engineResults().size());
  for (std::size_t i = 0; i < engines.size(); ++i) {
    const auto& slot = manager.engineResults()[i];
    EXPECT_EQ(engines[i].at("method").asString(), slot.method);
    EXPECT_EQ(engines[i].at("verdict").asString(),
              criterionKey(slot.criterion));
    EXPECT_DOUBLE_EQ(engines[i].at("runtimeSeconds").asDouble(),
                     slot.runtimeSeconds);
  }
  EXPECT_EQ(reparsed.at("verdict").at("verdict").asString(),
            criterionKey(combined.criterion));

  // The phase list carries the manager's span structure.
  const auto& phases = reparsed.at("phases").asArray();
  std::vector<std::string> names;
  names.reserve(phases.size());
  for (const auto& span : phases) {
    names.push_back(span.at("name").asString());
  }
  EXPECT_NE(std::find(names.begin(), names.end(), "prepare"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "combine"), names.end());
  std::size_t engineSpans = 0;
  for (const auto& name : names) {
    engineSpans += name.rfind("engine:", 0) == 0 ? 1 : 0;
  }
  // The sequential manager stops launching engines once a definitive
  // verdict lands, so at least one engine span exists (possibly fewer
  // than the configured slots).
  EXPECT_GE(engineSpans, 1U);

  // DD cache counters reach the report.
  const auto& counters = reparsed.at("counters").asObject();
  EXPECT_FALSE(counters.empty());
  bool sawDDCounter = false;
  for (const auto& [name, value] : counters) {
    sawDDCounter = sawDDCounter || name.rfind("dd.", 0) == 0;
  }
  EXPECT_TRUE(sawDDCounter);
}
