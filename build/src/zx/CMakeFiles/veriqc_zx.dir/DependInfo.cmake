
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/zx/circuit_to_zx.cpp" "src/zx/CMakeFiles/veriqc_zx.dir/circuit_to_zx.cpp.o" "gcc" "src/zx/CMakeFiles/veriqc_zx.dir/circuit_to_zx.cpp.o.d"
  "/root/repo/src/zx/diagram.cpp" "src/zx/CMakeFiles/veriqc_zx.dir/diagram.cpp.o" "gcc" "src/zx/CMakeFiles/veriqc_zx.dir/diagram.cpp.o.d"
  "/root/repo/src/zx/export.cpp" "src/zx/CMakeFiles/veriqc_zx.dir/export.cpp.o" "gcc" "src/zx/CMakeFiles/veriqc_zx.dir/export.cpp.o.d"
  "/root/repo/src/zx/extract.cpp" "src/zx/CMakeFiles/veriqc_zx.dir/extract.cpp.o" "gcc" "src/zx/CMakeFiles/veriqc_zx.dir/extract.cpp.o.d"
  "/root/repo/src/zx/rational.cpp" "src/zx/CMakeFiles/veriqc_zx.dir/rational.cpp.o" "gcc" "src/zx/CMakeFiles/veriqc_zx.dir/rational.cpp.o.d"
  "/root/repo/src/zx/resynthesis.cpp" "src/zx/CMakeFiles/veriqc_zx.dir/resynthesis.cpp.o" "gcc" "src/zx/CMakeFiles/veriqc_zx.dir/resynthesis.cpp.o.d"
  "/root/repo/src/zx/simplify.cpp" "src/zx/CMakeFiles/veriqc_zx.dir/simplify.cpp.o" "gcc" "src/zx/CMakeFiles/veriqc_zx.dir/simplify.cpp.o.d"
  "/root/repo/src/zx/tensor.cpp" "src/zx/CMakeFiles/veriqc_zx.dir/tensor.cpp.o" "gcc" "src/zx/CMakeFiles/veriqc_zx.dir/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/veriqc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/veriqc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/compile/CMakeFiles/veriqc_compile.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/veriqc_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/dd/CMakeFiles/veriqc_dd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
