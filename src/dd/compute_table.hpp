/// \file compute_table.hpp
/// \brief Operation caches (memoization) for decision-diagram operations.
///
/// All tables are direct-mapped (collisions overwrite) and
/// *generation-stamped*: every entry carries the generation in which it was
/// written, and invalidating the whole table is a single generation bump
/// instead of an O(table size) sweep. Garbage collection — which must drop
/// all cached results because they may reference collected (and now
/// reusable) node slots — therefore costs O(1) per table. Entries are also
/// allocated lazily on first insert, so packages that never exercise an
/// operation pay nothing for its cache.
///
/// With index handles the hot binary caches no longer key on full edges:
/// `NodePairComputeTable` packs two 32-bit `NodeIndex` handles into one
/// 64-bit key (operations such as multiply normalise their operands to unit
/// weight first), so a probe is a single integer compare on a 24-byte entry.
/// `ComputeTable` keeps full-edge keys for operations where the weights are
/// part of the key (addition). Slot reuse cannot resurrect stale entries:
/// every reclaim path (GC and eager release) bumps the generations.
#pragma once

#include "dd/node.hpp"
#include "fault/fault.hpp"

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace veriqc::dd {

/// Hit/miss/collision counters of one operation cache.
struct CacheStats {
  std::size_t lookups = 0;       ///< total lookup calls
  std::size_t hits = 0;          ///< lookups returning a cached result
  std::size_t collisions = 0;    ///< live entry present but key mismatched
  std::size_t inserts = 0;       ///< total insert calls
  std::size_t invalidations = 0; ///< generation bumps (clear() calls)

  [[nodiscard]] double hitRate() const noexcept {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }

  CacheStats& operator+=(const CacheStats& other) noexcept {
    lookups += other.lookups;
    hits += other.hits;
    collisions += other.collisions;
    inserts += other.inserts;
    invalidations += other.invalidations;
    return *this;
  }
};

namespace detail {
[[nodiscard]] inline std::size_t mixIndex(const NodeIndex n) noexcept {
  return static_cast<std::size_t>(n) * 0x9E3779B97F4A7C15ULL;
}
[[nodiscard]] inline std::uint64_t packPair(const NodeIndex a,
                                            const NodeIndex b) noexcept {
  return (static_cast<std::uint64_t>(a) << 32U) | b;
}
} // namespace detail

/// Direct-mapped, generation-stamped cache for binary DD operations whose key
/// includes the operand weights (e.g. addition).
template <typename LeftEdge, typename RightEdge, typename ResultEdge>
class ComputeTable {
public:
  static constexpr std::size_t kDefaultEntries = 1U << 16U;

  explicit ComputeTable(const std::size_t numEntries = kDefaultEntries)
      : mask_(std::bit_ceil(numEntries < 2 ? std::size_t{2} : numEntries) -
              1) {}

  void insert(const LeftEdge& lhs, const RightEdge& rhs,
              const ResultEdge& result) {
    if (entries_.empty()) {
      // Lazy first-touch allocation: the injection point fires before the
      // resize so a simulated failure leaves the table untouched (and the
      // interrupted operation's caller unwinds with no cache to poison).
      VERIQC_FAULT_POINT(fault::points::kDDComputeAlloc,
                         fault::FaultKind::BadAlloc);
      entries_.resize(mask_ + 1);
    }
    auto& entry = entries_[hash(lhs, rhs)];
    entry.lhs = lhs;
    entry.rhs = rhs;
    entry.result = result;
    entry.gen = generation_;
    ++stats_.inserts;
  }

  /// Returns nullptr on miss.
  [[nodiscard]] const ResultEdge* lookup(const LeftEdge& lhs,
                                         const RightEdge& rhs) {
    ++stats_.lookups;
    if (entries_.empty()) {
      return nullptr;
    }
    const auto& entry = entries_[hash(lhs, rhs)];
    if (entry.gen != generation_) {
      return nullptr;
    }
    if (!(entry.lhs == lhs) || !(entry.rhs == rhs)) {
      ++stats_.collisions;
      return nullptr;
    }
    ++stats_.hits;
    return &entry.result;
  }

  /// O(1): bumps the generation, logically emptying the table.
  void clear() noexcept {
    ++generation_;
    ++stats_.invalidations;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t lookups() const noexcept { return stats_.lookups; }
  [[nodiscard]] std::size_t hits() const noexcept { return stats_.hits; }

  /// Visits every entry of the current generation as `f(lhs, rhs, result)`.
  /// Read-only introspection for the audit layer.
  template <typename F> void forEachLive(F&& f) const {
    for (const auto& entry : entries_) {
      if (entry.gen == generation_) {
        f(entry.lhs, entry.rhs, entry.result);
      }
    }
  }

private:
  struct Entry {
    LeftEdge lhs{};
    RightEdge rhs{};
    ResultEdge result{};
    std::uint64_t gen = 0; ///< 0 = never written (generation_ starts at 1)
  };

  [[nodiscard]] std::size_t hash(const LeftEdge& lhs,
                                 const RightEdge& rhs) const noexcept {
    std::size_t h = detail::mixIndex(lhs.n);
    h = combineHash(h, hashWeight(lhs.w));
    h = combineHash(h, detail::mixIndex(rhs.n));
    h = combineHash(h, hashWeight(rhs.w));
    return h & mask_;
  }

  std::size_t mask_;
  std::uint64_t generation_ = 1;
  std::vector<Entry> entries_; ///< allocated on first insert
  CacheStats stats_;
};

/// Direct-mapped, generation-stamped cache keyed on a packed pair of node
/// handles. Used by operations that normalise operand weights out of the key
/// (multiplication, inner products): the probe compares one 64-bit integer.
template <typename ResultEdge> class NodePairComputeTable {
public:
  static constexpr std::size_t kDefaultEntries = 1U << 16U;

  explicit NodePairComputeTable(const std::size_t numEntries = kDefaultEntries)
      : mask_(std::bit_ceil(numEntries < 2 ? std::size_t{2} : numEntries) -
              1) {}

  void insert(const NodeIndex lhs, const NodeIndex rhs,
              const ResultEdge& result) {
    if (entries_.empty()) {
      // Lazy first-touch allocation: the injection point fires before the
      // resize so a simulated failure leaves the table untouched (and the
      // interrupted operation's caller unwinds with no cache to poison).
      VERIQC_FAULT_POINT(fault::points::kDDComputeAlloc,
                         fault::FaultKind::BadAlloc);
      entries_.resize(mask_ + 1);
    }
    auto& entry = entries_[hash(lhs, rhs)];
    entry.key = detail::packPair(lhs, rhs);
    entry.result = result;
    entry.gen = generation_;
    ++stats_.inserts;
  }

  /// Returns nullptr on miss.
  [[nodiscard]] const ResultEdge* lookup(const NodeIndex lhs,
                                         const NodeIndex rhs) {
    ++stats_.lookups;
    if (entries_.empty()) {
      return nullptr;
    }
    const auto& entry = entries_[hash(lhs, rhs)];
    if (entry.gen != generation_) {
      return nullptr;
    }
    if (entry.key != detail::packPair(lhs, rhs)) {
      ++stats_.collisions;
      return nullptr;
    }
    ++stats_.hits;
    return &entry.result;
  }

  /// O(1): bumps the generation, logically emptying the table.
  void clear() noexcept {
    ++generation_;
    ++stats_.invalidations;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t lookups() const noexcept { return stats_.lookups; }
  [[nodiscard]] std::size_t hits() const noexcept { return stats_.hits; }

  /// Visits every entry of the current generation as
  /// `f(lhsIndex, rhsIndex, result)`. Read-only introspection for audits.
  template <typename F> void forEachLive(F&& f) const {
    for (const auto& entry : entries_) {
      if (entry.gen == generation_) {
        f(static_cast<NodeIndex>(entry.key >> 32U),
          static_cast<NodeIndex>(entry.key & 0xFFFFFFFFULL), entry.result);
      }
    }
  }

private:
  struct Entry {
    std::uint64_t key = 0;
    ResultEdge result{};
    std::uint64_t gen = 0;
  };

  [[nodiscard]] std::size_t hash(const NodeIndex lhs,
                                 const NodeIndex rhs) const noexcept {
    auto h = detail::packPair(lhs, rhs) * 0x9E3779B97F4A7C15ULL;
    h ^= h >> 29U;
    return static_cast<std::size_t>(h) & mask_;
  }

  std::size_t mask_;
  std::uint64_t generation_ = 1;
  std::vector<Entry> entries_;
  CacheStats stats_;
};

/// Direct-mapped, generation-stamped cache for unary DD operations keyed on
/// the node handle only.
template <typename Result> class UnaryComputeTable {
public:
  static constexpr std::size_t kDefaultEntries = 1U << 14U;

  explicit UnaryComputeTable(const std::size_t numEntries = kDefaultEntries)
      : mask_(std::bit_ceil(numEntries < 2 ? std::size_t{2} : numEntries) -
              1) {}

  void insert(const NodeIndex arg, const Result& result) {
    if (entries_.empty()) {
      // Lazy first-touch allocation: the injection point fires before the
      // resize so a simulated failure leaves the table untouched (and the
      // interrupted operation's caller unwinds with no cache to poison).
      VERIQC_FAULT_POINT(fault::points::kDDComputeAlloc,
                         fault::FaultKind::BadAlloc);
      entries_.resize(mask_ + 1);
    }
    auto& entry = entries_[hash(arg)];
    entry.arg = arg;
    entry.result = result;
    entry.gen = generation_;
    ++stats_.inserts;
  }

  [[nodiscard]] const Result* lookup(const NodeIndex arg) {
    ++stats_.lookups;
    if (entries_.empty()) {
      return nullptr;
    }
    const auto& entry = entries_[hash(arg)];
    if (entry.gen != generation_) {
      return nullptr;
    }
    if (entry.arg != arg) {
      ++stats_.collisions;
      return nullptr;
    }
    ++stats_.hits;
    return &entry.result;
  }

  /// O(1): bumps the generation, logically emptying the table.
  void clear() noexcept {
    ++generation_;
    ++stats_.invalidations;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t lookups() const noexcept { return stats_.lookups; }
  [[nodiscard]] std::size_t hits() const noexcept { return stats_.hits; }

  /// Visits every entry of the current generation as `f(arg, result)`.
  /// Read-only introspection for the audit layer.
  template <typename F> void forEachLive(F&& f) const {
    for (const auto& entry : entries_) {
      if (entry.gen == generation_) {
        f(entry.arg, entry.result);
      }
    }
  }

private:
  struct Entry {
    NodeIndex arg = kTerminalIndex;
    Result result{};
    std::uint64_t gen = 0;
  };

  [[nodiscard]] std::size_t hash(const NodeIndex arg) const noexcept {
    return detail::mixIndex(arg) & mask_;
  }

  std::size_t mask_;
  std::uint64_t generation_ = 1;
  std::vector<Entry> entries_;
  CacheStats stats_;
};

} // namespace veriqc::dd
