/// \file stimuli.hpp
/// \brief Random stimuli generation for simulation-based non-equivalence
///        detection (Burgholzer, Kueng, Wille, ASP-DAC 2021).
///
/// A stimulus is a short state-preparation circuit applied to |0...0> before
/// running both circuits under verification; differing output states witness
/// non-equivalence. Three families with increasing discriminating power (and
/// cost) are provided.
#pragma once

#include "ir/circuit.hpp"

#include <cstdint>
#include <random>

namespace veriqc::sim {

enum class StimuliKind : std::uint8_t {
  Classical,     ///< random computational basis state (X layer)
  LocalQuantum,  ///< random product state (one random U3 per qubit)
  GlobalQuantum, ///< random entangled state (U3 layer + CX chain + U3 layer)
};

[[nodiscard]] std::string toString(StimuliKind kind);

/// Generate a state-preparation circuit on `nqubits` qubits.
[[nodiscard]] QuantumCircuit generateStimulus(StimuliKind kind,
                                              std::size_t nqubits,
                                              std::mt19937_64& rng);

} // namespace veriqc::sim
