/// \file quickstart.cpp
/// \brief The paper's running example, end to end: build the GHZ preparation
///        circuit (Fig. 1a), compile it to a 5-qubit linear architecture
///        (Fig. 2), and verify the compilation with both equivalence-checking
///        paradigms (Figs. 4 and 6/7).
#include "check/manager.hpp"
#include "circuits/benchmarks.hpp"
#include "compile/architecture.hpp"
#include "compile/mapper.hpp"
#include "dd/package.hpp"
#include "sim/dd_simulator.hpp"

#include <cstdio>

int main() {
  using namespace veriqc;

  // --- Fig. 1a: GHZ state preparation --------------------------------------
  const auto g = circuits::ghz(3);
  std::printf("Original circuit G:\n%s\n", g.toString().c_str());

  // Its system matrix as a decision diagram (Fig. 3a): 5 shared nodes
  // instead of a 64-entry matrix.
  {
    dd::Package package(3);
    auto e = sim::buildUnitaryDD(package, g);
    std::printf("Decision diagram of G: %zu nodes (vs. %d matrix entries)\n\n",
                package.nodeCount(e), 64);
    package.decRef(e);
  }

  // --- Fig. 2: compilation to a 5-qubit linear architecture ----------------
  const auto arch = compile::Architecture::linear(5);
  // The paper's Fig. 2 uses the trivial initial layout q_i -> Q_i, which
  // forces a SWAP for the distant cx(q0, q2).
  compile::MapperOptions options;
  options.placement = compile::MapperOptions::Placement::Trivial;
  const auto gPrime = compile::compileForArchitecture(g, arch, options);
  std::printf("Compiled circuit G' (%s):\n%s\n", arch.name().c_str(),
              gPrime.toString().c_str());

  // --- Sec. 4: decision-diagram based verification --------------------------
  check::Configuration config;
  config.simulationRuns = 16;
  config.recordTrace = true;
  const auto ddResult = check::ddAlternatingCheck(g, gPrime, config);
  std::printf("DD alternating checker:  %s\n", ddResult.toString().c_str());
  // Fig. 4: the diagram remains identity-sized throughout the check.
  std::printf("  diagram size per step:");
  for (const auto nodes : ddResult.sizeTrace) {
    std::printf(" %zu", nodes);
  }
  std::printf("\n");

  // --- Sec. 5: ZX-calculus based verification --------------------------------
  const auto zxResult = check::zxCheck(g, gPrime);
  std::printf("ZX-calculus checker:     %s\n", zxResult.toString().c_str());

  // --- The combined flow used for t_qcec in Table 1 ---------------------------
  const auto combined = check::checkEquivalence(g, gPrime, config);
  std::printf("Combined manager:        %s\n", combined.toString().c_str());

  return check::provedEquivalent(combined.criterion) ? 0 : 1;
}
