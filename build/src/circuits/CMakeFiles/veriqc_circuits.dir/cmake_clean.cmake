file(REMOVE_RECURSE
  "CMakeFiles/veriqc_circuits.dir/benchmarks.cpp.o"
  "CMakeFiles/veriqc_circuits.dir/benchmarks.cpp.o.d"
  "CMakeFiles/veriqc_circuits.dir/error_injection.cpp.o"
  "CMakeFiles/veriqc_circuits.dir/error_injection.cpp.o.d"
  "libveriqc_circuits.a"
  "libveriqc_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veriqc_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
