/// \file tensor.hpp
/// \brief Dense tensor evaluation of small ZX-diagrams.
///
/// Evaluates a diagram as the matrix mapping inputs to outputs by summing
/// over all spider bit-assignments — exponential in the spider count and
/// intended for cross-validating the rewrite rules in tests.
#pragma once

#include "sim/dense.hpp"
#include "zx/diagram.hpp"

namespace veriqc::zx {

/// The 2^#outputs x 2^#inputs matrix realized by the diagram, up to the
/// global scalar the simplifier drops. \throws CircuitError when the diagram
/// has more than `maxSpiders` spiders (guard against runaway evaluation).
[[nodiscard]] sim::Matrix toMatrix(const ZXDiagram& diagram,
                                   std::size_t maxSpiders = 22);

/// True if a and b are proportional: a == lambda * b for some lambda != 0.
[[nodiscard]] bool proportional(const sim::Matrix& a, const sim::Matrix& b,
                                double tol = 1e-9);

} // namespace veriqc::zx
