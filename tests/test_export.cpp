#include "circuits/benchmarks.hpp"
#include "dd/export.hpp"
#include "sim/dd_simulator.hpp"
#include "zx/circuit_to_zx.hpp"
#include "zx/export.hpp"

#include <gtest/gtest.h>

#include <fstream>

namespace veriqc {
namespace {

TEST(DDExportTest, DotContainsAllNodes) {
  dd::Package p(3);
  auto e = sim::buildUnitaryDD(p, circuits::ghz(3));
  const auto dot = dd::toDot(p, e);
  EXPECT_NE(dot.find("digraph dd"), std::string::npos);
  EXPECT_NE(dot.find("terminal"), std::string::npos);
  // 5 decision nodes (Fig. 3a).
  std::size_t nodeCount = 0;
  for (std::size_t pos = dot.find("label=\"q"); pos != std::string::npos;
       pos = dot.find("label=\"q", pos + 1)) {
    ++nodeCount;
  }
  EXPECT_EQ(nodeCount, 5U);
  p.decRef(e);
}

TEST(DDExportTest, VectorDot) {
  dd::Package p(2);
  auto state = sim::simulate(p, circuits::ghz(2), p.makeZeroState());
  const auto dot = dd::toDot(p, state);
  EXPECT_NE(dot.find("digraph dd"), std::string::npos);
  p.decRef(state);
}

TEST(DDExportTest, ZeroEdgeRendersEmptyGraph) {
  dd::Package p(2);
  const auto dot = dd::toDot(p, p.zeroMatrix());
  EXPECT_NE(dot.find("digraph dd"), std::string::npos);
}

TEST(DDExportTest, WriteDotFile) {
  dd::Package p(2);
  auto e = sim::buildUnitaryDD(p, circuits::ghz(2));
  const auto path = ::testing::TempDir() + "/veriqc_dd.dot";
  dd::writeDot(p, e, path);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  p.decRef(e);
}

TEST(ZXExportTest, DotShowsSpidersAndHadamardEdges) {
  const auto d = zx::circuitToZX(circuits::ghz(3));
  const auto dot = zx::toDot(d);
  EXPECT_NE(dot.find("graph zx"), std::string::npos);
  EXPECT_NE(dot.find("#99dd99"), std::string::npos); // Z spider
  EXPECT_NE(dot.find("#dd9999"), std::string::npos); // X spider
  // The initial H on qubit 0 is a Hadamard edge.
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(ZXExportTest, PhaseLabelsAppear) {
  QuantumCircuit c(1);
  c.t(0);
  const auto dot = zx::toDot(zx::circuitToZX(c));
  EXPECT_NE(dot.find("pi/4"), std::string::npos);
}

} // namespace
} // namespace veriqc
