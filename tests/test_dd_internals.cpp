#include "circuits/benchmarks.hpp"
#include "dd/compute_table.hpp"
#include "dd/package.hpp"
#include "dd/unique_table.hpp"
#include "sim/dd_simulator.hpp"

#include <gtest/gtest.h>

namespace veriqc::dd {
namespace {

TEST(UniqueTableTest, DeduplicatesEqualNodes) {
  UniqueTable<mNode> table;
  mNode terminal;
  terminal.v = kTerminalLevel;
  auto* a = table.getFreeNode();
  a->v = 0;
  a->e = {mEdge{&terminal, {1.0, 0.0}}, mEdge{&terminal, {0.0, 0.0}},
          mEdge{&terminal, {0.0, 0.0}}, mEdge{&terminal, {1.0, 0.0}}};
  auto* canonical = table.lookup(a);
  EXPECT_EQ(canonical, a);
  auto* b = table.getFreeNode();
  b->v = 0;
  b->e = a->e;
  auto* duplicate = table.lookup(b);
  EXPECT_EQ(duplicate, a);
  EXPECT_EQ(table.size(), 1U);
}

TEST(UniqueTableTest, FreeListReusesReturnedNodes) {
  UniqueTable<mNode> table;
  auto* a = table.getFreeNode();
  table.returnNode(a);
  auto* b = table.getFreeNode();
  EXPECT_EQ(a, b);
}

TEST(UniqueTableTest, GrowsBeyondInitialBuckets) {
  UniqueTable<mNode> table;
  mNode terminal;
  terminal.v = kTerminalLevel;
  // Insert far more distinct nodes than the initial bucket count.
  for (int i = 1; i <= 3000; ++i) {
    auto* node = table.getFreeNode();
    node->v = 0;
    node->e = {mEdge{&terminal, {static_cast<double>(i), 0.0}},
               mEdge{&terminal, {0.0, 0.0}}, mEdge{&terminal, {0.0, 0.0}},
               mEdge{&terminal, {1.0, 0.0}}};
    ASSERT_EQ(table.lookup(node), node) << i;
  }
  EXPECT_EQ(table.size(), 3000U);
}

TEST(UniqueTableTest, GarbageCollectRemovesOnlyDeadNodes) {
  UniqueTable<mNode> table;
  mNode terminal;
  terminal.v = kTerminalLevel;
  auto* alive = table.getFreeNode();
  alive->v = 0;
  alive->ref = 1;
  alive->e = {mEdge{&terminal, {1.0, 0.0}}, mEdge{&terminal, {0.0, 0.0}},
              mEdge{&terminal, {0.0, 0.0}}, mEdge{&terminal, {1.0, 0.0}}};
  table.lookup(alive);
  auto* dead = table.getFreeNode();
  dead->v = 0;
  dead->ref = 0;
  dead->e = {mEdge{&terminal, {2.0, 0.0}}, mEdge{&terminal, {0.0, 0.0}},
             mEdge{&terminal, {0.0, 0.0}}, mEdge{&terminal, {1.0, 0.0}}};
  table.lookup(dead);
  EXPECT_EQ(table.garbageCollect(), 1U);
  EXPECT_EQ(table.size(), 1U);
}

TEST(ComputeTableTest, InsertLookupAndClear) {
  ComputeTable<mEdge, mEdge, mEdge> table;
  mNode node;
  node.v = 0;
  const mEdge key1{&node, {1.0, 0.0}};
  const mEdge key2{&node, {0.5, 0.0}};
  const mEdge value{&node, {0.25, 0.0}};
  EXPECT_EQ(table.lookup(key1, key2), nullptr);
  table.insert(key1, key2, value);
  const auto* hit = table.lookup(key1, key2);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, value);
  // Different weight misses.
  EXPECT_EQ(table.lookup(key2, key1), nullptr);
  table.clear();
  EXPECT_EQ(table.lookup(key1, key2), nullptr);
  EXPECT_GE(table.lookups(), 3U);
  EXPECT_EQ(table.hits(), 1U);
}

TEST(RealTableTest, NeighborBucketLookupAcrossBoundary) {
  RealTable table(1e-6);
  // Two values within tolerance but in adjacent buckets must unify.
  const double v1 = 1.0 - 1e-7;
  const double v2 = 1.0 + 1e-7;
  const double a = table.lookup(v1);
  const double b = table.lookup(v2);
  EXPECT_EQ(a, b);
}

TEST(RealTableTest, CountsDistinctValues) {
  RealTable table(1e-10);
  (void)table.lookup(0.123);
  (void)table.lookup(0.456);
  (void)table.lookup(0.123 + 1e-12); // unifies
  EXPECT_EQ(table.size(), 2U);
  table.clear();
  EXPECT_EQ(table.size(), 0U);
}

TEST(PackageTest, ZeroMatrixAbsorbsMultiplication) {
  Package p(3);
  const auto h = p.makeOperationDD(Operation(OpType::H, {}, {0}));
  const auto zero = p.zeroMatrix();
  EXPECT_TRUE(p.multiply(h, zero).isZero());
  EXPECT_TRUE(p.multiply(zero, h).isZero());
  // Adding zero is the identity of addition.
  const auto sum = p.add(h, zero);
  EXPECT_EQ(sum.p, h.p);
  EXPECT_EQ(sum.w, h.w);
}

TEST(PackageTest, ConjugateTransposeIsInvolution) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    Package p(3);
    auto e = sim::buildUnitaryDD(p, circuits::randomCircuit(3, 15, seed));
    const auto twice = p.conjugateTranspose(p.conjugateTranspose(e));
    EXPECT_EQ(twice.p, e.p) << "seed " << seed;
    EXPECT_NEAR(std::abs(twice.w - e.w), 0.0, 1e-12) << "seed " << seed;
    p.decRef(e);
  }
}

TEST(PackageTest, MultiplicationIsAssociative) {
  Package p(2);
  const auto a = p.makeOperationDD(Operation(OpType::H, {}, {0}));
  const auto b = p.makeOperationDD(Operation(OpType::X, {0}, {1}));
  const auto c = p.makeOperationDD(Operation(OpType::S, {}, {1}));
  const auto left = p.multiply(p.multiply(a, b), c);
  const auto right = p.multiply(a, p.multiply(b, c));
  EXPECT_EQ(left.p, right.p);
  EXPECT_NEAR(std::abs(left.w - right.w), 0.0, 1e-12);
}

TEST(PackageTest, BasisStateSizeMismatchThrows) {
  Package p(3);
  EXPECT_THROW((void)p.makeBasisState({true, false}), std::invalid_argument);
}

TEST(PackageTest, GetEntryOnZeroEdge) {
  Package p(2);
  EXPECT_EQ(p.getEntry(p.zeroMatrix(), 0, 0), std::complex<double>{});
  EXPECT_EQ(p.getAmplitude(p.zeroVectorEdge(), 1), std::complex<double>{});
}

TEST(PackageTest, StatsReflectLiveNodes) {
  Package p(4);
  auto e = sim::buildUnitaryDD(p, circuits::qft(4));
  const auto stats = p.stats();
  EXPECT_GT(stats.matrixNodes, 4U);
  EXPECT_GT(stats.allocations, 0U);
  EXPECT_GT(stats.realNumbers, 0U);
  p.decRef(e);
}

TEST(PackageTest, IsIdentityStrictVsGlobalPhase) {
  Package p(2);
  const auto ident = p.makeIdent();
  EXPECT_TRUE(p.isIdentity(ident, false));
  const mEdge phased{ident.p, std::complex<double>{0.0, 1.0}};
  EXPECT_TRUE(p.isIdentity(phased, true));
  EXPECT_FALSE(p.isIdentity(phased, false));
  EXPECT_FALSE(p.isIdentity(p.zeroMatrix(), true));
}

TEST(PackageTest, TraceFidelityDistinguishes) {
  Package p(2);
  const auto x = p.makeOperationDD(Operation(OpType::X, {}, {0}));
  EXPECT_LT(p.traceFidelity(x), 0.1);
  EXPECT_NEAR(p.traceFidelity(p.makeIdent()), 1.0, 1e-12);
}

TEST(PackageTest, SwapDDEqualsThreeCnotProduct) {
  Package p(3);
  const auto swap = p.makeSwapDD(0, 2);
  QuantumCircuit c(3);
  c.cx(0, 2);
  c.cx(2, 0);
  c.cx(0, 2);
  auto viaCx = sim::buildUnitaryDD(p, c);
  EXPECT_EQ(swap.p, viaCx.p);
  p.decRef(viaCx);
}

} // namespace
} // namespace veriqc::dd
