/// \file node.hpp
/// \brief Index-based node handles and edges of the decision-diagram package.
///
/// Nodes no longer exist as heap objects linked by 64-bit pointers: each node
/// is a 32-bit `NodeIndex` handle into a per-level slab (see
/// unique_table.hpp), packing `(level + 1)` into the top 8 bits and the slot
/// within that level's slab into the low 24 bits. The shared terminal is the
/// sentinel index 0 (level bits 0 = level -1, slot 0) and owns no storage.
///
/// Handle invariants:
///  - `kTerminalIndex` (0) is the only index with level bits 0; edges with
///    weight 0 always carry it.
///  - A nonzero child of a level-`v` node sits at level `v - 1` (terminal
///    iff `v == 0`): diagrams are strictly level-aligned, never skipping.
///  - Slots stay valid across slab growth (indices, not addresses, name
///    nodes), and a slot is only reused after the node it held was swept by
///    garbage collection or eagerly released — both of which invalidate
///    every compute-table entry that could still mention it.
#pragma once

#include <array>
#include <complex>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>

namespace veriqc::dd {

/// Level index of a node; the terminal sits at level -1, qubit q at level q.
using Level = std::int32_t;
inline constexpr Level kTerminalLevel = -1;

/// 32-bit node handle: bits 24..31 hold (level + 1), bits 0..23 the slot in
/// that level's slab.
using NodeIndex = std::uint32_t;
inline constexpr NodeIndex kTerminalIndex = 0;
inline constexpr std::uint32_t kLevelShift = 24U;
inline constexpr std::uint32_t kSlotMask = (1U << kLevelShift) - 1U;
/// Handles address at most 255 levels (qubits) ...
inline constexpr std::size_t kMaxLevels = 255;
/// ... of at most 2^24 node slots each.
inline constexpr std::size_t kMaxSlotsPerLevel = std::size_t{1}
                                                 << kLevelShift;

/// Level of a handle — a shift instead of a pointer dereference.
[[nodiscard]] constexpr Level levelOfIndex(const NodeIndex n) noexcept {
  return static_cast<Level>(n >> kLevelShift) - 1;
}

/// Slot of a handle within its level's slab.
[[nodiscard]] constexpr std::uint32_t slotOfIndex(const NodeIndex n) noexcept {
  return n & kSlotMask;
}

[[nodiscard]] constexpr NodeIndex makeNodeIndex(const Level v,
                                                const std::uint32_t slot) noexcept {
  return (static_cast<NodeIndex>(v + 1) << kLevelShift) | slot;
}

struct MatrixTag;
struct VectorTag;

/// A weighted edge into a (shared) decision-diagram node, identified by its
/// 32-bit slab handle.
template <typename Tag, std::size_t Arity> struct Edge {
  static constexpr std::size_t arity = Arity;

  NodeIndex n = kTerminalIndex;
  std::complex<double> w{0.0, 0.0};

  [[nodiscard]] bool isTerminal() const noexcept {
    return n == kTerminalIndex;
  }
  [[nodiscard]] bool isZero() const noexcept {
    return w == std::complex<double>{0.0, 0.0};
  }
  /// Level of the target node (free: decoded from the handle).
  [[nodiscard]] Level level() const noexcept { return levelOfIndex(n); }

  friend bool operator==(const Edge& lhs, const Edge& rhs) noexcept {
    return lhs.n == rhs.n && lhs.w == rhs.w;
  }
};

/// A matrix-DD edge: the target node's four children are the quadrants
/// [[e0, e1], [e2, e3]] of the (sub-)matrix, i.e. child 2*i + j = U_ij.
using mEdge = Edge<MatrixTag, 4>;
/// A vector-DD edge: two children for the halves [e0; e1] of the (sub-)vector.
using vEdge = Edge<VectorTag, 2>;

/// Bitwise-stable hash of a canonical complex weight. Signed zeros compare
/// equal under Edge::operator== but differ in their bit patterns, so they are
/// normalized to +0.0 before hashing — otherwise two equal candidate nodes
/// could probe different unique-table buckets and break canonicity.
inline std::size_t hashWeight(const std::complex<double>& w) noexcept {
  double rv = w.real();
  double iv = w.imag();
  if (rv == 0.0) {
    rv = 0.0; // -0.0 == 0.0, but the assignment stores +0.0
  }
  if (iv == 0.0) {
    iv = 0.0;
  }
  std::uint64_t re = 0;
  std::uint64_t im = 0;
  std::memcpy(&re, &rv, sizeof(re));
  std::memcpy(&im, &iv, sizeof(im));
  return std::hash<std::uint64_t>{}(re * 0x9E3779B97F4A7C15ULL ^ im);
}

inline std::size_t combineHash(std::size_t seed, std::size_t value) noexcept {
  return seed ^ (value + 0x9E3779B97F4A7C15ULL + (seed << 6) + (seed >> 2));
}

/// Hash of a node's child tuple: packed child handles plus the (signed-zero
/// normalized) weight hashes.
template <std::size_t Arity>
std::size_t
hashNodeChildren(const std::array<NodeIndex, Arity>& children,
                 const std::array<std::complex<double>, Arity>& weights) noexcept {
  std::size_t h = 0;
  for (std::size_t i = 0; i < Arity; ++i) {
    h = combineHash(h, children[i]);
    h = combineHash(h, hashWeight(weights[i]));
  }
  return h;
}

} // namespace veriqc::dd
