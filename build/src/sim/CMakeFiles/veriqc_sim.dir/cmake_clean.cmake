file(REMOVE_RECURSE
  "CMakeFiles/veriqc_sim.dir/dd_simulator.cpp.o"
  "CMakeFiles/veriqc_sim.dir/dd_simulator.cpp.o.d"
  "CMakeFiles/veriqc_sim.dir/dense.cpp.o"
  "CMakeFiles/veriqc_sim.dir/dense.cpp.o.d"
  "CMakeFiles/veriqc_sim.dir/stimuli.cpp.o"
  "CMakeFiles/veriqc_sim.dir/stimuli.cpp.o.d"
  "libveriqc_sim.a"
  "libveriqc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veriqc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
