# Empty compiler generated dependencies file for veriqc_opt.
# This may be replaced when dependencies are built.
