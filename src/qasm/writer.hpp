/// \file writer.hpp
/// \brief OpenQASM 2.0 output.
#pragma once

#include "ir/circuit.hpp"

#include <string>

namespace veriqc::qasm {

/// Serialize a circuit to OpenQASM 2.0. Permutations are not representable in
/// QASM; when the circuit carries nontrivial permutations they are emitted as
/// `// i ...` / `// o ...` comment lines (the format QCEC uses), which
/// `parse` understands only as comments — use withExplicitPermutations() to
/// fold them into gates when a fully portable file is needed.
/// \throws CircuitError for operations with no qelib1 spelling (more than
///         four controls, controlled SWAP with extra controls, ...).
[[nodiscard]] std::string write(const QuantumCircuit& circuit);

/// Write to a file.
void writeFile(const QuantumCircuit& circuit, const std::string& path);

} // namespace veriqc::qasm
