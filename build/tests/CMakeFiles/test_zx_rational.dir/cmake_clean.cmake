file(REMOVE_RECURSE
  "CMakeFiles/test_zx_rational.dir/test_zx_rational.cpp.o"
  "CMakeFiles/test_zx_rational.dir/test_zx_rational.cpp.o.d"
  "test_zx_rational"
  "test_zx_rational.pdb"
  "test_zx_rational[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zx_rational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
