#include "circuits/benchmarks.hpp"
#include "ir/circuit.hpp"
#include "sim/dense.hpp"

#include <gtest/gtest.h>

namespace veriqc {
namespace {

QuantumCircuit randomlyPermuted(QuantumCircuit c, const std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<Qubit> layout(c.numQubits());
  std::iota(layout.begin(), layout.end(), 0U);
  std::shuffle(layout.begin(), layout.end(), rng);
  std::vector<Qubit> outPerm(c.numQubits());
  std::iota(outPerm.begin(), outPerm.end(), 0U);
  std::shuffle(outPerm.begin(), outPerm.end(), rng);
  c.initialLayout() = Permutation{layout};
  c.outputPermutation() = Permutation{outPerm};
  return c;
}

TEST(CircuitTest, AppendValidates) {
  QuantumCircuit c(2);
  EXPECT_THROW(c.x(5), CircuitError);
  EXPECT_NO_THROW(c.x(1));
}

TEST(CircuitTest, GateCountSkipsMeta) {
  QuantumCircuit c(2);
  c.h(0);
  c.barrier();
  c.cx(0, 1);
  EXPECT_EQ(c.size(), 3U);
  EXPECT_EQ(c.gateCount(), 2U);
  EXPECT_EQ(c.multiQubitGateCount(), 1U);
}

TEST(CircuitTest, DepthOfGhz) {
  EXPECT_EQ(circuits::ghz(4).depth(), 4U); // H then 3 sequential CNOTs
}

TEST(CircuitTest, WireIsIdle) {
  QuantumCircuit c(3);
  c.cx(0, 2);
  EXPECT_FALSE(c.wireIsIdle(0));
  EXPECT_TRUE(c.wireIsIdle(1));
  EXPECT_FALSE(c.wireIsIdle(2));
}

TEST(CircuitTest, InvertedComposesToIdentity) {
  const auto c = circuits::randomCircuit(3, 40, 11);
  const auto u = sim::circuitUnitary(c);
  const auto v = sim::circuitUnitary(c.inverted());
  const auto prod = v.multiply(u);
  EXPECT_TRUE(prod.equalsUpToGlobalPhase(sim::Matrix::identity(8)));
}

TEST(CircuitTest, InvertedSwapsPermutations) {
  auto c = randomlyPermuted(circuits::randomCircuit(3, 20, 5), 6);
  const auto inv = c.inverted();
  EXPECT_EQ(inv.initialLayout(), c.outputPermutation());
  EXPECT_EQ(inv.outputPermutation(), c.initialLayout());
  const auto u = sim::circuitUnitary(c);
  const auto v = sim::circuitUnitary(inv);
  EXPECT_TRUE(v.multiply(u).equalsUpToGlobalPhase(sim::Matrix::identity(8)));
}

TEST(CircuitTest, WithExplicitPermutationsPreservesSemantics) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto c = randomlyPermuted(circuits::randomCircuit(4, 25, seed), seed + 100);
    const auto folded = c.withExplicitPermutations();
    EXPECT_TRUE(folded.initialLayout().isIdentity());
    EXPECT_TRUE(folded.outputPermutation().isIdentity());
    const auto u = sim::circuitUnitary(c);
    const auto v = sim::circuitUnitary(folded);
    EXPECT_TRUE(u.equals(v, 1e-9)) << "seed " << seed;
  }
}

TEST(CircuitTest, PaddedPreservesSemanticsOnOriginalQubits) {
  auto c = randomlyPermuted(circuits::randomCircuit(2, 15, 3), 4);
  const auto p = c.padded(3);
  EXPECT_EQ(p.numQubits(), 3U);
  p.validate();
  const auto u = sim::circuitUnitary(c);
  const auto v = sim::circuitUnitary(p);
  // The padded unitary acts as u (x) I: check the top-left block.
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t col = 0; col < 4; ++col) {
      EXPECT_NEAR(std::abs(v.at(r, col) - u.at(r, col)), 0.0, 1e-12);
    }
  }
  EXPECT_THROW(p.padded(1), CircuitError);
}

TEST(CircuitTest, AlignCircuitsStripsCommonIdleQubits) {
  QuantumCircuit a(5);
  a.h(0);
  a.cx(0, 3);
  QuantumCircuit b(5);
  b.h(0);
  b.cx(0, 3);
  b.z(2);
  const auto [a2, b2] = alignCircuits(a, b);
  // Qubits 1 and 4 are idle in both -> stripped.
  EXPECT_EQ(a2.numQubits(), 3U);
  EXPECT_EQ(b2.numQubits(), 3U);
  a2.validate();
  b2.validate();
  const auto ua = sim::circuitUnitary(a2);
  const auto ub = sim::circuitUnitary(b2);
  EXPECT_FALSE(ua.equalsUpToGlobalPhase(ub)); // differ by the Z
}

TEST(CircuitTest, AlignCircuitsPadsDifferentWidths) {
  const auto a = circuits::ghz(3);
  auto b = circuits::ghz(3).padded(5);
  const auto [a2, b2] = alignCircuits(a, b);
  EXPECT_EQ(a2.numQubits(), b2.numQubits());
  const auto ua = sim::circuitUnitary(a2);
  const auto ub = sim::circuitUnitary(b2);
  EXPECT_TRUE(ua.equalsUpToGlobalPhase(ub));
}

TEST(CircuitTest, AlignPreservesEquivalenceWithPermutations) {
  // A circuit on 6 wires using only 3, with nontrivial layout, against the
  // plain 3-qubit version.
  const auto small = circuits::ghz(3);
  QuantumCircuit big(6);
  // Wires 1, 3, 4 hold logical 0, 1, 2.
  big.initialLayout() = Permutation({3, 0, 4, 1, 2, 5});
  big.outputPermutation() = Permutation({3, 0, 4, 1, 2, 5});
  big.h(1);
  big.cx(1, 3);
  big.cx(1, 4);
  const auto [a2, b2] = alignCircuits(small, big);
  EXPECT_EQ(a2.numQubits(), 3U);
  EXPECT_EQ(b2.numQubits(), 3U);
  const auto ua = sim::circuitUnitary(a2);
  const auto ub = sim::circuitUnitary(b2);
  EXPECT_TRUE(ua.equalsUpToGlobalPhase(ub));
}

TEST(CircuitTest, ValidateChecksPermutationSizes) {
  QuantumCircuit c(3);
  c.initialLayout() = Permutation({0, 1});
  EXPECT_THROW(c.validate(), CircuitError);
}

TEST(CircuitTest, ToStringContainsName) {
  const auto c = circuits::ghz(3);
  EXPECT_NE(c.toString().find("ghz_3"), std::string::npos);
}

} // namespace
} // namespace veriqc
