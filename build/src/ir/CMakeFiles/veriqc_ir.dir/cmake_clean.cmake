file(REMOVE_RECURSE
  "CMakeFiles/veriqc_ir.dir/circuit.cpp.o"
  "CMakeFiles/veriqc_ir.dir/circuit.cpp.o.d"
  "CMakeFiles/veriqc_ir.dir/gate_matrix.cpp.o"
  "CMakeFiles/veriqc_ir.dir/gate_matrix.cpp.o.d"
  "CMakeFiles/veriqc_ir.dir/op_type.cpp.o"
  "CMakeFiles/veriqc_ir.dir/op_type.cpp.o.d"
  "CMakeFiles/veriqc_ir.dir/operation.cpp.o"
  "CMakeFiles/veriqc_ir.dir/operation.cpp.o.d"
  "CMakeFiles/veriqc_ir.dir/permutation.cpp.o"
  "CMakeFiles/veriqc_ir.dir/permutation.cpp.o.d"
  "libveriqc_ir.a"
  "libveriqc_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veriqc_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
