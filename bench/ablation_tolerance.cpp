/// \file ablation_tolerance.cpp
/// \brief The numerical-instability effect of Sec. 3 / Sec. 6.2 made
///        measurable: verifying a QFT against an angle-perturbed copy (the
///        kind of sub-ulp drift real compilation introduces) with different
///        DD value-interning tolerances. With a sane tolerance the
///        near-identical nodes merge and the diagram stays identity-sized;
///        with tolerance ~0 the redundancies are no longer captured and the
///        intermediate decision diagram blows up, while the ZX engine's
///        phase snapping is unaffected.
#include "table_common.hpp"

#include "check/dd_checkers.hpp"
#include "check/zx_checker.hpp"
#include "circuits/benchmarks.hpp"

#include <cstdio>
#include <random>

namespace {

using namespace veriqc;

QuantumCircuit perturbAngles(const QuantumCircuit& circuit, const double eps,
                             const std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> jitter(-eps, eps);
  QuantumCircuit result = circuit;
  for (auto& op : result.ops()) {
    for (auto& param : op.params) {
      param += jitter(rng);
    }
  }
  return result;
}

} // namespace

int main() {
  const double eps = 1e-13;
  std::printf("\nAblation: DD value-interning tolerance vs. numerical "
              "noise (QFT vs. QFT with +-%.0e angle jitter)\n",
              eps);
  std::printf("%4s | %12s | %10s | %10s | %8s | %10s\n", "n", "tolerance",
              "verdict", "t_dd[s]", "peak", "HS fid");
  for (const std::size_t n : {6U, 8U, 10U, 12U}) {
    const auto g = circuits::qft(n);
    const auto gPrime = perturbAngles(g, eps, n);
    for (const double tol : {dd::RealTable::kDefaultTolerance, 1e-15, 0.0}) {
      check::Configuration config;
      config.numericalTolerance = tol;
      config.checkTolerance = 1e-6;
      const auto deadline =
          std::chrono::steady_clock::now() + bench::benchTimeout();
      const auto result =
          check::ddAlternatingCheck(g, gPrime, config, [deadline] {
            return std::chrono::steady_clock::now() >= deadline;
          });
      std::printf("%4zu | %12.2e | %10s | %10.3f | %8zu | %10.7f\n", n, tol,
                  bench::verdictMark(result.criterion), result.runtimeSeconds,
                  result.peakNodes, result.hilbertSchmidtFidelity);
      std::fflush(stdout);
    }
    // ZX for comparison (phase snapping absorbs the jitter).
    const auto zx = bench::runZxStyle(g, gPrime);
    std::printf("%4zu | %12s | %10s | %10.3f |        - |          -\n", n,
                "zx", bench::verdictMark(zx.criterion), zx.seconds);
  }
  return 0;
}
