/// \file manager.hpp
/// \brief The combined equivalence-checking flow of the case study.
///
/// Mirrors the configuration evaluated in the paper (Sec. 6.1): the DD
/// alternating checker runs in parallel with a sequence of random-stimuli
/// simulation runs; if the simulations prove non-equivalence the alternating
/// check is terminated early. The ZX engine can be enabled as a third
/// concurrent engine or invoked standalone via zxCheck().
#pragma once

#include "check/dd_checkers.hpp"
#include "check/result.hpp"
#include "check/zx_checker.hpp"
#include "ir/circuit.hpp"

#include <vector>

namespace veriqc::check {

class EquivalenceCheckingManager {
public:
  EquivalenceCheckingManager(QuantumCircuit c1, QuantumCircuit c2,
                             Configuration config = {});

  /// Run the configured engines and return the combined verdict.
  [[nodiscard]] Result run();

  /// Per-engine results of the last run (in engine launch order).
  [[nodiscard]] const std::vector<Result>& engineResults() const noexcept {
    return engineResults_;
  }

private:
  QuantumCircuit c1_;
  QuantumCircuit c2_;
  Configuration config_;
  std::vector<Result> engineResults_;
};

/// Convenience wrapper: construct a manager and run it.
[[nodiscard]] Result checkEquivalence(const QuantumCircuit& c1,
                                      const QuantumCircuit& c2,
                                      const Configuration& config = {});

} // namespace veriqc::check
