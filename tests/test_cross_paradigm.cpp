/// Randomized agreement checks between the DD and ZX paradigms, plus the
/// manager's sequential-skip and the ZX checker's stop-attribution contracts.
#include "check/manager.hpp"
#include "circuits/benchmarks.hpp"
#include "circuits/error_injection.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <thread>
#include <vector>

namespace veriqc::check {
namespace {

Configuration quickConfig() {
  Configuration config;
  config.simulationRuns = 8;
  config.seed = 7;
  return config;
}

// --- cross-paradigm agreement ------------------------------------------------

TEST(CrossParadigmTest, ZXAndAlternatingAgreeOnCliffordTInverses) {
  // Composing a Clifford+T circuit with its own inverse lets the phases
  // cancel (Sec. 6.2), so both paradigms must prove equivalence.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto c = circuits::randomCliffordT(4, 10, 0.25, seed);
    const auto zx = zxCheck(c, c);
    EXPECT_EQ(zx.criterion, EquivalenceCriterion::EquivalentUpToGlobalPhase)
        << "seed " << seed << ": " << zx.toString();
    const auto dd = ddAlternatingCheck(c, c, quickConfig());
    EXPECT_TRUE(provedEquivalent(dd.criterion)) << "seed " << seed;
  }
}

TEST(CrossParadigmTest, SingleGateMutantsNeverProveEquivalent) {
  // The ZX engine is incomplete but sound: for a circuit damaged by either
  // error model it may fail to decide, but it must never certify
  // equivalence — and the DD checker must prove non-equivalence.
  std::mt19937_64 rng(17);
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto base = circuits::randomCliffordT(4, 12, 0.2, seed);
    const auto mutant = (seed % 2 == 0)
                            ? circuits::removeRandomGate(base, rng)
                            : circuits::flipRandomCnot(base, rng);
    ASSERT_TRUE(mutant.has_value()) << "seed " << seed;
    const auto dd = ddAlternatingCheck(base, *mutant, quickConfig());
    if (dd.criterion != EquivalenceCriterion::NotEquivalent) {
      // Rarely the mutation is a no-op (e.g. flipping a CNOT sandwiched in
      // a symmetric context); agreement is all that can be required then.
      continue;
    }
    const auto zx = zxCheck(base, *mutant);
    EXPECT_FALSE(provedEquivalent(zx.criterion))
        << "seed " << seed << ": " << zx.toString();
  }
}

// --- manager sequential skipping ---------------------------------------------

TEST(ManagerSequentialTest, SkipsRemainingEnginesAfterDefinitiveVerdict) {
  Configuration config = quickConfig();
  config.parallel = false;
  config.runZX = true;
  EquivalenceCheckingManager manager(circuits::ghz(3), circuits::ghz(3),
                                     config);
  const auto result = manager.run();
  EXPECT_TRUE(provedEquivalent(result.criterion)) << result.toString();
  const auto& slots = manager.engineResults();
  ASSERT_EQ(slots.size(), 3U);
  // The alternating checker settles the question immediately; everything
  // after it must be left untouched and honestly marked as skipped.
  EXPECT_TRUE(isDefinitive(slots[0].criterion)) << slots[0].toString();
  EXPECT_EQ(slots[1].criterion, EquivalenceCriterion::NotRun);
  EXPECT_EQ(slots[2].criterion, EquivalenceCriterion::NotRun);
  EXPECT_EQ(slots[2].method, "zx-calculus");
  EXPECT_EQ(slots[1].runtimeSeconds, 0.0);
}

TEST(ManagerSequentialTest, NotRunSlotsNeverWinTheCombinedVerdict) {
  Configuration config = quickConfig();
  config.parallel = false;
  config.runAlternating = false;
  config.runSimulation = false;
  config.runZX = true;
  // Arbitrary-angle optimized pairs can leave the (incomplete) ZX engine
  // with NoInformation; the combined verdict must still be that engine's
  // real outcome, never a synthetic NotRun.
  auto damaged = circuits::ghz(3);
  damaged.ops().pop_back();
  const auto result = checkEquivalence(circuits::ghz(3), damaged, config);
  EXPECT_EQ(result.criterion, EquivalenceCriterion::NoInformation)
      << result.toString();
}

// --- ZX checker stop attribution ---------------------------------------------

TEST(ZXStopAttributionTest, SiblingCancellationIsNotATimeout) {
  const auto c = circuits::randomCliffordT(4, 10, 0.2, 1);
  Configuration config; // no deadline configured
  const auto result = zxCheck(c, c, config, [] { return true; });
  EXPECT_EQ(result.criterion, EquivalenceCriterion::Cancelled)
      << result.toString();
}

TEST(ZXStopAttributionTest, DeadlineExpiryIsATimeout) {
  // The checker measures its deadline from its own start, so the workload
  // must reliably outlast the 1 ms budget (this reduction takes tens of
  // milliseconds even in Release builds).
  const auto c = circuits::randomClifford(16, 200, 2);
  Configuration config;
  config.timeout = std::chrono::milliseconds(1);
  const auto result = zxCheck(c, c, config);
  EXPECT_EQ(result.criterion, EquivalenceCriterion::Timeout)
      << result.toString();
}

TEST(ZXStopAttributionTest, CompletedRunReportsRuleStats) {
  const auto c = circuits::randomCliffordT(4, 10, 0.25, 3);
  const auto result = zxCheck(c, c);
  EXPECT_EQ(result.criterion, EquivalenceCriterion::EquivalentUpToGlobalPhase);
  EXPECT_GT(result.rewrites, 0U);
  // The structured per-rule stats include spider fusion. Their rewrite
  // counts are a subset of the engine total: toGraphLike() fuses spiders
  // during normalization, outside any attributed worklist pass.
  ASSERT_FALSE(result.zxRuleStats.empty());
  std::size_t total = 0;
  bool sawSpider = false;
  for (const auto& stat : result.zxRuleStats) {
    EXPECT_GT(stat.candidates, 0U) << stat.rule;
    EXPECT_GE(stat.candidates, stat.matches) << stat.rule;
    total += stat.rewrites;
    sawSpider = sawSpider || stat.rule == "spider";
  }
  EXPECT_TRUE(sawSpider);
  EXPECT_GT(total, 0U);
  EXPECT_LE(total, result.rewrites);
  // The text digest is rendered from the same data and reaches the
  // human-readable summary.
  EXPECT_NE(result.zxRuleDigest().find("spider"), std::string::npos)
      << result.zxRuleDigest();
  EXPECT_NE(result.toString().find("zx rules"), std::string::npos);
  // The engine also feeds the named counter registry.
  EXPECT_TRUE(result.counters.contains("zx.rewrites"));
}

// --- configuration knobs -----------------------------------------------------

TEST(ZXConfigTest, GadgetRulesOffStillProvesCliffordPairs) {
  Configuration config;
  config.zxGadgetRules = false;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto c = circuits::randomClifford(4, 12, seed);
    const auto result = zxCheck(c, c, config);
    EXPECT_EQ(result.criterion,
              EquivalenceCriterion::EquivalentUpToGlobalPhase)
        << "seed " << seed << ": " << result.toString();
  }
}

TEST(ZXConfigTest, PhaseSnapRecoversNoisyCliffordTAngles) {
  // Perturb every T phase by ~1e-13: with the default snap tolerance the
  // ZX engine sees exact PiRationals and still proves equivalence.
  const auto clean = circuits::randomCliffordT(4, 12, 0.3, 9);
  auto noisy = clean;
  for (auto& op : noisy.ops()) {
    if (op.type == OpType::T) {
      op.type = OpType::RZ;
      op.params = {PI / 4.0 + 1e-13};
    }
  }
  const auto snapped = zxCheck(clean, noisy);
  EXPECT_EQ(snapped.criterion,
            EquivalenceCriterion::EquivalentUpToGlobalPhase)
      << snapped.toString();
  // With snapping effectively disabled the noisy angles stay irrational,
  // the phases no longer cancel symbolically, and the sound engine must
  // refuse to certify (it may not claim non-equivalence either).
  Configuration strict;
  strict.zxPhaseSnapTolerance = 0.0;
  const auto unsnapped = zxCheck(clean, noisy, strict);
  EXPECT_NE(unsnapped.criterion, EquivalenceCriterion::NotEquivalent);
}

// --- DD checker stop attribution ---------------------------------------------
//
// The same contract zxCheck already honors: a tripped stop token before the
// locally tracked deadline can only mean a sibling engine's definitive
// verdict, so the slot must read Cancelled; only past the deadline is it a
// Timeout. Both DD gate-application checkers used to stamp Timeout
// unconditionally.

TEST(DDStopAttributionTest, AlternatingSiblingCancellationIsNotATimeout) {
  const auto c = circuits::randomCircuit(6, 200, 1);
  Configuration config = quickConfig(); // no deadline configured
  const auto result = ddAlternatingCheck(c, c, config, [] { return true; });
  EXPECT_EQ(result.criterion, EquivalenceCriterion::Cancelled)
      << result.toString();
}

TEST(DDStopAttributionTest, AlternatingDeadlineExpiryIsATimeout) {
  const auto c = circuits::randomCircuit(6, 200, 1);
  Configuration config = quickConfig();
  config.timeout = std::chrono::milliseconds(1);
  // The token itself outwaits the 1 ms budget before tripping, so by the
  // time the checker attributes the stop the deadline has provably passed —
  // deterministic regardless of how fast the gate loop runs.
  const auto result = ddAlternatingCheck(c, c, config, [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return true;
  });
  EXPECT_EQ(result.criterion, EquivalenceCriterion::Timeout)
      << result.toString();
}

TEST(DDStopAttributionTest, AbortedAlternatingRunKeepsTruncatedTrace) {
  const auto c = circuits::randomCircuit(6, 200, 1);
  Configuration config = quickConfig();
  config.recordTrace = true;
  // Let a few gates through before tripping so there is a prefix to keep.
  std::size_t polls = 0;
  const auto result =
      ddAlternatingCheck(c, c, config, [&polls] { return ++polls > 8; });
  EXPECT_EQ(result.criterion, EquivalenceCriterion::Cancelled)
      << result.toString();
  EXPECT_FALSE(result.sizeTrace.empty())
      << "early-return path dropped the requested size trace";
  EXPECT_GT(result.peakNodes, 0U);
}

TEST(DDStopAttributionTest, CompilationFlowSiblingCancellationIsNotATimeout) {
  const auto original = circuits::ghz(3);
  const auto compiled = original;
  const std::vector<std::size_t> counts(original.size(), 1);
  const auto result = ddCompilationFlowCheck(original, compiled, counts,
                                             quickConfig(),
                                             [] { return true; });
  EXPECT_EQ(result.criterion, EquivalenceCriterion::Cancelled)
      << result.toString();
}

TEST(DDStopAttributionTest, CompilationFlowPollsInsideLargeGroups) {
  // One original gate expanding into a huge compiled group: a checker that
  // polls only once per group would apply the whole group — and with it the
  // entire (equivalent) circuit — before ever seeing the second token call,
  // returning Equivalent instead of honoring the stop.
  QuantumCircuit original(1);
  original.h(0);
  QuantumCircuit compiled(1);
  compiled.h(0);
  for (int i = 0; i < 300; ++i) {
    compiled.x(0);
    compiled.x(0);
  }
  const std::vector<std::size_t> counts = {compiled.size()};
  std::size_t polls = 0;
  const auto result = ddCompilationFlowCheck(
      original, compiled, counts, quickConfig(),
      [&polls] { return ++polls > 1; });
  EXPECT_EQ(result.criterion, EquivalenceCriterion::Cancelled)
      << result.toString();
}

TEST(ManagerCancellationTest, SiblingVerdictRecordsCancelledSlot) {
  // Parallel manager with no deadline: the alternating checker proves the
  // pair equivalent in milliseconds while the simulation engine faces far
  // more runs than it can finish; its slot must then read Cancelled — with
  // no timeout configured, Timeout would be a misattribution.
  Configuration config;
  config.parallel = true;
  config.simulationRuns = 100000;
  config.simulationThreads = 1;
  config.seed = 7;
  EquivalenceCheckingManager manager(circuits::qft(10), circuits::qft(10),
                                     config);
  const auto combined = manager.run();
  EXPECT_TRUE(provedEquivalent(combined.criterion)) << combined.toString();
  const auto& slots = manager.engineResults();
  ASSERT_EQ(slots.size(), 2U);
  EXPECT_TRUE(isDefinitive(slots[0].criterion)) << slots[0].toString();
  EXPECT_NE(slots[1].criterion, EquivalenceCriterion::Timeout)
      << slots[1].toString();
  // The slot either got cancelled mid-flight or — on a very fast machine —
  // never observed the flag between two runs; both are honest, Timeout is
  // not. On every realistic schedule 100k runs cannot complete, so also
  // assert the cancellation actually happened.
  EXPECT_EQ(slots[1].criterion, EquivalenceCriterion::Cancelled)
      << slots[1].toString();
}

// --- sharded alternating checker ---------------------------------------------
//
// checkThreads > 1 splits both gate sequences into per-slot chunks whose
// partial products are built in private DD packages and then
// interleave-combined. The verdict contract: identical to the sequential
// scheme for every slot count, with the same stop-attribution semantics.

TEST(ShardedAlternatingTest, VerdictIsIndependentOfSlotCount) {
  const auto equivalent = circuits::randomCliffordT(5, 40, 0.2, 3);
  std::mt19937_64 rng(23);
  const auto base = circuits::randomCliffordT(5, 40, 0.2, 4);
  const auto mutant = circuits::flipRandomCnot(base, rng);
  ASSERT_TRUE(mutant.has_value());
  Configuration config = quickConfig();
  const auto baselineEq = ddAlternatingCheck(equivalent, equivalent, config);
  const auto baselineNe = ddAlternatingCheck(base, *mutant, config);
  for (const std::size_t threads : {2U, 4U, 8U}) {
    config.checkThreads = threads;
    const auto eq = ddAlternatingCheck(equivalent, equivalent, config);
    EXPECT_EQ(eq.criterion, baselineEq.criterion) << "threads " << threads;
    EXPECT_NEAR(eq.hilbertSchmidtFidelity, baselineEq.hilbertSchmidtFidelity,
                1e-12)
        << "threads " << threads;
    const auto ne = ddAlternatingCheck(base, *mutant, config);
    EXPECT_EQ(ne.criterion, baselineNe.criterion) << "threads " << threads;
  }
}

TEST(ShardedAlternatingTest, ShardedSwapHeavyCircuitsStayEquivalent) {
  // SWAP reconstruction routes through the permutation tracker; each shard
  // snapshots the permutation state at its chunk boundary, which this pair
  // exercises hard.
  auto left = circuits::qft(6);
  auto right = circuits::qft(6);
  Configuration config = quickConfig();
  config.checkThreads = 4;
  const auto result = ddAlternatingCheck(left, right, config);
  EXPECT_TRUE(provedEquivalent(result.criterion)) << result.toString();
}

TEST(ShardedAlternatingTest, SiblingCancellationIsNotATimeout) {
  const auto c = circuits::randomCircuit(6, 200, 1);
  Configuration config = quickConfig(); // no deadline configured
  config.checkThreads = 4;
  const auto result = ddAlternatingCheck(c, c, config, [] { return true; });
  EXPECT_EQ(result.criterion, EquivalenceCriterion::Cancelled)
      << result.toString();
}

TEST(ShardedAlternatingTest, DeadlineExpiryIsATimeout) {
  const auto c = circuits::randomCircuit(6, 200, 1);
  Configuration config = quickConfig();
  config.checkThreads = 4;
  config.timeout = std::chrono::milliseconds(1);
  const auto result = ddAlternatingCheck(c, c, config, [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return true;
  });
  EXPECT_EQ(result.criterion, EquivalenceCriterion::Timeout)
      << result.toString();
}

TEST(ShardedAlternatingTest, CompilationFlowVerdictMatchesSequential) {
  const auto original = circuits::qft(5);
  const auto compiled = original;
  const std::vector<std::size_t> counts(original.size(), 1);
  Configuration config = quickConfig();
  const auto baseline =
      ddCompilationFlowCheck(original, compiled, counts, config);
  for (const std::size_t threads : {2U, 4U}) {
    config.checkThreads = threads;
    const auto sharded =
        ddCompilationFlowCheck(original, compiled, counts, config);
    EXPECT_EQ(sharded.criterion, baseline.criterion) << "threads " << threads;
  }
}

TEST(ShardedAlternatingTest, ResourceBudgetStillTripsWhenSharded) {
  const auto c = circuits::randomCircuit(8, 120, 2);
  Configuration config = quickConfig();
  config.checkThreads = 4;
  config.maxDDNodes = 8; // far below what any shard needs
  const auto result = ddAlternatingCheck(c, c, config);
  EXPECT_EQ(result.criterion, EquivalenceCriterion::ResourceExhausted)
      << result.toString();
  EXPECT_FALSE(result.errorMessage.empty());
}

// --- simulation checker stimulus accounting ----------------------------------

TEST(SimulationAccountingTest, PreTrippedStopClaimsNoStimuli) {
  // Regression: the worker loop used to claim a stimulus index *before*
  // polling the stop token, so a cancelled run still bumped the claim
  // counter for every worker — phantom stimuli that were never simulated.
  // With the poll moved before the claim, a pre-tripped token must leave
  // both counters at exactly zero.
  const auto c = circuits::randomCliffordT(4, 12, 0.2, 5);
  Configuration config = quickConfig();
  config.simulationRuns = 64;
  config.simulationThreads = 4;
  const auto result = ddSimulationCheck(c, c, config, [] { return true; });
  EXPECT_EQ(result.criterion, EquivalenceCriterion::Cancelled)
      << result.toString();
  EXPECT_EQ(result.performedSimulations, 0U);
  ASSERT_TRUE(result.counters.contains("sim.stimuli.claimed"));
  ASSERT_TRUE(result.counters.contains("sim.stimuli.performed"));
  EXPECT_EQ(result.counters.value("sim.stimuli.claimed"), 0.0);
  EXPECT_EQ(result.counters.value("sim.stimuli.performed"), 0.0);
}

TEST(SimulationAccountingTest, CompletedRunClaimsExactlyTheConfiguredRuns) {
  const auto c = circuits::randomCliffordT(4, 12, 0.2, 6);
  Configuration config = quickConfig();
  config.simulationRuns = 8;
  config.simulationThreads = 4;
  const auto result = ddSimulationCheck(c, c, config);
  EXPECT_EQ(result.criterion, EquivalenceCriterion::ProbablyEquivalent)
      << result.toString();
  EXPECT_EQ(result.counters.value("sim.stimuli.claimed"), 8.0);
  EXPECT_EQ(result.counters.value("sim.stimuli.performed"), 8.0);
  EXPECT_EQ(result.performedSimulations, 8U);
}

TEST(SimulationAccountingTest, MidRunCancellationNeverOverclaims) {
  // Trip the token after a few polls: claimed counts only indices whose
  // simulation actually started, performed only those that finished, and
  // neither may exceed the configured run count.
  const auto c = circuits::randomCliffordT(4, 16, 0.2, 7);
  Configuration config = quickConfig();
  config.simulationRuns = 32;
  config.simulationThreads = 4;
  std::atomic<std::size_t> polls{0};
  const auto result = ddSimulationCheck(
      c, c, config, [&polls] { return polls.fetch_add(1) >= 6; });
  const auto claimed = result.counters.value("sim.stimuli.claimed");
  const auto performed = result.counters.value("sim.stimuli.performed");
  EXPECT_LE(performed, claimed);
  EXPECT_LE(claimed, 32.0);
  EXPECT_EQ(static_cast<double>(result.performedSimulations), performed);
}

} // namespace
} // namespace veriqc::check
