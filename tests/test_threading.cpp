/// Thread-stress tests for the parallel manager and the multi-threaded
/// simulation checker. These are the workload scripts/check_tsan.sh runs
/// under ThreadSanitizer: they deliberately drive every concurrency path —
/// parallel engines racing on the stop token, worker pools claiming stimuli
/// from the shared counter, cancellation mid-simulation — with enough
/// repetitions for a data race to get a chance to interleave.
#include "check/manager.hpp"
#include "check/task_pool.hpp"
#include "circuits/benchmarks.hpp"
#include "dd/shared_cache.hpp"
#include "ir/circuit.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

namespace veriqc {
namespace {

check::Configuration stressConfig() {
  check::Configuration config;
  config.parallel = true;
  config.runAlternating = true;
  config.runSimulation = true;
  config.simulationThreads = 4;
  config.simulationRuns = 12;
  return config;
}

TEST(ThreadingStressTest, ParallelManagerOnEquivalentCircuits) {
  const auto a = circuits::qft(5);
  const auto b = circuits::qft(5);
  for (int repeat = 0; repeat < 3; ++repeat) {
    const auto result = check::checkEquivalence(a, b, stressConfig());
    EXPECT_TRUE(provedEquivalent(result.criterion)) << result.toString();
  }
}

TEST(ThreadingStressTest, ParallelManagerRacesToNonEquivalence) {
  // The simulation workers find the counterexample and cancel the
  // alternating engine mid-flight — the interesting cross-thread path.
  auto a = circuits::qft(5);
  auto b = circuits::qft(5);
  b.z(2);
  for (int repeat = 0; repeat < 3; ++repeat) {
    const auto result = check::checkEquivalence(a, b, stressConfig());
    EXPECT_EQ(result.criterion, check::EquivalenceCriterion::NotEquivalent);
  }
}

TEST(ThreadingStressTest, SimulationWorkerPoolIsDeterministic) {
  // The first counterexample index must be a function of (seed, stimuli)
  // alone: every thread count has to report the same stimulus.
  auto a = circuits::ghz(6);
  auto b = circuits::ghz(6);
  b.x(3);
  std::vector<std::int64_t> witnesses;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
    check::Configuration config;
    config.runAlternating = false;
    config.runZX = false;
    config.simulationThreads = threads;
    config.simulationRuns = 16;
    const auto result = check::checkEquivalence(a, b, config);
    ASSERT_EQ(result.criterion, check::EquivalenceCriterion::NotEquivalent);
    witnesses.push_back(result.counterexampleStimulus);
  }
  for (const auto w : witnesses) {
    EXPECT_EQ(w, witnesses.front());
  }
}

TEST(ThreadingStressTest, OversubscribedWorkerPool) {
  // More workers than stimuli: surplus workers must terminate cleanly after
  // losing the claim race, and the verdict must be unaffected.
  const auto a = circuits::grover(4, 3);
  const auto b = circuits::grover(4, 3);
  check::Configuration config;
  config.runAlternating = false;
  config.simulationThreads = 8;
  config.simulationRuns = 4;
  const auto result = check::checkEquivalence(a, b, config);
  EXPECT_EQ(result.criterion,
            check::EquivalenceCriterion::ProbablyEquivalent);
  EXPECT_EQ(result.performedSimulations, 4U);
}

TEST(ThreadingStressTest, ConcurrentManagersAreIndependent) {
  // Several managers running on their own threads at once: every DD package
  // is engine-local, so nothing may be shared between the managers.
  const auto a = circuits::qft(4);
  auto b = circuits::qft(4);
  std::vector<std::thread> threads;
  std::vector<check::EquivalenceCriterion> verdicts(4);
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    threads.emplace_back([&, i]() {
      auto config = stressConfig();
      config.simulationThreads = 2;
      verdicts[i] = check::checkEquivalence(a, b, config).criterion;
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (const auto v : verdicts) {
    EXPECT_TRUE(provedEquivalent(v));
  }
}

TEST(ThreadingStressTest, TaskPoolGroupChurnUnderContention) {
  // Many short-lived groups on one pool from several submitting threads:
  // the TSan workload for the pool's queue/steal/sleep handshakes.
  check::TaskPool pool(4);
  std::vector<std::thread> submitters;
  std::atomic<int> total{0};
  for (int t = 0; t < 3; ++t) {
    submitters.emplace_back([&pool, &total] {
      for (int round = 0; round < 20; ++round) {
        check::TaskGroup group(pool);
        for (int i = 0; i < 16; ++i) {
          group.submit("stress", [&total](std::size_t) {
            total.fetch_add(1, std::memory_order_relaxed);
          });
        }
        group.wait();
      }
    });
  }
  for (auto& thread : submitters) {
    thread.join();
  }
  EXPECT_EQ(total.load(), 3 * 20 * 16);
}

TEST(ThreadingStressTest, ShardedAlternatingUnderParallelManager) {
  // Sharded intra-check parallelism nested inside the parallel manager:
  // engine threads and shard workers coexist, with the sibling stop token
  // crossing both layers.
  auto config = stressConfig();
  config.checkThreads = 4;
  const auto a = circuits::qft(5);
  const auto b = circuits::qft(5);
  for (int repeat = 0; repeat < 3; ++repeat) {
    const auto result = check::checkEquivalence(a, b, config);
    EXPECT_TRUE(provedEquivalent(result.criterion)) << result.toString();
  }
}

TEST(ThreadingStressTest, ShardedAlternatingCancellationRace) {
  // Shard workers racing a stop token that trips mid-build: exercises the
  // skip-unstarted-tasks path and the sawStop merge under contention.
  const auto c = circuits::randomCircuit(6, 200, 3);
  check::Configuration config;
  config.checkThreads = 4;
  for (int repeat = 0; repeat < 8; ++repeat) {
    std::atomic<std::size_t> polls{0};
    // Thresholds stay well below the total number of stop polls a full run
    // performs (gate-loop polls are strided), so the token always trips
    // mid-build — just at varying points relative to the shard schedule.
    const auto threshold = static_cast<std::size_t>(1 + repeat * 2);
    const auto result = check::ddAlternatingCheck(
        c, c, config,
        [&polls, threshold] { return polls.fetch_add(1) >= threshold; });
    EXPECT_EQ(result.criterion, check::EquivalenceCriterion::Cancelled)
        << "repeat " << repeat << ": " << result.toString();
  }
}

TEST(ThreadingStressTest, RegionParallelZXUnderParallelManager) {
  // Region workers mutating one shared diagram while the manager's other
  // engines run: the TSan workload for the ownership-guard discipline and
  // the atomic live-vertex counter.
  auto config = stressConfig();
  config.runZX = true;
  config.zxParallelRegions = 4;
  const auto c = circuits::randomClifford(8, 120, 9);
  for (int repeat = 0; repeat < 3; ++repeat) {
    const auto result = check::checkEquivalence(c, c, config);
    EXPECT_TRUE(provedEquivalent(result.criterion)) << result.toString();
  }
}

TEST(ThreadingStressTest, SharedGateCacheEpochChurn) {
  // Epoch-leasing contract of dd::SharedGateCache under churn: publishers
  // keep replacing the shape's snapshot (new epoch each time), a retirer
  // keeps dropping the whole map, and readers hold leases across all of it
  // and *use* them (warm-adopting packages that rebuild gates through the
  // lease). A snapshot destroyed while still leased, or a lease observing a
  // mutating package, is a use-after-free / data race for TSan; the epoch
  // counter must also come out exactly equal to the number of successful
  // publishes.
  constexpr std::size_t kQubits = 2;
  dd::SharedGateCache cache(4096);
  const double tolerance = dd::RealTable::kDefaultTolerance;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> successfulPublishes{0};
  std::atomic<std::uint64_t> retires{0};

  const Operation gates[] = {
      Operation(OpType::H, {}, {0}),
      Operation(OpType::X, {0}, {1}),
      Operation(OpType::T, {}, {1}),
      Operation(OpType::S, {}, {0}),
  };

  std::vector<std::thread> threads;
  // Publishers: donate ever-larger gate sets so most publishes install a new
  // epoch (copy-on-publish must never touch the snapshot readers lease).
  for (int p = 0; p < 2; ++p) {
    threads.emplace_back([&, p] {
      std::uint64_t phase = static_cast<std::uint64_t>(p);
      while (!stop.load(std::memory_order_acquire)) {
        dd::Package donor(kQubits, tolerance);
        for (std::uint64_t g = 0; g <= phase % 4; ++g) {
          (void)donor.makeOperationDD(gates[g]);
        }
        (void)donor.makeOperationDD(
            Operation(OpType::RZ, {}, {0},
                      {0.001 * static_cast<double>(++phase)}));
        if (cache.publish(donor) != 0) {
          successfulPublishes.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Readers: lease the current snapshot and drive gate construction through
  // it — the warm-import path reads the leased package's tables, so a
  // retired-but-leased snapshot being destroyed would be caught here.
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const auto lease = cache.acquire(kQubits, tolerance);
        if (lease == nullptr) {
          std::this_thread::yield();
          continue;
        }
        dd::Package adopter(kQubits, tolerance);
        ASSERT_TRUE(adopter.adoptWarmGateSource(lease));
        for (const auto& gate : gates) {
          (void)adopter.makeOperationDD(gate);
        }
      }
    });
  }
  // Retirer: rip the whole map out from under everyone, repeatedly. Leases
  // held by readers must stay valid through their shared_ptrs.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      cache.retireAll();
      retires.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true, std::memory_order_release);
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_GT(successfulPublishes.load(), 0U);
  EXPECT_GT(retires.load(), 0U);

  // Exact counter check, single-threaded epilogue: after a retire, epochs
  // restart from 1 and advance by exactly one per successful publish.
  cache.retireAll();
  EXPECT_EQ(cache.epoch(kQubits, tolerance), 0U);
  dd::Package donor(kQubits, tolerance);
  (void)donor.makeOperationDD(gates[0]);
  ASSERT_EQ(cache.publish(donor), 1U);
  EXPECT_EQ(cache.epoch(kQubits, tolerance), 1U);
  dd::Package donor2(kQubits, tolerance);
  (void)donor2.makeOperationDD(gates[0]);
  (void)donor2.makeOperationDD(gates[1]);
  ASSERT_EQ(cache.publish(donor2), 2U);
  EXPECT_EQ(cache.epoch(kQubits, tolerance), 2U);
  // A donor with nothing new keeps the epoch stable.
  dd::Package stale(kQubits, tolerance);
  (void)stale.makeOperationDD(gates[0]);
  EXPECT_EQ(cache.publish(stale), 0U);
  EXPECT_EQ(cache.epoch(kQubits, tolerance), 2U);
  EXPECT_GT(cache.totalEntries(), 0U);
}

} // namespace
} // namespace veriqc
