file(REMOVE_RECURSE
  "libveriqc_sim.a"
)
