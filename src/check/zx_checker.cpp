#include "check/zx_checker.hpp"

#include "compile/decompose.hpp"
#include "zx/circuit_to_zx.hpp"
#include "zx/simplify.hpp"

#include <chrono>

namespace veriqc::check {

Result zxCheck(const QuantumCircuit& c1, const QuantumCircuit& c2,
               const Configuration& config, const StopToken& stop) {
  const auto start = std::chrono::steady_clock::now();
  Result result;
  result.method = "zx-calculus";
  const auto elapsed = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  const auto [a, b] = alignCircuits(c1, c2);
  auto diagram = zx::circuitToZX(compile::decomposeForZX(a))
                     .compose(zx::circuitToZX(compile::decomposeForZX(b))
                                  .adjoint());
  zx::Simplifier simplifier(diagram, stop);
  const bool completed = simplifier.fullReduce();
  result.rewrites = simplifier.stats().total();
  result.remainingSpiders = diagram.spiderCount();
  result.runtimeSeconds = elapsed();
  if (!completed) {
    result.criterion = EquivalenceCriterion::Timeout;
    return result;
  }
  // Both diagrams were built over logical qubits, so equivalence requires
  // the identity permutation on the wires.
  const auto perm = zx::extractWirePermutation(diagram);
  if (perm.has_value() && perm->isIdentity()) {
    result.criterion = EquivalenceCriterion::EquivalentUpToGlobalPhase;
  } else {
    result.criterion = EquivalenceCriterion::NoInformation;
  }
  (void)config;
  return result;
}

} // namespace veriqc::check
