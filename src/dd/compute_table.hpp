/// \file compute_table.hpp
/// \brief Operation caches (memoization) for decision-diagram operations.
#pragma once

#include "dd/node.hpp"

#include <cstddef>
#include <vector>

namespace veriqc::dd {

/// Direct-mapped cache for binary DD operations. Collisions overwrite.
template <typename LeftEdge, typename RightEdge, typename ResultEdge>
class ComputeTable {
public:
  static constexpr std::size_t kNumEntries = 1U << 16U;

  ComputeTable() : entries_(kNumEntries) {}

  void insert(const LeftEdge& lhs, const RightEdge& rhs,
              const ResultEdge& result) {
    auto& entry = entries_[hash(lhs, rhs)];
    entry.lhs = lhs;
    entry.rhs = rhs;
    entry.result = result;
    entry.valid = true;
  }

  /// Returns nullptr on miss.
  [[nodiscard]] const ResultEdge* lookup(const LeftEdge& lhs,
                                         const RightEdge& rhs) {
    ++lookups_;
    const auto& entry = entries_[hash(lhs, rhs)];
    if (!entry.valid || !(entry.lhs == lhs) || !(entry.rhs == rhs)) {
      return nullptr;
    }
    ++hits_;
    return &entry.result;
  }

  void clear() {
    for (auto& entry : entries_) {
      entry.valid = false;
    }
  }

  [[nodiscard]] std::size_t lookups() const noexcept { return lookups_; }
  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }

private:
  struct Entry {
    LeftEdge lhs{};
    RightEdge rhs{};
    ResultEdge result{};
    bool valid = false;
  };

  static std::size_t hash(const LeftEdge& lhs, const RightEdge& rhs) noexcept {
    std::size_t h = std::hash<const void*>{}(lhs.p);
    h = combineHash(h, hashWeight(lhs.w));
    h = combineHash(h, std::hash<const void*>{}(rhs.p));
    h = combineHash(h, hashWeight(rhs.w));
    return h & (kNumEntries - 1);
  }

  std::vector<Entry> entries_;
  std::size_t lookups_ = 0;
  std::size_t hits_ = 0;
};

/// Direct-mapped cache for unary DD operations keyed on the node only.
template <typename Node, typename Result> class UnaryComputeTable {
public:
  static constexpr std::size_t kNumEntries = 1U << 14U;

  UnaryComputeTable() : entries_(kNumEntries) {}

  void insert(const Node* arg, const Result& result) {
    auto& entry = entries_[hash(arg)];
    entry.arg = arg;
    entry.result = result;
    entry.valid = true;
  }

  [[nodiscard]] const Result* lookup(const Node* arg) {
    const auto& entry = entries_[hash(arg)];
    if (!entry.valid || entry.arg != arg) {
      return nullptr;
    }
    return &entry.result;
  }

  void clear() {
    for (auto& entry : entries_) {
      entry.valid = false;
    }
  }

private:
  struct Entry {
    const Node* arg = nullptr;
    Result result{};
    bool valid = false;
  };

  static std::size_t hash(const Node* arg) noexcept {
    return std::hash<const void*>{}(arg) & (kNumEntries - 1);
  }

  std::vector<Entry> entries_;
};

} // namespace veriqc::dd
