/// \file decompose.hpp
/// \brief Gate-set decomposition: multi-controlled gates into elementary ones.
///
/// Two target gate sets are provided, mirroring the paper's setup:
///  * `decomposeToCnot`: arbitrary single-qubit gates + CNOT (the IBM-style
///    basis the circuits are compiled to before mapping);
///  * `decomposeForZX`: at most one control per gate, restricted to the types
///    the ZX converter understands (the "pyzx does not support
///    multi-controlled Toffolis" constraint from Sec. 6.1).
///
/// Multi-controlled X/Z/phase gates use the polynomial-cost constructions of
/// Barenco et al. (Phys. Rev. A 52, 1995): the borrowed-qubit split (Lemma
/// 7.5-style) whenever a free wire exists, and the square-root-of-X recursion
/// (Lemma 7.9-style) for gates touching every wire. All produced phases are
/// multiples of pi/2^k, so decomposed circuits stay exactly representable.
#pragma once

#include "ir/circuit.hpp"

#include <vector>

namespace veriqc::compile {

/// Per-operation expansion record: produced[i] is the number of output
/// operations generated for the i-th input operation. Feeds the
/// compilation-flow verification scheme (Burgholzer et al., QCE 2020).
using ExpansionCounts = std::vector<std::size_t>;

/// Decompose to {any 1-qubit gate, CX}. Bare SWAPs become 3 CNOTs when
/// `decomposeSwaps` (the mapper re-inserts SWAPs itself and wants them kept).
[[nodiscard]] QuantumCircuit decomposeToCnot(const QuantumCircuit& circuit,
                                             bool decomposeSwaps = true,
                                             ExpansionCounts* counts = nullptr);

/// Decompose just enough for the ZX converter: gates keep at most one
/// control; bare SWAPs survive (they are wire crossings in a ZX-diagram).
[[nodiscard]] QuantumCircuit decomposeForZX(const QuantumCircuit& circuit);

} // namespace veriqc::compile
