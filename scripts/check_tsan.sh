#!/usr/bin/env bash
# Run the thread-stress suite under ThreadSanitizer (the tsan CMake preset).
# tests/test_threading.cpp is the workload: it drives the parallel manager's
# racing engines, the multi-threaded simulation worker pool (including
# oversubscription and mid-flight cancellation) and several concurrent
# managers at once. Any TSan report fails the run.
#
# Usage: scripts/check_tsan.sh [ctest-regex]
#   ctest-regex: optional -R filter (default: the ThreadingStress tests)
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset tsan >/dev/null
cmake --build --preset tsan -j"$(nproc)" --target test_threading >/dev/null

export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"

ctest --test-dir build-tsan --output-on-failure -R "${1:-ThreadingStressTest}"
