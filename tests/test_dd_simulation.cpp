#include "circuits/benchmarks.hpp"
#include "dd/package.hpp"
#include "sim/dd_simulator.hpp"
#include "sim/dense.hpp"
#include "sim/stimuli.hpp"

#include <gtest/gtest.h>

namespace veriqc {
namespace {

TEST(DDSimulationTest, GhzState) {
  dd::Package p(3);
  auto state = sim::simulate(p, circuits::ghz(3), p.makeZeroState());
  EXPECT_NEAR(std::abs(p.getAmplitude(state, 0)), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(std::abs(p.getAmplitude(state, 7)), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(std::abs(p.getAmplitude(state, 3)), 0.0, 1e-12);
  p.decRef(state);
}

TEST(DDSimulationTest, SimulationRespectsPermutations) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    std::mt19937_64 rng(seed);
    auto c = circuits::randomCircuit(4, 20, seed);
    std::vector<Qubit> layout(4);
    std::iota(layout.begin(), layout.end(), 0U);
    std::shuffle(layout.begin(), layout.end(), rng);
    c.initialLayout() = Permutation{layout};
    std::shuffle(layout.begin(), layout.end(), rng);
    c.outputPermutation() = Permutation{layout};

    dd::Package p(4);
    auto state = sim::simulate(p, c, p.makeZeroState());
    auto expected = sim::zeroState(4);
    sim::applyLogical(c, expected);
    for (std::size_t i = 0; i < 16; ++i) {
      EXPECT_NEAR(std::abs(p.getAmplitude(state, i) - expected[i]), 0.0, 1e-9)
          << "seed " << seed;
    }
    p.decRef(state);
  }
}

TEST(DDSimulationTest, GroverAmplifiesMarkedElement) {
  dd::Package p(4);
  const std::uint64_t marked = 11;
  auto state =
      sim::simulate(p, circuits::grover(4, marked), p.makeZeroState());
  const double probMarked = std::norm(p.getAmplitude(state, marked));
  EXPECT_GT(probMarked, 0.9);
  p.decRef(state);
}

TEST(DDSimulationTest, QpeExactIsDeterministic) {
  const std::size_t precision = 4;
  const std::uint64_t k = 11;
  dd::Package p(precision + 1);
  auto state = sim::simulate(p, circuits::qpeExact(precision, k),
                             p.makeZeroState());
  // The counting register reads exactly k; the eigenstate qubit stays |1>.
  const std::size_t expected = k + (std::size_t{1} << precision);
  EXPECT_NEAR(std::norm(p.getAmplitude(state, expected)), 1.0, 1e-9);
  p.decRef(state);
}

TEST(DDSimulationTest, QuantumWalkIsUnitaryAndMoves) {
  dd::Package p(4);
  const auto walk = circuits::quantumWalk(3, 2);
  auto state = sim::simulate(p, walk, p.makeZeroState());
  double total = 0.0;
  for (std::size_t i = 0; i < 16; ++i) {
    total += std::norm(p.getAmplitude(state, i));
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // After two steps, the walker cannot sit on odd positions.
  double oddMass = 0.0;
  for (const std::size_t pos : {1, 3, 5, 7}) {
    oddMass += std::norm(p.getAmplitude(state, pos));
    oddMass += std::norm(p.getAmplitude(state, pos + 8));
  }
  EXPECT_NEAR(oddMass, 0.0, 1e-9);
  p.decRef(state);
}

class StimuliTest : public ::testing::TestWithParam<sim::StimuliKind> {};

TEST_P(StimuliTest, StimulusIsNormalized) {
  std::mt19937_64 rng(123);
  for (int trial = 0; trial < 5; ++trial) {
    const auto prep = sim::generateStimulus(GetParam(), 4, rng);
    auto state = sim::zeroState(4);
    sim::applyGates(prep, state);
    double total = 0.0;
    for (const auto& amp : state) {
      total += std::norm(amp);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST_P(StimuliTest, StimuliVary) {
  std::mt19937_64 rng(9);
  const auto a = sim::generateStimulus(GetParam(), 5, rng);
  const auto b = sim::generateStimulus(GetParam(), 5, rng);
  auto sa = sim::zeroState(5);
  auto sb = sim::zeroState(5);
  sim::applyGates(a, sa);
  sim::applyGates(b, sb);
  EXPECT_LT(std::abs(sim::innerProduct(sa, sb)), 1.0 - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, StimuliTest,
                         ::testing::Values(sim::StimuliKind::Classical,
                                           sim::StimuliKind::LocalQuantum,
                                           sim::StimuliKind::GlobalQuantum));

TEST(StimuliTest, ClassicalStimulusIsBasisState) {
  std::mt19937_64 rng(7);
  const auto prep = sim::generateStimulus(sim::StimuliKind::Classical, 6, rng);
  auto state = sim::zeroState(6);
  sim::applyGates(prep, state);
  std::size_t nonzero = 0;
  for (const auto& amp : state) {
    if (std::abs(amp) > 1e-12) {
      ++nonzero;
    }
  }
  EXPECT_EQ(nonzero, 1U);
}

} // namespace
} // namespace veriqc
