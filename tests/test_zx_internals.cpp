#include "circuits/benchmarks.hpp"
#include "zx/circuit_to_zx.hpp"
#include "zx/simplify.hpp"
#include "zx/tensor.hpp"

#include <gtest/gtest.h>

namespace veriqc::zx {
namespace {

ZXDiagram bareWires(const std::size_t n, const Permutation& perm) {
  ZXDiagram d;
  std::vector<Vertex> inputs;
  std::vector<Vertex> outputs;
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(d.addVertex(VertexType::Boundary));
  }
  for (std::size_t i = 0; i < n; ++i) {
    outputs.push_back(d.addVertex(VertexType::Boundary));
  }
  for (Qubit i = 0; i < n; ++i) {
    d.addEdge(inputs[i], outputs[perm[i]], EdgeType::Simple);
  }
  d.setInputs(inputs);
  d.setOutputs(outputs);
  return d;
}

TEST(WirePermutationTest, IdentityWires) {
  const auto d = bareWires(4, Permutation::identity(4));
  const auto perm = extractWirePermutation(d);
  ASSERT_TRUE(perm.has_value());
  EXPECT_TRUE(perm->isIdentity());
}

TEST(WirePermutationTest, CrossedWires) {
  const Permutation expected({2, 0, 1});
  const auto d = bareWires(3, expected);
  const auto perm = extractWirePermutation(d);
  ASSERT_TRUE(perm.has_value());
  EXPECT_EQ(*perm, expected);
}

TEST(WirePermutationTest, HadamardWireIsNotAPermutation) {
  ZXDiagram d;
  const auto in = d.addVertex(VertexType::Boundary);
  const auto out = d.addVertex(VertexType::Boundary);
  d.addEdge(in, out, EdgeType::Hadamard);
  d.setInputs({in});
  d.setOutputs({out});
  EXPECT_FALSE(extractWirePermutation(d).has_value());
}

TEST(WirePermutationTest, LeftoverSpiderIsNotAPermutation) {
  ZXDiagram d;
  const auto in = d.addVertex(VertexType::Boundary);
  const auto mid = d.addVertex(VertexType::Z, PiRational(1, 4));
  const auto out = d.addVertex(VertexType::Boundary);
  d.addEdge(in, mid, EdgeType::Simple);
  d.addEdge(mid, out, EdgeType::Simple);
  d.setInputs({in});
  d.setOutputs({out});
  EXPECT_FALSE(extractWirePermutation(d).has_value());
}

TEST(WirePermutationTest, InputConnectedToInputIsRejected) {
  ZXDiagram d;
  const auto in1 = d.addVertex(VertexType::Boundary);
  const auto in2 = d.addVertex(VertexType::Boundary);
  const auto out1 = d.addVertex(VertexType::Boundary);
  const auto out2 = d.addVertex(VertexType::Boundary);
  d.addEdge(in1, in2, EdgeType::Simple);
  d.addEdge(out1, out2, EdgeType::Simple);
  d.setInputs({in1, in2});
  d.setOutputs({out1, out2});
  EXPECT_FALSE(extractWirePermutation(d).has_value());
}

TEST(SimplifierStatsTest, CountsAreConsistent) {
  auto d = circuitToZX(circuits::randomClifford(4, 8, 2))
               .compose(circuitToZX(circuits::randomClifford(4, 8, 2))
                            .adjoint());
  Simplifier s(d);
  ASSERT_TRUE(s.fullReduce());
  const auto& stats = s.stats();
  EXPECT_GT(stats.spiderFusions, 0U);
  EXPECT_EQ(stats.total(),
            stats.spiderFusions + stats.idRemovals +
                stats.localComplementations + stats.pivots +
                stats.gadgetPivots + stats.boundaryPivots +
                stats.gadgetFusions);
}

TEST(PiRationalResnapTest, SymmetricSnapCancelsExactly) {
  for (const double angle : {0.3, 1.7, 0.001, 2.9}) {
    const auto plus = PiRational::fromRadians(angle);
    const auto minus = PiRational::fromRadians(-angle);
    EXPECT_TRUE((plus + minus).isZero()) << angle;
  }
}

TEST(PiRationalResnapTest, AccumulatedResidualsSnapToZero) {
  // Approximant arithmetic: a + b - (a+b) computed on snapped values must
  // normalize back to zero.
  const double a = 0.7234981;
  const double b = -0.4417733;
  const auto sum = PiRational::fromRadians(a) + PiRational::fromRadians(b) -
                   PiRational::fromRadians(a + b);
  EXPECT_TRUE(sum.isZero()) << sum.toString();
}

TEST(PiRationalResnapTest, DyadicAnglesStayExact) {
  // Exact dyadics are never re-snapped.
  auto phase = PiRational(1, 1024);
  for (int i = 0; i < 1023; ++i) {
    phase += PiRational(1, 1024);
  }
  EXPECT_EQ(phase, PiRational(1, 1));
}

TEST(GraphLikeInvariantTest, HoldsAfterFullReduce) {
  auto d = circuitToZX(circuits::randomCliffordT(4, 6, 0.2, 9));
  Simplifier s(d);
  ASSERT_TRUE(s.fullReduce());
  for (const auto v : d.vertices()) {
    if (d.isBoundary(v)) {
      EXPECT_LE(d.degree(v), 1U);
      continue;
    }
    EXPECT_EQ(d.type(v), VertexType::Z);
    for (const auto& [w, mult] : d.neighbors(v)) {
      EXPECT_NE(w, v) << "self loop survived";
      if (!d.isBoundary(w)) {
        EXPECT_EQ(mult.simple, 0) << "plain spider-spider edge survived";
        EXPECT_LE(mult.hadamard, 1);
      }
    }
  }
}

TEST(ComposeAdjointTest, DoubleAdjointPreservesSemantics) {
  QuantumCircuit c(2);
  c.h(0);
  c.cx(0, 1);
  c.t(1);
  const auto d = circuitToZX(c);
  const auto twice = d.adjoint().adjoint();
  EXPECT_TRUE(proportional(toMatrix(twice), toMatrix(d)));
}

} // namespace
} // namespace veriqc::zx
