#include "circuits/benchmarks.hpp"
#include "sim/dense.hpp"
#include "zx/circuit_to_zx.hpp"
#include "zx/simplify.hpp"
#include "zx/tensor.hpp"

#include <gtest/gtest.h>

#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace veriqc::zx {
namespace {

/// Every pass must preserve the linear map up to a scalar.
void expectSoundness(const QuantumCircuit& c,
                     const std::function<void(Simplifier&)>& pass,
                     const std::string& label) {
  auto d = circuitToZX(c);
  const auto before = toMatrix(d);
  Simplifier s(d);
  s.toGraphLike();
  pass(s);
  const auto after = toMatrix(d);
  EXPECT_TRUE(proportional(after, before)) << label << " on " << c.name();
}

QuantumCircuit zxFriendlyRandom(const std::uint64_t seed) {
  // Kept small: dense tensor validation is exponential in the spider count.
  auto c = circuits::randomCliffordT(2, 2, 0.25, seed);
  c.rz(0, PI / 8.0);
  c.cp(0, 1, PI / 4.0);
  c.swap(0, 1);
  return c;
}

TEST(ZXSimplifyTest, ToGraphLikeIsSound) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto c = zxFriendlyRandom(seed);
    auto d = circuitToZX(c);
    const auto before = toMatrix(d);
    Simplifier s(d);
    s.toGraphLike();
    EXPECT_TRUE(proportional(toMatrix(d), before)) << "seed " << seed;
    // Graph-like: only Z spiders, no plain edges between spiders.
    for (const auto v : d.vertices()) {
      if (d.isBoundary(v)) {
        continue;
      }
      EXPECT_EQ(d.type(v), VertexType::Z);
      for (const auto& [w, mult] : d.neighbors(v)) {
        EXPECT_EQ(mult.total() > 0 && w == v, false) << "self loop remains";
        if (!d.isBoundary(w)) {
          EXPECT_EQ(mult.simple, 0) << "plain spider-spider edge remains";
          EXPECT_LE(mult.hadamard, 1) << "parallel Hadamard edges remain";
        }
      }
    }
  }
}

TEST(ZXSimplifyTest, IdSimpIsSound) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    expectSoundness(zxFriendlyRandom(seed),
                    [](Simplifier& s) { s.idSimp(); }, "idSimp");
  }
}

TEST(ZXSimplifyTest, LcompIsSound) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    expectSoundness(zxFriendlyRandom(seed),
                    [](Simplifier& s) { s.lcompSimp(); }, "lcompSimp");
  }
}

TEST(ZXSimplifyTest, PivotIsSound) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    expectSoundness(zxFriendlyRandom(seed),
                    [](Simplifier& s) { s.pivotSimp(); }, "pivotSimp");
  }
}

TEST(ZXSimplifyTest, PivotGadgetIsSound) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    expectSoundness(zxFriendlyRandom(seed),
                    [](Simplifier& s) { s.pivotGadgetSimp(); },
                    "pivotGadgetSimp");
  }
}

TEST(ZXSimplifyTest, PivotBoundaryIsSound) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    expectSoundness(zxFriendlyRandom(seed),
                    [](Simplifier& s) { s.pivotBoundarySimp(); },
                    "pivotBoundarySimp");
  }
}

TEST(ZXSimplifyTest, FullReduceIsSound) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto c = zxFriendlyRandom(seed);
    auto d = circuitToZX(c);
    const auto before = toMatrix(d);
    EXPECT_TRUE(fullReduce(d));
    EXPECT_TRUE(proportional(toMatrix(d), before)) << "seed " << seed;
  }
}

TEST(ZXSimplifyTest, FullReduceShrinksCliffordDiagrams) {
  const auto c = circuits::randomClifford(4, 10, 3);
  auto d = circuitToZX(c);
  const auto before = d.spiderCount();
  fullReduce(d);
  // Graph-theoretic simplification reduces any Clifford circuit to a
  // bounded-size normal form (pseudo-normal form near the boundary).
  EXPECT_LT(d.spiderCount(), std::min<std::size_t>(before, 16));
}

TEST(ZXSimplifyTest, SwapEqualsThreeCnots) {
  // The paper's Example 6: SWAP = 3 alternating CNOTs.
  QuantumCircuit threeCx(2);
  threeCx.cx(0, 1);
  threeCx.cx(1, 0);
  threeCx.cx(0, 1);
  QuantumCircuit swapC(2);
  swapC.swap(0, 1);
  auto composed = circuitToZX(threeCx).compose(circuitToZX(swapC).adjoint());
  fullReduce(composed);
  const auto perm = extractWirePermutation(composed);
  ASSERT_TRUE(perm.has_value());
  EXPECT_TRUE(perm->isIdentity());
}

TEST(ZXSimplifyTest, CliffordEquivalenceReducesToIdentityWires) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto c = circuits::randomClifford(4, 8, seed);
    auto composed = circuitToZX(c).compose(circuitToZX(c).adjoint());
    ASSERT_TRUE(fullReduce(composed)) << "seed " << seed;
    const auto perm = extractWirePermutation(composed);
    ASSERT_TRUE(perm.has_value())
        << "seed " << seed << ": " << composed.spiderCount()
        << " spiders remain";
    EXPECT_TRUE(perm->isIdentity()) << "seed " << seed;
  }
}

TEST(ZXSimplifyTest, CliffordTEquivalenceReducesToIdentityWires) {
  // Sec. 6.2: phases cancel when composing a circuit with its inverse, so
  // the rewriting succeeds even beyond Clifford.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto c = circuits::randomCliffordT(4, 6, 0.3, seed);
    auto composed = circuitToZX(c).compose(circuitToZX(c).adjoint());
    ASSERT_TRUE(fullReduce(composed)) << "seed " << seed;
    const auto perm = extractWirePermutation(composed);
    ASSERT_TRUE(perm.has_value())
        << "seed " << seed << ": " << composed.spiderCount()
        << " spiders remain";
    EXPECT_TRUE(perm->isIdentity()) << "seed " << seed;
  }
}

TEST(ZXSimplifyTest, PaperExample7CompiledGhz) {
  // G = GHZ(3) (Fig. 1a); G' = compiled version (Fig. 2) with the SWAP
  // decomposed into CNOTs and the output permutation exchanging q1 and q2.
  const auto g = circuits::ghz(3);
  QuantumCircuit gPrime(3);
  gPrime.h(0);
  gPrime.cx(0, 1);
  gPrime.cx(1, 2); // decomposed SWAP(1,2)
  gPrime.cx(2, 1);
  gPrime.cx(1, 2);
  gPrime.cx(0, 1);
  gPrime.outputPermutation() = Permutation({0, 2, 1});
  auto composed = circuitToZX(g).compose(circuitToZX(gPrime).adjoint());
  ASSERT_TRUE(fullReduce(composed));
  const auto perm = extractWirePermutation(composed);
  ASSERT_TRUE(perm.has_value());
  EXPECT_TRUE(perm->isIdentity());
}

TEST(ZXSimplifyTest, NonEquivalentCircuitsDoNotReduceToIdentity) {
  auto damaged = circuits::ghz(3);
  damaged.ops().pop_back();
  auto composed =
      circuitToZX(circuits::ghz(3)).compose(circuitToZX(damaged).adjoint());
  fullReduce(composed);
  const auto perm = extractWirePermutation(composed);
  EXPECT_TRUE(!perm.has_value() || !perm->isIdentity());
}

TEST(ZXSimplifyTest, SpiderCountIsNonIncreasing) {
  // Sec. 5.1: the number of spiders never grows during the procedure.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto c = zxFriendlyRandom(seed);
    auto d = circuitToZX(c);
    Simplifier s(d);
    s.toGraphLike();
    const auto before = d.spiderCount();
    s.fullReduce();
    EXPECT_LE(d.spiderCount(), before) << "seed " << seed;
  }
}

TEST(ZXSimplifyTest, StopCallbackAborts) {
  const auto c = circuits::randomCliffordT(4, 10, 0.2, 1);
  auto composed = circuitToZX(c).compose(circuitToZX(c).adjoint());
  EXPECT_FALSE(fullReduce(composed, [] { return true; }));
}

TEST(ZXSimplifyTest, StatsMatchScanEngineBaselines) {
  // The worklist scheduler must replay the rewrite order of the original
  // scan-to-fixpoint engine exactly, so the per-rule counts on fixed seeds
  // are part of the contract. These baselines were recorded from the
  // scan-based engine before the worklist rewrite.
  struct Expected {
    std::size_t spider, id, lcomp, pivot, gadgetPivot, boundaryPivot, gadget;
    std::size_t spiders;
  };
  const auto run = [](ZXDiagram d, const Expected& e, const char* label) {
    Simplifier s(d);
    ASSERT_TRUE(s.fullReduce()) << label;
    const auto& st = s.stats();
    EXPECT_EQ(st.spiderFusions, e.spider) << label;
    EXPECT_EQ(st.idRemovals, e.id) << label;
    EXPECT_EQ(st.localComplementations, e.lcomp) << label;
    EXPECT_EQ(st.pivots, e.pivot) << label;
    EXPECT_EQ(st.gadgetPivots, e.gadgetPivot) << label;
    EXPECT_EQ(st.boundaryPivots, e.boundaryPivot) << label;
    EXPECT_EQ(st.gadgetFusions, e.gadget) << label;
    EXPECT_EQ(d.spiderCount(), e.spiders) << label;
  };
  run(circuitToZX(circuits::randomClifford(4, 10, 3)),
      {24, 2, 2, 3, 0, 1, 0, 8}, "clifford(4,10,3)");
  run(circuitToZX(circuits::randomClifford(10, 100, 1)),
      {629, 19, 174, 87, 0, 0, 0, 20}, "clifford(10,100,1)");
  run(circuitToZX(circuits::randomCliffordT(8, 80, 0.2, 1)),
      {424, 7, 77, 36, 12, 4, 0, 73}, "cliffordT(8,80,0.2,1)");
  const Expected inverses[] = {{31, 9, 0, 0, 0, 0, 0, 0},
                               {42, 10, 0, 0, 0, 0, 0, 0},
                               {36, 10, 0, 0, 0, 0, 0, 0},
                               {42, 12, 0, 0, 0, 0, 0, 0}};
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto c = circuits::randomCliffordT(4, 6, 0.3, seed);
    run(circuitToZX(c).compose(circuitToZX(c).adjoint()), inverses[seed],
        "cliffordT-inv");
  }
}

TEST(ZXSimplifyTest, RuleStatsAreConsistent) {
  const auto c = circuits::randomCliffordT(6, 40, 0.2, 2);
  auto d = circuitToZX(c).compose(circuitToZX(c).adjoint());
  Simplifier s(d);
  ASSERT_TRUE(s.fullReduce());
  const auto& st = s.stats();
  std::size_t perRuleRewrites = 0;
  for (const auto& r : st.rules) {
    EXPECT_LE(r.matches, r.candidates);
    EXPECT_GE(r.seconds, 0.0);
    perRuleRewrites += r.rewrites;
  }
  // Per-rule counters attribute rewrites to the pass they ran in; the
  // legacy family counters count events by type. Fusions also fire inside
  // toGraphLike and as by-products of other passes, so the per-pass sum is
  // a (positive) lower bound on the event total.
  EXPECT_GT(perRuleRewrites, 0U);
  EXPECT_LE(perRuleRewrites, st.total());
  EXPECT_LE(st.rules[static_cast<std::size_t>(SimplifyRule::Spider)].rewrites,
            st.spiderFusions);
  EXPECT_EQ(st.rules[static_cast<std::size_t>(SimplifyRule::Pivot)].rewrites,
            st.pivots);
  EXPECT_GT(st.totalSeconds(), 0.0);
  const auto digest = st.digest();
  EXPECT_NE(digest.find("spider"), std::string::npos) << digest;
}

TEST(ZXSimplifyTest, GadgetRulesCanBeDisabled) {
  // With the gadget families off, fullReduce stops at the Clifford fixed
  // point: still sound, and on pure Clifford input exactly as strong.
  const auto c = circuits::randomClifford(4, 12, 5);
  auto composed = circuitToZX(c).compose(circuitToZX(c).adjoint());
  SimplifierOptions options;
  options.gadgetRules = false;
  Simplifier s(composed, {}, options);
  ASSERT_TRUE(s.fullReduce());
  EXPECT_EQ(s.stats().gadgetPivots, 0U);
  EXPECT_EQ(s.stats().gadgetFusions, 0U);
  const auto perm = extractWirePermutation(composed);
  ASSERT_TRUE(perm.has_value());
  EXPECT_TRUE(perm->isIdentity());
}

TEST(ZXSimplifyTest, GadgetFusionFiresOnPhasePolynomials) {
  // Two CZ-conjugated T gates on the same qubit pair create equal-support
  // gadgets that must fuse.
  QuantumCircuit c(2);
  c.cx(0, 1);
  c.t(1);
  c.cx(0, 1);
  c.cx(0, 1);
  c.t(1);
  c.cx(0, 1);
  auto d = circuitToZX(c);
  const auto before = toMatrix(d);
  Simplifier s(d);
  ASSERT_TRUE(s.fullReduce());
  EXPECT_TRUE(proportional(toMatrix(d), before));
}

/// Executor for the region-parallel tests: real threads, first exception
/// propagated — the same contract the checker layer's task pool provides.
void threadedExecutor(const std::vector<std::function<void()>>& tasks) {
  std::vector<std::thread> threads;
  threads.reserve(tasks.size());
  std::mutex mutex;
  std::exception_ptr firstError;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    threads.emplace_back([&tasks, &mutex, &firstError, i] {
      try {
        tasks[i]();
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex);
        if (!firstError) {
          firstError = std::current_exception();
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  if (firstError) {
    std::rethrow_exception(firstError);
  }
}

struct RegionRun {
  SimplifyStats stats;
  std::size_t spiders = 0;
  bool identity = false;
  std::string diagram;
};

RegionRun reduceWithRegions(ZXDiagram d, const std::size_t regions) {
  SimplifierOptions options;
  options.parallelRegions = regions;
  if (regions > 1) {
    options.regionExecutor = threadedExecutor;
  }
  Simplifier s(d, {}, options);
  RegionRun run;
  EXPECT_TRUE(s.fullReduce());
  run.stats = s.stats();
  run.spiders = d.spiderCount();
  const auto perm = extractWirePermutation(d);
  run.identity = perm.has_value() && perm->isIdentity();
  run.diagram = d.toString();
  return run;
}

TEST(ZXRegionParallelTest, PrepassPreservesStatsAndDiagram) {
  // The region-parallel pre-pass must land on the same fixpoint as the
  // sequential engine: identical reduced diagram and identical rewrite
  // counts for every region count. Scheduler-dependent counters
  // (candidates, seconds) are excluded — only the rewrite totals are part
  // of the determinism contract.
  const auto compare = [](const ZXDiagram& d, const char* label) {
    const auto baseline = reduceWithRegions(d, 1);
    for (const std::size_t regions : {2U, 4U, 8U}) {
      const auto run = reduceWithRegions(d, regions);
      const std::string tag =
          std::string(label) + " regions=" + std::to_string(regions);
      EXPECT_EQ(run.stats.spiderFusions, baseline.stats.spiderFusions) << tag;
      EXPECT_EQ(run.stats.idRemovals, baseline.stats.idRemovals) << tag;
      EXPECT_EQ(run.stats.localComplementations,
                baseline.stats.localComplementations)
          << tag;
      EXPECT_EQ(run.stats.pivots, baseline.stats.pivots) << tag;
      EXPECT_EQ(run.stats.gadgetPivots, baseline.stats.gadgetPivots) << tag;
      EXPECT_EQ(run.stats.boundaryPivots, baseline.stats.boundaryPivots)
          << tag;
      EXPECT_EQ(run.stats.gadgetFusions, baseline.stats.gadgetFusions) << tag;
      EXPECT_EQ(run.spiders, baseline.spiders) << tag;
      EXPECT_EQ(run.identity, baseline.identity) << tag;
      EXPECT_EQ(run.diagram, baseline.diagram) << tag;
    }
  };
  {
    const auto c = circuits::randomClifford(10, 160, 7);
    const auto d = circuitToZX(c).compose(circuitToZX(c).adjoint());
    // Big enough that the pre-pass actually distributes at every region
    // count under test (kMinVerticesPerRegion = 64).
    ASSERT_GE(d.vertexCount(), 8U * 64U);
    compare(d, "clifford-inverse(10,160,7)");
  }
  {
    const auto c = circuits::randomCliffordT(8, 120, 0.2, 11);
    const auto d = circuitToZX(c).compose(circuitToZX(c).adjoint());
    ASSERT_GE(d.vertexCount(), 8U * 64U);
    compare(d, "cliffordT-inverse(8,120,0.2,11)");
  }
  {
    // Non-composed circuit: reduces to a nontrivial fixpoint (spiders
    // remain), exercising parity away from the identity-wire happy path.
    compare(circuitToZX(circuits::randomClifford(10, 220, 3)),
            "clifford(10,220,3)");
  }
}

TEST(ZXRegionParallelTest, RegionVerdictMatchesOnEquivalencePairs) {
  // Circuit-with-inverse pairs must still reduce to identity wires when the
  // pre-pass runs regionally — across several seeds to vary the partition
  // boundaries relative to the diagram structure.
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto c = circuits::randomClifford(8, 100, seed);
    auto d = circuitToZX(c).compose(circuitToZX(c).adjoint());
    SimplifierOptions options;
    options.parallelRegions = 4;
    options.regionExecutor = threadedExecutor;
    Simplifier s(d, {}, options);
    ASSERT_TRUE(s.fullReduce()) << "seed " << seed;
    const auto perm = extractWirePermutation(d);
    ASSERT_TRUE(perm.has_value()) << "seed " << seed;
    EXPECT_TRUE(perm->isIdentity()) << "seed " << seed;
  }
}

TEST(ZXRegionParallelTest, RegionVertexBudgetPropagates) {
  // A region worker tripping the vertex budget must surface as the same
  // ResourceLimitError the sequential engine throws (via the executor's
  // first-exception propagation).
  auto d = circuitToZX(circuits::randomClifford(10, 200, 5));
  SimplifierOptions options;
  options.parallelRegions = 4;
  options.regionExecutor = threadedExecutor;
  options.maxVertices = 8;
  Simplifier s(d, {}, options);
  EXPECT_THROW((void)s.fullReduce(), ResourceLimitError);
}

TEST(SimplifierBudgetTest, VertexBudgetThrowsResourceLimitError) {
  auto d = circuitToZX(circuits::qft(4));
  ASSERT_GT(d.vertexCount(), 4U);
  SimplifierOptions options;
  options.maxVertices = 4;
  Simplifier s(d, {}, options);
  try {
    (void)s.fullReduce();
    FAIL() << "expected ResourceLimitError";
  } catch (const ResourceLimitError& e) {
    EXPECT_EQ(e.resource(), "ZX vertices");
    EXPECT_EQ(e.limit(), 4U);
    EXPECT_GE(e.observed(), d.vertexCount());
  }
}

TEST(SimplifierBudgetTest, GenerousBudgetDoesNotInterfere) {
  auto c = circuits::ghz(3);
  auto d = circuitToZX(c);
  const auto before = toMatrix(d);
  SimplifierOptions options;
  options.maxVertices = 1U << 20U;
  Simplifier s(d, {}, options);
  ASSERT_TRUE(s.fullReduce());
  EXPECT_TRUE(proportional(toMatrix(d), before));
}

} // namespace
} // namespace veriqc::zx
