#include "circuits/benchmarks.hpp"
#include "qasm/parser.hpp"
#include "qasm/writer.hpp"
#include "sim/dense.hpp"

#include <gtest/gtest.h>

#include <string>

namespace veriqc {
namespace {

TEST(QasmParserTest, MinimalProgram) {
  const auto c = qasm::parse(R"(
    OPENQASM 2.0;
    include "qelib1.inc";
    qreg q[2];
    creg c[2];
    h q[0];
    cx q[0], q[1];
  )");
  EXPECT_EQ(c.numQubits(), 2U);
  ASSERT_EQ(c.size(), 2U);
  EXPECT_EQ(c.ops()[0].type, OpType::H);
  EXPECT_EQ(c.ops()[1].type, OpType::X);
  EXPECT_EQ(c.ops()[1].controls, std::vector<Qubit>{0});
}

TEST(QasmParserTest, ExpressionsInParameters) {
  const auto c = qasm::parse(R"(
    qreg q[1];
    rz(pi/4) q[0];
    rz(-pi) q[0];
    rz(2*pi/8 + 0.5) q[0];
    rz(cos(0)) q[0];
    rz(2^3) q[0];
  )");
  ASSERT_EQ(c.size(), 5U);
  EXPECT_NEAR(c.ops()[0].params[0], PI / 4.0, 1e-12);
  EXPECT_NEAR(c.ops()[1].params[0], -PI, 1e-12);
  EXPECT_NEAR(c.ops()[2].params[0], PI / 4.0 + 0.5, 1e-12);
  EXPECT_NEAR(c.ops()[3].params[0], 1.0, 1e-12);
  EXPECT_NEAR(c.ops()[4].params[0], 8.0, 1e-12);
}

TEST(QasmParserTest, RegisterBroadcast) {
  const auto c = qasm::parse(R"(
    qreg q[3];
    h q;
  )");
  EXPECT_EQ(c.size(), 3U);
  for (const auto& op : c.ops()) {
    EXPECT_EQ(op.type, OpType::H);
  }
}

TEST(QasmParserTest, TwoQuantumRegistersAreFlattened) {
  const auto c = qasm::parse(R"(
    qreg a[2];
    qreg b[2];
    x a[1];
    x b[0];
  )");
  EXPECT_EQ(c.numQubits(), 4U);
  EXPECT_EQ(c.ops()[0].targets, std::vector<Qubit>{1});
  EXPECT_EQ(c.ops()[1].targets, std::vector<Qubit>{2});
}

TEST(QasmParserTest, UserDefinedGateExpansion) {
  const auto c = qasm::parse(R"(
    qreg q[2];
    gate bell a, b { h a; cx a, b; }
    bell q[0], q[1];
  )");
  ASSERT_EQ(c.size(), 2U);
  EXPECT_EQ(c.ops()[0].type, OpType::H);
  EXPECT_EQ(c.ops()[1].controls, std::vector<Qubit>{0});
}

TEST(QasmParserTest, ParameterizedUserGate) {
  const auto c = qasm::parse(R"(
    qreg q[1];
    gate twist(theta) a { rz(theta/2) a; rz(theta/2) a; }
    twist(pi) q[0];
  )");
  ASSERT_EQ(c.size(), 2U);
  EXPECT_NEAR(c.ops()[0].params[0], PI / 2.0, 1e-12);
}

TEST(QasmParserTest, NestedUserGates) {
  const auto c = qasm::parse(R"(
    qreg q[2];
    gate inner a { x a; }
    gate outer a, b { inner a; cx a, b; inner b; }
    outer q[0], q[1];
  )");
  EXPECT_EQ(c.size(), 3U);
}

TEST(QasmParserTest, MultiControlledGates) {
  const auto c = qasm::parse(R"(
    qreg q[5];
    ccx q[0], q[1], q[2];
    c3x q[0], q[1], q[2], q[3];
    c4x q[0], q[1], q[2], q[3], q[4];
  )");
  EXPECT_EQ(c.ops()[0].controls.size(), 2U);
  EXPECT_EQ(c.ops()[1].controls.size(), 3U);
  EXPECT_EQ(c.ops()[2].controls.size(), 4U);
}

TEST(QasmParserTest, MeasureAndBarrierAreMeta) {
  const auto c = qasm::parse(R"(
    qreg q[2];
    creg c[2];
    h q[0];
    barrier q;
    measure q -> c;
  )");
  EXPECT_EQ(c.gateCount(), 1U);
  EXPECT_EQ(c.size(), 4U); // h + barrier + 2 measures
}

TEST(QasmParserTest, ErrorsCarryPositions) {
  try {
    (void)qasm::parse("qreg q[2];\nfoo q[0];\n");
    FAIL() << "expected ParseError";
  } catch (const qasm::ParseError& e) {
    EXPECT_EQ(e.line(), 2U);
  }
}

TEST(QasmParserTest, RejectsUnsupportedStatements) {
  EXPECT_THROW((void)qasm::parse("qreg q[1]; creg c[1]; reset q[0];"),
               qasm::ParseError);
  EXPECT_THROW((void)qasm::parse("qreg q[1]; creg c[1]; if (c==0) x q[0];"),
               qasm::ParseError);
}

TEST(QasmParserTest, RejectsOutOfRangeIndex) {
  EXPECT_THROW((void)qasm::parse("qreg q[2]; x q[5];"), qasm::ParseError);
}

TEST(QasmParserTest, RejectsArityMismatch) {
  EXPECT_THROW((void)qasm::parse("qreg q[2]; cx q[0];"), qasm::ParseError);
  EXPECT_THROW((void)qasm::parse("qreg q[1]; rz q[0];"), qasm::ParseError);
}

TEST(QasmParserTest, RejectsAliasedOperandsAtParseTime) {
  // Aliased operand lists must fail during parsing with the position of the
  // offending application, not later from IR validation during emission.
  try {
    (void)qasm::parse("qreg q[2];\ncx q[0], q[0];\n");
    FAIL() << "expected ParseError";
  } catch (const qasm::ParseError& e) {
    EXPECT_EQ(e.line(), 2U);
    EXPECT_NE(std::string(e.what()).find("aliased"), std::string::npos);
  }
  // Broadcasting a register against itself aliases every wire pair.
  EXPECT_THROW((void)qasm::parse("qreg q[2]; cx q, q;"), qasm::ParseError);
  // Three-operand gates alias through any pair, not just adjacent ones.
  EXPECT_THROW((void)qasm::parse("qreg q[3]; ccx q[0], q[1], q[0];"),
               qasm::ParseError);
}

TEST(QasmParserTest, RejectsAliasingInsideUserGateBodies) {
  // The alias only appears once formals are bound to actual wires.
  EXPECT_THROW(
      (void)qasm::parse("qreg q[2]; gate g a, b { cx a, b; } g q[1], q[1];"),
      qasm::ParseError);
  // A body that aliases its own formals is rejected for every application.
  EXPECT_THROW(
      (void)qasm::parse("qreg q[1]; gate g a { cx a, a; } g q[0];"),
      qasm::ParseError);
}

// --- fuzz-style malformed inputs ---------------------------------------------

// Every malformed input must fail with a positioned ParseError — never a
// crash, a hang, or a stray exception type escaping the parser.

TEST(QasmFuzzTest, TruncatedMidToken) {
  const std::vector<std::string> cases = {
      "OPENQASM 2.",
      "qreg q[",
      "qreg q[2",
      "qreg q[2];\nrx(0.",
      "qreg q[2];\ncx q[0",
      "qreg q[2];\ninclude \"qelib1",
  };
  for (const auto& text : cases) {
    EXPECT_THROW((void)qasm::parse(text), qasm::ParseError) << text;
  }
}

TEST(QasmFuzzTest, EveryPrefixParsesOrThrowsParseError) {
  // Truncation sweep over a program exercising every statement kind: each
  // prefix must either parse or raise ParseError; anything else escaping
  // (or an infinite loop) fails the test.
  const std::string program =
      "OPENQASM 2.0;\n"
      "include \"qelib1.inc\";\n"
      "qreg q[3];\n"
      "creg c[3];\n"
      "gate foo(t) a, b { rz(t/2) a; cx a, b; }\n"
      "foo(pi/2) q[0], q[1];\n"
      "ccx q[0], q[1], q[2];\n"
      "barrier q;\n"
      "measure q -> c;\n";
  for (std::size_t len = 0; len <= program.size(); ++len) {
    try {
      (void)qasm::parse(program.substr(0, len));
    } catch (const qasm::ParseError&) {
      // expected for most truncation points
    }
  }
}

TEST(QasmFuzzTest, AbsurdRegisterSizesAreRejected) {
  // Over the total-qubit cap but within long long range.
  EXPECT_THROW((void)qasm::parse("qreg q[99999999];"), qasm::ParseError);
  // Out of long long range entirely (stoll would throw std::out_of_range).
  EXPECT_THROW((void)qasm::parse("qreg q[99999999999999999999999];"),
               qasm::ParseError);
  // Two registers that only jointly exceed the cap.
  EXPECT_THROW((void)qasm::parse("qreg a[1000000];\nqreg b[1000000];"),
               qasm::ParseError);
  EXPECT_THROW((void)qasm::parse("qreg q[-1];"), qasm::ParseError);
}

TEST(QasmFuzzTest, UnterminatedGateBody) {
  EXPECT_THROW((void)qasm::parse("qreg q[2];\ngate foo a { x a;"),
               qasm::ParseError);
  EXPECT_THROW((void)qasm::parse("qreg q[2];\ngate foo a {"),
               qasm::ParseError);
}

TEST(QasmFuzzTest, MalformedParameters) {
  // Unbound identifier in an angle.
  EXPECT_THROW((void)qasm::parse("qreg q[1];\nrx(foo) q[0];"),
               qasm::ParseError);
  // Division by zero yields a non-finite angle.
  EXPECT_THROW((void)qasm::parse("qreg q[1];\nrx(1/0) q[0];"),
               qasm::ParseError);
  // Out-of-range floating-point literal.
  EXPECT_THROW((void)qasm::parse("qreg q[1];\nrx(1e999999) q[0];"),
               qasm::ParseError);
}

TEST(QasmFuzzTest, MalformedParameterErrorsCarryPositions) {
  try {
    (void)qasm::parse("qreg q[1];\nrx(foo) q[0];");
    FAIL() << "expected ParseError";
  } catch (const qasm::ParseError& e) {
    EXPECT_EQ(e.line(), 2U);
    EXPECT_GT(e.column(), 0U);
  }
}

TEST(QasmFuzzTest, DuplicateOperandsAreParseErrors) {
  // The emitted operation is invalid (duplicate qubit); the parser must wrap
  // the CircuitError with source position rather than leak it.
  try {
    (void)qasm::parse("qreg q[2];\ncx q[0], q[0];");
    FAIL() << "expected ParseError";
  } catch (const qasm::ParseError& e) {
    EXPECT_EQ(e.line(), 2U);
  }
}

TEST(QasmFuzzTest, ParseErrorIsPartOfTheTaxonomy) {
  // ParseError sits under VeriqcError, so callers can catch the whole
  // family at once.
  try {
    (void)qasm::parse("qreg q[");
    FAIL() << "expected ParseError";
  } catch (const VeriqcError&) {
  }
}

TEST(QasmWriterTest, RoundTripPreservesSemantics) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto original = circuits::randomCircuit(4, 30, seed);
    const auto text = qasm::write(original);
    const auto reparsed = qasm::parse(text);
    ASSERT_EQ(reparsed.numQubits(), original.numQubits());
    const auto u = sim::circuitUnitary(original);
    const auto v = sim::circuitUnitary(reparsed);
    EXPECT_TRUE(u.equals(v, 1e-9)) << "seed " << seed;
  }
}

TEST(QasmWriterTest, RoundTripBenchmarks) {
  const std::vector<QuantumCircuit> cases = {
      circuits::ghz(4), circuits::qft(4), circuits::grover(3, 5),
      circuits::quantumWalk(3, 2), circuits::wState(4)};
  for (const auto& original : cases) {
    const auto reparsed = qasm::parse(qasm::write(original));
    const auto u = sim::circuitUnitary(original.withExplicitPermutations());
    const auto v = sim::circuitUnitary(reparsed);
    EXPECT_TRUE(u.equals(v, 1e-9)) << original.name();
  }
}

TEST(QasmWriterTest, EmitsPermutationComments) {
  auto c = circuits::qft(3, false); // output permutation is the reversal
  const auto text = qasm::write(c);
  EXPECT_NE(text.find("// o 2 1 0"), std::string::npos);
}

TEST(QasmWriterTest, RejectsTooManyControls) {
  QuantumCircuit c(6);
  c.mcx({0, 1, 2, 3, 4}, 5);
  EXPECT_THROW((void)qasm::write(c), CircuitError);
}

TEST(QasmWriterTest, FileRoundTrip) {
  const auto original = circuits::ghz(3);
  const std::string path = ::testing::TempDir() + "/veriqc_ghz.qasm";
  qasm::writeFile(original, path);
  const auto reparsed = qasm::parseFile(path);
  EXPECT_EQ(reparsed.gateCount(), original.gateCount());
}

} // namespace
} // namespace veriqc
