/// \file types.hpp
/// \brief Fundamental types shared across the veriqc library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <numbers>
#include <stdexcept>
#include <string>

namespace veriqc {

/// Index of a qubit (a circuit wire). Wires are numbered 0..n-1 where wire 0
/// is the least-significant bit of basis-state indices |x_{n-1} ... x_0>.
using Qubit = std::uint32_t;

/// Number of π in common angles.
inline constexpr double PI = std::numbers::pi_v<double>;
inline constexpr double PI_2 = PI / 2.0;
inline constexpr double PI_4 = PI / 4.0;

/// Root of the library's error taxonomy. Catching this (instead of
/// std::exception) distinguishes errors veriqc raised deliberately — bad
/// input, exhausted budgets — from toolchain/runtime failures. Concrete
/// kinds: CircuitError (malformed input), qasm::ParseError (malformed
/// source text, with position) and ResourceLimitError (a configured budget
/// was exceeded; retry with a larger one).
class VeriqcError : public std::runtime_error {
public:
  explicit VeriqcError(const std::string& msg) : std::runtime_error(msg) {}
};

/// Error raised for malformed circuits, operations or permutations.
class CircuitError : public VeriqcError {
public:
  explicit CircuitError(const std::string& msg) : VeriqcError(msg) {}
};

/// Error raised when a configured resource budget (DD nodes, ZX vertices,
/// resident memory) is exceeded. Engines treat this as a cooperative abort:
/// the verdict becomes ResourceExhausted rather than the process dying, and
/// the caller may retry with a larger budget.
class ResourceLimitError : public VeriqcError {
public:
  ResourceLimitError(const std::string& resource, const std::size_t limit,
                     const std::size_t observed)
      : VeriqcError("resource limit exceeded: " + resource + " (limit " +
                    std::to_string(limit) + ", observed " +
                    std::to_string(observed) + ")"),
        resource_(resource), limit_(limit), observed_(observed) {}

  [[nodiscard]] const std::string& resource() const noexcept {
    return resource_;
  }
  [[nodiscard]] std::size_t limit() const noexcept { return limit_; }
  [[nodiscard]] std::size_t observed() const noexcept { return observed_; }

private:
  std::string resource_;
  std::size_t limit_;
  std::size_t observed_;
};

} // namespace veriqc
