#include "check/task_pool.hpp"

#include "obs/phase_timer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace veriqc::check {
namespace {

TEST(TaskPoolTest, RunsEveryTaskExactlyOnce) {
  for (const std::size_t slots : {1U, 2U, 4U, 8U}) {
    TaskPool pool(slots);
    EXPECT_EQ(pool.slotCount(), slots);
    std::vector<std::atomic<int>> runs(64);
    TaskGroup group(pool);
    for (std::size_t i = 0; i < runs.size(); ++i) {
      group.submit("task" + std::to_string(i),
                   [&runs, i](std::size_t) { runs[i].fetch_add(1); });
    }
    group.wait();
    for (std::size_t i = 0; i < runs.size(); ++i) {
      EXPECT_EQ(runs[i].load(), 1) << "slots=" << slots << " task=" << i;
    }
    EXPECT_EQ(group.skippedTasks(), 0U);
  }
}

TEST(TaskPoolTest, SlotIndicesAreInRange) {
  TaskPool pool(4);
  std::mutex mutex;
  std::set<std::size_t> seen;
  TaskGroup group(pool);
  for (int i = 0; i < 200; ++i) {
    group.submit("slot-probe", [&](const std::size_t slot) {
      const std::lock_guard<std::mutex> lock(mutex);
      seen.insert(slot);
    });
  }
  group.wait();
  for (const auto slot : seen) {
    EXPECT_LT(slot, pool.slotCount());
  }
  // Slot 0 (the waiting thread) must participate: with 200 tasks and only
  // 3 spawned workers it is statistically impossible for it to stay idle,
  // and the design guarantees it helps while waiting.
  EXPECT_FALSE(seen.empty());
}

TEST(TaskPoolTest, SingleSlotRunsInlineInSubmissionOrder) {
  TaskPool pool(1);
  std::vector<int> order;
  TaskGroup group(pool);
  for (int i = 0; i < 8; ++i) {
    group.submit("ordered", [&order, i](std::size_t) { order.push_back(i); });
  }
  group.wait();
  ASSERT_EQ(order.size(), 8U);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(TaskPoolTest, FirstExceptionIsRethrownFromWait) {
  TaskPool pool(4);
  std::atomic<int> ran{0};
  TaskGroup group(pool);
  group.submit("boom", [](std::size_t) -> void {
    throw std::runtime_error("task failed");
  });
  for (int i = 0; i < 16; ++i) {
    group.submit("bystander", [&ran](std::size_t) { ran.fetch_add(1); });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
  // A failing task cancels its group; bystanders either ran before the
  // failure or were skipped — but none may be lost.
  EXPECT_EQ(static_cast<std::size_t>(ran.load()) + group.skippedTasks(), 16U);
}

TEST(TaskPoolTest, StopTokenSkipsUnstartedTasks) {
  TaskPool pool(2);
  std::atomic<bool> tripped{false};
  std::atomic<int> ran{0};
  TaskGroup group(pool, [&tripped] { return tripped.load(); });
  // Trip the token from the first task: everything not yet started must be
  // skipped, and skippedTasks() has to account for them exactly.
  group.submit("tripper", [&tripped](std::size_t) { tripped.store(true); });
  for (int i = 0; i < 32; ++i) {
    group.submit("skippable", [&ran](std::size_t) { ran.fetch_add(1); });
  }
  group.wait();
  EXPECT_EQ(static_cast<std::size_t>(ran.load()) + group.skippedTasks(), 32U);
}

TEST(TaskPoolTest, PreTrippedTokenSkipsEverything) {
  TaskPool pool(4);
  std::atomic<int> ran{0};
  TaskGroup group(pool, [] { return true; });
  for (int i = 0; i < 16; ++i) {
    group.submit("never", [&ran](std::size_t) { ran.fetch_add(1); });
  }
  group.wait();
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(group.skippedTasks(), 16U);
}

TEST(TaskPoolTest, CancelSkipsUnstartedTasks) {
  TaskPool pool(1); // inline execution makes the cancellation point exact
  std::atomic<int> ran{0};
  TaskGroup group(pool);
  group.submit("canceller", [&group](std::size_t) { group.cancel(); });
  for (int i = 0; i < 8; ++i) {
    group.submit("after-cancel", [&ran](std::size_t) { ran.fetch_add(1); });
  }
  group.wait();
  EXPECT_TRUE(group.cancelled());
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(group.skippedTasks(), 8U);
}

TEST(TaskPoolTest, DestructorDrainsWithoutRethrow) {
  TaskPool pool(4);
  std::atomic<int> ran{0};
  {
    TaskGroup group(pool);
    group.submit("boom", [](std::size_t) -> void {
      throw std::runtime_error("unobserved");
    });
    for (int i = 0; i < 8; ++i) {
      group.submit("work", [&ran](std::size_t) { ran.fetch_add(1); });
    }
    // No wait(): the destructor must drain the group and swallow the
    // exception instead of terminating or leaving tasks referencing `ran`.
  }
  SUCCEED();
}

TEST(TaskPoolTest, GroupsOnOnePoolAreIndependent) {
  TaskPool pool(4);
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  TaskGroup groupA(pool);
  TaskGroup groupB(pool, [] { return true; }); // B skips everything
  for (int i = 0; i < 16; ++i) {
    groupA.submit("a", [&a](std::size_t) { a.fetch_add(1); });
    groupB.submit("b", [&b](std::size_t) { b.fetch_add(1); });
  }
  groupA.wait();
  groupB.wait();
  EXPECT_EQ(a.load(), 16);
  EXPECT_EQ(b.load(), 0);
  EXPECT_EQ(groupA.skippedTasks(), 0U);
  EXPECT_EQ(groupB.skippedTasks(), 16U);
}

TEST(TaskPoolTest, PhaseTimerRecordsTaskSpans) {
  obs::PhaseTimer phases;
  TaskPool pool(2);
  {
    TaskGroup group(pool, {}, &phases);
    group.submit("span:alpha", [](std::size_t) {});
    group.submit("span:beta", [](std::size_t) {});
    group.wait();
  }
  std::set<std::string> names;
  for (const auto& span : phases.spans()) {
    names.insert(span.name);
  }
  EXPECT_TRUE(names.count("span:alpha") == 1);
  EXPECT_TRUE(names.count("span:beta") == 1);
}

TEST(TaskPoolTest, ResolveSlotsMapsZeroToHardwareConcurrency) {
  EXPECT_GE(TaskPool::resolveSlots(0), 1U);
  EXPECT_EQ(TaskPool::resolveSlots(1), 1U);
  EXPECT_EQ(TaskPool::resolveSlots(6), 6U);
}

TEST(TaskPoolTest, EnqueueWakesASleepingWorkerWithoutHelp) {
  // Regression for a missed wakeup: enqueue used to notify the sleep
  // condition variable without holding sleepMutex_, so the notify could land
  // exactly between a worker's locked empty-recheck and its wait() — the
  // worker then slept through the freshly queued task, and only the polling
  // fallback in helpUntilDone kept runs live. This test removes that safety
  // net: the submitting thread never calls wait() while a task is pending,
  // so every task must be executed by a worker that the enqueue itself woke.
  TaskPool pool(2); // exactly one worker thread to wake
  TaskGroup group(pool);
  for (int round = 0; round < 2000; ++round) {
    std::atomic<bool> ran{false};
    group.submit("wake", [&ran](std::size_t) {
      ran.store(true, std::memory_order_release);
    });
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!ran.load(std::memory_order_acquire)) {
      const bool timedOut = std::chrono::steady_clock::now() >= deadline;
      ASSERT_FALSE(timedOut)
          << "worker never woke for the task submitted in round " << round;
      std::this_thread::yield();
    }
  }
  group.wait();
}

TEST(TaskPoolTest, ManySmallGroupsDoNotDeadlock) {
  // Regression guard for lost-wakeup bugs: rapid-fire group churn across a
  // shared pool must always terminate.
  TaskPool pool(4);
  for (int round = 0; round < 100; ++round) {
    std::atomic<int> ran{0};
    TaskGroup group(pool);
    for (int i = 0; i < 8; ++i) {
      group.submit("churn", [&ran](std::size_t) { ran.fetch_add(1); });
    }
    group.wait();
    ASSERT_EQ(ran.load(), 8) << "round " << round;
  }
}

} // namespace
} // namespace veriqc::check
