/// Protocol, admission-control and lifecycle tests for the veriqcd job
/// service: strict request parsing, structured rejections, the one-line-in /
/// one-report-out invariant under torture input, concurrent clients, the
/// shared warm gate cache, shutdown-mid-job accounting, and the 50-job
/// mixed-batch acceptance run.
#include "check/report.hpp"
#include "check/result.hpp"
#include "fault/fault.hpp"
#include "obs/json.hpp"
#include "serve/job.hpp"
#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <fstream>
#include <map>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

using namespace veriqc;
using namespace veriqc::serve;
using veriqc::obs::Json;

namespace {

std::string writeFile(const std::string& name, const std::string& text) {
  const auto path = std::string(::testing::TempDir()) + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  return path;
}

/// Two-qubit Bell-pair preparation; bellB is the same circuit, bellC drops
/// the entangler so (bellA, bellC) is a guaranteed not-equivalent pair.
std::string bellA() {
  static const std::string path = writeFile("serve_bell_a.qasm",
                                            "OPENQASM 2.0;\n"
                                            "include \"qelib1.inc\";\n"
                                            "qreg q[2];\n"
                                            "h q[0];\n"
                                            "cx q[0],q[1];\n");
  return path;
}

std::string bellB() {
  static const std::string path = writeFile("serve_bell_b.qasm",
                                            "OPENQASM 2.0;\n"
                                            "include \"qelib1.inc\";\n"
                                            "qreg q[2];\n"
                                            "h q[0];\n"
                                            "cx q[0],q[1];\n");
  return path;
}

std::string bellC() {
  static const std::string path = writeFile("serve_bell_c.qasm",
                                            "OPENQASM 2.0;\n"
                                            "include \"qelib1.inc\";\n"
                                            "qreg q[2];\n"
                                            "h q[0];\n");
  return path;
}

/// A deterministic many-gate circuit whose self-check takes long enough
/// (hundreds of milliseconds on any machine) that shutdown reliably lands
/// while it is in flight.
std::string heavyCircuit() {
  static const std::string path = [] {
    std::mt19937_64 rng(11);
    constexpr std::size_t kQubits = 16;
    std::string text = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[16];\n";
    const char* singles[] = {"h", "t", "s", "x"};
    for (int i = 0; i < 12000; ++i) {
      if (rng() % 5 == 0) {
        const auto a = rng() % kQubits;
        auto b = rng() % kQubits;
        if (b == a) {
          b = (b + 1) % kQubits;
        }
        text += "cx q[" + std::to_string(a) + "],q[" + std::to_string(b) +
                "];\n";
      } else {
        text += std::string(singles[rng() % 4]) + " q[" +
                std::to_string(rng() % kQubits) + "];\n";
      }
    }
    return writeFile("serve_heavy.qasm", text);
  }();
  return path;
}

/// Thread-safe report collector used as the service's sink.
class Capture {
public:
  JobService::ReportSink sink() {
    return [this](const std::string& id, const Json& report) {
      const std::lock_guard lock(mutex_);
      reports_.emplace_back(id, report);
    };
  }

  [[nodiscard]] std::vector<std::pair<std::string, Json>> reports() const {
    const std::lock_guard lock(mutex_);
    return reports_;
  }

  [[nodiscard]] std::size_t count() const {
    const std::lock_guard lock(mutex_);
    return reports_.size();
  }

private:
  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, Json>> reports_;
};

std::string jobLine(const std::string& id, const std::string& f1,
                    const std::string& f2, const std::string& config = "") {
  std::string line =
      R"({"id":")" + id + R"(","file1":")" + f1 + R"(","file2":")" + f2 +
      R"(")";
  if (!config.empty()) {
    line += ",\"config\":" + config;
  }
  return line + "}";
}

const Json& jobObject(const Json& report) { return report.at("job"); }

std::string verdictOf(const Json& report) {
  return report.at("verdict").at("verdict").asString();
}

check::Configuration quickDefaults() {
  check::Configuration defaults;
  defaults.timeout = std::chrono::seconds(30);
  defaults.runSimulation = false;
  defaults.parallel = false;
  return defaults;
}

} // namespace

// --- protocol parsing --------------------------------------------------------

TEST(JobParseTest, MinimalRequestInheritsTheDefaults) {
  check::Configuration defaults;
  defaults.timeout = std::chrono::milliseconds(4242);
  defaults.maxDDNodes = 777;
  const auto parsed =
      parseJobLine(jobLine("j", "a.qasm", "b.qasm"), defaults);
  ASSERT_EQ(parsed.reason, RejectReason::None);
  EXPECT_EQ(parsed.request.id, "j");
  EXPECT_EQ(parsed.request.file1, "a.qasm");
  EXPECT_EQ(parsed.request.file2, "b.qasm");
  EXPECT_EQ(parsed.request.config.timeout, std::chrono::milliseconds(4242));
  EXPECT_EQ(parsed.request.config.maxDDNodes, 777U);
}

TEST(JobParseTest, AppliesEveryWhitelistedConfigKey) {
  const check::Configuration defaults;
  const auto parsed = parseJobLine(
      jobLine("j", "a", "b",
              R"({"timeoutMilliseconds":1500,"simulationRuns":3,)"
              R"("checkThreads":2,"seed":9,"runAlternating":true,)"
              R"("runSimulation":false,"runZX":true,"runDense":false,)"
              R"("parallel":false,"maxDDNodes":1000,"maxMemoryMB":64,)"
              R"("recordTrace":true,"oracle":"lookahead"})"),
      defaults);
  ASSERT_EQ(parsed.reason, RejectReason::None) << parsed.detail;
  const auto& c = parsed.request.config;
  EXPECT_EQ(c.timeout, std::chrono::milliseconds(1500));
  EXPECT_EQ(c.simulationRuns, 3U);
  EXPECT_EQ(c.checkThreads, 2U);
  EXPECT_EQ(c.seed, 9U);
  EXPECT_TRUE(c.runAlternating);
  EXPECT_FALSE(c.runSimulation);
  EXPECT_TRUE(c.runZX);
  EXPECT_FALSE(c.runDense);
  EXPECT_FALSE(c.parallel);
  EXPECT_EQ(c.maxDDNodes, 1000U);
  EXPECT_EQ(c.maxMemoryMB, 64U);
  EXPECT_TRUE(c.recordTrace);
  EXPECT_EQ(c.oracle, check::OracleStrategy::Lookahead);
}

TEST(JobParseTest, TortureLinesAllRejectStructurally) {
  const check::Configuration defaults;
  const std::pair<const char*, const char*> cases[] = {
      {"", "invalid JSON"},
      {"{nope", "invalid JSON"},
      {"42", "expected a JSON object"},
      {"[1,2]", "expected a JSON object"},
      {R"({"file1":"a","file2":"b"})", "missing required key \"id\""},
      {R"({"id":"","file1":"a","file2":"b"})", "non-empty string"},
      {R"({"id":7,"file1":"a","file2":"b"})", "non-empty string"},
      {R"({"id":"j","file1":"a","file2":"b","bogus":1})",
       "unknown request key"},
      {R"({"id":"j","file1":"a","file2":"b","config":[]})",
       "expected an object"},
      {R"({"id":"j","file1":"a","file2":"b","config":{"maxMemryMB":5}})",
       "unknown configuration key"},
      {R"({"id":"j","file1":"a","file2":"b",)"
       R"("config":{"timeoutMilliseconds":"fast"}})",
       "non-negative integer"},
      {R"({"id":"j","file1":"a","file2":"b","config":{"maxDDNodes":-4}})",
       "non-negative integer"},
      {R"({"id":"j","file1":"a","file2":"b","config":{"runZX":1}})",
       "expected a boolean"},
      {R"({"id":"j","file1":"a","file2":"b","config":{"oracle":"psychic"}})",
       "unknown strategy"},
  };
  for (const auto& [line, expectedDetail] : cases) {
    const auto parsed = parseJobLine(line, defaults);
    EXPECT_EQ(parsed.reason, RejectReason::MalformedRequest) << line;
    EXPECT_NE(parsed.detail.find(expectedDetail), std::string::npos)
        << line << " -> " << parsed.detail;
  }
}

TEST(JobParseTest, TruncatedJsonKeepsTheInvariantViaRejection) {
  const check::Configuration defaults;
  // Simulate a line cut mid-transmission at every prefix length: none may
  // parse as an accidental other job, every failure is MalformedRequest.
  const std::string full = jobLine("j1", "a.qasm", "b.qasm",
                                   R"({"maxDDNodes":50})");
  for (std::size_t cut = 0; cut + 1 < full.size(); ++cut) {
    const auto parsed =
        parseJobLine(std::string_view(full).substr(0, cut), defaults);
    EXPECT_EQ(parsed.reason, RejectReason::MalformedRequest)
        << "prefix length " << cut;
  }
  EXPECT_EQ(parseJobLine(full, defaults).reason, RejectReason::None);
}

TEST(JobParseTest, RejectReasonWireNamesAreStable) {
  EXPECT_EQ(toString(RejectReason::None), "");
  EXPECT_EQ(toString(RejectReason::MalformedRequest), "malformed_request");
  EXPECT_EQ(toString(RejectReason::OversizedRequest), "oversized_request");
  EXPECT_EQ(toString(RejectReason::QueueFull), "queue_full");
  EXPECT_EQ(toString(RejectReason::MemoryBudget), "memory_budget");
  EXPECT_EQ(toString(RejectReason::BudgetExceedsLimit),
            "budget_exceeds_limit");
  EXPECT_EQ(toString(RejectReason::FaultPlanForbidden),
            "fault_plan_forbidden");
  EXPECT_EQ(toString(RejectReason::ShuttingDown), "shutting_down");
}

// --- admission control -------------------------------------------------------

TEST(JobServiceTest, RunsAJobAndEmitsOneValidReport) {
  Capture capture;
  JobService service(ServiceLimits{}, quickDefaults(), capture.sink());
  EXPECT_TRUE(service.submitLine(jobLine("ok", bellA(), bellB())));
  service.drain();
  const auto reports = capture.reports();
  ASSERT_EQ(reports.size(), 1U);
  EXPECT_EQ(reports[0].first, "ok");
  const auto& report = reports[0].second;
  EXPECT_TRUE(check::validateRunReport(report).empty());
  EXPECT_EQ(verdictOf(report), "equivalent");
  EXPECT_TRUE(jobObject(report).at("admitted").asBool());
  EXPECT_EQ(jobObject(report).at("reason").asString(), "");
  // The per-job RSS delta can never exceed the process-wide peak.
  const auto& resources = report.at("resources");
  EXPECT_LE(resources.at("peakResidentSetKB").asInt(),
            resources.at("processPeakResidentSetKB").asInt());
}

TEST(JobServiceTest, OversizedLinesAreRejectedBeforeParsing) {
  ServiceLimits limits;
  limits.maxLineBytes = 64;
  Capture capture;
  JobService service(limits, quickDefaults(), capture.sink());
  const auto line =
      jobLine("big", bellA(), bellB()) + std::string(200, ' ');
  EXPECT_FALSE(service.submitLine(line));
  service.drain();
  const auto reports = capture.reports();
  ASSERT_EQ(reports.size(), 1U);
  EXPECT_EQ(verdictOf(reports[0].second), "not_run");
  EXPECT_EQ(jobObject(reports[0].second).at("reason").asString(),
            "oversized_request");
}

TEST(JobServiceTest, BudgetAboveTheDaemonCapIsRejected) {
  ServiceLimits limits;
  limits.maxDDNodes = 1000;
  Capture capture;
  JobService service(limits, quickDefaults(), capture.sink());
  EXPECT_FALSE(service.submitLine(
      jobLine("greedy", bellA(), bellB(), R"({"maxDDNodes":100000})")));
  // At or under the cap is fine; an unset budget inherits it.
  EXPECT_TRUE(service.submitLine(
      jobLine("capped", bellA(), bellB(), R"({"maxDDNodes":1000})")));
  EXPECT_TRUE(service.submitLine(jobLine("inherit", bellA(), bellB())));
  service.drain();
  std::map<std::string, std::string> reasons;
  for (const auto& [id, report] : capture.reports()) {
    reasons[id] = jobObject(report).at("reason").asString();
    EXPECT_TRUE(check::validateRunReport(report).empty());
  }
  EXPECT_EQ(reasons.at("greedy"), "budget_exceeds_limit");
  EXPECT_EQ(reasons.at("capped"), "");
  EXPECT_EQ(reasons.at("inherit"), "");
}

TEST(JobServiceTest, MemoryBudgetShedsLoadInsteadOfOOMing) {
  ServiceLimits limits;
  limits.maxMemoryMB = 1; // any live process exceeds 1 MB resident
  Capture capture;
  JobService service(limits, quickDefaults(), capture.sink());
  EXPECT_FALSE(service.submitLine(jobLine("shed", bellA(), bellB())));
  const auto reports = capture.reports();
  ASSERT_EQ(reports.size(), 1U);
  EXPECT_EQ(jobObject(reports[0].second).at("reason").asString(),
            "memory_budget");
  EXPECT_EQ(verdictOf(reports[0].second), "not_run");
}

TEST(JobServiceTest, ZeroQueueCapacityRejectsAsQueueFull) {
  ServiceLimits limits;
  limits.maxQueuedJobs = 0;
  Capture capture;
  JobService service(limits, quickDefaults(), capture.sink());
  EXPECT_FALSE(service.submitLine(jobLine("full", bellA(), bellB())));
  const auto reports = capture.reports();
  ASSERT_EQ(reports.size(), 1U);
  EXPECT_EQ(jobObject(reports[0].second).at("reason").asString(),
            "queue_full");
}

TEST(JobServiceTest, FaultPlansAreForbiddenUnlessEnabled) {
  Capture capture;
  {
    JobService service(ServiceLimits{}, quickDefaults(), capture.sink());
    EXPECT_FALSE(service.submitLine(jobLine(
        "armed", bellA(), bellB(), R"({"faultPlan":"dd.slab_grow"})")));
  }
  const auto reports = capture.reports();
  ASSERT_EQ(reports.size(), 1U);
  EXPECT_EQ(jobObject(reports[0].second).at("reason").asString(),
            "fault_plan_forbidden");
}

TEST(JobServiceTest, JobScopedFaultPlansDoNotLeakIntoTheNextJob) {
  ServiceLimits limits;
  limits.allowFaultPlans = true;
  limits.useSharedGateCache = false;
  Capture capture;
  {
    JobService service(limits, quickDefaults(), capture.sink());
    // An armed job runs under its ScopedPlan; once its report is out the
    // registry must be fully disarmed again — the next job runs clean.
    EXPECT_TRUE(service.submitLine(jobLine(
        "faulty", bellA(), bellB(),
        R"({"faultPlan":"dd.slab_grow:times=0","engineRetryLimit":0})")));
    service.drain();
    EXPECT_FALSE(fault::Registry::instance().anyArmed());
    EXPECT_TRUE(service.submitLine(jobLine("clean", bellA(), bellB())));
    service.drain();
  }
  EXPECT_FALSE(fault::Registry::instance().anyArmed());
  std::map<std::string, std::string> verdicts;
  for (const auto& [id, report] : capture.reports()) {
    verdicts[id] = verdictOf(report);
  }
  // The armed job must not have produced a clean verdict, and the fault
  // must not have followed it into the clean job.
  EXPECT_NE(verdicts.at("faulty"), "equivalent");
  EXPECT_EQ(verdicts.at("clean"), "equivalent");
}

TEST(JobServiceTest, StaleEnvironmentFaultPlanIsDisarmedByTheService) {
  // Simulate the stale VERIQC_FAULT scenario: something armed the registry
  // before the daemon started. Constructing the service must disarm it.
  fault::Registry::instance().armPlan("dd.slab_grow:after=1000");
  ASSERT_TRUE(fault::Registry::instance().anyArmed());
  Capture capture;
  JobService service(ServiceLimits{}, quickDefaults(), capture.sink());
  EXPECT_FALSE(fault::Registry::instance().anyArmed());
}

// --- lifecycle ---------------------------------------------------------------

TEST(JobServiceTest, ShutdownMidJobRecordsCancelledAndRejectsTheQueue) {
  ServiceLimits limits;
  limits.useSharedGateCache = false; // keep the heavy job's start cheap
  Capture capture;
  JobService service(limits, quickDefaults(), capture.sink());
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(service.submitLine(jobLine("slow-" + std::to_string(i),
                                           heavyCircuit(), heavyCircuit())));
  }
  // Wait for the first job to be in flight, then pull the plug.
  while (service.stats().active == 0 && service.stats().completed == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  service.shutdown(/*cancelInFlight=*/true);
  const auto reports = capture.reports();
  ASSERT_EQ(reports.size(), 6U); // one report per submission, none lost
  std::size_t cancelled = 0;
  std::size_t shutDown = 0;
  std::size_t finished = 0;
  for (const auto& [id, report] : reports) {
    EXPECT_TRUE(check::validateRunReport(report).empty()) << id;
    const auto verdict = verdictOf(report);
    if (verdict == "cancelled") {
      ++cancelled;
      EXPECT_TRUE(jobObject(report).at("admitted").asBool());
    } else if (jobObject(report).at("reason").asString() ==
               "shutting_down") {
      ++shutDown;
      EXPECT_EQ(verdict, "not_run");
    } else {
      ++finished;
    }
  }
  // The in-flight job is cancelled — accounted, not lost — and the rest of
  // the queue is rejected with the structured shutdown reason. (A job may
  // squeeze through to completion before the shutdown lands; it must then
  // carry a real verdict, never vanish.)
  EXPECT_GE(cancelled, 1U);
  EXPECT_GE(shutDown, 4U);
  EXPECT_EQ(cancelled + shutDown + finished, 6U);
  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, 6U);
  EXPECT_EQ(stats.admitted, 6U);
  EXPECT_EQ(stats.rejected, shutDown);
  EXPECT_EQ(stats.queued, 0U);
}

TEST(JobServiceTest, ConcurrentShutdownCallsDoNotDoubleJoin) {
  // Regression: two shutdown() callers could both get past the
  // already-shut-down check and race each other joining and clearing the
  // worker handles — and joining the same std::thread twice is undefined
  // behaviour. shutdown() is now serialized end to end under its own mutex,
  // so every caller (including the destructor, which runs last) must return
  // cleanly no matter how many race.
  ServiceLimits limits;
  limits.useSharedGateCache = false;
  Capture capture;
  JobService service(limits, quickDefaults(), capture.sink());
  for (int i = 0; i < 4; ++i) {
    service.submitLine(
        jobLine("racy-" + std::to_string(i), heavyCircuit(), heavyCircuit()));
  }
  std::vector<std::thread> callers;
  callers.reserve(8);
  for (int i = 0; i < 8; ++i) {
    callers.emplace_back(
        [&service] { service.shutdown(/*cancelInFlight=*/true); });
  }
  for (auto& caller : callers) {
    caller.join();
  }
  // Still idempotent afterwards, and the service is properly down.
  service.shutdown(/*cancelInFlight=*/false);
  EXPECT_FALSE(service.submitLine(jobLine("late", bellA(), bellB())));
  // One report per submission, none lost and none duplicated by the racing
  // shutdowns (4 jobs + 1 post-shutdown rejection).
  EXPECT_EQ(capture.count(), 5U);
}

TEST(JobServiceTest, SubmissionsAfterShutdownAreRejected) {
  Capture capture;
  JobService service(ServiceLimits{}, quickDefaults(), capture.sink());
  service.shutdown(/*cancelInFlight=*/false);
  EXPECT_FALSE(service.submitLine(jobLine("late", bellA(), bellB())));
  const auto reports = capture.reports();
  ASSERT_EQ(reports.size(), 1U);
  EXPECT_EQ(jobObject(reports[0].second).at("reason").asString(),
            "shutting_down");
}

TEST(JobServiceTest, UnreadableCircuitFilesYieldAnEngineErrorReport) {
  Capture capture;
  JobService service(ServiceLimits{}, quickDefaults(), capture.sink());
  EXPECT_TRUE(service.submitLine(
      jobLine("ghost", "/nonexistent/a.qasm", bellB())));
  service.drain();
  const auto reports = capture.reports();
  ASSERT_EQ(reports.size(), 1U);
  const auto& report = reports[0].second;
  EXPECT_TRUE(check::validateRunReport(report).empty());
  EXPECT_EQ(verdictOf(report), "engine_error");
  EXPECT_TRUE(jobObject(report).at("admitted").asBool());
}

// --- shared warm gate cache --------------------------------------------------

TEST(JobServiceTest, SecondJobOfAShapeRunsWarm) {
  Capture capture;
  JobService service(ServiceLimits{}, quickDefaults(), capture.sink());
  const double tolerance = quickDefaults().numericalTolerance;
  EXPECT_TRUE(service.submitLine(jobLine("cold", bellA(), bellB())));
  service.drain();
  EXPECT_GT(service.sharedGateCache().totalEntries(), 0U);
  const auto epochAfterFirst = service.sharedGateCache().epoch(2, tolerance);
  EXPECT_GT(epochAfterFirst, 0U);
  EXPECT_TRUE(service.submitLine(jobLine("warm", bellA(), bellB())));
  service.drain();
  // The same gate set publishes nothing new the second time around.
  EXPECT_EQ(service.sharedGateCache().epoch(2, tolerance), epochAfterFirst);
  std::map<std::string, Json> byId;
  for (const auto& [id, report] : capture.reports()) {
    byId.emplace(id, report);
  }
  const auto warmHits = [](const Json& report) {
    const auto* hits =
        report.at("counters").find("dd.gate_cache.warm_hits");
    return hits == nullptr ? 0.0 : hits->asDouble();
  };
  EXPECT_GT(warmHits(byId.at("warm")), 0.0);
  // Both jobs agree on the verdict — shared state never changes results.
  EXPECT_EQ(verdictOf(byId.at("cold")), "equivalent");
  EXPECT_EQ(verdictOf(byId.at("warm")), "equivalent");
}

// --- concurrency and the acceptance batch ------------------------------------

TEST(JobServiceTest, ConcurrentClientsAllGetTheirReports) {
  ServiceLimits limits;
  limits.maxActiveJobs = 2;
  limits.maxQueuedJobs = 256;
  Capture capture;
  JobService service(limits, quickDefaults(), capture.sink());
  constexpr int kClients = 4;
  constexpr int kJobsPerClient = 8;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&service, c] {
      for (int j = 0; j < kJobsPerClient; ++j) {
        const auto id =
            "c" + std::to_string(c) + "-" + std::to_string(j);
        if (j % 3 == 2) {
          service.submitLine("{broken json " + id);
        } else {
          service.submitLine(jobLine(id, bellA(), j % 2 == 0 ? bellB()
                                                             : bellC()));
        }
      }
    });
  }
  for (auto& client : clients) {
    client.join();
  }
  service.drain();
  const auto reports = capture.reports();
  ASSERT_EQ(reports.size(),
            static_cast<std::size_t>(kClients * kJobsPerClient));
  std::size_t equivalent = 0;
  std::size_t notEquivalent = 0;
  std::size_t malformed = 0;
  for (const auto& [id, report] : reports) {
    EXPECT_TRUE(check::validateRunReport(report).empty()) << id;
    const auto verdict = verdictOf(report);
    if (verdict == "equivalent") {
      ++equivalent;
    } else if (verdict == "not_equivalent") {
      ++notEquivalent;
    } else if (jobObject(report).at("reason").asString() ==
               "malformed_request") {
      ++malformed;
    }
  }
  EXPECT_EQ(equivalent, static_cast<std::size_t>(kClients * 3));
  EXPECT_EQ(notEquivalent, static_cast<std::size_t>(kClients * 3));
  EXPECT_EQ(malformed, static_cast<std::size_t>(kClients * 2));
}

TEST(JobServiceTest, FiftyJobMixedBatchAcceptance) {
  ServiceLimits limits;
  limits.maxDDNodes = 100000;
  Capture capture;
  JobService service(limits, quickDefaults(), capture.sink());

  // 50 submissions cycling through every kind of outcome: equivalent and
  // not-equivalent checks, malformed lines, unknown config keys, budget
  // violations, and unreadable files.
  std::map<std::string, std::string> expected; // id -> verdict or reason
  for (int i = 0; i < 50; ++i) {
    const auto id = "batch-" + std::to_string(i);
    switch (i % 6) {
    case 0:
    case 1:
      service.submitLine(jobLine(id, bellA(), bellB()));
      expected[id] = "equivalent";
      break;
    case 2:
      service.submitLine(jobLine(id, bellA(), bellC(),
                                 R"({"runSimulation":false})"));
      expected[id] = "not_equivalent";
      break;
    case 3:
      service.submitLine("{\"id\":\"" + id + "\", this is not json");
      expected[id] = "malformed_request";
      break;
    case 4:
      service.submitLine(
          jobLine(id, bellA(), bellB(), R"({"maxDDNoodles":12})"));
      expected[id] = "malformed_request";
      break;
    default:
      service.submitLine(
          jobLine(id, bellA(), bellB(), R"({"maxDDNodes":99999999})"));
      expected[id] = "budget_exceeds_limit";
      break;
    }
  }
  service.drain();

  const auto reports = capture.reports();
  ASSERT_EQ(reports.size(), 50U); // exactly one line per submission
  std::map<std::string, std::size_t> seen;
  double reportedMultiplyLookups = 0.0;
  std::size_t ran = 0;
  for (const auto& [id, report] : reports) {
    ++seen[id];
    EXPECT_TRUE(check::validateRunReport(report).empty()) << id;
    const auto& job = jobObject(report);
    const auto verdict = verdictOf(report);
    const auto reason = job.at("reason").asString();
    // Malformed lines cannot always carry their id; match what they can.
    if (!id.empty()) {
      const auto want = expected.at(id);
      if (want == "equivalent" || want == "not_equivalent") {
        EXPECT_EQ(verdict, want) << id;
        EXPECT_TRUE(job.at("admitted").asBool()) << id;
      } else {
        EXPECT_EQ(reason, want) << id;
        EXPECT_FALSE(job.at("admitted").asBool()) << id;
        EXPECT_EQ(verdict, "not_run") << id;
        EXPECT_FALSE(job.at("detail").asString().empty()) << id;
      }
    }
    if (job.at("admitted").asBool()) {
      ++ran;
      if (const auto* lookups =
              report.at("counters").find("dd.multiply.lookups");
          lookups != nullptr) {
        reportedMultiplyLookups += lookups->asDouble();
      }
    }
  }
  // Rejected malformed lines may report an empty id; every non-empty id
  // appears exactly once.
  for (const auto& [id, count] : seen) {
    if (!id.empty()) {
      EXPECT_EQ(count, 1U) << id;
    }
  }

  // Daemon metrics are consistent with the per-job reports: admission
  // counters add up, and the kernel counters are the sum of what every
  // job's own report declared.
  const auto metrics = service.metricsJson();
  EXPECT_EQ(metrics.at("schema").asString(), "veriqc-metrics/v1");
  const auto& counters = metrics.at("counters");
  const auto counter = [&counters](const char* name) {
    const auto* value = counters.find(name);
    return value == nullptr ? 0.0 : value->asDouble();
  };
  EXPECT_DOUBLE_EQ(counter("serve/jobs_submitted"), 50.0);
  EXPECT_DOUBLE_EQ(counter("serve/jobs_admitted"),
                   static_cast<double>(ran));
  EXPECT_DOUBLE_EQ(counter("serve/jobs_rejected"),
                   50.0 - static_cast<double>(ran));
  EXPECT_DOUBLE_EQ(counter("serve/jobs_completed"),
                   static_cast<double>(ran));
  EXPECT_DOUBLE_EQ(counter("serve/verdict.equivalent") +
                       counter("serve/verdict.not_equivalent") +
                       counter("serve/verdict.probably_equivalent"),
                   static_cast<double>(ran));
  EXPECT_DOUBLE_EQ(counter("serve/rejected.malformed_request"), 16.0);
  EXPECT_DOUBLE_EQ(counter("serve/rejected.budget_exceeds_limit"), 8.0);
  EXPECT_DOUBLE_EQ(counter("dd.multiply.lookups"),
                   reportedMultiplyLookups);

  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, 50U);
  EXPECT_EQ(stats.admitted + stats.rejected, 50U);
  EXPECT_EQ(stats.completed, stats.admitted);
  EXPECT_EQ(stats.queued, 0U);
  EXPECT_EQ(stats.active, 0U);
}
