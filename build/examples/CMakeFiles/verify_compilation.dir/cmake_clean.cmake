file(REMOVE_RECURSE
  "CMakeFiles/verify_compilation.dir/verify_compilation.cpp.o"
  "CMakeFiles/verify_compilation.dir/verify_compilation.cpp.o.d"
  "verify_compilation"
  "verify_compilation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_compilation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
