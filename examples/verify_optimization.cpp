/// \file verify_optimization.cpp
/// \brief Use case 2 of the paper: verifying that an optimized implementation
///        still realizes the original functionality. Decomposes benchmark
///        circuits, optimizes them, reports the gate-count reduction and
///        verifies the result with both paradigms.
#include "check/manager.hpp"
#include "circuits/benchmarks.hpp"
#include "compile/decompose.hpp"
#include "opt/optimizer.hpp"

#include <cstdio>

int main() {
  using namespace veriqc;

  std::vector<QuantumCircuit> originals;
  originals.push_back(circuits::grover(4, 11));
  originals.push_back(circuits::quantumWalk(3, 3));
  originals.push_back(circuits::urfLike(6, 40, 154));
  originals.push_back(circuits::constantAdder(8, 63));
  originals.push_back(circuits::qft(8));

  check::Configuration config;
  config.simulationRuns = 16;
  config.timeout = std::chrono::seconds(60);

  std::printf("%-18s %8s %8s %8s | %-12s | %-12s\n", "circuit", "|G|",
              "|G_opt|", "saved", "dd verdict", "zx verdict");
  for (const auto& original : originals) {
    const auto decomposed = compile::decomposeToCnot(original);
    const auto optimized = opt::optimize(decomposed);
    const auto dd = check::checkEquivalence(decomposed, optimized, config);
    const auto zx = check::zxCheck(decomposed, optimized, config);
    const auto saved = decomposed.gateCount() - optimized.gateCount();
    std::printf("%-18s %8zu %8zu %7.1f%% | %-12s | %-12s\n",
                original.name().c_str(), decomposed.gateCount(),
                optimized.gateCount(),
                100.0 * static_cast<double>(saved) /
                    static_cast<double>(decomposed.gateCount()),
                check::toString(dd.criterion).c_str(),
                check::toString(zx.criterion).c_str());
    std::fflush(stdout);
  }
  return 0;
}
