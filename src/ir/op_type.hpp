/// \file op_type.hpp
/// \brief Enumeration of the supported quantum operations.
#pragma once

#include <cstdint>
#include <string>

namespace veriqc {

/// The base operation types. Controlled variants (CX, CCX, MCX, CZ, CP, ...)
/// are expressed as the base type plus a (possibly empty) set of controls on
/// the Operation, e.g. a Toffoli is `X` with two controls.
enum class OpType : std::uint8_t {
  None,
  // --- single-qubit, parameter-free -----------------------------------
  I,    ///< identity
  H,    ///< Hadamard
  X,    ///< Pauli-X
  Y,    ///< Pauli-Y
  Z,    ///< Pauli-Z
  S,    ///< phase sqrt(Z)
  Sdg,  ///< inverse of S
  T,    ///< fourth root of Z
  Tdg,  ///< inverse of T
  SX,   ///< sqrt(X)
  SXdg, ///< inverse of sqrt(X)
  // --- single-qubit, parameterized ------------------------------------
  RX, ///< rotation about X, params = {theta}
  RY, ///< rotation about Y, params = {theta}
  RZ, ///< rotation about Z, params = {theta}
  P,  ///< phase gate diag(1, e^{i theta}), params = {theta}
  U2, ///< u2(phi, lambda) = u3(pi/2, phi, lambda), params = {phi, lambda}
  U3, ///< generic single-qubit gate, params = {theta, phi, lambda}
  // --- two-target ------------------------------------------------------
  SWAP, ///< exchange two qubits
  // --- meta -------------------------------------------------------------
  Barrier, ///< no-op scheduling barrier (ignored by all checkers)
  Measure, ///< terminal measurement (ignored by all checkers)
};

/// Human-readable (and QASM-compatible where applicable) name of a type.
[[nodiscard]] std::string toString(OpType type);

/// True for single-qubit base types (one target, matrix is 2x2).
[[nodiscard]] bool isSingleTargetType(OpType type) noexcept;

/// True for types carrying the given number of parameters.
[[nodiscard]] std::size_t numParameters(OpType type) noexcept;

/// True if the gate matrix is diagonal (commutes with Z / controls).
[[nodiscard]] bool isDiagonalType(OpType type) noexcept;

} // namespace veriqc
