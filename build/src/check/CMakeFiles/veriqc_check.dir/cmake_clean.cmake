file(REMOVE_RECURSE
  "CMakeFiles/veriqc_check.dir/dd_checkers.cpp.o"
  "CMakeFiles/veriqc_check.dir/dd_checkers.cpp.o.d"
  "CMakeFiles/veriqc_check.dir/manager.cpp.o"
  "CMakeFiles/veriqc_check.dir/manager.cpp.o.d"
  "CMakeFiles/veriqc_check.dir/result.cpp.o"
  "CMakeFiles/veriqc_check.dir/result.cpp.o.d"
  "CMakeFiles/veriqc_check.dir/zx_checker.cpp.o"
  "CMakeFiles/veriqc_check.dir/zx_checker.cpp.o.d"
  "libveriqc_check.a"
  "libveriqc_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veriqc_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
