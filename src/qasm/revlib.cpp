#include "qasm/revlib.hpp"

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

namespace veriqc::qasm {

namespace {

/// Upper bound on `.numvars`: rejects adversarial headers before the
/// QuantumCircuit constructor tries to allocate for them.
constexpr std::size_t kMaxNumvars = 1U << 20U;

struct Line {
  std::vector<std::string> tokens;
  std::size_t number = 0;
};

std::vector<Line> splitLines(const std::string& source) {
  std::vector<Line> lines;
  std::istringstream stream(source);
  std::string raw;
  std::size_t number = 0;
  while (std::getline(stream, raw)) {
    ++number;
    if (const auto hash = raw.find('#'); hash != std::string::npos) {
      raw.erase(hash);
    }
    std::istringstream lineStream(raw);
    Line line;
    line.number = number;
    std::string token;
    while (lineStream >> token) {
      line.tokens.push_back(token);
    }
    if (!line.tokens.empty()) {
      lines.push_back(std::move(line));
    }
  }
  return lines;
}

} // namespace

QuantumCircuit parseReal(const std::string& source, const std::string& name) {
  const auto lines = splitLines(source);
  std::size_t numvars = 0;
  std::map<std::string, Qubit> variables;
  QuantumCircuit circuit;
  bool inBody = false;
  bool sized = false;

  const auto ensureCircuit = [&](const std::size_t lineNo) {
    if (sized) {
      return;
    }
    if (numvars == 0) {
      throw ParseError(".numvars missing or zero", lineNo, 1);
    }
    circuit = QuantumCircuit(numvars, name);
    sized = true;
  };

  const auto resolve = [&](std::string token,
                           const std::size_t lineNo) -> std::pair<Qubit, bool> {
    bool negative = false;
    if (!token.empty() && token.front() == '-') {
      negative = true;
      token.erase(0, 1);
    }
    const auto it = variables.find(token);
    if (it != variables.end()) {
      return {it->second, negative};
    }
    // Files without a .variables line use x0, x1, ... implicitly.
    if (token.size() > 1 && (token[0] == 'x' || token[0] == 'b')) {
      try {
        const auto index = static_cast<Qubit>(std::stoul(token.substr(1)));
        if (index < numvars) {
          return {index, negative};
        }
      } catch (const std::exception&) {
        // fall through to the error below
      }
    }
    throw ParseError("unknown variable '" + token + "'", lineNo, 1);
  };

  for (const auto& line : lines) {
    const auto& head = line.tokens.front();
    if (head[0] == '.') {
      if (head == ".numvars") {
        if (line.tokens.size() != 2) {
          throw ParseError(".numvars needs one argument", line.number, 1);
        }
        try {
          numvars = std::stoul(line.tokens[1]);
        } catch (const std::exception&) {
          throw ParseError(".numvars argument '" + line.tokens[1] +
                               "' is not a valid count",
                           line.number, 1);
        }
        if (numvars > kMaxNumvars) {
          throw ParseError(".numvars " + std::to_string(numvars) +
                               " exceeds the limit of " +
                               std::to_string(kMaxNumvars) + " variables",
                           line.number, 1);
        }
      } else if (head == ".variables") {
        if (numvars != 0 && line.tokens.size() - 1 > numvars) {
          throw ParseError(".variables lists more names than .numvars",
                           line.number, 1);
        }
        for (std::size_t i = 1; i < line.tokens.size(); ++i) {
          variables[line.tokens[i]] = static_cast<Qubit>(i - 1);
        }
      } else if (head == ".begin") {
        ensureCircuit(line.number);
        inBody = true;
      } else if (head == ".end") {
        inBody = false;
      }
      // .inputs/.outputs/.constants/.garbage/.version and unknown
      // directives carry no circuit semantics here.
      continue;
    }
    if (!inBody) {
      ensureCircuit(line.number);
      inBody = true; // files may omit .begin
    } else {
      ensureCircuit(line.number);
    }

    // Gate line: mnemonic followed by variable names.
    const auto& mnemonic = head;
    std::vector<Qubit> qubits;
    std::vector<Qubit> negated;
    for (std::size_t i = 1; i < line.tokens.size(); ++i) {
      const auto [q, negative] = resolve(line.tokens[i], line.number);
      qubits.push_back(q);
      if (negative && i + 1 < line.tokens.size()) {
        negated.push_back(q); // only controls may be negated
      } else if (negative) {
        throw ParseError("target cannot be negated", line.number, 1);
      }
    }
    if (qubits.empty()) {
      throw ParseError("gate without operands", line.number, 1);
    }
    // Controls and targets must name pairwise-distinct variables; reject
    // aliased operand lists (`t2 a a`) at parse time with the gate's line.
    for (std::size_t i = 0; i < qubits.size(); ++i) {
      for (std::size_t j = i + 1; j < qubits.size(); ++j) {
        if (qubits[i] == qubits[j]) {
          throw ParseError("aliased operands: variable '" +
                               line.tokens[j + 1] +
                               "' appears more than once in '" + mnemonic +
                               "'",
                           line.number, 1);
        }
      }
    }
    try {
      // Negative controls via X conjugation.
      for (const auto q : negated) {
        circuit.x(q);
      }
      const char kind = mnemonic[0];
      if (kind == 't') {
        const Qubit target = qubits.back();
        qubits.pop_back();
        circuit.mcx(qubits, target);
      } else if (kind == 'f') {
        if (qubits.size() < 2) {
          throw ParseError("Fredkin needs two targets", line.number, 1);
        }
        const Qubit b = qubits.back();
        qubits.pop_back();
        const Qubit a = qubits.back();
        qubits.pop_back();
        circuit.append(Operation(OpType::SWAP, qubits, {a, b}));
      } else if (kind == 'p') {
        if (qubits.size() != 3) {
          throw ParseError("Peres gate needs three operands", line.number, 1);
        }
        circuit.ccx(qubits[0], qubits[1], qubits[2]);
        circuit.cx(qubits[0], qubits[1]);
      } else if (kind == 'v') {
        const bool dagger = mnemonic.size() > 1 && mnemonic[1] == '+';
        const Qubit target = qubits.back();
        qubits.pop_back();
        circuit.append(Operation(dagger ? OpType::SXdg : OpType::SX, qubits,
                                 {target}));
      } else {
        throw ParseError("unsupported gate '" + mnemonic + "'", line.number,
                         1);
      }
      for (const auto q : negated) {
        circuit.x(q);
      }
    } catch (const CircuitError& e) {
      // e.g. a .variables name mapping past .numvars, or duplicate operands.
      throw ParseError(e.what(), line.number, 1);
    }
  }
  ensureCircuit(lines.empty() ? 0 : lines.back().number);
  return circuit;
}

QuantumCircuit parseRealFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open .real file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parseReal(buffer.str(),
                   std::filesystem::path(path).stem().string());
}

} // namespace veriqc::qasm
