/// Randomized agreement checks between the DD and ZX paradigms, plus the
/// manager's sequential-skip and the ZX checker's stop-attribution contracts.
#include "check/manager.hpp"
#include "circuits/benchmarks.hpp"
#include "circuits/error_injection.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <random>

namespace veriqc::check {
namespace {

Configuration quickConfig() {
  Configuration config;
  config.simulationRuns = 8;
  config.seed = 7;
  return config;
}

// --- cross-paradigm agreement ------------------------------------------------

TEST(CrossParadigmTest, ZXAndAlternatingAgreeOnCliffordTInverses) {
  // Composing a Clifford+T circuit with its own inverse lets the phases
  // cancel (Sec. 6.2), so both paradigms must prove equivalence.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto c = circuits::randomCliffordT(4, 10, 0.25, seed);
    const auto zx = zxCheck(c, c);
    EXPECT_EQ(zx.criterion, EquivalenceCriterion::EquivalentUpToGlobalPhase)
        << "seed " << seed << ": " << zx.toString();
    const auto dd = ddAlternatingCheck(c, c, quickConfig());
    EXPECT_TRUE(provedEquivalent(dd.criterion)) << "seed " << seed;
  }
}

TEST(CrossParadigmTest, SingleGateMutantsNeverProveEquivalent) {
  // The ZX engine is incomplete but sound: for a circuit damaged by either
  // error model it may fail to decide, but it must never certify
  // equivalence — and the DD checker must prove non-equivalence.
  std::mt19937_64 rng(17);
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto base = circuits::randomCliffordT(4, 12, 0.2, seed);
    const auto mutant = (seed % 2 == 0)
                            ? circuits::removeRandomGate(base, rng)
                            : circuits::flipRandomCnot(base, rng);
    ASSERT_TRUE(mutant.has_value()) << "seed " << seed;
    const auto dd = ddAlternatingCheck(base, *mutant, quickConfig());
    if (dd.criterion != EquivalenceCriterion::NotEquivalent) {
      // Rarely the mutation is a no-op (e.g. flipping a CNOT sandwiched in
      // a symmetric context); agreement is all that can be required then.
      continue;
    }
    const auto zx = zxCheck(base, *mutant);
    EXPECT_FALSE(provedEquivalent(zx.criterion))
        << "seed " << seed << ": " << zx.toString();
  }
}

// --- manager sequential skipping ---------------------------------------------

TEST(ManagerSequentialTest, SkipsRemainingEnginesAfterDefinitiveVerdict) {
  Configuration config = quickConfig();
  config.parallel = false;
  config.runZX = true;
  EquivalenceCheckingManager manager(circuits::ghz(3), circuits::ghz(3),
                                     config);
  const auto result = manager.run();
  EXPECT_TRUE(provedEquivalent(result.criterion)) << result.toString();
  const auto& slots = manager.engineResults();
  ASSERT_EQ(slots.size(), 3U);
  // The alternating checker settles the question immediately; everything
  // after it must be left untouched and honestly marked as skipped.
  EXPECT_TRUE(isDefinitive(slots[0].criterion)) << slots[0].toString();
  EXPECT_EQ(slots[1].criterion, EquivalenceCriterion::NotRun);
  EXPECT_EQ(slots[2].criterion, EquivalenceCriterion::NotRun);
  EXPECT_EQ(slots[2].method, "zx-calculus");
  EXPECT_EQ(slots[1].runtimeSeconds, 0.0);
}

TEST(ManagerSequentialTest, NotRunSlotsNeverWinTheCombinedVerdict) {
  Configuration config = quickConfig();
  config.parallel = false;
  config.runAlternating = false;
  config.runSimulation = false;
  config.runZX = true;
  // Arbitrary-angle optimized pairs can leave the (incomplete) ZX engine
  // with NoInformation; the combined verdict must still be that engine's
  // real outcome, never a synthetic NotRun.
  auto damaged = circuits::ghz(3);
  damaged.ops().pop_back();
  const auto result = checkEquivalence(circuits::ghz(3), damaged, config);
  EXPECT_EQ(result.criterion, EquivalenceCriterion::NoInformation)
      << result.toString();
}

// --- ZX checker stop attribution ---------------------------------------------

TEST(ZXStopAttributionTest, SiblingCancellationIsNotATimeout) {
  const auto c = circuits::randomCliffordT(4, 10, 0.2, 1);
  Configuration config; // no deadline configured
  const auto result = zxCheck(c, c, config, [] { return true; });
  EXPECT_EQ(result.criterion, EquivalenceCriterion::Cancelled)
      << result.toString();
}

TEST(ZXStopAttributionTest, DeadlineExpiryIsATimeout) {
  // The checker measures its deadline from its own start, so the workload
  // must reliably outlast the 1 ms budget (this reduction takes tens of
  // milliseconds even in Release builds).
  const auto c = circuits::randomClifford(16, 200, 2);
  Configuration config;
  config.timeout = std::chrono::milliseconds(1);
  const auto result = zxCheck(c, c, config);
  EXPECT_EQ(result.criterion, EquivalenceCriterion::Timeout)
      << result.toString();
}

TEST(ZXStopAttributionTest, CompletedRunReportsRuleDigest) {
  const auto c = circuits::randomCliffordT(4, 10, 0.25, 3);
  const auto result = zxCheck(c, c);
  EXPECT_EQ(result.criterion, EquivalenceCriterion::EquivalentUpToGlobalPhase);
  EXPECT_GT(result.rewrites, 0U);
  EXPECT_NE(result.zxRuleDigest.find("spider"), std::string::npos)
      << result.zxRuleDigest;
  // The digest also reaches the human-readable summary.
  EXPECT_NE(result.toString().find("zx rules"), std::string::npos);
}

// --- configuration knobs -----------------------------------------------------

TEST(ZXConfigTest, GadgetRulesOffStillProvesCliffordPairs) {
  Configuration config;
  config.zxGadgetRules = false;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto c = circuits::randomClifford(4, 12, seed);
    const auto result = zxCheck(c, c, config);
    EXPECT_EQ(result.criterion,
              EquivalenceCriterion::EquivalentUpToGlobalPhase)
        << "seed " << seed << ": " << result.toString();
  }
}

TEST(ZXConfigTest, PhaseSnapRecoversNoisyCliffordTAngles) {
  // Perturb every T phase by ~1e-13: with the default snap tolerance the
  // ZX engine sees exact PiRationals and still proves equivalence.
  const auto clean = circuits::randomCliffordT(4, 12, 0.3, 9);
  auto noisy = clean;
  for (auto& op : noisy.ops()) {
    if (op.type == OpType::T) {
      op.type = OpType::RZ;
      op.params = {PI / 4.0 + 1e-13};
    }
  }
  const auto snapped = zxCheck(clean, noisy);
  EXPECT_EQ(snapped.criterion,
            EquivalenceCriterion::EquivalentUpToGlobalPhase)
      << snapped.toString();
  // With snapping effectively disabled the noisy angles stay irrational,
  // the phases no longer cancel symbolically, and the sound engine must
  // refuse to certify (it may not claim non-equivalence either).
  Configuration strict;
  strict.zxPhaseSnapTolerance = 0.0;
  const auto unsnapped = zxCheck(clean, noisy, strict);
  EXPECT_NE(unsnapped.criterion, EquivalenceCriterion::NotEquivalent);
}

} // namespace
} // namespace veriqc::check
