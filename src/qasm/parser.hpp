/// \file parser.hpp
/// \brief OpenQASM 2.0 parser producing a QuantumCircuit.
///
/// Supported: the OPENQASM 2.0 header, includes (the qelib1.inc standard
/// library is built in), qreg/creg declarations, the full qelib1 gate set
/// plus c3x/c4x, user-defined `gate` blocks (recursively expanded at call
/// sites with parameter substitution), expression parameters (+ - * / ^,
/// pi, sin/cos/tan/exp/ln/sqrt), register broadcasting, barrier and
/// terminal measurements. `reset` and `if` are rejected (the equivalence
/// checkers handle unitary circuits).
#pragma once

#include "ir/circuit.hpp"
#include "qasm/lexer.hpp"

#include <string>

namespace veriqc::qasm {

/// Parse OpenQASM 2.0 source text.
/// \throws ParseError on syntax errors or unsupported constructs.
[[nodiscard]] QuantumCircuit parse(const std::string& source,
                                   const std::string& name = "");

/// Parse an OpenQASM 2.0 file.
/// \throws std::runtime_error if the file cannot be read.
[[nodiscard]] QuantumCircuit parseFile(const std::string& path);

} // namespace veriqc::qasm
