#include "circuits/benchmarks.hpp"
#include "dd/package.hpp"
#include "sim/dd_simulator.hpp"
#include "sim/dense.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace veriqc {
namespace {

using dd::Package;

/// Dense matrix of a DD for cross-validation.
sim::Matrix toDense(const Package& p, const dd::mEdge& e) {
  const std::size_t dim = std::size_t{1} << p.numQubits();
  sim::Matrix m(dim);
  for (std::size_t r = 0; r < dim; ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      m.at(r, c) = p.getEntry(e, r, c);
    }
  }
  return m;
}

TEST(RealTableTest, InternsWithinTolerance) {
  dd::RealTable table(1e-10);
  const double a = table.lookup(0.5);
  const double b = table.lookup(0.5 + 1e-12);
  EXPECT_EQ(a, b);
  const double c = table.lookup(0.5 + 1e-6);
  EXPECT_NE(a, c);
}

TEST(RealTableTest, ZeroSnapping) {
  dd::RealTable table;
  EXPECT_EQ(table.lookup(1e-15), 0.0);
  EXPECT_EQ(table.lookup(-1e-15), 0.0);
}

TEST(RealTableTest, ExactSpecialValues) {
  dd::RealTable table;
  EXPECT_EQ(table.lookup(1.0), 1.0);
  EXPECT_EQ(table.lookup(-1.0), -1.0);
  EXPECT_EQ(table.lookup(0.0), 0.0);
}

TEST(DDTest, IdentityIsLinear) {
  // Fig. 3b of the paper: the identity DD has one node per qubit.
  Package p(8);
  const auto ident = p.makeIdent();
  EXPECT_EQ(p.nodeCount(ident), 8U);
  EXPECT_NEAR(p.traceFidelity(ident), 1.0, 1e-12);
}

TEST(DDTest, GateDDMatchesDenseMatrix) {
  Package p(3);
  const std::vector<Operation> ops = {
      Operation(OpType::H, {}, {1}),
      Operation(OpType::X, {0}, {2}),
      Operation(OpType::X, {0, 1}, {2}),
      Operation(OpType::Z, {2}, {0}),
      Operation(OpType::P, {1}, {0}, {0.3}),
      Operation(OpType::RY, {}, {2}, {1.2}),
      Operation(OpType::SWAP, {}, {0, 2}),
      Operation(OpType::SWAP, {1}, {0, 2}),
  };
  for (const auto& op : ops) {
    const auto e = p.makeOperationDD(op);
    QuantumCircuit c(3);
    c.append(op);
    const auto expected = sim::circuitUnitary(c);
    EXPECT_TRUE(toDense(p, e).equals(expected, 1e-12)) << op.toString();
  }
}

TEST(DDTest, GhzMatrixStructure) {
  // The paper's Example 4: the 3-qubit GHZ system matrix shares submatrices
  // (U00 = U01 and U10 = -U11), giving a 5-node decision diagram (Fig. 3a)
  // instead of the 64-entry matrix.
  Package p(3);
  auto e = sim::buildUnitaryDD(p, circuits::ghz(3));
  EXPECT_EQ(p.nodeCount(e), 5U);
  const auto expected = sim::circuitUnitary(circuits::ghz(3));
  EXPECT_TRUE(toDense(p, e).equals(expected, 1e-12));
  p.decRef(e);
}

TEST(DDTest, MultiplyMatchesDense) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Package p(3);
    const auto c1 = circuits::randomCircuit(3, 12, seed);
    const auto c2 = circuits::randomCircuit(3, 12, seed + 50);
    auto e1 = sim::buildUnitaryDD(p, c1);
    auto e2 = sim::buildUnitaryDD(p, c2);
    const auto prod = p.multiply(e1, e2);
    const auto expected =
        sim::circuitUnitary(c1).multiply(sim::circuitUnitary(c2));
    EXPECT_TRUE(toDense(p, prod).equals(expected, 1e-9)) << "seed " << seed;
    p.decRef(e1);
    p.decRef(e2);
  }
}

TEST(DDTest, AddMatchesDense) {
  Package p(2);
  const auto h0 = p.makeOperationDD(Operation(OpType::H, {}, {0}));
  const auto x1 = p.makeOperationDD(Operation(OpType::X, {}, {1}));
  const auto sum = p.add(h0, x1);
  const auto dense = toDense(p, sum);
  QuantumCircuit ch(2);
  ch.h(0);
  QuantumCircuit cx(2);
  cx.x(1);
  const auto dh = sim::circuitUnitary(ch);
  const auto dx = sim::circuitUnitary(cx);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_NEAR(std::abs(dense.at(r, c) - (dh.at(r, c) + dx.at(r, c))), 0.0,
                  1e-12);
    }
  }
}

TEST(DDTest, ConjugateTransposeMatchesDense) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Package p(3);
    const auto c = circuits::randomCircuit(3, 15, seed);
    auto e = sim::buildUnitaryDD(p, c);
    const auto ct = p.conjugateTranspose(e);
    const auto expected = sim::circuitUnitary(c).adjoint();
    EXPECT_TRUE(toDense(p, ct).equals(expected, 1e-9));
    p.decRef(e);
  }
}

TEST(DDTest, UDaggerUIsIdentity) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Package p(4);
    const auto c = circuits::randomCircuit(4, 30, seed);
    auto e = sim::buildUnitaryDD(p, c);
    const auto ct = p.conjugateTranspose(e);
    const auto prod = p.multiply(ct, e);
    EXPECT_TRUE(p.isIdentity(prod, false)) << "seed " << seed;
    EXPECT_EQ(prod.n, p.makeIdent().n) << "seed " << seed;
    p.decRef(e);
  }
}

TEST(DDTest, TraceOfIdentityIsDimension) {
  Package p(5);
  const auto t = p.trace(p.makeIdent());
  EXPECT_NEAR(t.real(), 32.0, 1e-12);
  EXPECT_NEAR(t.imag(), 0.0, 1e-12);
}

TEST(DDTest, TraceMatchesDense) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Package p(3);
    const auto c = circuits::randomCircuit(3, 20, seed);
    auto e = sim::buildUnitaryDD(p, c);
    const auto t = p.trace(e);
    const auto expected = sim::circuitUnitary(c).trace();
    EXPECT_NEAR(std::abs(t - expected), 0.0, 1e-9);
    p.decRef(e);
  }
}

TEST(DDTest, CanonicityEqualCircuitsShareRoot) {
  // Two different gate sequences with identical functionality must produce
  // the exact same root node (canonicity).
  Package p(2);
  QuantumCircuit a(2);
  a.h(0);
  a.h(0);
  QuantumCircuit b(2);
  b.x(0);
  b.x(0);
  auto ea = sim::buildUnitaryDD(p, a);
  auto eb = sim::buildUnitaryDD(p, b);
  EXPECT_EQ(ea.n, eb.n);
  p.decRef(ea);
  p.decRef(eb);
}

TEST(DDTest, HilbertSchmidtDistinguishesNonEquivalent) {
  Package p(3);
  auto e1 = sim::buildUnitaryDD(p, circuits::ghz(3));
  auto g2 = circuits::ghz(3);
  g2.ops().pop_back(); // remove a gate
  auto e2 = sim::buildUnitaryDD(p, g2);
  const auto prod = p.multiply(p.conjugateTranspose(e1), e2);
  EXPECT_LT(p.traceFidelity(prod), 0.999);
  EXPECT_FALSE(p.isIdentity(prod));
  p.decRef(e1);
  p.decRef(e2);
}

TEST(DDTest, GarbageCollectionKeepsReferencedNodes) {
  Package p(4);
  auto kept = sim::buildUnitaryDD(p, circuits::qft(4));
  const auto before = toDense(p, kept);
  // Create garbage.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    auto tmp = sim::buildUnitaryDD(p, circuits::randomCircuit(4, 20, seed));
    p.decRef(tmp);
  }
  const auto collected = p.garbageCollect(true);
  EXPECT_GT(collected, 0U);
  EXPECT_TRUE(toDense(p, kept).equals(before, 1e-15));
  p.decRef(kept);
}

TEST(DDTest, RefCountingIsBalanced) {
  Package p(3);
  auto e = sim::buildUnitaryDD(p, circuits::ghz(3));
  p.decRef(e);
  // Cached gate DDs hold references of their own; release them so the
  // balance over *all* reference sources can be observed.
  p.clearGateCache();
  p.garbageCollect(true);
  // Only the permanently referenced identity chain remains.
  EXPECT_EQ(p.stats().matrixNodes, 3U);
}

TEST(DDTest, VectorBasisStates) {
  Package p(3);
  const auto e = p.makeBasisState({true, false, true}); // |101> = index 5
  EXPECT_NEAR(std::abs(p.getAmplitude(e, 5) - std::complex<double>{1.0}), 0.0,
              1e-12);
  EXPECT_NEAR(std::abs(p.getAmplitude(e, 0)), 0.0, 1e-12);
}

TEST(DDTest, MatrixVectorMultiplyMatchesDense) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Package p(3);
    const auto c = circuits::randomCircuit(3, 20, seed);
    auto state = sim::simulate(p, c, p.makeZeroState());
    auto expected = sim::zeroState(3);
    sim::applyLogical(c, expected);
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_NEAR(std::abs(p.getAmplitude(state, i) - expected[i]), 0.0, 1e-9)
          << "seed " << seed << " index " << i;
    }
    p.decRef(state);
  }
}

TEST(DDTest, InnerProductAndFidelity) {
  Package p(3);
  auto a = sim::simulate(p, circuits::ghz(3), p.makeZeroState());
  auto b = sim::simulate(p, circuits::ghz(3), p.makeZeroState());
  EXPECT_NEAR(p.fidelity(a, b), 1.0, 1e-9);
  auto flipped = circuits::ghz(3);
  flipped.x(0);
  auto cEdge = sim::simulate(p, flipped, p.makeZeroState());
  EXPECT_LT(p.fidelity(a, cEdge), 0.6);
  p.decRef(a);
  p.decRef(b);
  p.decRef(cEdge);
}

TEST(DDTest, GateOutOfRangeThrows) {
  Package p(2);
  EXPECT_THROW(p.makeGateDD(gateMatrix(OpType::X, {}), {}, 5),
               std::out_of_range);
}

class DDRandomEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(DDRandomEquivalenceTest, CircuitTimesInverseIsIdentity) {
  const auto seed = GetParam();
  Package p(4);
  const auto c = circuits::randomCircuit(4, 40, seed);
  auto e = sim::buildUnitaryDD(p, c);
  auto ei = sim::buildUnitaryDD(p, c.inverted());
  const auto prod = p.multiply(ei, e);
  EXPECT_TRUE(p.isIdentity(prod, true, 1e-9));
  p.decRef(e);
  p.decRef(ei);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DDRandomEquivalenceTest,
                         ::testing::Range(std::uint64_t{0}, std::uint64_t{12}));

} // namespace
} // namespace veriqc
