/// \file table1_compiled.cpp
/// \brief Regenerates the "Compiled Circuits" half of Table 1: original
///        high-level circuits vs. their compilation to the 65-qubit
///        Manhattan-like heavy-hex architecture, in the three configurations
///        (equivalent / 1 gate missing / flipped CNOT) and with both methods
///        (t_dd ~ t_qcec: alternating + 16 simulations; t_zx ~ t_pyzx:
///        graph-like rewriting).
///
/// Sizes are scaled down relative to the paper (laptop-class substrate, no
/// 1 h timeout); the comparison *shape* is the reproduction target. See
/// EXPERIMENTS.md. Set VERIQC_BENCH_TIMEOUT_MS to change the 60 s default
/// timeout, and VERIQC_BENCH_LARGE=1 to run the larger instances.
#include "table_common.hpp"

#include "circuits/benchmarks.hpp"
#include "compile/architecture.hpp"
#include "compile/mapper.hpp"

#include <cstdlib>
#include <vector>

namespace {

using namespace veriqc;
using bench::Instance;

Instance compiledInstance(QuantumCircuit original,
                          const compile::Architecture& arch) {
  auto compiled = compile::compileForArchitecture(original, arch);
  return {original.name(), std::move(original), std::move(compiled)};
}

} // namespace

int main() {
  const bool large = std::getenv("VERIQC_BENCH_LARGE") != nullptr;
  const auto arch = compile::Architecture::ibmManhattanLike();

  std::vector<QuantumCircuit> originals;
  originals.push_back(circuits::grover(4, 11));
  originals.push_back(circuits::grover(5, 19));
  originals.push_back(circuits::grover(6, 37));
  if (large) {
    originals.push_back(circuits::grover(7, 73));
  }
  originals.push_back(circuits::qft(8));
  originals.push_back(circuits::qft(12));
  originals.push_back(circuits::qft(16));
  if (large) {
    originals.push_back(circuits::qft(20));
  }
  originals.push_back(circuits::quantumWalk(4, 3));
  originals.push_back(circuits::quantumWalk(5, 3));
  originals.push_back(circuits::quantumWalk(6, 3));
  if (large) {
    originals.push_back(circuits::quantumWalk(7, 3));
  }
  originals.push_back(circuits::qpeExact(7, 53));
  originals.push_back(circuits::qpeExact(10, 619));
  originals.push_back(circuits::qpeExact(12, 2741));
  originals.push_back(circuits::ghz(32));
  originals.push_back(circuits::ghz(65));
  originals.push_back(circuits::randomGraphState(30, 10, 1));
  originals.push_back(circuits::randomGraphState(62, 20, 2));

  veriqc::bench::printTableHeader(
      "Table 1 (a): Compiled Circuits — original vs. 65-qubit heavy-hex "
      "compilation");
  std::uint64_t errorSeed = 1000;
  for (auto& original : originals) {
    const auto instance = compiledInstance(std::move(original), arch);
    veriqc::bench::runRow(instance, errorSeed++);
  }
  return 0;
}
