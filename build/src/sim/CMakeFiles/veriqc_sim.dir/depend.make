# Empty dependencies file for veriqc_sim.
# This may be replaced when dependencies are built.
