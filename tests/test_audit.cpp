#include "audit/checkpoint.hpp"
#include "audit/dd_audit.hpp"
#include "audit/ir_audit.hpp"
#include "audit/zx_audit.hpp"
#include "dd/package.hpp"
#include "ir/circuit.hpp"
#include "zx/circuit_to_zx.hpp"
#include "zx/diagram.hpp"
#include "zx/simplify.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <utility>
#include <vector>

namespace veriqc::zx {

/// Befriended by ZXDiagram: reaches the raw adjacency rows so mutation tests
/// can plant exactly the corruption an auditor claims to detect.
struct ZXDiagramTestAccess {
  static std::vector<NeighborList>& adjacency(ZXDiagram& g) { return g.adj_; }
};

/// Befriended by Simplifier::Worklist: plants membership-stamp corruption.
struct WorklistTestAccess {
  static std::vector<Vertex>& sweep(Simplifier::Worklist& wl) {
    return wl.sweep_;
  }
  static std::vector<std::uint64_t>& stamps(Simplifier::Worklist& wl) {
    return wl.stamp_;
  }
  static std::uint64_t generation(const Simplifier::Worklist& wl) {
    return wl.generation_;
  }
};

} // namespace veriqc::zx

namespace veriqc {
namespace {

bool hasCode(const audit::AuditReport& report, const std::string& code) {
  for (const auto& finding : report.findings) {
    if (finding.code == code) {
      return true;
    }
  }
  return false;
}

// --- IR auditors -------------------------------------------------------------

TEST(IrAuditTest, CleanOperationAndCircuitHaveNoFindings) {
  QuantumCircuit c(3);
  c.h(0);
  c.cx(0, 1);
  c.ccx(0, 1, 2);
  c.rz(2, 0.25);
  EXPECT_TRUE(audit::auditCircuit(c).empty());
}

TEST(IrAuditTest, FlagsAliasedOperands) {
  // Bypasses Operation::validate on purpose: the auditor must re-derive the
  // violation from the stored operand lists.
  const Operation op(OpType::X, {0}, {0});
  const auto report = audit::auditOperation(op, 2);
  EXPECT_TRUE(report.hasErrors());
  EXPECT_TRUE(hasCode(report, "ir.op.alias"));
}

TEST(IrAuditTest, FlagsOutOfRangeQubit) {
  const Operation op(OpType::X, {}, {5});
  const auto report = audit::auditOperation(op, 2);
  EXPECT_TRUE(hasCode(report, "ir.op.range"));
}

TEST(IrAuditTest, FlagsWrongArity) {
  const Operation op(OpType::RZ, {}, {0}); // RZ needs one parameter
  EXPECT_TRUE(hasCode(audit::auditOperation(op, 1), "ir.op.arity"));
}

TEST(IrAuditTest, FlagsNonFiniteParameter) {
  const Operation op(OpType::RZ, {}, {0},
                     {std::numeric_limits<double>::quiet_NaN()});
  EXPECT_TRUE(hasCode(audit::auditOperation(op, 1), "ir.op.param"));
}

TEST(IrAuditTest, FlagsNoneType) {
  const Operation op(OpType::None, {}, {0});
  EXPECT_TRUE(hasCode(audit::auditOperation(op, 1), "ir.op.type"));
}

TEST(IrAuditTest, FlagsNonBijectivePermutation) {
  auto perm = Permutation::identity(3);
  perm.set(0, 2); // image {2, 1, 2}: 2 hit twice, 0 never
  ASSERT_FALSE(perm.isValid());
  const auto report = audit::auditPermutation(perm);
  EXPECT_TRUE(report.hasErrors());
  EXPECT_TRUE(hasCode(report, "ir.perm.bijection"));
}

TEST(IrAuditTest, FlagsPermutationSizeMismatch) {
  const auto perm = Permutation::identity(2);
  EXPECT_TRUE(hasCode(audit::auditPermutation(perm, 3), "ir.perm.size"));
  EXPECT_FALSE(audit::auditPermutation(perm, 2).hasErrors());
}

TEST(IrAuditTest, FlagsNonFiniteGlobalPhase) {
  QuantumCircuit c(1);
  c.x(0);
  c.setGlobalPhase(std::numeric_limits<double>::infinity());
  EXPECT_TRUE(hasCode(audit::auditCircuit(c), "ir.phase.nonfinite"));
}

// --- invert() round-trip property (audit-backed) -----------------------------

QuantumCircuit randomCircuit(const std::size_t nqubits,
                             const std::size_t gates, std::mt19937_64& rng) {
  QuantumCircuit c(nqubits);
  std::uniform_int_distribution<std::size_t> pick(0, 9);
  std::uniform_int_distribution<Qubit> qubit(
      0, static_cast<Qubit>(nqubits - 1));
  std::uniform_real_distribution<double> angle(-3.0, 3.0);
  for (std::size_t i = 0; i < gates; ++i) {
    const Qubit q = qubit(rng);
    Qubit r = qubit(rng);
    while (r == q) {
      r = qubit(rng);
    }
    switch (pick(rng)) {
    case 0: c.h(q); break;
    case 1: c.s(q); break;
    case 2: c.t(q); break;
    case 3: c.sx(q); break;
    case 4: c.rz(q, angle(rng)); break;
    case 5: c.rx(q, angle(rng)); break;
    case 6: c.u2(q, angle(rng), angle(rng)); break;
    case 7: c.u3(q, angle(rng), angle(rng), angle(rng)); break;
    case 8: c.cx(q, r); break;
    default: c.swap(q, r); break;
    }
  }
  c.setGlobalPhase(angle(rng));
  return c;
}

TEST(IrAuditTest, InvertRoundTripHoldsOnRandomCircuits) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    const auto c = randomCircuit(4, 40, rng);
    const auto report = audit::auditInvertRoundTrip(c);
    EXPECT_FALSE(report.hasErrors()) << report.toString();
  }
}

TEST(IrAuditTest, InvertRoundTripSkipsNonInvertibleCircuits) {
  QuantumCircuit c(1);
  c.x(0);
  c.append(Operation(OpType::Measure, {}, {0}));
  const auto report = audit::auditInvertRoundTrip(c);
  EXPECT_FALSE(report.hasErrors());
  EXPECT_FALSE(report.empty()); // the skip is recorded as an Info finding
}

// --- DD auditors -------------------------------------------------------------

// White-box helpers: plant corruption directly in a node's slab slot.
dd::NodeSlab<dd::mEdge>& slabOf(dd::Package& package, const dd::mEdge& e) {
  return dd::PackageTestAccess::matrixSlab(package, dd::levelOfIndex(e.n));
}

std::uint32_t slotOf(const dd::mEdge& e) { return dd::slotOfIndex(e.n); }

TEST(DdAuditTest, CleanPackageHasNoFindings) {
  dd::Package package(2);
  QuantumCircuit c(2);
  c.h(0);
  c.cx(0, 1);
  c.t(1);
  dd::mEdge e = package.makeIdent();
  package.incRef(e);
  for (const auto& op : c.ops()) {
    const auto next = package.multiply(package.makeOperationDD(op), e);
    package.incRef(next);
    package.decRef(e);
    e = next;
    package.garbageCollect();
  }
  const std::array roots{e};
  const auto report = audit::auditPackage(package, roots);
  EXPECT_TRUE(report.empty()) << report.toString();
}

TEST(DdAuditTest, FlagsDuplicateUniqueTableNodes) {
  dd::Package package(1);
  const auto h = package.makeOperationDD(Operation(OpType::H, {}, {0}));
  const auto x = package.makeOperationDD(Operation(OpType::X, {}, {0}));
  ASSERT_NE(h.n, x.n);
  // Overwrite X's children with H's: two slab-resident nodes now carry an
  // identical child tuple — canonicity is broken.
  auto& slab = slabOf(package, x);
  slab.children(slotOf(x)) = slab.children(slotOf(h));
  slab.weights(slotOf(x)) = slab.weights(slotOf(h));
  const auto report = audit::auditPackage(package);
  EXPECT_TRUE(report.hasErrors());
  EXPECT_TRUE(hasCode(report, "dd.unique.duplicate"));
}

TEST(DdAuditTest, FlagsSkewedRefcount) {
  dd::Package package(2);
  const auto e =
      package.makeOperationDD(Operation(OpType::X, {0}, {1})); // CX
  slabOf(package, e).ref(slotOf(e)) += 1; // one phantom reference
  const auto report = audit::auditPackage(package);
  EXPECT_TRUE(report.hasErrors());
  EXPECT_TRUE(hasCode(report, "dd.ref.mismatch"));
}

TEST(DdAuditTest, FlagsMisplacedNode) {
  dd::Package package(1);
  const auto h = package.makeOperationDD(Operation(OpType::H, {}, {0}));
  // Mutating a child weight in place invalidates the hash the slab cached at
  // insert time: the node would now probe the wrong bucket.
  slabOf(package, h).weights(slotOf(h))[0] = {1.0 / 3.0, 0.0};
  const auto report = audit::auditPackage(package);
  EXPECT_TRUE(report.hasErrors());
  EXPECT_TRUE(hasCode(report, "dd.unique.misplaced"));
}

TEST(DdAuditTest, FlagsDenormalizedWeights) {
  dd::Package package(1);
  const auto h = package.makeOperationDD(Operation(OpType::H, {}, {0}));
  for (auto& w : slabOf(package, h).weights(slotOf(h))) {
    w *= 0.5; // max child magnitude now 0.5, not 1
  }
  const auto report = audit::auditPackage(package);
  EXPECT_TRUE(report.hasErrors());
  EXPECT_TRUE(hasCode(report, "dd.node.normalization"));
}

TEST(DdAuditTest, FlagsNonInternedWeight) {
  dd::Package package(1);
  const auto h = package.makeOperationDD(Operation(OpType::H, {}, {0}));
  // Never interned by this package.
  slabOf(package, h).weights(slotOf(h))[0] = {0.123456789, 0.0};
  EXPECT_TRUE(hasCode(audit::auditPackage(package), "dd.node.weight"));
}

TEST(DdAuditTest, FlagsRealTableCollision) {
  dd::RealTable reals(1e-9);
  (void)reals.lookup(0.5);
  (void)reals.lookup(0.5 + 4e-9); // distinct under the current tolerance
  EXPECT_TRUE(audit::auditRealTable(reals).empty());
  // Raising the tolerance afterwards makes the two representatives
  // indistinguishable — the canonical-representative invariant is broken.
  reals.setTolerance(1e-8);
  const auto report = audit::auditRealTable(reals);
  EXPECT_TRUE(report.hasErrors());
  EXPECT_TRUE(hasCode(report, "dd.reals.collision"));
}

TEST(DdAuditTest, FlagsStaleComputeCacheEntry) {
  dd::Package package(1);
  const auto h = package.makeOperationDD(Operation(OpType::H, {}, {0}));
  const auto x = package.makeOperationDD(Operation(OpType::X, {}, {0}));
  const auto product = package.multiply(h, x); // seeds the multiply cache
  ASSERT_FALSE(product.isTerminal());
  // Detach the result node from its slab without bumping the compute-table
  // generations: the live cache entry now references a dead handle.
  dd::PackageTestAccess::detachMatrixNode(package, product.n);
  EXPECT_TRUE(hasCode(audit::auditPackage(package), "dd.cache.stale"));
}

TEST(DdAuditTest, FlagsSkewedVectorRefcount) {
  dd::Package package(2);
  auto state = package.makeZeroState();
  package.incRef(state);
  const auto h = package.makeOperationDD(Operation(OpType::H, {}, {0}));
  const auto next = package.multiply(h, state);
  package.incRef(next);
  package.decRef(state);
  state = next;
  const std::array roots{state};
  EXPECT_TRUE(audit::auditPackage(package, {}, roots).empty());
  dd::PackageTestAccess::vectorSlab(package, dd::levelOfIndex(state.n))
      .ref(dd::slotOfIndex(state.n)) += 2;
  EXPECT_TRUE(hasCode(audit::auditPackage(package, {}, roots),
                      "dd.ref.mismatch"));
}

// --- checkpoint gating -------------------------------------------------------

TEST(CheckpointTest, LevelZeroNeverAudits) {
  if (audit::auditLevelFromEnv() != 0) {
    GTEST_SKIP() << "VERIQC_AUDIT overrides the configured level";
  }
  dd::Package package(1);
  const auto h = package.makeOperationDD(Operation(OpType::H, {}, {0}));
  slabOf(package, h).ref(slotOf(h)) += 5; // flagged if any audit ran
  audit::DDCheckpoint checkpoint(audit::kAuditOff, "test");
  EXPECT_FALSE(checkpoint.enabled());
  EXPECT_NO_THROW(checkpoint.postGate(package));
  EXPECT_NO_THROW(checkpoint.boundary(package));
}

TEST(CheckpointTest, LevelOneThrottlesPostGateButNotBoundary) {
  if (audit::auditLevelFromEnv() > 1) {
    GTEST_SKIP() << "VERIQC_AUDIT overrides the configured level";
  }
  dd::Package package(1);
  const auto h = package.makeOperationDD(Operation(OpType::H, {}, {0}));
  slabOf(package, h).ref(slotOf(h)) += 5;
  audit::DDCheckpoint checkpoint(audit::kAuditThrottled, "test");
  for (std::size_t i = 0; i + 1 < audit::kCheckpointStride; ++i) {
    EXPECT_NO_THROW(checkpoint.postGate(package));
  }
  EXPECT_THROW(checkpoint.postGate(package), audit::AuditError);
  EXPECT_THROW(checkpoint.boundary(package), audit::AuditError);
}

TEST(CheckpointTest, LevelTwoAuditsEveryPostGate) {
  dd::Package package(1);
  const auto h = package.makeOperationDD(Operation(OpType::H, {}, {0}));
  slabOf(package, h).ref(slotOf(h)) += 5;
  audit::DDCheckpoint checkpoint(audit::kAuditEveryCheckpoint, "test");
  EXPECT_THROW(checkpoint.postGate(package), audit::AuditError);
}

TEST(CheckpointTest, AuditErrorCarriesContextAndReport) {
  dd::Package package(1);
  const auto h = package.makeOperationDD(Operation(OpType::H, {}, {0}));
  slabOf(package, h).ref(slotOf(h)) += 5;
  audit::DDCheckpoint checkpoint(audit::kAuditEveryCheckpoint,
                                 "unit-test checkpoint");
  try {
    checkpoint.boundary(package);
    FAIL() << "expected AuditError";
  } catch (const audit::AuditError& e) {
    EXPECT_NE(std::string(e.what()).find("unit-test checkpoint"),
              std::string::npos);
    EXPECT_TRUE(e.report().hasErrors());
  }
}

TEST(CheckpointTest, EffectiveLevelIsMaxOfConfiguredAndEnv) {
  EXPECT_EQ(audit::effectiveAuditLevel(audit::kAuditEveryCheckpoint),
            audit::kAuditEveryCheckpoint);
  EXPECT_GE(audit::effectiveAuditLevel(audit::kAuditThrottled),
            audit::kAuditThrottled);
  EXPECT_EQ(audit::effectiveAuditLevel(0), audit::auditLevelFromEnv());
}

// --- ZX auditors -------------------------------------------------------------

zx::ZXDiagram bellDiagram() {
  QuantumCircuit c(2);
  c.h(0);
  c.cx(0, 1);
  return zx::circuitToZX(c);
}

TEST(ZxAuditTest, CleanDiagramHasNoFindings) {
  const auto diagram = bellDiagram();
  const auto report = audit::auditDiagram(diagram);
  EXPECT_TRUE(report.empty()) << report.toString();
}

TEST(ZxAuditTest, FlagsAsymmetricEdge) {
  auto diagram = bellDiagram();
  auto& adj = zx::ZXDiagramTestAccess::adjacency(diagram);
  // Find any edge u-v and bump the multiplicity in one direction only.
  for (zx::Vertex u = 0; u < adj.size(); ++u) {
    if (!adj[u].empty()) {
      adj[u].front().edges.simple += 1;
      break;
    }
  }
  const auto report = audit::auditDiagram(diagram);
  EXPECT_TRUE(report.hasErrors());
  EXPECT_TRUE(hasCode(report, "zx.adj.symmetry"));
}

TEST(ZxAuditTest, FlagsUnsortedAdjacencyRow) {
  auto diagram = bellDiagram();
  auto& adj = zx::ZXDiagramTestAccess::adjacency(diagram);
  bool corrupted = false;
  for (auto& row : adj) {
    if (row.size() >= 2) {
      std::swap(row.front(), row.back());
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted) << "test needs a vertex of degree >= 2";
  EXPECT_TRUE(hasCode(audit::auditDiagram(diagram), "zx.adj.order"));
}

TEST(ZxAuditTest, FlagsBoundaryPhase) {
  auto diagram = bellDiagram();
  ASSERT_FALSE(diagram.inputs().empty());
  diagram.addPhase(diagram.inputs().front(), zx::PiRational(1, 2));
  EXPECT_TRUE(hasCode(audit::auditDiagram(diagram), "zx.boundary.phase"));
}

TEST(ZxAuditTest, FlagsBoundaryDegree) {
  auto diagram = bellDiagram();
  ASSERT_GE(diagram.inputs().size(), 2U);
  // A second wire into an input vertex breaks the degree-1 invariant.
  diagram.addEdge(diagram.inputs()[0], diagram.inputs()[1],
                  zx::EdgeType::Simple);
  const auto report = audit::auditDiagram(diagram);
  EXPECT_TRUE(hasCode(report, "zx.boundary.degree"));
  // Mid-rewrite audits skip the degree check but keep the rest.
  EXPECT_FALSE(hasCode(audit::auditDiagram(diagram, false),
                       "zx.boundary.degree"));
}

TEST(ZxAuditTest, FlagsWorklistStampCorruption) {
  auto diagram = bellDiagram();
  zx::Simplifier simplifier(diagram);
  EXPECT_TRUE(audit::auditWorklist(simplifier).empty());
  auto& worklist =
      const_cast<zx::Simplifier::Worklist&>(simplifier.worklist());
  // Queue a vertex without stamping it: membership and stamps now disagree.
  zx::WorklistTestAccess::sweep(worklist).push_back(0);
  const auto report = audit::auditWorklist(simplifier);
  EXPECT_TRUE(report.hasErrors());
  EXPECT_TRUE(hasCode(report, "zx.worklist.stamp"));
}

TEST(ZxAuditTest, FlagsPendingStampWithoutQueueEntry) {
  auto diagram = bellDiagram().compose(bellDiagram().adjoint());
  zx::Simplifier simplifier(diagram);
  ASSERT_TRUE(simplifier.fullReduce()); // populates and drains the worklist
  EXPECT_TRUE(audit::auditWorklist(simplifier).empty());
  auto& worklist =
      const_cast<zx::Simplifier::Worklist&>(simplifier.worklist());
  auto& stamps = zx::WorklistTestAccess::stamps(worklist);
  ASSERT_FALSE(stamps.empty());
  // A pending stamp whose vertex sits in neither sweep heap.
  stamps[0] = zx::WorklistTestAccess::generation(worklist);
  EXPECT_TRUE(hasCode(audit::auditWorklist(simplifier),
                      "zx.worklist.stamp"));
}

TEST(ZxAuditTest, CleanAfterFullReduce) {
  auto diagram = bellDiagram().compose(bellDiagram().adjoint());
  zx::Simplifier simplifier(diagram);
  ASSERT_TRUE(simplifier.fullReduce());
  audit::AuditReport report = audit::auditDiagram(diagram);
  report.merge(audit::auditWorklist(simplifier));
  EXPECT_FALSE(report.hasErrors()) << report.toString();
}

} // namespace
} // namespace veriqc
